(* Quickstart: build a network through the registry + cached pipeline,
   verify the geometry and read off the cost metrics.

   Run with:  dune exec examples/quickstart.exe *)
open Mvl_core

let () =
  (* 1. pick a network family by its registry spec string — the same
     grammar the `mvl` CLI accepts (see `mvl list`) *)
  let r =
    match
      Mvl.Pipeline.run_string ~validate:Mvl.Check.Strict ~layers:8
        "hypercube:8"
    with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let fam = r.Mvl.Pipeline.family in
  Printf.printf "network: %s with %d nodes, %d links\n" fam.Mvl.Families.name
    fam.Mvl.Families.n_nodes
    (Mvl.Graph.m fam.Mvl.Families.graph);

  (* 2. the pipeline already ran build -> layout -> validate -> metrics *)
  (match Mvl.Pipeline.validity r with
  | Mvl.Pipeline.Valid ->
      print_endline "layout verified: node-disjoint, on-terminal, in-range"
  | Mvl.Pipeline.Invalid ->
      List.iter
        (fun v -> Format.printf "VIOLATION %a@." Mvl.Check.pp_violation v)
        (Option.value ~default:[] (Mvl.Pipeline.violations r));
      exit 1
  | Mvl.Pipeline.Not_validated -> assert false);

  (* 3. metrics and per-stage wall-clock timings *)
  let m = r.Mvl.Pipeline.metrics in
  Format.printf "metrics: %a@." Mvl.Layout.pp_metrics m;
  Format.printf "timings: %a@." Mvl.Pipeline.pp_timings r;

  (* 4. compare with the paper's leading term, 16 N^2 / 9 L^2 *)
  (match fam.Mvl.Families.paper_area with
  | Some f ->
      let paper = f ~layers:8 in
      Printf.printf "paper leading term: %.0f (measured/paper = %.2f)\n" paper
        (float_of_int m.Mvl.Layout.area /. paper)
  | None -> ());

  (* 5. the multilayer pay-off: same network, only two layers.  The
     family is cached, so only the new layout is constructed. *)
  let r2 =
    match Mvl.Pipeline.run_string ~layers:2 "hypercube:8" with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let m2 = r2.Mvl.Pipeline.metrics in
  Printf.printf
    "2-layer (Thompson) area: %d -> 8-layer area: %d (%.1fx smaller)\n"
    m2.Mvl.Layout.area m.Mvl.Layout.area
    (float_of_int m2.Mvl.Layout.area /. float_of_int m.Mvl.Layout.area);

  (* 6. rerunning a spec hits the layout cache instead of rebuilding *)
  let again =
    match Mvl.Pipeline.run_string ~layers:8 "hypercube:8" with
    | Ok r -> r
    | Error msg -> failwith msg
  in
  let stats = Mvl.Pipeline.cache_stats () in
  Printf.printf "cache: %d constructions, %d hits (rerun cached: %b)\n"
    stats.Mvl.Pipeline.misses stats.Mvl.Pipeline.hits
    again.Mvl.Pipeline.from_cache;

  (* 7. render a small instance for inspection (under doc/, next to the
     gallery output — keep generated artifacts out of the repo root) *)
  let svg =
    Mvl.Render.layout_svg (Mvl.Pipeline.layout_exn ~layers:4 "hypercube:4")
  in
  (try Unix.mkdir "doc" 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat "doc" "hypercube4_l4.svg" in
  let oc = open_out path in
  output_string oc svg;
  close_out oc;
  Printf.printf "wrote %s\n" path;

  (* 8. every run serializes to one JSON telemetry record *)
  print_endline "telemetry record of the 4-layer run:";
  print_endline
    (Mvl.Telemetry.to_string
       (Mvl.Pipeline.to_json (Mvl.Pipeline.run_exn ~layers:4 "hypercube:4")))
