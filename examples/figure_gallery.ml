(* Figure gallery: regenerates the paper's construction figures as
   ASCII (to stdout) and renders small multilayer layouts as SVG files.

   Run with:  dune exec examples/figure_gallery.exe [OUTDIR]
   OUTDIR defaults to "gallery"; `-- doc` regenerates the SVGs
   referenced by the README (doc/hypercube4_l4.svg among them). *)
open Mvl_core

let outdir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "gallery"

let save name svg =
  (try Unix.mkdir outdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let name = Filename.concat outdir name in
  let oc = open_out name in
  output_string oc svg;
  close_out oc;
  Printf.printf "wrote %s\n" name

let () =
  print_endline "--- Fig. 2: collinear 3-ary 2-cube ---";
  print_string
    (Mvl.Render.collinear_ascii (Mvl.Collinear_kary.create ~k:3 ~n:2 ()));
  print_endline "\n--- Fig. 3: collinear K_9 ---";
  print_string (Mvl.Render.collinear_ascii (Mvl.Collinear_complete.create 9));
  print_endline "\n--- Fig. 4: collinear 4-cube ---";
  print_string (Mvl.Render.collinear_ascii (Mvl.Collinear_hypercube.create 4));
  print_newline ();
  (* SVG gallery of realized multilayer layouts *)
  let shots =
    [
      ("hypercube4_l4.svg", Mvl.Families.hypercube 4, 4);
      ("hypercube5_l2.svg", Mvl.Families.hypercube 5, 2);
      ("hypercube5_l4.svg", Mvl.Families.hypercube 5, 4);
      ("kary3x3_l2.svg", Mvl.Families.kary ~k:3 ~n:2 (), 2);
      ("ccc3_l2.svg", Mvl.Families.ccc 3, 2);
      ("ghc4x2_l4.svg", Mvl.Families.generalized_hypercube ~r:4 ~n:2 (), 4);
      ("folded4_l2.svg", Mvl.Families.folded_hypercube 4, 2);
    ]
  in
  List.iter
    (fun (name, fam, layers) ->
      save name (Mvl.Render.layout_svg (fam.Mvl.Families.layout ~layers)))
    shots;
  print_endline "done; open the .svg files in a browser (one colour per layer)"
