(* Regeneration of the paper's four figures (ASCII; the CLI can also
   emit SVG). *)
open Mvl_core

let f1 () =
  Util.heading "F1" "recursive grid layout scheme (Fig. 1), CCC(3) quotient";
  let row = Mvl.Collinear_hypercube.create 2 in
  let col = Mvl.Collinear_hypercube.create 1 in
  let o =
    Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:col
      (Mvl.Hypercube.create 3)
  in
  print_string (Mvl.Render.grid_summary o);
  Printf.printf
    "each block holds one 3-node cycle cluster; inter-cluster (cube) links\n\
     run in the row/column gaps exactly as in Fig. 1\n"

let f2 () =
  Util.heading "F2" "collinear layout of the 3-ary 2-cube (Fig. 2)";
  let c = Mvl.Collinear_kary.create ~k:3 ~n:2 () in
  print_string (Mvl.Render.collinear_ascii c);
  Printf.printf "tracks used: %d (paper: f_3(2) = %d)\n" c.Mvl.Collinear.tracks
    (Mvl.Collinear_kary.tracks_formula ~k:3 ~n:2)

let f3 () =
  Util.heading "F3" "collinear layout of K_9 (Fig. 3)";
  let c = Mvl.Collinear_complete.create 9 in
  print_string (Mvl.Render.collinear_ascii c);
  Printf.printf "tracks used: %d (paper: floor(81/4) = %d, strictly optimal)\n"
    c.Mvl.Collinear.tracks
    (Mvl.Collinear_complete.tracks_formula 9)

let f4 () =
  Util.heading "F4" "collinear layout of the 4-cube (Fig. 4)";
  let c = Mvl.Collinear_hypercube.create 4 in
  print_string (Mvl.Render.collinear_ascii c);
  Printf.printf "tracks used: %d (paper: floor(2*16/3) = %d)\n"
    c.Mvl.Collinear.tracks
    (Mvl.Collinear_hypercube.tracks_formula 4)

let all () =
  f1 ();
  f2 ();
  f3 ();
  f4 ()
