bench/main.ml: Array Experiments Figures List Printf Sys Timing
