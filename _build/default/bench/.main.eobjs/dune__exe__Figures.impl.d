bench/figures.ml: Mvl Mvl_core Printf Util
