bench/util.ml: Array Mvl_core Printf
