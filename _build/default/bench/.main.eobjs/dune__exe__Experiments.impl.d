bench/experiments.ml: List Mvl Mvl_core Printf Util
