bench/main.mli:
