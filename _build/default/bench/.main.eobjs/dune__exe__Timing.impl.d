bench/timing.ml: Analyze Bechamel Benchmark Hashtbl Instance List Measure Mvl Mvl_core Printf Staged Test Time Toolkit
