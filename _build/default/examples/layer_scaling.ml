(* Layer scaling: how one network's layout cost falls as the process
   gains wiring layers — the paper's headline claims (1)-(4) — and how
   the two lazy alternatives (folding a finished 2-layer layout, or a
   multilayer collinear layout) fail to keep up.

   Run with:  dune exec examples/layer_scaling.exe [-- n] *)
open Mvl_core

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 12 in
  let fam = Mvl.Families.hypercube n in
  let collinear = Mvl.Collinear_hypercube.create n in
  Printf.printf "layer scaling for %s (%d nodes)\n\n" fam.Mvl.Families.name
    fam.Mvl.Families.n_nodes;
  let m2 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2) in
  Printf.printf "baseline (L=2): area=%d volume=%d max_wire=%d\n\n"
    m2.Mvl.Layout.area m2.Mvl.Layout.volume m2.Mvl.Layout.max_wire;
  Printf.printf "%3s | %22s | %22s | %22s\n" "L" "direct multilayer"
    "folded Thompson" "multilayer collinear";
  Printf.printf "%3s | %10s %11s | %10s %11s | %10s %11s\n" "" "area"
    "(gain)" "area" "(gain)" "area" "(gain)";
  let c2 = Mvl.Baselines.collinear_multilayer collinear ~layers:2 in
  List.iter
    (fun layers ->
      let direct = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers) in
      let folded = Mvl.Baselines.fold_thompson m2 ~layers in
      let coll = Mvl.Baselines.collinear_multilayer collinear ~layers in
      let gain base a = float_of_int base /. float_of_int a in
      Printf.printf "%3d | %10d %10.2fx | %10d %10.2fx | %10d %10.2fx\n" layers
        direct.Mvl.Layout.area
        (gain m2.Mvl.Layout.area direct.Mvl.Layout.area)
        folded.Mvl.Layout.area
        (gain m2.Mvl.Layout.area folded.Mvl.Layout.area)
        coll.Mvl.Layout.area
        (gain c2.Mvl.Layout.area coll.Mvl.Layout.area))
    [ 2; 4; 6; 8; 12; 16 ];
  print_newline ();
  Printf.printf "%3s | %10s %10s | %12s %12s\n" "L" "direct-W" "folded-W"
    "direct-vol" "folded-vol";
  List.iter
    (fun layers ->
      let direct = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers) in
      let folded = Mvl.Baselines.fold_thompson m2 ~layers in
      Printf.printf "%3d | %10d %10d | %12d %12d\n" layers
        direct.Mvl.Layout.max_wire folded.Mvl.Layout.max_wire
        direct.Mvl.Layout.volume folded.Mvl.Layout.volume)
    [ 2; 4; 8; 16 ];
  print_newline ();
  Printf.printf
    "paper: direct design gains ~L^2/4 area, ~L/2 volume, ~L/2 max wire;\n\
     folding gains only ~L/2 area and nothing else.\n"
