(* Chip planner: the single-chip multiprocessor scenario from the
   paper's introduction.  Given a target node count and the number of
   wiring layers the process offers, compare the interconnect
   candidates' silicon cost (area, volume) and performance proxies
   (max wire length, worst accumulated wire on a shortest route).

   Run with:  dune exec examples/chip_planner.exe [-- layers] *)
open Mvl_core

type verdict = {
  name : string;
  nodes : int;
  degree : int;
  diameter : int;
  area : int;
  volume : int;
  max_wire : int;
  path_wire : int;
  latency : float;  (* worst RC route latency, repeatered wires *)
}

let evaluate fam ~layers =
  let layout = fam.Mvl.Families.layout ~layers in
  assert (Mvl.Check.is_valid ~mode:Mvl.Check.Strict layout
          || Mvl.Graph.m fam.Mvl.Families.graph > 20000);
  let m = Mvl.Layout.metrics layout in
  let route = Mvl.Route.of_layout layout in
  {
    name = fam.Mvl.Families.name;
    nodes = fam.Mvl.Families.n_nodes;
    degree = Mvl.Graph.max_degree fam.Mvl.Families.graph;
    diameter = Mvl.Graph.diameter fam.Mvl.Families.graph;
    area = m.Mvl.Layout.area;
    volume = m.Mvl.Layout.volume;
    max_wire = m.Mvl.Layout.max_wire;
    path_wire = Mvl.Route.max_path_wire ~samples:8 route;
    latency =
      Mvl.Delay.worst_route_latency ~samples:8
        (Mvl.Delay.with_repeaters 64) layout;
  }

let () =
  let layers =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 8
  in
  Printf.printf
    "planning a ~256-node single-chip multiprocessor with %d wiring layers\n\n"
    layers;
  (* candidates at (close to) 256 nodes *)
  let candidates =
    [
      Mvl.Families.hypercube 8;
      Mvl.Families.kary ~k:4 ~n:4 ();
      Mvl.Families.kary ~fold:true ~k:4 ~n:4 ();
      Mvl.Families.generalized_hypercube ~r:16 ~n:2 ();
      Mvl.Families.ccc 6 (* 384 nodes, degree 3 *);
      Mvl.Families.hsn ~levels:2 ~radix:16;
      Mvl.Families.folded_hypercube 8;
      Mvl.Families.reduced_hypercube 4 (* 64 nodes, shown for contrast *);
    ]
  in
  Printf.printf "%-28s %6s %4s %5s %10s %10s %9s %10s %9s\n" "network" "nodes"
    "deg" "diam" "area" "volume" "max-wire" "path-wire" "latency";
  let verdicts = List.map (fun fam -> evaluate fam ~layers) candidates in
  List.iter
    (fun v ->
      Printf.printf "%-28s %6d %4d %5d %10d %10d %9d %10d %9.0f\n" v.name
        v.nodes v.degree v.diameter v.area v.volume v.max_wire v.path_wire
        v.latency)
    verdicts;
  (* a crude figure of merit: area x diameter x max wire, normalized per
     node to compare across slightly different sizes *)
  print_newline ();
  let merit v =
    float_of_int v.area /. float_of_int (v.nodes * v.nodes)
    *. float_of_int v.diameter
    *. float_of_int v.max_wire /. float_of_int v.nodes
  in
  let best =
    List.fold_left
      (fun acc v -> match acc with
        | Some b when merit b <= merit v -> acc
        | _ -> Some v)
      None verdicts
  in
  (match best with
  | Some b ->
      Printf.printf
        "lowest (area x diameter x max-wire) per node^3: %s\n" b.name
  | None -> ());
  Printf.printf
    "note: degree-3 networks (CCC) trade silicon for hops; the paper's\n\
     point is that every candidate shrinks by ~(L/2)^2 in area when laid\n\
     out natively for L layers.\n"
