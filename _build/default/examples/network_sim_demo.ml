(* Network simulation demo: the paper's performance claim measured at
   the system level.  The same 256-node hypercube is laid out for 2 and
   8 wiring layers; link latencies derived from the realized wire
   lengths feed a cycle-driven simulator, producing latency-vs-load
   curves for both designs.

   Run with:  dune exec examples/network_sim_demo.exe *)
open Mvl_core

let () =
  let fam = Mvl.Families.hypercube 8 in
  let g = fam.Mvl.Families.graph in
  Printf.printf
    "cycle-driven simulation of %s (%d nodes), uniform traffic;\n\
     link latency = 1 + wire_length/32 cycles from the realized layout\n\n"
    fam.Mvl.Families.name fam.Mvl.Families.n_nodes;
  let latency_fn layers =
    let lay = fam.Mvl.Families.layout ~layers in
    Mvl.Network_sim.link_latency_of_layout ~units_per_cycle:32 lay
  in
  let ll2 = latency_fn 2 and ll8 = latency_fn 8 in
  Printf.printf "zero-load latency: L=2 -> %.1f cycles, L=8 -> %.1f cycles\n\n"
    (Mvl.Network_sim.zero_load_latency ~link_latency:ll2 g)
    (Mvl.Network_sim.zero_load_latency ~link_latency:ll8 g);
  Printf.printf "%8s | %12s %12s | %12s %12s\n" "load" "L=2 avg" "L=2 p99"
    "L=8 avg" "L=8 p99";
  List.iter
    (fun load ->
      let cfg =
        { Mvl.Network_sim.default_config with
          Mvl.Network_sim.offered_load = load; warmup = 300; measure = 1500 }
      in
      let r2 = Mvl.Network_sim.run ~config:cfg ~link_latency:ll2 g in
      let r8 = Mvl.Network_sim.run ~config:cfg ~link_latency:ll8 g in
      Printf.printf "%8.2f | %12.1f %12d | %12.1f %12d\n" load
        r2.Mvl.Network_sim.avg_latency r2.Mvl.Network_sim.p99_latency
        r8.Mvl.Network_sim.avg_latency r8.Mvl.Network_sim.p99_latency)
    [ 0.02; 0.05; 0.1; 0.2; 0.3 ];
  print_newline ();
  (* traffic pattern sweep at fixed load on the 8-layer design *)
  Printf.printf "pattern sweep at load 0.1 on the 8-layer layout:\n";
  List.iter
    (fun pattern ->
      let cfg =
        { Mvl.Network_sim.default_config with
          Mvl.Network_sim.traffic = pattern; offered_load = 0.1;
          warmup = 300; measure = 1500 }
      in
      let r = Mvl.Network_sim.run ~config:cfg ~link_latency:ll8 g in
      let name = Format.asprintf "%a" Mvl.Traffic.pp pattern in
      Format.printf "  %-16s %a@." name Mvl.Network_sim.pp_result r)
    [
      Mvl.Traffic.Uniform;
      Mvl.Traffic.Transpose;
      Mvl.Traffic.Bit_reversal;
      Mvl.Traffic.Bit_complement;
      Mvl.Traffic.Hotspot 0;
    ];
  print_newline ();
  (* flit-level wormhole with adaptive routing on a torus *)
  Printf.printf
    "wormhole (4-flit packets, 3 VCs) on a 4-ary 3-cube, transpose 0.08:\n";
  List.iter
    (fun (name, routing) ->
      let cfg =
        { Mvl.Wormhole.default_config with
          Mvl.Wormhole.routing; vcs = 3; traffic = Mvl.Traffic.Transpose;
          offered_load = 0.08; warmup = 300; measure = 1500 }
      in
      let r = Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Torus { k = 4; n = 3 }) in
      Format.printf "  %-14s %a@." name Mvl.Wormhole.pp_result r)
    [
      ("e-cube", Mvl.Wormhole.Deterministic);
      ("adaptive", Mvl.Wormhole.Adaptive);
    ]
