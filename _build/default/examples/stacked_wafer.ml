(* Stacked wafer: the multilayer 3-D grid model (§2.2).  A 1024-node
   hypercube fabric is built with the same total layer budget in three
   ways — flat 2-D, and stacked over 2 or 4 active layers — showing the
   footprint/volume trade-off of going 3-D.

   Run with:  dune exec examples/stacked_wafer.exe *)
open Mvl_core

let () =
  let n = 10 and total_layers = 16 in
  Printf.printf
    "a %d-node hypercube fabric with %d total wiring layers\n\n" (1 lsl n)
    total_layers;
  Printf.printf "%-28s %10s %12s %10s %8s\n" "organisation" "area" "volume"
    "max-wire" "valid";
  (* flat 2-D reference *)
  let flat = Mvl.Families.hypercube n in
  let flat_layout = flat.Mvl.Families.layout ~layers:total_layers in
  let fm = Mvl.Layout.metrics flat_layout in
  Printf.printf "%-28s %10d %12d %10d %8s\n" "2-D (1 active layer)"
    fm.Mvl.Layout.area fm.Mvl.Layout.volume fm.Mvl.Layout.max_wire
    (if Mvl.Check.is_valid flat_layout then "ok" else "FAIL");
  (* stacked variants *)
  List.iter
    (fun active ->
      let lps = total_layers / active in
      let t = Mvl.Multilayer3d.hypercube ~n ~active ~layers_per_slab:lps in
      let m = Mvl.Layout.metrics t.Mvl.Multilayer3d.layout in
      Printf.printf "%-28s %10d %12d %10d %8s\n"
        (Printf.sprintf "3-D (%d active, %d/slab)" active lps)
        m.Mvl.Layout.area m.Mvl.Layout.volume m.Mvl.Layout.max_wire
        (if Mvl.Check.is_valid t.Mvl.Multilayer3d.layout then "ok" else "FAIL"))
    [ 2; 4; 8 ];
  print_newline ();
  (* anatomy of the best split *)
  let best = Mvl.Multilayer3d.hypercube ~n ~active:4 ~layers_per_slab:4 in
  print_endline "anatomy of the 4-slab split:";
  Format.printf "%a@." Mvl.Report.pp (Mvl.Report.analyze best.Mvl.Multilayer3d.layout);
  Printf.printf
    "\neach active layer carries only %d nodes, so the die shrinks; the\n\
     inter-slab links ride reserved via stacks in the column gaps.\n"
    ((1 lsl n) / 4)
