(* Quickstart: build a network, lay it out for a given number of wiring
   layers, verify the geometry and read off the cost metrics.

   Run with:  dune exec examples/quickstart.exe *)
open Mvl_core

let () =
  (* 1. pick a network family: the 8-dimensional hypercube (256 nodes) *)
  let fam = Mvl.Families.hypercube 8 in
  Printf.printf "network: %s with %d nodes, %d links\n" fam.Mvl.Families.name
    fam.Mvl.Families.n_nodes
    (Mvl.Graph.m fam.Mvl.Families.graph);

  (* 2. lay it out under the multilayer grid model with 8 wiring layers *)
  let layout = fam.Mvl.Families.layout ~layers:8 in

  (* 3. verify: the strict model demands node-disjoint routed wires *)
  (match Mvl.Check.validate ~mode:Mvl.Check.Strict layout with
  | [] -> print_endline "layout verified: node-disjoint, on-terminal, in-range"
  | violations ->
      List.iter
        (fun v -> Format.printf "VIOLATION %a@." Mvl.Check.pp_violation v)
        violations;
      exit 1);

  (* 4. metrics *)
  let m = Mvl.Layout.metrics layout in
  Format.printf "metrics: %a@." Mvl.Layout.pp_metrics m;

  (* 5. compare with the paper's leading term, 16 N^2 / 9 L^2 *)
  (match fam.Mvl.Families.paper_area with
  | Some f ->
      let paper = f ~layers:8 in
      Printf.printf "paper leading term: %.0f (measured/paper = %.2f)\n" paper
        (float_of_int m.Mvl.Layout.area /. paper)
  | None -> ());

  (* 6. the multilayer pay-off: same network, only two layers *)
  let m2 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2) in
  Printf.printf
    "2-layer (Thompson) area: %d -> 8-layer area: %d (%.1fx smaller)\n"
    m2.Mvl.Layout.area m.Mvl.Layout.area
    (float_of_int m2.Mvl.Layout.area /. float_of_int m.Mvl.Layout.area);

  (* 7. render a small instance for inspection *)
  let small = Mvl.Families.hypercube 4 in
  let svg = Mvl.Render.layout_svg (small.Mvl.Families.layout ~layers:4) in
  let oc = open_out "hypercube4_l4.svg" in
  output_string oc svg;
  close_out oc;
  print_endline "wrote hypercube4_l4.svg"
