examples/layer_scaling.mli:
