examples/stacked_wafer.ml: Format List Mvl Mvl_core Printf
