examples/stacked_wafer.mli:
