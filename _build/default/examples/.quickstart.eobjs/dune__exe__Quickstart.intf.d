examples/quickstart.mli:
