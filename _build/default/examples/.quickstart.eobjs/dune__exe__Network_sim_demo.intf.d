examples/network_sim_demo.mli:
