examples/layer_scaling.ml: Array List Mvl Mvl_core Printf Sys
