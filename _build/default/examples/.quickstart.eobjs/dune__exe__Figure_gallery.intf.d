examples/figure_gallery.mli:
