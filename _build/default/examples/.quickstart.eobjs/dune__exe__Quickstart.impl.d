examples/quickstart.ml: Format List Mvl Mvl_core Printf
