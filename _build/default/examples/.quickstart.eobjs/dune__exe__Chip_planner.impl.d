examples/chip_planner.ml: Array List Mvl Mvl_core Printf Sys
