examples/figure_gallery.ml: Filename List Mvl Mvl_core Printf Unix
