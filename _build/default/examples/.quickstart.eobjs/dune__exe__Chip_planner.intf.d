examples/chip_planner.mli:
