examples/network_sim_demo.ml: Format List Mvl Mvl_core Printf
