open Mvl_core

let test_never_worse_than_initial () =
  List.iter
    (fun (name, g) ->
      let natural = Mvl.Collinear.natural g in
      let opt = Mvl.Order_opt.optimize ~iterations:4000 g in
      Alcotest.(check bool) (name ^ " not worse") true
        (opt.Mvl.Collinear.tracks <= natural.Mvl.Collinear.tracks);
      Alcotest.(check bool) (name ^ " valid") true
        (Mvl.Collinear.validate opt = Ok ()))
    [
      ("star", Mvl.Cayley.star 4);
      ("pancake", Mvl.Cayley.pancake 4);
      ("shuffle", Mvl.Shuffle.shuffle_exchange 5);
      ("ring", Mvl.Ring.create 12);
    ]

let test_improves_star () =
  let g = Mvl.Cayley.star 4 in
  let natural = Mvl.Collinear.natural g in
  let opt = Mvl.Order_opt.optimize ~iterations:8000 g in
  Alcotest.(check bool) "substantial improvement" true
    (opt.Mvl.Collinear.tracks * 2 <= natural.Mvl.Collinear.tracks)

let test_cannot_beat_cutwidth () =
  (* the optimizer can at best match the exact cutwidth *)
  let g = Mvl.Hypercube.create 4 in
  let cw = Mvl.Exact.cutwidth g in
  let opt =
    Mvl.Order_opt.optimize ~iterations:8000
      ~initial:(Mvl.Orders.hypercube_order 4) g
  in
  Alcotest.(check int) "matches the optimum" cw opt.Mvl.Collinear.tracks

let test_deterministic () =
  let g = Mvl.Cayley.star 4 in
  let a = Mvl.Order_opt.optimize ~seed:5 ~iterations:2000 g in
  let b = Mvl.Order_opt.optimize ~seed:5 ~iterations:2000 g in
  Alcotest.(check int) "same result" a.Mvl.Collinear.tracks
    b.Mvl.Collinear.tracks;
  Alcotest.(check (array int)) "same order" a.Mvl.Collinear.node_at
    b.Mvl.Collinear.node_at

let test_evaluate () =
  let g = Mvl.Ring.create 6 in
  let o = Mvl.Order_opt.evaluate g ~node_at:[| 0; 1; 2; 3; 4; 5 |] in
  Alcotest.(check int) "ring density" 2 o.Mvl.Order_opt.tracks;
  Alcotest.(check int) "ring span" (5 + 5) o.Mvl.Order_opt.total_span

let test_optimized_family_layout_valid () =
  let fam = Mvl.Families.star ~optimize:true 4 in
  Alcotest.(check bool) "optimized star layout valid" true
    (Mvl.Check.is_valid ~mode:Mvl.Check.Strict (fam.Mvl.Families.layout ~layers:4))

let suite =
  [
    Alcotest.test_case "never worse than initial" `Quick
      test_never_worse_than_initial;
    Alcotest.test_case "improves star graphs" `Quick test_improves_star;
    Alcotest.test_case "cannot beat the cutwidth" `Quick test_cannot_beat_cutwidth;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "evaluate" `Quick test_evaluate;
    Alcotest.test_case "optimized family layouts valid" `Quick
      test_optimized_family_layout_valid;
  ]
