open Mvl_core
module C = Mvl.Collinear

let check_valid name c =
  match C.validate c with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let test_track_assign_greedy () =
  let spans =
    [| Mvl.Interval.make 0 2; Mvl.Interval.make 2 4; Mvl.Interval.make 1 3 |]
  in
  let assignment = Mvl.Track_assign.greedy spans in
  (* endpoint-sharing spans reuse a track; the overlapping one cannot *)
  Alcotest.(check int) "two tracks" 2 (Mvl.Track_assign.count_tracks assignment);
  Alcotest.(check int) "density" 2 (Mvl.Track_assign.max_density spans)

let prop_greedy_optimal =
  QCheck.Test.make ~count:300 ~name:"greedy track count equals max density"
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 20) (int_range 0 20)))
    (fun pairs ->
      let spans =
        Array.of_list
          (List.filter_map
             (fun (a, b) -> if a = b then None else Some (Mvl.Interval.make a b))
             pairs)
      in
      Array.length spans = 0
      || Mvl.Track_assign.count_tracks (Mvl.Track_assign.greedy spans)
         = Mvl.Track_assign.max_density spans)

let prop_greedy_valid =
  QCheck.Test.make ~count:300 ~name:"greedy assignment is interior-disjoint"
    QCheck.(list_of_size (Gen.int_range 1 40) (pair (int_range 0 20) (int_range 0 20)))
    (fun pairs ->
      let spans =
        Array.of_list
          (List.filter_map
             (fun (a, b) -> if a = b then None else Some (Mvl.Interval.make a b))
             pairs)
      in
      let assignment = Mvl.Track_assign.greedy spans in
      let ok = ref true in
      Array.iteri
        (fun i si ->
          Array.iteri
            (fun j sj ->
              if i < j && assignment.(i) = assignment.(j)
                 && Mvl.Interval.overlap_interior si sj
              then ok := false)
            spans)
        spans;
      !ok)

let test_ring_tracks () =
  List.iter
    (fun k ->
      let c = Mvl.Collinear_ring.create k in
      check_valid "ring" c;
      Alcotest.(check int) (Printf.sprintf "ring %d tracks" k)
        (if k <= 2 then 1 else 2)
        c.C.tracks;
      let f = Mvl.Collinear_ring.create ~fold:true k in
      check_valid "folded ring" c;
      Alcotest.(check bool) "folded tracks <= 2" true (f.C.tracks <= 2);
      if k > 4 then
        Alcotest.(check bool)
          (Printf.sprintf "folded ring %d span <= 2" k)
          true
          (C.max_span f <= 2))
    [ 2; 3; 4; 5; 6; 9; 12 ]

let test_kary_formula () =
  List.iter
    (fun (k, n) ->
      let c = Mvl.Collinear_kary.create ~k ~n () in
      check_valid "kary" c;
      Alcotest.(check int)
        (Printf.sprintf "f_%d(%d)" k n)
        (Mvl.Collinear_kary.tracks_formula ~k ~n)
        c.C.tracks;
      let e = Mvl.Collinear_kary.create_explicit ~k ~n in
      check_valid "kary explicit" e;
      Alcotest.(check int) "explicit matches formula"
        (Mvl.Collinear_kary.tracks_formula ~k ~n)
        e.C.tracks)
    [ (3, 1); (3, 2); (3, 3); (4, 1); (4, 2); (4, 3); (5, 2); (6, 2); (8, 1) ]

let test_kary_folded () =
  List.iter
    (fun (k, n) ->
      let f = Mvl.Collinear_kary.create ~fold:true ~k ~n () in
      check_valid "kary folded" f;
      Alcotest.(check int) "folded keeps the track formula"
        (Mvl.Collinear_kary.tracks_formula ~k ~n)
        f.C.tracks;
      let natural = Mvl.Collinear_kary.create ~k ~n () in
      Alcotest.(check bool) "folded span is no longer" true
        (C.max_span f <= C.max_span natural))
    [ (4, 2); (5, 2); (6, 2); (4, 3); (8, 2) ]

let test_complete_formula () =
  List.iter
    (fun nn ->
      let c = Mvl.Collinear_complete.create nn in
      check_valid "complete" c;
      Alcotest.(check int)
        (Printf.sprintf "K_%d tracks" nn)
        (Mvl.Collinear_complete.tracks_formula nn)
        c.C.tracks;
      (* optimality: the greedy count equals the cut lower bound *)
      Alcotest.(check int) "strictly optimal" (C.density_lower_bound c) c.C.tracks)
    [ 2; 3; 4; 5; 6; 7; 8; 9; 12; 16; 20; 32 ]

let test_fig3_complete_9 () =
  (* Fig. 3: K_9 in 20 tracks *)
  let c = Mvl.Collinear_complete.create 9 in
  Alcotest.(check int) "20 tracks" 20 c.C.tracks

let test_ghc_formula () =
  (* odd radices meet the paper's recurrence exactly; even radices may
     beat it slightly (greedy shares the fresh complete-graph tracks) *)
  List.iter
    (fun (r, n) ->
      let radices = Mvl.Mixed_radix.uniform ~radix:r ~dims:n in
      let c = Mvl.Collinear_ghc.create radices in
      check_valid "ghc" c;
      let formula = Mvl.Collinear_ghc.tracks_formula radices in
      Alcotest.(check bool)
        (Printf.sprintf "GHC(%d,%d) within formula" r n)
        true (c.C.tracks <= formula);
      if r mod 2 = 1 then
        Alcotest.(check int) "odd radix meets the recurrence exactly" formula
          c.C.tracks)
    [ (3, 1); (3, 2); (3, 3); (5, 2); (7, 1); (4, 2); (4, 3); (6, 2) ]

let test_ghc_mixed_radix () =
  let radices = [| 3; 4; 2 |] in
  let c = Mvl.Collinear_ghc.create radices in
  check_valid "ghc mixed" c;
  Alcotest.(check bool) "mixed radix within recurrence" true
    (c.C.tracks <= Mvl.Collinear_ghc.tracks_formula radices)

let test_hypercube_formula () =
  List.iter
    (fun n ->
      let c = Mvl.Collinear_hypercube.create n in
      check_valid "hypercube" c;
      Alcotest.(check int)
        (Printf.sprintf "floor(2N/3) for n=%d" n)
        (Mvl.Collinear_hypercube.tracks_formula n)
        c.C.tracks;
      let e = Mvl.Collinear_hypercube.create_explicit n in
      check_valid "hypercube explicit" e;
      Alcotest.(check int) "explicit matches"
        (Mvl.Collinear_hypercube.tracks_formula n)
        e.C.tracks)
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_fig4_hypercube_4 () =
  (* Fig. 4: the 4-cube in 10 tracks *)
  let c = Mvl.Collinear_hypercube.create 4 in
  Alcotest.(check int) "10 tracks" 10 c.C.tracks

let test_fold_halves_span () =
  let c = Mvl.Collinear_hypercube.create 8 in
  let f = C.fold c in
  check_valid "folded hypercube line" f;
  Alcotest.(check int) "span falls to N/2" (1 lsl 7) (C.max_span f);
  Alcotest.(check int) "natural span is 3N/4" (3 * (1 lsl 8) / 4) (C.max_span c)

let test_of_order_rejects_bad_input () =
  let g = Mvl.Ring.create 4 in
  (try
     ignore (C.of_order g ~node_at:[| 0; 1; 2 |]);
     Alcotest.fail "wrong length accepted"
   with Invalid_argument _ -> ());
  try
    ignore (C.of_order g ~node_at:[| 0; 1; 2; 2 |]);
    Alcotest.fail "duplicate accepted"
  with Invalid_argument _ -> ()

let test_validate_catches_conflict () =
  let g = Mvl.Ring.create 4 in
  let c = C.natural g in
  (* force all edges onto one track: spans overlap *)
  let broken =
    { c with C.edges = Array.map (fun e -> { e with C.track = 0 }) c.C.edges;
             C.tracks = 1 }
  in
  match C.validate broken with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "conflicting assignment accepted"

let prop_random_order_valid =
  QCheck.Test.make ~count:100 ~name:"greedy collinear is valid on any order"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let n = 4 + (seed mod 5) in
      let g = Mvl.Hypercube.create n in
      let node_at = Array.init (Mvl.Graph.n g) (fun i -> i) in
      (* deterministic shuffle *)
      let state = ref seed in
      let rand bound =
        state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
        !state mod bound
      in
      for i = Mvl.Graph.n g - 1 downto 1 do
        let j = rand (i + 1) in
        let tmp = node_at.(i) in
        node_at.(i) <- node_at.(j);
        node_at.(j) <- tmp
      done;
      let c = C.of_order g ~node_at in
      C.validate c = Ok ())

let test_collinear_product () =
  (* the generic product recursion reproduces the specialized counts *)
  let r3 = Mvl.Collinear_ring.create 3 in
  let p = Mvl.Collinear_product.create r3 r3 in
  check_valid "ring3 x ring3" p;
  Alcotest.(check int) "matches f_3(2)"
    (Mvl.Collinear_kary.tracks_formula ~k:3 ~n:2)
    p.C.tracks;
  Alcotest.(check int) "bound"
    (Mvl.Collinear_product.tracks_bound r3 r3)
    ((3 * r3.C.tracks) + r3.C.tracks);
  let h2 = Mvl.Collinear_hypercube.create 2 in
  let hp = Mvl.Collinear_product.create h2 h2 in
  check_valid "2cube x 2cube" hp;
  Alcotest.(check int) "matches floor(2*16/3)"
    (Mvl.Collinear_hypercube.tracks_formula 4)
    hp.C.tracks;
  (* heterogeneous: mesh path x clique *)
  let path4 = Mvl.Collinear.natural (Mvl.Mesh.path 4) in
  let k3 = Mvl.Collinear_complete.create 3 in
  let mixed = Mvl.Collinear_product.create path4 k3 in
  check_valid "path4 x K3" mixed;
  Alcotest.(check bool) "within the recursion bound" true
    (mixed.C.tracks <= Mvl.Collinear_product.tracks_bound path4 k3)

let prop_product_within_bound =
  QCheck.Test.make ~count:60 ~name:"product tracks within recursion bound"
    QCheck.(pair (int_range 3 6) (int_range 3 6))
    (fun (ka, kb) ->
      let la = Mvl.Collinear_ring.create ka in
      let lb = Mvl.Collinear_ring.create kb in
      let p = Mvl.Collinear_product.create la lb in
      Mvl.Collinear.validate p = Ok ()
      && p.C.tracks <= Mvl.Collinear_product.tracks_bound la lb)

let suite =
  [
    Alcotest.test_case "greedy basics" `Quick test_track_assign_greedy;
    Alcotest.test_case "collinear products" `Quick test_collinear_product;
    QCheck_alcotest.to_alcotest prop_product_within_bound;
    QCheck_alcotest.to_alcotest prop_greedy_optimal;
    QCheck_alcotest.to_alcotest prop_greedy_valid;
    Alcotest.test_case "ring tracks" `Quick test_ring_tracks;
    Alcotest.test_case "kary f_k(n) formula" `Quick test_kary_formula;
    Alcotest.test_case "kary folded order" `Quick test_kary_folded;
    Alcotest.test_case "complete floor(N^2/4)" `Quick test_complete_formula;
    Alcotest.test_case "Fig.3: K_9 in 20 tracks" `Quick test_fig3_complete_9;
    Alcotest.test_case "ghc recurrence" `Quick test_ghc_formula;
    Alcotest.test_case "ghc mixed radix" `Quick test_ghc_mixed_radix;
    Alcotest.test_case "hypercube floor(2N/3)" `Quick test_hypercube_formula;
    Alcotest.test_case "Fig.4: 4-cube in 10 tracks" `Quick test_fig4_hypercube_4;
    Alcotest.test_case "global fold halves the span" `Quick test_fold_halves_span;
    Alcotest.test_case "of_order input validation" `Quick
      test_of_order_rejects_bad_input;
    Alcotest.test_case "validate catches conflicts" `Quick
      test_validate_catches_conflict;
    QCheck_alcotest.to_alcotest prop_random_order_valid;
  ]
