open Mvl_core

let strict_valid name lay =
  match Mvl.Check.validate ~mode:Mvl.Check.Strict lay with
  | [] -> ()
  | v :: _ ->
      Alcotest.fail (Format.asprintf "%s: %a" name Mvl.Check.pp_violation v)

let test_ccc_structure () =
  let fam = Mvl.Families.ccc 3 in
  Alcotest.(check int) "N = n 2^n" 24 fam.Mvl.Families.n_nodes;
  let lay = fam.Mvl.Families.layout ~layers:2 in
  strict_valid "ccc(3) L=2" lay

let test_ccc_layers () =
  let fam = Mvl.Families.ccc 4 in
  List.iter
    (fun layers ->
      strict_valid
        (Printf.sprintf "ccc(4) L=%d" layers)
        (fam.Mvl.Families.layout ~layers))
    [ 2; 3; 4; 6; 8 ]

let test_reduced_hypercube () =
  let fam = Mvl.Families.reduced_hypercube 4 in
  Alcotest.(check int) "N" 64 fam.Mvl.Families.n_nodes;
  List.iter
    (fun layers ->
      strict_valid
        (Printf.sprintf "rh(4) L=%d" layers)
        (fam.Mvl.Families.layout ~layers))
    [ 2; 4 ]

let test_hsn () =
  List.iter
    (fun (levels, radix) ->
      let fam = Mvl.Families.hsn ~levels ~radix in
      List.iter
        (fun layers ->
          strict_valid
            (Printf.sprintf "hsn(%d,%d) L=%d" levels radix layers)
            (fam.Mvl.Families.layout ~layers))
        [ 2; 4 ])
    [ (2, 3); (3, 3); (2, 5); (3, 4) ]

let test_hhn () =
  let fam = Mvl.Families.hhn ~levels:2 ~cube_dims:2 in
  strict_valid "hhn L=2" (fam.Mvl.Families.layout ~layers:2);
  strict_valid "hhn L=5" (fam.Mvl.Families.layout ~layers:5)

let test_butterfly_cluster () =
  let fam = Mvl.Families.butterfly_cluster ~radix:3 ~quotient_dims:2 in
  List.iter
    (fun layers ->
      strict_valid
        (Printf.sprintf "butterfly_cluster L=%d" layers)
        (fam.Mvl.Families.layout ~layers))
    [ 2; 4; 7 ]

let test_isn () =
  let fam = Mvl.Families.isn ~radix:3 ~quotient_dims:2 in
  List.iter
    (fun layers ->
      strict_valid
        (Printf.sprintf "isn L=%d" layers)
        (fam.Mvl.Families.layout ~layers))
    [ 2; 4 ]

let test_isn_beats_butterfly () =
  (* multiplicity 2 vs 4 should make the ISN layout smaller than the
     butterfly-structured one at equal quotient *)
  let bf = Mvl.Families.butterfly_cluster ~radix:4 ~quotient_dims:2 in
  let isn = Mvl.Families.isn ~radix:4 ~quotient_dims:2 in
  let a_bf = (Mvl.Layout.metrics (bf.Mvl.Families.layout ~layers:4)).Mvl.Layout.area in
  let a_isn = (Mvl.Layout.metrics (isn.Mvl.Families.layout ~layers:4)).Mvl.Layout.area in
  Alcotest.(check bool) "isn smaller" true (a_isn < a_bf)

let test_kary_cluster_area_overhead () =
  (* §3.2: for small c the cluster-c network costs about the same as its
     quotient *)
  let quotient = Mvl.Families.kary ~k:6 ~n:2 () in
  let clustered = Mvl.Families.kary_cluster ~k:6 ~n:2 ~c:2 in
  strict_valid "kary cluster" (clustered.Mvl.Families.layout ~layers:2);
  let a_q =
    (Mvl.Layout.metrics (quotient.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  let a_c =
    (Mvl.Layout.metrics (clustered.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  Alcotest.(check bool) "overhead bounded" true
    (float_of_int a_c /. float_of_int a_q < 6.0)

let test_multiplicity_scaling () =
  (* doubling the link multiplicity should roughly double the gaps *)
  let build mult =
    let quotient = Mvl.Generalized_hypercube.create_uniform ~r:3 ~n:2 in
    let intra = Mvl.Mesh.create ~dims:[| 3; 2 |] in
    let pn = Mvl.Pn_cluster.create ~quotient ~intra ~multiplicity:mult () in
    let row = Mvl.Collinear_ghc.create_uniform ~r:3 ~n:1 () in
    let col = Mvl.Collinear_ghc.create_uniform ~r:3 ~n:1 () in
    let spec =
      Mvl.Cluster_expand.of_product_quotient ~pn ~row_factor:row
        ~col_factor:col ~intra:(Mvl.Collinear.natural intra)
    in
    let lay = Mvl.Cluster_expand.realize spec ~layers:2 in
    strict_valid (Printf.sprintf "mult=%d" mult) lay;
    (Mvl.Layout.metrics lay).Mvl.Layout.area
  in
  let a1 = build 1 and a2 = build 2 and a4 = build 4 in
  Alcotest.(check bool) "monotone in multiplicity" true (a1 < a2 && a2 < a4)

let test_expanded_graph_connectivity () =
  List.iter
    (fun fam ->
      Alcotest.(check bool)
        (fam.Mvl.Families.name ^ " connected")
        true
        (Mvl.Graph.is_connected fam.Mvl.Families.graph))
    [
      Mvl.Families.ccc 4;
      Mvl.Families.hsn ~levels:3 ~radix:3;
      Mvl.Families.butterfly_cluster ~radix:3 ~quotient_dims:2;
      Mvl.Families.isn ~radix:3 ~quotient_dims:2;
    ]

let prop_random_pn_clusters_valid =
  QCheck.Test.make ~count:25 ~name:"random PN clusters lay out strict-valid"
    QCheck.(
      quad (int_range 3 5) (int_range 3 5) (int_range 2 4) (int_range 1 2))
    (fun (qa, qb, csize, mult) ->
      (* quotient = ring(qa) x ring(qb); clusters = K_csize *)
      let quotient =
        Mvl.Graph.cartesian_product (Mvl.Ring.create qa) (Mvl.Ring.create qb)
      in
      let intra = Mvl.Complete.create csize in
      let pn = Mvl.Pn_cluster.create ~quotient ~intra ~multiplicity:mult () in
      let spec =
        Mvl.Cluster_expand.of_product_quotient ~pn
          ~row_factor:(Mvl.Collinear_ring.create qa)
          ~col_factor:(Mvl.Collinear_ring.create qb)
          ~intra:(Mvl.Collinear_complete.create csize)
      in
      let lay = Mvl.Cluster_expand.realize spec ~layers:3 in
      Mvl.Check.is_valid ~mode:Mvl.Check.Strict lay)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_random_pn_clusters_valid;
    Alcotest.test_case "ccc structure" `Quick test_ccc_structure;
    Alcotest.test_case "ccc across layers" `Quick test_ccc_layers;
    Alcotest.test_case "reduced hypercube" `Quick test_reduced_hypercube;
    Alcotest.test_case "hsn layouts" `Quick test_hsn;
    Alcotest.test_case "hhn layouts" `Quick test_hhn;
    Alcotest.test_case "butterfly cluster" `Quick test_butterfly_cluster;
    Alcotest.test_case "isn" `Quick test_isn;
    Alcotest.test_case "isn beats butterfly" `Quick test_isn_beats_butterfly;
    Alcotest.test_case "kary cluster overhead" `Quick
      test_kary_cluster_area_overhead;
    Alcotest.test_case "multiplicity scaling" `Quick test_multiplicity_scaling;
    Alcotest.test_case "expanded graphs connected" `Quick
      test_expanded_graph_connectivity;
  ]
