open Mvl_core

let test_bisection_closed_forms () =
  Alcotest.(check int) "Q3" (Mvl.Lower_bounds.hypercube_bisection 3)
    (Mvl.Exact.bisection (Mvl.Hypercube.create 3));
  Alcotest.(check int) "Q4" (Mvl.Lower_bounds.hypercube_bisection 4)
    (Mvl.Exact.bisection (Mvl.Hypercube.create 4));
  Alcotest.(check int) "K9" (Mvl.Lower_bounds.complete_bisection 9)
    (Mvl.Exact.bisection (Mvl.Complete.create 9));
  Alcotest.(check int) "K10" (Mvl.Lower_bounds.complete_bisection 10)
    (Mvl.Exact.bisection (Mvl.Complete.create 10));
  Alcotest.(check int) "4-ary 2-cube" (Mvl.Lower_bounds.kary_bisection ~k:4 ~n:2)
    (Mvl.Exact.bisection (Mvl.Kary_ncube.create ~k:4 ~n:2));
  Alcotest.(check int) "GHC(4,2)" (Mvl.Lower_bounds.ghc_bisection ~r:4 ~n:2)
    (Mvl.Exact.bisection (Mvl.Generalized_hypercube.create_uniform ~r:4 ~n:2))

let test_bisection_folded () =
  Alcotest.(check int) "folded Q4" (Mvl.Lower_bounds.folded_hypercube_bisection 4)
    (Mvl.Exact.bisection (Mvl.Folded_hypercube.create 4))

let test_cutwidth_basics () =
  Alcotest.(check int) "path" 1 (Mvl.Exact.cutwidth (Mvl.Mesh.path 8));
  Alcotest.(check int) "ring" 2 (Mvl.Exact.cutwidth (Mvl.Ring.create 9));
  (* complete graphs: floor(N^2/4) for every order *)
  List.iter
    (fun n ->
      Alcotest.(check int)
        (Printf.sprintf "K%d" n)
        (n * n / 4)
        (Mvl.Exact.cutwidth (Mvl.Complete.create n)))
    [ 3; 4; 5; 6; 7; 8 ]

let test_paper_layouts_are_order_optimal () =
  (* the paper's collinear constructions achieve the true cutwidth at
     small sizes — stronger than the asymptotic optimality it claims *)
  Alcotest.(check int) "3-cube: floor(2N/3) = cutwidth"
    (Mvl.Collinear_hypercube.tracks_formula 3)
    (Mvl.Exact.cutwidth (Mvl.Hypercube.create 3));
  Alcotest.(check int) "4-cube: floor(2N/3) = cutwidth"
    (Mvl.Collinear_hypercube.tracks_formula 4)
    (Mvl.Exact.cutwidth (Mvl.Hypercube.create 4));
  Alcotest.(check int) "3-ary 2-cube: f_3(2) = cutwidth"
    (Mvl.Collinear_kary.tracks_formula ~k:3 ~n:2)
    (Mvl.Exact.cutwidth (Mvl.Kary_ncube.create ~k:3 ~n:2));
  Alcotest.(check int) "GHC(3,2) greedy = cutwidth"
    (Mvl.Collinear_ghc.create_uniform ~r:3 ~n:2 ()).Mvl.Collinear.tracks
    (Mvl.Exact.cutwidth (Mvl.Generalized_hypercube.create_uniform ~r:3 ~n:2))

let test_cutwidth_lower_bounds_every_order () =
  (* no order can beat the cutwidth: qcheck over random orders *)
  let g = Mvl.Hypercube.create 4 in
  let cw = Mvl.Exact.cutwidth g in
  let state = ref 12345 in
  let rand bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for _ = 1 to 50 do
    let node_at = Array.init 16 (fun i -> i) in
    for i = 15 downto 1 do
      let j = rand (i + 1) in
      let tmp = node_at.(i) in
      node_at.(i) <- node_at.(j);
      node_at.(j) <- tmp
    done;
    let c = Mvl.Collinear.of_order g ~node_at in
    Alcotest.(check bool) "no order beats cutwidth" true
      (c.Mvl.Collinear.tracks >= cw)
  done

let test_size_guards () =
  (try
     ignore (Mvl.Exact.bisection (Mvl.Hypercube.create 5));
     Alcotest.fail "32 nodes accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Mvl.Exact.cutwidth (Mvl.Hypercube.create 5));
    Alcotest.fail "32 nodes accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "exact bisection matches closed forms" `Quick
      test_bisection_closed_forms;
    Alcotest.test_case "folded bisection" `Quick test_bisection_folded;
    Alcotest.test_case "cutwidth basics" `Quick test_cutwidth_basics;
    Alcotest.test_case "paper layouts are order-optimal" `Quick
      test_paper_layouts_are_order_optimal;
    Alcotest.test_case "cutwidth is a floor" `Quick
      test_cutwidth_lower_bounds_every_order;
    Alcotest.test_case "size guards" `Quick test_size_guards;
  ]
