open Mvl_core

let test_edge_lengths () =
  let fam = Mvl.Families.hypercube 4 in
  let lay = fam.Mvl.Families.layout ~layers:2 in
  let r = Mvl.Route.of_layout lay in
  (* every edge has a positive recorded length *)
  Mvl.Graph.iter_edges fam.Mvl.Families.graph (fun u v ->
      Alcotest.(check bool) "positive length" true (Mvl.Route.edge_length r u v > 0))

let test_max_wire_agrees () =
  let fam = Mvl.Families.kary ~k:4 ~n:2 () in
  let lay = fam.Mvl.Families.layout ~layers:2 in
  let m = Mvl.Layout.metrics lay in
  let r = Mvl.Route.of_layout lay in
  Alcotest.(check int) "max wire matches metrics" m.Mvl.Layout.max_wire
    (Mvl.Route.max_wire r)

let test_best_path_monotone () =
  let fam = Mvl.Families.hypercube 5 in
  let lay = fam.Mvl.Families.layout ~layers:2 in
  let r = Mvl.Route.of_layout lay in
  let best = Mvl.Route.best_path_wire r ~src:0 in
  Alcotest.(check int) "src at zero" 0 best.(0);
  (* a path's accumulated wire is at least the longest single hop on it
     and at least the direct edge for neighbours *)
  Mvl.Graph.iter_neighbors fam.Mvl.Families.graph 0 (fun v ->
      Alcotest.(check int) "neighbour best = edge length"
        (Mvl.Route.edge_length r 0 v)
        best.(v))

let test_path_wire_shrinks_with_layers () =
  let fam = Mvl.Families.hypercube 8 in
  let p2 =
    Mvl.Route.max_path_wire ~samples:4
      (Mvl.Route.of_layout (fam.Mvl.Families.layout ~layers:2))
  in
  let p8 =
    Mvl.Route.max_path_wire ~samples:4
      (Mvl.Route.of_layout (fam.Mvl.Families.layout ~layers:8))
  in
  Alcotest.(check bool) "claim (4): path wire shrinks" true (p8 < p2)

let test_triangle_inequality_on_bfs_paths () =
  let fam = Mvl.Families.generalized_hypercube ~r:3 ~n:2 () in
  let lay = fam.Mvl.Families.layout ~layers:2 in
  let r = Mvl.Route.of_layout lay in
  let best = Mvl.Route.best_path_wire r ~src:0 in
  let dist = Mvl.Graph.bfs_dist fam.Mvl.Families.graph 0 in
  Array.iteri
    (fun v b ->
      if dist.(v) < max_int then
        Alcotest.(check bool)
          (Printf.sprintf "node %d reachable via shortest path" v)
          true (b < max_int))
    best

let suite =
  [
    Alcotest.test_case "edge lengths recorded" `Quick test_edge_lengths;
    Alcotest.test_case "max wire agrees with metrics" `Quick test_max_wire_agrees;
    Alcotest.test_case "best path basics" `Quick test_best_path_monotone;
    Alcotest.test_case "path wire shrinks with L" `Quick
      test_path_wire_shrinks_with_layers;
    Alcotest.test_case "all reachable on shortest paths" `Quick
      test_triangle_inequality_on_bfs_paths;
  ]
