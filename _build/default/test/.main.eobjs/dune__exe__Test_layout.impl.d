test/test_layout.ml: Alcotest Array Format List Mvl Mvl_core Printf
