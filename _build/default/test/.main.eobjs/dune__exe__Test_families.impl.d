test/test_families.ml: Alcotest Array Format Gen List Mvl Mvl_core Printf QCheck QCheck_alcotest
