test/test_mutations.ml: Alcotest Array Mvl Mvl_core Printf QCheck QCheck_alcotest
