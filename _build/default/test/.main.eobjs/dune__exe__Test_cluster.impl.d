test/test_cluster.ml: Alcotest Format List Mvl Mvl_core Printf QCheck QCheck_alcotest
