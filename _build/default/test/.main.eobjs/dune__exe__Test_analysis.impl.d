test/test_analysis.ml: Alcotest Array Format List Mvl Mvl_core String
