test/test_order_opt.ml: Alcotest List Mvl Mvl_core
