test/test_mixed_radix.ml: Alcotest Array Gen List Mvl Mvl_core Printf QCheck QCheck_alcotest
