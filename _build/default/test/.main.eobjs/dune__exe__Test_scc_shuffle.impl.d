test/test_scc_shuffle.ml: Alcotest Hashtbl List Mvl Mvl_core Printf
