test/test_sim.ml: Alcotest Mvl Mvl_core Printf
