test/test_serialize.ml: Alcotest Filename List Mvl Mvl_core String Sys
