test/test_routing.ml: Alcotest Array Mvl Mvl_core Printf
