test/test_render.ml: Alcotest List Mvl Mvl_core Printf String
