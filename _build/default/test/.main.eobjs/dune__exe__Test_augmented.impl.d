test/test_augmented.ml: Alcotest Array Format List Mvl Mvl_core Printf
