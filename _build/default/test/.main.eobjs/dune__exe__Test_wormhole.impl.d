test/test_wormhole.ml: Alcotest Mvl Mvl_core
