test/test_graph.ml: Alcotest Array List Mvl Mvl_core QCheck QCheck_alcotest
