test/test_maze.ml: Alcotest Array Format Mvl Mvl_core
