test/test_permutation.ml: Alcotest Array List Mvl Mvl_core Printf QCheck QCheck_alcotest
