test/test_layout3d.ml: Alcotest Array Format List Mvl Mvl_core Printf
