test/test_delay_report.ml: Alcotest Format List Mvl Mvl_core String
