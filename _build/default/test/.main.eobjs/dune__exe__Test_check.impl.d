test/test_check.ml: Alcotest List Mvl Mvl_core
