test/test_model.ml: Alcotest List Mvl Mvl_core
