test/test_generators.ml: Alcotest List Mvl Mvl_core Printf
