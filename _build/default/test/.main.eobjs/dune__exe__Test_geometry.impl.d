test/test_geometry.ml: Alcotest Array Mvl Mvl_core QCheck QCheck_alcotest
