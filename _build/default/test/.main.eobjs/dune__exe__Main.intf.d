test/main.mli:
