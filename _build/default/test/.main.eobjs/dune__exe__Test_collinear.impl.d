test/test_collinear.ml: Alcotest Array Gen List Mvl Mvl_core Printf QCheck QCheck_alcotest
