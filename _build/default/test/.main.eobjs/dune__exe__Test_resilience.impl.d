test/test_resilience.ml: Alcotest Mvl Mvl_core
