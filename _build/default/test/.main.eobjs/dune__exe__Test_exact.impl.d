test/test_exact.ml: Alcotest Array List Mvl Mvl_core Printf
