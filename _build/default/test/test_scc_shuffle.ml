open Mvl_core
module G = Mvl.Graph

let test_scc_structure () =
  List.iter
    (fun d ->
      let s = Mvl.Scc.create d in
      let fact = Mvl.Permutation.factorial d in
      Alcotest.(check int)
        (Printf.sprintf "SCC(%d) nodes" d)
        (fact * (d - 1))
        (G.n s.Mvl.Scc.graph);
      Alcotest.(check bool) "connected" true (G.is_connected s.Mvl.Scc.graph);
      Alcotest.(check bool) "regular degree 3 for d>=4" true
        (d < 4 || (G.is_regular s.Mvl.Scc.graph && G.max_degree s.Mvl.Scc.graph = 3)))
    [ 3; 4; 5 ]

let test_scc_star_links () =
  (* contracting the cycles gives back the star graph *)
  let d = 4 in
  let s = Mvl.Scc.create d in
  let star = Mvl.Cayley.star d in
  let contracted = Hashtbl.create 64 in
  G.iter_edges s.Mvl.Scc.graph (fun u v ->
      let su = Mvl.Scc.star_of s u and sv = Mvl.Scc.star_of s v in
      if su <> sv then
        Hashtbl.replace contracted (min su sv, max su sv) ());
  Alcotest.(check int) "contracted edge count" (G.m star)
    (Hashtbl.length contracted);
  Hashtbl.iter
    (fun (su, sv) () ->
      Alcotest.(check bool) "contracted edge is a star edge" true
        (G.mem_edge star su sv))
    contracted

let test_scc_layout_valid () =
  List.iter
    (fun (d, layers) ->
      let fam = Mvl.Families.scc d in
      let lay = fam.Mvl.Families.layout ~layers in
      Alcotest.(check bool)
        (Printf.sprintf "scc(%d) L=%d" d layers)
        true
        (Mvl.Check.is_valid ~mode:Mvl.Check.Strict lay))
    [ (3, 2); (4, 2); (4, 4); (4, 5) ]

let test_shuffle_exchange () =
  let g = Mvl.Shuffle.shuffle_exchange 5 in
  Alcotest.(check int) "nodes" 32 (G.n g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* degree at most 3: exchange + two shuffle directions (collapsing) *)
  Alcotest.(check bool) "degree <= 3" true (G.max_degree g <= 3);
  (* exchange edges present *)
  Alcotest.(check bool) "exchange edge" true (G.mem_edge g 6 7);
  (* shuffle of 6 = 12 *)
  Alcotest.(check bool) "shuffle edge" true (G.mem_edge g 6 12)

let test_de_bruijn () =
  let g = Mvl.Shuffle.de_bruijn 5 in
  Alcotest.(check int) "nodes" 32 (G.n g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  Alcotest.(check bool) "degree <= 4" true (G.max_degree g <= 4);
  (* diameter of de Bruijn on 2^n nodes is n *)
  Alcotest.(check int) "diameter" 5 (G.diameter g);
  Alcotest.(check bool) "successor edge" true (G.mem_edge g 3 6);
  Alcotest.(check bool) "successor+1 edge" true (G.mem_edge g 3 7)

let test_fixed_degree_layouts () =
  List.iter
    (fun fam ->
      let lay = fam.Mvl.Families.layout ~layers:4 in
      Alcotest.(check bool) (fam.Mvl.Families.name ^ " valid") true
        (Mvl.Check.is_valid ~mode:Mvl.Check.Strict lay))
    [ Mvl.Families.shuffle_exchange 6; Mvl.Families.de_bruijn 6 ]

let suite =
  [
    Alcotest.test_case "scc structure" `Quick test_scc_structure;
    Alcotest.test_case "scc star quotient" `Quick test_scc_star_links;
    Alcotest.test_case "scc layouts valid" `Quick test_scc_layout_valid;
    Alcotest.test_case "shuffle-exchange" `Quick test_shuffle_exchange;
    Alcotest.test_case "de bruijn" `Quick test_de_bruijn;
    Alcotest.test_case "fixed-degree layouts" `Quick test_fixed_degree_layouts;
  ]
