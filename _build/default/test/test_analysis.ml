open Mvl_core

(* --- golden figures ---------------------------------------------------- *)

let fig2_golden =
  "             +-----------+   +---+\n\
   \             +-------+   +---#---|\n\
   \     +-----------------------|   |\n\
   \     |-----------+---+-----------+\n\
   \ +---|-------|---|---|---|   |   |\n\
   \ |---|-------|---|---|-------|   |\n\
   \ +---|---+-----------|   |---|   |\n\
   \ |---+---+-----------#-----------|\n\
   [ 0 ][ 3 ][ 6 ][ 1 ][ 4 ][ 7 ][ 2 ][ 5 ][ 8 ]\n"

let test_fig2_golden () =
  let rendered =
    Mvl.Render.collinear_ascii (Mvl.Collinear_kary.create ~k:3 ~n:2 ())
  in
  Alcotest.(check string) "Fig. 2 snapshot" fig2_golden rendered

let test_fig_renders_stable () =
  (* snapshot stability: two renders are byte-identical *)
  let r1 = Mvl.Render.collinear_ascii (Mvl.Collinear_hypercube.create 4) in
  let r2 = Mvl.Render.collinear_ascii (Mvl.Collinear_hypercube.create 4) in
  Alcotest.(check string) "deterministic" r1 r2

(* --- Thompson never stricter than Strict -------------------------------- *)

let test_thompson_subset_of_strict () =
  (* any layout valid under Strict is valid under Thompson, and every
     Thompson violation also appears under Strict *)
  List.iter
    (fun fam ->
      let lay = fam.Mvl.Families.layout ~layers:3 in
      let strict = Mvl.Check.validate ~mode:Mvl.Check.Strict lay in
      let thompson = Mvl.Check.validate ~mode:Mvl.Check.Thompson lay in
      Alcotest.(check bool)
        (fam.Mvl.Families.name ^ " thompson <= strict")
        true
        (List.length thompson <= List.length strict))
    [
      Mvl.Families.hypercube 5;
      Mvl.Families.kary ~k:3 ~n:2 ();
      Mvl.Families.ccc 3;
      Mvl.Families.folded_hypercube 4;
    ]

(* --- congestion analysis ------------------------------------------------- *)

let test_congestion_uniform_hypercube () =
  let row = Mvl.Collinear_hypercube.create 3 in
  let o =
    Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:row
      (Mvl.Hypercube.create 6)
  in
  let c = Mvl.Congestion.analyze o in
  (* a symmetric product: every gap carries the same load *)
  Alcotest.(check bool) "perfect balance" true (c.Mvl.Congestion.balance > 0.99);
  Alcotest.(check int) "row gap = collinear tracks"
    (Mvl.Collinear_hypercube.tracks_formula 3)
    c.Mvl.Congestion.max_row_tracks;
  Array.iter
    (fun ch ->
      Alcotest.(check bool) "full utilization" true
        (ch.Mvl.Congestion.utilization > 0.99))
    c.Mvl.Congestion.rows

let test_congestion_counts_edges () =
  let row = Mvl.Collinear_ring.create 4 in
  let o =
    Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:row
      (Mvl.Kary_ncube.create ~k:4 ~n:2)
  in
  let c = Mvl.Congestion.analyze o in
  let total_row_edges =
    Array.fold_left (fun acc ch -> acc + ch.Mvl.Congestion.edges) 0
      c.Mvl.Congestion.rows
  in
  let total_col_edges =
    Array.fold_left (fun acc ch -> acc + ch.Mvl.Congestion.edges) 0
      c.Mvl.Congestion.cols
  in
  Alcotest.(check int) "all edges accounted"
    (Mvl.Graph.m o.Mvl.Orthogonal.graph)
    (total_row_edges + total_col_edges)

let test_congestion_renders () =
  let row = Mvl.Collinear_ring.create 3 in
  let o =
    Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:row
      (Mvl.Kary_ncube.create ~k:3 ~n:2)
  in
  let s = Format.asprintf "%a" Mvl.Congestion.pp (Mvl.Congestion.analyze o) in
  Alcotest.(check bool) "nonempty" true (String.length s > 20)

let suite =
  [
    Alcotest.test_case "Fig.2 golden snapshot" `Quick test_fig2_golden;
    Alcotest.test_case "figures render deterministically" `Quick
      test_fig_renders_stable;
    Alcotest.test_case "thompson <= strict" `Quick test_thompson_subset_of_strict;
    Alcotest.test_case "congestion balance" `Quick
      test_congestion_uniform_hypercube;
    Alcotest.test_case "congestion edge accounting" `Quick
      test_congestion_counts_edges;
    Alcotest.test_case "congestion rendering" `Quick test_congestion_renders;
  ]
