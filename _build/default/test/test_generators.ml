open Mvl_core
module G = Mvl.Graph

let check_regular_connected name g ~nodes ~degree ~edges =
  Alcotest.(check int) (name ^ " nodes") nodes (G.n g);
  Alcotest.(check int) (name ^ " edges") edges (G.m g);
  Alcotest.(check bool) (name ^ " regular") true (G.is_regular g);
  Alcotest.(check int) (name ^ " degree") degree (G.max_degree g);
  Alcotest.(check bool) (name ^ " connected") true (G.is_connected g)

let test_ring () =
  check_regular_connected "ring 5" (Mvl.Ring.create 5) ~nodes:5 ~degree:2
    ~edges:5;
  let two = Mvl.Ring.create 2 in
  Alcotest.(check int) "2-ring edges" 1 (G.m two)

let test_complete () =
  check_regular_connected "K7" (Mvl.Complete.create 7) ~nodes:7 ~degree:6
    ~edges:21

let test_hypercube () =
  List.iter
    (fun n ->
      check_regular_connected
        (Printf.sprintf "%d-cube" n)
        (Mvl.Hypercube.create n) ~nodes:(1 lsl n) ~degree:n
        ~edges:(n * (1 lsl (n - 1))))
    [ 1; 2; 3; 4; 5; 6 ];
  Alcotest.(check int) "diameter" 4 (G.diameter (Mvl.Hypercube.create 4));
  Alcotest.(check int) "edge dimension" 2
    (Mvl.Hypercube.dimension_of_edge 1 5)

let test_kary () =
  check_regular_connected "3-ary 2-cube"
    (Mvl.Kary_ncube.create ~k:3 ~n:2)
    ~nodes:9 ~degree:4 ~edges:18;
  check_regular_connected "4-ary 3-cube"
    (Mvl.Kary_ncube.create ~k:4 ~n:3)
    ~nodes:64 ~degree:6 ~edges:192;
  (* k = 2 degenerates to the hypercube *)
  Alcotest.(check bool) "2-ary n-cube = hypercube" true
    (G.equal (Mvl.Kary_ncube.create ~k:2 ~n:4) (Mvl.Hypercube.create 4));
  Alcotest.(check int) "torus diameter" (2 * 2)
    (G.diameter (Mvl.Kary_ncube.create ~k:5 ~n:2))

let test_ghc () =
  check_regular_connected "GHC(3,2)"
    (Mvl.Generalized_hypercube.create_uniform ~r:3 ~n:2)
    ~nodes:9 ~degree:4 ~edges:18;
  check_regular_connected "GHC(4,3)"
    (Mvl.Generalized_hypercube.create_uniform ~r:4 ~n:3)
    ~nodes:64 ~degree:9 ~edges:288;
  (* r = 2 is the binary hypercube *)
  Alcotest.(check bool) "GHC(2,n) = hypercube" true
    (G.equal
       (Mvl.Generalized_hypercube.create_uniform ~r:2 ~n:5)
       (Mvl.Hypercube.create 5));
  (* GHC diameter is the number of dimensions *)
  Alcotest.(check int) "diameter = n" 3
    (G.diameter (Mvl.Generalized_hypercube.create_uniform ~r:3 ~n:3));
  (* mixed radix: one dimension of 2 and one of 3 -> K2 x K3 *)
  let mixed = Mvl.Generalized_hypercube.create [| 2; 3 |] in
  Alcotest.(check int) "mixed nodes" 6 (G.n mixed);
  Alcotest.(check int) "mixed edges" ((3 * 1) + (2 * 3)) (G.m mixed)

let test_butterfly () =
  let bf = Mvl.Butterfly.create ~dims:3 ~wrap:false in
  Alcotest.(check int) "ordinary nodes" (4 * 8) (G.n bf.Mvl.Butterfly.graph);
  Alcotest.(check int) "ordinary edges" (3 * 8 * 2) (G.m bf.Mvl.Butterfly.graph);
  Alcotest.(check bool) "connected" true (G.is_connected bf.Mvl.Butterfly.graph);
  let wbf = Mvl.Butterfly.create ~dims:3 ~wrap:true in
  check_regular_connected "wrapped butterfly" wbf.Mvl.Butterfly.graph
    ~nodes:(3 * 8) ~degree:4
    ~edges:(3 * 8 * 2);
  (* node coordinate helpers *)
  let id = Mvl.Butterfly.node wbf ~row:5 ~level:2 in
  Alcotest.(check int) "row roundtrip" 5 (Mvl.Butterfly.row_of wbf id);
  Alcotest.(check int) "level roundtrip" 2 (Mvl.Butterfly.level_of wbf id)

let test_ccc () =
  let c = Mvl.Ccc.create 3 in
  check_regular_connected "CCC(3)" c.Mvl.Ccc.graph ~nodes:24 ~degree:3
    ~edges:36;
  let c4 = Mvl.Ccc.create 4 in
  Alcotest.(check int) "CCC(4) nodes" 64 (G.n c4.Mvl.Ccc.graph);
  Alcotest.(check bool) "CCC(4) regular degree 3" true
    (G.is_regular c4.Mvl.Ccc.graph && G.max_degree c4.Mvl.Ccc.graph = 3)

let test_folded () =
  let f = Mvl.Folded_hypercube.create 4 in
  check_regular_connected "folded 4-cube" f ~nodes:16 ~degree:5
    ~edges:((4 * 8) + 8);
  (* folding halves the diameter (ceil n/2) *)
  Alcotest.(check int) "diameter" 2 (G.diameter f)

let test_enhanced () =
  let e = Mvl.Enhanced_cube.create ~n:5 ~seed:11 in
  Alcotest.(check int) "nodes" 32 (G.n e);
  Alcotest.(check bool) "connected" true (G.is_connected e);
  Alcotest.(check bool) "deterministic" true
    (G.equal e (Mvl.Enhanced_cube.create ~n:5 ~seed:11));
  Alcotest.(check bool) "seed matters" false
    (G.equal e (Mvl.Enhanced_cube.create ~n:5 ~seed:12));
  Alcotest.(check int) "one extra link per node" 32
    (List.length (Mvl.Enhanced_cube.extra_links ~n:5 ~seed:11))

let test_reduced () =
  let rh = Mvl.Reduced_hypercube.create 4 in
  check_regular_connected "RH(4)" rh.Mvl.Reduced_hypercube.graph ~nodes:64
    ~degree:3
    ~edges:(64 * 3 / 2);
  Alcotest.(check int) "cluster dims" 2 rh.Mvl.Reduced_hypercube.cluster_dims;
  (try
     ignore (Mvl.Reduced_hypercube.create 5);
     Alcotest.fail "non power of two accepted"
   with Invalid_argument _ -> ())

let test_hsn () =
  let h = Mvl.Hsn.create_complete ~levels:2 ~radix:3 in
  (* 2-level HSN over K3: 9 nodes; nucleus edges 3 per cluster x 3
     clusters, plus one swap link per unordered digit pair *)
  Alcotest.(check int) "nodes" 9 (G.n h.Mvl.Hsn.graph);
  Alcotest.(check bool) "connected" true (G.is_connected h.Mvl.Hsn.graph);
  let h3 = Mvl.Hsn.create_complete ~levels:3 ~radix:3 in
  Alcotest.(check int) "27 nodes" 27 (G.n h3.Mvl.Hsn.graph);
  Alcotest.(check bool) "connected" true (G.is_connected h3.Mvl.Hsn.graph);
  (* cluster/pos helpers *)
  Alcotest.(check int) "cluster of node 7" 2 (Mvl.Hsn.cluster_of h3 7);
  Alcotest.(check int) "pos of node 7" 1 (Mvl.Hsn.pos_of h3 7)

let test_hhn () =
  let h = Mvl.Hhn.create ~levels:2 ~cube_dims:2 in
  Alcotest.(check int) "nodes" 16 (G.n h.Mvl.Hsn.graph);
  Alcotest.(check bool) "connected" true (G.is_connected h.Mvl.Hsn.graph)

let test_pn_cluster () =
  let quotient = Mvl.Ring.create 4 in
  let intra = Mvl.Complete.create 3 in
  let pn = Mvl.Pn_cluster.create ~quotient ~intra () in
  Alcotest.(check int) "nodes" 12 (G.n pn.Mvl.Pn_cluster.graph);
  (* 4 clusters x 3 intra edges + 4 quotient edges *)
  Alcotest.(check int) "edges" ((4 * 3) + 4) (G.m pn.Mvl.Pn_cluster.graph);
  Alcotest.(check bool) "connected" true (G.is_connected pn.Mvl.Pn_cluster.graph);
  (* multiplicity: parallel links land on distinct node pairs *)
  let pn2 = Mvl.Pn_cluster.create ~quotient ~intra ~multiplicity:3 () in
  Alcotest.(check int) "edges with multiplicity"
    ((4 * 3) + (4 * 3))
    (G.m pn2.Mvl.Pn_cluster.graph)

let test_kary_cluster () =
  let pn = Mvl.Kary_cluster.create_hypercube_clusters ~k:3 ~n:2 ~c:4 in
  Alcotest.(check int) "nodes" 36 (G.n pn.Mvl.Pn_cluster.graph);
  Alcotest.(check bool) "connected" true (G.is_connected pn.Mvl.Pn_cluster.graph)

let test_isn () =
  let pn = Mvl.Isn.create ~radix:3 ~quotient_dims:2 ~levels:2 in
  Alcotest.(check int) "nodes" (9 * 6) (G.n pn.Mvl.Pn_cluster.graph);
  Alcotest.(check int) "multiplicity" 2 pn.Mvl.Pn_cluster.multiplicity;
  Alcotest.(check bool) "connected" true (G.is_connected pn.Mvl.Pn_cluster.graph)

let test_mesh () =
  let m = Mvl.Mesh.create ~dims:[| 3; 4 |] in
  Alcotest.(check int) "nodes" 12 (G.n m);
  Alcotest.(check int) "edges" ((2 * 4) + (3 * 3)) (G.m m);
  Alcotest.(check bool) "connected" true (G.is_connected m)

let test_vertex_transitive () =
  Alcotest.(check bool) "hypercube" true
    (Mvl.Properties.is_vertex_transitive_sample (Mvl.Hypercube.create 5)
       ~samples:8);
  Alcotest.(check bool) "kary" true
    (Mvl.Properties.is_vertex_transitive_sample
       (Mvl.Kary_ncube.create ~k:4 ~n:2)
       ~samples:8);
  (* a path is not vertex transitive: endpoints differ *)
  Alcotest.(check bool) "path is not" false
    (Mvl.Properties.is_vertex_transitive_sample (Mvl.Mesh.path 5) ~samples:5)

let suite =
  [
    Alcotest.test_case "ring" `Quick test_ring;
    Alcotest.test_case "complete" `Quick test_complete;
    Alcotest.test_case "hypercube" `Quick test_hypercube;
    Alcotest.test_case "k-ary n-cube" `Quick test_kary;
    Alcotest.test_case "generalized hypercube" `Quick test_ghc;
    Alcotest.test_case "butterfly" `Quick test_butterfly;
    Alcotest.test_case "ccc" `Quick test_ccc;
    Alcotest.test_case "folded hypercube" `Quick test_folded;
    Alcotest.test_case "enhanced cube" `Quick test_enhanced;
    Alcotest.test_case "reduced hypercube" `Quick test_reduced;
    Alcotest.test_case "hsn" `Quick test_hsn;
    Alcotest.test_case "hhn" `Quick test_hhn;
    Alcotest.test_case "pn cluster" `Quick test_pn_cluster;
    Alcotest.test_case "kary cluster" `Quick test_kary_cluster;
    Alcotest.test_case "isn" `Quick test_isn;
    Alcotest.test_case "mesh" `Quick test_mesh;
    Alcotest.test_case "vertex transitivity probe" `Quick test_vertex_transitive;
  ]
