open Mvl_core
module G = Mvl.Graph

let path n =
  G.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let test_basic () =
  let g = G.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "n" 4 (G.n g);
  Alcotest.(check int) "m" 4 (G.m g);
  Alcotest.(check bool) "regular" true (G.is_regular g);
  Alcotest.(check int) "degree" 2 (G.degree g 0);
  Alcotest.(check bool) "edge" true (G.mem_edge g 0 3);
  Alcotest.(check bool) "non-edge" false (G.mem_edge g 0 2)

let test_dedupe () =
  let g = G.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1); (1, 2) ] in
  Alcotest.(check int) "duplicates collapsed" 2 (G.m g)

let test_self_loop () =
  try
    ignore (G.of_edges ~n:2 [ (1, 1) ]);
    Alcotest.fail "self loop accepted"
  with Invalid_argument _ -> ()

let test_out_of_range () =
  try
    ignore (G.of_edges ~n:2 [ (0, 2) ]);
    Alcotest.fail "endpoint out of range accepted"
  with Invalid_argument _ -> ()

let test_neighbors_sorted () =
  let g = G.of_edges ~n:5 [ (2, 4); (2, 0); (2, 3); (2, 1) ] in
  Alcotest.(check (array int)) "sorted" [| 0; 1; 3; 4 |] (G.neighbors g 2)

let test_bfs () =
  let g = path 6 in
  let dist = G.bfs_dist g 0 in
  Alcotest.(check (array int)) "path distances" [| 0; 1; 2; 3; 4; 5 |] dist;
  Alcotest.(check int) "diameter" 5 (G.diameter g)

let test_connectivity () =
  Alcotest.(check bool) "path connected" true (G.is_connected (path 5));
  let disconnected = G.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "two components" false (G.is_connected disconnected)

let test_product () =
  (* path(2) x path(3) is the 2x3 grid: 6 nodes, 7 edges *)
  let g = G.cartesian_product (path 2) (path 3) in
  Alcotest.(check int) "nodes" 6 (G.n g);
  Alcotest.(check int) "edges" 7 (G.m g);
  Alcotest.(check bool) "grid edge (0,0)-(1,0)" true (G.mem_edge g 0 1);
  Alcotest.(check bool) "grid edge (0,0)-(0,1)" true (G.mem_edge g 0 2);
  Alcotest.(check bool) "no diagonal" false (G.mem_edge g 0 3)

let test_product_is_hypercube () =
  let k1 = path 2 in
  let product = G.cartesian_product (G.cartesian_product k1 k1) k1 in
  Alcotest.(check bool) "3-cube as product" true
    (G.equal product (Mvl.Hypercube.create 3))

let test_relabel () =
  let g = path 3 in
  let h = G.relabel g ~perm:[| 2; 1; 0 |] in
  Alcotest.(check bool) "edge 2-1" true (G.mem_edge h 2 1);
  Alcotest.(check bool) "edge 1-0" true (G.mem_edge h 1 0);
  Alcotest.(check bool) "no 0-2" false (G.mem_edge h 0 2)

let test_fold_edges () =
  let g = path 4 in
  let total = G.fold_edges g ~init:0 ~f:(fun acc u v -> acc + u + v) in
  Alcotest.(check int) "sum of endpoints" (0 + 1 + 1 + 2 + 2 + 3) total

let prop_degree_sum =
  QCheck.Test.make ~count:200 ~name:"sum of degrees = 2m"
    QCheck.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun pairs ->
      let edges = List.filter (fun (u, v) -> u <> v) pairs in
      let g = G.of_edges ~n:20 edges in
      let sum = ref 0 in
      for u = 0 to 19 do
        sum := !sum + G.degree g u
      done;
      !sum = 2 * G.m g)

let prop_bfs_triangle =
  QCheck.Test.make ~count:100 ~name:"bfs distances satisfy edge relaxation"
    QCheck.(list (pair (int_range 0 14) (int_range 0 14)))
    (fun pairs ->
      let edges = (0, 1) :: List.filter (fun (u, v) -> u <> v) pairs in
      let g = G.of_edges ~n:15 edges in
      let dist = G.bfs_dist g 0 in
      G.fold_edges g ~init:true ~f:(fun acc u v ->
          acc
          && (dist.(u) = max_int || dist.(v) = max_int
             || abs (dist.(u) - dist.(v)) <= 1)))

let suite =
  [
    Alcotest.test_case "basic accessors" `Quick test_basic;
    Alcotest.test_case "duplicate edges collapse" `Quick test_dedupe;
    Alcotest.test_case "self loops rejected" `Quick test_self_loop;
    Alcotest.test_case "bad endpoints rejected" `Quick test_out_of_range;
    Alcotest.test_case "neighbors sorted" `Quick test_neighbors_sorted;
    Alcotest.test_case "bfs distances" `Quick test_bfs;
    Alcotest.test_case "connectivity" `Quick test_connectivity;
    Alcotest.test_case "cartesian product grid" `Quick test_product;
    Alcotest.test_case "product builds hypercube" `Quick test_product_is_hypercube;
    Alcotest.test_case "relabel" `Quick test_relabel;
    Alcotest.test_case "fold over edges" `Quick test_fold_edges;
    QCheck_alcotest.to_alcotest prop_degree_sum;
    QCheck_alcotest.to_alcotest prop_bfs_triangle;
  ]
