open Mvl_core

let roundtrip name lay =
  match Mvl.Serialize.of_string (Mvl.Serialize.to_string lay) with
  | Ok parsed ->
      Alcotest.(check bool) (name ^ " roundtrip") true
        (Mvl.Serialize.roundtrip_equal lay parsed);
      Alcotest.(check bool) (name ^ " parsed still valid") true
        (Mvl.Check.is_valid ~mode:Mvl.Check.Strict parsed)
  | Error msg -> Alcotest.fail (name ^ ": " ^ msg)

let test_roundtrip_families () =
  roundtrip "hypercube"
    ((Mvl.Families.hypercube 5).Mvl.Families.layout ~layers:4);
  roundtrip "ccc" ((Mvl.Families.ccc 3).Mvl.Families.layout ~layers:2);
  roundtrip "folded"
    ((Mvl.Families.folded_hypercube 4).Mvl.Families.layout ~layers:2)

let test_roundtrip_3d () =
  let t = Mvl.Multilayer3d.hypercube ~n:5 ~active:2 ~layers_per_slab:2 in
  roundtrip "stacked" t.Mvl.Multilayer3d.layout

let test_roundtrip_maze () =
  match
    Mvl.Maze_router.route_or_grow (Mvl.Hypercube.create 4) ~rows:4 ~cols:4
      ~layers:2
  with
  | None -> Alcotest.fail "maze routing failed"
  | Some lay -> roundtrip "maze" lay

let test_rejects_garbage () =
  List.iter
    (fun (name, input) ->
      match Mvl.Serialize.of_string input with
      | Ok _ -> Alcotest.fail (name ^ " accepted")
      | Error _ -> ())
    [
      ("empty", "");
      ("bad header", "nonsense 9\nlayers 2\n");
      ("truncated", "mvl-layout 1\nlayers 2\nnodes 3\n");
      ( "bad wire arity",
        "mvl-layout 1\nlayers 2\nnodes 1\nnode 0 0 0 1 1 1\nedges 1\n\
         wire 0 0 2 0 0 1\nend\n" );
      ( "missing end",
        "mvl-layout 1\nlayers 2\nnodes 1\nnode 0 0 0 1 1 1\nedges 0\n" );
    ]

let test_file_io () =
  let lay = (Mvl.Families.kary ~k:3 ~n:2 ()).Mvl.Families.layout ~layers:2 in
  let path = Filename.temp_file "mvl" ".layout" in
  Mvl.Serialize.write_file path lay;
  (match Mvl.Serialize.read_file path with
  | Ok parsed ->
      Alcotest.(check bool) "file roundtrip" true
        (Mvl.Serialize.roundtrip_equal lay parsed)
  | Error msg -> Alcotest.fail msg);
  Sys.remove path

let test_mutated_file_caught_by_checker () =
  (* serialize, corrupt one coordinate massively, re-verify *)
  let lay = (Mvl.Families.hypercube 4).Mvl.Families.layout ~layers:2 in
  let text = Mvl.Serialize.to_string lay in
  (* find the first wire line and shift its x coordinates *)
  let lines = String.split_on_char '\n' text in
  let mutated =
    List.map
      (fun l ->
        if String.length l > 4 && String.sub l 0 4 = "wire" then
          match String.split_on_char ' ' l with
          | "wire" :: u :: v :: k :: x :: restc ->
              String.concat " "
                ("wire" :: u :: v :: k
                :: string_of_int (int_of_string x + 5000)
                :: restc)
          | _ -> l
        else l)
      lines
  in
  match Mvl.Serialize.of_string (String.concat "\n" mutated) with
  | Ok parsed ->
      Alcotest.(check bool) "corruption caught by checker" false
        (Mvl.Check.is_valid parsed)
  | Error _ -> () (* also acceptable: parse-level rejection *)

let suite =
  [
    Alcotest.test_case "roundtrip families" `Quick test_roundtrip_families;
    Alcotest.test_case "roundtrip 3-D" `Quick test_roundtrip_3d;
    Alcotest.test_case "roundtrip maze layouts" `Quick test_roundtrip_maze;
    Alcotest.test_case "rejects garbage" `Quick test_rejects_garbage;
    Alcotest.test_case "file io" `Quick test_file_io;
    Alcotest.test_case "corrupted file caught" `Quick
      test_mutated_file_caught_by_checker;
  ]
