open Mvl_core
module P = Mvl.Permutation
module G = Mvl.Graph

let test_rank_unrank () =
  for d = 1 to 5 do
    for code = 0 to P.factorial d - 1 do
      let p = P.unrank ~d code in
      Alcotest.(check bool)
        (Printf.sprintf "valid d=%d code=%d" d code)
        true (P.is_valid p);
      Alcotest.(check int) "rank inverse" code (P.rank p)
    done
  done

let test_identity_rank () =
  Alcotest.(check int) "identity ranks 0" 0 (P.rank (P.identity 6))

let test_compose_invert () =
  let p = P.unrank ~d:5 37 and q = P.unrank ~d:5 91 in
  let pq = P.compose p q in
  Alcotest.(check bool) "compose valid" true (P.is_valid pq);
  let p_inv = P.invert p in
  Alcotest.(check (array int)) "p p^-1 = id" (P.identity 5) (P.compose p p_inv);
  Alcotest.(check (array int)) "p^-1 p = id" (P.identity 5) (P.compose p_inv p)

let test_prefix_reversal () =
  let p = [| 0; 1; 2; 3; 4 |] in
  Alcotest.(check (array int)) "reverse 3" [| 2; 1; 0; 3; 4 |]
    (P.prefix_reversal p 3);
  Alcotest.(check (array int)) "involution" p
    (P.prefix_reversal (P.prefix_reversal p 4) 4)

let test_star_graph () =
  (* S_d: d! nodes, degree d-1, vertex transitive *)
  List.iter
    (fun d ->
      let g = Mvl.Cayley.star d in
      Alcotest.(check int) "nodes" (P.factorial d) (G.n g);
      Alcotest.(check bool) "regular" true (G.is_regular g);
      Alcotest.(check int) "degree" (d - 1) (G.max_degree g);
      Alcotest.(check bool) "connected" true (G.is_connected g))
    [ 2; 3; 4; 5 ];
  (* S_3 is the 6-cycle *)
  Alcotest.(check int) "S3 diameter" 3 (G.diameter (Mvl.Cayley.star 3))

let test_pancake () =
  let g = Mvl.Cayley.pancake 4 in
  Alcotest.(check int) "nodes" 24 (G.n g);
  Alcotest.(check int) "degree" 3 (G.max_degree g);
  Alcotest.(check bool) "connected" true (G.is_connected g);
  (* known: pancake(4) has diameter 4 *)
  Alcotest.(check int) "diameter" 4 (G.diameter g)

let test_bubble_sort () =
  let g = Mvl.Cayley.bubble_sort 4 in
  Alcotest.(check int) "nodes" 24 (G.n g);
  Alcotest.(check int) "degree" 3 (G.max_degree g);
  (* bubble-sort graph diameter = d(d-1)/2 *)
  Alcotest.(check int) "diameter" 6 (G.diameter g)

let test_transposition () =
  let g = Mvl.Cayley.transposition 4 in
  Alcotest.(check int) "nodes" 24 (G.n g);
  Alcotest.(check int) "degree" 6 (G.max_degree g);
  (* diameter of the complete transposition network is d-1 *)
  Alcotest.(check int) "diameter" 3 (G.diameter g)

let test_cayley_bipartite_consistency () =
  (* all four generator sets are involutions: every edge connects
     permutations of opposite parity, so the graphs are bipartite and
     triangle-free except for transposition (3-cycles of transpositions
     exist only via odd composition: still bipartite!) *)
  let parity p =
    let inversions = ref 0 in
    let d = Array.length p in
    for i = 0 to d - 1 do
      for j = i + 1 to d - 1 do
        if p.(i) > p.(j) then incr inversions
      done
    done;
    !inversions mod 2
  in
  List.iter
    (fun g ->
      G.iter_edges g (fun u v ->
          let pu = P.unrank ~d:4 u and pv = P.unrank ~d:4 v in
          Alcotest.(check bool) "opposite parity" true (parity pu <> parity pv)))
    [ Mvl.Cayley.star 4; Mvl.Cayley.bubble_sort 4; Mvl.Cayley.transposition 4 ]

let prop_compose_rank =
  QCheck.Test.make ~count:300 ~name:"compose of valid perms is valid"
    QCheck.(pair (int_range 0 119) (int_range 0 119))
    (fun (a, b) ->
      let p = P.unrank ~d:5 a and q = P.unrank ~d:5 b in
      P.is_valid (P.compose p q))

let suite =
  [
    Alcotest.test_case "rank/unrank bijection" `Quick test_rank_unrank;
    Alcotest.test_case "identity rank" `Quick test_identity_rank;
    Alcotest.test_case "compose and invert" `Quick test_compose_invert;
    Alcotest.test_case "prefix reversal" `Quick test_prefix_reversal;
    Alcotest.test_case "star graphs" `Quick test_star_graph;
    Alcotest.test_case "pancake graphs" `Quick test_pancake;
    Alcotest.test_case "bubble-sort graphs" `Quick test_bubble_sort;
    Alcotest.test_case "transposition networks" `Quick test_transposition;
    Alcotest.test_case "cayley parity bipartiteness" `Quick
      test_cayley_bipartite_consistency;
    QCheck_alcotest.to_alcotest prop_compose_rank;
  ]
