open Mvl_core
module I = Mvl.Interval
module S = Mvl.Segment
module R = Mvl.Rect
module P = Mvl.Point

let test_interval () =
  let a = I.make 3 1 in
  Alcotest.(check int) "normalized lo" 1 a.I.lo;
  Alcotest.(check int) "normalized hi" 3 a.I.hi;
  Alcotest.(check int) "length" 2 (I.length a);
  Alcotest.(check bool) "contains" true (I.contains a 2);
  Alcotest.(check bool) "interior overlap" true
    (I.overlap_interior (I.make 0 2) (I.make 1 3));
  Alcotest.(check bool) "endpoint sharing is not interior overlap" false
    (I.overlap_interior (I.make 0 2) (I.make 2 4));
  Alcotest.(check bool) "touching" true (I.touches (I.make 0 2) (I.make 2 4));
  Alcotest.(check bool) "disjoint" false (I.touches (I.make 0 1) (I.make 3 4));
  let h = I.hull (I.make 0 1) (I.make 5 6) in
  Alcotest.(check int) "hull lo" 0 h.I.lo;
  Alcotest.(check int) "hull hi" 6 h.I.hi

let test_zero_length_interval () =
  (* degenerate spans never conflict on a track *)
  Alcotest.(check bool) "point vs containing" false
    (I.overlap_interior (I.make 3 3) (I.make 0 5))

let test_segment () =
  let p = P.make ~x:0 ~y:2 ~z:1 and q = P.make ~x:5 ~y:2 ~z:1 in
  let s = S.make q p in
  Alcotest.(check bool) "orientation" true (s.S.orientation = S.Along_x);
  Alcotest.(check int) "normalized start" 0 s.S.a.P.x;
  Alcotest.(check int) "length" 5 (S.length s);
  Alcotest.(check bool) "contains midpoint" true
    (S.contains_point s (P.make ~x:3 ~y:2 ~z:1));
  Alcotest.(check bool) "misses off-line point" false
    (S.contains_point s (P.make ~x:3 ~y:3 ~z:1));
  let via = S.make (P.make ~x:1 ~y:1 ~z:1) (P.make ~x:1 ~y:1 ~z:4) in
  Alcotest.(check bool) "via orientation" true (via.S.orientation = S.Along_z);
  (try
     ignore (S.make p p);
     Alcotest.fail "degenerate segment accepted"
   with Invalid_argument _ -> ());
  try
    ignore (S.make p (P.make ~x:1 ~y:3 ~z:1));
    Alcotest.fail "diagonal segment accepted"
  with Invalid_argument _ -> ()

let test_rect () =
  let r = R.make ~x0:2 ~y0:3 ~x1:5 ~y1:7 in
  Alcotest.(check int) "width" 4 (R.width r);
  Alcotest.(check int) "height" 5 (R.height r);
  Alcotest.(check int) "area" 20 (R.area r);
  Alcotest.(check bool) "contains corner" true (R.contains r ~x:2 ~y:3);
  Alcotest.(check bool) "interior excludes boundary" false
    (R.contains_interior r ~x:2 ~y:5);
  Alcotest.(check bool) "interior point" true (R.contains_interior r ~x:3 ~y:5);
  Alcotest.(check bool) "overlap" true
    (R.overlaps r (R.make ~x0:5 ~y0:7 ~x1:9 ~y1:9));
  Alcotest.(check bool) "disjoint" false
    (R.overlaps r (R.make ~x0:6 ~y0:3 ~x1:9 ~y1:9))

let test_point () =
  let a = P.make ~x:1 ~y:2 ~z:3 and b = P.make ~x:4 ~y:0 ~z:3 in
  Alcotest.(check int) "manhattan" 5 (P.manhattan a b);
  Alcotest.(check bool) "equal" true (P.equal a (P.make ~x:1 ~y:2 ~z:3))

let test_wire () =
  let w =
    Mvl.Wire.make ~edge:(0, 1)
      [
        P.make ~x:0 ~y:0 ~z:1;
        P.make ~x:0 ~y:0 ~z:2;
        P.make ~x:0 ~y:5 ~z:2;
        P.make ~x:3 ~y:5 ~z:2;
      ]
  in
  Alcotest.(check int) "length with via" 9 (Mvl.Wire.length w);
  Alcotest.(check int) "xy length" 8 (Mvl.Wire.length_xy w);
  Alcotest.(check int) "segments" 3 (Array.length (Mvl.Wire.segments w));
  (* duplicate points are dropped silently *)
  let w2 =
    Mvl.Wire.make ~edge:(0, 1)
      [ P.make ~x:0 ~y:0 ~z:1; P.make ~x:0 ~y:0 ~z:1; P.make ~x:2 ~y:0 ~z:1 ]
  in
  Alcotest.(check int) "deduped segments" 1 (Array.length (Mvl.Wire.segments w2))

let prop_interval_overlap_symmetric =
  QCheck.Test.make ~count:500 ~name:"interval overlap is symmetric"
    QCheck.(quad small_int small_int small_int small_int)
    (fun (a, b, c, d) ->
      let i = I.make a b and j = I.make c d in
      I.overlap_interior i j = I.overlap_interior j i
      && I.touches i j = I.touches j i)

let suite =
  [
    Alcotest.test_case "interval" `Quick test_interval;
    Alcotest.test_case "degenerate interval" `Quick test_zero_length_interval;
    Alcotest.test_case "segment" `Quick test_segment;
    Alcotest.test_case "rect" `Quick test_rect;
    Alcotest.test_case "point" `Quick test_point;
    Alcotest.test_case "wire" `Quick test_wire;
    QCheck_alcotest.to_alcotest prop_interval_overlap_symmetric;
  ]
