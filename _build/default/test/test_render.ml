open Mvl_core

let test_collinear_ascii () =
  let c = Mvl.Collinear_kary.create ~k:3 ~n:2 () in
  let art = Mvl.Render.collinear_ascii c in
  (* one line per track plus the node row *)
  let lines = String.split_on_char '\n' (String.trim art) in
  Alcotest.(check int) "line count" (c.Mvl.Collinear.tracks + 1)
    (List.length lines);
  (* every node label appears *)
  for u = 0 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "label %d present" u)
      true
      (let needle = Printf.sprintf "[ %d ]" u in
       let rec contains i =
         i + String.length needle <= String.length art
         && (String.sub art i (String.length needle) = needle || contains (i + 1))
       in
       contains 0)
  done

let test_svg_well_formed () =
  let fam = Mvl.Families.hypercube 3 in
  let svg = Mvl.Render.layout_svg (fam.Mvl.Families.layout ~layers:2) in
  Alcotest.(check bool) "opens svg" true
    (String.length svg > 10 && String.sub svg 0 4 = "<svg");
  let ends_with s suffix =
    let ls = String.length s and lf = String.length suffix in
    ls >= lf && String.sub s (ls - lf) lf = suffix
  in
  Alcotest.(check bool) "closes svg" true (ends_with (String.trim svg) "</svg>");
  (* one rect per node plus the background *)
  let count_sub needle =
    let n = ref 0 in
    let len = String.length needle in
    for i = 0 to String.length svg - len do
      if String.sub svg i len = needle then incr n
    done;
    !n
  in
  Alcotest.(check int) "node rectangles" (8 + 1) (count_sub "<rect")

let test_grid_summary () =
  let fam = Mvl.Families.hypercube 4 in
  ignore fam;
  let row = Mvl.Collinear_hypercube.create 2 in
  let o =
    Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:row
      (Mvl.Hypercube.create 4)
  in
  let s = Mvl.Render.grid_summary o in
  Alcotest.(check bool) "mentions the grid" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 4 <= String.length s && (String.sub s i 4 = "rows" || contains (i + 1))
    in
    contains 0)

let suite =
  [
    Alcotest.test_case "collinear ascii" `Quick test_collinear_ascii;
    Alcotest.test_case "svg well formed" `Quick test_svg_well_formed;
    Alcotest.test_case "grid summary" `Quick test_grid_summary;
  ]
