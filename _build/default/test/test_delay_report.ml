open Mvl_core

let test_wire_delay_monotone () =
  let p = Mvl.Delay.default in
  let d len = Mvl.Delay.wire_delay p ~length:len ~vias:0 in
  Alcotest.(check bool) "monotone" true (d 10 < d 20 && d 20 < d 100);
  (* quadratic: doubling the length more than doubles the delay *)
  Alcotest.(check bool) "superlinear" true (d 200 > 2.0 *. d 100);
  (* vias cost extra *)
  Alcotest.(check bool) "vias cost" true
    (Mvl.Delay.wire_delay p ~length:10 ~vias:4
    > Mvl.Delay.wire_delay p ~length:10 ~vias:0)

let test_repeaters_help_long_wires () =
  let plain = Mvl.Delay.default in
  let rep = Mvl.Delay.with_repeaters 50 in
  let long = 1000 in
  Alcotest.(check bool) "repeaters win on long wires" true
    (Mvl.Delay.wire_delay rep ~length:long ~vias:0
    < Mvl.Delay.wire_delay plain ~length:long ~vias:0);
  Alcotest.(check bool) "no effect on short wires" true
    (abs_float
       (Mvl.Delay.wire_delay rep ~length:10 ~vias:0
       -. Mvl.Delay.wire_delay plain ~length:10 ~vias:0)
    < 1e-9)

let test_layers_cut_latency () =
  (* more layers -> shorter wires -> lower critical delay and latency *)
  let fam = Mvl.Families.hypercube 8 in
  let p = Mvl.Delay.default in
  let l2 = fam.Mvl.Families.layout ~layers:2 in
  let l8 = fam.Mvl.Families.layout ~layers:8 in
  Alcotest.(check bool) "slowest wire improves" true
    (Mvl.Delay.slowest_wire p l8 < Mvl.Delay.slowest_wire p l2);
  Alcotest.(check bool) "route latency improves" true
    (Mvl.Delay.worst_route_latency ~samples:4 p l8
    < Mvl.Delay.worst_route_latency ~samples:4 p l2)

let test_latency_at_least_hops () =
  let fam = Mvl.Families.hypercube 5 in
  let lay = fam.Mvl.Families.layout ~layers:2 in
  let p = Mvl.Delay.default in
  let diameter = Mvl.Graph.diameter fam.Mvl.Families.graph in
  Alcotest.(check bool) "latency >= diameter * t_node" true
    (Mvl.Delay.worst_route_latency ~samples:0 p lay
    >= float_of_int diameter *. p.Mvl.Delay.t_node)

let test_report_consistency () =
  let fam = Mvl.Families.hypercube 6 in
  let lay = fam.Mvl.Families.layout ~layers:4 in
  let r = Mvl.Report.analyze lay in
  let m = Mvl.Layout.metrics lay in
  Alcotest.(check int) "wire count" (Mvl.Graph.m fam.Mvl.Families.graph)
    r.Mvl.Report.wire_count;
  Alcotest.(check int) "max matches metrics" m.Mvl.Layout.max_wire
    r.Mvl.Report.wire_max;
  Alcotest.(check bool) "ordering" true
    (r.Mvl.Report.wire_min <= r.Mvl.Report.wire_median
    && r.Mvl.Report.wire_median <= r.Mvl.Report.wire_p90
    && r.Mvl.Report.wire_p90 <= r.Mvl.Report.wire_max);
  Alcotest.(check bool) "node share in (0,1)" true
    (r.Mvl.Report.node_area_share > 0.0 && r.Mvl.Report.node_area_share < 1.0);
  (* per-layer run lengths add up to the total in-plane wire length *)
  let per_layer_total =
    List.fold_left (fun acc (_, len) -> acc + len) 0
      r.Mvl.Report.segments_per_layer
  in
  Alcotest.(check int) "per-layer sums to total" m.Mvl.Layout.total_wire
    per_layer_total;
  Alcotest.(check int) "active layers" 1 r.Mvl.Report.active_layers

let test_report_3d_active_layers () =
  let t = Mvl.Multilayer3d.hypercube ~n:6 ~active:4 ~layers_per_slab:2 in
  let r = Mvl.Report.analyze t.Mvl.Multilayer3d.layout in
  Alcotest.(check int) "four active layers" 4 r.Mvl.Report.active_layers

let test_report_renders () =
  let fam = Mvl.Families.kary ~k:3 ~n:2 () in
  let r = Mvl.Report.analyze (fam.Mvl.Families.layout ~layers:2) in
  let s = Format.asprintf "%a" Mvl.Report.pp r in
  Alcotest.(check bool) "mentions wires" true
    (String.length s > 0
    &&
    let rec contains i =
      i + 5 <= String.length s && (String.sub s i 5 = "wires" || contains (i + 1))
    in
    contains 0)

let suite =
  [
    Alcotest.test_case "wire delay monotone/quadratic" `Quick
      test_wire_delay_monotone;
    Alcotest.test_case "repeaters" `Quick test_repeaters_help_long_wires;
    Alcotest.test_case "layers cut latency" `Quick test_layers_cut_latency;
    Alcotest.test_case "latency lower bound" `Quick test_latency_at_least_hops;
    Alcotest.test_case "report consistency" `Quick test_report_consistency;
    Alcotest.test_case "report 3-D active layers" `Quick
      test_report_3d_active_layers;
    Alcotest.test_case "report rendering" `Quick test_report_renders;
  ]
