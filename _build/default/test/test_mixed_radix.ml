open Mvl_core
module MR = Mvl.Mixed_radix

let test_cardinal () =
  Alcotest.(check int) "3^4" 81 (MR.cardinal (MR.uniform ~radix:3 ~dims:4));
  Alcotest.(check int) "mixed" 24 (MR.cardinal [| 2; 3; 4 |]);
  Alcotest.(check int) "unary" 1 (MR.cardinal [| 1; 1; 1 |])

let test_roundtrip () =
  let radices = [| 3; 2; 5; 4 |] in
  let total = MR.cardinal radices in
  for x = 0 to total - 1 do
    let d = MR.to_digits radices x in
    Alcotest.(check int) (Printf.sprintf "roundtrip %d" x) x
      (MR.of_digits radices d)
  done

let test_digit_order () =
  (* digit 0 is least significant *)
  let d = MR.to_digits [| 10; 10; 10 |] 123 in
  Alcotest.(check (array int)) "123 decimal" [| 3; 2; 1 |] d

let test_split () =
  let radices = [| 3; 2; 5 |] in
  let low, high = MR.split radices ~lo_dims:2 in
  Alcotest.(check (array int)) "low" [| 3; 2 |] low;
  Alcotest.(check (array int)) "high" [| 5 |] high;
  for x = 0 to MR.cardinal radices - 1 do
    let hi, lo = MR.split_index radices ~lo_dims:2 x in
    Alcotest.(check int) "join inverse" x
      (MR.join_index radices ~lo_dims:2 ~hi ~lo)
  done

let test_iter () =
  let seen = ref [] in
  MR.iter [| 2; 3 |] (fun d -> seen := Array.copy d :: !seen);
  Alcotest.(check int) "count" 6 (List.length !seen);
  let sorted = List.sort_uniq compare !seen in
  Alcotest.(check int) "distinct" 6 (List.length sorted)

let test_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Mixed_radix: empty radices")
    (fun () -> ignore (MR.cardinal [||]));
  (try
     ignore (MR.of_digits [| 3 |] [| 3 |]);
     Alcotest.fail "digit out of range accepted"
   with Invalid_argument _ -> ());
  try
    ignore (MR.to_digits [| 2; 2 |] 4);
    Alcotest.fail "value out of range accepted"
  with Invalid_argument _ -> ()

let prop_roundtrip =
  QCheck.Test.make ~count:500 ~name:"mixed-radix roundtrip"
    QCheck.(
      pair (list_of_size (Gen.int_range 1 5) (int_range 1 6)) (int_range 0 10000))
    (fun (radices, salt) ->
      let radices = Array.of_list radices in
      let total = MR.cardinal radices in
      let x = salt mod total in
      MR.of_digits radices (MR.to_digits radices x) = x)

let suite =
  [
    Alcotest.test_case "cardinal" `Quick test_cardinal;
    Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "digit order" `Quick test_digit_order;
    Alcotest.test_case "split/join" `Quick test_split;
    Alcotest.test_case "iter covers all" `Quick test_iter;
    Alcotest.test_case "invalid inputs" `Quick test_invalid;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
