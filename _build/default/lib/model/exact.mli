(** Exact (exhaustive) computations for small instances, used to pin the
    optimality claims that the closed forms assert asymptotically.

    All functions are exponential-time and guarded by size limits. *)

open Mvl_topology

val bisection : Graph.t -> int
(** Exact bisection width by enumerating all balanced bipartitions.
    Limit: 24 nodes ([C(24,12) ~ 2.7M] cuts). *)

val cutwidth : Graph.t -> int
(** Exact minimum (over all node orders) of the maximum number of edges
    crossing a cut between consecutive positions — the lower bound on
    collinear track counts for the best possible order.  Computed by
    dynamic programming over subsets ([O(2^n n)]).  Limit: 20 nodes. *)

val best_collinear_tracks : Graph.t -> int
(** The minimum track count achievable by any node order: equals
    {!cutwidth} because the left-edge greedy meets the cut density
    exactly for every order. *)
