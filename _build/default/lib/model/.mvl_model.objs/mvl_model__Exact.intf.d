lib/model/exact.mli: Graph Mvl_topology
