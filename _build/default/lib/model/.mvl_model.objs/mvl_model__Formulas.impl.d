lib/model/formulas.ml: Array
