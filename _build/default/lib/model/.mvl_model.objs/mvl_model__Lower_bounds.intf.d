lib/model/lower_bounds.mli: Mvl_topology
