lib/model/exact.ml: Array Bytes Char Graph Mvl_topology
