lib/model/delay.mli: Mvl_layout
