lib/model/delay.ml: Array Graph Hashtbl Layout Mvl_layout Mvl_topology Wire
