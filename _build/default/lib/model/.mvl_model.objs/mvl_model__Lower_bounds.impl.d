lib/model/lower_bounds.ml: Mvl_topology
