lib/model/formulas.mli: Mvl_topology
