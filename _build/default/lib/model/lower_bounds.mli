(** Bisection-based lower bounds, the yardstick behind the paper's
    "optimal within a small constant factor" claims.

    If every balanced bipartition of a network is crossed by at least
    [B] edges, then any [L]-layer layout must route [B] wires across the
    vertical cut at the layout's midline, at most [L] per grid column,
    so [width >= B / L]; the same holds for the height, giving
    [area >= (B / L)^2] and [volume >= B^2 / L].  The longest of the
    [B] crossing wires also yields a max-wire bound in conjunction with
    node-degree pigeonholing; we expose the area/volume forms the paper
    uses. *)

val area : bisection:int -> layers:int -> float
(** [(B / L)^2]. *)

val volume : bisection:int -> layers:int -> float
(** [B^2 / L]. *)

(* Exact bisection widths (standard results) per family: *)

val hypercube_bisection : int -> int
(** [N / 2] for the [n]-cube. *)

val folded_hypercube_bisection : int -> int
(** [N] for the folded [n]-cube (cube links N/2 + diameter links N/2). *)

val kary_bisection : k:int -> n:int -> int
(** [2 k^(n-1)] for even [k] (torus wrap doubles the mesh cut); for odd
    [k] the balanced cut crosses [2 k^(n-1)] links as well up to
    rounding — we return the even-[k] form as the reference value. *)

val complete_bisection : int -> int
(** [floor(N/2) * ceil(N/2)]. *)

val ghc_bisection : r:int -> n:int -> int
(** [N * floor(r^2/4) / r]: cut one dimension's complete graphs in
    half. *)

val generic_upper_bound : Mvl_topology.Graph.t -> sweeps:int -> int
(** Heuristic upper bound on the bisection width of an arbitrary network
    (BFS-sweep cuts); useful to sanity-check the closed forms. *)
