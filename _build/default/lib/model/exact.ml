open Mvl_topology

let bisection g =
  let n = Graph.n g in
  if n > 24 then invalid_arg "Exact.bisection: graph too large";
  if n < 2 then 0
  else begin
    let half = n / 2 in
    let edges = Graph.edges g in
    let best = ref max_int in
    (* enumerate subsets of size [half] containing node 0 (w.l.o.g.) *)
    let rec go chosen next count =
      if count = half then begin
        let cut = ref 0 in
        Array.iter
          (fun (u, v) ->
            let cu = chosen land (1 lsl u) <> 0
            and cv = chosen land (1 lsl v) <> 0 in
            if cu <> cv then incr cut)
          edges;
        if !cut < !best then best := !cut
      end
      else if next < n && n - next >= half - count then begin
        go (chosen lor (1 lsl next)) (next + 1) (count + 1);
        go chosen (next + 1) count
      end
    in
    go 1 1 1;
    !best
  end

(* cutwidth by subset DP: cw(S) = min over v in S of
   max(cw(S \ v), cut(S)) where cut(S) = edges between S and V\S;
   the order is read as "S is the prefix". *)
let cutwidth g =
  let n = Graph.n g in
  if n > 20 then invalid_arg "Exact.cutwidth: graph too large";
  if n <= 1 then 0
  else begin
    let full = (1 lsl n) - 1 in
    (* cut.(s) = number of edges from s to complement *)
    let cut = Bytes.make (full + 1) '\000' in
    let cut_get s = Char.code (Bytes.get cut s) in
    let cut_set s v = Bytes.set cut s (Char.chr (min 255 v)) in
    (* incremental: cut(S + v) = cut(S) + deg(v) - 2 * |edges v->S| *)
    for s = 1 to full do
      (* lowest set bit as the incremental vertex *)
      let v =
        let rec lowest i = if s land (1 lsl i) <> 0 then i else lowest (i + 1) in
        lowest 0
      in
      let prev = s land lnot (1 lsl v) in
      let internal = ref 0 in
      Graph.iter_neighbors g v (fun w ->
          if prev land (1 lsl w) <> 0 then incr internal);
      cut_set s (cut_get prev + Graph.degree g v - (2 * !internal))
    done;
    let dp = Array.make (full + 1) max_int in
    dp.(0) <- 0;
    for s = 1 to full do
      let cs = cut_get s in
      let best = ref max_int in
      let rest = ref s in
      while !rest <> 0 do
        let v = !rest land - !rest in
        rest := !rest land lnot v;
        let prev = s land lnot v in
        let candidate = max dp.(prev) cs in
        if candidate < !best then best := candidate
      done;
      dp.(s) <- !best
    done;
    dp.(full)
  end

let best_collinear_tracks g = cutwidth g
