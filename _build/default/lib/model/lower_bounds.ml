let area ~bisection ~layers =
  let b = float_of_int bisection /. float_of_int layers in
  b *. b

let volume ~bisection ~layers =
  float_of_int (bisection * bisection) /. float_of_int layers

let hypercube_bisection n = (1 lsl n) / 2

let folded_hypercube_bisection n = 1 lsl n

let kary_bisection ~k ~n =
  let rec ipow acc m = if m = 0 then acc else ipow (acc * k) (m - 1) in
  2 * ipow 1 (n - 1)

let complete_bisection nn = nn / 2 * ((nn + 1) / 2)

let ghc_bisection ~r ~n =
  let rec ipow acc m = if m = 0 then acc else ipow (acc * r) (m - 1) in
  ipow 1 n / r * (r * r / 4)

let generic_upper_bound g ~sweeps =
  Mvl_topology.Properties.bisection_upper_bound g ~sweeps
