(** A simple RC wire-delay model translating geometric wire lengths into
    performance numbers — making the paper's "lower cost and/or higher
    performance" concrete.

    A wire of in-plane length [len] driven through [vias] via cuts is
    charged

      [t_drive + resistance * capacitance * len^2 / 2
       + via_penalty * vias]

    (distributed-RC Elmore form, normalized grid units).  Repeaters can
    linearize long wires: with [repeater_every > 0], segments are
    broken every that many units and the quadratic term applies per
    segment. *)

type params = {
  t_node : float;        (** fixed per-hop node (router) latency *)
  t_drive : float;       (** driver latency per wire *)
  rc : float;            (** resistance x capacitance per unit^2 *)
  via_penalty : float;   (** extra delay per via cut *)
  repeater_every : int;  (** 0 = no repeaters *)
}

val default : params
(** [t_node = 20], [t_drive = 1], [rc = 0.01], [via_penalty = 0.5],
    no repeaters — arbitrary but fixed units, fine for comparisons. *)

val with_repeaters : int -> params
(** [default] with repeaters every given number of units. *)

val wire_delay : params -> length:int -> vias:int -> float

val slowest_wire : params -> Mvl_layout.Layout.t -> float
(** The layout's critical single-hop delay. *)

val worst_route_latency :
  ?samples:int -> params -> Mvl_layout.Layout.t -> float
(** Max over sampled sources and all destinations of the best (minimum
    total delay) hop-shortest route, where each hop costs [t_node] plus
    its wire's delay. *)
