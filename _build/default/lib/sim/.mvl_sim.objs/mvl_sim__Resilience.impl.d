lib/sim/resilience.ml: Array Graph Hashtbl Mvl_topology Queue Rng
