lib/sim/routing_table.mli: Graph Mvl_topology
