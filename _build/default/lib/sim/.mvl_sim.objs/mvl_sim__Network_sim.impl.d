lib/sim/network_sim.ml: Array Format Graph Hashtbl List Mvl_routing Mvl_topology Option Rng Routing_table Traffic
