lib/sim/traffic.ml: Format Rng
