lib/sim/wormhole.mli: Format Mvl_topology Traffic
