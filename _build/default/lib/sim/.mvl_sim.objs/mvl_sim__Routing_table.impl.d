lib/sim/routing_table.ml: Array Graph Hashtbl List Mvl_topology
