lib/sim/rng.mli:
