lib/sim/resilience.mli: Graph Mvl_topology
