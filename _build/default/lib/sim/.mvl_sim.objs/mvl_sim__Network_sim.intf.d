lib/sim/network_sim.mli: Format Graph Mvl_layout Mvl_topology Traffic
