lib/sim/traffic.mli: Format Rng
