lib/sim/wormhole.ml: Array Format Graph Hashtbl Kary_ncube List Mvl_topology Option Queue Rng Traffic
