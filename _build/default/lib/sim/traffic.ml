type t =
  | Uniform
  | Transpose
  | Bit_reversal
  | Bit_complement
  | Hotspot of int

let pp ppf = function
  | Uniform -> Format.fprintf ppf "uniform"
  | Transpose -> Format.fprintf ppf "transpose"
  | Bit_reversal -> Format.fprintf ppf "bit-reversal"
  | Bit_complement -> Format.fprintf ppf "bit-complement"
  | Hotspot h -> Format.fprintf ppf "hotspot(%d)" h

let log2_exact n =
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Traffic: permutation patterns need a power-of-two size";
  go 0 n

let destination pattern rng ~n_nodes ~src =
  let fixup d = if d = src then (src + 1) mod n_nodes else d in
  match pattern with
  | Uniform ->
      let d = Rng.int rng ~bound:(n_nodes - 1) in
      if d >= src then d + 1 else d
  | Hotspot h -> fixup (h mod n_nodes)
  | Transpose ->
      let bits = log2_exact n_nodes in
      let half = bits / 2 in
      let low = src land ((1 lsl half) - 1) in
      let high = src lsr half in
      (* rotate by half: the classic matrix-transpose pattern *)
      fixup ((low lsl (bits - half)) lor high)
  | Bit_reversal ->
      let bits = log2_exact n_nodes in
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if src land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      fixup !r
  | Bit_complement ->
      let bits = log2_exact n_nodes in
      fixup (src lxor ((1 lsl bits) - 1))
