open Mvl_topology

type config = {
  traffic : Traffic.t;
  offered_load : float;
  warmup : int;
  measure : int;
  drain : int;
  seed : int;
  lookahead : int;
}

let default_config =
  {
    traffic = Traffic.Uniform;
    offered_load = 0.1;
    warmup = 500;
    measure = 2000;
    drain = 5000;
    seed = 1;
    lookahead = 8;
  }

type result = {
  injected : int;
  delivered : int;
  avg_latency : float;
  p99_latency : int;
  max_latency : int;
  throughput : float;
  avg_hops : float;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[delivered %d/%d, latency avg=%.1f p99=%d max=%d, throughput=%.4f, \
     hops=%.2f@]"
    r.delivered r.injected r.avg_latency r.p99_latency r.max_latency
    r.throughput r.avg_hops

type packet = {
  dest : int;
  born : int;
  tracked : bool;
  mutable hops : int;
}

let link_latency_of_layout ?(units_per_cycle = 64) layout =
  let route = Mvl_routing.Route.of_layout layout in
  fun u v ->
    1 + (Mvl_routing.Route.edge_length route u v / max 1 units_per_cycle)

let run ?(config = default_config) ?(link_latency = fun _ _ -> 1) graph =
  let n = Graph.n graph in
  if n < 2 then invalid_arg "Network_sim.run: need at least 2 nodes";
  let rng = Rng.create ~seed:config.seed in
  let routing = Routing_table.create ~edge_cost:link_latency graph in
  (* router queues: one FIFO per node (front = list to pop, back = rev) *)
  let q_front = Array.make n [] and q_back = Array.make n [] in
  let enqueue u p = q_back.(u) <- p :: q_back.(u) in
  (* in-flight packets keyed by arrival cycle *)
  let arrivals : (int, (int * packet) list) Hashtbl.t = Hashtbl.create 4096 in
  let schedule cycle node p =
    Hashtbl.replace arrivals cycle
      ((node, p) :: Option.value ~default:[] (Hashtbl.find_opt arrivals cycle))
  in
  let horizon = config.warmup + config.measure + config.drain in
  let injected = ref 0 and delivered = ref 0 in
  let latencies = ref [] in
  let hop_total = ref 0 in
  let pending_tracked = ref 0 in
  let cycle = ref 0 in
  let continue = ref true in
  while !continue do
    let now = !cycle in
    (* arrivals land in router queues (or terminate) *)
    (match Hashtbl.find_opt arrivals now with
    | None -> ()
    | Some landed ->
        Hashtbl.remove arrivals now;
        List.iter
          (fun (node, p) ->
            if node = p.dest then begin
              if p.tracked then begin
                delivered := !delivered + 1;
                pending_tracked := !pending_tracked - 1;
                latencies := (now - p.born) :: !latencies;
                hop_total := !hop_total + p.hops
              end
            end
            else enqueue node p)
          (List.rev landed));
    (* injection *)
    if now < config.warmup + config.measure then
      for src = 0 to n - 1 do
        if Rng.bool rng ~p:config.offered_load then begin
          let dest =
            Traffic.destination config.traffic rng ~n_nodes:n ~src
          in
          let tracked = now >= config.warmup in
          if tracked then begin
            injected := !injected + 1;
            pending_tracked := !pending_tracked + 1
          end;
          enqueue src { dest; born = now; tracked; hops = 0 }
        end
      done;
    (* switching: scan each router's queue up to the lookahead depth,
       granting at most one packet per output port *)
    for u = 0 to n - 1 do
      if q_front.(u) = [] && q_back.(u) <> [] then begin
        q_front.(u) <- List.rev q_back.(u);
        q_back.(u) <- []
      end;
      if q_front.(u) <> [] then begin
        let granted = Hashtbl.create 8 in
        let rec scan depth kept = function
          | [] -> List.rev kept
          | p :: rest when depth < config.lookahead ->
              let out = Routing_table.next_hop routing ~at:u ~dest:p.dest in
              if Hashtbl.mem granted out then scan (depth + 1) (p :: kept) rest
              else begin
                Hashtbl.add granted out ();
                p.hops <- p.hops + 1;
                schedule (now + max 1 (link_latency u out)) out p;
                scan (depth + 1) kept rest
              end
          | rest -> List.rev kept @ rest
        in
        q_front.(u) <- scan 0 [] q_front.(u)
      end
    done;
    incr cycle;
    if !cycle >= horizon then continue := false
    else if
      !cycle >= config.warmup + config.measure
      && !pending_tracked = 0
      && Hashtbl.length arrivals = 0
    then continue := false
  done;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let count = Array.length lat in
  let avg =
    if count = 0 then 0.0
    else
      float_of_int (Array.fold_left ( + ) 0 lat) /. float_of_int count
  in
  {
    injected = !injected;
    delivered = !delivered;
    avg_latency = avg;
    p99_latency = (if count = 0 then 0 else lat.(min (count - 1) (count * 99 / 100)));
    max_latency = (if count = 0 then 0 else lat.(count - 1));
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
    avg_hops =
      (if !delivered = 0 then 0.0
       else float_of_int !hop_total /. float_of_int !delivered);
  }

let saturation_throughput ?(config = default_config) ?link_latency graph =
  let cfg = { config with offered_load = 0.95 } in
  (run ~config:cfg ?link_latency graph).throughput

let zero_load_latency ?(samples = 64) ?(link_latency = fun _ _ -> 1) graph =
  let n = Graph.n graph in
  let routing = Routing_table.create ~edge_cost:link_latency graph in
  let rng = Rng.create ~seed:7 in
  let total = ref 0 and count = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int rng ~bound:n in
    let dest = Rng.int rng ~bound:n in
    if src <> dest then begin
      let path = Routing_table.path routing ~src ~dest in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            total := !total + max 1 (link_latency a b);
            walk rest
        | _ -> ()
      in
      walk path;
      count := !count + 1
    end
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count
