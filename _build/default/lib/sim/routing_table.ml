open Mvl_topology

type t = {
  graph : Graph.t;
  edge_cost : int -> int -> int;
  (* dest -> per-node next hop towards dest *)
  cache : (int, int array) Hashtbl.t;
}

let create ?(edge_cost = fun _ _ -> 0) graph =
  { graph; edge_cost; cache = Hashtbl.create 64 }

(* build the next-hop array for one destination: BFS from [dest]; each
   node forwards to the predecessor that minimizes (cost, id) among
   neighbours one level closer to dest *)
let build t dest =
  let n = Graph.n t.graph in
  let dist = Graph.bfs_dist t.graph dest in
  let hop = Array.make n (-1) in
  for u = 0 to n - 1 do
    if u <> dest && dist.(u) < max_int then begin
      let best = ref (-1) and best_key = ref (max_int, max_int) in
      Graph.iter_neighbors t.graph u (fun v ->
          if dist.(v) = dist.(u) - 1 then begin
            let key = (t.edge_cost u v, v) in
            if key < !best_key then begin
              best_key := key;
              best := v
            end
          end);
      hop.(u) <- !best
    end
  done;
  hop

let table t dest =
  match Hashtbl.find_opt t.cache dest with
  | Some h -> h
  | None ->
      let h = build t dest in
      Hashtbl.add t.cache dest h;
      h

let next_hop t ~at ~dest =
  if at = dest then invalid_arg "Routing_table.next_hop: already there";
  let hop = (table t dest).(at) in
  if hop < 0 then invalid_arg "Routing_table.next_hop: unreachable";
  hop

let path t ~src ~dest =
  let rec go acc at =
    if at = dest then List.rev (dest :: acc)
    else go (at :: acc) (next_hop t ~at ~dest)
  in
  if src = dest then [ src ] else go [] src

let hops t ~src ~dest = List.length (path t ~src ~dest) - 1
