(** Synthetic traffic patterns, the standard suite for interconnection
    network evaluation.  A pattern maps a source to a destination; the
    permutation patterns assume node labels are bit strings of the
    network's label width. *)

type t =
  | Uniform          (** destination drawn uniformly (excluding self) *)
  | Transpose        (** swap the two halves of the label bits *)
  | Bit_reversal     (** reverse the label bits *)
  | Bit_complement   (** flip all label bits *)
  | Hotspot of int   (** all traffic to one node *)

val pp : Format.formatter -> t -> unit

val destination : t -> Rng.t -> n_nodes:int -> src:int -> int
(** Picks a destination for [src].  For the permutation patterns
    [n_nodes] must be a power of two; a self-destination (possible for
    the fixed patterns) is mapped to [src + 1 mod n]. *)
