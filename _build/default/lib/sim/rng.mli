(** Small deterministic PRNG (splitmix64) so simulations are exactly
    reproducible across runs and platforms. *)

type t

val create : seed:int -> t
val int : t -> bound:int -> int
(** Uniform in [0, bound); [bound >= 1]. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)
