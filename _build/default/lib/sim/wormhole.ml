open Mvl_topology

type fabric = Hypercube of int | Torus of { k : int; n : int }

type routing = Deterministic | Adaptive

type config = {
  packet_len : int;
  vcs : int;
  buffer_depth : int;
  routing : routing;
  traffic : Traffic.t;
  offered_load : float;
  warmup : int;
  measure : int;
  drain : int;
  seed : int;
}

let default_config =
  {
    packet_len = 4;
    vcs = 2;
    buffer_depth = 4;
    routing = Deterministic;
    traffic = Traffic.Uniform;
    offered_load = 0.02;
    warmup = 500;
    measure = 2000;
    drain = 20000;
    seed = 1;
  }

type result = {
  injected : int;
  delivered : int;
  avg_latency : float;
  p99_latency : int;
  throughput : float;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[delivered %d/%d, latency avg=%.1f p99=%d, throughput=%.4f pkt/node/cyc@]"
    r.delivered r.injected r.avg_latency r.p99_latency r.throughput

let graph_of_fabric = function
  | Hypercube n -> Mvl_topology.Hypercube.create n
  | Torus { k; n } -> Kary_ncube.create ~k ~n

(* ------------------------------------------------------------------ *)

type packet = {
  id : int;
  dest : int;
  born : int;
  tracked : bool;
  mutable vc_class : int;  (* torus dateline class *)
  mutable cur_dim : int;   (* dimension currently being corrected *)
}

type flit = { pkt : packet; head : bool; tail : bool }

type in_vc = { buf : flit Queue.t; mutable route : (int * int) option }
(* route = (output neighbour index, output VC) once the head flit has
   been routed at this router; cleared when the tail leaves *)

let run ?(config = default_config) ?(link_latency = fun _ _ -> 1) fabric =
  if config.packet_len < 1 then invalid_arg "Wormhole: packet_len < 1";
  if config.vcs < 1 then invalid_arg "Wormhole: vcs < 1";
  (match (fabric, config.routing) with
  | Torus _, Deterministic when config.vcs < 2 ->
      invalid_arg "Wormhole: tori need >= 2 virtual channels"
  | Torus _, Adaptive when config.vcs < 3 ->
      invalid_arg "Wormhole: adaptive tori need >= 3 virtual channels"
  | Hypercube _, Adaptive when config.vcs < 2 ->
      invalid_arg "Wormhole: adaptive hypercubes need >= 2 virtual channels"
  | _ -> ());
  let graph = graph_of_fabric fabric in
  let n = Graph.n graph in
  let rng = Rng.create ~seed:config.seed in
  let neighbors = Array.init n (fun u -> Graph.neighbors graph u) in
  let neighbor_idx u v =
    let arr = neighbors.(u) in
    let rec find i = if arr.(i) = v then i else find (i + 1) in
    find 0
  in
  (* e-cube route: returns (next node, required vc or -1 for any, and a
     thunk committing the packet's dateline-class update — run only once
     the output VC is actually allocated, since allocation may be
     retried across cycles) *)
  let route_hop (p : packet) u =
    match fabric with
    | Hypercube _ ->
        let diff = u lxor p.dest in
        let b =
          let rec lowest i = if diff land (1 lsl i) <> 0 then i else lowest (i + 1) in
          lowest 0
        in
        (u lxor (1 lsl b), -1, fun () -> ())
    | Torus { k; n = dims } ->
        let rec digits_of x j = if j = 0 then [] else (x mod k) :: digits_of (x / k) (j - 1) in
        let du = Array.of_list (digits_of u dims) in
        let dd = Array.of_list (digits_of p.dest dims) in
        let rec first_dim j =
          if j >= dims then invalid_arg "Wormhole: routing at destination"
          else if du.(j) <> dd.(j) then j
          else first_dim (j + 1)
        in
        let j = first_dim 0 in
        let klass = if j <> p.cur_dim then 0 else p.vc_class in
        let fwd = (dd.(j) - du.(j) + k) mod k in
        let go_plus = fwd <= k - fwd in
        let next_digit = if go_plus then (du.(j) + 1) mod k else (du.(j) + k - 1) mod k in
        let crosses =
          (go_plus && du.(j) = k - 1) || ((not go_plus) && du.(j) = 0)
        in
        let rec pow acc i = if i = 0 then acc else pow (acc * k) (i - 1) in
        let weight = pow 1 j in
        let next = u + ((next_digit - du.(j)) * weight) in
        ( next,
          klass,
          fun () ->
            p.cur_dim <- j;
            p.vc_class <- (if crosses then 1 else klass) )
  in
  (* minimal productive hops, for adaptive routing *)
  let productive_hops (p : packet) u =
    match fabric with
    | Hypercube dims ->
        let diff = u lxor p.dest in
        List.filter_map
          (fun b ->
            if diff land (1 lsl b) <> 0 then Some (u lxor (1 lsl b)) else None)
          (List.init dims (fun i -> i))
    | Torus { k; n = dims } ->
        let hops = ref [] in
        let rec pow acc i = if i = 0 then acc else pow (acc * k) (i - 1) in
        for j = 0 to dims - 1 do
          let dj = u / pow 1 j mod k and tj = p.dest / pow 1 j mod k in
          if dj <> tj then begin
            let fwd = (tj - dj + k) mod k in
            let go_plus = fwd <= k - fwd in
            let next_digit = if go_plus then (dj + 1) mod k else (dj + k - 1) mod k in
            hops := (u + ((next_digit - dj) * pow 1 j)) :: !hops
          end
        done;
        !hops
  in
  (* per node: inputs = in-neighbours (by index) plus one injection
     pseudo-input at index deg(u) *)
  let in_vcs =
    Array.init n (fun u ->
        Array.init
          (Array.length neighbors.(u) + 1)
          (fun _ ->
            Array.init config.vcs (fun _ ->
                { buf = Queue.create (); route = None })))
  in
  let owner =
    Array.init n (fun u ->
        Array.init (Array.length neighbors.(u)) (fun _ ->
            Array.make config.vcs (-1)))
  in
  let credits =
    Array.init n (fun u ->
        Array.init (Array.length neighbors.(u)) (fun _ ->
            Array.make config.vcs config.buffer_depth))
  in
  let arrivals : (int, (int * int * int * flit) list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let credit_returns : (int, (int * int * int) list) Hashtbl.t =
    Hashtbl.create 4096
  in
  let push tbl cycle x =
    Hashtbl.replace tbl cycle
      (x :: Option.value ~default:[] (Hashtbl.find_opt tbl cycle))
  in
  let horizon = config.warmup + config.measure + config.drain in
  let injected = ref 0 and delivered = ref 0 and pending = ref 0 in
  let latencies = ref [] in
  let next_packet_id = ref 0 in
  let rr = Array.make n 0 in
  for now = 0 to horizon - 1 do
    (* arrivals *)
    (match Hashtbl.find_opt arrivals now with
    | None -> ()
    | Some l ->
        Hashtbl.remove arrivals now;
        List.iter
          (fun (v, in_idx, vc, f) -> Queue.add f in_vcs.(v).(in_idx).(vc).buf)
          (List.rev l));
    (match Hashtbl.find_opt credit_returns now with
    | None -> ()
    | Some l ->
        Hashtbl.remove credit_returns now;
        List.iter
          (fun (u, d, vc) -> credits.(u).(d).(vc) <- credits.(u).(d).(vc) + 1)
          l);
    (* injection: whole packet enqueued flit by flit into the pseudo-input *)
    if now < config.warmup + config.measure then
      for src = 0 to n - 1 do
        if Rng.bool rng ~p:config.offered_load then begin
          let dest = Traffic.destination config.traffic rng ~n_nodes:n ~src in
          let tracked = now >= config.warmup in
          if tracked then begin
            incr injected;
            incr pending
          end;
          let p =
            {
              id = !next_packet_id;
              dest;
              born = now;
              tracked;
              vc_class = 0;
              cur_dim = -1;
            }
          in
          incr next_packet_id;
          let inj = in_vcs.(src).(Array.length neighbors.(src)).(0).buf in
          for f = 0 to config.packet_len - 1 do
            Queue.add
              { pkt = p; head = (f = 0); tail = (f = config.packet_len - 1) }
              inj
          done
        end
      done;
    (* switching *)
    for u = 0 to n - 1 do
      let deg = Array.length neighbors.(u) in
      let n_inputs = deg + 1 in
      let out_used = Array.make deg false in
      let start = rr.(u) in
      rr.(u) <- (rr.(u) + 1) mod n_inputs;
      for step = 0 to n_inputs - 1 do
        let in_idx = (start + step) mod n_inputs in
        (* one flit per input per cycle: scan this input's VCs *)
        let granted = ref false in
        for vc = 0 to config.vcs - 1 do
          let ivc = in_vcs.(u).(in_idx).(vc) in
          if (not !granted) && not (Queue.is_empty ivc.buf) then begin
            let f = Queue.peek ivc.buf in
            if f.pkt.dest = u then begin
              (* ejection *)
              ignore (Queue.pop ivc.buf);
              granted := true;
              if in_idx < deg then begin
                let upstream = neighbors.(u).(in_idx) in
                let d_up = neighbor_idx upstream u in
                push credit_returns
                  (now + max 1 (link_latency upstream u))
                  (upstream, d_up, vc)
              end;
              if f.tail then begin
                ivc.route <- None;
                if f.pkt.tracked then begin
                  incr delivered;
                  decr pending;
                  latencies := (now - f.pkt.born) :: !latencies
                end
              end
            end
            else begin
              (* route the head if not yet routed *)
              (if ivc.route = None && f.head then begin
                 let try_alloc d vc' commit =
                   if owner.(u).(d).(vc') < 0 then begin
                     owner.(u).(d).(vc') <- f.pkt.id;
                     ivc.route <- Some (d, vc');
                     commit ();
                     true
                   end
                   else false
                 in
                 let escape () =
                   let next, want_vc, commit = route_hop f.pkt u in
                   let d = neighbor_idx u next in
                   (* under adaptive routing the hypercube escape lane is
                      pinned to VC 0 *)
                   let want_vc =
                     if config.routing = Adaptive && want_vc < 0 then 0
                     else want_vc
                   in
                   if want_vc >= 0 then ignore (try_alloc d want_vc commit)
                   else begin
                     let ok = ref false in
                     for off = 0 to config.vcs - 1 do
                       if not !ok then
                         ok :=
                           try_alloc d ((f.pkt.id + off) mod config.vcs) commit
                     done
                   end
                 in
                 match config.routing with
                 | Deterministic -> escape ()
                 | Adaptive ->
                     (* adaptive candidates: any minimal hop on an
                        adaptive VC, most credits first; an adaptive hop
                        resets the escape (dateline) state so a later
                        escape re-enters its ring fresh *)
                     let adaptive_lo =
                       match fabric with Hypercube _ -> 1 | Torus _ -> 2
                     in
                     let cands = ref [] in
                     List.iter
                       (fun next ->
                         let d = neighbor_idx u next in
                         for vc' = adaptive_lo to config.vcs - 1 do
                           if owner.(u).(d).(vc') < 0 then
                             cands := (credits.(u).(d).(vc'), d, vc') :: !cands
                         done)
                       (productive_hops f.pkt u);
                     let sorted =
                       List.sort (fun (a, _, _) (b, _, _) -> compare b a) !cands
                     in
                     let commit_adaptive () =
                       f.pkt.cur_dim <- -1;
                       f.pkt.vc_class <- 0
                     in
                     let rec try_list = function
                       | [] -> escape ()
                       | (_, d, vc') :: rest ->
                           if not (try_alloc d vc' commit_adaptive) then
                             try_list rest
                     in
                     try_list sorted
               end);
              match ivc.route with
              | Some (d, out_vc)
                when (not out_used.(d)) && credits.(u).(d).(out_vc) > 0 ->
                  ignore (Queue.pop ivc.buf);
                  granted := true;
                  out_used.(d) <- true;
                  credits.(u).(d).(out_vc) <- credits.(u).(d).(out_vc) - 1;
                  let v = neighbors.(u).(d) in
                  let lat = max 1 (link_latency u v) in
                  let v_in = neighbor_idx v u in
                  push arrivals (now + lat) (v, v_in, out_vc, f);
                  (* return a credit upstream for the slot we vacated *)
                  if in_idx < deg then begin
                    let upstream = neighbors.(u).(in_idx) in
                    let d_up = neighbor_idx upstream u in
                    push credit_returns
                      (now + max 1 (link_latency upstream u))
                      (upstream, d_up, vc)
                  end;
                  if f.tail then begin
                    owner.(u).(d).(out_vc) <- -1;
                    ivc.route <- None
                  end
              | _ -> ()
            end
          end
        done
      done
    done
  done;
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let count = Array.length lat in
  {
    injected = !injected;
    delivered = !delivered;
    avg_latency =
      (if count = 0 then 0.0
       else float_of_int (Array.fold_left ( + ) 0 lat) /. float_of_int count);
    p99_latency =
      (if count = 0 then 0 else lat.(min (count - 1) (count * 99 / 100)));
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
  }
