(** Wire length along routing paths — the paper's claim (4): the maximum
    total wire length along a shortest (hop-count) routing path between
    any source-destination pair drops by [~L/2] in a direct multilayer
    layout. *)

open Mvl_layout

type t
(** A layout together with its per-edge wire-length table. *)

val of_layout : Layout.t -> t

val edge_length : t -> int -> int -> int
(** In-plane wire length of the edge [u]-[v]; raises [Not_found] when
    not adjacent. *)

val best_path_wire : t -> src:int -> int array
(** [best_path_wire t ~src] gives, for every destination, the minimum
    total wire length over all hop-shortest paths from [src]
    (unreachable: [max_int]). *)

val max_path_wire : ?samples:int -> t -> int
(** Maximum over sampled sources (default 16, evenly spaced; all nodes
    when the network has at most that many) of the maximum over
    destinations of {!best_path_wire} — the layout's worst-case
    accumulated wire length along a shortest route. *)

val max_wire : t -> int
(** Longest single wire (same as [Layout.metrics.max_wire]). *)
