lib/routing/route.mli: Layout Mvl_layout
