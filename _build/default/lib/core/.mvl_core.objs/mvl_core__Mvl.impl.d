lib/core/mvl.ml: Families Mvl_geometry Mvl_layout Mvl_model Mvl_routing Mvl_sim Mvl_topology
