lib/core/families.mli: Collinear Graph Layout Mvl_layout Mvl_topology
