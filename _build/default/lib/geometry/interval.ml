type t = { lo : int; hi : int }

let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let length i = i.hi - i.lo
let contains i x = i.lo <= x && x <= i.hi

let overlap_interior a b =
  (* closed intervals share an interior point iff max lo < min hi *)
  max a.lo b.lo < min a.hi b.hi

let touches a b = max a.lo b.lo <= min a.hi b.hi
let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let pp ppf i = Format.fprintf ppf "[%d,%d]" i.lo i.hi
