lib/geometry/segment.ml: Format Interval Point
