lib/geometry/point.ml: Format
