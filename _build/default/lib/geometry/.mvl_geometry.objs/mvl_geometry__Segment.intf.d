lib/geometry/segment.mli: Format Interval Point
