lib/geometry/interval.ml: Format
