lib/geometry/rect.mli: Format
