lib/geometry/rect.ml: Format
