type orientation = Along_x | Along_y | Along_z

type t = { a : Point.t; b : Point.t; orientation : orientation }

let make (p : Point.t) (q : Point.t) =
  let dx = q.x - p.x and dy = q.y - p.y and dz = q.z - p.z in
  match (dx <> 0, dy <> 0, dz <> 0) with
  | true, false, false ->
      if dx > 0 then { a = p; b = q; orientation = Along_x }
      else { a = q; b = p; orientation = Along_x }
  | false, true, false ->
      if dy > 0 then { a = p; b = q; orientation = Along_y }
      else { a = q; b = p; orientation = Along_y }
  | false, false, true ->
      if dz > 0 then { a = p; b = q; orientation = Along_z }
      else { a = q; b = p; orientation = Along_z }
  | _ -> invalid_arg "Segment.make: not axis-aligned or degenerate"

let length s = Point.manhattan s.a s.b

let span s =
  match s.orientation with
  | Along_x -> Interval.make s.a.x s.b.x
  | Along_y -> Interval.make s.a.y s.b.y
  | Along_z -> Interval.make s.a.z s.b.z

let contains_point s (p : Point.t) =
  match s.orientation with
  | Along_x -> p.y = s.a.y && p.z = s.a.z && s.a.x <= p.x && p.x <= s.b.x
  | Along_y -> p.x = s.a.x && p.z = s.a.z && s.a.y <= p.y && p.y <= s.b.y
  | Along_z -> p.x = s.a.x && p.y = s.a.y && s.a.z <= p.z && p.z <= s.b.z

let pp ppf s = Format.fprintf ppf "%a--%a" Point.pp s.a Point.pp s.b
