(** Axis-aligned rectangles (node footprints, bounding boxes).  A
    rectangle covers the grid points with [x0 <= x <= x1] and
    [y0 <= y <= y1]. *)

type t = { x0 : int; y0 : int; x1 : int; y1 : int }

val make : x0:int -> y0:int -> x1:int -> y1:int -> t
(** Requires [x0 <= x1] and [y0 <= y1]. *)

val width : t -> int
(** [x1 - x0 + 1] grid columns — side length in tracks. *)

val height : t -> int
val area : t -> int
(** [width * height]. *)

val contains : t -> x:int -> y:int -> bool
val contains_interior : t -> x:int -> y:int -> bool
(** Strictly inside (not on the boundary). *)

val overlaps : t -> t -> bool
(** Closed rectangles share at least one point. *)

val hull : t -> t -> t
val pp : Format.formatter -> t -> unit
