(** Points of the 3-D layout grid.  [x] runs along columns, [y] along
    rows, [z] is the wiring layer (layer numbering starts at 1; active
    nodes sit on layer 1 in the multilayer 2-D grid model). *)

type t = { x : int; y : int; z : int }

val make : x:int -> y:int -> z:int -> t
val equal : t -> t -> bool
val manhattan : t -> t -> int
(** [|dx| + |dy| + |dz|]. *)

val pp : Format.formatter -> t -> unit
