type t = { x0 : int; y0 : int; x1 : int; y1 : int }

let make ~x0 ~y0 ~x1 ~y1 =
  if x0 > x1 || y0 > y1 then invalid_arg "Rect.make: inverted bounds";
  { x0; y0; x1; y1 }

let width r = r.x1 - r.x0 + 1
let height r = r.y1 - r.y0 + 1
let area r = width r * height r
let contains r ~x ~y = r.x0 <= x && x <= r.x1 && r.y0 <= y && y <= r.y1

let contains_interior r ~x ~y =
  r.x0 < x && x < r.x1 && r.y0 < y && y < r.y1

let overlaps a b =
  max a.x0 b.x0 <= min a.x1 b.x1 && max a.y0 b.y0 <= min a.y1 b.y1

let hull a b =
  {
    x0 = min a.x0 b.x0;
    y0 = min a.y0 b.y0;
    x1 = max a.x1 b.x1;
    y1 = max a.y1 b.y1;
  }

let pp ppf r = Format.fprintf ppf "[%d..%d]x[%d..%d]" r.x0 r.x1 r.y0 r.y1
