(** Axis-aligned grid segments: the building blocks of routed wires. *)

type orientation =
  | Along_x  (** horizontal in the plane: [y], [z] fixed *)
  | Along_y  (** vertical in the plane: [x], [z] fixed *)
  | Along_z  (** a via: [x], [y] fixed *)

type t = private {
  a : Point.t;
  b : Point.t;
  orientation : orientation;
}
(** Invariant: [a] and [b] differ in exactly the coordinate given by
    [orientation], with the [a]-side coordinate strictly smaller. *)

val make : Point.t -> Point.t -> t
(** Raises [Invalid_argument] when the points differ in zero or more than
    one coordinate. *)

val length : t -> int
val span : t -> Interval.t
(** The varying coordinate's range. *)

val contains_point : t -> Point.t -> bool
(** Whether the (closed) segment passes through a grid point. *)

val pp : Format.formatter -> t -> unit
