type t = { x : int; y : int; z : int }

let make ~x ~y ~z = { x; y; z }
let equal a b = a.x = b.x && a.y = b.y && a.z = b.z

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y) + abs (a.z - b.z)

let pp ppf p = Format.fprintf ppf "(%d,%d,%d)" p.x p.y p.z
