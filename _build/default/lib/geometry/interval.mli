(** Closed integer intervals [\[lo, hi\]] with [lo <= hi], the basic
    currency of track assignment: a wire's span on a track is an
    interval, and two wires may share a track iff their spans overlap in
    at most a point. *)

type t = { lo : int; hi : int }

val make : int -> int -> t
(** [make a b] is the interval from [min a b] to [max a b]. *)

val length : t -> int
(** [hi - lo]. *)

val contains : t -> int -> bool

val overlap_interior : t -> t -> bool
(** True when the two intervals share more than a single point, i.e.
    their open interiors intersect: such spans conflict on a common
    track. *)

val touches : t -> t -> bool
(** True when the closed intervals intersect at all. *)

val hull : t -> t -> t
(** Smallest interval containing both. *)

val pp : Format.formatter -> t -> unit
