(** Binary hypercubes ([n]-cubes). *)

val create : int -> Graph.t
(** [create n] is the [n]-dimensional hypercube on [2^n] nodes;
    nodes [u] and [v] are adjacent iff their labels differ in exactly one
    bit.  [n = 0] yields the single node. *)

val dimension_of_edge : int -> int -> int
(** [dimension_of_edge u v] is the index of the bit in which adjacent
    labels differ.  Raises [Invalid_argument] when [u lxor v] is not a
    power of two. *)
