(** [k]-ary [n]-cube cluster-[c] networks (Basak–Panda, §3.2): a [k]-ary
    [n]-cube quotient whose nodes are replaced by [c]-node clusters. *)

val create_hypercube_clusters : k:int -> n:int -> c:int -> Pn_cluster.t
(** Clusters are [c]-node hypercubes ([c] must be a power of two) — the
    case analysed in §3.2. *)

val create_complete_clusters : k:int -> n:int -> c:int -> Pn_cluster.t
(** Clusters are complete graphs [K_c] — the densest case of §3.2. *)
