(** Cube-connected cycles (Preparata–Vuillemin).

    The [n]-dimensional CCC replaces each node [w] of the [n]-cube by an
    [n]-node cycle; node [(w, i)] has cycle links to [(w, i±1 mod n)] and
    one cube link to [(w xor 2^i, i)].  [N = n 2^n]. *)

type t = {
  graph : Graph.t;
  dims : int;  (** [n]. *)
}

val create : int -> t
(** [create n] builds the [n]-dimensional CCC, [n >= 3] for the classic
    degree-3 network ([n >= 1] accepted; small cases degenerate). *)

val node : t -> cube:int -> pos:int -> int
(** [(w, i)] encoded as [w * dims + i]. *)

val cube_of : t -> int -> int
val pos_of : t -> int -> int
