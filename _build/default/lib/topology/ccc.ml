type t = { graph : Graph.t; dims : int }

let encode ~dims ~cube ~pos = (cube * dims) + pos

let create n =
  if n < 1 then invalid_arg "Ccc.create: n < 1";
  if n > 20 then invalid_arg "Ccc.create: n too large";
  let cubes = 1 lsl n in
  let total = cubes * n in
  let edges = ref [] in
  for w = 0 to cubes - 1 do
    for i = 0 to n - 1 do
      let u = encode ~dims:n ~cube:w ~pos:i in
      (* cycle links: successor only, wrap added by the last position *)
      if i < n - 1 then edges := (u, encode ~dims:n ~cube:w ~pos:(i + 1)) :: !edges
      else if n > 2 then edges := (u, encode ~dims:n ~cube:w ~pos:0) :: !edges;
      (* cube link along dimension i *)
      let w' = w lxor (1 lsl i) in
      if w < w' then edges := (u, encode ~dims:n ~cube:w' ~pos:i) :: !edges
    done
  done;
  { graph = Graph.of_edges ~n:total !edges; dims = n }

let node t ~cube ~pos =
  if pos < 0 || pos >= t.dims then invalid_arg "Ccc.node: pos";
  if cube < 0 || cube >= 1 lsl t.dims then invalid_arg "Ccc.node: cube";
  encode ~dims:t.dims ~cube ~pos

let cube_of t id = id / t.dims
let pos_of t id = id mod t.dims
