(** Complete binary trees — the classical O(N)-area layout benchmark
    (Leiserson's H-trees) used here as a low-bisection comparator. *)

val complete_binary : int -> Graph.t
(** [complete_binary levels] is the complete binary tree with
    [2^levels - 1] nodes; node 0 is the root and node [i]'s children are
    [2i+1] and [2i+2]. *)

val in_order : int -> int array
(** The in-order traversal of [complete_binary levels] as a
    position -> node array: the canonical low-cutwidth collinear order
    (cutwidth [<= levels]). *)
