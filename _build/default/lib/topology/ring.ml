let create k =
  if k < 1 then invalid_arg "Ring.create: k < 1";
  let edges = ref [] in
  for i = 0 to k - 2 do
    edges := (i, i + 1) :: !edges
  done;
  if k > 2 then edges := (0, k - 1) :: !edges;
  Graph.of_edges ~n:k !edges
