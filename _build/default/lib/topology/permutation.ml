type t = int array

let identity d = Array.init d (fun i -> i)

let is_valid p =
  let d = Array.length p in
  let seen = Array.make d false in
  Array.for_all
    (fun x ->
      if x < 0 || x >= d || seen.(x) then false
      else begin
        seen.(x) <- true;
        true
      end)
    p

let compose p q =
  if Array.length p <> Array.length q then invalid_arg "Permutation.compose";
  Array.map (fun x -> p.(x)) q

let invert p =
  let d = Array.length p in
  let inv = Array.make d 0 in
  Array.iteri (fun i x -> inv.(x) <- i) p;
  inv

let factorial n =
  if n < 0 || n > 20 then invalid_arg "Permutation.factorial";
  let rec go acc k = if k <= 1 then acc else go (acc * k) (k - 1) in
  go 1 n

let rank p =
  let d = Array.length p in
  let r = ref 0 in
  for i = 0 to d - 1 do
    let smaller = ref 0 in
    for j = i + 1 to d - 1 do
      if p.(j) < p.(i) then incr smaller
    done;
    r := (!r * (d - i)) + !smaller
  done;
  !r

let unrank ~d code =
  if code < 0 || code >= factorial d then invalid_arg "Permutation.unrank";
  let lehmer = Array.make d 0 in
  let rest = ref code in
  for i = d - 1 downto 0 do
    let base = d - i in
    lehmer.(i) <- !rest mod base;
    rest := !rest / base
  done;
  let available = Array.to_list (Array.init d (fun i -> i)) in
  let avail = ref available in
  Array.map
    (fun k ->
      let x = List.nth !avail k in
      avail := List.filter (fun y -> y <> x) !avail;
      x)
    lehmer

let swap p i j =
  let q = Array.copy p in
  let tmp = q.(i) in
  q.(i) <- q.(j);
  q.(j) <- tmp;
  q

let prefix_reversal p k =
  if k < 2 || k > Array.length p then invalid_arg "Permutation.prefix_reversal";
  let q = Array.copy p in
  for i = 0 to (k / 2) - 1 do
    let tmp = q.(i) in
    q.(i) <- q.(k - 1 - i);
    q.(k - 1 - i) <- tmp
  done;
  q
