let radices ~k ~n = Mixed_radix.uniform ~radix:k ~dims:n

let create ~k ~n =
  if k < 2 then invalid_arg "Kary_ncube.create: k < 2";
  if n < 1 then invalid_arg "Kary_ncube.create: n < 1";
  let r = radices ~k ~n in
  let total = Mixed_radix.cardinal r in
  let edges = ref [] in
  Mixed_radix.iter r (fun d ->
      let u = Mixed_radix.of_digits r d in
      for j = 0 to n - 1 do
        (* connect towards the successor along dimension j; the ring wrap
           link is added only once, by the node with digit k-1 *)
        let dj = d.(j) in
        if dj < k - 1 then begin
          d.(j) <- dj + 1;
          edges := (u, Mixed_radix.of_digits r d) :: !edges;
          d.(j) <- dj
        end
        else if k > 2 then begin
          d.(j) <- 0;
          edges := (u, Mixed_radix.of_digits r d) :: !edges;
          d.(j) <- dj
        end
      done);
  Graph.of_edges ~n:total !edges

let dimension_of_edge ~k ~n u v =
  let r = radices ~k ~n in
  let du = Mixed_radix.to_digits r u and dv = Mixed_radix.to_digits r v in
  let diff = ref [] in
  for j = 0 to n - 1 do
    if du.(j) <> dv.(j) then diff := j :: !diff
  done;
  match !diff with
  | [ j ]
    when abs (du.(j) - dv.(j)) = 1
         || (k > 2 && abs (du.(j) - dv.(j)) = k - 1) ->
      j
  | _ -> invalid_arg "Kary_ncube.dimension_of_edge: not a torus edge"
