let is_power_of_two x = x > 0 && x land (x - 1) = 0

let log2_exact x =
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let create_hypercube_clusters ~k ~n ~c =
  if not (is_power_of_two c) then
    invalid_arg "Kary_cluster: c must be a power of two";
  let quotient = Kary_ncube.create ~k ~n in
  Pn_cluster.create ~quotient ~intra:(Hypercube.create (log2_exact c)) ()

let create_complete_clusters ~k ~n ~c =
  let quotient = Kary_ncube.create ~k ~n in
  Pn_cluster.create ~quotient ~intra:(Complete.create c) ()
