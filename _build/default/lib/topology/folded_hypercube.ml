let diameter_links n =
  if n < 1 then invalid_arg "Folded_hypercube.diameter_links: n < 1";
  let total = 1 lsl n in
  let mask = total - 1 in
  let links = ref [] in
  for u = 0 to total - 1 do
    let v = u lxor mask in
    if u < v then links := (u, v) :: !links
  done;
  !links

let create n =
  let cube = Hypercube.create n in
  let extra = diameter_links n in
  Graph.of_edges ~n:(Graph.n cube)
    (Array.to_list (Graph.edges cube) @ extra)
