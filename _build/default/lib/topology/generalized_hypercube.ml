let create radices =
  let total = Mixed_radix.cardinal radices in
  let dims = Array.length radices in
  let edges = ref [] in
  Mixed_radix.iter radices (fun d ->
      let u = Mixed_radix.of_digits radices d in
      for j = 0 to dims - 1 do
        let dj = d.(j) in
        (* connect to every strictly larger digit value, so each complete
           graph edge appears exactly once *)
        for x = dj + 1 to radices.(j) - 1 do
          d.(j) <- x;
          edges := (u, Mixed_radix.of_digits radices d) :: !edges
        done;
        d.(j) <- dj
      done);
  Graph.of_edges ~n:total !edges

let create_uniform ~r ~n =
  if r < 2 then invalid_arg "Generalized_hypercube.create_uniform: r < 2";
  if n < 1 then invalid_arg "Generalized_hypercube.create_uniform: n < 1";
  create (Mixed_radix.uniform ~radix:r ~dims:n)

let degree radices = Array.fold_left (fun acc r -> acc + r - 1) 0 radices
