let create nn =
  if nn < 1 then invalid_arg "Complete.create: n < 1";
  let edges = ref [] in
  for u = 0 to nn - 1 do
    for v = u + 1 to nn - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:nn !edges
