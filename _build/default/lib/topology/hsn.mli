(** Hierarchical swap networks (Yeh–Parhami), built on the
    index-permutation graph model.

    An [l]-level HSN over an [r]-node nucleus graph has node labels
    [(d_{l-1}, ..., d_1, d_0)] with every digit in [0 .. r-1]:
    - nucleus links connect nodes that differ only in [d_0], according to
      the nucleus graph's adjacency;
    - the level-[i] swap link ([1 <= i <= l-1]) connects each node to the
      node obtained by exchanging digits [d_0] and [d_i] (no link when
      [d_0 = d_i]).

    Contracting each cluster (the [r] nodes sharing [(d_{l-1},...,d_1)])
    yields the [(l-1)]-dimensional radix-[r] generalized hypercube, which
    is exactly the quotient structure the paper's layout uses (§4.3). *)

type t = {
  graph : Graph.t;
  levels : int;   (** [l >= 1]. *)
  radix : int;    (** nucleus size [r]. *)
  nucleus : Graph.t;
}

val create : levels:int -> nucleus:Graph.t -> t
(** [create ~levels ~nucleus] builds the HSN with [r = Graph.n nucleus]
    nodes per cluster and [N = r^levels] nodes total. *)

val create_complete : levels:int -> radix:int -> t
(** HSN whose nucleus is the complete graph [K_radix] (the canonical
    choice in the paper's analysis). *)

val node : t -> cluster:int -> pos:int -> int
(** [cluster] encodes digits [d_{l-1}..d_1] in radix [r]; [pos] is
    [d_0]. *)

val cluster_of : t -> int -> int
val pos_of : t -> int -> int
