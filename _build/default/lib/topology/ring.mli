(** Rings (cycles): the [k]-ary 1-cube. *)

val create : int -> Graph.t
(** [create k] is the cycle on [k >= 3] nodes, or the single edge for
    [k = 2] and the single node for [k = 1]. *)
