let complete_binary levels =
  if levels < 1 then invalid_arg "Tree.complete_binary: levels < 1";
  if levels > 24 then invalid_arg "Tree.complete_binary: too large";
  let n = (1 lsl levels) - 1 in
  let edges = ref [] in
  for i = 0 to n - 1 do
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    if left < n then edges := (i, left) :: !edges;
    if right < n then edges := (i, right) :: !edges
  done;
  Graph.of_edges ~n !edges

let in_order levels =
  let n = (1 lsl levels) - 1 in
  let node_at = Array.make n (-1) in
  let pos = ref 0 in
  let rec visit i =
    if i < n then begin
      visit ((2 * i) + 1);
      node_at.(!pos) <- i;
      incr pos;
      visit ((2 * i) + 2)
    end
  in
  visit 0;
  node_at
