(** Indirect swap networks (ISNs).

    The defining reference ([35], SPAA 2000) was not available, so this
    module implements the *structural substitute* documented in
    DESIGN.md: everything the paper's §4.3 layout uses about an ISN is
    that it partitions into clusters of [r (log2 R + o(log R))] nodes
    connected as a generalized hypercube with **two** links per pair of
    neighbouring clusters (vs. four for the butterfly).  We therefore
    build exactly that PN-cluster structure: a radix-[r] generalized
    hypercube quotient with multiplicity 2 whose clusters are connected
    [r x b] grids with [b ≈ log2 R] (standing in for the "several copies
    of small butterflies" of the real construction). *)

val create : radix:int -> quotient_dims:int -> levels:int -> Pn_cluster.t
(** [create ~radix ~quotient_dims ~levels] builds the substitute ISN:
    quotient [GHC(radix, quotient_dims)], multiplicity 2, clusters of
    [radix * levels] nodes. *)

val of_butterfly_scale : dims:int -> radix:int -> Pn_cluster.t
(** Convenience sizing that mirrors §4.2/§4.3: for a butterfly with
    [R = 2^dims] rows, produce the ISN whose quotient has about
    [R / (radix * dims)] nodes and whose clusters have [radix * dims]
    nodes. *)
