let create ~levels ~cube_dims =
  if cube_dims < 1 then invalid_arg "Hhn.create: cube_dims < 1";
  Hsn.create ~levels ~nucleus:(Hypercube.create cube_dims)
