let create ~radix ~quotient_dims ~levels =
  if radix < 2 then invalid_arg "Isn.create: radix < 2";
  if quotient_dims < 1 then invalid_arg "Isn.create: quotient_dims < 1";
  if levels < 1 then invalid_arg "Isn.create: levels < 1";
  let quotient = Generalized_hypercube.create_uniform ~r:radix ~n:quotient_dims in
  let intra = Mesh.create ~dims:[| radix; levels |] in
  Pn_cluster.create ~quotient ~intra ~multiplicity:2 ()

let of_butterfly_scale ~dims ~radix =
  if dims < 1 then invalid_arg "Isn.of_butterfly_scale: dims < 1";
  let rows = 1 lsl dims in
  let cluster = radix * dims in
  (* quotient_dims chosen as the smallest m with radix^m >= rows/cluster *)
  let target = max 2 (rows / cluster) in
  let rec dims_for acc m = if acc >= target then m else dims_for (acc * radix) (m + 1) in
  let quotient_dims = max 1 (dims_for 1 0) in
  create ~radix ~quotient_dims ~levels:dims
