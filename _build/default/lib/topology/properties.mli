(** Structural property analysis used by tests, lower bounds and
    experiment reports. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] pairs, sorted by degree. *)

val is_vertex_transitive_sample : Graph.t -> samples:int -> bool
(** Cheap necessary-condition check: all sampled nodes have the same
    degree and the same sorted multiset of BFS-level sizes.  [true] only
    says the samples are consistent with vertex transitivity. *)

val average_distance : Graph.t -> float
(** Mean pairwise BFS distance (all pairs; O(n·m)).  Raises
    [Invalid_argument] on disconnected graphs. *)

val edge_cut : Graph.t -> left:bool array -> int
(** Number of edges crossing the given bipartition. *)

val bisection_upper_bound : Graph.t -> sweeps:int -> int
(** Heuristic upper bound on the bisection width: best balanced cut found
    by BFS-ordering sweeps from [sweeps] different seeds plus a
    label-order sweep.  An upper bound on the true bisection width. *)
