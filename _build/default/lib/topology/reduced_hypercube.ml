type t = { graph : Graph.t; dims : int; cluster_dims : int }

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let log2_exact x =
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  go 0 x

let encode ~dims ~cube ~pos = (cube * dims) + pos

let create n =
  if not (is_power_of_two n) || n < 2 then
    invalid_arg "Reduced_hypercube.create: n must be a power of two >= 2";
  if n > 20 then invalid_arg "Reduced_hypercube.create: n too large";
  let cluster_dims = log2_exact n in
  let cubes = 1 lsl n in
  let total = cubes * n in
  let edges = ref [] in
  for w = 0 to cubes - 1 do
    for i = 0 to n - 1 do
      let u = encode ~dims:n ~cube:w ~pos:i in
      (* intra-cluster hypercube links on the position label *)
      for b = 0 to cluster_dims - 1 do
        let j = i lxor (1 lsl b) in
        if i < j then edges := (u, encode ~dims:n ~cube:w ~pos:j) :: !edges
      done;
      (* cube link along dimension i *)
      let w' = w lxor (1 lsl i) in
      if w < w' then edges := (u, encode ~dims:n ~cube:w' ~pos:i) :: !edges
    done
  done;
  { graph = Graph.of_edges ~n:total !edges; dims = n; cluster_dims }

let node t ~cube ~pos =
  if pos < 0 || pos >= t.dims then invalid_arg "Reduced_hypercube.node: pos";
  if cube < 0 || cube >= 1 lsl t.dims then
    invalid_arg "Reduced_hypercube.node: cube";
  encode ~dims:t.dims ~cube ~pos

let cube_of t id = id / t.dims
let pos_of t id = id mod t.dims
