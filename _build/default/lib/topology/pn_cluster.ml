type t = {
  graph : Graph.t;
  quotient : Graph.t;
  cluster_size : int;
  multiplicity : int;
  intra : Graph.t;
  attach : (int * int) -> int -> int * int;
}

let node t ~cluster ~pos =
  if pos < 0 || pos >= t.cluster_size then invalid_arg "Pn_cluster.node: pos";
  if cluster < 0 || cluster >= Graph.n t.quotient then
    invalid_arg "Pn_cluster.node: cluster";
  (cluster * t.cluster_size) + pos

let cluster_of t id = id / t.cluster_size
let pos_of t id = id mod t.cluster_size

(* index of [v] among the sorted neighbours of [u] *)
let neighbor_rank quotient u v =
  let rank = ref (-1) in
  let i = ref 0 in
  Graph.iter_neighbors quotient u (fun w ->
      if w = v then rank := !i;
      incr i);
  if !rank < 0 then invalid_arg "Pn_cluster: attach on a non-edge";
  !rank

let default_attach quotient ~cluster_size ~multiplicity (qu, qv) i =
  let pos_u = ((neighbor_rank quotient qu qv * multiplicity) + i) mod cluster_size in
  let pos_v = ((neighbor_rank quotient qv qu * multiplicity) + i) mod cluster_size in
  (pos_u, pos_v)

let create ~quotient ~intra ?(multiplicity = 1) ?attach () =
  if multiplicity < 1 then invalid_arg "Pn_cluster.create: multiplicity < 1";
  let cluster_size = Graph.n intra in
  if cluster_size < 1 then invalid_arg "Pn_cluster.create: empty cluster";
  let attach =
    match attach with
    | Some f -> f
    | None -> default_attach quotient ~cluster_size ~multiplicity
  in
  let encode cluster pos = (cluster * cluster_size) + pos in
  let edges = ref [] in
  for c = 0 to Graph.n quotient - 1 do
    Graph.iter_edges intra (fun p q -> edges := (encode c p, encode c q) :: !edges)
  done;
  Graph.iter_edges quotient (fun qu qv ->
      for i = 0 to multiplicity - 1 do
        let pos_u, pos_v = attach (qu, qv) i in
        if pos_u < 0 || pos_u >= cluster_size || pos_v < 0 || pos_v >= cluster_size
        then invalid_arg "Pn_cluster.create: attach position out of range";
        edges := (encode qu pos_u, encode qv pos_v) :: !edges
      done);
  let graph = Graph.of_edges ~n:(Graph.n quotient * cluster_size) !edges in
  { graph; quotient; cluster_size; multiplicity; intra; attach }
