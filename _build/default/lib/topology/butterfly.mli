(** Butterfly networks.

    The ordinary [n]-dimensional butterfly has rows [w] in [{0,1}^n] and
    levels [0 .. n]; node [(w, l)] connects to [(w, l+1)] (straight) and
    to [(w xor 2^l, l+1)] (cross).  The wrap-around butterfly identifies
    level [n] with level [0], giving [n 2^n] nodes of degree 4 — this is
    the ["R x R butterfly"] of the paper with [R = 2^n] and
    [N = R log2 R]. *)

type t = {
  graph : Graph.t;
  dims : int;      (** [n]: number of cross dimensions. *)
  rows : int;      (** [R = 2^n]. *)
  levels : int;    (** number of distinct levels (n for wrapped, n+1 otherwise). *)
  wrap : bool;
}

val create : dims:int -> wrap:bool -> t
(** [create ~dims ~wrap] builds the butterfly.  [dims >= 1]. *)

val node : t -> row:int -> level:int -> int
(** Encoding of node [(row, level)] as [level * rows + row]. *)

val row_of : t -> int -> int
val level_of : t -> int -> int
