(** Hierarchical hypercube networks (Yun–Park), realized as the special
    case of hierarchical swap networks whose basic modules (nucleus
    graphs) are binary hypercubes — exactly how the paper lays them out
    (§4.3). *)

val create : levels:int -> cube_dims:int -> Hsn.t
(** [create ~levels ~cube_dims] is the [levels]-level HHN whose clusters
    are [cube_dims]-dimensional hypercubes ([r = 2^cube_dims] nodes per
    cluster, [N = r^levels] in total). *)
