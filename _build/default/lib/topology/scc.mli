(** Star-connected cycles (Latifi–de Azevedo–Bagherzadeh), one of the
    §4.3 families: each node of the star graph S_d is replaced by a
    (d-1)-node cycle, position [i] of the cycle carrying the star's
    generator [i+1] link — the star-graph analogue of the CCC. *)

type t = {
  graph : Graph.t;
  d : int;            (** star graph dimension; N = (d-1) d! *)
  cycle_len : int;    (** d - 1 *)
}

val create : int -> t
(** [create d] builds SCC(d), [d >= 3]. *)

val node : t -> star:int -> pos:int -> int
(** [(star graph node rank, cycle position)] encoded as
    [star * (d-1) + pos]. *)

val star_of : t -> int -> int
val pos_of : t -> int -> int
