(** [k]-ary [n]-cubes: the [n]-fold Cartesian product of [k]-node rings.

    Node [(i_{n-1}, ..., i_0)] is encoded as the radix-[k] integer with
    [i_0] least significant. *)

val create : k:int -> n:int -> Graph.t
(** [create ~k ~n] is the [k]-ary [n]-cube on [k^n] nodes.  Each node has
    degree [2n] for [k >= 3] and degree [n] for [k = 2] (where the two
    ring neighbours coincide). *)

val radices : k:int -> n:int -> Mixed_radix.radices
(** The label system of {!create}: [n] digits of radix [k]. *)

val dimension_of_edge : k:int -> n:int -> int -> int -> int
(** [dimension_of_edge ~k ~n u v] is the dimension (digit position) in
    which the adjacent nodes [u] and [v] differ.  Raises
    [Invalid_argument] if they are not adjacent along a single
    dimension. *)
