(** Folded hypercubes: the [n]-cube plus one diameter link per node
    connecting each label to its bitwise complement ([N/2] extra links). *)

val create : int -> Graph.t
(** [create n] is the [n]-dimensional folded hypercube; degree [n + 1]. *)

val diameter_links : int -> (int * int) list
(** The [2^(n-1)] complement links, each with the smaller endpoint
    first. *)
