(** Mixed-radix positional arithmetic.

    Node labels of most networks in this library are digit vectors
    [(i_{n-1}, ..., i_1, i_0)] where digit [j] ranges over
    [0 .. radices.(j) - 1].  Digit index 0 is the least significant digit.
    A digit vector is stored as an [int array] indexed by digit position,
    i.e. element [0] is the least significant digit. *)

type radices = int array
(** [radices.(j)] is the radix of digit position [j]; every radix is >= 1. *)

val cardinal : radices -> int
(** [cardinal r] is the product of all radices: the number of distinct
    digit vectors.  Raises [Invalid_argument] on overflow or empty/invalid
    radices. *)

val uniform : radix:int -> dims:int -> radices
(** [uniform ~radix ~dims] is the radix vector [(radix, ..., radix)] with
    [dims] digits. *)

val to_digits : radices -> int -> int array
(** [to_digits r x] decodes the integer [x] (with [0 <= x < cardinal r])
    into its digit vector, least significant digit first. *)

val of_digits : radices -> int array -> int
(** [of_digits r d] encodes a digit vector back into an integer.  Inverse
    of {!to_digits}.  Raises [Invalid_argument] if a digit is out of
    range. *)

val split : radices -> lo_dims:int -> radices * radices
(** [split r ~lo_dims] splits the radix vector into the [lo_dims] least
    significant radices and the remaining most significant ones:
    [(low, high)]. *)

val split_index : radices -> lo_dims:int -> int -> int * int
(** [split_index r ~lo_dims x] is [(hi, lo)] where [lo] encodes the
    [lo_dims] least significant digits of [x] and [hi] the remaining
    digits, each in their own mixed-radix system from {!split}. *)

val join_index : radices -> lo_dims:int -> hi:int -> lo:int -> int
(** Inverse of {!split_index}. *)

val iter : radices -> (int array -> unit) -> unit
(** [iter r f] applies [f] to every digit vector in increasing encoded
    order.  The array passed to [f] is reused between calls; copy it if
    you keep it. *)

val digit_pp : Format.formatter -> int array -> unit
(** Prints a digit vector most-significant-digit first, e.g. [(2,0,1)]. *)
