(** Immutable undirected simple graphs in compressed sparse row form.

    Nodes are integers [0 .. n-1].  Parallel edges are collapsed and
    self-loops rejected at construction; multiplicities, where a network
    definition requires them (e.g. butterfly clusters connected by 4
    parallel links), are tracked separately by the layout engines. *)

type t

val of_edges : n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds the graph on [n] nodes with the given
    undirected edges.  Duplicate edges (in either orientation) are
    collapsed; self-loops raise [Invalid_argument], as do endpoints
    outside [0 .. n-1]. *)

val of_edges_array : n:int -> (int * int) array -> t
(** Array variant of {!of_edges}. *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of undirected edges. *)

val degree : t -> int -> int
(** [degree g u] is the number of neighbours of [u]. *)

val max_degree : t -> int
val min_degree : t -> int

val is_regular : t -> bool
(** True when every node has the same degree. *)

val neighbors : t -> int -> int array
(** [neighbors g u] is a fresh sorted array of the neighbours of [u]. *)

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** Iterates over neighbours of a node in increasing order without
    allocating. *)

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] tests adjacency (in either orientation). *)

val edges : t -> (int * int) array
(** All edges as pairs [(u, v)] with [u < v], sorted lexicographically. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] calls [f u v] once per edge, with [u < v]. *)

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** Folds over edges with [u < v]. *)

val bfs_dist : t -> int -> int array
(** [bfs_dist g s] is the array of BFS distances from [s]; unreachable
    nodes get [max_int]. *)

val is_connected : t -> bool
(** True when the graph has a single connected component (the empty graph
    is considered connected). *)

val diameter : t -> int
(** Exact diameter by all-pairs BFS; [max_int] when disconnected.
    Intended for small and medium graphs (O(n·m) time). *)

val cartesian_product : t -> t -> t
(** [cartesian_product a b] is the Cartesian (box) product [a □ b]:
    node [(x, y)] is encoded as [y * n a + x]; [(x,y)]–[(x',y)] is an edge
    when [x]–[x'] is in [a], and [(x,y)]–[(x,y')] when [y]–[y'] is in
    [b].  The [a] factor varies fastest (row index). *)

val relabel : t -> perm:int array -> t
(** [relabel g ~perm] renames node [u] to [perm.(u)]; [perm] must be a
    permutation of [0 .. n-1]. *)

val equal : t -> t -> bool
(** Structural equality of node count and edge sets (same labelling). *)

val pp : Format.formatter -> t -> unit
(** Prints a short summary: node count, edge count, degree range. *)
