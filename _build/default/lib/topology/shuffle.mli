(** Shuffle-exchange and de Bruijn networks — the classic fixed-degree
    VLSI-layout benchmarks from the Thompson/Leighton line of work the
    paper builds on (refs [17], [23]). *)

val shuffle_exchange : int -> Graph.t
(** [shuffle_exchange n] on [2^n] nodes: exchange edges flip the lowest
    bit, shuffle edges rotate the bit string left by one (self-loops at
    all-0s/all-1s are dropped; a shuffle edge that coincides with an
    exchange edge collapses). *)

val de_bruijn : int -> Graph.t
(** [de_bruijn n] on [2^n] nodes: [w] is adjacent to [2w mod 2^n] and
    [2w + 1 mod 2^n] (undirected, self-loops dropped). *)
