type t = { graph : Graph.t; d : int; cycle_len : int }

let encode ~cycle_len ~star ~pos = (star * cycle_len) + pos

let create d =
  if d < 3 then invalid_arg "Scc.create: d < 3";
  let cycle_len = d - 1 in
  let total = Permutation.factorial d * cycle_len in
  let edges = ref [] in
  for star = 0 to Permutation.factorial d - 1 do
    let p = Permutation.unrank ~d star in
    for pos = 0 to cycle_len - 1 do
      let u = encode ~cycle_len ~star ~pos in
      (* cycle links (a single edge when the cycle has two nodes) *)
      if pos < cycle_len - 1 then
        edges := (u, encode ~cycle_len ~star ~pos:(pos + 1)) :: !edges
      else if cycle_len > 2 then
        edges := (u, encode ~cycle_len ~star ~pos:0) :: !edges;
      (* star link: position [pos] carries generator swap(0, pos+1) *)
      let q = Permutation.swap p 0 (pos + 1) in
      let star' = Permutation.rank q in
      if star < star' then
        edges := (u, encode ~cycle_len ~star:star' ~pos) :: !edges
    done
  done;
  { graph = Graph.of_edges ~n:total !edges; d; cycle_len }

let node t ~star ~pos =
  if pos < 0 || pos >= t.cycle_len then invalid_arg "Scc.node: pos";
  if star < 0 || star >= Permutation.factorial t.d then
    invalid_arg "Scc.node: star";
  encode ~cycle_len:t.cycle_len ~star ~pos

let star_of t id = id / t.cycle_len
let pos_of t id = id mod t.cycle_len
