lib/topology/folded_hypercube.mli: Graph
