lib/topology/hypercube.mli: Graph
