lib/topology/permutation.mli:
