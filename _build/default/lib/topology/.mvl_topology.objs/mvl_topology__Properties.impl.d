lib/topology/properties.ml: Array Graph Hashtbl List Option
