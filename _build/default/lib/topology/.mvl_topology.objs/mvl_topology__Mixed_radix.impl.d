lib/topology/mixed_radix.ml: Array Format
