lib/topology/kary_ncube.mli: Graph Mixed_radix
