lib/topology/ccc.mli: Graph
