lib/topology/cayley.mli: Graph Permutation
