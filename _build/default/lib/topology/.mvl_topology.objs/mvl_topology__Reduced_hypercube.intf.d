lib/topology/reduced_hypercube.mli: Graph
