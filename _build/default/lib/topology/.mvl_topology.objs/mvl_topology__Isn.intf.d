lib/topology/isn.mli: Pn_cluster
