lib/topology/tree.ml: Array Graph
