lib/topology/isn.ml: Generalized_hypercube Mesh Pn_cluster
