lib/topology/tree.mli: Graph
