lib/topology/hypercube.ml: Graph
