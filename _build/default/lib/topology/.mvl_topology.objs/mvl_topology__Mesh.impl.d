lib/topology/mesh.ml: Array Graph
