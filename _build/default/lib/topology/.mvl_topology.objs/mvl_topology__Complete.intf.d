lib/topology/complete.mli: Graph
