lib/topology/hsn.ml: Array Complete Graph Mixed_radix
