lib/topology/shuffle.mli: Graph
