lib/topology/ring.mli: Graph
