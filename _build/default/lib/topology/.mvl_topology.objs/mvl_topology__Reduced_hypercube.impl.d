lib/topology/reduced_hypercube.ml: Graph
