lib/topology/pn_cluster.ml: Graph
