lib/topology/butterfly.mli: Graph
