lib/topology/hhn.ml: Hsn Hypercube
