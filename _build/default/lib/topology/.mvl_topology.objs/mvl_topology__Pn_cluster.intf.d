lib/topology/pn_cluster.mli: Graph
