lib/topology/graph.ml: Array Format List Printf Queue
