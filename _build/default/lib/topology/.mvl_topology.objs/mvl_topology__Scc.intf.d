lib/topology/scc.mli: Graph
