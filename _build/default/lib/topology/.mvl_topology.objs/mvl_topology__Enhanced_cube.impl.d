lib/topology/enhanced_cube.ml: Array Graph Hypercube Int64
