lib/topology/enhanced_cube.mli: Graph
