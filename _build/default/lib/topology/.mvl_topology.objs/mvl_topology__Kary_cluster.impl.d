lib/topology/kary_cluster.ml: Complete Hypercube Kary_ncube Pn_cluster
