lib/topology/properties.mli: Graph
