lib/topology/kary_ncube.ml: Array Graph Mixed_radix
