lib/topology/mixed_radix.mli: Format
