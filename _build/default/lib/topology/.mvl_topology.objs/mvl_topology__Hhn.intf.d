lib/topology/hhn.mli: Hsn
