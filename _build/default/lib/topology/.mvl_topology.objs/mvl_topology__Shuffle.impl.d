lib/topology/shuffle.ml: Graph List
