lib/topology/scc.ml: Graph Permutation
