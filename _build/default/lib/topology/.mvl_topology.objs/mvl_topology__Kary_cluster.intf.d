lib/topology/kary_cluster.mli: Pn_cluster
