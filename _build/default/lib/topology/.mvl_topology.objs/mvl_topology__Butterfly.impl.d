lib/topology/butterfly.ml: Graph
