lib/topology/folded_hypercube.ml: Array Graph Hypercube
