lib/topology/ccc.ml: Graph
