lib/topology/hsn.mli: Graph
