lib/topology/generalized_hypercube.ml: Array Graph Mixed_radix
