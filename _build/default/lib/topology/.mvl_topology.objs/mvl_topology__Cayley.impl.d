lib/topology/cayley.ml: Array Graph List Permutation
