lib/topology/ring.ml: Graph
