lib/topology/permutation.ml: Array List
