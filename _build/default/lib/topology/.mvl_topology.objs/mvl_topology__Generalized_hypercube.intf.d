lib/topology/generalized_hypercube.mli: Graph Mixed_radix
