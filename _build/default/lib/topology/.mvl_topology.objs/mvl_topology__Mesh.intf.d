lib/topology/mesh.mli: Graph
