lib/topology/complete.ml: Graph
