(** Complete graphs [K_N]. *)

val create : int -> Graph.t
(** [create nn] is the complete graph on [nn >= 1] nodes. *)
