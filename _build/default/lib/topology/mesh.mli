(** Open meshes (products of paths). *)

val path : int -> Graph.t
(** [path k] is the simple path on [k >= 1] nodes. *)

val create : dims:int array -> Graph.t
(** [create ~dims] is the open mesh whose side lengths are [dims], i.e.
    the Cartesian product of paths; [dims.(0)] varies fastest in the node
    encoding. *)
