type radices = int array

let check_radices r =
  if Array.length r = 0 then invalid_arg "Mixed_radix: empty radices";
  Array.iter (fun k -> if k < 1 then invalid_arg "Mixed_radix: radix < 1") r

let cardinal r =
  check_radices r;
  Array.fold_left
    (fun acc k ->
      if acc > max_int / k then invalid_arg "Mixed_radix.cardinal: overflow"
      else acc * k)
    1 r

let uniform ~radix ~dims =
  if dims < 1 then invalid_arg "Mixed_radix.uniform: dims < 1";
  if radix < 1 then invalid_arg "Mixed_radix.uniform: radix < 1";
  Array.make dims radix

let to_digits r x =
  check_radices r;
  if x < 0 then invalid_arg "Mixed_radix.to_digits: negative";
  let n = Array.length r in
  let d = Array.make n 0 in
  let rest = ref x in
  for j = 0 to n - 1 do
    d.(j) <- !rest mod r.(j);
    rest := !rest / r.(j)
  done;
  if !rest <> 0 then invalid_arg "Mixed_radix.to_digits: out of range";
  d

let of_digits r d =
  check_radices r;
  let n = Array.length r in
  if Array.length d <> n then invalid_arg "Mixed_radix.of_digits: length";
  let x = ref 0 in
  for j = n - 1 downto 0 do
    if d.(j) < 0 || d.(j) >= r.(j) then
      invalid_arg "Mixed_radix.of_digits: digit out of range";
    x := (!x * r.(j)) + d.(j)
  done;
  !x

let split r ~lo_dims =
  check_radices r;
  let n = Array.length r in
  if lo_dims < 1 || lo_dims >= n then invalid_arg "Mixed_radix.split";
  (Array.sub r 0 lo_dims, Array.sub r lo_dims (n - lo_dims))

let split_index r ~lo_dims x =
  let low, _high = split r ~lo_dims in
  let card_low = cardinal low in
  (x / card_low, x mod card_low)

let join_index r ~lo_dims ~hi ~lo =
  let low, _high = split r ~lo_dims in
  let card_low = cardinal low in
  if lo < 0 || lo >= card_low then invalid_arg "Mixed_radix.join_index";
  (hi * card_low) + lo

let iter r f =
  check_radices r;
  let n = Array.length r in
  let d = Array.make n 0 in
  let total = cardinal r in
  for _ = 1 to total do
    f d;
    (* increment least significant digit with carry *)
    let j = ref 0 in
    let carrying = ref true in
    while !carrying && !j < n do
      d.(!j) <- d.(!j) + 1;
      if d.(!j) = r.(!j) then begin
        d.(!j) <- 0;
        incr j
      end
      else carrying := false
    done
  done

let digit_pp ppf d =
  Format.fprintf ppf "(";
  for j = Array.length d - 1 downto 0 do
    Format.fprintf ppf "%d%s" d.(j) (if j > 0 then "," else "")
  done;
  Format.fprintf ppf ")"
