let shuffle_exchange n =
  if n < 1 then invalid_arg "Shuffle.shuffle_exchange: n < 1";
  if n > 22 then invalid_arg "Shuffle.shuffle_exchange: n too large";
  let total = 1 lsl n in
  let mask = total - 1 in
  let edges = ref [] in
  for w = 0 to total - 1 do
    let exchange = w lxor 1 in
    if w < exchange then edges := (w, exchange) :: !edges;
    let shuffle = ((w lsl 1) lor (w lsr (n - 1))) land mask in
    if w <> shuffle then edges := (min w shuffle, max w shuffle) :: !edges
  done;
  Graph.of_edges ~n:total !edges

let de_bruijn n =
  if n < 1 then invalid_arg "Shuffle.de_bruijn: n < 1";
  if n > 22 then invalid_arg "Shuffle.de_bruijn: n too large";
  let total = 1 lsl n in
  let mask = total - 1 in
  let edges = ref [] in
  for w = 0 to total - 1 do
    List.iter
      (fun succ -> if w <> succ then edges := (min w succ, max w succ) :: !edges)
      [ (w lsl 1) land mask; ((w lsl 1) lor 1) land mask ]
  done;
  Graph.of_edges ~n:total !edges
