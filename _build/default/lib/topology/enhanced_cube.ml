(* splitmix64-style deterministic mixing, so layouts and benches are
   reproducible across runs without touching the global RNG state *)
let mix seed u =
  let z = ref (Int64.of_int ((seed * 0x9E3779B9) + u)) in
  z := Int64.add !z 0x9E3779B97F4A7C15L;
  let z1 = Int64.logxor !z (Int64.shift_right_logical !z 30) in
  let z2 = Int64.mul z1 0xBF58476D1CE4E5B9L in
  let z3 = Int64.logxor z2 (Int64.shift_right_logical z2 27) in
  let z4 = Int64.mul z3 0x94D049BB133111EBL in
  Int64.to_int (Int64.logxor z4 (Int64.shift_right_logical z4 31))

let extra_links ~n ~seed =
  if n < 1 then invalid_arg "Enhanced_cube.extra_links: n < 1";
  let total = 1 lsl n in
  let links = ref [] in
  for u = total - 1 downto 0 do
    let rec draw attempt =
      let v = abs (mix seed ((u * 7919) + attempt)) mod total in
      if v = u then draw (attempt + 1) else v
    in
    links := (u, draw 0) :: !links
  done;
  !links

let create ~n ~seed =
  let cube = Hypercube.create n in
  Graph.of_edges ~n:(Graph.n cube)
    (Array.to_list (Graph.edges cube) @ extra_links ~n ~seed)
