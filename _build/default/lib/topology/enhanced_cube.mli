(** Enhanced cubes (Varvarigos): a hypercube with one additional outgoing
    link per node leading to a (pseudo-)random node, i.e. [N] extra links
    in total.  A seeded deterministic generator keeps experiments
    reproducible. *)

val create : n:int -> seed:int -> Graph.t
(** [create ~n ~seed] is the [n]-cube plus one random link per node.
    Random partners equal to the node itself are re-drawn; a random link
    duplicating a cube link is kept (it collapses in the simple graph but
    is still counted by {!extra_links}). *)

val extra_links : n:int -> seed:int -> (int * int) list
(** The [2^n] random links of [create ~n ~seed], in node order (one link
    per source node [u], as [(u, partner)]). *)
