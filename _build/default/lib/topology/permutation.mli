(** Permutations of [{0, ..., d-1}] with Lehmer-code ranking, used to
    label the Cayley-graph networks of §4.3 (star, pancake, bubble-sort,
    transposition networks). *)

type t = int array
(** [p.(i)] is the image of [i].  Arrays are treated as immutable. *)

val identity : int -> t
val is_valid : t -> bool
val compose : t -> t -> t
(** [compose p q] maps [i] to [p.(q.(i))]. *)

val invert : t -> t

val factorial : int -> int
(** Raises [Invalid_argument] past 20 (int64 overflow territory). *)

val rank : t -> int
(** Lehmer-code rank in [0 .. d! - 1]; the identity has rank 0. *)

val unrank : d:int -> int -> t
(** Inverse of {!rank} for permutations of [d] symbols. *)

val swap : t -> int -> int -> t
(** [swap p i j] is [p] with positions [i] and [j] exchanged. *)

val prefix_reversal : t -> int -> t
(** [prefix_reversal p k] reverses the first [k] positions ([k >= 2]). *)
