let path k =
  if k < 1 then invalid_arg "Mesh.path: k < 1";
  let edges = ref [] in
  for i = 0 to k - 2 do
    edges := (i, i + 1) :: !edges
  done;
  Graph.of_edges ~n:k !edges

let create ~dims =
  if Array.length dims = 0 then invalid_arg "Mesh.create: no dimensions";
  Array.fold_left
    (fun acc k -> Graph.cartesian_product acc (path k))
    (path dims.(0))
    (Array.sub dims 1 (Array.length dims - 1))
