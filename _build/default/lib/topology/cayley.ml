let of_generators ~d ~gens =
  if d < 1 then invalid_arg "Cayley.of_generators: d < 1";
  List.iter
    (fun g ->
      if Array.length g <> d || not (Permutation.is_valid g) then
        invalid_arg "Cayley.of_generators: bad generator")
    gens;
  let total = Permutation.factorial d in
  let edges = ref [] in
  for u = 0 to total - 1 do
    let p = Permutation.unrank ~d u in
    List.iter
      (fun g ->
        let v = Permutation.rank (Permutation.compose p g) in
        if u < v then edges := (u, v) :: !edges)
      gens
  done;
  Graph.of_edges ~n:total !edges

(* [compose p g] applies the position rearrangement [g] to [p]: position i
   of the result holds p.(g.(i)), so generators expressed as position
   permutations act on positions as required for star/pancake graphs. *)

let star d =
  if d < 2 then invalid_arg "Cayley.star: d < 2";
  let gens =
    List.init (d - 1) (fun i -> Permutation.swap (Permutation.identity d) 0 (i + 1))
  in
  of_generators ~d ~gens

let pancake d =
  if d < 2 then invalid_arg "Cayley.pancake: d < 2";
  let gens =
    List.init (d - 1) (fun i ->
        Permutation.prefix_reversal (Permutation.identity d) (i + 2))
  in
  of_generators ~d ~gens

let bubble_sort d =
  if d < 2 then invalid_arg "Cayley.bubble_sort: d < 2";
  let gens =
    List.init (d - 1) (fun i -> Permutation.swap (Permutation.identity d) i (i + 1))
  in
  of_generators ~d ~gens

let transposition d =
  if d < 2 then invalid_arg "Cayley.transposition: d < 2";
  let gens = ref [] in
  for i = 0 to d - 1 do
    for j = i + 1 to d - 1 do
      gens := Permutation.swap (Permutation.identity d) i j :: !gens
    done
  done;
  of_generators ~d ~gens:!gens
