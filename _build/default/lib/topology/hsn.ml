type t = { graph : Graph.t; levels : int; radix : int; nucleus : Graph.t }

let create ~levels ~nucleus =
  if levels < 1 then invalid_arg "Hsn.create: levels < 1";
  let r = Graph.n nucleus in
  if r < 2 then invalid_arg "Hsn.create: nucleus must have >= 2 nodes";
  let radices = Mixed_radix.uniform ~radix:r ~dims:levels in
  let total = Mixed_radix.cardinal radices in
  let edges = ref [] in
  Mixed_radix.iter radices (fun d ->
      let u = Mixed_radix.of_digits radices d in
      (* nucleus links inside the cluster: add towards larger d_0 only *)
      let d0 = d.(0) in
      Graph.iter_neighbors nucleus d0 (fun v0 ->
          if v0 > d0 then begin
            d.(0) <- v0;
            edges := (u, Mixed_radix.of_digits radices d) :: !edges;
            d.(0) <- d0
          end);
      (* swap links: exchange d_0 with d_i; add each once via d0 < d_i *)
      for i = 1 to levels - 1 do
        if d0 < d.(i) then begin
          let di = d.(i) in
          d.(0) <- di;
          d.(i) <- d0;
          edges := (u, Mixed_radix.of_digits radices d) :: !edges;
          d.(0) <- d0;
          d.(i) <- di
        end
      done);
  { graph = Graph.of_edges ~n:total !edges; levels; radix = r; nucleus }

let create_complete ~levels ~radix =
  create ~levels ~nucleus:(Complete.create radix)

let node t ~cluster ~pos =
  if pos < 0 || pos >= t.radix then invalid_arg "Hsn.node: pos";
  let clusters =
    int_of_float (float_of_int t.radix ** float_of_int (t.levels - 1))
  in
  if cluster < 0 || cluster >= clusters then invalid_arg "Hsn.node: cluster";
  (cluster * t.radix) + pos

let cluster_of t id = id / t.radix
let pos_of t id = id mod t.radix
