(** Reduced hypercubes RH (Ziavras).

    [RH] is obtained from the [n]-dimensional CCC by replacing each
    [n]-node cycle with a [log2 n]-dimensional hypercube ([n] must be a
    power of two).  Node [(w, i)] keeps its cube link along dimension [i]
    and is connected inside its cluster to every [(w, j)] with
    [i xor j] a power of two. *)

type t = {
  graph : Graph.t;
  dims : int;          (** [n], a power of two. *)
  cluster_dims : int;  (** [log2 n]. *)
}

val create : int -> t
(** [create n] builds RH over the [n]-cube; raises [Invalid_argument]
    unless [n] is a power of two, [n >= 2]. *)

val node : t -> cube:int -> pos:int -> int
val cube_of : t -> int -> int
val pos_of : t -> int -> int
