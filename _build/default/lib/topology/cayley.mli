(** Cayley graphs over the symmetric group S_d, covering the §4.3
    families whose multilayer layouts the paper claims by the same
    strategy: star graphs, pancake graphs, bubble-sort graphs and
    transposition networks.  Nodes are permutation ranks (see
    {!Permutation.rank}). *)

val of_generators : d:int -> gens:Permutation.t list -> Graph.t
(** Generic Cayley graph: node [p] is adjacent to [compose p g] for every
    generator [g].  The generator set must be closed under inverse (all
    four families below use involutions, so this holds trivially). *)

val star : int -> Graph.t
(** Star graph S_d: generators swap position 0 with position [i],
    [1 <= i <= d-1].  Degree [d-1], [d!] nodes. *)

val pancake : int -> Graph.t
(** Pancake graph: generators are prefix reversals of length
    [2 .. d]. *)

val bubble_sort : int -> Graph.t
(** Bubble-sort graph: generators swap adjacent positions [i], [i+1]. *)

val transposition : int -> Graph.t
(** (Complete) transposition network: generators swap any two
    positions. *)
