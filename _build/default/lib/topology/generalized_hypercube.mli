(** Generalized hypercubes (Bhuyan–Agrawal).

    An [n]-dimensional radix-[(r_{n-1}, ..., r_0)] generalized hypercube
    has one node per digit vector; two nodes are adjacent iff they differ
    in exactly one digit (by any amount), so every "row" along a dimension
    is a complete graph. *)

val create : Mixed_radix.radices -> Graph.t
(** [create radices] builds the generalized hypercube over the given
    mixed-radix label system. *)

val create_uniform : r:int -> n:int -> Graph.t
(** [create_uniform ~r ~n] is the radix-[r] [n]-dimensional generalized
    hypercube on [r^n] nodes, each of degree [n(r-1)]. *)

val degree : Mixed_radix.radices -> int
(** The (uniform) node degree: sum over dimensions of [radix - 1]. *)
