type t = {
  graph : Graph.t;
  dims : int;
  rows : int;
  levels : int;
  wrap : bool;
}

let node_encode ~rows ~row ~level = (level * rows) + row

let create ~dims ~wrap =
  if dims < 1 then invalid_arg "Butterfly.create: dims < 1";
  if dims > 20 then invalid_arg "Butterfly.create: dims too large";
  let rows = 1 lsl dims in
  let levels = if wrap then dims else dims + 1 in
  let total = levels * rows in
  let edges = ref [] in
  for level = 0 to dims - 1 do
    let next = if wrap then (level + 1) mod dims else level + 1 in
    (* a wrapped 1-dimensional butterfly would create self-loops on the
       straight links; disallow it *)
    if wrap && dims = 1 then ()
    else
      for row = 0 to rows - 1 do
        let u = node_encode ~rows ~row ~level in
        edges := (u, node_encode ~rows ~row ~level:next) :: !edges;
        edges :=
          (u, node_encode ~rows ~row:(row lxor (1 lsl level)) ~level:next)
          :: !edges
      done
  done;
  if wrap && dims = 1 then invalid_arg "Butterfly.create: wrap requires dims >= 2";
  { graph = Graph.of_edges ~n:total !edges; dims; rows; levels; wrap }

let node t ~row ~level =
  if row < 0 || row >= t.rows then invalid_arg "Butterfly.node: row";
  if level < 0 || level >= t.levels then invalid_arg "Butterfly.node: level";
  node_encode ~rows:t.rows ~row ~level

let row_of t id = id mod t.rows
let level_of t id = id / t.rows
