(** Product-network clusters (§3.2): networks obtained by replacing each
    node of a quotient product network with a small cluster.

    The record keeps the structure the layout engines need — the quotient
    graph, the cluster contents, the inter-cluster link multiplicity and
    the attachment of each inter-cluster link to concrete nodes. *)

type t = {
  graph : Graph.t;           (** the expanded network *)
  quotient : Graph.t;        (** one node per cluster *)
  cluster_size : int;        (** [c]: nodes per cluster *)
  multiplicity : int;        (** parallel links per quotient edge *)
  intra : Graph.t;           (** the cluster (intra) topology *)
  attach :
    (int * int) -> int -> int * int;
    (** [attach (qu, qv) i] gives, for the [i]-th parallel link of
        quotient edge [(qu, qv)] with [qu < qv], the in-cluster positions
        [(pos_u, pos_v)] of its endpoints. *)
}

val node : t -> cluster:int -> pos:int -> int
(** Node encoding: [cluster * cluster_size + pos]. *)

val cluster_of : t -> int -> int
val pos_of : t -> int -> int

val create :
  quotient:Graph.t ->
  intra:Graph.t ->
  ?multiplicity:int ->
  ?attach:((int * int) -> int -> int * int) ->
  unit ->
  t
(** [create ~quotient ~intra ()] expands every quotient node into a copy
    of [intra].  By default each quotient edge becomes [multiplicity = 1]
    link, and the [i]-th link of the [e]-th edge incident to a cluster is
    attached round-robin over cluster positions, which keeps the extra
    degree per cluster node bounded by [ceil (q_deg * mult / c)]. *)
