let create n =
  if n < 0 then invalid_arg "Hypercube.create: n < 0";
  if n > 25 then invalid_arg "Hypercube.create: n too large";
  let total = 1 lsl n in
  let edges = ref [] in
  for u = 0 to total - 1 do
    for j = 0 to n - 1 do
      let v = u lxor (1 lsl j) in
      if u < v then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:total !edges

let dimension_of_edge u v =
  let x = u lxor v in
  if x = 0 || x land (x - 1) <> 0 then
    invalid_arg "Hypercube.dimension_of_edge: not a cube edge";
  let rec bit_index j x = if x = 1 then j else bit_index (j + 1) (x lsr 1) in
  bit_index 0 x
