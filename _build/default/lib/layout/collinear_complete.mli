(** Collinear layouts of complete graphs [K_N] with the strictly optimal
    [floor(N^2/4)] tracks (§4.1, Fig. 3; Yeh–Parhami, IPL 1998). *)

val tracks_formula : int -> int
(** [floor (N^2 / 4)]. *)

val create : int -> Collinear.t
(** [create nn] lays [K_nn] out in natural node order with greedy
    (left-edge) packing, which meets the [floor(N^2/4)] density bound
    exactly — the count is strictly optimal over all orders, since every
    balanced cut of [K_N] is crossed by [floor(N^2/4)] edges. *)
