let tracks_formula nn = nn * nn / 4

let create nn = Collinear.natural (Mvl_topology.Complete.create nn)
