(** Track assignment = interval-graph colouring.

    A set of spans (closed intervals over positions) must be packed into
    horizontal tracks so that spans sharing a track overlap in at most a
    single point.  The classic left-edge greedy algorithm is optimal: it
    uses exactly [max_density] tracks. *)

open Mvl_geometry

val greedy : Interval.t array -> int array
(** [greedy spans] returns a track index (0-based) for each span.  Spans
    assigned the same track have disjoint interiors.  The number of
    tracks used equals {!max_density}[ spans]. *)

val max_density : Interval.t array -> int
(** The maximum number of spans whose interiors share a common point —
    a lower bound on (and, by {!greedy}, the exact value of) the number
    of tracks needed. *)

val count_tracks : int array -> int
(** [count_tracks assignment] is [1 + max assignment] (0 when empty). *)
