(** Collinear layouts of generalized hypercubes (§4.1):
    [f_r(n+1) = r_n f_r(n) + floor(r_n^2 / 4)]. *)

val tracks_formula : Mvl_topology.Mixed_radix.radices -> int
(** Solves the paper's recurrence for an arbitrary mixed radix;
    for uniform radix [r] this is [(N-1) floor(r^2/4) / (r-1)]. *)

val create : ?fold:bool -> Mvl_topology.Mixed_radix.radices -> Collinear.t
(** Bottom-up layout on the digit-reversed order with greedy packing;
    meets [tracks_formula] exactly for the natural order. *)

val create_uniform : ?fold:bool -> r:int -> n:int -> unit -> Collinear.t
