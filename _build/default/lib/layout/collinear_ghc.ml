open Mvl_topology

let tracks_formula radices =
  let n = Array.length radices in
  if n < 1 then invalid_arg "Collinear_ghc.tracks_formula";
  let f = ref (radices.(0) * radices.(0) / 4) in
  for j = 1 to n - 1 do
    f := (radices.(j) * !f) + (radices.(j) * radices.(j) / 4)
  done;
  !f

let create ?(fold = false) radices =
  let graph = Generalized_hypercube.create radices in
  let node_at =
    if fold then Orders.digit_reversed_folded radices
    else Orders.digit_reversed radices ~node_at:()
  in
  Collinear.of_order graph ~node_at

let create_uniform ?fold ~r ~n () =
  create ?fold (Mixed_radix.uniform ~radix:r ~dims:n)
