open Mvl_topology

let ceil_div a b = if a = 0 then 0 else ((a - 1) / b) + 1

let fold_thompson (m : Layout.metrics) ~layers =
  if m.Layout.layers <> 2 then
    invalid_arg "Baselines.fold_thompson: input must be a 2-layer layout";
  if layers < 2 || layers mod 2 <> 0 then
    invalid_arg "Baselines.fold_thompson: layers must be even";
  let slabs = layers / 2 in
  let height = ceil_div m.Layout.height slabs in
  let area = m.Layout.width * height in
  {
    m with
    Layout.height;
    area;
    layers;
    volume = layers * area;
    (* wire lengths are preserved by folding (up to negligible
       fold-crossing detours), vias roughly double per fold crossing —
       we keep the recorded value as the optimistic baseline *)
  }

let collinear_multilayer (c : Collinear.t) ~layers =
  if layers < 2 then invalid_arg "Baselines.collinear_multilayer: layers < 2";
  let groups = (layers + 1) / 2 in
  let n = Graph.n c.Collinear.graph in
  (* one column band per node, wide enough for its terminals *)
  let width = ref 0 in
  let pitch = Array.make n 0 in
  for u = 0 to n - 1 do
    pitch.(u) <- Graph.degree c.Collinear.graph u + 2;
    width := !width + pitch.(u)
  done;
  let slots = max 1 (ceil_div c.Collinear.tracks groups) in
  let node_h = 2 in
  let height = node_h + slots + 1 in
  let area = !width * height in
  (* wire lengths: span in column bands times the mean pitch, plus the
     vertical run to the wire's track slot *)
  let x_of = Array.make n 0 in
  let cursor = ref 0 in
  Array.iter
    (fun u ->
      x_of.(u) <- !cursor;
      cursor := !cursor + pitch.(u))
    c.Collinear.node_at;
  let max_wire = ref 0 and total_wire = ref 0 in
  Array.iter
    (fun (e : Collinear.edge) ->
      let slot = e.track mod slots in
      let len = abs (x_of.(e.u) - x_of.(e.v)) + (2 * (slot + 1)) in
      if len > !max_wire then max_wire := len;
      total_wire := !total_wire + len)
    c.Collinear.edges;
  {
    Layout.width = !width;
    height;
    area;
    layers;
    volume = layers * area;
    max_wire = !max_wire;
    total_wire = !total_wire;
    vias = 2 * Array.length c.Collinear.edges;
  }
