(** Heuristic node-order optimization for collinear layouts of arbitrary
    graphs (simulated annealing over the cut-density objective).

    For the families with constructive orders (§3–§5) the paper's
    recursions are already optimal or near-optimal; this module serves
    the "similar strategies apply" families (§4.3 Cayley graphs,
    shuffle-exchange, ...) where no constructive order is known: it
    starts from a given order and hill-climbs with occasional uphill
    moves, minimizing first the track count and then the total span. *)

open Mvl_topology

type objective = {
  tracks : int;      (** max cut density = greedy track count *)
  total_span : int;  (** sum of edge spans (wire-length proxy) *)
}

val evaluate : Graph.t -> node_at:int array -> objective

val optimize :
  ?seed:int ->
  ?iterations:int ->
  ?initial:int array ->
  Graph.t ->
  Collinear.t
(** [optimize g] runs simulated annealing (default 20000 iterations,
    swap moves, geometric cooling) from [initial] (default: natural
    order) and returns the best collinear layout found.  Deterministic
    for a fixed seed. *)
