(** Layout anatomy reports: where the area goes and how wire lengths
    distribute — the quantities behind the paper's [o(...)] terms. *)

type t = {
  metrics : Layout.metrics;
  node_area : int;          (** sum of footprint areas over all active
                                layers (can exceed the bounding area for
                                3-D grid-model layouts) *)
  node_area_share : float;  (** node_area / bounding area *)
  wire_count : int;
  wire_min : int;
  wire_median : int;
  wire_p90 : int;
  wire_max : int;           (** in-plane lengths *)
  segments_per_layer : (int * int) list;
      (** (layer, total in-plane run length on that layer) *)
  via_count : int;          (** number of via segments *)
  active_layers : int;
}

val analyze : Layout.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)
