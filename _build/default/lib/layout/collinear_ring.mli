(** Collinear layouts of rings: 2 tracks (§3.1). *)

val create : ?fold:bool -> int -> Collinear.t
(** [create k] lays out the [k]-node ring in natural order (1 track for
    the consecutive links, 1 for the wrap link).  [~fold:true] uses the
    boustrophedon order, which still needs only 2 tracks but caps the
    longest wire at span 2. *)
