(** The multilayer 3-D grid model (§2.2): network nodes on [L_A] active
    layers — the layout style the paper defines and defers ("will be
    reported in the near future").  This module implements the natural
    stacked-slab instance for product networks:

    the network is [base x slab_graph] — [L_A = |slab_graph|] identical
    copies ("slabs") of the base network, one per active layer, with the
    slab factor's edges connecting vertically aligned nodes.  Every slab
    gets a contiguous band of [layers_per_slab] wiring layers and is
    laid out by the 2-D orthogonal scheme within its band; each
    inter-slab edge rides a dedicated via stack in a reserved column of
    its node's right gap, reached through a reserved terminal row, so
    the whole construction remains valid in the strict grid model.

    Since each active layer carries only [N / L_A] nodes, the footprint
    shrinks by about [L_A^2 / (layers ratio)^2] relative to a 2-D layout
    of the full network on the same total layer count — the area/volume
    trade-off the paper's §2.2 motivates. *)

open Mvl_topology

type t = {
  layout : Layout.t;
  slabs : int;              (** [L_A] *)
  layers_per_slab : int;
  product : Graph.t;        (** [base x slab_graph]; node [(s, u)] is
                                encoded as [s * n_base + u] *)
}

val realize :
  ?node_side:int ->
  base:Orthogonal.t ->
  slab_graph:Graph.t ->
  layers_per_slab:int ->
  unit ->
  t
(** [realize ~base ~slab_graph ~layers_per_slab ()] builds the stacked
    layout.  Total wiring layers = [|slab_graph| * layers_per_slab];
    [layers_per_slab >= 2]. *)

val hypercube : n:int -> active:int -> layers_per_slab:int -> t
(** Convenience: the [n]-cube with its top [log2 active] dimensions
    realized as inter-slab links ([active] must be a power of two
    dividing [2^n]); the remaining [(n - log2 active)]-cube is the base
    of every slab. *)
