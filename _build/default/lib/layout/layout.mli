(** Realized multilayer layouts: node footprints on layer 1 plus one
    routed wire per network edge, with the cost metrics of §2.2. *)

open Mvl_geometry
open Mvl_topology

type t = {
  graph : Graph.t;
  layers : int;            (** [L]: number of wiring layers *)
  nodes : Rect.t array;    (** footprint of each node *)
  node_layers : int array; (** active layer of each node; all 1 in the
                               multilayer 2-D grid model, multiple
                               values under the 3-D grid model *)
  wires : Wire.t array;    (** one per graph edge, same order as
                               [Graph.edges graph] *)
}

type metrics = {
  width : int;
  height : int;
  area : int;              (** smallest upright bounding rectangle *)
  layers : int;
  volume : int;            (** [layers * area] *)
  max_wire : int;          (** longest in-plane wire length *)
  total_wire : int;        (** sum of in-plane wire lengths *)
  vias : int;              (** total via length over all wires *)
}

val make :
  graph:Graph.t ->
  layers:int ->
  ?node_layers:int array ->
  nodes:Rect.t array ->
  wires:Wire.t array ->
  unit ->
  t
(** [node_layers] defaults to all nodes on layer 1 (the 2-D grid
    model). *)

val active_layers : t -> int
(** Number of distinct active layers ([L_A] of §2.2). *)

val bounding_box : t -> Rect.t
(** Hull of all node footprints and wire vertices. *)

val translate : t -> dx:int -> dy:int -> t
(** Shifts the whole layout in the plane.  Validity and all metrics are
    invariant under translation. *)

val metrics : t -> metrics

val pp_metrics : Format.formatter -> metrics -> unit
