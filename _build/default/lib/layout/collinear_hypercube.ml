open Mvl_topology

let tracks_formula n =
  if n < 0 then invalid_arg "Collinear_hypercube.tracks_formula";
  2 * (1 lsl n) / 3

let create n =
  let graph = Hypercube.create n in
  Collinear.of_order graph ~node_at:(Orders.hypercube_order n)

(* f(m) for the explicit recursion: follows the same parity structure as
   the order construction *)
let rec f_explicit m =
  if m = 0 then 0
  else if m = 1 then 1
  else if m mod 2 = 1 then (2 * f_explicit (m - 1)) + 1
  else (4 * f_explicit (m - 2)) + 2

let create_explicit n =
  let graph = Hypercube.create n in
  let node_at = Orders.hypercube_order n in
  let position = Array.make (Array.length node_at) 0 in
  Array.iteri (fun p v -> position.(v) <- p) node_at;
  (* Track of edge (u, v): find the recursion level at which the edge's
     dimension is consumed, then embed through the enclosing levels.
     Levels, from the top: odd n consumes dimension n-1 (2 copies);
     then pairs (m-1, m-2) downward. *)
  (* offset -> 2-bit copy label is the Gray sequence 0,1,3,2; [inv] maps
     copy label -> offset *)
  let gray = [| 0; 1; 3; 2 |] in
  let inv = Array.make 4 0 in
  Array.iteri (fun offset label -> inv.(label) <- offset) gray;
  let track_of_edge u v =
    let dim = Hypercube.dimension_of_edge u v in
    let rec embed m =
      (* returns the track of the edge within the level-m layout,
         assuming dim < m *)
      if m mod 2 = 1 && dim = m - 1 then
        (* matching step: single fresh track on top *)
        2 * f_explicit (m - 1)
      else if m mod 2 = 1 then
        (* inside one of the 2 copies, block = top bit * f(m-1) *)
        (((u lsr (m - 1)) land 1) * f_explicit (m - 1)) + embed (m - 1)
      else if dim >= m - 2 then begin
        (* 4-copy step consuming dims m-1, m-2: the C4 edges *)
        let label_u = (u lsr (m - 2)) land 3 and label_v = (v lsr (m - 2)) land 3 in
        let off_u = inv.(label_u) and off_v = inv.(label_v) in
        let lo = min off_u off_v and hi = max off_u off_v in
        (* consecutive offsets share the first fresh track; the wrap
           (offsets 0 and 3) takes the second *)
        if hi - lo = 1 then 4 * f_explicit (m - 2)
        else if lo = 0 && hi = 3 then (4 * f_explicit (m - 2)) + 1
        else invalid_arg "Collinear_hypercube: non-C4 copy edge"
      end
      else
        (* inside one of the 4 copies *)
        let off = inv.((u lsr (m - 2)) land 3) in
        (off * f_explicit (m - 2)) + embed (m - 2)
    in
    embed n
  in
  let edges =
    Array.map
      (fun (u, v) -> { Collinear.u; v; track = track_of_edge u v })
      (Graph.edges graph)
  in
  let tracks =
    Array.fold_left (fun acc e -> max acc (e.Collinear.track + 1)) 0 edges
  in
  { Collinear.graph; node_at; position; edges; tracks }
