open Mvl_topology

let ipow k n =
  let rec go acc n = if n = 0 then acc else go (acc * k) (n - 1) in
  go 1 n

let tracks_formula ~k ~n =
  if k < 2 || n < 1 then invalid_arg "Collinear_kary.tracks_formula";
  2 * ((ipow k n - 1) / (k - 1))

let create ?(fold = false) ~k ~n () =
  if k < 3 then invalid_arg "Collinear_kary.create: k < 3";
  let graph = Kary_ncube.create ~k ~n in
  let radices = Kary_ncube.radices ~k ~n in
  let node_at =
    if fold then Orders.digit_reversed_folded radices
    else Orders.digit_reversed radices ~node_at:()
  in
  Collinear.of_order graph ~node_at

let create_explicit ~k ~n =
  if k < 3 then invalid_arg "Collinear_kary.create_explicit: k < 3";
  let graph = Kary_ncube.create ~k ~n in
  let radices = Kary_ncube.radices ~k ~n in
  let node_at = Orders.digit_reversed radices ~node_at:() in
  let position = Array.make (Array.length node_at) 0 in
  Array.iteri (fun p v -> position.(v) <- p) node_at;
  (* track of an edge: recursion level by the dimension of the edge.
     dimension j edges live in the copies created at level j+1; a level-m
     layout has f(m) tracks; the copy structure maps the dimension-j
     edge of a node to track:
       base(j) + copy_block(j) * f(j+1)_sub ... computed iteratively. *)
  let f = Array.make (n + 1) 0 in
  for m = 1 to n do
    f.(m) <- if m = 1 then 2 else (k * f.(m - 1)) + 2
  done;
  let track_of_edge u v =
    let j = Kary_ncube.dimension_of_edge ~k ~n u v in
    (* Inside the level-(j+1) sublayout the edge uses one of the 2 fresh
       tracks.  Walking outward (levels j+2 .. n), each level multiplies
       the track space: the sublayout containing the edge is copy
       [digit_{m-1}] of the level-m layout and its tracks sit in the
       block [copy * f(m-1)]. *)
    let du = Mixed_radix.to_digits radices u in
    let dv = Mixed_radix.to_digits radices v in
    let fresh =
      (* within level j+1: adjacent-ring edges -> first fresh track;
         the wrap edge -> second *)
      let a = min du.(j) dv.(j) and b = max du.(j) dv.(j) in
      if b - a = 1 then k * f.(j) else (k * f.(j)) + 1
    in
    (* embed into enclosing levels: at level m (from j+2 to n), the edge
       lies in copy given by digit m-1 of either endpoint (they agree) *)
    let t = ref fresh in
    for m = j + 2 to n do
      t := (du.(m - 1) * f.(m - 1)) + !t
    done;
    !t
  in
  let edges =
    Array.map
      (fun (u, v) -> { Collinear.u; v; track = track_of_edge u v })
      (Graph.edges graph)
  in
  let tracks =
    Array.fold_left (fun acc e -> max acc (e.Collinear.track + 1)) 0 edges
  in
  { Collinear.graph; node_at; position; edges; tracks }
