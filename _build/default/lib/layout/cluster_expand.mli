(** The recursive grid layout scheme for PN clusters (§2.3, §3.2).

    Each quotient node becomes a rectangular block holding its cluster:
    cluster nodes sit in a row at the bottom of the block, intra-cluster
    edges are routed in an internal track region above them (multilayer,
    like a small collinear layout), and a "jog channel" at the top of the
    block gives every inter-cluster link a private horizontal jog that
    decouples its cluster-node terminal from its sorted exit position.
    Row links exit through sorted drop columns in a strip at the right of
    the block; column links exit through the block's right edge at their
    jog height.  Inter-cluster links are packed into the quotient grid's
    gaps exactly as in {!Multilayer} (including parallel links:
    multiplicity [m] simply contributes [m] spans).

    The result is strict-model valid ({!Check.Strict}) and keeps the
    quotient layout's leading area constant whenever the blocks are small
    relative to the gaps — the paper's PN-cluster argument. *)

open Mvl_topology

type spec = {
  pn : Pn_cluster.t;
  rows : int;
  cols : int;
  qplace : int -> int * int;  (** quotient node -> (row, col) *)
  intra : Collinear.t;        (** collinear layout of [pn.intra] *)
}

val of_product_quotient :
  pn:Pn_cluster.t ->
  row_factor:Collinear.t ->
  col_factor:Collinear.t ->
  intra:Collinear.t ->
  spec
(** Place the quotient like {!Orthogonal.of_product} does. *)

val realize : spec -> layers:int -> Layout.t
(** Full geometry of the expanded network on [pn.graph]. *)

val metrics : spec -> layers:int -> Layout.metrics
