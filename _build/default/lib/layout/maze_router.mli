(** A general-purpose sequential maze router (Lee's algorithm on the
    multilayer grid): given any graph and any node placement, route every
    edge through free grid cells, one net at a time.

    The router respects the same discipline as the constructive layouts
    — x-runs on odd layers, y-runs on even layers, vias anywhere — so a
    successful routing is automatically free of same-layer crossings,
    and the result is checked by {!Check} like any other layout.

    This is the "generic CAD" baseline the paper's constructions compete
    against: it works for arbitrary networks (no orthogonality or
    product structure needed) but offers no area guarantee, and its
    sequential nature can fail on dense instances until the canvas is
    enlarged. *)

open Mvl_topology

type placement = {
  nodes : Mvl_geometry.Rect.t array;  (** footprints, layer 1 *)
  width : int;                        (** canvas extent, x in [0, width) *)
  height : int;
  layers : int;
}

val grid_placement :
  Graph.t -> rows:int -> cols:int -> margin:int -> layers:int -> placement
(** Nodes in row-major order on a [rows x cols] grid of square
    footprints (side = max degree + 2), separated and surrounded by
    [margin] empty tracks. *)

val route : Graph.t -> placement -> Layout.t option
(** Routes all edges (shortest nets first).  [None] when some net finds
    no path on this canvas — retry with a larger [margin] or more
    [layers]. *)

val route_or_grow :
  ?max_attempts:int -> Graph.t -> rows:int -> cols:int -> layers:int ->
  Layout.t option
(** Tries [grid_placement] with doubling margins until routing succeeds
    (default 4 attempts starting at margin 2). *)
