open Mvl_topology
open Mvl_geometry

type objective = { tracks : int; total_span : int }

let evaluate graph ~node_at =
  let n = Graph.n graph in
  let position = Array.make n 0 in
  Array.iteri (fun p u -> position.(u) <- p) node_at;
  let spans =
    Array.map
      (fun (u, v) -> Interval.make position.(u) position.(v))
      (Graph.edges graph)
  in
  let total_span =
    Array.fold_left (fun acc s -> acc + Interval.length s) 0 spans
  in
  { tracks = Track_assign.max_density spans; total_span }

(* cheap xorshift so the optimizer has no external dependencies *)
let make_rng seed =
  let state = ref (if seed = 0 then 0x2545F491 else seed) in
  fun bound ->
    let x = !state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 17) in
    let x = x lxor (x lsl 5) in
    state := x land max_int;
    !state mod bound

let optimize ?(seed = 1) ?(iterations = 20000) ?initial graph =
  let n = Graph.n graph in
  let node_at =
    match initial with
    | Some order ->
        if Array.length order <> n then invalid_arg "Order_opt.optimize";
        Array.copy order
    | None -> Array.init n (fun i -> i)
  in
  if n < 3 then Collinear.of_order graph ~node_at
  else begin
    let rand = make_rng seed in
    let position = Array.make n 0 in
    Array.iteri (fun p u -> position.(u) <- p) node_at;
    (* objective as a single comparable score: tracks dominate span *)
    let score () =
      let o = evaluate graph ~node_at in
      (o.tracks * 1_000_000) + o.total_span
    in
    let current = ref (score ()) in
    let best = ref !current in
    let best_order = ref (Array.copy node_at) in
    let temperature = ref (float_of_int n) in
    for _ = 1 to iterations do
      let i = rand n and j = rand n in
      if i <> j then begin
        let u = node_at.(i) and v = node_at.(j) in
        node_at.(i) <- v;
        node_at.(j) <- u;
        position.(u) <- j;
        position.(v) <- i;
        let candidate = score () in
        let accept =
          candidate <= !current
          || float_of_int (rand 1000) /. 1000.0
             < exp (-.float_of_int (candidate - !current) /. (!temperature *. 1000.0))
        in
        if accept then begin
          current := candidate;
          if candidate < !best then begin
            best := candidate;
            best_order := Array.copy node_at
          end
        end
        else begin
          (* undo *)
          node_at.(i) <- u;
          node_at.(j) <- v;
          position.(u) <- i;
          position.(v) <- j
        end
      end;
      temperature := !temperature *. 0.9995
    done;
    Collinear.of_order graph ~node_at:!best_order
  end
