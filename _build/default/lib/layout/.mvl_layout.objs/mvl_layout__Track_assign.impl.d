lib/layout/track_assign.ml: Array Interval Mvl_geometry
