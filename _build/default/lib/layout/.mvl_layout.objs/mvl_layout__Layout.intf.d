lib/layout/layout.mli: Format Graph Mvl_geometry Mvl_topology Rect Wire
