lib/layout/baselines.ml: Array Collinear Graph Layout Mvl_topology
