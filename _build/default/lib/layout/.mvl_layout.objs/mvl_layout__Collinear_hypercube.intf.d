lib/layout/collinear_hypercube.mli: Collinear
