lib/layout/collinear_ghc.mli: Collinear Mvl_topology
