lib/layout/collinear.mli: Graph Mvl_geometry Mvl_topology
