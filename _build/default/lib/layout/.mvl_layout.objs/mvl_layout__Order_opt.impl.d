lib/layout/order_opt.ml: Array Collinear Graph Interval Mvl_geometry Mvl_topology Track_assign
