lib/layout/orthogonal.mli: Collinear Graph Mvl_topology
