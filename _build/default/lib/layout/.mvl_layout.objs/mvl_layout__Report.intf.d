lib/layout/report.mli: Format Layout
