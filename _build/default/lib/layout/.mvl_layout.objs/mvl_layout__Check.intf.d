lib/layout/check.mli: Format Layout
