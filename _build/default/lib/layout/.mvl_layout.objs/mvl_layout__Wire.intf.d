lib/layout/wire.mli: Format Mvl_geometry Point Segment
