lib/layout/collinear_complete.ml: Collinear Mvl_topology
