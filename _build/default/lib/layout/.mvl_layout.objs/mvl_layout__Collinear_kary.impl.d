lib/layout/collinear_kary.ml: Array Collinear Graph Kary_ncube Mixed_radix Mvl_topology Orders
