lib/layout/collinear_product.ml: Array Collinear Graph Mvl_topology
