lib/layout/maze_router.mli: Graph Layout Mvl_geometry Mvl_topology
