lib/layout/collinear_ghc.ml: Array Collinear Generalized_hypercube Mixed_radix Mvl_topology Orders
