lib/layout/collinear_kary.mli: Collinear
