lib/layout/order_opt.mli: Collinear Graph Mvl_topology
