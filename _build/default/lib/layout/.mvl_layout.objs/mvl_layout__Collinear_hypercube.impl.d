lib/layout/collinear_hypercube.ml: Array Collinear Graph Hypercube Mvl_topology Orders
