lib/layout/wire.ml: Array Format Mvl_geometry Point Segment
