lib/layout/multilayer.ml: Array Graph Hashtbl Layout List Mvl_geometry Mvl_topology Option Orthogonal Point Printf Rect Wire
