lib/layout/serialize.mli: Graph Layout Mvl_topology Wire
