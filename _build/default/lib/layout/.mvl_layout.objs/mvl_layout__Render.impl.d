lib/layout/render.ml: Array Buffer Bytes Collinear Graph Layout List Mvl_geometry Mvl_topology Option Orthogonal Point Printf Rect Segment String Wire
