lib/layout/congestion.ml: Array Format Orthogonal
