lib/layout/congestion.mli: Format Orthogonal
