lib/layout/multilayer.mli: Layout Mvl_topology Orthogonal
