lib/layout/orthogonal.ml: Array Collinear Graph Interval Mvl_geometry Mvl_topology Printf Track_assign
