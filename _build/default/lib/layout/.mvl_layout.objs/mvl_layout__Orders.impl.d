lib/layout/orders.ml: Array Mixed_radix Mvl_topology
