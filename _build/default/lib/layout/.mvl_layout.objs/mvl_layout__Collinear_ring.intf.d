lib/layout/collinear_ring.mli: Collinear
