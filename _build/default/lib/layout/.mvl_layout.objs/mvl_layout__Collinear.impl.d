lib/layout/collinear.ml: Array Format Graph Interval List Mvl_geometry Mvl_topology Printf Result Track_assign
