lib/layout/collinear_ring.ml: Array Collinear Mvl_topology Orders
