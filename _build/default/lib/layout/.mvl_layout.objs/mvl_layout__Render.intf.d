lib/layout/render.mli: Collinear Layout Orthogonal
