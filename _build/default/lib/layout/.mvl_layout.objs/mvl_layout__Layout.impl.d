lib/layout/layout.ml: Array Format Graph List Mvl_geometry Mvl_topology Point Rect Wire
