lib/layout/baselines.mli: Collinear Layout
