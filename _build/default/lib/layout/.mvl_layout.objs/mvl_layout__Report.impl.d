lib/layout/report.ml: Array Format Hashtbl Layout List Mvl_geometry Option Point Rect Segment Wire
