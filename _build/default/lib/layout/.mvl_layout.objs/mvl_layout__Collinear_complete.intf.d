lib/layout/collinear_complete.mli: Collinear
