lib/layout/maze_router.ml: Array Bytes Graph Hashtbl Layout List Mvl_geometry Mvl_topology Point Queue Rect Wire
