lib/layout/collinear_product.mli: Collinear Graph Mvl_topology
