lib/layout/check.ml: Array Format Graph Hashtbl Interval Layout List Mvl_geometry Mvl_topology Point Rect Segment Wire
