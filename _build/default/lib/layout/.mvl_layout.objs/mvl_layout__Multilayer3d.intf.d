lib/layout/multilayer3d.mli: Graph Layout Mvl_topology Orthogonal
