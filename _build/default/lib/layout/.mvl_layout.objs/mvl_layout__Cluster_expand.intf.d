lib/layout/cluster_expand.mli: Collinear Layout Mvl_topology Pn_cluster
