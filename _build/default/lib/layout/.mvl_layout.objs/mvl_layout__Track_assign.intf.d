lib/layout/track_assign.mli: Interval Mvl_geometry
