lib/layout/cluster_expand.ml: Array Collinear Graph Hashtbl Interval Layout List Multilayer Mvl_geometry Mvl_topology Option Pn_cluster Point Printf Rect Track_assign Wire
