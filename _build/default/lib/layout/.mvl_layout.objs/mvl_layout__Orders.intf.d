lib/layout/orders.mli: Mixed_radix Mvl_topology
