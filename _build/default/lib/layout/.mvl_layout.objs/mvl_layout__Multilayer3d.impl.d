lib/layout/multilayer3d.ml: Array Collinear Collinear_hypercube Graph Hashtbl Hypercube Layout Multilayer Mvl_geometry Mvl_topology Orthogonal Point Printf Rect Wire
