lib/layout/serialize.ml: Array Buffer Graph Hashtbl Layout List Mvl_geometry Mvl_topology Point Printf Rect String Wire
