(** Plain-text serialization of layouts — a stable interchange format so
    layouts can be stored, diffed and re-verified out of process.

    Format (line-oriented, all integers):
    {v
    mvl-layout 1
    layers L
    nodes N
    node <id> <x0> <y0> <x1> <y1> <active-layer>     (N lines)
    edges M
    wire <u> <v> <k> <x1> <y1> <z1> ... <xk> <yk> <zk>  (M lines)
    end
    v} *)

open Mvl_topology

val to_string : Layout.t -> string

val of_string : string -> (Layout.t, string) result
(** Parses and rebuilds the layout, reconstructing the graph from the
    wire endpoints.  Returns [Error] with a message on any malformed
    input. *)

val write_file : string -> Layout.t -> unit
val read_file : string -> (Layout.t, string) result

val roundtrip_equal : Layout.t -> Layout.t -> bool
(** Structural equality of graph, layers, footprints, active layers and
    wire polylines (used by tests). *)

val graph_of_wires : Wire.t array -> n:int -> Graph.t
(** The graph induced by the wires' edges. *)
