let create ?(fold = false) k =
  let graph = Mvl_topology.Ring.create k in
  let node_at =
    if fold then begin
      let node_at = Array.make k (-1) in
      for j = 0 to k - 1 do
        node_at.(Orders.folded_ring_position k j) <- j
      done;
      node_at
    end
    else Array.init k (fun i -> i)
  in
  Collinear.of_order graph ~node_at
