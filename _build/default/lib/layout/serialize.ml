open Mvl_topology
open Mvl_geometry

let to_string (t : Layout.t) =
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "mvl-layout 1\n";
  Buffer.add_string buf (Printf.sprintf "layers %d\n" t.Layout.layers);
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" (Graph.n t.Layout.graph));
  Array.iteri
    (fun id (r : Rect.t) ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %d %d %d %d %d\n" id r.Rect.x0 r.Rect.y0
           r.Rect.x1 r.Rect.y1 t.Layout.node_layers.(id)))
    t.Layout.nodes;
  Buffer.add_string buf
    (Printf.sprintf "edges %d\n" (Array.length t.Layout.wires));
  Array.iter
    (fun (w : Wire.t) ->
      let u, v = w.Wire.edge in
      Buffer.add_string buf
        (Printf.sprintf "wire %d %d %d" u v (Array.length w.Wire.points));
      Array.iter
        (fun (p : Point.t) ->
          Buffer.add_string buf
            (Printf.sprintf " %d %d %d" p.Point.x p.Point.y p.Point.z))
        w.Wire.points;
      Buffer.add_char buf '\n')
    t.Layout.wires;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let graph_of_wires wires ~n =
  Graph.of_edges_array ~n (Array.map (fun w -> w.Wire.edge) wires)

exception Parse of string

let of_string s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let ints_of rest = List.map int_of_string rest in
  try
    match lines with
    | header :: rest ->
        if String.trim header <> "mvl-layout 1" then
          raise (Parse "bad header");
        let layers, rest =
          match rest with
          | l :: rest -> (
              match String.split_on_char ' ' l with
              | [ "layers"; n ] -> (int_of_string n, rest)
              | _ -> raise (Parse "expected layers line"))
          | [] -> raise (Parse "truncated")
        in
        let n_nodes, rest =
          match rest with
          | l :: rest -> (
              match String.split_on_char ' ' l with
              | [ "nodes"; n ] -> (int_of_string n, rest)
              | _ -> raise (Parse "expected nodes line"))
          | [] -> raise (Parse "truncated")
        in
        let nodes = Array.make n_nodes (Rect.make ~x0:0 ~y0:0 ~x1:0 ~y1:0) in
        let node_layers = Array.make n_nodes 1 in
        let rest = ref rest in
        for _ = 1 to n_nodes do
          match !rest with
          | l :: more -> (
              rest := more;
              match String.split_on_char ' ' l with
              | "node" :: fields -> (
                  match ints_of fields with
                  | [ id; x0; y0; x1; y1; zl ] ->
                      if id < 0 || id >= n_nodes then
                        raise (Parse "node id out of range");
                      nodes.(id) <- Rect.make ~x0 ~y0 ~x1 ~y1;
                      node_layers.(id) <- zl
                  | _ -> raise (Parse "bad node line"))
              | _ -> raise (Parse "expected node line"))
          | [] -> raise (Parse "truncated nodes")
        done;
        let n_edges =
          match !rest with
          | l :: more -> (
              rest := more;
              match String.split_on_char ' ' l with
              | [ "edges"; n ] -> int_of_string n
              | _ -> raise (Parse "expected edges line"))
          | [] -> raise (Parse "truncated")
        in
        let wires = Array.make n_edges None in
        for i = 0 to n_edges - 1 do
          match !rest with
          | l :: more -> (
              rest := more;
              match String.split_on_char ' ' l with
              | "wire" :: fields -> (
                  match ints_of fields with
                  | u :: v :: k :: coords ->
                      if List.length coords <> 3 * k then
                        raise (Parse "bad wire coordinate count");
                      let rec points = function
                        | [] -> []
                        | x :: y :: z :: tl ->
                            Point.make ~x ~y ~z :: points tl
                        | _ -> raise (Parse "ragged wire coordinates")
                      in
                      wires.(i) <- Some (Wire.make ~edge:(u, v) (points coords))
                  | _ -> raise (Parse "bad wire line"))
              | _ -> raise (Parse "expected wire line"))
          | [] -> raise (Parse "truncated wires")
        done;
        (match !rest with
        | [ l ] when String.trim l = "end" -> ()
        | _ -> raise (Parse "missing end marker"));
        let wires =
          Array.map
            (function Some w -> w | None -> raise (Parse "missing wire"))
            wires
        in
        let graph = graph_of_wires wires ~n:n_nodes in
        if Graph.m graph <> n_edges then
          raise (Parse "duplicate edges in wire list");
        (* reorder wires to the graph's canonical edge order *)
        let order = Hashtbl.create n_edges in
        Array.iteri (fun i e -> Hashtbl.add order e i) (Graph.edges graph);
        let sorted = Array.make n_edges None in
        Array.iter
          (fun (w : Wire.t) ->
            let u, v = w.Wire.edge in
            let key = if u < v then (u, v) else (v, u) in
            sorted.(Hashtbl.find order key) <- Some { w with Wire.edge = key })
          wires;
        let wires =
          Array.map
            (function Some w -> w | None -> raise (Parse "wire ordering"))
            sorted
        in
        Ok (Layout.make ~graph ~layers ~node_layers ~nodes ~wires ())
    | [] -> Error "empty input"
  with
  | Parse msg -> Error msg
  | Failure _ -> Error "malformed integer"
  | Invalid_argument msg -> Error msg

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  of_string content

let roundtrip_equal (a : Layout.t) (b : Layout.t) =
  Graph.equal a.Layout.graph b.Layout.graph
  && a.Layout.layers = b.Layout.layers
  && a.Layout.nodes = b.Layout.nodes
  && a.Layout.node_layers = b.Layout.node_layers
  && Array.length a.Layout.wires = Array.length b.Layout.wires
  && Array.for_all2
       (fun (wa : Wire.t) (wb : Wire.t) ->
         wa.Wire.edge = wb.Wire.edge && wa.Wire.points = wb.Wire.points)
       a.Layout.wires b.Layout.wires
