(** Abstract collinear layouts: the nodes of a graph on a line, every
    edge assigned to a horizontal track (§3.1).

    A collinear layout is valid when the positions are a permutation and
    the spans of the edges sharing a track overlap in at most one point
    (node-granularity; the geometric realization refines endpoints to
    per-edge terminals, which makes same-track spans fully disjoint). *)

open Mvl_topology

type edge = { u : int; v : int; track : int }
(** An edge between node ids [u] and [v] assigned to a 0-based track. *)

type t = {
  graph : Graph.t;
  node_at : int array;   (** position -> node id *)
  position : int array;  (** node id -> position *)
  edges : edge array;    (** one entry per graph edge *)
  tracks : int;          (** number of tracks used *)
}

val span : t -> edge -> Mvl_geometry.Interval.t
(** Position interval covered by an edge. *)

val of_order : Graph.t -> node_at:int array -> t
(** Greedy (left-edge, optimal) track assignment for the given node
    order.  [node_at.(p)] is the node placed at position [p]. *)

val natural : Graph.t -> t
(** [of_order] with positions equal to node ids. *)

val validate : t -> (unit, string) result
(** Checks the permutation structure, that [edges] matches the graph's
    edge set exactly, and per-track interior-disjointness. *)

val max_span : t -> int
(** Longest edge span — the collinear proxy for maximum wire length. *)

val density_lower_bound : t -> int
(** Max cut density of the layout's spans: no assignment of this order
    can use fewer tracks. *)

val relabel_tracks : t -> perm:int array -> t
(** Permutes track indices (used to interleave recursive layers). *)

val fold : t -> t
(** Folds the line in half (position [p] moves to [2p] in the first half
    and to [2(n-1-p)+1] in the second) and re-packs tracks greedily.
    Halves the maximum span of symmetric long edges at the cost of a
    moderate track increase; the paper's maximum-wire-length claims
    assume this folding (§3.1). *)
