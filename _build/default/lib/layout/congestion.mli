(** Channel (gap) congestion analysis for orthogonal layouts: how many
    tracks each row/column gap really needs, quantifying the paper's
    "the layout area is dominated by inter-cluster links" arguments and
    showing where the area formulas' leading terms come from. *)

type channel = {
  index : int;      (** row or column index of the gap *)
  tracks : int;     (** tracks required (the gap's density) *)
  edges : int;      (** edges routed through the gap *)
  utilization : float;
      (** tracks / max-tracks over all gaps of the same direction *)
}

type t = {
  rows : channel array;
  cols : channel array;
  max_row_tracks : int;
  max_col_tracks : int;
  avg_row_tracks : float;
  avg_col_tracks : float;
  balance : float;
      (** avg/max over both directions: 1.0 = perfectly even channels *)
}

val analyze : Orthogonal.t -> t

val pp : Format.formatter -> t -> unit
