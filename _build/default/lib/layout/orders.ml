open Mvl_topology

let folded_ring_position k j =
  if j < 0 || j >= k then invalid_arg "Orders.folded_ring_position";
  (* walk out on even positions and come back on odd ones, so ring
     neighbours sit at most two positions apart *)
  let h = (k + 1) / 2 in
  if j < h then 2 * j else (2 * (k - 1 - j)) + 1

let weights radices =
  (* weight of digit j is the product of the radices above it *)
  let n = Array.length radices in
  let w = Array.make n 1 in
  for j = n - 2 downto 0 do
    w.(j) <- w.(j + 1) * radices.(j + 1)
  done;
  w

let reversed_position radices ~digit_map v =
  let d = Mixed_radix.to_digits radices v in
  let w = weights radices in
  let pos = ref 0 in
  Array.iteri (fun j dj -> pos := !pos + (digit_map radices.(j) dj * w.(j))) d;
  !pos

let order_of_position radices position =
  let total = Mixed_radix.cardinal radices in
  let node_at = Array.make total (-1) in
  for v = 0 to total - 1 do
    node_at.(position v) <- v
  done;
  node_at

let digit_reversed radices ~node_at:() =
  order_of_position radices (reversed_position radices ~digit_map:(fun _ d -> d))

let digit_reversed_folded radices =
  order_of_position radices
    (reversed_position radices ~digit_map:folded_ring_position)

let gray_offset = [| 0; 1; 3; 2 |]
(* gray_offset.(p) is the two-bit copy label at offset p; its inverse maps
   copy label to offset *)

let gray_offset_inv =
  let inv = Array.make 4 0 in
  Array.iteri (fun p label -> inv.(label) <- p) gray_offset;
  inv

let hypercube_order n =
  if n < 0 then invalid_arg "Orders.hypercube_order";
  let rec position dims v =
    if dims = 0 then 0
    else if dims = 1 then v
    else if dims mod 2 = 1 then
      (* odd: topmost bit is a 2-copy interleave *)
      let low = v land ((1 lsl (dims - 1)) - 1) in
      (position (dims - 1) low * 2) + (v lsr (dims - 1))
    else
      let low = v land ((1 lsl (dims - 2)) - 1) in
      (position (dims - 2) low * 4) + gray_offset_inv.((v lsr (dims - 2)) land 3)
  in
  let total = 1 lsl n in
  let node_at = Array.make total (-1) in
  for v = 0 to total - 1 do
    node_at.(position n v) <- v
  done;
  node_at
