open Mvl_geometry
open Mvl_topology

type t = {
  graph : Graph.t;
  layers : int;
  nodes : Rect.t array;
  node_layers : int array;
  wires : Wire.t array;
}

type metrics = {
  width : int;
  height : int;
  area : int;
  layers : int;
  volume : int;
  max_wire : int;
  total_wire : int;
  vias : int;
}

let make ~graph ~layers ?node_layers ~nodes ~wires () =
  if layers < 1 then invalid_arg "Layout.make: layers < 1";
  if Array.length nodes <> Graph.n graph then
    invalid_arg "Layout.make: one footprint per node required";
  if Array.length wires <> Graph.m graph then
    invalid_arg "Layout.make: one wire per edge required";
  let node_layers =
    match node_layers with
    | None -> Array.make (Graph.n graph) 1
    | Some nl ->
        if Array.length nl <> Graph.n graph then
          invalid_arg "Layout.make: one active layer per node required";
        Array.iter
          (fun z ->
            if z < 1 || z > layers then
              invalid_arg "Layout.make: node layer out of range")
          nl;
        nl
  in
  { graph; layers; nodes; node_layers; wires }

let active_layers t =
  List.length (List.sort_uniq compare (Array.to_list t.node_layers))

let bounding_box t =
  let bbox = ref None in
  let add_rect r =
    bbox := Some (match !bbox with None -> r | Some b -> Rect.hull b r)
  in
  Array.iter add_rect t.nodes;
  Array.iter
    (fun w ->
      Array.iter
        (fun (p : Point.t) ->
          add_rect (Rect.make ~x0:p.x ~y0:p.y ~x1:p.x ~y1:p.y))
        w.Wire.points)
    t.wires;
  match !bbox with
  | Some b -> b
  | None -> Rect.make ~x0:0 ~y0:0 ~x1:0 ~y1:0

let translate t ~dx ~dy =
  let move_rect (r : Rect.t) =
    Rect.make ~x0:(r.Rect.x0 + dx) ~y0:(r.Rect.y0 + dy) ~x1:(r.Rect.x1 + dx)
      ~y1:(r.Rect.y1 + dy)
  in
  let move_wire (w : Wire.t) =
    Wire.make ~edge:w.Wire.edge
      (Array.to_list
         (Array.map
            (fun (p : Point.t) ->
              Point.make ~x:(p.x + dx) ~y:(p.y + dy) ~z:p.z)
            w.Wire.points))
  in
  {
    t with
    nodes = Array.map move_rect t.nodes;
    wires = Array.map move_wire t.wires;
  }

let metrics t =
  let bbox = bounding_box t in
  let width = Rect.width bbox and height = Rect.height bbox in
  let area = width * height in
  let max_wire = ref 0 and total_wire = ref 0 and vias = ref 0 in
  Array.iter
    (fun w ->
      let xy = Wire.length_xy w in
      if xy > !max_wire then max_wire := xy;
      total_wire := !total_wire + xy;
      vias := !vias + (Wire.length w - xy))
    t.wires;
  {
    width;
    height;
    area;
    layers = t.layers;
    volume = t.layers * area;
    max_wire = !max_wire;
    total_wire = !total_wire;
    vias = !vias;
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "@[%dx%d area=%d layers=%d volume=%d max_wire=%d total_wire=%d vias=%d@]"
    m.width m.height m.area m.layers m.volume m.max_wire m.total_wire m.vias
