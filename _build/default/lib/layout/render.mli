(** Rendering: ASCII art for collinear layouts (regenerating the paper's
    Figs. 2–4) and SVG for full multilayer layouts. *)

val collinear_ascii : ?label:(int -> string) -> Collinear.t -> string
(** Draws the node row at the bottom and one text row per track, wires as
    [+----+] arcs with [|] drops.  [label] gives node captions (default:
    the node id). *)

val layout_svg : ?scale:int -> Layout.t -> string
(** A self-contained SVG document: node footprints as grey rectangles,
    each wiring layer's segments in its own colour, vias as dots. *)

val grid_summary : Orthogonal.t -> string
(** A small textual diagram of the recursive-grid structure: block grid
    dimensions plus per-gap track counts (used to regenerate the Fig.-1
    style overview). *)
