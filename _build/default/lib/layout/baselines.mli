(** The two baseline uses of [L] layers that §2.2 compares against:

    - {b folding} a finished 2-layer (Thompson) layout into [L/2]
      two-layer slabs: area shrinks by only [~L/2], while volume and
      maximum wire length stay put;
    - a {b multilayer collinear} layout (all nodes on a line, tracks
      spread over the layers): area again shrinks by at most [~L/2] and
      the maximum wire length remains proportional to [N].

    Both are computed as exact metric transforms so benches can print
    direct-multilayer vs. baseline ratios. *)

val fold_thompson : Layout.metrics -> layers:int -> Layout.metrics
(** Metrics of the 2-layer layout folded into [layers/2] slabs along the
    y axis ([layers] must be even and >= 2): [height' = ceil(H / s)],
    width unchanged, [volume' = layers * area'], wire lengths
    unchanged. *)

val collinear_multilayer : Collinear.t -> layers:int -> Layout.metrics
(** Metrics of laying the collinear layout out with its tracks divided
    over [ceil(L/2)] wiring-layer groups: width stays [Θ(N)] (one column
    band per node), height shrinks to [ceil(T / ceil(L/2))], so the area
    gain is bounded by [~L/2] and the maximum wire length stays
    [Θ(max span * node pitch)]. *)
