(** Collinear layouts of binary hypercubes with [floor(2N/3)] tracks
    (§5.1, Fig. 4), built from 2-track 2-cube blocks: dimensions are
    consumed two at a time ([f(n+2) = 4 f(n) + 2], the four copies in
    Gray order connected as a 4-cycle), with a final 2-copy interleave
    for odd [n] ([f(n+1) = 2 f(n) + 1]). *)

val tracks_formula : int -> int
(** [floor (2 * 2^n / 3)]. *)

val create : int -> Collinear.t
(** [create n] lays out the [n]-cube on the Fig.-4 order with greedy
    packing; uses exactly [tracks_formula n] tracks. *)

val create_explicit : int -> Collinear.t
(** The same order with the paper's explicit recursive track
    assignment. *)
