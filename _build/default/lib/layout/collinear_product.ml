open Mvl_topology

let product_graph a b = Graph.cartesian_product a b

let create (la : Collinear.t) (lb : Collinear.t) =
  let a = la.Collinear.graph and b = lb.Collinear.graph in
  let na = Graph.n a and nb = Graph.n b in
  let graph = product_graph a b in
  let node_at = Array.make (na * nb) (-1) in
  for v = 0 to (na * nb) - 1 do
    let x = v mod na and y = v / na in
    let pos = (la.Collinear.position.(x) * nb) + lb.Collinear.position.(y) in
    node_at.(pos) <- v
  done;
  Collinear.of_order graph ~node_at

let tracks_bound (la : Collinear.t) (lb : Collinear.t) =
  (Graph.n lb.Collinear.graph * la.Collinear.tracks) + lb.Collinear.tracks
