(** Collinear layouts of [k]-ary [n]-cubes (§3.1), using
    [f_k(n) = 2(k^n - 1)/(k - 1)] tracks. *)

val tracks_formula : k:int -> n:int -> int
(** The paper's [f_k(n) = 2 (k^n - 1) / (k - 1)]. *)

val create : ?fold:bool -> k:int -> n:int -> unit -> Collinear.t
(** [create ~k ~n ()] is the bottom-up recursive layout with greedy
    (optimal) track packing on the paper's node order; it uses exactly
    [tracks_formula ~k ~n] tracks for the natural order.  [~fold:true]
    interleaves each dimension's copies in folded ring order, which
    shortens the longest wire from [Θ(k^n)] to about half without using
    more tracks.  Requires [k >= 3] (binary cubes have their own tighter
    layout, {!Collinear_hypercube}). *)

val create_explicit : k:int -> n:int -> Collinear.t
(** The paper's recursion with its explicit track assignment
    ([f_k(n+1) = k f_k(n) + 2]): each copy keeps its own track block and
    two fresh tracks connect the copies.  Same order and track count as
    [create], assignment shaped exactly as in the paper's proof. *)
