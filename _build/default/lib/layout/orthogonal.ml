open Mvl_topology
open Mvl_geometry

type line_edge = { edge_id : int; a : int; b : int; track : int }

type t = {
  graph : Graph.t;
  rows : int;
  cols : int;
  place : (int * int) array;
  node_at : int array array;
  row_edges : line_edge array array;
  col_edges : line_edge array array;
  row_tracks : int array;
  col_tracks : int array;
}

let pack_line edges =
  (* [edges]: (edge_id, a, b) with a < b; returns packed line_edges *)
  let arr = Array.of_list edges in
  let spans = Array.map (fun (_, a, b) -> Interval.make a b) arr in
  let assignment = Track_assign.greedy spans in
  ( Array.mapi
      (fun i (edge_id, a, b) -> { edge_id; a; b; track = assignment.(i) })
      arr,
    Track_assign.count_tracks assignment )

let create graph ~rows ~cols ~place =
  let n = Graph.n graph in
  if rows * cols <> n then
    invalid_arg
      (Printf.sprintf "Orthogonal.create: %dx%d grid for %d nodes" rows cols n);
  let placements = Array.init n place in
  let node_at = Array.make_matrix rows cols (-1) in
  Array.iteri
    (fun u (r, c) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Orthogonal.create: placement out of grid";
      if node_at.(r).(c) >= 0 then
        invalid_arg "Orthogonal.create: two nodes on one grid cell";
      node_at.(r).(c) <- u)
    placements;
  let row_acc = Array.make rows [] and col_acc = Array.make cols [] in
  Array.iteri
    (fun edge_id (u, v) ->
      let ru, cu = placements.(u) and rv, cv = placements.(v) in
      if ru = rv && cu <> cv then
        row_acc.(ru) <- (edge_id, min cu cv, max cu cv) :: row_acc.(ru)
      else if cu = cv && ru <> rv then
        col_acc.(cu) <- (edge_id, min ru rv, max ru rv) :: col_acc.(cu)
      else
        invalid_arg
          (Printf.sprintf
             "Orthogonal.create: edge %d-%d is not row- or column-aligned" u v))
    (Graph.edges graph);
  let row_edges = Array.make rows [||] and row_tracks = Array.make rows 0 in
  let col_edges = Array.make cols [||] and col_tracks = Array.make cols 0 in
  for r = 0 to rows - 1 do
    let packed, tracks = pack_line row_acc.(r) in
    row_edges.(r) <- packed;
    row_tracks.(r) <- tracks
  done;
  for c = 0 to cols - 1 do
    let packed, tracks = pack_line col_acc.(c) in
    col_edges.(c) <- packed;
    col_tracks.(c) <- tracks
  done;
  {
    graph;
    rows;
    cols;
    place = placements;
    node_at;
    row_edges;
    col_edges;
    row_tracks;
    col_tracks;
  }

let of_product ~row_factor ~col_factor graph =
  let na = Graph.n row_factor.Collinear.graph in
  let nb = Graph.n col_factor.Collinear.graph in
  if na * nb <> Graph.n graph then
    invalid_arg "Orthogonal.of_product: factor sizes do not match";
  let place v =
    let x = v mod na and y = v / na in
    (col_factor.Collinear.position.(y), row_factor.Collinear.position.(x))
  in
  create graph ~rows:nb ~cols:na ~place

let total_row_tracks t = Array.fold_left ( + ) 0 t.row_tracks
let total_col_tracks t = Array.fold_left ( + ) 0 t.col_tracks

let count_degrees t ~of_rows =
  let n = Graph.n t.graph in
  let deg = Array.make n 0 in
  let lines = if of_rows then t.row_edges else t.col_edges in
  let lookup line pos =
    if of_rows then t.node_at.(line).(pos) else t.node_at.(pos).(line)
  in
  Array.iteri
    (fun line edges ->
      Array.iter
        (fun e ->
          let u = lookup line e.a and v = lookup line e.b in
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1)
        edges)
    lines;
  Array.fold_left max 0 deg

let max_row_degree t = count_degrees t ~of_rows:true
let max_col_degree t = count_degrees t ~of_rows:false
