(** Node orderings used by the paper's collinear constructions. *)

open Mvl_topology

val folded_ring_position : int -> int -> int
(** [folded_ring_position k j] is the position of ring node [j] in the
    boustrophedon ("folded") order [0, 2, 4, ..., 5, 3, 1], which keeps
    every ring edge within span 2 and eliminates the long wrap wire. *)

val digit_reversed : Mixed_radix.radices -> node_at:unit -> int array
(** [digit_reversed radices ~node_at:()] is the node order produced by
    the paper's bottom-up recursion for products of rings/cliques: node
    [(d_{n-1}, ..., d_0)] goes to position
    [sum_j d_j * prod_{t>j} r_t] — the [i]-th node of the [j]-th copy sits
    next to the [i]-th node of copy [j-1].  Returns the
    position->node array. *)

val digit_reversed_folded : Mixed_radix.radices -> int array
(** Same recursion but with each dimension's copies interleaved in folded
    ring order, shortening wrap wires (used by the [~fold] options). *)

val hypercube_order : int -> int array
(** The Fig.-4 hypercube order: dimensions consumed two at a time with
    the 4 sub-copies in Gray sequence (00, 01, 11, 10); an odd topmost
    dimension becomes a final 2-copy interleave.  Returns the
    position->node array for the [n]-cube. *)
