(** Collinear layouts of arbitrary Cartesian products (§3.2).

    The paper's bottom-up recursion generalizes beyond rings and
    cliques: given collinear layouts of factors [A] and [B], place node
    [(a, b)] at position [pos_A a * n_B + pos_B b] — [n_B] interleaved
    copies of [A]'s layout, with each block of [n_B] consecutive
    positions holding one copy of [B].  Every [A]-edge stretches by
    [n_B] and the copies' track blocks stay disjoint; every [B]-edge
    lives inside one block, so all blocks share [B]'s tracks.  The
    track count obeys

      [f(A x B) <= n_B * f(A) + f(B)]

    (greedy packing often does better), generalizing
    [f_k(n+1) = k f_k(n) + 2] and the GHC recurrence. *)

open Mvl_topology

val product_graph : Graph.t -> Graph.t -> Graph.t
(** [product_graph a b] = [Graph.cartesian_product a b]; node [(x, y)]
    encoded as [y * n_A + x] ([a] varies fastest). *)

val create : Collinear.t -> Collinear.t -> Collinear.t
(** [create la lb] is the collinear layout of [product_graph a b] on the
    interleaved order, packed greedily. *)

val tracks_bound : Collinear.t -> Collinear.t -> int
(** The recursion's upper bound: [n_B * tracks(A) + tracks(B)] — the
    [n_B] interleaved copies of [A]'s layout need disjoint track blocks,
    while every group reuses [B]'s tracks. *)
