(* The parallel runtime: every backend's output must be byte-identical
   to the sequential path (modulo the volatile timing/cache fields),
   merged in input order, with cache counters aggregated, exceptions
   surfacing with sequential semantics, work actually stolen under a
   skewed load (domains), and a crashed worker costing only its own
   unreported jobs (fork). *)
open Mvl_core

let stable json = Mvl.Telemetry.to_string (Mvl.Telemetry.strip_volatile json)

let sweep_points =
  [
    ("tree:4", 2);
    ("complete:6", 2);
    ("hypercube:3", 2);
    ("kary:3:2", 2);
    ("mesh:3:3", 2);
    ("tree:4", 4);
    ("hypercube:3", 4);
    ("ccc:3", 4);
  ]

let record (spec, layers) =
  match Mvl.Pipeline.run_string ~validate:Mvl.Check.Strict ~layers spec with
  | Ok r -> Mvl.Pipeline.to_json r
  | Error msg -> Mvl.Telemetry.Obj [ ("error", Mvl.Telemetry.String msg) ]

let test_parallel_matches_sequential () =
  Mvl.Pipeline.cache_reset ();
  let seq, _ = Mvl.Parallel.map ~jobs:1 ~f:record sweep_points in
  Mvl.Pipeline.cache_reset ();
  let par, _ = Mvl.Parallel.map ~jobs:4 ~f:record sweep_points in
  Alcotest.(check int) "same record count" (List.length seq) (List.length par);
  Alcotest.(check (list string)) "stable records byte-identical"
    (List.map stable seq) (List.map stable par)

let test_backends_agree () =
  (* the determinism gate across the whole backend matrix: domains,
     fork and sequential must produce byte-identical stable records.
     The fork leg runs FIRST — once the domain backend has spawned a
     domain, the runtime refuses Unix.fork for the process's lifetime *)
  let on backend =
    Mvl.Pipeline.cache_reset ();
    let rs, _ = Mvl.Parallel.map ~backend ~jobs:3 ~f:record sweep_points in
    List.map stable rs
  in
  let fork =
    if Mvl.Parallel.available () then Some (on Mvl.Parallel.Fork) else None
  in
  let seq = on Mvl.Parallel.Sequential in
  (match fork with
  | Some fork ->
      Alcotest.(check (list string)) "fork = sequential" seq fork
  | None -> ());
  Alcotest.(check (list string)) "domains = sequential" seq
    (on Mvl.Parallel.Domains)

let test_merge_preserves_input_order () =
  Mvl.Pipeline.cache_reset ();
  let records, _ = Mvl.Parallel.map ~jobs:3 ~f:record sweep_points in
  List.iter2
    (fun (spec, layers) r ->
      (match Mvl.Telemetry.member "spec" r with
      | Some (Mvl.Telemetry.String s) ->
          Alcotest.(check string) "spec in input position" spec s
      | _ -> Alcotest.fail "record without spec");
      match Mvl.Telemetry.member "layers" r with
      | Some (Mvl.Telemetry.Int l) ->
          Alcotest.(check int) "layers in input position" layers l
      | _ -> Alcotest.fail "record without layers")
    sweep_points records

let test_worker_stats_aggregate () =
  Mvl.Pipeline.cache_reset ();
  let _, stats = Mvl.Parallel.map ~jobs:4 ~f:record sweep_points in
  Alcotest.(check int) "workers used" 4 stats.Mvl.Parallel.workers;
  Alcotest.(check int) "every distinct (spec, L) constructed once"
    (List.length sweep_points)
    stats.Mvl.Parallel.misses;
  Alcotest.(check int) "no hits across distinct points" 0
    stats.Mvl.Parallel.hits;
  Mvl.Pipeline.cache_reset ();
  let _, seq_stats = Mvl.Parallel.map ~jobs:1 ~f:record sweep_points in
  Alcotest.(check int) "sequential path reports one worker" 1
    seq_stats.Mvl.Parallel.workers;
  Alcotest.(check int) "sequential misses agree"
    stats.Mvl.Parallel.misses seq_stats.Mvl.Parallel.misses

let test_exception_propagates () =
  (* default (domains) backend *)
  Alcotest.check_raises "f's exception surfaces in the caller"
    (Failure "boom")
    (fun () ->
      ignore
        (Mvl.Parallel.map ~jobs:2
           ~f:(fun _ -> failwith "boom")
           [ 1; 2; 3; 4 ]))

let test_exception_lowest_index () =
  (* several jobs fail; the one the sequential run would have hit
     first is the one that surfaces, regardless of scheduling *)
  Alcotest.check_raises "lowest failing index wins" (Failure "boom-2")
    (fun () ->
      ignore
        (Mvl.Domain_pool.map ~domains:3
           ~f:(fun i ->
             if i = 2 || i = 5 then failwith (Printf.sprintf "boom-%d" i)
             else i)
           (Array.init 8 Fun.id)))

let test_work_stealing () =
  (* two domains; the deques are dealt round-robin, so domain 0 owns
     0,2,4,6 and domain 1 owns 1,3,5,7.  The first item domain 1 can
     run (1) sleeps, so domain 0 drains its own deque in microseconds
     and must steal domain 1's remaining items from the back — a
     static partition would leave them waiting behind the sleep. *)
  let executed_by = Array.make 8 (-1) in
  let f i =
    if i = 1 then Unix.sleepf 0.25;
    executed_by.(i) <- (Domain.self () :> int);
    i * 10
  in
  let out, stats = Mvl.Domain_pool.map ~domains:2 ~f (Array.init 8 Fun.id) in
  Alcotest.(check (array int)) "results in input order"
    (Array.init 8 (fun i -> i * 10))
    out;
  Alcotest.(check int) "two domains ran" 2 stats.Mvl.Domain_pool.domains;
  Alcotest.(check bool) "work was stolen" true
    (stats.Mvl.Domain_pool.steals > 0);
  let d0 = executed_by.(0) in
  Alcotest.(check bool) "an item owned by the sleeping domain migrated" true
    (executed_by.(3) = d0 || executed_by.(5) = d0 || executed_by.(7) = d0)

let test_split_seed () =
  let a = Mvl.Domain_pool.split_seed ~seed:42 ~index:0 in
  let b = Mvl.Domain_pool.split_seed ~seed:42 ~index:1 in
  Alcotest.(check bool) "distinct per-task streams" true (a <> b);
  Alcotest.(check int) "deterministic" a
    (Mvl.Domain_pool.split_seed ~seed:42 ~index:0);
  Alcotest.(check bool) "non-negative" true (a >= 0 && b >= 0);
  Alcotest.(check bool) "seed-sensitive" true
    (a <> Mvl.Domain_pool.split_seed ~seed:43 ~index:0)

let test_killed_worker_recovers () =
  (* fork backend only: job 3's worker dies without reporting anything;
     the parent must recompute every job the worker owned and still
     return a full, input-ordered result list *)
  let parent = Unix.getpid () in
  let f i =
    if i = 3 && Unix.getpid () <> parent then Unix._exit 9
    else Mvl.Telemetry.Obj [ ("i", Mvl.Telemetry.Int i) ]
  in
  let inputs = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let records, _ =
    Mvl.Parallel.map ~backend:Mvl.Parallel.Fork ~jobs:4 ~f inputs
  in
  Alcotest.(check int) "all jobs answered" (List.length inputs)
    (List.length records);
  List.iter2
    (fun i r ->
      match Mvl.Telemetry.member "i" r with
      | Some (Mvl.Telemetry.Int j) -> Alcotest.(check int) "in order" i j
      | _ -> Alcotest.fail "malformed record")
    inputs records

let test_small_inputs () =
  let f i = Mvl.Telemetry.Obj [ ("i", Mvl.Telemetry.Int i) ] in
  let empty, _ = Mvl.Parallel.map ~jobs:4 ~f [] in
  Alcotest.(check int) "empty input" 0 (List.length empty);
  let one, stats = Mvl.Parallel.map ~jobs:4 ~f [ 42 ] in
  Alcotest.(check int) "singleton input" 1 (List.length one);
  Alcotest.(check int) "never more workers than jobs" 1
    stats.Mvl.Parallel.workers

let test_default_jobs_bounds () =
  let d = Mvl.Parallel.default_jobs () in
  Alcotest.(check bool) "at least one" true (d >= 1);
  Alcotest.(check int) "uncapped: tracks the visible processor count"
    (Mvl.Parallel.cpu_count ()) d

let test_barrier_basics () =
  Alcotest.check_raises "parties < 1 rejected"
    (Invalid_argument "Barrier.create: parties < 1") (fun () ->
      ignore (Mvl.Barrier.create ~parties:0));
  let solo = Mvl.Barrier.create ~parties:1 in
  Alcotest.(check int) "parties" 1 (Mvl.Barrier.parties solo);
  (* a single-party barrier never blocks, and stays cyclic *)
  for _ = 1 to 3 do Mvl.Barrier.wait solo done;
  Alcotest.(check bool) "not broken" false (Mvl.Barrier.is_broken solo);
  Mvl.Barrier.break solo;
  Mvl.Barrier.break solo;
  Alcotest.(check bool) "break is sticky" true (Mvl.Barrier.is_broken solo);
  Alcotest.check_raises "wait on broken barrier"
    Mvl.Barrier.Broken (fun () -> Mvl.Barrier.wait solo)

(* gang + barrier keep workers in lockstep: between the two rendezvous
   of a phase no worker can be behind (it arrived) or ahead (it has
   not passed the second wait), so the counter snapshot is exact —
   and race-free, because nobody writes between them *)
let test_gang_lockstep () =
  let workers = 4 and phases = 200 in
  let b = Mvl.Barrier.create ~parties:workers in
  let counts = Array.make workers 0 in
  Mvl.Domain_pool.gang ~workers (fun w ->
      for p = 1 to phases do
        counts.(w) <- counts.(w) + 1;
        Mvl.Barrier.wait b;
        Array.iteri
          (fun peer c ->
            if c <> p then
              Alcotest.failf "worker %d saw peer %d at phase %d, not %d" w
                peer c p)
          counts;
        Mvl.Barrier.wait b
      done);
  Array.iter (fun c -> Alcotest.(check int) "phases run" phases c) counts

(* one worker of a gang dies before its rendezvous: abort must break
   the barrier so the peers wake with Broken instead of deadlocking,
   and the original exception — not the Broken echoes — must be what
   the caller sees *)
let test_gang_failure_breaks_barrier () =
  let workers = 3 in
  let b = Mvl.Barrier.create ~parties:workers in
  let broken_seen = Atomic.make 0 in
  (try
     Mvl.Domain_pool.gang ~workers
       ~abort:(fun () -> Mvl.Barrier.break b)
       (fun w ->
         if w = 1 then failwith "worker 1 exploded"
         else
           try
             Mvl.Barrier.wait b;
             Alcotest.fail "rendezvous should have broken"
           with Mvl.Barrier.Broken as e ->
             Atomic.incr broken_seen;
             raise e);
     Alcotest.fail "gang swallowed the failure"
   with Failure m ->
     Alcotest.(check string) "original exception wins" "worker 1 exploded" m);
  Alcotest.(check int) "both peers woke with Broken" 2
    (Atomic.get broken_seen)

(* order matters: the fork-backend cases must run before anything that
   spawns a domain — the runtime permanently disables Unix.fork after
   the first Domain.spawn, and this suite is registered first in
   main.ml for the same reason *)
let suite =
  [
    Alcotest.test_case "killed fork worker recovers" `Quick
      test_killed_worker_recovers;
    Alcotest.test_case "all backends byte-identical" `Quick test_backends_agree;
    Alcotest.test_case "parallel matches sequential (stable form)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "merge preserves input order" `Quick
      test_merge_preserves_input_order;
    Alcotest.test_case "per-worker cache stats aggregate" `Quick
      test_worker_stats_aggregate;
    Alcotest.test_case "exceptions surface sequentially" `Quick
      test_exception_propagates;
    Alcotest.test_case "lowest failing index wins" `Quick
      test_exception_lowest_index;
    Alcotest.test_case "skewed load is stolen" `Quick test_work_stealing;
    Alcotest.test_case "split_seed streams" `Quick test_split_seed;
    Alcotest.test_case "empty and singleton inputs" `Quick test_small_inputs;
    Alcotest.test_case "default job count bounds" `Quick
      test_default_jobs_bounds;
    (* gang/barrier cases spawn domains — keep them after the fork ones *)
    Alcotest.test_case "barrier basics" `Quick test_barrier_basics;
    Alcotest.test_case "gang lockstep phases" `Quick test_gang_lockstep;
    Alcotest.test_case "gang failure breaks barrier" `Quick
      test_gang_failure_breaks_barrier;
  ]
