(* The fork-based worker pool: parallel output must be byte-identical
   to the sequential path (modulo the volatile timing/cache fields),
   merged in input order, with per-worker cache counters aggregated,
   exceptions surfacing with sequential semantics, and a crashed worker
   costing only its own unreported jobs. *)
open Mvl_core

let stable json = Mvl.Telemetry.to_string (Mvl.Telemetry.strip_volatile json)

let sweep_points =
  [
    ("tree:4", 2);
    ("complete:6", 2);
    ("hypercube:3", 2);
    ("kary:3:2", 2);
    ("mesh:3:3", 2);
    ("tree:4", 4);
    ("hypercube:3", 4);
    ("ccc:3", 4);
  ]

let record (spec, layers) =
  match Mvl.Pipeline.run_string ~validate:Mvl.Check.Strict ~layers spec with
  | Ok r -> Mvl.Pipeline.to_json r
  | Error msg -> Mvl.Telemetry.Obj [ ("error", Mvl.Telemetry.String msg) ]

let test_parallel_matches_sequential () =
  Mvl.Pipeline.cache_reset ();
  let seq, _ = Mvl.Parallel.map ~jobs:1 ~f:record sweep_points in
  Mvl.Pipeline.cache_reset ();
  let par, _ = Mvl.Parallel.map ~jobs:4 ~f:record sweep_points in
  Alcotest.(check int) "same record count" (List.length seq) (List.length par);
  Alcotest.(check (list string)) "stable records byte-identical"
    (List.map stable seq) (List.map stable par)

let test_merge_preserves_input_order () =
  Mvl.Pipeline.cache_reset ();
  let records, _ = Mvl.Parallel.map ~jobs:3 ~f:record sweep_points in
  List.iter2
    (fun (spec, layers) r ->
      (match Mvl.Telemetry.member "spec" r with
      | Some (Mvl.Telemetry.String s) ->
          Alcotest.(check string) "spec in input position" spec s
      | _ -> Alcotest.fail "record without spec");
      match Mvl.Telemetry.member "layers" r with
      | Some (Mvl.Telemetry.Int l) ->
          Alcotest.(check int) "layers in input position" layers l
      | _ -> Alcotest.fail "record without layers")
    sweep_points records

let test_worker_stats_aggregate () =
  Mvl.Pipeline.cache_reset ();
  let _, stats = Mvl.Parallel.map ~jobs:4 ~f:record sweep_points in
  Alcotest.(check int) "workers used" 4 stats.Mvl.Parallel.workers;
  Alcotest.(check int) "every distinct (spec, L) constructed once"
    (List.length sweep_points)
    stats.Mvl.Parallel.misses;
  Alcotest.(check int) "no hits across distinct points" 0
    stats.Mvl.Parallel.hits;
  Mvl.Pipeline.cache_reset ();
  let _, seq_stats = Mvl.Parallel.map ~jobs:1 ~f:record sweep_points in
  Alcotest.(check int) "sequential path reports one worker" 1
    seq_stats.Mvl.Parallel.workers;
  Alcotest.(check int) "sequential misses agree"
    stats.Mvl.Parallel.misses seq_stats.Mvl.Parallel.misses

let test_exception_propagates () =
  Alcotest.check_raises "f's exception surfaces in the parent"
    (Failure "boom")
    (fun () ->
      ignore
        (Mvl.Parallel.map ~jobs:2
           ~f:(fun _ -> failwith "boom")
           [ 1; 2; 3; 4 ]))

let test_killed_worker_recovers () =
  (* job 3's worker dies without reporting anything; the parent must
     recompute every job the worker owned and still return a full,
     input-ordered result list *)
  let parent = Unix.getpid () in
  let f i =
    if i = 3 && Unix.getpid () <> parent then Unix._exit 9
    else Mvl.Telemetry.Obj [ ("i", Mvl.Telemetry.Int i) ]
  in
  let inputs = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  let records, _ = Mvl.Parallel.map ~jobs:4 ~f inputs in
  Alcotest.(check int) "all jobs answered" (List.length inputs)
    (List.length records);
  List.iter2
    (fun i r ->
      match Mvl.Telemetry.member "i" r with
      | Some (Mvl.Telemetry.Int j) -> Alcotest.(check int) "in order" i j
      | _ -> Alcotest.fail "malformed record")
    inputs records

let test_small_inputs () =
  let f i = Mvl.Telemetry.Obj [ ("i", Mvl.Telemetry.Int i) ] in
  let empty, _ = Mvl.Parallel.map ~jobs:4 ~f [] in
  Alcotest.(check int) "empty input" 0 (List.length empty);
  let one, stats = Mvl.Parallel.map ~jobs:4 ~f [ 42 ] in
  Alcotest.(check int) "singleton input" 1 (List.length one);
  Alcotest.(check int) "never more workers than jobs" 1
    stats.Mvl.Parallel.workers

let test_default_jobs_bounds () =
  let d = Mvl.Parallel.default_jobs () in
  Alcotest.(check bool) "at least one" true (d >= 1);
  Alcotest.(check bool) "capped at eight" true (d <= 8)

let suite =
  [
    Alcotest.test_case "parallel matches sequential (stable form)" `Quick
      test_parallel_matches_sequential;
    Alcotest.test_case "merge preserves input order" `Quick
      test_merge_preserves_input_order;
    Alcotest.test_case "per-worker cache stats aggregate" `Quick
      test_worker_stats_aggregate;
    Alcotest.test_case "exceptions surface sequentially" `Quick
      test_exception_propagates;
    Alcotest.test_case "killed worker recovers" `Quick
      test_killed_worker_recovers;
    Alcotest.test_case "empty and singleton inputs" `Quick test_small_inputs;
    Alcotest.test_case "default job count bounds" `Quick
      test_default_jobs_bounds;
  ]
