(* Mvl.Cache (GreedyDual-Size-Frequency) and the single-flight layout
   cache built on it.

   The GDSF cases pin the policy's observable order on hand-built
   cost/size/frequency sequences: eviction removes the minimum
   [clock + freq * cost / size] entry with deterministic oldest-first
   tie-breaks, the clock inherits the victim's priority, and a
   candidate that ranks below every resident is the one rejected.
   The duplicate-add case is the regression the old Bounded_fifo
   policy carried: re-adding a resident key must not create a second
   queue entry (a second eviction of the same key).

   The concurrent case drives Mvl.Pipeline.run for one (spec, layers)
   key from N domains at once: single-flight coalescing must build the
   layout exactly once and hand every joiner the same result. *)

open Mvl_core
module Cache = Mvl_core.Cache

let mk ?(max_bytes = max_int) ~capacity () =
  Cache.create ~max_bytes ~capacity ()

let test_hit_miss_stats () =
  let c = mk ~capacity:4 () in
  Alcotest.(check (option string)) "miss on empty" None (Cache.find_opt c 1);
  ignore (Cache.add c 1 "one" ~cost:1.0 ~size:1);
  Alcotest.(check (option string)) "hit" (Some "one") (Cache.find_opt c 1);
  let s = Cache.stats c in
  Alcotest.(check int) "hits" 1 s.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Cache.misses;
  Alcotest.(check int) "admissions" 1 s.Cache.admissions

let test_eviction_order_by_cost () =
  (* equal size and frequency: priority reduces to cost, so the
     cheapest build is evicted first *)
  let c = mk ~capacity:3 () in
  ignore (Cache.add c "cheap" () ~cost:1.0 ~size:10);
  ignore (Cache.add c "mid" () ~cost:5.0 ~size:10);
  ignore (Cache.add c "dear" () ~cost:9.0 ~size:10);
  Alcotest.(check (option string)) "victim is cheapest" (Some "cheap")
    (Cache.victim c);
  ignore (Cache.add c "dear2" () ~cost:9.0 ~size:10);
  Alcotest.(check bool) "cheap evicted" false (Cache.mem c "cheap");
  Alcotest.(check bool) "mid survives" true (Cache.mem c "mid")

let test_eviction_order_by_size () =
  (* equal cost: the big entry has the lower priority *)
  let c = mk ~capacity:2 () in
  ignore (Cache.add c "big" () ~cost:4.0 ~size:1000);
  ignore (Cache.add c "small" () ~cost:4.0 ~size:10);
  ignore (Cache.add c "other" () ~cost:4.0 ~size:10);
  Alcotest.(check bool) "big evicted" false (Cache.mem c "big");
  Alcotest.(check bool) "small survives" true (Cache.mem c "small")

let test_frequency_protects () =
  (* a cheap entry hit often outranks an expensive never-hit one:
     freq * cost / size with freq bumped per find *)
  let c = mk ~capacity:2 () in
  ignore (Cache.add c "hot_cheap" () ~cost:1.0 ~size:1);
  ignore (Cache.add c "cold_dear" () ~cost:3.0 ~size:1);
  for _ = 1 to 5 do
    ignore (Cache.find_opt c "hot_cheap")
  done;
  (* hot_cheap: freq 6 * 1.0 = 6; cold_dear: freq 1 * 3.0 = 3 *)
  Alcotest.(check (option string)) "cold is the victim" (Some "cold_dear")
    (Cache.victim c)

let test_tie_break_oldest_first () =
  let c = mk ~capacity:3 () in
  ignore (Cache.add c "a" () ~cost:2.0 ~size:2);
  ignore (Cache.add c "b" () ~cost:2.0 ~size:2);
  ignore (Cache.add c "c" () ~cost:2.0 ~size:2);
  Alcotest.(check (option string)) "oldest of equal priorities" (Some "a")
    (Cache.victim c);
  ignore (Cache.add c "d" () ~cost:2.0 ~size:2);
  Alcotest.(check bool) "a evicted" false (Cache.mem c "a");
  Alcotest.(check (option string)) "then b" (Some "b") (Cache.victim c)

let test_clock_aging () =
  (* after an eviction the clock equals the victim's priority, so a
     fresh arrival cheaper than every resident can still be admitted —
     its rank rides on the advanced clock while stale residents keep
     their old one *)
  let c = mk ~capacity:2 () in
  ignore (Cache.add c "old1" () ~cost:1.0 ~size:1);
  ignore (Cache.add c "old2" () ~cost:1.5 ~size:1);
  Alcotest.(check (float 1e-9)) "clock starts at 0" 0.0 (Cache.clock c);
  ignore (Cache.add c "new1" () ~cost:1.0 ~size:1);
  (* old1 (prio 1.0, oldest of the 1.0 tie with new1) evicted *)
  Alcotest.(check bool) "old1 evicted" false (Cache.mem c "old1");
  Alcotest.(check (float 1e-9)) "clock inherited victim prio" 1.0
    (Cache.clock c);
  let admitted = Cache.add c "fresh" () ~cost:0.1 ~size:1 in
  Alcotest.(check bool) "aged admission of a cheap entry" true admitted;
  Alcotest.(check (option (float 1e-9))) "fresh prio = clock + cost/size"
    (Some 1.1)
    (Cache.priority c "fresh");
  Alcotest.(check bool) "stale minimum evicted instead" false
    (Cache.mem c "new1")

let test_rejection () =
  (* residents outrank the candidate: the candidate itself is the
     victim and add returns false, residents untouched *)
  let c = mk ~capacity:2 () in
  ignore (Cache.add c "a" () ~cost:9.0 ~size:1);
  ignore (Cache.add c "b" () ~cost:9.0 ~size:1);
  let admitted = Cache.add c "junk" () ~cost:0.001 ~size:1000 in
  Alcotest.(check bool) "rejected" false admitted;
  Alcotest.(check bool) "a kept" true (Cache.mem c "a");
  Alcotest.(check bool) "b kept" true (Cache.mem c "b");
  Alcotest.(check int) "rejection counted" 1
    (Cache.stats c).Cache.rejections

let test_byte_budget () =
  let c = mk ~max_bytes:100 ~capacity:100 () in
  ignore (Cache.add c 1 () ~cost:1.0 ~size:40);
  ignore (Cache.add c 2 () ~cost:2.0 ~size:40);
  Alcotest.(check int) "resident bytes" 80 (Cache.resident_bytes c);
  (* 40 more bytes exceed 100: the cheapest resident goes *)
  ignore (Cache.add c 3 () ~cost:3.0 ~size:40);
  Alcotest.(check bool) "cheapest evicted" false (Cache.mem c 1);
  Alcotest.(check int) "bytes back under budget" 80 (Cache.resident_bytes c);
  (* an entry larger than the whole budget is rejected outright *)
  let admitted = Cache.add c 4 () ~cost:100.0 ~size:101 in
  Alcotest.(check bool) "oversized rejected" false admitted;
  Alcotest.(check bool) "residents untouched" true (Cache.mem c 2)

let test_duplicate_add_updates_in_place () =
  (* the Bounded_fifo regression: re-adding a resident key must update
     in place, not enqueue a duplicate whose eviction would remove the
     key while a later queue entry still names it *)
  let c = mk ~capacity:2 () in
  ignore (Cache.add c "k" "v1" ~cost:1.0 ~size:1);
  ignore (Cache.add c "k" "v2" ~cost:1.0 ~size:1);
  ignore (Cache.add c "k" "v3" ~cost:1.0 ~size:1);
  Alcotest.(check int) "one entry" 1 (Cache.length c);
  Alcotest.(check (option string)) "latest value" (Some "v3")
    (Cache.find_opt c "k");
  (* fill and overflow: k must be evicted exactly once, leaving the
     cache consistent *)
  ignore (Cache.add c "a" "a" ~cost:9.0 ~size:1);
  ignore (Cache.add c "b" "b" ~cost:9.0 ~size:1);
  Alcotest.(check int) "still bounded" 2 (Cache.length c);
  Alcotest.(check bool) "no ghost entry"
    true
    (Cache.mem c "a" && Cache.mem c "b" && not (Cache.mem c "k"))

let test_capacity_zero_disables () =
  let c = mk ~capacity:0 () in
  Alcotest.(check bool) "nothing admitted" false
    (Cache.add c 1 () ~cost:1.0 ~size:1);
  Alcotest.(check int) "empty" 0 (Cache.length c)

let test_shrink_evicts () =
  let c = mk ~capacity:4 () in
  ignore (Cache.add c 1 () ~cost:1.0 ~size:1);
  ignore (Cache.add c 2 () ~cost:2.0 ~size:1);
  ignore (Cache.add c 3 () ~cost:3.0 ~size:1);
  Cache.set_capacity c 1;
  Alcotest.(check int) "shrunk" 1 (Cache.length c);
  Alcotest.(check bool) "highest priority survives" true (Cache.mem c 3)

(* --- property: the victim is always the minimum (prio, seq) -------- *)

let prop_victim_is_minimum =
  QCheck.Test.make ~count:200
    ~name:"victim minimizes (priority, insertion order)"
    QCheck.(
      small_list (triple (int_range 1 5) (int_range 1 100) (int_range 1 100)))
    (fun ops ->
      let c = mk ~capacity:1000 () in
      List.iter
        (fun (k, cost, size) ->
          ignore
            (Cache.add c k () ~cost:(float_of_int cost) ~size))
        ops;
      match Cache.victim c with
      | None -> Cache.length c = 0
      | Some v ->
          let vp = Option.get (Cache.priority c v) in
          let ok = ref true in
          Cache.iter
            (fun k () ->
              let p = Option.get (Cache.priority c k) in
              if p < vp -. 1e-12 then ok := false)
            c;
          !ok)

(* --- concurrent single-flight over the pipeline cache --------------- *)

let test_single_flight_concurrent () =
  Mvl.Pipeline.cache_reset ();
  let n = 6 in
  let spec = "hypercube:7" in
  let results =
    Array.init n (fun _ ->
        Domain.spawn (fun () ->
            match Mvl.Pipeline.run_string ~layers:3 spec with
            | Ok r -> r
            | Error msg -> failwith msg))
    |> Array.map Domain.join
  in
  let stats = Mvl.Pipeline.cache_stats () in
  Alcotest.(check int) "exactly one build" 1
    stats.Mvl.Pipeline.misses;
  Alcotest.(check int) "everyone else hit or joined" (n - 1)
    (stats.Mvl.Pipeline.hits
    + stats.Mvl.Pipeline.coalesced);
  let first = results.(0).Mvl.Pipeline.layout in
  Array.iter
    (fun r ->
      Alcotest.(check bool) "same layout object shared" true
        (r.Mvl.Pipeline.layout == first))
    results;
  Mvl.Pipeline.cache_reset ()

let suite =
  [
    Alcotest.test_case "hit/miss stats" `Quick test_hit_miss_stats;
    Alcotest.test_case "eviction order: cost" `Quick
      test_eviction_order_by_cost;
    Alcotest.test_case "eviction order: size" `Quick
      test_eviction_order_by_size;
    Alcotest.test_case "frequency protects" `Quick test_frequency_protects;
    Alcotest.test_case "tie-break oldest first" `Quick
      test_tie_break_oldest_first;
    Alcotest.test_case "clock aging" `Quick test_clock_aging;
    Alcotest.test_case "candidate rejection" `Quick test_rejection;
    Alcotest.test_case "byte budget" `Quick test_byte_budget;
    Alcotest.test_case "duplicate add updates in place" `Quick
      test_duplicate_add_updates_in_place;
    Alcotest.test_case "capacity 0 disables" `Quick
      test_capacity_zero_disables;
    Alcotest.test_case "set_capacity shrink evicts" `Quick test_shrink_evicts;
    QCheck_alcotest.to_alcotest prop_victim_is_minimum;
    Alcotest.test_case "single-flight: N domains, one build" `Quick
      test_single_flight_concurrent;
  ]
