open Mvl_core

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

(* --- spec round-trips --------------------------------------------------- *)

let test_roundtrip_small_specs () =
  (* every registered family's printed spec string re-parses to the same
     spec — with and without its optional flags *)
  List.iter
    (fun e ->
      let base = Mvl.Registry.small_spec e in
      let with_flags =
        { base with Mvl.Registry.set_flags = List.map fst e.Mvl.Registry.flags }
      in
      List.iter
        (fun spec ->
          let s = Mvl.Registry.to_string spec in
          match Mvl.Registry.parse s with
          | Ok spec' ->
              Alcotest.(check string) (s ^ " round-trips")
                (Mvl.Registry.to_string spec')
                s
          | Error msg -> Alcotest.fail (s ^ ": " ^ msg))
        [ base; with_flags ])
    (Mvl.Registry.all ())

let test_every_listed_name_parses () =
  (* every name shown by `mvl list` is accepted by the parser *)
  List.iter
    (fun name ->
      match Mvl.Registry.find name with
      | None -> Alcotest.fail ("listed name not found: " ^ name)
      | Some e -> (
          let s = Mvl.Registry.to_string (Mvl.Registry.small_spec e) in
          match Mvl.Registry.parse s with
          | Ok spec ->
              Alcotest.(check string) (name ^ " family") name
                spec.Mvl.Registry.family
          | Error msg -> Alcotest.fail (s ^ ": " ^ msg)))
    (Mvl.Registry.names ())

let test_small_specs_build () =
  let fams = Mvl.Registry.all_small () in
  Alcotest.(check int) "one small instance per entry"
    (List.length (Mvl.Registry.all ()))
    (List.length fams)

(* --- malformed specs: Error with a usage message, never an exception ---- *)

let check_error name input fragments =
  match Mvl.Registry.parse input with
  | Ok spec ->
      Alcotest.fail
        (Printf.sprintf "%s: %S unexpectedly parsed as %s" name input
           (Mvl.Registry.to_string spec))
  | Error msg ->
      List.iter
        (fun frag ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: error mentions %S (got %S)" name frag msg)
            true (contains msg frag))
        fragments

let test_malformed_int () =
  (* the CLI's famous `hypercube:abc` must name the expected signature *)
  check_error "non-int" "hypercube:abc" [ "hypercube"; "abc"; "hypercube:N" ]

let test_wrong_arity () =
  check_error "too few" "kary:3" [ "kary"; "kary:K:N" ];
  check_error "too many" "hypercube:3:4" [ "hypercube:N" ];
  check_error "variadic too few" "torus" [ "torus" ]

let test_unknown_family () =
  check_error "unknown" "hypertorus:3" [ "hypertorus"; "known" ]

let test_flag_handling () =
  (match Mvl.Registry.parse "hypercube:5:fold" with
  | Ok spec ->
      Alcotest.(check (list string)) "fold flag" [ "fold" ]
        spec.Mvl.Registry.set_flags
  | Error msg -> Alcotest.fail msg);
  (* a flag a family does not declare is not silently accepted *)
  check_error "undeclared flag" "ccc:4:opt" [ "ccc" ]

let test_build_error_is_usage () =
  (* arity-correct but out-of-range parameters surface the constructor's
     message plus the usage line, as an Error (no exception) *)
  match Mvl.Registry.parse "kary:2:3" with
  | Error msg -> Alcotest.fail ("parse should accept kary:2:3: " ^ msg)
  | Ok spec -> (
      match Mvl.Registry.build spec with
      | Ok _ -> Alcotest.fail "kary k=2 should be rejected by the constructor"
      | Error msg ->
          Alcotest.(check bool) "mentions usage" true
            (contains msg "usage: kary:K:N"))

(* --- pipeline cache ------------------------------------------------------ *)

let test_cache_two_runs_one_construction () =
  Mvl.Pipeline.cache_reset ();
  let r1 = Mvl.Pipeline.run_exn ~layers:2 "hypercube:4" in
  let r2 = Mvl.Pipeline.run_exn ~layers:2 "hypercube:4" in
  let s = Mvl.Pipeline.cache_stats () in
  Alcotest.(check int) "one construction" 1 s.Mvl.Pipeline.misses;
  Alcotest.(check int) "one hit" 1 s.Mvl.Pipeline.hits;
  Alcotest.(check bool) "first run is fresh" false r1.Mvl.Pipeline.from_cache;
  Alcotest.(check bool) "second run is cached" true r2.Mvl.Pipeline.from_cache;
  Alcotest.(check int) "same area"
    r1.Mvl.Pipeline.metrics.Mvl.Layout.area
    r2.Mvl.Pipeline.metrics.Mvl.Layout.area

let test_cache_layer_sweep_constructs_each_once () =
  (* acceptance: a timing-style sweep over L plus a metrics+sim-style
     second pass constructs each distinct layout exactly once *)
  Mvl.Pipeline.cache_reset ();
  let sweep = [ 2; 4; 8 ] in
  List.iter
    (fun layers -> ignore (Mvl.Pipeline.run_exn ~layers "kary:3:3"))
    sweep;
  (* second pass over the same spec (metrics, then a sim-style reuse) *)
  List.iter
    (fun layers ->
      let r = Mvl.Pipeline.run_exn ~layers "kary:3:3" in
      let link =
        Mvl.Network_sim.link_latency_of_layout ~units_per_cycle:32
          r.Mvl.Pipeline.layout
      in
      ignore (link 0 1))
    sweep;
  let s = Mvl.Pipeline.cache_stats () in
  Alcotest.(check int) "three constructions" (List.length sweep)
    s.Mvl.Pipeline.misses;
  Alcotest.(check int) "three hits" (List.length sweep) s.Mvl.Pipeline.hits

let test_cache_bypass () =
  Mvl.Pipeline.cache_reset ();
  ignore (Mvl.Pipeline.run_exn ~cache:false ~layers:2 "tree:4");
  ignore (Mvl.Pipeline.run_exn ~cache:false ~layers:2 "tree:4");
  let s = Mvl.Pipeline.cache_stats () in
  Alcotest.(check int) "bypass leaves counters untouched" 0
    (s.Mvl.Pipeline.misses + s.Mvl.Pipeline.hits)

(* --- bounded FIFO (bugfix: re-insert left a duplicate queue entry,
   so eviction popped the stale duplicate and removed a live key while
   the queue grew without bound relative to the table) ---------------- *)

let test_fifo_reinsert_survives_eviction () =
  let c = Mvl.Bounded_fifo.create ~capacity:3 in
  Mvl.Bounded_fifo.add c "k" 1;
  Mvl.Bounded_fifo.add c "b" 2;
  (* re-insert while resident: refreshes the value and queue position *)
  Mvl.Bounded_fifo.add c "k" 10;
  Alcotest.(check int) "no duplicate queue entry after re-insert"
    (Mvl.Bounded_fifo.length c)
    (Mvl.Bounded_fifo.order_length c);
  Alcotest.(check (option int)) "re-insert updates the value" (Some 10)
    (Mvl.Bounded_fifo.find_opt c "k");
  (* fill to capacity, then overflow by one *)
  Mvl.Bounded_fifo.add c "c" 3;
  Mvl.Bounded_fifo.add c "d" 4;
  Alcotest.(check bool) "re-inserted key survives the eviction" true
    (Mvl.Bounded_fifo.mem c "k");
  Alcotest.(check bool) "oldest untouched key was evicted" false
    (Mvl.Bounded_fifo.mem c "b");
  Alcotest.(check int) "table stays at capacity" 3
    (Mvl.Bounded_fifo.length c);
  Alcotest.(check int) "queue length equals table length" 3
    (Mvl.Bounded_fifo.order_length c)

let test_fifo_eviction_order () =
  let c = Mvl.Bounded_fifo.create ~capacity:2 in
  Mvl.Bounded_fifo.add c "a" 1;
  Mvl.Bounded_fifo.add c "b" 2;
  Mvl.Bounded_fifo.add c "c" 3;
  Alcotest.(check bool) "first-in is first-out" false
    (Mvl.Bounded_fifo.mem c "a");
  Alcotest.(check (option string)) "next victim is the older survivor"
    (Some "b") (Mvl.Bounded_fifo.oldest c)

let test_fifo_capacity_zero_and_shrink () =
  let off = Mvl.Bounded_fifo.create ~capacity:0 in
  Mvl.Bounded_fifo.add off "a" 1;
  Alcotest.(check int) "capacity 0 disables insertion" 0
    (Mvl.Bounded_fifo.length off);
  let c = Mvl.Bounded_fifo.create ~capacity:4 in
  List.iter (fun (k, v) -> Mvl.Bounded_fifo.add c k v)
    [ ("a", 1); ("b", 2); ("c", 3); ("d", 4) ];
  Mvl.Bounded_fifo.set_capacity c 2;
  Alcotest.(check int) "shrink evicts immediately" 2
    (Mvl.Bounded_fifo.length c);
  Alcotest.(check bool) "oldest entries went first" true
    (Mvl.Bounded_fifo.mem c "c" && Mvl.Bounded_fifo.mem c "d");
  Alcotest.(check int) "queue mirrors table after shrink" 2
    (Mvl.Bounded_fifo.order_length c)

let test_pipeline_stages () =
  Mvl.Pipeline.cache_reset ();
  let r =
    Mvl.Pipeline.run_exn ~validate:Mvl.Check.Strict ~report:true ~layers:3
      "complete:9"
  in
  Alcotest.(check bool) "valid" true (Mvl.Pipeline.is_valid r);
  (match r.Mvl.Pipeline.report with
  | Some rep ->
      Alcotest.(check int) "report wire count"
        (Array.length (Mvl.Layout.wires r.Mvl.Pipeline.layout))
        rep.Mvl.Report.wire_count
  | None -> Alcotest.fail "report requested but absent");
  Alcotest.(check int) "five stage timings" 5
    (List.length r.Mvl.Pipeline.timings);
  Alcotest.(check bool) "total time is finite and non-negative" true
    (Mvl.Pipeline.total_seconds r >= 0.0)

let test_pipeline_error_paths () =
  (match Mvl.Pipeline.run_string ~layers:2 "hypercube:abc" with
  | Ok _ -> Alcotest.fail "hypercube:abc must not run"
  | Error _ -> ());
  match Mvl.Pipeline.run_string ~layers:2 "torus:2:2" with
  | Ok _ -> Alcotest.fail "torus side 2 must not run"
  | Error msg ->
      Alcotest.(check bool) "names the family" true
        (String.length msg > 5 && String.sub msg 0 5 = "torus")

let suite =
  [
    Alcotest.test_case "small specs round-trip" `Quick
      test_roundtrip_small_specs;
    Alcotest.test_case "every listed name parses" `Quick
      test_every_listed_name_parses;
    Alcotest.test_case "small specs build" `Slow test_small_specs_build;
    Alcotest.test_case "malformed int parameter" `Quick test_malformed_int;
    Alcotest.test_case "wrong arity" `Quick test_wrong_arity;
    Alcotest.test_case "unknown family" `Quick test_unknown_family;
    Alcotest.test_case "flag handling" `Quick test_flag_handling;
    Alcotest.test_case "constructor errors carry usage" `Quick
      test_build_error_is_usage;
    Alcotest.test_case "cache: two runs, one construction" `Quick
      test_cache_two_runs_one_construction;
    Alcotest.test_case "cache: layer sweep builds each L once" `Quick
      test_cache_layer_sweep_constructs_each_once;
    Alcotest.test_case "cache: bypass mode" `Quick test_cache_bypass;
    Alcotest.test_case "cache: re-insert leaves no stale duplicate" `Quick
      test_fifo_reinsert_survives_eviction;
    Alcotest.test_case "cache: FIFO eviction order" `Quick
      test_fifo_eviction_order;
    Alcotest.test_case "cache: capacity zero and shrink" `Quick
      test_fifo_capacity_zero_and_shrink;
    Alcotest.test_case "pipeline stages and timings" `Quick
      test_pipeline_stages;
    Alcotest.test_case "pipeline error paths" `Quick test_pipeline_error_paths;
  ]
