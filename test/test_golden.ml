(* Golden pins for large constructions.  The metric values below were
   produced by the record-based (pre-columnar) geometry pipeline; the
   columnar substrate must reproduce them exactly, so any drift in
   construction order, normalization, or measurement is caught here on
   real 10^3-10^4-node instances rather than toys. *)
open Mvl_core

let metrics spec layers =
  Mvl.Layout.metrics (Mvl.Pipeline.layout_exn ~cache:false ~layers spec)

let check_pins name (m : Mvl.Layout.metrics) ~area ~max_wire ~total_wire
    ~vias =
  Alcotest.(check int) (name ^ " area") area m.Mvl.Layout.area;
  Alcotest.(check int) (name ^ " max_wire") max_wire m.Mvl.Layout.max_wire;
  Alcotest.(check int)
    (name ^ " total_wire")
    total_wire m.Mvl.Layout.total_wire;
  Alcotest.(check int) (name ^ " vias") vias m.Mvl.Layout.vias

let test_hypercube_12 () =
  check_pins "hypercube:12 L4"
    (metrics "hypercube:12" 4)
    ~area:3682561 ~max_wire:1475 ~total_wire:8214528 ~vias:112128

let test_kary_4_6 () =
  check_pins "kary:4:6 L4" (metrics "kary:4:6" 4) ~area:3682561 ~max_wire:1475
    ~total_wire:8214528 ~vias:112128

let test_serialize_roundtrip_large () =
  (* byte-for-byte serialization stability on a 16384-node layout: the
     text form re-parses to an equal layout and re-serializes to the
     identical string *)
  let lay = Mvl.Pipeline.layout_exn ~cache:false ~layers:4 "hypercube:14" in
  let s = Mvl.Serialize.to_string lay in
  match Mvl.Serialize.of_string s with
  | Error msg -> Alcotest.fail ("reparse failed: " ^ msg)
  | Ok parsed ->
      Alcotest.(check bool) "roundtrip equal" true
        (Mvl.Serialize.roundtrip_equal lay parsed);
      Alcotest.(check bool) "re-serialization byte-identical" true
        (String.equal s (Mvl.Serialize.to_string parsed))

let suite =
  [
    Alcotest.test_case "hypercube:12 pins" `Slow test_hypercube_12;
    Alcotest.test_case "kary:4:6 pins" `Slow test_kary_4_6;
    Alcotest.test_case "serialize roundtrip 16k nodes" `Slow
      test_serialize_roundtrip_large;
  ]
