(* Mvl_serve: wire-protocol round trips and an in-process daemon
   driven over a real Unix socket.

   The load-bearing case is byte identity: for every registry family's
   small instance, the pretty-printed daemon reply must equal the
   document the one-shot pipeline produces for [--json --stable] —
   under four concurrent clients, so the answer also survives
   coalescing and cache admission.  The single-miss case pins the
   coalescing contract end to end: four clients racing on one cold key
   must cost exactly one pipeline build. *)

open Mvl_core
module P = Mvl_serve.Protocol
module S = Mvl_serve.Server
module C = Mvl_serve.Client

(* --- protocol round trips ---------------------------------------------- *)

let test_request_roundtrip () =
  List.iter
    (fun op ->
      let r = { P.id = 42; op } in
      let line = P.encode_request r in
      match P.parse_request line with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "round trip %s" (P.op_cost_hint op))
            true (r = r')
      | Error m -> Alcotest.fail m)
    [
      P.Layout { spec = "hypercube:6"; layers = 4; validate = true };
      P.Validate { spec = "kary:4:3"; layers = 2 };
      (* 0.25 is exact in binary, so the float survives re-encoding *)
      P.Sim { spec = "torus:4:4"; layers = 2; load = 0.25; pattern = "tornado" };
      P.Metrics { spec = "tree:4"; layers = 2 };
      P.Stats;
      P.Shutdown;
    ]

let test_request_defaults () =
  match P.parse_request "{\"op\":\"layout\",\"spec\":\"hypercube:5\"}" with
  | Ok { P.id; op = P.Layout { spec; layers; validate } } ->
      Alcotest.(check int) "id defaults to 0" 0 id;
      Alcotest.(check string) "spec" "hypercube:5" spec;
      Alcotest.(check int) "layers default" 2 layers;
      Alcotest.(check bool) "validate default" false validate
  | Ok _ -> Alcotest.fail "parsed to the wrong op"
  | Error m -> Alcotest.fail m

let test_request_rejects () =
  let bad l =
    match P.parse_request l with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "garbage" true (bad "not json");
  Alcotest.(check bool) "no op" true (bad "{\"id\":1}");
  Alcotest.(check bool) "unknown op" true (bad "{\"op\":\"frobnicate\"}")

let test_reply_roundtrip () =
  (match P.parse_reply (P.encode_reply_ok ~id:7 ~payload:"{\"a\":1}") with
  | Ok (7, Ok (Telemetry.Obj [ ("a", Telemetry.Int 1) ])) -> ()
  | Ok _ -> Alcotest.fail "ok reply parsed to the wrong shape"
  | Error m -> Alcotest.fail m);
  match P.parse_reply (P.encode_reply_error ~id:3 "boom") with
  | Ok (3, Error "boom") -> ()
  | Ok _ -> Alcotest.fail "error reply parsed to the wrong shape"
  | Error m -> Alcotest.fail m

let test_cache_keys () =
  let key op = Option.get (P.cache_key op) in
  Alcotest.(check bool)
    "validate flag separates keys" true
    (key (P.Layout { spec = "x"; layers = 2; validate = false })
    <> key (P.Layout { spec = "x"; layers = 2; validate = true }));
  Alcotest.(check bool)
    "layers separate keys" true
    (key (P.Layout { spec = "x"; layers = 2; validate = false })
    <> key (P.Layout { spec = "x"; layers = 4; validate = false }));
  Alcotest.(check (option string)) "stats is uncacheable" None
    (P.cache_key P.Stats);
  Alcotest.(check (option string)) "shutdown is uncacheable" None
    (P.cache_key P.Shutdown)

(* --- in-process daemon -------------------------------------------------- *)

let sock_path () =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "mvl-serve-test-%d.sock" (Unix.getpid ()))

let with_server f =
  let path = sock_path () in
  let t =
    S.create
      { S.default_config with S.addr = S.Unix_sock path; workers = 2 }
  in
  let d = Domain.spawn (fun () -> S.serve t) in
  Fun.protect
    ~finally:(fun () ->
      (match C.connect path with
      | Ok c ->
          ignore (C.rpc c { P.id = 0; op = P.Shutdown });
          C.close c
      | Error _ -> ());
      Domain.join d)
    (fun () -> f path)

let connect_exn path =
  match C.connect path with
  | Ok c -> c
  | Error m -> Alcotest.fail m

(* the document the one-shot CLI prints for --json --stable, computed
   through the same pipeline the CLI uses *)
let expected_layout spec_str layers =
  match Mvl.Pipeline.run_string ~layers spec_str with
  | Ok r ->
      Mvl.Telemetry.to_string ~pretty:true
        (Mvl.Telemetry.strip_volatile (Mvl.Pipeline.to_json r))
  | Error m -> Alcotest.fail m

let test_byte_identity_all_small () =
  with_server @@ fun path ->
  let specs =
    List.map
      (fun e -> Mvl.Registry.to_string (Mvl.Registry.small_spec e))
      (Mvl.Registry.all ())
  in
  let worker () =
    let c = connect_exn path in
    let out =
      List.map
        (fun s ->
          ( s,
            C.rpc_pretty c
              { P.id = 1; op = P.Layout { spec = s; layers = 2; validate = false } }
          ))
        specs
    in
    C.close c;
    out
  in
  let results =
    Array.init 4 (fun _ -> Domain.spawn worker) |> Array.map Domain.join
  in
  Array.iter
    (fun per_client ->
      List.iter
        (fun (s, r) ->
          match r with
          | Error m -> Alcotest.fail (s ^ ": " ^ m)
          | Ok pretty ->
              Alcotest.(check string)
                (s ^ " matches one-shot --json --stable")
                (expected_layout s 2) pretty)
        per_client)
    results

let test_coalesced_single_miss () =
  with_server @@ fun path ->
  Mvl.Pipeline.cache_reset ();
  let op = P.Layout { spec = "hypercube:8"; layers = 5; validate = false } in
  let worker () =
    let c = connect_exn path in
    let r = C.rpc_pretty c { P.id = 5; op } in
    C.close c;
    r
  in
  let results =
    Array.init 4 (fun _ -> Domain.spawn worker) |> Array.map Domain.join
  in
  let first =
    match results.(0) with Ok s -> s | Error m -> Alcotest.fail m
  in
  Array.iter
    (fun r ->
      match r with
      | Ok s -> Alcotest.(check string) "replies byte-identical" first s
      | Error m -> Alcotest.fail m)
    results;
  let stats = Mvl.Pipeline.cache_stats () in
  Alcotest.(check int) "exactly one pipeline build" 1
    stats.Mvl.Pipeline.misses;
  Mvl.Pipeline.cache_reset ()

let test_stats_op () =
  with_server @@ fun path ->
  let c = connect_exn path in
  ignore
    (C.rpc c
       {
         P.id = 1;
         op = P.Layout { spec = "hypercube:5"; layers = 2; validate = false };
       });
  (match C.rpc c { P.id = 2; op = P.Stats } with
  | Error m -> Alcotest.fail m
  | Ok j ->
      let jstr k =
        match Mvl.Telemetry.member k j with
        | Some (Mvl.Telemetry.String s) -> Some s
        | _ -> None
      in
      let jintf k j =
        match Option.bind j (Mvl.Telemetry.member k) with
        | Some (Mvl.Telemetry.Int i) -> i
        | _ -> -1
      in
      Alcotest.(check (option string))
        "schema" (Some "mvl.serve.stats/1") (jstr "schema");
      Alcotest.(check bool)
        "counts the layout request" true
        (jintf "requests" (Some j) >= 1);
      Alcotest.(check int) "one reply-cache admission" 1
        (jintf "admissions" (Mvl.Telemetry.member "reply_cache" j));
      Alcotest.(check bool)
        "pipeline block present" true
        (Mvl.Telemetry.member "pipeline" j <> None));
  C.close c

let test_error_reply () =
  with_server @@ fun path ->
  let c = connect_exn path in
  (match
     C.rpc c
       {
         P.id = 9;
         op = P.Layout { spec = "nosuch:3"; layers = 2; validate = false };
       }
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bogus spec must be refused");
  (* and the connection stays usable after an error reply *)
  (match
     C.rpc c
       {
         P.id = 10;
         op = P.Layout { spec = "hypercube:5"; layers = 2; validate = false };
       }
   with
  | Ok _ -> ()
  | Error m -> Alcotest.fail m);
  C.close c

let suite =
  [
    Alcotest.test_case "request round trip" `Quick test_request_roundtrip;
    Alcotest.test_case "request field defaults" `Quick test_request_defaults;
    Alcotest.test_case "malformed requests refused" `Quick
      test_request_rejects;
    Alcotest.test_case "reply round trip" `Quick test_reply_roundtrip;
    Alcotest.test_case "cache keys" `Quick test_cache_keys;
    Alcotest.test_case "byte identity: all small specs, 4 clients" `Quick
      test_byte_identity_all_small;
    Alcotest.test_case "4 racing clients, one build" `Quick
      test_coalesced_single_miss;
    Alcotest.test_case "stats op" `Quick test_stats_op;
    Alcotest.test_case "error reply keeps the connection" `Quick
      test_error_reply;
  ]
