(* Ring_buffer / Int_ring: the queues under the simulator engines.
   Both are exercised against a plain list model through wraparound,
   growth and interleaved push/pop traffic — FIFO order is what the
   engines' determinism rests on. *)

module Rb = Mvl_ring.Ring_buffer
module Ir = Mvl_ring.Int_ring

let test_basic_fifo () =
  let q = Rb.create ~dummy:(-1) () in
  Alcotest.(check bool) "fresh empty" true (Rb.is_empty q);
  for i = 0 to 9 do
    Rb.push q i
  done;
  Alcotest.(check int) "length" 10 (Rb.length q);
  for i = 0 to 9 do
    Alcotest.(check int) "fifo" i (Rb.pop q)
  done;
  Alcotest.(check bool) "drained" true (Rb.is_empty q);
  Alcotest.(check bool) "pop empty raises" true
    (match Rb.pop q with _ -> false | exception Invalid_argument _ -> true);
  Alcotest.(check (option int)) "pop_opt empty" None (Rb.pop_opt q)

let test_wraparound () =
  (* stay below capacity while cycling many times: the head wraps the
     physical array repeatedly and order must survive every wrap *)
  let q = Rb.create ~capacity:8 ~dummy:0 () in
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 200 do
    for _ = 1 to 5 do
      Rb.push q !next_in;
      incr next_in
    done;
    for _ = 1 to 5 do
      Alcotest.(check int) "wrap order" !next_out (Rb.pop q);
      incr next_out
    done
  done;
  Alcotest.(check int) "capacity never grew" 8 (Rb.capacity q)

let test_growth () =
  let q = Rb.create ~capacity:4 ~dummy:(-1) () in
  (* desynchronize head from 0 so growth has to unwrap a split queue *)
  Rb.push q (-100);
  Rb.push q (-100);
  ignore (Rb.pop q);
  ignore (Rb.pop q);
  for i = 0 to 99 do
    Rb.push q i
  done;
  Alcotest.(check int) "length" 100 (Rb.length q);
  Alcotest.(check bool) "grew" true (Rb.capacity q >= 100);
  for i = 0 to 99 do
    Alcotest.(check int) "order across growth" i (Rb.get q i)
  done;
  for i = 0 to 99 do
    Alcotest.(check int) "pop across growth" i (Rb.pop q)
  done

let test_interleaved_against_model () =
  (* random interleaving of push/pop checked against a list model *)
  let q = Rb.create ~capacity:2 ~dummy:0 () in
  let model = Queue.create () in
  let rng = Mvl_core.Mvl.Rng.create ~seed:42 in
  for step = 1 to 2000 do
    if Mvl_core.Mvl.Rng.bool rng ~p:0.55 then begin
      Rb.push q step;
      Queue.push step model
    end
    else if not (Queue.is_empty model) then
      Alcotest.(check int) "model agrees" (Queue.pop model) (Rb.pop q);
    Alcotest.(check int) "lengths agree" (Queue.length model) (Rb.length q)
  done;
  while not (Queue.is_empty model) do
    Alcotest.(check int) "drain agrees" (Queue.pop model) (Rb.pop q)
  done;
  Alcotest.(check bool) "both empty" true (Rb.is_empty q)

let test_drop_front_and_set () =
  let q = Rb.create ~capacity:4 ~dummy:0 () in
  for i = 0 to 9 do
    Rb.push q i
  done;
  Rb.drop_front q 4;
  Alcotest.(check int) "length after drop" 6 (Rb.length q);
  Alcotest.(check int) "front after drop" 4 (Rb.get q 0);
  Rb.set q 0 99;
  Alcotest.(check int) "set visible" 99 (Rb.pop q);
  Alcotest.(check int) "rest intact" 5 (Rb.pop q);
  Alcotest.(check bool) "drop too many raises" true
    (match Rb.drop_front q 100 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_bounds_and_clear () =
  let q = Rb.create ~dummy:(-7) () in
  Rb.push q 1;
  Alcotest.(check bool) "get oob raises" true
    (match Rb.get q 1 with _ -> false | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "get negative raises" true
    (match Rb.get q (-1) with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Rb.clear q;
  Alcotest.(check int) "cleared" 0 (Rb.length q);
  Rb.push q 5;
  Alcotest.(check int) "usable after clear" 5 (Rb.pop q)

let test_iter () =
  let q = Rb.create ~capacity:4 ~dummy:0 () in
  for i = 0 to 5 do
    Rb.push q i
  done;
  Rb.drop_front q 2;
  Rb.push q 6;
  Rb.push q 7;
  let seen = ref [] in
  Rb.iter (fun x -> seen := x :: !seen) q;
  Alcotest.(check (list int)) "iter order" [ 2; 3; 4; 5; 6; 7 ]
    (List.rev !seen)

(* --- the int specialization ---------------------------------------- *)

let test_int_ring_fifo_wrap_growth () =
  let q = Ir.create ~capacity:4 () in
  (* cycle through many wraps below capacity *)
  let next_in = ref 0 and next_out = ref 0 in
  for _ = 1 to 100 do
    for _ = 1 to 3 do
      Ir.push q !next_in;
      incr next_in
    done;
    for _ = 1 to 3 do
      Alcotest.(check int) "wrap order" !next_out (Ir.pop q);
      incr next_out
    done
  done;
  Alcotest.(check int) "no growth yet" 4 (Ir.capacity q);
  (* then grow from a wrapped position *)
  for i = 0 to 99 do
    Ir.push q i
  done;
  Alcotest.(check bool) "grew" true (Ir.capacity q >= 100);
  for i = 0 to 99 do
    Alcotest.(check int) "order across growth" i (Ir.get q i)
  done;
  Ir.drop_front q 10;
  Alcotest.(check int) "O(1) drop" 90 (Ir.length q);
  Alcotest.(check int) "front after drop" 10 (Ir.pop q);
  Ir.set q 0 123;
  Alcotest.(check int) "set/get" 123 (Ir.get q 0);
  Alcotest.(check int) "unsafe get" 123 (Ir.unsafe_get q 0);
  Ir.clear q;
  Alcotest.(check bool) "cleared" true (Ir.is_empty q);
  Alcotest.(check bool) "pop empty raises" true
    (match Ir.pop q with _ -> false | exception Invalid_argument _ -> true)

let test_int_ring_interleaved () =
  let q = Ir.create () in
  let model = Queue.create () in
  let rng = Mvl_core.Mvl.Rng.create ~seed:9 in
  for step = 1 to 2000 do
    if Mvl_core.Mvl.Rng.bool rng ~p:0.6 then begin
      Ir.push q step;
      Queue.push step model
    end
    else if not (Queue.is_empty model) then
      Alcotest.(check int) "model agrees" (Queue.pop model) (Ir.pop q)
  done;
  let seen = ref [] in
  Ir.iter (fun x -> seen := x :: !seen) q;
  Alcotest.(check (list int))
    "iter equals model drain"
    (List.of_seq (Queue.to_seq model))
    (List.rev !seen)

let suite =
  [
    Alcotest.test_case "basic fifo" `Quick test_basic_fifo;
    Alcotest.test_case "wraparound" `Quick test_wraparound;
    Alcotest.test_case "growth" `Quick test_growth;
    Alcotest.test_case "interleaved push/pop" `Quick
      test_interleaved_against_model;
    Alcotest.test_case "drop_front and set" `Quick test_drop_front_and_set;
    Alcotest.test_case "bounds and clear" `Quick test_bounds_and_clear;
    Alcotest.test_case "iter" `Quick test_iter;
    Alcotest.test_case "int ring fifo/wrap/growth" `Quick
      test_int_ring_fifo_wrap_growth;
    Alcotest.test_case "int ring interleaved" `Quick test_int_ring_interleaved;
  ]
