open Mvl_core

let strict_valid name lay =
  match Mvl.Check.validate ~mode:Mvl.Check.Strict lay with
  | [] -> ()
  | v :: _ ->
      Alcotest.fail (Format.asprintf "%s: %a" name Mvl.Check.pp_violation v)

let test_folded_hypercube_layouts () =
  List.iter
    (fun (n, layers) ->
      let fam = Mvl.Families.folded_hypercube n in
      let lay = fam.Mvl.Families.layout ~layers in
      strict_valid (Printf.sprintf "folded(%d) L=%d" n layers) lay;
      Alcotest.(check int) "all edges routed"
        (Mvl.Graph.m fam.Mvl.Families.graph)
        (Array.length (Mvl.Layout.wires lay)))
    [ (3, 2); (4, 2); (5, 4); (6, 6); (5, 3) ]

let test_enhanced_cube_layouts () =
  List.iter
    (fun (n, layers, seed) ->
      let fam = Mvl.Families.enhanced_cube ~n ~seed in
      strict_valid
        (Printf.sprintf "enhanced(%d) L=%d" n layers)
        (fam.Mvl.Families.layout ~layers))
    [ (4, 2, 1); (5, 4, 2); (6, 4, 3); (5, 5, 4) ]

let test_folded_larger_than_plain () =
  let plain = Mvl.Families.hypercube 6 in
  let folded = Mvl.Families.folded_hypercube 6 in
  let a_plain =
    (Mvl.Layout.metrics (plain.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  let a_folded =
    (Mvl.Layout.metrics (folded.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  Alcotest.(check bool) "diameter links cost area" true (a_folded > a_plain);
  (* ... but within the paper's 49/16 factor (plus lower-order terms) *)
  Alcotest.(check bool) "within paper bound region" true
    (float_of_int a_folded /. float_of_int a_plain < 49.0 /. 16.0 +. 1.0)

let test_enhanced_larger_than_folded () =
  (* N random links vs N/2 diameter links *)
  let folded = Mvl.Families.folded_hypercube 6 in
  let enhanced = Mvl.Families.enhanced_cube ~n:6 ~seed:5 in
  let a_f =
    (Mvl.Layout.metrics (folded.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  let a_e =
    (Mvl.Layout.metrics (enhanced.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  Alcotest.(check bool) "more extra links, more area" true (a_e > a_f)

let test_extra_links_profit_from_layers () =
  let fam = Mvl.Families.folded_hypercube 8 in
  let a2 = (Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2)).Mvl.Layout.area in
  let a8 = (Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:8)).Mvl.Layout.area in
  Alcotest.(check bool) "layers shrink the folded cube too" true
    (float_of_int a2 /. float_of_int a8 > 2.5)

let test_baseline_fold_thompson () =
  let fam = Mvl.Families.hypercube 8 in
  let m2 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2) in
  let folded = Mvl.Baselines.fold_thompson m2 ~layers:8 in
  (* area shrinks ~L/2 = 4x, volume stays put, wires untouched *)
  let ratio = float_of_int m2.Mvl.Layout.area /. float_of_int folded.Mvl.Layout.area in
  Alcotest.(check bool) "area ratio close to 4" true
    (ratio > 3.5 && ratio <= 4.5);
  (* folding leaves the volume essentially unchanged (2A), up to the
     ceil() of the last slab *)
  Alcotest.(check bool) "volume unchanged" true
    (abs (folded.Mvl.Layout.volume - (2 * m2.Mvl.Layout.area))
    <= 8 * m2.Mvl.Layout.width);
  Alcotest.(check int) "max wire unchanged" m2.Mvl.Layout.max_wire
    folded.Mvl.Layout.max_wire;
  (try
     ignore (Mvl.Baselines.fold_thompson m2 ~layers:3);
     Alcotest.fail "odd layer folding accepted"
   with Invalid_argument _ -> ());
  let m4 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:4) in
  try
    ignore (Mvl.Baselines.fold_thompson m4 ~layers:8);
    Alcotest.fail "non-thompson input accepted"
  with Invalid_argument _ -> ()

let test_baseline_volume_comparison () =
  (* §2.2: direct multilayer reduces volume by ~L/2; folding does not *)
  let fam = Mvl.Families.hypercube 10 in
  let m2 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2) in
  let m8 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:8) in
  let folded8 = Mvl.Baselines.fold_thompson m2 ~layers:8 in
  Alcotest.(check bool) "direct volume beats folded volume" true
    (m8.Mvl.Layout.volume < folded8.Mvl.Layout.volume);
  Alcotest.(check bool) "direct maxwire beats folded maxwire" true
    (m8.Mvl.Layout.max_wire < folded8.Mvl.Layout.max_wire)

let test_baseline_collinear_multilayer () =
  let c = Mvl.Collinear_hypercube.create 8 in
  let m2 = Mvl.Baselines.collinear_multilayer c ~layers:2 in
  let m8 = Mvl.Baselines.collinear_multilayer c ~layers:8 in
  (* area gain bounded by ~L/2 *)
  let gain = float_of_int m2.Mvl.Layout.area /. float_of_int m8.Mvl.Layout.area in
  Alcotest.(check bool) "collinear gain is at most ~L/2" true (gain <= 4.5);
  (* the max wire barely moves: it is dominated by the x span *)
  Alcotest.(check bool) "collinear maxwire stays put" true
    (float_of_int m2.Mvl.Layout.max_wire
     /. float_of_int m8.Mvl.Layout.max_wire
    < 1.5)

let suite =
  [
    Alcotest.test_case "folded hypercube layouts" `Quick
      test_folded_hypercube_layouts;
    Alcotest.test_case "enhanced cube layouts" `Quick test_enhanced_cube_layouts;
    Alcotest.test_case "folded vs plain area" `Quick test_folded_larger_than_plain;
    Alcotest.test_case "enhanced vs folded area" `Quick
      test_enhanced_larger_than_folded;
    Alcotest.test_case "extra links profit from layers" `Quick
      test_extra_links_profit_from_layers;
    Alcotest.test_case "fold-thompson baseline" `Quick test_baseline_fold_thompson;
    Alcotest.test_case "volume comparison" `Quick test_baseline_volume_comparison;
    Alcotest.test_case "collinear multilayer baseline" `Quick
      test_baseline_collinear_multilayer;
  ]
