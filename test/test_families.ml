open Mvl_core

let test_all_small_strict_valid () =
  List.iter
    (fun fam ->
      List.iter
        (fun layers ->
          let lay = fam.Mvl.Families.layout ~layers in
          match Mvl.Check.validate ~mode:Mvl.Check.Strict lay with
          | [] -> ()
          | v :: _ ->
              Alcotest.fail
                (Format.asprintf "%s L=%d: %a" fam.Mvl.Families.name layers
                   Mvl.Check.pp_violation v))
        [ 2; 3; 4 ])
    (Mvl.Registry.all_small ())

let test_graph_sizes () =
  List.iter
    (fun fam ->
      Alcotest.(check int)
        (fam.Mvl.Families.name ^ " node count")
        fam.Mvl.Families.n_nodes
        (Mvl.Graph.n fam.Mvl.Families.graph))
    (Mvl.Registry.all_small ())

let test_area_ratio_trends_to_one () =
  (* the measured/paper area ratio must fall as N grows (the o() terms
     shrink relatively) *)
  let ratio n =
    let fam = Mvl.Families.hypercube n in
    let m = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2) in
    match fam.Mvl.Families.paper_area with
    | Some f -> float_of_int m.Mvl.Layout.area /. f ~layers:2
    | None -> Alcotest.fail "hypercube has a paper area"
  in
  let r8 = ratio 8 and r10 = ratio 10 and r12 = ratio 12 in
  Alcotest.(check bool) "monotone decreasing" true (r12 < r10 && r10 < r8);
  Alcotest.(check bool) "already below 2 at n=12" true (r12 < 2.0)

let test_kary_ratio () =
  (* for n = 2 the per-gap track count is a constant (~2), so node
     footprints dominate and the measured/paper ratio is large; raising
     n makes the gaps dominate and the ratio fall towards 1 (the bench's
     E4 sweep shows the full trend) *)
  let ratio ~k ~n =
    let fam = Mvl.Families.kary ~k ~n () in
    let m = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2) in
    match fam.Mvl.Families.paper_area with
    | Some f -> float_of_int m.Mvl.Layout.area /. f ~layers:2
    | None -> Alcotest.fail "kary has a paper area"
  in
  let r2 = ratio ~k:4 ~n:2 and r4 = ratio ~k:4 ~n:4 in
  Alcotest.(check bool) "never below the leading term" true
    (r2 > 0.9 && r4 > 0.9);
  Alcotest.(check bool) "ratio falls as n grows" true (r4 < r2);
  (* at k=4, n=4 the node bands are still as wide as the gaps, which
     costs ((tracks + node)/tracks)^2 ~ 4.4x; the bench sweeps larger
     instances where this factor fades *)
  Alcotest.(check bool) "within the small-instance envelope at n=4" true
    (r4 < 5.0)

let test_layer_sweep_improves_area () =
  List.iter
    (fun fam ->
      let a2 = (Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2)).Mvl.Layout.area in
      let a6 = (Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:6)).Mvl.Layout.area in
      Alcotest.(check bool)
        (fam.Mvl.Families.name ^ " profits from layers")
        true (a6 < a2))
    [
      Mvl.Families.hypercube 8;
      Mvl.Families.kary ~k:4 ~n:3 ();
      Mvl.Families.generalized_hypercube ~r:4 ~n:2 ();
      Mvl.Families.hsn ~levels:3 ~radix:4;
      Mvl.Families.ccc 5;
    ]

let test_fold_option_reduces_maxwire () =
  let plain = Mvl.Families.kary ~k:8 ~n:2 () in
  let folded = Mvl.Families.kary ~fold:true ~k:8 ~n:2 () in
  let w_plain =
    (Mvl.Layout.metrics (plain.Mvl.Families.layout ~layers:2)).Mvl.Layout.max_wire
  in
  let w_folded =
    (Mvl.Layout.metrics (folded.Mvl.Families.layout ~layers:2)).Mvl.Layout.max_wire
  in
  Alcotest.(check bool) "folded torus has shorter wires" true
    (w_folded < w_plain);
  (* and the area stays the same (identical track counts) *)
  let a_plain =
    (Mvl.Layout.metrics (plain.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  let a_folded =
    (Mvl.Layout.metrics (folded.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  Alcotest.(check int) "same area" a_plain a_folded

let test_mesh_and_tree () =
  let mesh = Mvl.Families.mesh ~dims:[| 8; 8 |] in
  Alcotest.(check int) "mesh nodes" 64 mesh.Mvl.Families.n_nodes;
  Alcotest.(check bool) "mesh valid" true
    (Mvl.Check.is_valid ~mode:Mvl.Check.Strict (mesh.Mvl.Families.layout ~layers:2));
  let tree = Mvl.Families.binary_tree 7 in
  Alcotest.(check int) "tree nodes" 127 tree.Mvl.Families.n_nodes;
  Alcotest.(check bool) "tree valid" true
    (Mvl.Check.is_valid ~mode:Mvl.Check.Strict (tree.Mvl.Families.layout ~layers:2));
  (* the in-order tree layout uses at most [levels] tracks *)
  let c =
    Mvl.Collinear.of_order tree.Mvl.Families.graph
      ~node_at:(Mvl.Tree.in_order 7)
  in
  Alcotest.(check bool) "tree cutwidth bound" true (c.Mvl.Collinear.tracks <= 7);
  (* ordering: mesh < hypercube in area at equal node count *)
  let hc = Mvl.Families.hypercube 6 in
  let area fam =
    (Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:2)).Mvl.Layout.area
  in
  Alcotest.(check bool) "mesh cheaper than hypercube" true
    (area (Mvl.Families.mesh ~dims:[| 8; 8 |]) < area hc)

let test_generic_products () =
  (* clique rows x ring columns *)
  let fam =
    Mvl.Families.generic_product
      ~row:(Mvl.Collinear_complete.create 5)
      ~col:(Mvl.Collinear_ring.create 6)
  in
  Alcotest.(check int) "nodes" 30 fam.Mvl.Families.n_nodes;
  Alcotest.(check bool) "K5 x C6 valid" true
    (Mvl.Check.is_valid ~mode:Mvl.Check.Strict (fam.Mvl.Families.layout ~layers:3));
  (* hypercube rows x path columns *)
  let fam2 =
    Mvl.Families.generic_product
      ~row:(Mvl.Collinear_hypercube.create 3)
      ~col:(Mvl.Collinear.natural (Mvl.Mesh.path 5))
  in
  Alcotest.(check bool) "Q3 x P5 valid" true
    (Mvl.Check.is_valid ~mode:Mvl.Check.Strict (fam2.Mvl.Families.layout ~layers:4));
  (* structure: (u,v)-(u',v) edges iff u-u' in the row factor *)
  Alcotest.(check bool) "row edge present" true
    (Mvl.Graph.mem_edge fam.Mvl.Families.graph 0 1);
  Alcotest.(check bool) "col edge present" true
    (Mvl.Graph.mem_edge fam.Mvl.Families.graph 0 5)

let test_cayley_layouts_valid () =
  List.iter
    (fun fam ->
      let lay = fam.Mvl.Families.layout ~layers:4 in
      Alcotest.(check bool) (fam.Mvl.Families.name ^ " valid") true
        (Mvl.Check.is_valid ~mode:Mvl.Check.Strict lay))
    [
      Mvl.Families.star 4;
      Mvl.Families.pancake 4;
      Mvl.Families.bubble_sort 4;
      Mvl.Families.transposition 4;
    ]

let test_torus_family () =
  let fam = Mvl.Families.torus ~dims:[| 3; 5; 4 |] () in
  Alcotest.(check int) "node count" 60 fam.Mvl.Families.n_nodes;
  Alcotest.(check bool) "regular degree 6" true
    (Mvl.Graph.is_regular fam.Mvl.Families.graph
    && Mvl.Graph.max_degree fam.Mvl.Families.graph = 6);
  List.iter
    (fun layers ->
      Alcotest.(check bool)
        (Printf.sprintf "torus L=%d valid" layers)
        true
        (Mvl.Check.is_valid ~mode:Mvl.Check.Strict
           (fam.Mvl.Families.layout ~layers)))
    [ 2; 3; 4 ];
  (* the uniform torus agrees with the k-ary n-cube generator *)
  let t = Mvl.Families.torus ~dims:[| 4; 4; 4 |] () in
  Alcotest.(check bool) "uniform torus = 4-ary 3-cube" true
    (Mvl.Graph.equal t.Mvl.Families.graph (Mvl.Kary_ncube.create ~k:4 ~n:3))

let prop_random_torus_valid =
  QCheck.Test.make ~count:25 ~name:"random mixed tori lay out valid"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 3) (int_range 3 5))
        (int_range 2 5))
    (fun (dims, layers) ->
      let dims = Array.of_list dims in
      let fam = Mvl.Families.torus ~dims () in
      Mvl.Check.is_valid ~mode:Mvl.Check.Strict
        (fam.Mvl.Families.layout ~layers))

let suite =
  [
    Alcotest.test_case "all families strict-valid at L=2..4" `Slow
      test_all_small_strict_valid;
    Alcotest.test_case "mixed-radix torus" `Quick test_torus_family;
    QCheck_alcotest.to_alcotest prop_random_torus_valid;
    Alcotest.test_case "node counts" `Quick test_graph_sizes;
    Alcotest.test_case "hypercube ratio trends to 1" `Slow
      test_area_ratio_trends_to_one;
    Alcotest.test_case "kary ratio sane" `Quick test_kary_ratio;
    Alcotest.test_case "layers improve area everywhere" `Slow
      test_layer_sweep_improves_area;
    Alcotest.test_case "fold option shortens wires" `Quick
      test_fold_option_reduces_maxwire;
    Alcotest.test_case "mesh and binary tree" `Quick test_mesh_and_tree;
    Alcotest.test_case "generic heterogeneous products" `Quick
      test_generic_products;
    Alcotest.test_case "cayley layouts valid" `Quick test_cayley_layouts_valid;
  ]
