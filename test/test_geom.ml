(* The columnar geometry store: Builder semantics (dedupe, one-axis
   validation, id-order independence, error cases), view
   materialization, and equivalence with the record-based of_wires
   path. *)
open Mvl_core

let pt x y z = Mvl.Point.make ~x ~y ~z

let raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

(* two nodes joined by one bent wire, built through the Builder *)
let small_geom ?(swap_emit_order = false) () =
  let b = Mvl.Geom.Builder.create ~n_nodes:2 ~n_wires:2 in
  Mvl.Geom.Builder.set_node b 0 ~x0:0 ~y0:0 ~x1:1 ~y1:1;
  Mvl.Geom.Builder.set_node b 1 ~x0:5 ~y0:0 ~x1:6 ~y1:1;
  let emit_0 () =
    Mvl.Geom.Builder.start_wire b ~id:0 ~u:0 ~v:1;
    Mvl.Geom.Builder.point b ~x:1 ~y:0 ~z:1;
    Mvl.Geom.Builder.point b ~x:3 ~y:0 ~z:1;
    Mvl.Geom.Builder.point b ~x:5 ~y:0 ~z:1
  and emit_1 () =
    Mvl.Geom.Builder.start_wire b ~id:1 ~u:0 ~v:1;
    Mvl.Geom.Builder.point b ~x:1 ~y:1 ~z:1;
    Mvl.Geom.Builder.point b ~x:3 ~y:1 ~z:1;
    Mvl.Geom.Builder.point b ~x:3 ~y:1 ~z:2;
    Mvl.Geom.Builder.point b ~x:5 ~y:1 ~z:2
  in
  if swap_emit_order then (emit_1 (); emit_0 ()) else (emit_0 (); emit_1 ());
  Mvl.Geom.Builder.build b

let test_builder_columns () =
  let g = small_geom () in
  Alcotest.(check int) "n_nodes" 2 g.Mvl.Geom.n_nodes;
  Alcotest.(check int) "n_wires" 2 g.Mvl.Geom.n_wires;
  Alcotest.(check int) "n_points" 7 g.Mvl.Geom.n_points;
  Alcotest.(check int) "n_segments" 5 (Mvl.Geom.n_segments g);
  Alcotest.(check int) "wire 0 offset" 0 g.Mvl.Geom.wire_off.{0};
  Alcotest.(check int) "wire 1 offset" 3 g.Mvl.Geom.wire_off.{1};
  Alcotest.(check int) "end offset" 7 g.Mvl.Geom.wire_off.{2};
  Alcotest.(check int) "wire 0 length" 4 (Mvl.Geom.wire_length_xy g 0);
  Alcotest.(check int) "wire 1 grid length" 5 (Mvl.Geom.wire_length g 1)

let test_out_of_order_ids () =
  (* emitting wire 1 before wire 0 must yield identical columns *)
  Alcotest.(check bool) "id order independent" true
    (Mvl.Geom.equal (small_geom ()) (small_geom ~swap_emit_order:true ()))

let test_builder_dedupes () =
  let b = Mvl.Geom.Builder.create ~n_nodes:0 ~n_wires:1 in
  Mvl.Geom.Builder.start_wire b ~id:0 ~u:0 ~v:1;
  Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
  Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
  Mvl.Geom.Builder.point b ~x:4 ~y:0 ~z:1;
  Mvl.Geom.Builder.point b ~x:4 ~y:0 ~z:1;
  let g = Mvl.Geom.Builder.build b in
  Alcotest.(check int) "duplicates dropped" 2 g.Mvl.Geom.n_points

let test_builder_rejects_diagonal () =
  raises_invalid "diagonal step" (fun () ->
      let b = Mvl.Geom.Builder.create ~n_nodes:0 ~n_wires:1 in
      Mvl.Geom.Builder.start_wire b ~id:0 ~u:0 ~v:1;
      Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
      Mvl.Geom.Builder.point b ~x:1 ~y:1 ~z:1)

let test_builder_rejects_double_emit () =
  raises_invalid "double emit" (fun () ->
      let b = Mvl.Geom.Builder.create ~n_nodes:0 ~n_wires:2 in
      Mvl.Geom.Builder.start_wire b ~id:0 ~u:0 ~v:1;
      Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
      Mvl.Geom.Builder.point b ~x:1 ~y:0 ~z:1;
      Mvl.Geom.Builder.start_wire b ~id:0 ~u:0 ~v:1)

let test_builder_rejects_unrouted () =
  raises_invalid "unrouted wire" (fun () ->
      let b = Mvl.Geom.Builder.create ~n_nodes:0 ~n_wires:2 in
      Mvl.Geom.Builder.start_wire b ~id:1 ~u:0 ~v:1;
      Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
      Mvl.Geom.Builder.point b ~x:1 ~y:0 ~z:1;
      Mvl.Geom.Builder.build b)

let test_builder_rejects_short_wire () =
  raises_invalid "one-point wire" (fun () ->
      let b = Mvl.Geom.Builder.create ~n_nodes:0 ~n_wires:1 in
      Mvl.Geom.Builder.start_wire b ~id:0 ~u:0 ~v:1;
      Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
      Mvl.Geom.Builder.point b ~x:0 ~y:0 ~z:1;
      (* duplicate collapses to a single point *)
      Mvl.Geom.Builder.build b)

let test_builder_rejects_unset_node () =
  raises_invalid "unset node" (fun () ->
      let b = Mvl.Geom.Builder.create ~n_nodes:1 ~n_wires:0 in
      Mvl.Geom.Builder.build b)

let test_views () =
  let g = small_geom () in
  let nodes = Mvl.Geom.nodes_view g in
  Alcotest.(check bool) "node 1 rect" true
    (nodes.(1) = Mvl.Rect.make ~x0:5 ~y0:0 ~x1:6 ~y1:1);
  let w = Mvl.Geom.wire_view g 0 in
  let a, z = Mvl.Wire.endpoints w in
  Alcotest.(check bool) "wire 0 endpoints" true
    (Mvl.Point.equal a (pt 1 0 1) && Mvl.Point.equal z (pt 5 0 1));
  Alcotest.(check int) "wire 1 segments" 3
    (Array.length (Mvl.Wire.segments (Mvl.Geom.wire_view g 1)))

let test_of_wires_matches_builder () =
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:0 ~x1:1 ~y1:1;
      Mvl.Rect.make ~x0:5 ~y0:0 ~x1:6 ~y1:1;
    |]
  in
  let wires =
    [|
      Mvl.Wire.make ~edge:(0, 1) [ pt 1 0 1; pt 3 0 1; pt 5 0 1 ];
      Mvl.Wire.make ~edge:(0, 1)
        [ pt 1 1 1; pt 3 1 1; pt 3 1 2; pt 5 1 2 ];
    |]
  in
  Alcotest.(check bool) "of_wires = Builder" true
    (Mvl.Geom.equal (Mvl.Geom.of_wires ~nodes ~wires) (small_geom ()))

let test_translate () =
  let g = Mvl.Geom.translate (small_geom ()) ~dx:10 ~dy:(-3) in
  Alcotest.(check bool) "bbox shifted" true
    (Mvl.Geom.bounding_box g = Mvl.Rect.make ~x0:10 ~y0:(-3) ~x1:16 ~y1:(-2));
  Alcotest.(check int) "point x shifted" 11 g.Mvl.Geom.px.{0};
  Alcotest.(check int) "z untouched" 1 g.Mvl.Geom.pz.{0};
  Alcotest.(check int) "node y shifted" (-3) g.Mvl.Geom.ny0.{1}

let suite =
  [
    Alcotest.test_case "builder columns" `Quick test_builder_columns;
    Alcotest.test_case "out-of-order ids" `Quick test_out_of_order_ids;
    Alcotest.test_case "dedupe" `Quick test_builder_dedupes;
    Alcotest.test_case "reject diagonal" `Quick test_builder_rejects_diagonal;
    Alcotest.test_case "reject double emit" `Quick
      test_builder_rejects_double_emit;
    Alcotest.test_case "reject unrouted" `Quick test_builder_rejects_unrouted;
    Alcotest.test_case "reject short wire" `Quick
      test_builder_rejects_short_wire;
    Alcotest.test_case "reject unset node" `Quick
      test_builder_rejects_unset_node;
    Alcotest.test_case "views" `Quick test_views;
    Alcotest.test_case "of_wires equivalence" `Quick
      test_of_wires_matches_builder;
    Alcotest.test_case "translate" `Quick test_translate;
  ]
