(* Checker hardening: start from a known-valid layout and apply
   guaranteed-breaking mutations; the verifier must flag every one. *)
open Mvl_core

let base_layout () =
  let fam = Mvl.Families.hypercube 4 in
  fam.Mvl.Families.layout ~layers:4

let with_wires (lay : Mvl.Layout.t) wires =
  Mvl.Layout.make ~graph:(Mvl.Layout.graph lay) ~layers:(Mvl.Layout.layers lay)
    ~node_layers:(Mvl.Layout.node_layers lay) ~nodes:(Mvl.Layout.nodes lay)
    ~wires ()

let shift_wire (w : Mvl.Wire.t) ~dx ~dy =
  Mvl.Wire.make ~edge:w.Mvl.Wire.edge
    (Array.to_list
       (Array.map
          (fun (p : Mvl.Point.t) ->
            Mvl.Point.make ~x:(p.Mvl.Point.x + dx) ~y:(p.Mvl.Point.y + dy)
              ~z:p.Mvl.Point.z)
          w.Mvl.Wire.points))

let test_detached_wire () =
  (* translating a wire far away detaches it from its terminals (small
     shifts can legitimately land on a free neighbouring terminal slot,
     which the checker rightly accepts) *)
  let lay = base_layout () in
  for victim = 0 to min 9 (Array.length (Mvl.Layout.wires lay) - 1) do
    let wires = Array.copy (Mvl.Layout.wires lay) in
    wires.(victim) <- shift_wire wires.(victim) ~dx:10_000 ~dy:0;
    let mutated = with_wires lay wires in
    Alcotest.(check bool)
      (Printf.sprintf "shifted wire %d caught" victim)
      false
      (Mvl.Check.is_valid mutated)
  done

let test_cloned_route () =
  (* give one edge another edge's route: overlap + wrong terminals *)
  let lay = base_layout () in
  let wires = Array.copy (Mvl.Layout.wires lay) in
  let donor = wires.(0) in
  wires.(1) <- { donor with Mvl.Wire.edge = wires.(1).Mvl.Wire.edge };
  let mutated = with_wires lay wires in
  Alcotest.(check bool) "cloned route caught" false (Mvl.Check.is_valid mutated)

let test_swapped_footprints () =
  (* swapping two node footprints leaves every wire mis-terminated *)
  let lay = base_layout () in
  let nodes = Array.copy (Mvl.Layout.nodes lay) in
  let tmp = nodes.(0) in
  nodes.(0) <- nodes.(3);
  nodes.(3) <- tmp;
  let mutated =
    Mvl.Layout.make ~graph:(Mvl.Layout.graph lay)
      ~layers:(Mvl.Layout.layers lay) ~nodes ~wires:(Mvl.Layout.wires lay) ()
  in
  Alcotest.(check bool) "swapped footprints caught" false
    (Mvl.Check.is_valid mutated)

let test_flattened_layers () =
  (* projecting all wiring onto one layer must collide somewhere *)
  let lay = base_layout () in
  let wires =
    Array.map
      (fun (w : Mvl.Wire.t) ->
        Mvl.Wire.make ~edge:w.Mvl.Wire.edge
          (Array.to_list
             (Array.map
                (fun (p : Mvl.Point.t) ->
                  Mvl.Point.make ~x:p.Mvl.Point.x ~y:p.Mvl.Point.y ~z:1)
                w.Mvl.Wire.points)))
      (Mvl.Layout.wires lay)
  in
  let mutated = with_wires lay wires in
  Alcotest.(check bool) "flattening caught" false (Mvl.Check.is_valid mutated)

let prop_random_shifts_caught =
  QCheck.Test.make ~count:60 ~name:"random wire shifts are caught"
    QCheck.(pair (int_range 0 31) (int_range 0 3))
    (fun (victim, direction) ->
      let lay = base_layout () in
      let victim = victim mod Array.length (Mvl.Layout.wires lay) in
      let dx, dy =
        match direction with
        | 0 -> (10_000, 0)
        | 1 -> (-10_000, 0)
        | 2 -> (0, 10_000)
        | _ -> (0, -10_000)
      in
      let wires = Array.copy (Mvl.Layout.wires lay) in
      wires.(victim) <- shift_wire wires.(victim) ~dx ~dy;
      not (Mvl.Check.is_valid (with_wires lay wires)))

let test_valid_survives_identity () =
  let lay = base_layout () in
  let wires = Array.copy (Mvl.Layout.wires lay) in
  Alcotest.(check bool) "identity mutation stays valid" true
    (Mvl.Check.is_valid (with_wires lay wires))

let suite =
  [
    Alcotest.test_case "detached wires" `Quick test_detached_wire;
    Alcotest.test_case "cloned route" `Quick test_cloned_route;
    Alcotest.test_case "swapped footprints" `Quick test_swapped_footprints;
    Alcotest.test_case "flattened layers" `Quick test_flattened_layers;
    QCheck_alcotest.to_alcotest prop_random_shifts_caught;
    Alcotest.test_case "identity is valid" `Quick test_valid_survives_identity;
  ]
