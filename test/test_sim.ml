open Mvl_core

let test_rng_deterministic () =
  let a = Mvl.Rng.create ~seed:5 and b = Mvl.Rng.create ~seed:5 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Mvl.Rng.int a ~bound:1000)
      (Mvl.Rng.int b ~bound:1000)
  done;
  let c = Mvl.Rng.create ~seed:6 in
  let differs = ref false in
  for _ = 1 to 20 do
    if Mvl.Rng.int a ~bound:1000 <> Mvl.Rng.int c ~bound:1000 then
      differs := true
  done;
  Alcotest.(check bool) "different seeds differ" true !differs

let test_rng_bounds () =
  let r = Mvl.Rng.create ~seed:3 in
  for _ = 1 to 1000 do
    let x = Mvl.Rng.int r ~bound:7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    let f = Mvl.Rng.float r in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 1.0)
  done

let test_traffic_patterns () =
  let rng = Mvl.Rng.create ~seed:1 in
  (* permutation patterns are self-inverse on their domain *)
  for src = 0 to 63 do
    let d = Mvl.Traffic.destination Mvl.Traffic.Bit_complement rng ~n_nodes:64 ~src in
    Alcotest.(check bool) "complement differs" true (d <> src);
    let dr = Mvl.Traffic.destination Mvl.Traffic.Bit_reversal rng ~n_nodes:64 ~src in
    Alcotest.(check bool) "reversal in range" true (dr >= 0 && dr < 64)
  done;
  (* uniform never picks self *)
  for _ = 1 to 500 do
    let d = Mvl.Traffic.destination Mvl.Traffic.Uniform rng ~n_nodes:10 ~src:4 in
    Alcotest.(check bool) "no self traffic" true (d <> 4 && d >= 0 && d < 10)
  done;
  (* hotspot goes to the hotspot *)
  let d = Mvl.Traffic.destination (Mvl.Traffic.Hotspot 3) rng ~n_nodes:8 ~src:0 in
  Alcotest.(check int) "hotspot" 3 d

let test_bit_reversal_involution () =
  let rng = Mvl.Rng.create ~seed:1 in
  for src = 0 to 255 do
    let d = Mvl.Traffic.destination Mvl.Traffic.Bit_reversal rng ~n_nodes:256 ~src in
    if d <> src then begin
      let back = Mvl.Traffic.destination Mvl.Traffic.Bit_reversal rng ~n_nodes:256 ~src:d in
      (* reversal is an involution except for the self-fixup *)
      if back <> d + 1 && d <> src + 1 then
        Alcotest.(check int) (Printf.sprintf "involution at %d" src) src back
    end
  done

let test_hotspot_validation () =
  let rng = Mvl.Rng.create ~seed:1 in
  (* a negative hotspot used to come back negative through [mod], and
     an oversized one was silently wrapped — both are now rejected *)
  Alcotest.check_raises "negative hotspot rejected"
    (Invalid_argument "Traffic: hotspot node out of range") (fun () ->
      ignore
        (Mvl.Traffic.destination (Mvl.Traffic.Hotspot (-3)) rng ~n_nodes:8
           ~src:0));
  Alcotest.check_raises "oversized hotspot rejected"
    (Invalid_argument "Traffic: hotspot node out of range") (fun () ->
      ignore
        (Mvl.Traffic.destination (Mvl.Traffic.Hotspot 8) rng ~n_nodes:8
           ~src:0));
  (* in-range hotspots still work, including the self-fixup *)
  Alcotest.(check int) "valid hotspot" 7
    (Mvl.Traffic.destination (Mvl.Traffic.Hotspot 7) rng ~n_nodes:8 ~src:0);
  Alcotest.(check int) "hotspot self-fixup" 4
    (Mvl.Traffic.destination (Mvl.Traffic.Hotspot 3) rng ~n_nodes:8 ~src:3)

let test_permutation_bijectivity () =
  (* every deterministic pattern's raw map must be a bijection on
     [0, 2^bits) — checked exhaustively across label widths *)
  List.iter
    (fun (name, pattern) ->
      for bits = 1 to 12 do
        let n = 1 lsl bits in
        let seen = Array.make n false in
        for src = 0 to n - 1 do
          let d = Mvl.Traffic.permute pattern ~n_nodes:n ~src in
          Alcotest.(check bool)
            (Printf.sprintf "%s in range (bits=%d src=%d)" name bits src)
            true
            (d >= 0 && d < n);
          if seen.(d) then
            Alcotest.failf "%s not injective at bits=%d: %d hit twice" name
              bits d;
          seen.(d) <- true
        done
      done)
    [
      ("transpose", Mvl.Traffic.Transpose);
      ("bit-reversal", Mvl.Traffic.Bit_reversal);
      ("bit-complement", Mvl.Traffic.Bit_complement);
    ];
  Alcotest.check_raises "uniform has no deterministic map"
    (Invalid_argument "Traffic.permute: Uniform has no deterministic map")
    (fun () -> ignore (Mvl.Traffic.permute Mvl.Traffic.Uniform ~n_nodes:8 ~src:0));
  Alcotest.check_raises "src out of range"
    (Invalid_argument "Traffic.permute: src out of range") (fun () ->
      ignore (Mvl.Traffic.permute Mvl.Traffic.Transpose ~n_nodes:8 ~src:8))

let test_percentile_validation () =
  let h = Mvl.Histogram.create () in
  List.iter (Mvl.Histogram.add h) [ 5; 1; 9; 3; 7 ];
  (* both edges of the valid range answer the extremes *)
  Alcotest.(check int) "p=0 is the minimum" 1 (Mvl.Histogram.percentile h 0);
  Alcotest.(check int) "p=100 is the maximum" 9
    (Mvl.Histogram.percentile h 100);
  (* out-of-range p used to clamp silently; now it raises *)
  Alcotest.check_raises "p < 0 rejected"
    (Invalid_argument "Histogram.percentile: p not in [0,100]") (fun () ->
      ignore (Mvl.Histogram.percentile h (-1)));
  Alcotest.check_raises "p > 100 rejected"
    (Invalid_argument "Histogram.percentile: p not in [0,100]") (fun () ->
      ignore (Mvl.Histogram.percentile h 101));
  (* the empty histogram stays 0 at valid p *)
  let empty = Mvl.Histogram.create () in
  Alcotest.(check int) "empty histogram" 0 (Mvl.Histogram.percentile empty 50)

let test_routing_table_minimal () =
  let g = Mvl.Hypercube.create 5 in
  let t = Mvl.Routing_table.create g in
  for dest = 0 to 31 do
    for src = 0 to 31 do
      if src <> dest then begin
        (* hop count equals Hamming distance *)
        let expected = ref 0 in
        let x = ref (src lxor dest) in
        while !x > 0 do
          expected := !expected + (!x land 1);
          x := !x lsr 1
        done;
        Alcotest.(check int)
          (Printf.sprintf "hops %d->%d" src dest)
          !expected
          (Mvl.Routing_table.hops t ~src ~dest)
      end
    done
  done

let test_routing_deterministic () =
  let g = Mvl.Kary_ncube.create ~k:4 ~n:2 in
  let t = Mvl.Routing_table.create g in
  let p1 = Mvl.Routing_table.path t ~src:0 ~dest:10 in
  let p2 = Mvl.Routing_table.path t ~src:0 ~dest:10 in
  Alcotest.(check (list int)) "stable" p1 p2

(* Reference Int64 splitmix64, transcribed from the published
   algorithm.  Rng implements the same generator on 32-bit halves in
   native ints; this pins the two streams (raw draws, floats, bounded
   ints across the rejection-sampling paths) against each other. *)
module Rng_reference = struct
  type t = { mutable state : int64 }

  let create ~seed = { state = Int64.of_int ((seed * 2) + 1) }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L
    in
    let z =
      Int64.mul
        (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL
    in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let float t =
    let bits = Int64.to_int (Int64.shift_right_logical (next t) 11) in
    float_of_int bits /. 9007199254740992.0

  let int t ~bound =
    let b = Int64.of_int bound in
    let excess = Int64.rem (Int64.add (Int64.rem Int64.max_int b) 1L) b in
    let threshold = Int64.sub Int64.max_int excess in
    let rec draw () =
      let v = Int64.shift_right_logical (Int64.shift_left (next t) 1) 1 in
      if Int64.compare v threshold <= 0 then Int64.to_int (Int64.rem v b)
      else draw ()
    in
    draw ()
end

let test_rng_matches_reference () =
  List.iter
    (fun seed ->
      let r = Mvl.Rng.create ~seed and ref_r = Rng_reference.create ~seed in
      (* floats pin the raw 64-bit draws (top 53 bits of each) *)
      for i = 1 to 500 do
        Alcotest.(check (float 0.0))
          (Printf.sprintf "float draw %d (seed %d)" i seed)
          (Rng_reference.float ref_r) (Mvl.Rng.float r)
      done;
      (* bounded ints cover the power-of-two, small-bound and wide-bound
         residue paths, including bounds that force rejections *)
      List.iter
        (fun bound ->
          let r = Mvl.Rng.create ~seed
          and ref_r = Rng_reference.create ~seed in
          for i = 1 to 300 do
            Alcotest.(check int)
              (Printf.sprintf "int bound=%d draw %d (seed %d)" bound i seed)
              (Rng_reference.int ref_r ~bound)
              (Mvl.Rng.int r ~bound)
          done)
        [ 1; 2; 7; 64; 1000; 0x40000000 - 1; 0x40000000; (1 lsl 53) + 7 ])
    [ 0; 1; 7; 123456789 ]

(* fixed-seed golden statistics, captured from the original list/Hashtbl
   engine before the zero-allocation rewrite: any drift in the packet
   engine's event ordering shows up here as a changed count or histogram
   hash *)
let hash_hist pairs =
  Array.fold_left
    (fun h (lat, cnt) -> (((h * 1000003) + (lat * 8191) + cnt) land max_int))
    0 pairs

let check_golden name (r : Mvl.Network_sim.result) ~injected ~delivered
    ~undrained ~hop_total ~cycles ~p50 ~p95 ~p99 ~max ~hist_hash =
  Alcotest.(check int) (name ^ " injected") injected r.Mvl.Network_sim.injected;
  Alcotest.(check int)
    (name ^ " delivered") delivered r.Mvl.Network_sim.delivered;
  Alcotest.(check int)
    (name ^ " undrained") undrained r.Mvl.Network_sim.undrained;
  Alcotest.(check int)
    (name ^ " hop_total") hop_total r.Mvl.Network_sim.hop_total;
  Alcotest.(check int) (name ^ " cycles") cycles r.Mvl.Network_sim.cycles;
  Alcotest.(check int) (name ^ " p50") p50 r.Mvl.Network_sim.p50_latency;
  Alcotest.(check int) (name ^ " p95") p95 r.Mvl.Network_sim.p95_latency;
  Alcotest.(check int) (name ^ " p99") p99 r.Mvl.Network_sim.p99_latency;
  Alcotest.(check int) (name ^ " max") max r.Mvl.Network_sim.max_latency;
  Alcotest.(check int)
    (name ^ " histogram hash") hist_hash
    (hash_hist r.Mvl.Network_sim.latency_histogram)

let test_golden_hypercube_uniform () =
  let cfg =
    { Mvl.Network_sim.default_config with
      Mvl.Network_sim.offered_load = 0.25; warmup = 100; measure = 400;
      drain = 2000; seed = 3 }
  in
  check_golden "hypercube/uniform"
    (Mvl.Network_sim.run ~config:cfg (Mvl.Hypercube.create 6))
    ~injected:6545 ~delivered:6545 ~undrained:0 ~hop_total:20014 ~cycles:530 ~p50:4
    ~p95:37 ~p99:46 ~max:56 ~hist_hash:963587506372009307

let test_golden_kary_transpose_latencies () =
  (* non-unit link latencies + transpose traffic + shallow lookahead:
     exercises the timing wheel beyond slot 1 and the requeue path *)
  let cfg =
    { Mvl.Network_sim.traffic = Mvl.Traffic.Transpose; offered_load = 0.15;
      warmup = 100; measure = 400; drain = 2000; seed = 11; lookahead = 4 }
  in
  check_golden "kary/transpose"
    (Mvl.Network_sim.run ~config:cfg
       ~link_latency:(fun u v -> 1 + ((u + v) mod 3))
       (Mvl.Kary_ncube.create ~k:4 ~n:3))
    ~injected:3882 ~delivered:3882 ~undrained:0 ~hop_total:12246 ~cycles:507 ~p50:4 ~p95:7
    ~p99:8 ~max:10 ~hist_hash:1997538072982475168

let test_golden_hypercube_saturated () =
  (* past saturation with a short drain: undelivered packets, full
     queues, the lookahead window constantly active *)
  let cfg =
    { Mvl.Network_sim.default_config with
      Mvl.Network_sim.offered_load = 0.7; warmup = 50; measure = 200;
      drain = 300; seed = 7 }
  in
  check_golden "hypercube/saturated"
    (Mvl.Network_sim.run ~config:cfg (Mvl.Hypercube.create 6))
    ~injected:8965 ~delivered:7975 ~undrained:990 ~hop_total:23174 ~cycles:550 ~p50:13
    ~p95:298 ~p99:401 ~max:482 ~hist_hash:2948049736240518677

let test_sim_delivers_everything_at_low_load () =
  let g = Mvl.Hypercube.create 6 in
  let cfg =
    { Mvl.Network_sim.default_config with
      Mvl.Network_sim.offered_load = 0.02; warmup = 100; measure = 500 }
  in
  let r = Mvl.Network_sim.run ~config:cfg g in
  Alcotest.(check int) "all delivered" r.Mvl.Network_sim.injected
    r.Mvl.Network_sim.delivered;
  Alcotest.(check bool) "sane latency" true
    (r.Mvl.Network_sim.avg_latency >= 1.0
    && r.Mvl.Network_sim.avg_latency < 20.0)

let test_sim_latency_grows_with_load () =
  let g = Mvl.Hypercube.create 6 in
  let latency load =
    let cfg =
      { Mvl.Network_sim.default_config with
        Mvl.Network_sim.offered_load = load; warmup = 200; measure = 1000 }
    in
    (Mvl.Network_sim.run ~config:cfg g).Mvl.Network_sim.avg_latency
  in
  Alcotest.(check bool) "contention costs" true (latency 0.4 > latency 0.05)

let test_sim_reproducible () =
  let g = Mvl.Kary_ncube.create ~k:4 ~n:2 in
  let run () = Mvl.Network_sim.run g in
  let a = run () and b = run () in
  Alcotest.(check bool) "identical results" true (a = b)

let test_layout_latencies_improve_with_layers () =
  let fam = Mvl.Families.hypercube 7 in
  let g = fam.Mvl.Families.graph in
  let zero layers =
    let lay = fam.Mvl.Families.layout ~layers in
    Mvl.Network_sim.zero_load_latency
      ~link_latency:(Mvl.Network_sim.link_latency_of_layout ~units_per_cycle:16 lay)
      g
  in
  Alcotest.(check bool) "more layers, faster network" true (zero 8 < zero 2)

let test_saturation_below_bisection_bound () =
  let cfg =
    { Mvl.Network_sim.default_config with
      Mvl.Network_sim.warmup = 100; measure = 400; drain = 0 }
  in
  let sat g = Mvl.Network_sim.saturation_throughput ~config:cfg g in
  (* hypercube: bound 2B/N = 1.0; mesh 8x8: bound 0.25 *)
  let hc = sat (Mvl.Hypercube.create 6) in
  let mesh = sat (Mvl.Mesh.create ~dims:[| 8; 8 |]) in
  Alcotest.(check bool) "hypercube below bound" true (hc <= 1.0);
  Alcotest.(check bool) "mesh below bound" true (mesh <= 0.26);
  Alcotest.(check bool) "richer network, more capacity" true (hc > mesh)

let test_zero_load_matches_sim () =
  let g = Mvl.Hypercube.create 6 in
  let zl = Mvl.Network_sim.zero_load_latency ~samples:200 g in
  let cfg =
    { Mvl.Network_sim.default_config with
      Mvl.Network_sim.offered_load = 0.005; warmup = 100; measure = 2000 }
  in
  let r = Mvl.Network_sim.run ~config:cfg g in
  (* at vanishing load the simulated latency approaches the analytic
     zero-load value (within ~30%) *)
  Alcotest.(check bool) "consistent" true
    (abs_float (r.Mvl.Network_sim.avg_latency -. zl) /. zl < 0.3)

(* the domain-sharded engine's contract: every statistic — counts,
   percentiles, the full histogram, undrained — equals the serial
   engine's, for every jobs value.  Structural equality over the whole
   result record checks all of it at once; the saturated config also
   proves the undrained accounting survives sharding. *)
let test_sharded_matches_serial () =
  let configs =
    [
      ( "hypercube/uniform",
        { Mvl.Network_sim.default_config with
          Mvl.Network_sim.offered_load = 0.25; warmup = 100; measure = 400;
          drain = 2000; seed = 3 },
        None,
        Mvl.Hypercube.create 6 );
      ( "kary/transpose",
        { Mvl.Network_sim.traffic = Mvl.Traffic.Transpose;
          offered_load = 0.15; warmup = 100; measure = 400; drain = 2000;
          seed = 11; lookahead = 4 },
        Some (fun u v -> 1 + ((u + v) mod 3)),
        Mvl.Kary_ncube.create ~k:4 ~n:3 );
      ( "hypercube/saturated",
        { Mvl.Network_sim.default_config with
          Mvl.Network_sim.offered_load = 0.7; warmup = 50; measure = 200;
          drain = 300; seed = 7 },
        None,
        Mvl.Hypercube.create 6 );
    ]
  in
  List.iter
    (fun (name, config, link_latency, graph) ->
      let serial = Mvl.Network_sim.run ~config ?link_latency graph in
      List.iter
        (fun jobs ->
          let sharded =
            Mvl.Network_sim.run ~config ?link_latency ~jobs graph
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s sharded=serial at jobs=%d" name jobs)
            true (sharded = serial))
        [ 2; 4 ])
    configs

(* hammer the shared routing-table cache from four domains at once:
   the unguarded Hashtbl insert used to let a reader observe a
   half-resized bucket array (or two racing builders corrupt the
   table); under the mutex every caller must get a complete, minimal
   next-hop array, identical across domains *)
let test_routing_table_domain_safe () =
  let g = Mvl.Hypercube.create 8 in
  let n = Mvl.Graph.n g in
  let t = Mvl.Routing_table.create g in
  (* each domain walks every destination, starting at a different
     offset so builders collide on the cache from cycle one *)
  let grab offset =
    Array.init n (fun i ->
        let dest = (i + (offset * 61)) mod n in
        (dest, Mvl.Routing_table.table t dest))
  in
  let per_domain, _stats =
    Mvl.Domain_pool.map ~domains:4 ~f:grab [| 0; 1; 2; 3 |]
  in
  let reference = Array.init n (Mvl.Routing_table.build t) in
  Array.iter
    (Array.iter (fun (dest, tbl) ->
         Alcotest.(check (array int))
           (Printf.sprintf "table to %d complete" dest)
           reference.(dest) tbl))
    per_domain;
  (* the check above compares against fresh uncached builds; also pin
     the structural properties directly: dest maps to -1, every other
     node to a neighbour one BFS step closer *)
  let dest = 5 in
  let sample = Mvl.Routing_table.table t dest in
  let dist = Mvl.Graph.bfs_dist g dest in
  Array.iteri
    (fun v next ->
      if v = dest then Alcotest.(check int) "dest slot" (-1) next
      else begin
        Alcotest.(check bool) "next is a neighbour" true
          (Mvl.Graph.mem_edge g v next);
        Alcotest.(check int)
          (Printf.sprintf "minimal at %d" v)
          (dist.(v) - 1) dist.(next)
      end)
    sample

let test_traffic_destinations () =
  let n = 64 in
  List.iter
    (fun (name, pattern) ->
      let ds = Mvl.Traffic.destinations pattern ~n_nodes:n in
      Array.iteri
        (fun i d ->
          Alcotest.(check bool) (name ^ " in range") true (d >= 0 && d < n);
          if i > 0 then
            Alcotest.(check bool)
              (name ^ " sorted unique") true
              (ds.(i - 1) < d))
        ds;
      let member d = Array.exists (fun x -> x = d) ds in
      (* every destination the pattern can actually draw is covered *)
      let rng = Mvl.Rng.create ~seed:9 in
      for src = 0 to n - 1 do
        for _ = 1 to 4 do
          let d = Mvl.Traffic.destination pattern rng ~n_nodes:n ~src in
          Alcotest.(check bool)
            (Printf.sprintf "%s draw %d->%d covered" name src d)
            true (member d)
        done
      done)
    [
      ("uniform", Mvl.Traffic.Uniform);
      ("transpose", Mvl.Traffic.Transpose);
      ("bit-complement", Mvl.Traffic.Bit_complement);
      ("bit-reversal", Mvl.Traffic.Bit_reversal);
      ("hotspot", Mvl.Traffic.Hotspot 5);
    ];
  (* hotspot's needed set is exactly the hotspot and its self-fixup *)
  Alcotest.(check (array int))
    "hotspot set" [| 5; 6 |]
    (Mvl.Traffic.destinations (Mvl.Traffic.Hotspot 5) ~n_nodes:n);
  Alcotest.(check (array int))
    "hotspot wrap" [| 0; 7 |]
    (Mvl.Traffic.destinations (Mvl.Traffic.Hotspot 7) ~n_nodes:8)

let test_histogram_merge () =
  (* recording a stream into shards and merging must equal recording
     it whole — the property the sharded engines' stats merge uses *)
  let rng = Mvl.Rng.create ~seed:21 in
  let whole = Mvl.Histogram.create () in
  let shards = Array.init 3 (fun _ -> Mvl.Histogram.create ~initial:4 ()) in
  for i = 0 to 999 do
    let v = Mvl.Rng.int rng ~bound:700 in
    Mvl.Histogram.add whole v;
    Mvl.Histogram.add shards.(i mod 3) v
  done;
  let merged = Mvl.Histogram.create ~initial:1 () in
  Array.iter (fun s -> Mvl.Histogram.merge_into ~into:merged s) shards;
  Alcotest.(check int) "count" (Mvl.Histogram.count whole)
    (Mvl.Histogram.count merged);
  Alcotest.(check int) "total" (Mvl.Histogram.total whole)
    (Mvl.Histogram.total merged);
  Alcotest.(check int) "max" (Mvl.Histogram.max_value whole)
    (Mvl.Histogram.max_value merged);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%d" p)
        (Mvl.Histogram.percentile whole p)
        (Mvl.Histogram.percentile merged p))
    [ 0; 25; 50; 95; 99; 100 ];
  Alcotest.(check bool) "pairs" true
    (Mvl.Histogram.to_pairs whole = Mvl.Histogram.to_pairs merged)

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng matches int64 reference" `Quick
      test_rng_matches_reference;
    Alcotest.test_case "golden: hypercube uniform" `Quick
      test_golden_hypercube_uniform;
    Alcotest.test_case "golden: kary transpose latencies" `Quick
      test_golden_kary_transpose_latencies;
    Alcotest.test_case "golden: hypercube saturated" `Quick
      test_golden_hypercube_saturated;
    Alcotest.test_case "traffic patterns" `Quick test_traffic_patterns;
    Alcotest.test_case "bit reversal involution" `Quick
      test_bit_reversal_involution;
    Alcotest.test_case "hotspot validation" `Quick test_hotspot_validation;
    Alcotest.test_case "permutation bijectivity" `Quick
      test_permutation_bijectivity;
    Alcotest.test_case "percentile validation" `Quick
      test_percentile_validation;
    Alcotest.test_case "routing is minimal" `Quick test_routing_table_minimal;
    Alcotest.test_case "routing deterministic" `Quick test_routing_deterministic;
    Alcotest.test_case "low load delivers all" `Quick
      test_sim_delivers_everything_at_low_load;
    Alcotest.test_case "latency grows with load" `Quick
      test_sim_latency_grows_with_load;
    Alcotest.test_case "simulation reproducible" `Quick test_sim_reproducible;
    Alcotest.test_case "layers speed up the network" `Quick
      test_layout_latencies_improve_with_layers;
    Alcotest.test_case "saturation below bisection bound" `Quick
      test_saturation_below_bisection_bound;
    Alcotest.test_case "zero-load consistency" `Quick test_zero_load_matches_sim;
    Alcotest.test_case "sharded engine matches serial" `Quick
      test_sharded_matches_serial;
    Alcotest.test_case "routing table is domain-safe" `Quick
      test_routing_table_domain_safe;
    Alcotest.test_case "traffic destination sets" `Quick
      test_traffic_destinations;
    Alcotest.test_case "histogram shard merge" `Quick test_histogram_merge;
  ]
