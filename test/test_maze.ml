open Mvl_core

let route_ok name g ~rows ~cols ~layers =
  match Mvl.Maze_router.route_or_grow g ~rows ~cols ~layers with
  | None -> Alcotest.fail (name ^ ": routing failed")
  | Some lay ->
      (match Mvl.Check.validate ~mode:Mvl.Check.Strict lay with
      | [] -> ()
      | v :: _ ->
          Alcotest.fail
            (Format.asprintf "%s: %a" name Mvl.Check.pp_violation v));
      lay

let test_routes_products () =
  ignore (route_ok "ring" (Mvl.Ring.create 8) ~rows:2 ~cols:4 ~layers:2);
  ignore (route_ok "hypercube" (Mvl.Hypercube.create 4) ~rows:4 ~cols:4 ~layers:2);
  ignore (route_ok "kary" (Mvl.Kary_ncube.create ~k:4 ~n:2) ~rows:4 ~cols:4 ~layers:2)

let test_routes_non_orthogonal () =
  (* networks the orthogonal scheme cannot handle directly *)
  ignore (route_ok "star" (Mvl.Cayley.star 4) ~rows:4 ~cols:6 ~layers:4);
  ignore
    (route_ok "shuffle-exchange" (Mvl.Shuffle.shuffle_exchange 4) ~rows:4
       ~cols:4 ~layers:4);
  ignore (route_ok "K8" (Mvl.Complete.create 8) ~rows:2 ~cols:4 ~layers:4)

let test_all_edges_routed () =
  let g = Mvl.Hypercube.create 4 in
  let lay = route_ok "hc4" g ~rows:4 ~cols:4 ~layers:2 in
  Alcotest.(check int) "wire per edge" (Mvl.Graph.m g)
    (Array.length (Mvl.Layout.wires lay))

let test_constructive_beats_maze () =
  (* the paper's constructive layout should use less area than the
     generic router at equal layers *)
  let fam = Mvl.Families.hypercube 5 in
  let constructive =
    (Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:4)).Mvl.Layout.area
  in
  match
    Mvl.Maze_router.route_or_grow fam.Mvl.Families.graph ~rows:4 ~cols:8
      ~layers:4
  with
  | None -> Alcotest.fail "maze failed"
  | Some lay ->
      let maze = (Mvl.Layout.metrics lay).Mvl.Layout.area in
      Alcotest.(check bool) "constructive wins" true (constructive < maze)

let test_small_canvas_fails_gracefully () =
  (* a dense graph on a tiny canvas with few layers cannot route *)
  let g = Mvl.Complete.create 9 in
  let placement =
    Mvl.Maze_router.grid_placement g ~rows:3 ~cols:3 ~margin:1 ~layers:2
  in
  Alcotest.(check bool) "returns None rather than looping" true
    (Mvl.Maze_router.route g placement = None)

let suite =
  [
    Alcotest.test_case "routes product networks" `Quick test_routes_products;
    Alcotest.test_case "routes non-orthogonal networks" `Quick
      test_routes_non_orthogonal;
    Alcotest.test_case "all edges routed" `Quick test_all_edges_routed;
    Alcotest.test_case "constructive beats maze" `Quick
      test_constructive_beats_maze;
    Alcotest.test_case "graceful failure" `Quick test_small_canvas_fails_gracefully;
  ]
