open Mvl_core

let strict_valid name lay =
  match Mvl.Check.validate ~mode:Mvl.Check.Strict lay with
  | [] -> ()
  | v :: _ ->
      Alcotest.fail (Format.asprintf "%s: %a" name Mvl.Check.pp_violation v)

let test_product_is_hypercube () =
  let t = Mvl.Multilayer3d.hypercube ~n:6 ~active:4 ~layers_per_slab:2 in
  Alcotest.(check bool) "stacked product = 6-cube" true
    (Mvl.Graph.equal t.Mvl.Multilayer3d.product (Mvl.Hypercube.create 6))

let test_strict_valid_sweep () =
  List.iter
    (fun (n, active, lps) ->
      let t = Mvl.Multilayer3d.hypercube ~n ~active ~layers_per_slab:lps in
      strict_valid
        (Printf.sprintf "3d n=%d LA=%d Lw=%d" n active lps)
        t.Mvl.Multilayer3d.layout)
    [ (4, 2, 2); (5, 2, 2); (6, 2, 3); (6, 4, 2); (8, 4, 2); (7, 2, 4) ]

let test_active_layers () =
  let t = Mvl.Multilayer3d.hypercube ~n:6 ~active:4 ~layers_per_slab:3 in
  Alcotest.(check int) "L_A" 4 (Mvl.Layout.active_layers t.Mvl.Multilayer3d.layout);
  Alcotest.(check int) "total layers" 12 (Mvl.Layout.layers t.Mvl.Multilayer3d.layout)

let test_footprint_shrinks () =
  (* stacking on 4 active layers must beat the 2-D layout at the same
     total layer count in area (the §2.2 motivation) *)
  let t = Mvl.Multilayer3d.hypercube ~n:10 ~active:4 ~layers_per_slab:4 in
  let m3 = Mvl.Layout.metrics t.Mvl.Multilayer3d.layout in
  let fam = Mvl.Families.hypercube 10 in
  let m2 = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers:16) in
  Alcotest.(check bool) "smaller footprint" true
    (m3.Mvl.Layout.area < m2.Mvl.Layout.area);
  Alcotest.(check bool) "smaller volume" true
    (m3.Mvl.Layout.volume < m2.Mvl.Layout.volume)

let test_wire_accounting () =
  let n = 6 and active = 4 and lps = 2 in
  let t = Mvl.Multilayer3d.hypercube ~n ~active ~layers_per_slab:lps in
  let lay = t.Mvl.Multilayer3d.layout in
  (* product edge count: slabs * base edges + slab edges * base nodes *)
  let base_dims = 4 in
  let base_edges = base_dims * (1 lsl (base_dims - 1)) in
  let slab_edges = 2 * (1 lsl 1) in
  let expected = (4 * base_edges) + (slab_edges * (1 lsl base_dims)) in
  Alcotest.(check int) "edge count" expected (Array.length (Mvl.Layout.wires lay))

let test_generic_base () =
  (* a torus base with a ring of slabs: k-ary (n+1)-cube overall *)
  let k = 4 in
  let row = Mvl.Collinear_kary.create ~k ~n:1 () in
  let base =
    Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:row
      (Mvl.Kary_ncube.create ~k ~n:2)
  in
  let t =
    Mvl.Multilayer3d.realize ~base ~slab_graph:(Mvl.Ring.create k)
      ~layers_per_slab:2 ()
  in
  strict_valid "torus slabs" t.Mvl.Multilayer3d.layout;
  Alcotest.(check bool) "product is the 4-ary 3-cube" true
    (Mvl.Graph.equal t.Mvl.Multilayer3d.product (Mvl.Kary_ncube.create ~k ~n:3))

let test_rejects_bad_params () =
  (try
     ignore (Mvl.Multilayer3d.hypercube ~n:4 ~active:3 ~layers_per_slab:2);
     Alcotest.fail "non power of two accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Mvl.Multilayer3d.hypercube ~n:4 ~active:4 ~layers_per_slab:1);
    Alcotest.fail "single-layer band accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "product graph is the hypercube" `Quick
      test_product_is_hypercube;
    Alcotest.test_case "strict validity sweep" `Quick test_strict_valid_sweep;
    Alcotest.test_case "active layer accounting" `Quick test_active_layers;
    Alcotest.test_case "footprint beats 2-D at equal L" `Quick
      test_footprint_shrinks;
    Alcotest.test_case "wire accounting" `Quick test_wire_accounting;
    Alcotest.test_case "generic (torus) base" `Quick test_generic_base;
    Alcotest.test_case "parameter validation" `Quick test_rejects_bad_params;
  ]
