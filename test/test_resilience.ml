open Mvl_core

let test_no_faults_connected () =
  let g = Mvl.Hypercube.create 5 in
  let s = Mvl.Resilience.edge_faults g ~p_fail:0.0 ~trials:5 ~seed:1 in
  Alcotest.(check bool) "always connected" true
    (s.Mvl.Resilience.connected_fraction = 1.0);
  Alcotest.(check bool) "full component" true
    (s.Mvl.Resilience.avg_largest_component > 0.999)

let test_total_faults_disconnect () =
  let g = Mvl.Hypercube.create 4 in
  let s = Mvl.Resilience.edge_faults g ~p_fail:1.0 ~trials:3 ~seed:1 in
  Alcotest.(check bool) "never connected" true
    (s.Mvl.Resilience.connected_fraction = 0.0)

let test_all_edges_dead_means_singletons () =
  (* regression pin for the failed-edge key normalization: with every
     edge failed the survivors are all singletons, so the largest
     component is exactly 1/n.  An unnormalized insertion key would
     leave edges immortal and this share at 1.0 *)
  let g = Mvl.Hypercube.create 4 in
  let s = Mvl.Resilience.edge_faults g ~p_fail:1.0 ~trials:3 ~seed:1 in
  Alcotest.(check (float 1e-9)) "singleton components"
    (1.0 /. 16.0)
    s.Mvl.Resilience.avg_largest_component

let test_all_nodes_dead () =
  (* documented convention: zero survivors count as connected with a
     full component share — vacuous connectivity, not a 0/0 *)
  let g = Mvl.Hypercube.create 4 in
  let s = Mvl.Resilience.node_faults g ~p_fail:1.0 ~trials:3 ~seed:1 in
  Alcotest.(check (float 0.0)) "vacuously connected" 1.0
    s.Mvl.Resilience.connected_fraction;
  Alcotest.(check (float 0.0)) "full component share" 1.0
    s.Mvl.Resilience.avg_largest_component

let test_monotone_in_fault_rate () =
  let g = Mvl.Hypercube.create 6 in
  let frac p =
    (Mvl.Resilience.edge_faults g ~p_fail:p ~trials:150 ~seed:2)
      .Mvl.Resilience.connected_fraction
  in
  Alcotest.(check bool) "more faults, less connectivity" true
    (frac 0.5 <= frac 0.2 && frac 0.2 <= frac 0.02)

let test_extra_links_help () =
  let plain = Mvl.Hypercube.create 7 in
  let enhanced = Mvl.Enhanced_cube.create ~n:7 ~seed:3 in
  let frac g =
    (Mvl.Resilience.edge_faults g ~p_fail:0.4 ~trials:250 ~seed:1)
      .Mvl.Resilience.connected_fraction
  in
  Alcotest.(check bool) "enhanced cube survives more" true
    (frac enhanced > frac plain)

let test_node_faults () =
  let g = Mvl.Complete.create 12 in
  (* a complete graph's survivors are always connected *)
  let s = Mvl.Resilience.node_faults g ~p_fail:0.5 ~trials:50 ~seed:4 in
  Alcotest.(check bool) "complete graph survivors connected" true
    (s.Mvl.Resilience.connected_fraction = 1.0);
  let ring = Mvl.Ring.create 24 in
  let s2 = Mvl.Resilience.node_faults ring ~p_fail:0.3 ~trials:100 ~seed:4 in
  Alcotest.(check bool) "rings shatter" true
    (s2.Mvl.Resilience.connected_fraction < 0.5)

let test_deterministic () =
  let g = Mvl.Hypercube.create 5 in
  let a = Mvl.Resilience.edge_faults g ~p_fail:0.3 ~trials:50 ~seed:9 in
  let b = Mvl.Resilience.edge_faults g ~p_fail:0.3 ~trials:50 ~seed:9 in
  Alcotest.(check bool) "same seed, same stats" true (a = b)

let suite =
  [
    Alcotest.test_case "no faults" `Quick test_no_faults_connected;
    Alcotest.test_case "total faults" `Quick test_total_faults_disconnect;
    Alcotest.test_case "all edges dead" `Quick
      test_all_edges_dead_means_singletons;
    Alcotest.test_case "all nodes dead" `Quick test_all_nodes_dead;
    Alcotest.test_case "monotone in fault rate" `Quick test_monotone_in_fault_rate;
    Alcotest.test_case "extra links help" `Quick test_extra_links_help;
    Alcotest.test_case "node faults" `Quick test_node_faults;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
  ]
