(* Telemetry: JSON encoder/parser round-trips, schema stability of the
   pipeline records, and the observability-adjacent pipeline bugfixes
   (on-demand validity, truncation flag, monotonic timings, bounded
   cache). *)
open Mvl_core

let json_testable =
  Alcotest.testable
    (fun ppf j -> Format.pp_print_string ppf (Mvl.Telemetry.to_string j))
    ( = )

let parse_exn s =
  match Mvl.Telemetry.parse s with
  | Ok j -> j
  | Error msg -> Alcotest.fail (Printf.sprintf "%S: %s" s msg)

(* --- encoder / parser ---------------------------------------------------- *)

let test_string_escaping_roundtrip () =
  List.iter
    (fun s ->
      let j = Mvl.Telemetry.String s in
      Alcotest.check json_testable
        (Printf.sprintf "%S survives encode/parse" s)
        j
        (parse_exn (Mvl.Telemetry.to_string j)))
    [
      "plain";
      "";
      "with \"quotes\" and \\backslashes\\";
      "newline\nand\ttab\rand\bback";
      "control \x01\x02\x1f chars";
      "form\x0cfeed";
      "utf-8 h\xc3\xa9llo \xe2\x86\x92 \xf0\x9f\x90\xab";
      "slash / stays";
    ]

let test_unicode_escape_decoding () =
  (* \u escapes decode to UTF-8 bytes, including surrogate pairs *)
  Alcotest.check json_testable "BMP escape"
    (Mvl.Telemetry.String "\xe2\x86\x92")
    (parse_exn {|"→"|});
  Alcotest.check json_testable "surrogate pair"
    (Mvl.Telemetry.String "\xf0\x9f\x90\xab")
    (parse_exn {|"🐫"|});
  Alcotest.check json_testable "ascii escape"
    (Mvl.Telemetry.String "A")
    (parse_exn {|"A"|})

let test_value_roundtrip () =
  let v =
    Mvl.Telemetry.(
      Obj
        [
          ("null", Null);
          ("bools", List [ Bool true; Bool false ]);
          ("ints", List [ Int 0; Int (-42); Int 1234567890 ]);
          ("floats", List [ Float 0.5; Float (-3.25); Float 1e-9; Float 3.0 ]);
          ("str", String "nested \"quoted\"");
          ("empty_list", List []);
          ("empty_obj", Obj []);
          ("nested", Obj [ ("deep", List [ Obj [ ("k", Int 1) ] ]) ]);
        ])
  in
  Alcotest.check json_testable "compact round-trips" v
    (parse_exn (Mvl.Telemetry.to_string v));
  Alcotest.check json_testable "pretty round-trips" v
    (parse_exn (Mvl.Telemetry.to_string ~pretty:true v))

let test_float_encoding () =
  (* JSON has no NaN/Infinity; integral floats must stay floats *)
  Alcotest.(check string) "nan is null" "null"
    (Mvl.Telemetry.to_string (Mvl.Telemetry.Float Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Mvl.Telemetry.to_string (Mvl.Telemetry.Float Float.infinity));
  Alcotest.(check string) "integral float keeps the point" "3.0"
    (Mvl.Telemetry.to_string (Mvl.Telemetry.Float 3.0));
  Alcotest.check json_testable "integral float re-parses as Float"
    (Mvl.Telemetry.Float 3.0)
    (parse_exn "3.0")

let test_parse_rejects_malformed () =
  List.iter
    (fun s ->
      match Mvl.Telemetry.parse s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "%S should not parse" s)
      | Error _ -> ())
    [
      "";
      "{";
      "[1,]";
      "{\"a\":}";
      "tru";
      "\"unterminated";
      "1 2";
      "{\"a\":1} trailing";
      "\"bad \\x escape\"";
      "01a";
    ]

(* --- pipeline record schema ---------------------------------------------- *)

let record_keys =
  [
    "schema"; "spec"; "family"; "n_nodes"; "n_edges"; "layers"; "from_cache";
    "seconds"; "layout_phases"; "cache"; "metrics"; "violations"; "report";
  ]

let test_record_schema_golden () =
  Mvl.Pipeline.cache_reset ();
  let r =
    Mvl.Pipeline.run_exn ~validate:Mvl.Check.Strict ~layers:4 "hypercube:4"
  in
  let j = Mvl.Pipeline.to_json r in
  Alcotest.(check (list string)) "top-level keys, in order" record_keys
    (Mvl.Telemetry.keys j);
  Alcotest.(check (list string)) "seconds keys, in stage order"
    [ "build"; "layout"; "validate"; "metrics"; "report"; "total" ]
    (Mvl.Telemetry.keys
       (Option.get (Mvl.Telemetry.member "seconds" j)));
  Alcotest.(check (list string)) "cache keys"
    [ "hits"; "misses"; "coalesced"; "size" ]
    (Mvl.Telemetry.keys (Option.get (Mvl.Telemetry.member "cache" j)));
  Alcotest.(check (list string)) "layout phase keys"
    [ "place_seconds"; "pack_seconds"; "terminals_seconds"; "emit_seconds";
      "build_seconds" ]
    (Mvl.Telemetry.keys
       (Option.get (Mvl.Telemetry.member "layout_phases" j)));
  Alcotest.(check (list string)) "metrics keys"
    [ "width"; "height"; "area"; "layers"; "volume"; "max_wire";
      "total_wire"; "vias" ]
    (Mvl.Telemetry.keys (Option.get (Mvl.Telemetry.member "metrics" j)));
  Alcotest.(check (list string)) "violation summary keys"
    [ "checked"; "mode"; "count"; "truncated"; "rules" ]
    (Mvl.Telemetry.keys (Option.get (Mvl.Telemetry.member "violations" j)));
  (* the emitted text is valid JSON in both renderings *)
  Alcotest.check json_testable "record re-parses" j
    (parse_exn (Mvl.Telemetry.to_string ~pretty:true j))

let test_cached_run_serializes_from_cache () =
  Mvl.Pipeline.cache_reset ();
  ignore (Mvl.Pipeline.run_exn ~layers:3 "kary:3:2");
  let r = Mvl.Pipeline.run_exn ~layers:3 "kary:3:2" in
  let j = Mvl.Pipeline.to_json r in
  Alcotest.(check (option bool)) "from_cache is true"
    (Some true)
    (match Mvl.Telemetry.member "from_cache" j with
    | Some (Mvl.Telemetry.Bool b) -> Some b
    | _ -> None);
  Alcotest.(check (option bool)) "unvalidated run says checked:false"
    (Some false)
    (match
       Option.bind
         (Mvl.Telemetry.member "violations" j)
         (Mvl.Telemetry.member "checked")
     with
    | Some (Mvl.Telemetry.Bool b) -> Some b
    | _ -> None)

(* --- validity (bugfix: not-validated used to read as invalid) ------------ *)

let broken_copy (r : Mvl.Pipeline.t) =
  (* clone one wire's route onto another edge: overlapping + detached *)
  let lay = r.Mvl.Pipeline.layout in
  let wires = Array.copy (Mvl.Layout.wires lay) in
  wires.(1) <- { wires.(0) with Mvl.Wire.edge = wires.(1).Mvl.Wire.edge };
  Mvl.Layout.make ~graph:(Mvl.Layout.graph lay) ~layers:(Mvl.Layout.layers lay)
    ~node_layers:(Mvl.Layout.node_layers lay) ~nodes:(Mvl.Layout.nodes lay)
    ~wires
    ()

let test_validity_three_states () =
  Mvl.Pipeline.cache_reset ();
  let unvalidated = Mvl.Pipeline.run_exn ~layers:4 "hypercube:4" in
  Alcotest.(check bool) "unvalidated is Not_validated" true
    (Mvl.Pipeline.validity unvalidated = Mvl.Pipeline.Not_validated);
  (* the old bug: is_valid answered false here although the layout is
     fine; now it validates on demand *)
  Alcotest.(check bool) "valid layout reads valid on demand" true
    (Mvl.Pipeline.is_valid unvalidated);
  let validated =
    Mvl.Pipeline.run_exn ~validate:Mvl.Check.Strict ~layers:4 "hypercube:4"
  in
  Alcotest.(check bool) "validated run is Valid" true
    (Mvl.Pipeline.validity validated = Mvl.Pipeline.Valid);
  Alcotest.(check bool) "validated run is valid" true
    (Mvl.Pipeline.is_valid validated)

let test_unvalidated_broken_run_not_valid () =
  (* an unvalidated run over broken geometry must NOT be reported valid
     — on-demand validation catches it *)
  Mvl.Pipeline.cache_reset ();
  let r = Mvl.Pipeline.run_exn ~layers:4 "hypercube:4" in
  let broken =
    { r with Mvl.Pipeline.layout = broken_copy r; validation = None }
  in
  Alcotest.(check bool) "still Not_validated" true
    (Mvl.Pipeline.validity broken = Mvl.Pipeline.Not_validated);
  Alcotest.(check bool) "broken layout reads invalid" false
    (Mvl.Pipeline.is_valid broken)

(* --- truncation flag (bugfix: exactly-limit looked complete) ------------- *)

let test_truncated_validation_flagged () =
  Mvl.Pipeline.cache_reset ();
  let r = Mvl.Pipeline.run_exn ~layers:4 "hypercube:4" in
  let broken = broken_copy r in
  let capped = Mvl.Check.run ~max_violations:1 broken in
  Alcotest.(check int) "capped at one violation" 1
    (List.length capped.Mvl.Check.violations);
  Alcotest.(check bool) "capped result is flagged truncated" true
    capped.Mvl.Check.truncated;
  let full = Mvl.Check.run ~max_violations:10_000 broken in
  Alcotest.(check bool) "uncapped result is not truncated" false
    full.Mvl.Check.truncated;
  Alcotest.(check bool) "full list exceeds the cap" true
    (List.length full.Mvl.Check.violations > 1);
  (* and the flag survives serialization *)
  Alcotest.(check (option bool)) "truncated in JSON"
    (Some true)
    (match
       Mvl.Telemetry.member "truncated" (Mvl.Telemetry.of_check capped)
     with
    | Some (Mvl.Telemetry.Bool b) -> Some b
    | _ -> None);
  (* rule histogram covers every recorded violation *)
  let summary = Mvl.Telemetry.violation_summary full in
  let histogram_total =
    match Mvl.Telemetry.member "rules" summary with
    | Some (Mvl.Telemetry.Obj fields) ->
        List.fold_left
          (fun acc (_, v) ->
            match v with Mvl.Telemetry.Int n -> acc + n | _ -> acc)
          0 fields
    | _ -> -1
  in
  Alcotest.(check int) "rule counts sum to the violation count"
    (List.length full.Mvl.Check.violations)
    histogram_total

(* --- monotonic timings --------------------------------------------------- *)

let test_timings_non_negative () =
  Mvl.Pipeline.cache_reset ();
  for _ = 1 to 20 do
    let r =
      Mvl.Pipeline.run_exn ~validate:Mvl.Check.Strict ~report:true ~layers:2
        "tree:4"
    in
    List.iter
      (fun (t : Mvl.Pipeline.stage_time) ->
        Alcotest.(check bool)
          (t.Mvl.Pipeline.stage ^ " timing is non-negative")
          true
          (t.Mvl.Pipeline.seconds >= 0.0))
      r.Mvl.Pipeline.timings
  done

(* --- bounded cache (bugfix: unbounded growth across sweeps) -------------- *)

let test_cache_capacity_bound () =
  let original = Mvl.Pipeline.cache_capacity () in
  Fun.protect
    ~finally:(fun () ->
      Mvl.Pipeline.set_cache_capacity original;
      Mvl.Pipeline.cache_reset ())
    (fun () ->
      Mvl.Pipeline.cache_reset ();
      Mvl.Pipeline.set_cache_capacity 3;
      let sweep = [ 2; 3; 4; 5; 6; 7; 8; 9 ] in
      List.iter
        (fun layers -> ignore (Mvl.Pipeline.run_exn ~layers "hypercube:4"))
        sweep;
      Alcotest.(check bool) "long sweep stays under the cap" true
        (Mvl.Pipeline.cache_size () <= 3);
      let s1 = Mvl.Pipeline.cache_stats () in
      Alcotest.(check int) "every distinct layout constructed once"
        (List.length sweep) s1.Mvl.Pipeline.misses;
      Alcotest.(check int) "no spurious hits" 0 s1.Mvl.Pipeline.hits;
      (* second pass: evicted entries re-miss, resident ones hit; the
         counters stay consistent with exactly one event per run *)
      List.iter
        (fun layers -> ignore (Mvl.Pipeline.run_exn ~layers "hypercube:4"))
        sweep;
      let s2 = Mvl.Pipeline.cache_stats () in
      Alcotest.(check int) "one hit or miss per run"
        (2 * List.length sweep)
        (s2.Mvl.Pipeline.hits + s2.Mvl.Pipeline.misses);
      Alcotest.(check bool) "still under the cap" true
        (Mvl.Pipeline.cache_size () <= 3);
      (* shrinking evicts immediately *)
      Mvl.Pipeline.set_cache_capacity 1;
      Alcotest.(check bool) "shrink applies immediately" true
        (Mvl.Pipeline.cache_size () <= 1))

let suite =
  [
    Alcotest.test_case "string escaping round-trips" `Quick
      test_string_escaping_roundtrip;
    Alcotest.test_case "unicode escapes decode" `Quick
      test_unicode_escape_decoding;
    Alcotest.test_case "values round-trip" `Quick test_value_roundtrip;
    Alcotest.test_case "float encoding" `Quick test_float_encoding;
    Alcotest.test_case "malformed JSON rejected" `Quick
      test_parse_rejects_malformed;
    Alcotest.test_case "record schema golden" `Quick test_record_schema_golden;
    Alcotest.test_case "cached run serializes from_cache" `Quick
      test_cached_run_serializes_from_cache;
    Alcotest.test_case "validity three states" `Quick
      test_validity_three_states;
    Alcotest.test_case "unvalidated broken run not valid" `Quick
      test_unvalidated_broken_run_not_valid;
    Alcotest.test_case "truncated validation flagged" `Quick
      test_truncated_validation_flagged;
    Alcotest.test_case "timings non-negative" `Quick test_timings_non_negative;
    Alcotest.test_case "cache capacity bound" `Quick test_cache_capacity_bound;
  ]
