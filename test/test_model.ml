open Mvl_core
module F = Mvl.Formulas
module LB = Mvl.Lower_bounds

let close ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let test_layer_sq () =
  Alcotest.(check bool) "even" true (close (F.layer_sq 4) 16.0);
  Alcotest.(check bool) "odd" true (close (F.layer_sq 5) 24.0);
  Alcotest.(check bool) "two" true (close (F.layer_sq 2) 4.0)

let test_track_formulas_match_layout_lib () =
  List.iter
    (fun (k, n) ->
      Alcotest.(check int) "kary tracks agree"
        (Mvl.Collinear_kary.tracks_formula ~k ~n)
        (F.kary_collinear_tracks ~k ~n))
    [ (3, 2); (4, 3); (7, 2) ];
  List.iter
    (fun n ->
      Alcotest.(check int) "hypercube tracks agree"
        (Mvl.Collinear_hypercube.tracks_formula n)
        (F.hypercube_collinear_tracks n))
    [ 2; 5; 9 ];
  let radices = Mvl.Mixed_radix.uniform ~radix:5 ~dims:3 in
  Alcotest.(check int) "ghc tracks agree"
    (Mvl.Collinear_ghc.tracks_formula radices)
    (F.ghc_collinear_tracks radices)

let test_area_formulas_scale () =
  (* quadrupling N multiplies every area formula by 16 *)
  let pairs =
    [
      (fun n_nodes -> F.hypercube_area ~n_nodes ~layers:4);
      (fun n_nodes -> F.kary_area ~n_nodes ~k:4 ~layers:4);
      (fun n_nodes -> F.ghc_area ~n_nodes ~r:4 ~layers:4);
      (fun n_nodes -> F.hsn_area ~n_nodes ~layers:4);
      (fun n_nodes -> F.folded_hypercube_area ~n_nodes ~layers:4);
      (fun n_nodes -> F.enhanced_cube_area ~n_nodes ~layers:4);
    ]
  in
  List.iter
    (fun f ->
      Alcotest.(check bool) "quadratic in N" true
        (close (f 4096 /. f 1024) 16.0))
    pairs

let test_area_formulas_layers () =
  (* doubling (even) L divides areas by 4 *)
  Alcotest.(check bool) "hypercube" true
    (close
       (F.hypercube_area ~n_nodes:1024 ~layers:4
       /. F.hypercube_area ~n_nodes:1024 ~layers:8)
       4.0);
  (* odd L uses L^2 - 1 *)
  Alcotest.(check bool) "odd L" true
    (close
       (F.hsn_area ~n_nodes:100 ~layers:3)
       (100.0 *. 100.0 /. (4.0 *. 8.0)))

let test_volume_is_layers_times_area () =
  Alcotest.(check bool) "hypercube volume" true
    (close
       (F.hypercube_volume ~n_nodes:512 ~layers:6)
       (6.0 *. F.hypercube_area ~n_nodes:512 ~layers:6));
  Alcotest.(check bool) "ghc volume" true
    (close
       (F.ghc_volume ~n_nodes:512 ~r:8 ~layers:6)
       (6.0 *. F.ghc_area ~n_nodes:512 ~r:8 ~layers:6))

let test_reduction_factors () =
  Alcotest.(check bool) "area vs thompson" true
    (close (F.area_reduction_vs_thompson ~layers:8) 16.0);
  Alcotest.(check bool) "folding" true
    (close (F.area_reduction_folding ~layers:8) 4.0);
  Alcotest.(check bool) "volume" true
    (close (F.volume_reduction_vs_thompson ~layers:8) 4.0)

let test_bisections () =
  Alcotest.(check int) "hypercube" 16 (LB.hypercube_bisection 5);
  Alcotest.(check int) "folded" 32 (LB.folded_hypercube_bisection 5);
  Alcotest.(check int) "kary" (2 * 16) (LB.kary_bisection ~k:4 ~n:3);
  Alcotest.(check int) "complete 9" 20 (LB.complete_bisection 9);
  Alcotest.(check int) "complete 8" 16 (LB.complete_bisection 8);
  Alcotest.(check int) "ghc" (16 / 4 * 4) (LB.ghc_bisection ~r:4 ~n:2)

let test_bisection_consistent_with_heuristic () =
  (* the BFS-sweep upper bound can never fall below the true bisection *)
  List.iter
    (fun (g, closed_form, name) ->
      let ub = LB.generic_upper_bound g ~sweeps:8 in
      Alcotest.(check bool) (name ^ " heuristic >= closed form") true
        (ub >= closed_form))
    [
      (Mvl.Hypercube.create 6, LB.hypercube_bisection 6, "hypercube");
      (Mvl.Complete.create 10, LB.complete_bisection 10, "complete");
      (Mvl.Kary_ncube.create ~k:4 ~n:2, LB.kary_bisection ~k:4 ~n:2, "kary");
    ]

let test_lower_bound_area () =
  Alcotest.(check bool) "area bound" true
    (close (LB.area ~bisection:128 ~layers:4) (32.0 *. 32.0));
  Alcotest.(check bool) "volume bound" true
    (close (LB.volume ~bisection:128 ~layers:4) (128.0 *. 128.0 /. 4.0))

let test_layout_respects_lower_bound () =
  (* measured area must stay above the bisection bound *)
  List.iter
    (fun (fam, layers) ->
      match fam.Mvl.Families.bisection with
      | None -> ()
      | Some b ->
          let m = Mvl.Layout.metrics (fam.Mvl.Families.layout ~layers) in
          Alcotest.(check bool)
            (fam.Mvl.Families.name ^ " above lower bound")
            true
            (float_of_int m.Mvl.Layout.area >= LB.area ~bisection:b ~layers))
    [
      (Mvl.Families.hypercube 6, 2);
      (Mvl.Families.hypercube 8, 4);
      (Mvl.Families.kary ~k:4 ~n:2 (), 2);
      (Mvl.Families.generalized_hypercube ~r:4 ~n:2 (), 2);
      (Mvl.Families.complete 12, 2);
    ]

let test_degenerate_params_rejected () =
  (* the log2-divisor formulas used to return inf/nan for N <= 1, and
     the k-ary track closed form raised a bare Division_by_zero for
     k = 1; all now reject the parameter by name, like layer_sq *)
  Alcotest.check_raises "butterfly_area N=1"
    (Invalid_argument "Formulas.butterfly_area: n_nodes <= 1") (fun () ->
      ignore (F.butterfly_area ~n_nodes:1 ~layers:4));
  Alcotest.check_raises "butterfly_area N=0"
    (Invalid_argument "Formulas.butterfly_area: n_nodes <= 1") (fun () ->
      ignore (F.butterfly_area ~n_nodes:0 ~layers:4));
  Alcotest.check_raises "butterfly_volume inherits the area guard"
    (Invalid_argument "Formulas.butterfly_area: n_nodes <= 1") (fun () ->
      ignore (F.butterfly_volume ~n_nodes:1 ~layers:4));
  Alcotest.check_raises "butterfly_max_wire N=1"
    (Invalid_argument "Formulas.butterfly_max_wire: n_nodes <= 1") (fun () ->
      ignore (F.butterfly_max_wire ~n_nodes:1 ~layers:4));
  Alcotest.check_raises "ccc_area N=1"
    (Invalid_argument "Formulas.ccc_area: n_nodes <= 1") (fun () ->
      ignore (F.ccc_area ~n_nodes:1 ~layers:4));
  Alcotest.check_raises "kary tracks k=1"
    (Invalid_argument "Formulas.kary_collinear_tracks: k < 2") (fun () ->
      ignore (F.kary_collinear_tracks ~k:1 ~n:3));
  Alcotest.check_raises "kary tracks negative n"
    (Invalid_argument "Formulas.kary_collinear_tracks: n < 0") (fun () ->
      ignore (F.kary_collinear_tracks ~k:3 ~n:(-1)));
  (* the guards sit exactly at the degenerate boundary *)
  Alcotest.(check bool) "butterfly_area N=2 is finite" true
    (Float.is_finite (F.butterfly_area ~n_nodes:2 ~layers:4));
  Alcotest.(check bool) "ccc_area N=2 is finite" true
    (Float.is_finite (F.ccc_area ~n_nodes:2 ~layers:4));
  Alcotest.(check int) "kary tracks k=2, n=0" 0
    (F.kary_collinear_tracks ~k:2 ~n:0)

let suite =
  [
    Alcotest.test_case "layer_sq" `Quick test_layer_sq;
    Alcotest.test_case "degenerate parameters rejected" `Quick
      test_degenerate_params_rejected;
    Alcotest.test_case "track formulas agree across libs" `Quick
      test_track_formulas_match_layout_lib;
    Alcotest.test_case "areas quadratic in N" `Quick test_area_formulas_scale;
    Alcotest.test_case "areas vs layers" `Quick test_area_formulas_layers;
    Alcotest.test_case "volume = L x area" `Quick test_volume_is_layers_times_area;
    Alcotest.test_case "reduction factors" `Quick test_reduction_factors;
    Alcotest.test_case "bisection closed forms" `Quick test_bisections;
    Alcotest.test_case "bisection heuristic consistency" `Quick
      test_bisection_consistent_with_heuristic;
    Alcotest.test_case "lower bound arithmetic" `Quick test_lower_bound_area;
    Alcotest.test_case "layouts respect lower bounds" `Quick
      test_layout_respects_lower_bound;
  ]
