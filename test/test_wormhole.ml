open Mvl_core

let run_with ?(fabric = Mvl.Wormhole.Hypercube 6) ?(load = 0.01)
    ?(packet_len = 4) ?link_latency () =
  let cfg =
    { Mvl.Wormhole.default_config with
      Mvl.Wormhole.offered_load = load; packet_len; warmup = 300;
      measure = 1500 }
  in
  Mvl.Wormhole.run ~config:cfg ?link_latency fabric

let test_low_load_delivers_all () =
  let r = run_with () in
  Alcotest.(check int) "hypercube all delivered" r.Mvl.Wormhole.injected
    r.Mvl.Wormhole.delivered;
  let rt = run_with ~fabric:(Mvl.Wormhole.Torus { k = 4; n = 2 }) () in
  Alcotest.(check int) "torus all delivered" rt.Mvl.Wormhole.injected
    rt.Mvl.Wormhole.delivered

let test_serialization_latency () =
  (* zero-load packet latency ~ hops + (packet_len - 1) + ejection *)
  let short = run_with ~load:0.001 ~packet_len:1 () in
  let long = run_with ~load:0.001 ~packet_len:8 () in
  Alcotest.(check bool) "longer packets, higher latency" true
    (long.Mvl.Wormhole.avg_latency
    > short.Mvl.Wormhole.avg_latency +. 5.0)

let test_contention_grows_latency () =
  let quiet = run_with ~load:0.002 () in
  let busy = run_with ~load:0.05 () in
  Alcotest.(check bool) "contention" true
    (busy.Mvl.Wormhole.avg_latency > quiet.Mvl.Wormhole.avg_latency)

let test_no_deadlock_under_stress () =
  (* past saturation the network must keep making progress (wormhole
     with e-cube + dateline VCs is deadlock-free) *)
  let r =
    run_with ~fabric:(Mvl.Wormhole.Torus { k = 4; n = 2 }) ~load:0.2 ()
  in
  Alcotest.(check bool) "progress under overload" true
    (r.Mvl.Wormhole.delivered > r.Mvl.Wormhole.injected / 2)

let test_torus_needs_two_vcs () =
  try
    let cfg = { Mvl.Wormhole.default_config with Mvl.Wormhole.vcs = 1 } in
    ignore (Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Torus { k = 4; n = 2 }));
    Alcotest.fail "single-VC torus accepted"
  with Invalid_argument _ -> ()

let test_deterministic () =
  let a = run_with () and b = run_with () in
  Alcotest.(check bool) "reproducible" true (a = b)

let test_layout_latencies_matter () =
  let fam = Mvl.Families.hypercube 6 in
  let link layers =
    Mvl.Network_sim.link_latency_of_layout ~units_per_cycle:16
      (fam.Mvl.Families.layout ~layers)
  in
  let slow = run_with ~link_latency:(link 2) () in
  let fast = run_with ~link_latency:(link 8) () in
  Alcotest.(check bool) "more layers, faster wormhole network" true
    (fast.Mvl.Wormhole.avg_latency < slow.Mvl.Wormhole.avg_latency)

let test_adaptive_delivers () =
  let cfg =
    { Mvl.Wormhole.default_config with
      Mvl.Wormhole.routing = Mvl.Wormhole.Adaptive; vcs = 3;
      offered_load = 0.02; warmup = 200; measure = 1000 }
  in
  let r = Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Torus { k = 4; n = 2 }) in
  Alcotest.(check int) "adaptive torus delivers all" r.Mvl.Wormhole.injected
    r.Mvl.Wormhole.delivered;
  let rh =
    Mvl.Wormhole.run
      ~config:{ cfg with Mvl.Wormhole.vcs = 2 }
      (Mvl.Wormhole.Hypercube 5)
  in
  Alcotest.(check int) "adaptive hypercube delivers all"
    rh.Mvl.Wormhole.injected rh.Mvl.Wormhole.delivered

let test_adaptive_no_deadlock_under_stress () =
  let cfg =
    { Mvl.Wormhole.default_config with
      Mvl.Wormhole.routing = Mvl.Wormhole.Adaptive; vcs = 3;
      traffic = Mvl.Traffic.Transpose; offered_load = 0.25; warmup = 200;
      measure = 800 }
  in
  let r = Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Torus { k = 4; n = 2 }) in
  Alcotest.(check bool) "keeps making progress" true
    (r.Mvl.Wormhole.delivered > r.Mvl.Wormhole.injected / 2)

let test_adaptive_vc_requirements () =
  (try
     let cfg =
       { Mvl.Wormhole.default_config with
         Mvl.Wormhole.routing = Mvl.Wormhole.Adaptive; vcs = 2 }
     in
     ignore (Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Torus { k = 4; n = 2 }));
     Alcotest.fail "2-VC adaptive torus accepted"
   with Invalid_argument _ -> ());
  try
    let cfg =
      { Mvl.Wormhole.default_config with
        Mvl.Wormhole.routing = Mvl.Wormhole.Adaptive; vcs = 1 }
    in
    ignore (Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Hypercube 4));
    Alcotest.fail "1-VC adaptive hypercube accepted"
  with Invalid_argument _ -> ()

(* fixed-seed golden statistics, captured from the original list-based
   router before the zero-allocation rewrite: the histogram hash pins
   every delivered packet's latency, so any change to VC arbitration
   order or candidate sorting shows up here *)
let hash_hist pairs =
  Array.fold_left
    (fun h (lat, cnt) -> (((h * 1000003) + (lat * 8191) + cnt) land max_int))
    0 pairs

let check_golden name (r : Mvl.Wormhole.result) ~injected ~delivered ~p50
    ~p95 ~p99 ~max ~hist_hash =
  Alcotest.(check int) (name ^ " injected") injected r.Mvl.Wormhole.injected;
  Alcotest.(check int) (name ^ " delivered") delivered r.Mvl.Wormhole.delivered;
  Alcotest.(check int)
    (name ^ " undrained")
    (injected - delivered)
    r.Mvl.Wormhole.undrained;
  Alcotest.(check int) (name ^ " p50") p50 r.Mvl.Wormhole.p50_latency;
  Alcotest.(check int) (name ^ " p95") p95 r.Mvl.Wormhole.p95_latency;
  Alcotest.(check int) (name ^ " p99") p99 r.Mvl.Wormhole.p99_latency;
  Alcotest.(check int) (name ^ " max") max r.Mvl.Wormhole.max_latency;
  Alcotest.(check int)
    (name ^ " histogram hash") hist_hash
    (hash_hist r.Mvl.Wormhole.latency_histogram)

let test_golden_hypercube_ecube () =
  let cfg =
    { Mvl.Wormhole.default_config with
      Mvl.Wormhole.offered_load = 0.03; warmup = 100; measure = 400;
      drain = 2000; seed = 2 }
  in
  check_golden "wh hypercube/e-cube"
    (Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Hypercube 5))
    ~injected:386 ~delivered:386 ~p50:6 ~p95:10 ~p99:11 ~max:14
    ~hist_hash:3420119115101005763

let test_golden_torus_adaptive () =
  (* adaptive + datelines + 3 VCs: the candidate-scan ordering and the
     credit-sorted stable arbitration are all on this path *)
  let cfg =
    { Mvl.Wormhole.default_config with
      Mvl.Wormhole.routing = Mvl.Wormhole.Adaptive; vcs = 3;
      traffic = Mvl.Traffic.Transpose; offered_load = 0.05; warmup = 100;
      measure = 400; drain = 2000; seed = 5 }
  in
  check_golden "wh torus/adaptive"
    (Mvl.Wormhole.run ~config:cfg (Mvl.Wormhole.Torus { k = 4; n = 2 }))
    ~injected:345 ~delivered:345 ~p50:5 ~p95:11 ~p99:16 ~max:19
    ~hist_hash:2103898282786443092

(* past saturation with a drain too short to empty the fabric: the
   horizon expires with worms still in flight, which must be reported
   as undrained rather than silently vanishing (they used to) *)
let undrained_cfg =
  { Mvl.Wormhole.default_config with
    Mvl.Wormhole.offered_load = 0.2; warmup = 50; measure = 200; drain = 20;
    seed = 13 }

let test_golden_torus_undrained () =
  let r = Mvl.Wormhole.run ~config:undrained_cfg (Mvl.Wormhole.Torus { k = 4; n = 2 }) in
  Alcotest.(check bool) "horizon leaves worms in flight" true
    (r.Mvl.Wormhole.undrained > 0);
  check_golden "wh torus/undrained" r ~injected:662 ~delivered:524
    ~p50:29 ~p95:67 ~p99:85 ~max:106
    ~hist_hash:1399783060572037098

(* the sharded wormhole engine's contract mirrors {!Network_sim}'s:
   full-record equality with the serial engine at every jobs value,
   over deterministic e-cube, adaptive + datelines, and an overloaded
   run with undrained worms *)
let test_sharded_matches_serial () =
  let configs =
    [
      ( "wh hypercube/e-cube",
        { Mvl.Wormhole.default_config with
          Mvl.Wormhole.offered_load = 0.03; warmup = 100; measure = 400;
          drain = 2000; seed = 2 },
        Mvl.Wormhole.Hypercube 5 );
      ( "wh torus/adaptive",
        { Mvl.Wormhole.default_config with
          Mvl.Wormhole.routing = Mvl.Wormhole.Adaptive; vcs = 3;
          traffic = Mvl.Traffic.Transpose; offered_load = 0.05; warmup = 100;
          measure = 400; drain = 2000; seed = 5 },
        Mvl.Wormhole.Torus { k = 4; n = 2 } );
      ("wh torus/undrained", undrained_cfg, Mvl.Wormhole.Torus { k = 4; n = 2 });
    ]
  in
  List.iter
    (fun (name, config, fabric) ->
      let serial = Mvl.Wormhole.run ~config fabric in
      List.iter
        (fun jobs ->
          let sharded = Mvl.Wormhole.run ~config ~jobs fabric in
          Alcotest.(check bool)
            (Printf.sprintf "%s sharded=serial at jobs=%d" name jobs)
            true (sharded = serial))
        [ 2; 4 ])
    configs

let test_graph_of_fabric () =
  Alcotest.(check bool) "hypercube fabric" true
    (Mvl.Graph.equal
       (Mvl.Wormhole.graph_of_fabric (Mvl.Wormhole.Hypercube 4))
       (Mvl.Hypercube.create 4));
  Alcotest.(check bool) "torus fabric" true
    (Mvl.Graph.equal
       (Mvl.Wormhole.graph_of_fabric (Mvl.Wormhole.Torus { k = 5; n = 2 }))
       (Mvl.Kary_ncube.create ~k:5 ~n:2))

let suite =
  [
    Alcotest.test_case "low load delivers all" `Quick test_low_load_delivers_all;
    Alcotest.test_case "serialization latency" `Quick test_serialization_latency;
    Alcotest.test_case "contention grows latency" `Quick
      test_contention_grows_latency;
    Alcotest.test_case "no deadlock under stress" `Slow
      test_no_deadlock_under_stress;
    Alcotest.test_case "torus needs 2 VCs" `Quick test_torus_needs_two_vcs;
    Alcotest.test_case "deterministic" `Quick test_deterministic;
    Alcotest.test_case "layout latencies matter" `Quick
      test_layout_latencies_matter;
    Alcotest.test_case "adaptive delivers" `Quick test_adaptive_delivers;
    Alcotest.test_case "adaptive stress" `Slow
      test_adaptive_no_deadlock_under_stress;
    Alcotest.test_case "adaptive vc requirements" `Quick
      test_adaptive_vc_requirements;
    Alcotest.test_case "golden: hypercube e-cube" `Quick
      test_golden_hypercube_ecube;
    Alcotest.test_case "golden: torus adaptive" `Quick
      test_golden_torus_adaptive;
    Alcotest.test_case "golden: torus undrained" `Quick
      test_golden_torus_undrained;
    Alcotest.test_case "sharded engine matches serial" `Quick
      test_sharded_matches_serial;
    Alcotest.test_case "fabric graphs" `Quick test_graph_of_fabric;
  ]
