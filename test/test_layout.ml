open Mvl_core

let strict_valid name lay =
  match Mvl.Check.validate ~mode:Mvl.Check.Strict lay with
  | [] -> ()
  | v :: _ ->
      Alcotest.fail (Format.asprintf "%s: %a" name Mvl.Check.pp_violation v)

let hypercube_ortho n =
  let row = Mvl.Collinear_hypercube.create ((n + 1) / 2) in
  let col = Mvl.Collinear_hypercube.create (n - ((n + 1) / 2)) in
  let col =
    if n - ((n + 1) / 2) = 0 then
      Mvl.Collinear.natural (Mvl.Graph.of_edges ~n:1 [])
    else col
  in
  Mvl.Orthogonal.of_product ~row_factor:row ~col_factor:col
    (Mvl.Hypercube.create n)

let test_orthogonal_classification () =
  let o = hypercube_ortho 4 in
  Alcotest.(check int) "rows" 4 o.Mvl.Orthogonal.rows;
  Alcotest.(check int) "cols" 4 o.Mvl.Orthogonal.cols;
  (* every row is a 2-cube line: 2 tracks each *)
  Array.iter
    (fun t -> Alcotest.(check int) "row tracks" 2 t)
    o.Mvl.Orthogonal.row_tracks;
  Array.iter
    (fun t -> Alcotest.(check int) "col tracks" 2 t)
    o.Mvl.Orthogonal.col_tracks

let test_orthogonal_rejects_non_orthogonal () =
  (* a triangle cannot be placed orthogonally on a 1x3 grid... it can
     (all in one row); use a graph with an edge that is neither *)
  let g = Mvl.Graph.of_edges ~n:4 [ (0, 3) ] in
  try
    ignore
      (Mvl.Orthogonal.create g ~rows:2 ~cols:2 ~place:(fun u ->
           (u / 2, u mod 2)));
    Alcotest.fail "diagonal edge accepted"
  with Invalid_argument _ -> ()

let test_groups () =
  let g = Mvl.Multilayer.groups_for_layers 2 in
  Alcotest.(check int) "L=2 horizontal" 1 g.Mvl.Multilayer.horizontal;
  Alcotest.(check int) "L=2 vertical" 1 g.Mvl.Multilayer.vertical;
  let g5 = Mvl.Multilayer.groups_for_layers 5 in
  Alcotest.(check int) "L=5 horizontal" 3 g5.Mvl.Multilayer.horizontal;
  Alcotest.(check int) "L=5 vertical" 2 g5.Mvl.Multilayer.vertical

let test_realize_valid_all_layers () =
  let o = hypercube_ortho 5 in
  List.iter
    (fun layers ->
      let lay = Mvl.Multilayer.realize o ~layers in
      strict_valid (Printf.sprintf "5-cube L=%d" layers) lay;
      let m = Mvl.Layout.metrics lay in
      Alcotest.(check int) "volume = layers * area" (layers * m.Mvl.Layout.area)
        m.Mvl.Layout.volume)
    [ 2; 3; 4; 5; 6; 7; 8 ]

let test_area_shrinks_with_layers () =
  let o = hypercube_ortho 10 in
  let a2 = (Mvl.Multilayer.metrics o ~layers:2).Mvl.Layout.area in
  let a4 = (Mvl.Multilayer.metrics o ~layers:4).Mvl.Layout.area in
  let a8 = (Mvl.Multilayer.metrics o ~layers:8).Mvl.Layout.area in
  Alcotest.(check bool) "A(4) < A(2)" true (a4 < a2);
  Alcotest.(check bool) "A(8) < A(4)" true (a8 < a4);
  (* the asymptotic gain is (L/2)^2 = 16; node footprints still eat a
     good part of it at n=10 *)
  Alcotest.(check bool) "A(2)/A(8) is substantial" true
    (float_of_int a2 /. float_of_int a8 > 3.5)

let test_maxwire_shrinks_with_layers () =
  let o = hypercube_ortho 8 in
  let w2 = (Mvl.Multilayer.metrics o ~layers:2).Mvl.Layout.max_wire in
  let w8 = (Mvl.Multilayer.metrics o ~layers:8).Mvl.Layout.max_wire in
  Alcotest.(check bool) "maxwire(8) < maxwire(2)" true (w8 < w2)

let test_node_side_scaling () =
  (* growing node footprints within o(gap) must not break validity and
     must grow area only modestly (optimal scalability, §3.2) *)
  let o = hypercube_ortho 6 in
  let base = (Mvl.Multilayer.metrics o ~layers:2).Mvl.Layout.area in
  let lay = Mvl.Multilayer.realize ~node_side:10 o ~layers:2 in
  strict_valid "node_side=10" lay;
  let grown = (Mvl.Layout.metrics lay).Mvl.Layout.area in
  Alcotest.(check bool) "bigger nodes, bigger area" true (grown > base);
  Alcotest.(check bool) "still dominated by tracks" true
    (float_of_int grown /. float_of_int base < 4.0)

let test_thompson_mode_accepts_strict () =
  let o = hypercube_ortho 4 in
  let lay = Mvl.Multilayer.realize o ~layers:2 in
  Alcotest.(check bool) "strict-valid is thompson-valid" true
    (Mvl.Check.is_valid ~mode:Mvl.Check.Thompson lay)

let test_kary_realization () =
  List.iter
    (fun (k, n, layers) ->
      let fam = Mvl.Families.kary ~k ~n () in
      let lay = fam.Mvl.Families.layout ~layers in
      strict_valid (Printf.sprintf "kary %d,%d L=%d" k n layers) lay)
    [ (3, 2, 2); (3, 2, 3); (4, 2, 4); (3, 3, 6); (5, 2, 5) ]

let test_ghc_realization () =
  List.iter
    (fun (r, n, layers) ->
      let fam = Mvl.Families.generalized_hypercube ~r ~n () in
      let lay = fam.Mvl.Families.layout ~layers in
      strict_valid (Printf.sprintf "ghc %d,%d L=%d" r n layers) lay)
    [ (3, 2, 2); (4, 2, 4); (3, 3, 8); (5, 2, 3) ]

let test_one_dimensional_factor () =
  (* n = 1: single row of nodes, no column edges *)
  let fam = Mvl.Families.hypercube 1 in
  let lay = fam.Mvl.Families.layout ~layers:2 in
  strict_valid "1-cube" lay

let test_translation_invariance () =
  let fam = Mvl.Families.hypercube 5 in
  let lay = fam.Mvl.Families.layout ~layers:4 in
  let moved = Mvl.Layout.translate lay ~dx:17 ~dy:(-3) in
  strict_valid "translated layout" moved;
  let m = Mvl.Layout.metrics lay and m' = Mvl.Layout.metrics moved in
  Alcotest.(check int) "area invariant" m.Mvl.Layout.area m'.Mvl.Layout.area;
  Alcotest.(check int) "max wire invariant" m.Mvl.Layout.max_wire
    m'.Mvl.Layout.max_wire;
  Alcotest.(check int) "total wire invariant" m.Mvl.Layout.total_wire
    m'.Mvl.Layout.total_wire

let test_wire_count_and_edges () =
  let fam = Mvl.Families.hypercube 5 in
  let lay = fam.Mvl.Families.layout ~layers:4 in
  Alcotest.(check int) "one wire per edge"
    (Mvl.Graph.m fam.Mvl.Families.graph)
    (Array.length (Mvl.Layout.wires lay))

let suite =
  [
    Alcotest.test_case "orthogonal classification" `Quick
      test_orthogonal_classification;
    Alcotest.test_case "non-orthogonal rejected" `Quick
      test_orthogonal_rejects_non_orthogonal;
    Alcotest.test_case "layer groups" `Quick test_groups;
    Alcotest.test_case "strict-valid for L=2..8" `Quick
      test_realize_valid_all_layers;
    Alcotest.test_case "area shrinks with L" `Quick test_area_shrinks_with_layers;
    Alcotest.test_case "max wire shrinks with L" `Quick
      test_maxwire_shrinks_with_layers;
    Alcotest.test_case "optimal node-size scalability" `Quick
      test_node_side_scaling;
    Alcotest.test_case "thompson accepts strict layouts" `Quick
      test_thompson_mode_accepts_strict;
    Alcotest.test_case "kary realizations" `Quick test_kary_realization;
    Alcotest.test_case "ghc realizations" `Quick test_ghc_realization;
    Alcotest.test_case "one-dimensional factor" `Quick
      test_one_dimensional_factor;
    Alcotest.test_case "translation invariance" `Quick
      test_translation_invariance;
    Alcotest.test_case "wire count" `Quick test_wire_count_and_edges;
  ]
