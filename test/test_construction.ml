(* Differential tests for the columnar construction engine: the CSR
   [Orthogonal] builder and flat [Track_assign] engine against a naive
   list-based reference on randomized small grids, and byte-parity of
   sharded layout construction across job counts. *)
open Mvl_core

(* -- reference implementation -------------------------------------- *)

(* per-line edge tables the way the pre-columnar builder produced them:
   scan the (eid-ascending) edge list, collect each line's edges into a
   list, track-pack with the record-front-end greedy *)
let reference_lines graph ~rows ~cols ~place =
  let row_lists = Array.make rows [] and col_lists = Array.make cols [] in
  let eid = ref 0 in
  Mvl.Graph.iter_edges graph (fun u v ->
      let ru, cu = place u and rv, cv = place v in
      if ru = rv then
        row_lists.(ru) <- (!eid, min cu cv, max cu cv) :: row_lists.(ru)
      else if cu = cv then
        col_lists.(cu) <- (!eid, min ru rv, max ru rv) :: col_lists.(cu)
      else Alcotest.fail "reference: edge neither row nor column";
      incr eid);
  let pack lists =
    Array.map
      (fun l ->
        let arr = Array.of_list (List.rev l) in
        let spans =
          Array.map (fun (_, a, b) -> Mvl.Interval.make a b) arr
        in
        let tracks = Mvl.Track_assign.greedy spans in
        (arr, tracks, Mvl.Track_assign.count_tracks tracks))
      lists
  in
  (pack row_lists, pack col_lists)

(* a random simple graph whose every edge stays within one grid line *)
let random_grid_graph st ~rows ~cols =
  let n = rows * cols in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for _ = 1 to 2 * cols do
      let c1 = Random.State.int st cols and c2 = Random.State.int st cols in
      if c1 <> c2 then edges := ((r * cols) + c1, (r * cols) + c2) :: !edges
    done
  done;
  for c = 0 to cols - 1 do
    for _ = 1 to 2 * rows do
      let r1 = Random.State.int st rows and r2 = Random.State.int st rows in
      if r1 <> r2 then edges := ((r1 * cols) + c, (r2 * cols) + c) :: !edges
    done
  done;
  Mvl.Graph.of_edges ~n !edges

let check_line name (le : Mvl.Orthogonal.line_edge array)
    ((ref_edges, ref_tracks, ref_count), line_tracks) =
  Alcotest.(check int)
    (name ^ " edge count")
    (Array.length ref_edges) (Array.length le);
  Array.iteri
    (fun i { Mvl.Orthogonal.edge_id; a; b; track } ->
      let eid, ra, rb = ref_edges.(i) in
      Alcotest.(check int) (name ^ " eid order") eid edge_id;
      Alcotest.(check int) (name ^ " span lo") ra a;
      Alcotest.(check int) (name ^ " span hi") rb b;
      Alcotest.(check int) (name ^ " track") ref_tracks.(i) track)
    le;
  Alcotest.(check int) (name ^ " track count") ref_count line_tracks

let test_orthogonal_differential () =
  let st = Random.State.make [| 0x5ca1e |] in
  for trial = 1 to 40 do
    let rows = 1 + Random.State.int st 7
    and cols = 1 + Random.State.int st 7 in
    let graph = random_grid_graph st ~rows ~cols in
    let place i = (i / cols, i mod cols) in
    let o = Mvl.Orthogonal.create graph ~rows ~cols ~place in
    let ref_rows, ref_cols = reference_lines graph ~rows ~cols ~place in
    for r = 0 to rows - 1 do
      check_line
        (Printf.sprintf "trial %d row %d" trial r)
        (Mvl.Orthogonal.row_edges o r)
        (ref_rows.(r), o.Mvl.Orthogonal.row_tracks.(r))
    done;
    for c = 0 to cols - 1 do
      check_line
        (Printf.sprintf "trial %d col %d" trial c)
        (Mvl.Orthogonal.col_edges o c)
        (ref_cols.(c), o.Mvl.Orthogonal.col_tracks.(c))
    done
  done

(* packing a line is independent of how many domains pack the others *)
let test_orthogonal_jobs_parity () =
  let st = Random.State.make [| 0xbeef |] in
  for _ = 1 to 10 do
    let rows = 2 + Random.State.int st 6
    and cols = 2 + Random.State.int st 6 in
    let graph = random_grid_graph st ~rows ~cols in
    let place i = (i / cols, i mod cols) in
    let o1 = Mvl.Orthogonal.create ~jobs:1 graph ~rows ~cols ~place in
    let o3 = Mvl.Orthogonal.create ~jobs:3 graph ~rows ~cols ~place in
    Alcotest.(check (array int))
      "row tracks" o1.Mvl.Orthogonal.row_track o3.Mvl.Orthogonal.row_track;
    Alcotest.(check (array int))
      "col tracks" o1.Mvl.Orthogonal.col_track o3.Mvl.Orthogonal.col_track
  done

(* -- flat greedy engine -------------------------------------------- *)

let shuffle st a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done

let test_flat_greedy_differential () =
  let st = Random.State.make [| 0xf1a7 |] in
  let scratch = Mvl.Track_assign.scratch () in
  for _ = 1 to 60 do
    (* a random set of DISTINCT spans — the regime where the flat
       total-order engine is specified to match the record greedy *)
    let seen = Hashtbl.create 64 in
    let spans = ref [] in
    for _ = 1 to 1 + Random.State.int st 40 do
      let x = Random.State.int st 50 and y = Random.State.int st 50 in
      if x <> y && not (Hashtbl.mem seen (min x y, max x y)) then begin
        Hashtbl.add seen (min x y, max x y) ();
        spans := (min x y, max x y) :: !spans
      end
    done;
    let spans = Array.of_list !spans in
    shuffle st spans;
    let n = Array.length spans in
    let ref_tracks =
      Mvl.Track_assign.greedy
        (Array.map (fun (a, b) -> Mvl.Interval.make a b) spans)
    in
    (* flat columns with a nonzero offset, so slice handling is tested *)
    let off = 3 in
    let lo = Array.make (off + n + 2) 0 and hi = Array.make (off + n + 2) 0 in
    let track = Array.make (off + n + 2) (-1) in
    Array.iteri
      (fun i (a, b) ->
        lo.(off + i) <- a;
        hi.(off + i) <- b)
      spans;
    let used =
      Mvl.Track_assign.greedy_into scratch ~lo ~hi ~track ~off ~len:n
    in
    for i = 0 to n - 1 do
      Alcotest.(check int) "flat = record greedy" ref_tracks.(i)
        track.(off + i)
    done;
    Alcotest.(check int) "tracks used = record count"
      (Mvl.Track_assign.count_tracks ref_tracks)
      used;
    Alcotest.(check int) "tracks used = max density"
      (Mvl.Track_assign.max_density_into scratch ~lo ~hi ~off ~len:n)
      used;
    (* outside the slice: untouched *)
    Alcotest.(check int) "before slice" (-1) track.(0);
    Alcotest.(check int) "after slice" (-1) track.(off + n)
  done

let test_sort_ints_range () =
  let st = Random.State.make [| 0x50f7 |] in
  for _ = 1 to 40 do
    let n = 1 + Random.State.int st 64 in
    let a = Array.init n (fun _ -> Random.State.int st 1000) in
    let off = Random.State.int st n in
    let len = Random.State.int st (n - off + 1) in
    let expect = Array.copy a in
    let slice = Array.sub expect off len in
    Array.sort compare slice;
    Array.blit slice 0 expect off len;
    Mvl.Track_assign.sort_ints a ~off ~len;
    Alcotest.(check (array int)) "range sort" expect a
  done

(* -- sharded layout byte-parity ------------------------------------ *)

let test_layout_jobs_parity () =
  List.iter
    (fun spec_str ->
      let fam = Mvl.Registry.build_exn (Mvl.Registry.spec_exn spec_str) in
      let base =
        Mvl.Serialize.to_string (fam.Mvl.Families.layout ~layers:4)
      in
      List.iter
        (fun jobs ->
          let lay = fam.Mvl.Families.layout_jobs ~jobs ~layers:4 in
          Alcotest.(check bool)
            (Printf.sprintf "%s jobs=%d byte-identical" spec_str jobs)
            true
            (String.equal base (Mvl.Serialize.to_string lay)))
        [ 1; 2; 4 ])
    [ "hypercube:10"; "kary:4:5" ]

let suite =
  [
    Alcotest.test_case "orthogonal CSR matches list reference" `Quick
      test_orthogonal_differential;
    Alcotest.test_case "orthogonal packing parity across jobs" `Quick
      test_orthogonal_jobs_parity;
    Alcotest.test_case "flat greedy matches record greedy" `Quick
      test_flat_greedy_differential;
    Alcotest.test_case "sort_ints sorts exactly the range" `Quick
      test_sort_ints_range;
    Alcotest.test_case "layout byte-identical at jobs 1/2/4" `Quick
      test_layout_jobs_parity;
  ]
