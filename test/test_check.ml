(* Negative tests: the verifier must actually catch broken geometry. *)
open Mvl_core

let pt x y z = Mvl.Point.make ~x ~y ~z

let two_node_graph = Mvl.Graph.of_edges ~n:2 [ (0, 1) ]

let simple_nodes =
  [|
    Mvl.Rect.make ~x0:0 ~y0:0 ~x1:2 ~y1:2;
    Mvl.Rect.make ~x0:10 ~y0:0 ~x1:12 ~y1:2;
  |]

let wire_of points = Mvl.Wire.make ~edge:(0, 1) points

(* rises from node 0's top, runs above the nodes, drops into node 1 *)
let good_layout =
  Mvl.Layout.make ~graph:two_node_graph ~layers:2 ~nodes:simple_nodes
    ~wires:
      [|
        wire_of
          [ pt 1 2 1; pt 1 2 2; pt 1 4 2; pt 1 4 1; pt 11 4 1; pt 11 4 2; pt 11 2 2; pt 11 2 1 ];
      |]
    ()

let rule_of_violations violations =
  List.map (fun v -> v.Mvl.Check.rule) violations

let test_good_layout_passes () =
  Alcotest.(check (list string)) "no violations" []
    (rule_of_violations (Mvl.Check.validate good_layout))

let test_layer_range () =
  let lay =
    Mvl.Layout.make ~graph:two_node_graph ~layers:2 ~nodes:simple_nodes
      ~wires:[| wire_of [ pt 1 2 1; pt 1 2 3; pt 11 2 3; pt 11 2 1 ] |] ()
  in
  Alcotest.(check bool) "layer overflow caught" true
    (List.mem "layer-range" (rule_of_violations (Mvl.Check.validate lay)))

let test_node_overlap () =
  let nodes =
    [| Mvl.Rect.make ~x0:0 ~y0:0 ~x1:4 ~y1:2; Mvl.Rect.make ~x0:3 ~y0:0 ~x1:7 ~y1:2 |]
  in
  let lay =
    Mvl.Layout.make ~graph:two_node_graph ~layers:2 ~nodes
      ~wires:[| wire_of [ pt 1 2 1; pt 1 3 1; pt 6 3 1; pt 6 2 1 ] |] ()
  in
  Alcotest.(check bool) "overlapping footprints caught" true
    (List.mem "node-overlap" (rule_of_violations (Mvl.Check.validate lay)))

let test_terminal_mismatch () =
  (* wire endpoints float in space rather than on the node boundary *)
  let lay =
    Mvl.Layout.make ~graph:two_node_graph ~layers:2 ~nodes:simple_nodes
      ~wires:[| wire_of [ pt 5 5 1; pt 6 5 1 ] |] ()
  in
  Alcotest.(check bool) "bad terminal caught" true
    (List.mem "terminal" (rule_of_violations (Mvl.Check.validate lay)))

let test_foreign_node_crossing () =
  (* a third node sits in the wire's path on layer 1 *)
  let graph = Mvl.Graph.of_edges ~n:3 [ (0, 1) ] in
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:0 ~x1:2 ~y1:2;
      Mvl.Rect.make ~x0:10 ~y0:0 ~x1:12 ~y1:2;
      Mvl.Rect.make ~x0:5 ~y0:0 ~x1:7 ~y1:2;
    |]
  in
  let lay =
    Mvl.Layout.make ~graph ~layers:2 ~nodes
      ~wires:[| wire_of [ pt 2 1 1; pt 10 1 1 ] |] ()
  in
  Alcotest.(check bool) "foreign node hit caught" true
    (List.mem "node-hit" (rule_of_violations (Mvl.Check.validate lay)))

let overlapping_wires_layout () =
  (* two wires sharing a horizontal run on the same layer *)
  let graph = Mvl.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:0 ~x1:2 ~y1:2;
      Mvl.Rect.make ~x0:10 ~y0:0 ~x1:12 ~y1:2;
      Mvl.Rect.make ~x0:0 ~y0:10 ~x1:2 ~y1:12;
      Mvl.Rect.make ~x0:10 ~y0:10 ~x1:12 ~y1:12;
    |]
  in
  let w1 = wire_of [ pt 1 2 1; pt 1 5 1; pt 11 5 1; pt 11 2 1 ] in
  let w2 =
    Mvl.Wire.make ~edge:(2, 3) [ pt 2 11 1; pt 5 11 1; pt 5 5 1; pt 8 5 1; pt 8 11 1; pt 10 11 1 ]
  in
  Mvl.Layout.make ~graph ~layers:2 ~nodes ~wires:[| w1; w2 |] ()

let test_wire_overlap () =
  let rules = rule_of_violations (Mvl.Check.validate (overlapping_wires_layout ())) in
  Alcotest.(check bool) "same-line overlap caught" true
    (List.mem "overlap" rules)

let crossing_layout () =
  (* two wires crossing at a point on the same layer *)
  let graph = Mvl.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:4 ~x1:1 ~y1:5;
      Mvl.Rect.make ~x0:10 ~y0:4 ~x1:11 ~y1:5;
      Mvl.Rect.make ~x0:4 ~y0:0 ~x1:5 ~y1:1;
      Mvl.Rect.make ~x0:4 ~y0:10 ~x1:5 ~y1:11;
    |]
  in
  (* horizontal wire through y=4.5 region: runs at y=4 between nodes *)
  let w1 = Mvl.Wire.make ~edge:(0, 1) [ pt 1 4 1; pt 10 4 1 ] in
  (* vertical wire crossing it at (4,4) on the same layer *)
  let w2 = Mvl.Wire.make ~edge:(2, 3) [ pt 4 1 1; pt 4 10 1 ] in
  Mvl.Layout.make ~graph ~layers:2 ~nodes ~wires:[| w1; w2 |] ()

let test_crossing_strict_vs_thompson () =
  let lay = crossing_layout () in
  Alcotest.(check bool) "strict rejects point crossing" true
    (List.mem "crossing"
       (rule_of_violations (Mvl.Check.validate ~mode:Mvl.Check.Strict lay)));
  Alcotest.(check bool) "thompson allows interior crossing" false
    (List.mem "crossing"
       (rule_of_violations (Mvl.Check.validate ~mode:Mvl.Check.Thompson lay)))

let test_knock_knee_rejected_in_thompson () =
  (* crossing exactly at a wire's bend: a knock-knee, illegal even under
     Thompson *)
  let graph = Mvl.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:4 ~x1:1 ~y1:5;
      Mvl.Rect.make ~x0:10 ~y0:0 ~x1:11 ~y1:1;
      Mvl.Rect.make ~x0:4 ~y0:8 ~x1:5 ~y1:9;
      Mvl.Rect.make ~x0:6 ~y0:8 ~x1:7 ~y1:9;
    |]
  in
  (* w1 turns left->down at (4,4); w2 turns up->right at the same point:
     the arms are disjoint except for the shared bend — a knock-knee *)
  let w1 = Mvl.Wire.make ~edge:(0, 1) [ pt 1 4 1; pt 4 4 1; pt 4 0 1; pt 10 0 1 ] in
  let w2 = Mvl.Wire.make ~edge:(2, 3) [ pt 4 8 1; pt 4 4 1; pt 6 4 1; pt 6 8 1 ] in
  let lay = Mvl.Layout.make ~graph ~layers:2 ~nodes ~wires:[| w1; w2 |] () in
  Alcotest.(check bool) "knock-knee rejected" true
    (rule_of_violations (Mvl.Check.validate ~mode:Mvl.Check.Thompson lay) <> [])

let test_via_collision () =
  let graph = Mvl.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:0 ~x1:1 ~y1:1;
      Mvl.Rect.make ~x0:10 ~y0:0 ~x1:11 ~y1:1;
      Mvl.Rect.make ~x0:0 ~y0:10 ~x1:1 ~y1:11;
      Mvl.Rect.make ~x0:10 ~y0:10 ~x1:11 ~y1:11;
    |]
  in
  (* both wires drop a via at (5,5) *)
  let w1 =
    Mvl.Wire.make ~edge:(0, 1)
      [ pt 1 1 1; pt 5 1 1; pt 5 5 1; pt 5 5 2; pt 10 5 2; pt 10 1 2; pt 10 1 1 ]
  in
  let w2 =
    Mvl.Wire.make ~edge:(2, 3)
      [ pt 1 10 1; pt 5 10 1; pt 5 5 1; pt 5 5 2; pt 10 5 2; pt 10 10 2; pt 10 10 1 ]
  in
  let lay = Mvl.Layout.make ~graph ~layers:2 ~nodes ~wires:[| w1; w2 |] () in
  let rules = rule_of_violations (Mvl.Check.validate lay) in
  Alcotest.(check bool) "via collision caught" true
    (List.exists (fun r -> r = "via-overlap" || r = "overlap") rules)

let test_via_pierces_run () =
  let graph = Mvl.Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  let nodes =
    [|
      Mvl.Rect.make ~x0:0 ~y0:0 ~x1:1 ~y1:1;
      Mvl.Rect.make ~x0:10 ~y0:0 ~x1:11 ~y1:1;
      Mvl.Rect.make ~x0:0 ~y0:6 ~x1:1 ~y1:7;
      Mvl.Rect.make ~x0:10 ~y0:6 ~x1:11 ~y1:7;
    |]
  in
  (* w2 runs horizontally on layer 2 at y=3 passing x=5; w1 vias through
     layer 2 at (5,3) *)
  let w1 =
    Mvl.Wire.make ~edge:(0, 1)
      [ pt 1 1 1; pt 5 1 1; pt 5 3 1; pt 5 3 3; pt 10 3 3; pt 10 1 3; pt 10 1 1 ]
  in
  let w2 =
    Mvl.Wire.make ~edge:(2, 3)
      [ pt 1 6 1; pt 1 3 1; pt 1 3 2; pt 9 3 2; pt 9 6 2; pt 9 6 1; pt 10 6 1 ]
  in
  let lay = Mvl.Layout.make ~graph ~layers:3 ~nodes ~wires:[| w1; w2 |] () in
  let rules = rule_of_violations (Mvl.Check.validate lay) in
  Alcotest.(check bool) "via piercing caught" true (List.mem "via-run" rules)

let test_max_violations_limit () =
  let lay = overlapping_wires_layout () in
  let all = Mvl.Check.validate ~max_violations:1 lay in
  Alcotest.(check int) "limit respected" 1 (List.length all)

let test_truncation_flagged () =
  (* a result with exactly [max_violations] entries used to look
     complete; Check.run now says whether the cap was hit *)
  let lay = overlapping_wires_layout () in
  let capped = Mvl.Check.run ~max_violations:1 lay in
  Alcotest.(check int) "capped to one" 1
    (List.length capped.Mvl.Check.violations);
  Alcotest.(check bool) "capped result flagged truncated" true
    capped.Mvl.Check.truncated;
  let full = Mvl.Check.run lay in
  Alcotest.(check bool) "default cap not reached here" false
    full.Mvl.Check.truncated;
  Alcotest.(check bool) "mode recorded" true
    (full.Mvl.Check.mode = Mvl.Check.Strict);
  (* validate stays the plain list view of run *)
  Alcotest.(check int) "validate = run.violations"
    (List.length full.Mvl.Check.violations)
    (List.length (Mvl.Check.validate lay))

let test_sharded_matches_sequential () =
  (* the domain-sharded sweeps must reproduce the sequential result
     exactly — violations, order, truncation flag — on both a clean
     and a broken layout, at several job counts *)
  let layouts =
    [
      ("valid", Mvl.Pipeline.layout_exn ~cache:false ~layers:4 "hypercube:6");
      ("broken", overlapping_wires_layout ());
    ]
  in
  List.iter
    (fun (name, lay) ->
      let seq = Mvl.Check.run ~jobs:1 lay in
      List.iter
        (fun jobs ->
          let par = Mvl.Check.run ~jobs lay in
          Alcotest.(check bool)
            (Printf.sprintf "%s identical at jobs=%d" name jobs)
            true (par = seq))
        [ 2; 4; 7 ];
      (* the cap behaves identically too *)
      let seq1 = Mvl.Check.run ~jobs:1 ~max_violations:1 lay in
      let par1 = Mvl.Check.run ~jobs:4 ~max_violations:1 lay in
      Alcotest.(check bool)
        (Printf.sprintf "%s capped result identical" name)
        true (par1 = seq1))
    layouts

let suite =
  [
    Alcotest.test_case "hand-built good layout passes" `Quick
      test_good_layout_passes;
    Alcotest.test_case "layer range" `Quick test_layer_range;
    Alcotest.test_case "node overlap" `Quick test_node_overlap;
    Alcotest.test_case "terminal mismatch" `Quick test_terminal_mismatch;
    Alcotest.test_case "foreign node crossing" `Quick test_foreign_node_crossing;
    Alcotest.test_case "wire overlap" `Quick test_wire_overlap;
    Alcotest.test_case "strict vs thompson crossings" `Quick
      test_crossing_strict_vs_thompson;
    Alcotest.test_case "knock-knee in thompson" `Quick
      test_knock_knee_rejected_in_thompson;
    Alcotest.test_case "via collision" `Quick test_via_collision;
    Alcotest.test_case "via pierces run" `Quick test_via_pierces_run;
    Alcotest.test_case "violation limit" `Quick test_max_violations_limit;
    Alcotest.test_case "truncation flagged" `Quick test_truncation_flagged;
    Alcotest.test_case "sharded check matches sequential" `Quick
      test_sharded_matches_sequential;
  ]
