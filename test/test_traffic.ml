(* Tornado and bursty ON/OFF traffic: spec-string round trips, the
   tornado bijection (which unlike the bit patterns must hold at every
   n, not just powers of two), the bursty injector's long-run rate
   against its analytic stationary distribution, and serial/sharded
   engine parity under bursty injection — the case that exercises the
   injector's fixed per-call draw order across replicated RNG
   streams. *)
open Mvl_core

let test_tornado_formula () =
  (* dst = (src + ceil(n/2) - 1) mod n *)
  List.iter
    (fun n ->
      let offset = ((n + 1) / 2) - 1 in
      for src = 0 to n - 1 do
        Alcotest.(check int)
          (Printf.sprintf "tornado n=%d src=%d" n src)
          ((src + offset) mod n)
          (Mvl.Traffic.permute Mvl.Traffic.Tornado ~n_nodes:n ~src)
      done)
    [ 4; 7; 8; 9; 16; 63 ]

let test_tornado_bijective () =
  (* a rotation is a bijection at every n — including odd n, where the
     bit-pattern permutations are not even defined *)
  List.iter
    (fun n ->
      let seen = Array.make n false in
      for src = 0 to n - 1 do
        let d = Mvl.Traffic.permute Mvl.Traffic.Tornado ~n_nodes:n ~src in
        Alcotest.(check bool)
          (Printf.sprintf "image in range n=%d" n)
          true
          (d >= 0 && d < n);
        Alcotest.(check bool)
          (Printf.sprintf "no collision n=%d src=%d" n src)
          false seen.(d);
        seen.(d) <- true
      done)
    [ 2; 3; 7; 8; 16; 33 ]

let test_spec_string_roundtrip () =
  List.iter
    (fun p ->
      match Mvl.Traffic.of_string (Mvl.Traffic.to_string p) with
      | Ok p' ->
          Alcotest.(check string)
            ("round trip " ^ Mvl.Traffic.to_string p)
            (Mvl.Traffic.to_string p)
            (Mvl.Traffic.to_string p');
          Alcotest.(check bool) "structurally equal" true (p = p')
      | Error m -> Alcotest.fail m)
    [
      Mvl.Traffic.Uniform;
      Mvl.Traffic.Transpose;
      Mvl.Traffic.Bit_reversal;
      Mvl.Traffic.Bit_complement;
      Mvl.Traffic.Tornado;
      Mvl.Traffic.Hotspot 5;
      Mvl.Traffic.Bursty
        { pattern = Mvl.Traffic.Uniform; burst = 16; duty_pct = 25 };
      (* the right-anchored parse: the inner pattern itself contains
         a ':' *)
      Mvl.Traffic.Bursty
        { pattern = Mvl.Traffic.Hotspot 3; burst = 8; duty_pct = 50 };
      Mvl.Traffic.Bursty
        { pattern = Mvl.Traffic.Tornado; burst = 1; duty_pct = 100 };
    ]

let test_of_string_rejects () =
  let bad s =
    match Mvl.Traffic.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "unknown" true (bad "zigzag");
  Alcotest.(check bool) "hotspot arity" true (bad "hotspot");
  Alcotest.(check bool) "hotspot non-int" true (bad "hotspot:x");
  Alcotest.(check bool) "bursty arity" true (bad "bursty:uniform:16");
  Alcotest.(check bool) "bursty non-int burst" true (bad "bursty:uniform:x:25");
  Alcotest.(check bool) "nested bursty" true
    (bad "bursty:bursty:uniform:4:50:16:25")

let test_injector_validation () =
  let rng = Mvl.Rng.create ~seed:1 in
  let mk p =
    ignore (Mvl.Traffic.injector p ~offered_load:0.1 ~n_nodes:8 rng)
  in
  let raises p =
    match mk p with exception Invalid_argument _ -> true | () -> false
  in
  Alcotest.(check bool) "burst < 1" true
    (raises
       (Mvl.Traffic.Bursty
          { pattern = Mvl.Traffic.Uniform; burst = 0; duty_pct = 25 }));
  Alcotest.(check bool) "duty 0" true
    (raises
       (Mvl.Traffic.Bursty
          { pattern = Mvl.Traffic.Uniform; burst = 4; duty_pct = 0 }));
  Alcotest.(check bool) "duty 101" true
    (raises
       (Mvl.Traffic.Bursty
          { pattern = Mvl.Traffic.Uniform; burst = 4; duty_pct = 101 }))

(* empirical long-run injection rate over the whole node population;
   the stationary ON probability is duty, the ON rate load/duty, so
   the product is the offered load *)
let measured_rate pattern ~load ~cycles ~n_nodes =
  let rng = Mvl.Rng.create ~seed:7 in
  let inj =
    Mvl.Traffic.injector pattern ~offered_load:load ~n_nodes rng
  in
  let fired = ref 0 in
  for _ = 1 to cycles do
    for src = 0 to n_nodes - 1 do
      if Mvl.Traffic.inject inj rng ~src then incr fired
    done
  done;
  float_of_int !fired /. float_of_int (cycles * n_nodes)

let test_bursty_longrun_rate () =
  List.iter
    (fun (burst, duty_pct) ->
      let load = 0.2 in
      let pattern =
        Mvl.Traffic.Bursty { pattern = Mvl.Traffic.Uniform; burst; duty_pct }
      in
      let rate = measured_rate pattern ~load ~cycles:4000 ~n_nodes:64 in
      Alcotest.(check bool)
        (Printf.sprintf "rate ~ load at burst=%d duty=%d%% (got %.4f)" burst
           duty_pct rate)
        true
        (Float.abs (rate -. load) < 0.015))
    [ (4, 25); (16, 25); (8, 50); (32, 75) ]

let test_duty_100_is_steady () =
  (* duty 100% must degenerate to the steady Bernoulli process — the
     exact same draw stream, not merely the same long-run rate *)
  let fires pattern =
    let rng = Mvl.Rng.create ~seed:11 in
    let inj =
      Mvl.Traffic.injector pattern ~offered_load:0.3 ~n_nodes:16 rng
    in
    let out = ref [] in
    for _ = 1 to 200 do
      for src = 0 to 15 do
        out := Mvl.Traffic.inject inj rng ~src :: !out
      done
    done;
    !out
  in
  Alcotest.(check bool) "identical decision stream" true
    (fires
       (Mvl.Traffic.Bursty
          { pattern = Mvl.Traffic.Uniform; burst = 8; duty_pct = 100 })
    = fires Mvl.Traffic.Uniform)

let test_bursty_spatially_inner () =
  (* burstiness is temporal only: the destination set is the inner
     pattern's *)
  let inner = Mvl.Traffic.Transpose in
  let bursty =
    Mvl.Traffic.Bursty { pattern = inner; burst = 4; duty_pct = 50 }
  in
  Alcotest.(check bool) "destination sets equal" true
    (Mvl.Traffic.destinations inner ~n_nodes:16
    = Mvl.Traffic.destinations bursty ~n_nodes:16)

(* serial vs sharded parity under bursty tornado injection: the
   injector draws (init per node, then decision+transition per call)
   ride the engines' replicated RNG streams, so any draw-order skew
   between the engines shows up as diverging statistics here *)
let test_bursty_sharded_parity () =
  let graph = (Mvl.Families.hypercube 6).Mvl.Families.graph in
  let config =
    {
      Mvl.Network_sim.default_config with
      Mvl.Network_sim.traffic =
        Mvl.Traffic.Bursty
          { pattern = Mvl.Traffic.Tornado; burst = 8; duty_pct = 25 };
      offered_load = 0.2;
      warmup = 50;
      measure = 300;
      drain = 600;
    }
  in
  let serial = Mvl.Network_sim.run ~config graph in
  let sharded = Mvl.Network_sim.run ~config ~jobs:3 graph in
  Alcotest.(check bool) "sharded = serial under bursty traffic" true
    (serial = sharded)

let suite =
  [
    Alcotest.test_case "tornado formula" `Quick test_tornado_formula;
    Alcotest.test_case "tornado bijective at any n" `Quick
      test_tornado_bijective;
    Alcotest.test_case "spec-string round trip" `Quick
      test_spec_string_roundtrip;
    Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
    Alcotest.test_case "injector validation" `Quick test_injector_validation;
    Alcotest.test_case "bursty long-run rate" `Quick test_bursty_longrun_rate;
    Alcotest.test_case "duty 100% degenerates to steady" `Quick
      test_duty_100_is_steady;
    Alcotest.test_case "burstiness is temporal only" `Quick
      test_bursty_spatially_inner;
    Alcotest.test_case "sharded parity under bursty traffic" `Quick
      test_bursty_sharded_parity;
  ]
