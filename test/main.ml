let () =
  Alcotest.run "mvl"
    [
      (* parallel runs first: its fork-backend cases need Unix.fork,
         which the runtime disables for good once any later suite (or
         this one) spawns a domain *)
      ("parallel", Test_parallel.suite);
      ("mixed_radix", Test_mixed_radix.suite);
      ("graph", Test_graph.suite);
      ("generators", Test_generators.suite);
      ("permutation", Test_permutation.suite);
      ("scc_shuffle", Test_scc_shuffle.suite);
      ("geometry", Test_geometry.suite);
      ("geom", Test_geom.suite);
      ("collinear", Test_collinear.suite);
      ("layout", Test_layout.suite);
      ("check", Test_check.suite);
      ("construction", Test_construction.suite);
      ("cluster", Test_cluster.suite);
      ("layout3d", Test_layout3d.suite);
      ("augmented", Test_augmented.suite);
      ("routing", Test_routing.suite);
      ("delay_report", Test_delay_report.suite);
      ("mutations", Test_mutations.suite);
      ("model", Test_model.suite);
      ("exact", Test_exact.suite);
      ("analysis", Test_analysis.suite);
      ("maze", Test_maze.suite);
      ("order_opt", Test_order_opt.suite);
      ("families", Test_families.suite);
      ("registry", Test_registry.suite);
      ("telemetry", Test_telemetry.suite);
      ("cache", Test_cache.suite);
      ("render", Test_render.suite);
      ("serialize", Test_serialize.suite);
      ("golden", Test_golden.suite);
      ("ring_buffer", Test_ring_buffer.suite);
      ("sim", Test_sim.suite);
      ("resilience", Test_resilience.suite);
      ("traffic", Test_traffic.suite);
      ("wormhole", Test_wormhole.suite);
      ("serve", Test_serve.suite);
    ]
