(** The cached construction pipeline: one instrumented path from a
    family spec to a measured (optionally validated and reported)
    layout, shared by the CLI, the bench harness, the examples and the
    tests.

    Stages: [build] (family construction) → [layout] → [validate]
    (optional) → [metrics] → [report] (optional).  Each run records
    per-stage timings from the OS monotonic clock (never negative, even
    under wall-clock adjustment).

    Layouts are memoized in a process-wide bounded {!Cache} keyed by
    ["spec@layers"] under the GreedyDual-Size-Frequency policy
    (priority grows with hit frequency and build seconds, shrinks with
    resident bytes), so a sweep over [L] — or a metrics pass followed
    by a simulation on the same spec — constructs each distinct layout
    exactly once while it stays resident, and a burst of cheap small
    specs cannot flush a layout that took seconds to build.
    Hit/miss/coalesced counters are exposed for verification.

    The cache is domain-safe: table accesses are serialized behind one
    mutex (held only for the lookup or insertion itself, never while a
    layout is being built) and the counters are atomics, so
    {!Parallel.map}'s domain backend and the serve daemon share one
    cache across all their workers and a resident layout is handed out
    by reference.  Concurrent misses on the {e same} key are
    single-flighted: the first misser builds, the rest block on a
    per-key condition and receive the finished layout (counted in
    [coalesced], with [from_cache = true]); misses on distinct keys
    never wait on each other.

    Every run serializes to one JSON record ({!to_json}) through
    {!Telemetry} — the machine-readable surface behind
    [mvl ... --json] and [bench emit]. *)

open Mvl_layout

type stage_time = { stage : string; seconds : float }

type t = {
  spec : Registry.spec;
  family : Families.t;
  layers : int;
  layout : Layout.t;
  metrics : Layout.metrics;
  validation : Check.result option;
      (** [None] when validation was not requested *)
  report : Report.t option;
  timings : stage_time list;  (** in stage order *)
  layout_phases : Layout_profile.phases option;
      (** per-phase breakdown of the layout stage ({!Layout_profile}),
          recorded only when the layout was actually constructed —
          [None] on a cache hit *)
  from_cache : bool;          (** the layout stage was a cache hit *)
}

val run :
  ?validate:Check.mode ->
  ?report:bool ->
  ?cache:bool ->
  layers:int ->
  Registry.spec ->
  (t, string) result
(** Run the pipeline.  [~cache:false] (default [true]) bypasses the
    layout cache entirely — neither reading nor populating it, nor
    touching the counters (used by timing benches). *)

val run_string :
  ?validate:Check.mode ->
  ?report:bool ->
  ?cache:bool ->
  layers:int ->
  string ->
  (t, string) result
(** [run] on [Registry.parse]'s result. *)

val run_exn :
  ?validate:Check.mode -> ?report:bool -> ?cache:bool -> layers:int ->
  string -> t
(** [run_string], raising [Invalid_argument] on any error. *)

val layout_exn : ?cache:bool -> layers:int -> string -> Layout.t
(** Just the (cached) layout of a spec string. *)

(* --- validity ---------------------------------------------------------- *)

type validity = Valid | Invalid | Not_validated

val validity : t -> validity
(** Three-state view of the run's validation outcome: [Not_validated]
    when the run skipped validation — distinct from [Invalid]. *)

val violations : t -> Check.violation list option
(** The recorded violations; [None] when validation was not requested. *)

val is_valid : ?mode:Check.mode -> t -> bool
(** [true] iff the layout has no violations.  When the run skipped
    validation this checks the layout on demand under [mode] (default
    [Strict]) instead of conflating "not validated" with "invalid";
    when the run did validate, the recorded result is answered and
    [mode] is ignored. *)

val total_seconds : t -> float

val pp_timings : Format.formatter -> t -> unit
(** One line per stage, e.g. ["build 0.001s  layout 0.045s ..."]. *)

val pp_phases : Format.formatter -> Layout_profile.phases -> unit
(** One line: ["place 0.01s  pack 0.02s  terminals ..."]. *)

val to_json : t -> Telemetry.json
(** The run as one stable-key-order record:
    [{schema, spec, family, n_nodes, n_edges, layers, from_cache,
    seconds {build,layout,validate,metrics,report,total},
    layout_phases {place_seconds,...} | null,
    cache {hits,misses,coalesced,size}, metrics {...},
    violations {checked,...}, report}].  ["cache"] reports the
    process-wide counters at call time; ["violations"] is
    {!Telemetry.not_validated} when validation was skipped; ["report"]
    is [null] unless requested. *)

(* --- cache ------------------------------------------------------------- *)

type cache_stats = { hits : int; misses : int; coalesced : int }
(** [misses] counts actual layout constructions through the cache;
    [coalesced] counts requests that joined another domain's
    in-progress build of the same key instead of duplicating it. *)

val cache_stats : unit -> cache_stats
val cache_size : unit -> int
(** Layouts currently resident (always [<= cache_capacity ()]). *)

val cache_capacity : unit -> int
val set_cache_capacity : int -> unit
(** Bound on resident entries (default 256), enforced by GDSF eviction
    at insertion; shrinking evicts immediately.  [0] disables caching.
    Counters are unaffected — a re-run of an evicted spec counts as a
    fresh miss. *)

val cache_resident_bytes : unit -> int
(** Total {!Layout.resident_bytes} over the resident layouts. *)

val cache_max_bytes : unit -> int
val set_cache_bytes : int -> unit
(** Byte budget for resident layouts (default effectively unbounded),
    enforced together with the entry capacity; shrinking evicts
    immediately. *)

val cache_policy_stats : unit -> Cache.stats
(** The layout cache's own policy counters (admissions, rejections,
    evictions, and its internal hit/miss tallies — the latter also
    count probes that went on to coalesce, so prefer {!cache_stats}
    for request accounting). *)

val cache_reset : unit -> unit
(** Drop all cached layouts and families and zero the counters (the
    capacity and byte-budget settings are kept). *)
