(** The cached construction pipeline: one instrumented path from a
    family spec to a measured (optionally validated and reported)
    layout, shared by the CLI, the bench harness, the examples and the
    tests.

    Stages: [build] (family construction) → [layout] → [validate]
    (optional) → [metrics] → [report] (optional).  Each run records
    per-stage wall-clock timings.

    Layouts are memoized in a process-wide cache keyed by
    [(canonical spec string, layers)], so a sweep over [L] — or a
    metrics pass followed by a simulation on the same spec — constructs
    each distinct layout exactly once.  Hit/miss counters are exposed
    for verification. *)

open Mvl_layout

type stage_time = { stage : string; seconds : float }

type t = {
  spec : Registry.spec;
  family : Families.t;
  layers : int;
  layout : Layout.t;
  metrics : Layout.metrics;
  violations : Check.violation list option;
      (** [None] when validation was not requested *)
  report : Report.t option;
  timings : stage_time list;  (** in stage order *)
  from_cache : bool;          (** the layout stage was a cache hit *)
}

val run :
  ?validate:Check.mode ->
  ?report:bool ->
  ?cache:bool ->
  layers:int ->
  Registry.spec ->
  (t, string) result
(** Run the pipeline.  [~cache:false] (default [true]) bypasses the
    layout cache entirely — neither reading nor populating it, nor
    touching the counters (used by timing benches). *)

val run_string :
  ?validate:Check.mode ->
  ?report:bool ->
  ?cache:bool ->
  layers:int ->
  string ->
  (t, string) result
(** [run] on [Registry.parse]'s result. *)

val run_exn :
  ?validate:Check.mode -> ?report:bool -> ?cache:bool -> layers:int ->
  string -> t
(** [run_string], raising [Invalid_argument] on any error. *)

val layout_exn : ?cache:bool -> layers:int -> string -> Layout.t
(** Just the (cached) layout of a spec string. *)

val is_valid : t -> bool
(** [true] when validation ran and found no violations. *)

val total_seconds : t -> float

val pp_timings : Format.formatter -> t -> unit
(** One line per stage, e.g. ["build 0.001s  layout 0.045s ..."]. *)

(* --- cache ------------------------------------------------------------- *)

type cache_stats = { hits : int; misses : int }
(** [misses] counts actual layout constructions through the cache. *)

val cache_stats : unit -> cache_stats
val cache_reset : unit -> unit
(** Drop all cached layouts and families and zero the counters. *)
