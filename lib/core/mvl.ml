(** Top-level facade: one module path to the whole library.

    {[
      let fam = Mvl.Families.hypercube 8 in
      let layout = fam.Mvl.Families.layout ~layers:8 in
      let m = Mvl.Layout.metrics layout in
      assert (Mvl.Check.is_valid layout)
    ]} *)

(* topology *)
module Graph = Mvl_topology.Graph
module Mixed_radix = Mvl_topology.Mixed_radix
module Ring = Mvl_topology.Ring
module Complete = Mvl_topology.Complete
module Kary_ncube = Mvl_topology.Kary_ncube
module Hypercube = Mvl_topology.Hypercube
module Generalized_hypercube = Mvl_topology.Generalized_hypercube
module Butterfly = Mvl_topology.Butterfly
module Ccc = Mvl_topology.Ccc
module Folded_hypercube = Mvl_topology.Folded_hypercube
module Enhanced_cube = Mvl_topology.Enhanced_cube
module Reduced_hypercube = Mvl_topology.Reduced_hypercube
module Hsn = Mvl_topology.Hsn
module Hhn = Mvl_topology.Hhn
module Isn = Mvl_topology.Isn
module Pn_cluster = Mvl_topology.Pn_cluster
module Kary_cluster = Mvl_topology.Kary_cluster
module Mesh = Mvl_topology.Mesh
module Permutation = Mvl_topology.Permutation
module Cayley = Mvl_topology.Cayley
module Scc = Mvl_topology.Scc
module Shuffle = Mvl_topology.Shuffle
module Tree = Mvl_topology.Tree
module Properties = Mvl_topology.Properties

(* geometry *)
module Point = Mvl_geometry.Point
module Segment = Mvl_geometry.Segment
module Interval = Mvl_geometry.Interval
module Rect = Mvl_geometry.Rect

(* layout *)
module Collinear = Mvl_layout.Collinear
module Collinear_ring = Mvl_layout.Collinear_ring
module Collinear_kary = Mvl_layout.Collinear_kary
module Collinear_complete = Mvl_layout.Collinear_complete
module Collinear_ghc = Mvl_layout.Collinear_ghc
module Collinear_hypercube = Mvl_layout.Collinear_hypercube
module Collinear_product = Mvl_layout.Collinear_product
module Orders = Mvl_layout.Orders
module Track_assign = Mvl_layout.Track_assign
module Orthogonal = Mvl_layout.Orthogonal
module Multilayer = Mvl_layout.Multilayer
module Cluster_expand = Mvl_layout.Cluster_expand
module Multilayer3d = Mvl_layout.Multilayer3d
module Baselines = Mvl_layout.Baselines
module Wire = Mvl_layout.Wire
module Geom = Mvl_layout.Geom
module Layout = Mvl_layout.Layout
module Check = Mvl_layout.Check
module Render = Mvl_layout.Render
module Report = Mvl_layout.Report
module Serialize = Mvl_layout.Serialize
module Congestion = Mvl_layout.Congestion
module Layout_profile = Mvl_layout.Layout_profile
module Maze_router = Mvl_layout.Maze_router
module Order_opt = Mvl_layout.Order_opt

(* model *)
module Formulas = Mvl_model.Formulas
module Lower_bounds = Mvl_model.Lower_bounds
module Delay = Mvl_model.Delay
module Exact = Mvl_model.Exact

(* routing *)
module Route = Mvl_routing.Route

(* simulation *)
module Rng = Mvl_sim.Rng
module Histogram = Mvl_sim.Histogram
module Traffic = Mvl_sim.Traffic
module Routing_table = Mvl_sim.Routing_table
module Network_sim = Mvl_sim.Network_sim
module Sim_shard = Mvl_sim.Sim_shard
module Resilience = Mvl_sim.Resilience
module Wormhole = Mvl_sim.Wormhole

(* drivers *)
module Families = Families
module Registry = Registry
module Pipeline = Pipeline
module Telemetry = Telemetry
module Parallel = Parallel
module Domain_pool = Mvl_pool.Domain_pool
module Barrier = Mvl_pool.Barrier
module Bounded_fifo = Bounded_fifo
module Cache = Cache
module Ring_buffer = Mvl_ring.Ring_buffer
