type 'a t = {
  mutable data : 'a array;
  mutable head : int; (* physical index of the front element *)
  mutable len : int;
  dummy : 'a;
}

let round_up_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?(capacity = 16) ~dummy () =
  let cap = round_up_pow2 (max 1 capacity) in
  { data = Array.make cap dummy; head = 0; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.data

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (cap * 2) t.dummy in
  let mask = cap - 1 in
  for i = 0 to t.len - 1 do
    Array.unsafe_set data i (Array.unsafe_get t.data ((t.head + i) land mask))
  done;
  t.data <- data;
  t.head <- 0

(* The hot-path bodies below inline the physical-index computation
   ((head + i) land (capacity - 1), capacity a power of two) and use
   unsafe array accesses guarded by the [len] checks, keeping each
   function small enough for the classic cross-module inliner. *)

let push t x =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data
    ((t.head + t.len) land (Array.length t.data - 1))
    x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Ring_buffer.get: out of bounds";
  Array.unsafe_get t.data ((t.head + i) land (Array.length t.data - 1))

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Ring_buffer.set: out of bounds";
  Array.unsafe_set t.data ((t.head + i) land (Array.length t.data - 1)) x

let unsafe_get t i =
  Array.unsafe_get t.data ((t.head + i) land (Array.length t.data - 1))

let unsafe_set t i x =
  Array.unsafe_set t.data ((t.head + i) land (Array.length t.data - 1)) x

let pop_opt t =
  if t.len = 0 then None
  else begin
    let x = Array.unsafe_get t.data t.head in
    Array.unsafe_set t.data t.head t.dummy;
    t.head <- (t.head + 1) land (Array.length t.data - 1);
    t.len <- t.len - 1;
    Some x
  end

let pop t =
  match pop_opt t with
  | Some x -> x
  | None -> invalid_arg "Ring_buffer.pop: empty"

let drop_front t n =
  if n < 0 || n > t.len then invalid_arg "Ring_buffer.drop_front: bad count";
  let mask = Array.length t.data - 1 in
  for i = 0 to n - 1 do
    Array.unsafe_set t.data ((t.head + i) land mask) t.dummy
  done;
  t.head <- (t.head + n) land mask;
  t.len <- t.len - n

let clear t =
  Array.fill t.data 0 (Array.length t.data) t.dummy;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let mask = Array.length t.data - 1 in
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data ((t.head + i) land mask))
  done
