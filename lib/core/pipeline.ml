open Mvl_layout

type stage_time = { stage : string; seconds : float }

type t = {
  spec : Registry.spec;
  family : Families.t;
  layers : int;
  layout : Layout.t;
  metrics : Layout.metrics;
  violations : Check.violation list option;
  report : Report.t option;
  timings : stage_time list;
  from_cache : bool;
}

type cache_stats = { hits : int; misses : int }

(* families are memoized by canonical spec string, layouts by
   (spec string, layers); the counters track the layout cache only,
   since layout realization is the expensive stage sweeps repeat *)
let family_cache : (string, Families.t) Hashtbl.t = Hashtbl.create 64
let layout_cache : (string * int, Layout.t) Hashtbl.t = Hashtbl.create 64
let hits = ref 0
let misses = ref 0

let cache_stats () = { hits = !hits; misses = !misses }

let cache_reset () =
  Hashtbl.reset family_cache;
  Hashtbl.reset layout_cache;
  hits := 0;
  misses := 0

let timed stage f =
  let t0 = Unix.gettimeofday () in
  let v = f () in
  (v, { stage; seconds = Unix.gettimeofday () -. t0 })

let run ?validate ?(report = false) ?(cache = true) ~layers spec =
  let key = Registry.to_string spec in
  let build_family () =
    match
      if cache then Hashtbl.find_opt family_cache key else None
    with
    | Some fam -> Ok fam
    | None -> (
        match Registry.build spec with
        | Error _ as err -> err
        | Ok fam ->
            if cache then Hashtbl.replace family_cache key fam;
            Ok fam)
  in
  let fam_res, t_build = timed "build" build_family in
  match fam_res with
  | Error msg -> Error msg
  | Ok family ->
      let realize () =
        match
          if cache then Hashtbl.find_opt layout_cache (key, layers) else None
        with
        | Some lay ->
            if cache then incr hits;
            (lay, true)
        | None ->
            let lay = family.Families.layout ~layers in
            if cache then begin
              incr misses;
              Hashtbl.replace layout_cache (key, layers) lay
            end;
            (lay, false)
      in
      (match timed "layout" realize with
      | exception (Invalid_argument msg | Failure msg) ->
          Error (Printf.sprintf "%s: layout failed (%s)" key msg)
      | (layout, from_cache), t_layout ->
          let violations, t_validate =
            match validate with
            | None -> (None, { stage = "validate"; seconds = 0.0 })
            | Some mode ->
                let v, t =
                  timed "validate" (fun () -> Check.validate ~mode layout)
                in
                (Some v, t)
          in
          let metrics, t_metrics =
            timed "metrics" (fun () -> Layout.metrics layout)
          in
          let report, t_report =
            if report then
              let r, t = timed "report" (fun () -> Report.analyze layout) in
              (Some r, t)
            else (None, { stage = "report"; seconds = 0.0 })
          in
          Ok
            {
              spec;
              family;
              layers;
              layout;
              metrics;
              violations;
              report;
              timings = [ t_build; t_layout; t_validate; t_metrics; t_report ];
              from_cache;
            })

let run_string ?validate ?report ?cache ~layers s =
  match Registry.parse s with
  | Error _ as err -> err
  | Ok spec -> run ?validate ?report ?cache ~layers spec

let run_exn ?validate ?report ?cache ~layers s =
  match run_string ?validate ?report ?cache ~layers s with
  | Ok r -> r
  | Error msg -> invalid_arg msg

let layout_exn ?cache ~layers s = (run_exn ?cache ~layers s).layout

let is_valid r = match r.violations with Some [] -> true | _ -> false

let total_seconds r =
  List.fold_left (fun acc t -> acc +. t.seconds) 0.0 r.timings

let pp_timings ppf r =
  List.iter
    (fun t ->
      if t.seconds > 0.0 || t.stage = "build" || t.stage = "layout" then
        Format.fprintf ppf "%s %.4fs  " t.stage t.seconds)
    r.timings;
  Format.fprintf ppf "total %.4fs%s" (total_seconds r)
    (if r.from_cache then " (layout cached)" else "")
