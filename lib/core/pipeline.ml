open Mvl_layout

type stage_time = { stage : string; seconds : float }

type t = {
  spec : Registry.spec;
  family : Families.t;
  layers : int;
  layout : Layout.t;
  metrics : Layout.metrics;
  validation : Check.result option;
  report : Report.t option;
  timings : stage_time list;
  layout_phases : Layout_profile.phases option;
  from_cache : bool;
}

type cache_stats = { hits : int; misses : int; coalesced : int }
type validity = Valid | Invalid | Not_validated

(* families are memoized by canonical spec string in a FIFO-bounded
   Bounded_fifo (construction is cheap; recency is all that matters),
   layouts by "spec@layers" string in a GreedyDual-Size-Frequency
   {!Cache}: priority = clock + freq * build-seconds / resident-bytes,
   so a microsecond ring:64 can never evict a multi-second
   hypercube:17 the moment it lands, yet an expensive layout nobody
   asks for again ages out through the clock term.

   The caches are shared across domains (the Domain_pool backend of
   Parallel.map and the serve daemon's workers run pipeline jobs
   concurrently in one process), so every table access goes through
   [cache_lock] and the counters are atomics — stats readers must use
   the accessors below, never raw table state.

   Realization happens outside the lock, under single-flight
   coalescing: the first domain to miss on a key claims an in-flight
   entry (mutex + per-key condition) and builds; every other domain
   missing on the same key blocks on that entry's condition and is
   handed the finished layout by reference, counted in [coalesced]
   instead of duplicating seconds of construction.  Distinct keys
   never wait on each other. *)
let default_cache_capacity = 256

let cache_lock = Mutex.create ()

let locked f =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) f

let family_cache : (string, Families.t) Bounded_fifo.t =
  Bounded_fifo.create ~capacity:default_cache_capacity

let layout_cache : (string, Layout.t) Cache.t =
  Cache.create ~capacity:default_cache_capacity ()

let layout_key key layers = key ^ "@" ^ string_of_int layers

(* single-flight claims: key -> the in-progress build every other
   misser of that key blocks on *)
type inflight = {
  cond : Condition.t;
  mutable outcome : (Layout.t, exn) result option;
}

let inflight_tbl : (string, inflight) Hashtbl.t = Hashtbl.create 16

let hits = Atomic.make 0
let misses = Atomic.make 0
let coalesced = Atomic.make 0

let cache_stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    coalesced = Atomic.get coalesced;
  }

let cache_size () = locked (fun () -> Cache.length layout_cache)
let cache_capacity () = locked (fun () -> Cache.capacity layout_cache)
let cache_resident_bytes () = locked (fun () -> Cache.resident_bytes layout_cache)
let cache_max_bytes () = locked (fun () -> Cache.max_bytes layout_cache)
let cache_policy_stats () = locked (fun () -> Cache.stats layout_cache)

let set_cache_capacity cap =
  (* shrinking evicts immediately so the bound holds without waiting
     for the next insertion *)
  locked (fun () ->
      Cache.set_capacity layout_cache cap;
      Bounded_fifo.set_capacity family_cache cap)

let set_cache_bytes b = locked (fun () -> Cache.set_max_bytes layout_cache b)

let cache_reset () =
  locked (fun () ->
      Bounded_fifo.clear family_cache;
      Cache.clear layout_cache;
      Cache.reset_stats layout_cache);
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set coalesced 0

(* stage timing uses the OS monotonic clock (bechamel's stub around
   clock_gettime(CLOCK_MONOTONIC)) — wall-clock time can jump backwards
   under NTP adjustment and produced negative stage timings.  The clamp
   keeps even a misbehaving clock source from emitting negatives. *)
let timed stage f =
  let t0 = Monotonic_clock.now () in
  let v = f () in
  let ns = Int64.sub (Monotonic_clock.now ()) t0 in
  let ns = if Int64.compare ns 0L < 0 then 0L else ns in
  (v, { stage; seconds = Int64.to_float ns *. 1e-9 })

let run ?validate ?(report = false) ?(cache = true) ~layers spec =
  let key = Registry.to_string spec in
  let build_family () =
    match
      if cache then locked (fun () -> Bounded_fifo.find_opt family_cache key)
      else None
    with
    | Some fam -> Ok fam
    | None -> (
        match Registry.build spec with
        | Error _ as err -> err
        | Ok fam ->
            if cache then
              locked (fun () -> Bounded_fifo.add family_cache key fam);
            Ok fam)
  in
  let fam_res, t_build = timed "build" build_family in
  match fam_res with
  | Error msg -> Error msg
  | Ok family ->
      let phases = ref None in
      let build () =
        Layout_profile.reset ();
        let lay = family.Families.layout ~layers in
        phases := Some (Layout_profile.snapshot ());
        lay
      in
      let realize () =
        if not cache then (build (), false)
        else begin
          let lkey = layout_key key layers in
          (* claim under the lock: a resident layout is a hit, an
             in-progress build for the same key is joined (coalesced),
             otherwise this caller registers itself as the builder *)
          let claim () =
            locked (fun () ->
                match Cache.find_opt layout_cache lkey with
                | Some lay -> `Hit lay
                | None -> (
                    match Hashtbl.find_opt inflight_tbl lkey with
                    | Some fl ->
                        Atomic.incr coalesced;
                        let rec await () =
                          match fl.outcome with
                          | Some r -> r
                          | None ->
                              Condition.wait fl.cond cache_lock;
                              await ()
                        in
                        `Joined (await ())
                    | None ->
                        let fl = { cond = Condition.create (); outcome = None } in
                        Hashtbl.replace inflight_tbl lkey fl;
                        `Build fl))
          in
          match claim () with
          | `Hit lay ->
              Atomic.incr hits;
              (lay, true)
          | `Joined (Ok lay) -> (lay, true)
          | `Joined (Error e) -> raise e
          | `Build fl ->
              (* build outside the lock: a layout can take seconds and
                 other keys' lookups must not stall behind it; every
                 concurrent misser of this key blocks on [fl.cond] *)
              let t0 = Monotonic_clock.now () in
              let outcome =
                match build () with
                | lay -> Ok lay
                | exception e -> Error e
              in
              let ns = Int64.sub (Monotonic_clock.now ()) t0 in
              let build_seconds =
                if Int64.compare ns 0L < 0 then 0.0
                else Int64.to_float ns *. 1e-9
              in
              locked (fun () ->
                  Hashtbl.remove inflight_tbl lkey;
                  (match outcome with
                  | Ok lay ->
                      ignore
                        (Cache.add layout_cache lkey lay ~cost:build_seconds
                           ~size:(Layout.resident_bytes lay))
                  | Error _ -> ());
                  fl.outcome <- Some outcome;
                  Condition.broadcast fl.cond);
              (match outcome with
              | Ok lay ->
                  Atomic.incr misses;
                  (lay, false)
              | Error e -> raise e)
        end
      in
      (match timed "layout" realize with
      | exception (Invalid_argument msg | Failure msg) ->
          Error (Printf.sprintf "%s: layout failed (%s)" key msg)
      | (layout, from_cache), t_layout ->
          let validation, t_validate =
            match validate with
            | None -> (None, { stage = "validate"; seconds = 0.0 })
            | Some mode ->
                let v, t =
                  timed "validate" (fun () -> Check.run ~mode layout)
                in
                (Some v, t)
          in
          let metrics, t_metrics =
            timed "metrics" (fun () -> Layout.metrics layout)
          in
          let report, t_report =
            if report then
              let r, t = timed "report" (fun () -> Report.analyze layout) in
              (Some r, t)
            else (None, { stage = "report"; seconds = 0.0 })
          in
          Ok
            {
              spec;
              family;
              layers;
              layout;
              metrics;
              validation;
              report;
              timings = [ t_build; t_layout; t_validate; t_metrics; t_report ];
              layout_phases = !phases;
              from_cache;
            })

let run_string ?validate ?report ?cache ~layers s =
  match Registry.parse s with
  | Error _ as err -> err
  | Ok spec -> run ?validate ?report ?cache ~layers spec

let run_exn ?validate ?report ?cache ~layers s =
  match run_string ?validate ?report ?cache ~layers s with
  | Ok r -> r
  | Error msg -> invalid_arg msg

let layout_exn ?cache ~layers s = (run_exn ?cache ~layers s).layout

let violations r =
  Option.map (fun (res : Check.result) -> res.Check.violations) r.validation

let validity r =
  match r.validation with
  | None -> Not_validated
  | Some res -> if res.Check.violations = [] then Valid else Invalid

(* "not validated" used to be conflated with "invalid" here; now an
   unvalidated run validates on demand instead of answering [false] *)
let is_valid ?(mode = Check.Strict) r =
  match r.validation with
  | Some res -> res.Check.violations = []
  | None -> Check.is_valid ~mode r.layout

let total_seconds r =
  List.fold_left (fun acc t -> acc +. t.seconds) 0.0 r.timings

let pp_timings ppf r =
  List.iter
    (fun t ->
      if t.seconds > 0.0 || t.stage = "build" || t.stage = "layout" then
        Format.fprintf ppf "%s %.4fs  " t.stage t.seconds)
    r.timings;
  Format.fprintf ppf "total %.4fs%s" (total_seconds r)
    (if r.from_cache then " (layout cached)" else "")

(* --- telemetry --------------------------------------------------------- *)

let phases_fields (p : Layout_profile.phases) =
  Telemetry.
    [
      ("place_seconds", Float p.Layout_profile.place_seconds);
      ("pack_seconds", Float p.Layout_profile.pack_seconds);
      ("terminals_seconds", Float p.Layout_profile.terminals_seconds);
      ("emit_seconds", Float p.Layout_profile.emit_seconds);
      ("build_seconds", Float p.Layout_profile.build_seconds);
    ]

let pp_phases ppf (p : Layout_profile.phases) =
  Format.fprintf ppf
    "place %.4fs  pack %.4fs  terminals %.4fs  emit %.4fs  build %.4fs"
    p.Layout_profile.place_seconds p.Layout_profile.pack_seconds
    p.Layout_profile.terminals_seconds p.Layout_profile.emit_seconds
    p.Layout_profile.build_seconds

let to_json r =
  let open Telemetry in
  Obj
    [
      ("schema", String "mvl.pipeline.run/1");
      ("spec", String (Registry.to_string r.spec));
      ("family", String r.family.Families.name);
      ("n_nodes", Int r.family.Families.n_nodes);
      ("n_edges", Int (Mvl_topology.Graph.m r.family.Families.graph));
      ("layers", Int r.layers);
      ("from_cache", Bool r.from_cache);
      ( "seconds",
        Obj
          (List.map (fun t -> (t.stage, Float t.seconds)) r.timings
          @ [ ("total", Float (total_seconds r)) ]) );
      ( "layout_phases",
        match r.layout_phases with
        | None -> Null
        | Some p -> Obj (phases_fields p) );
      ( "cache",
        Obj
          [
            ("hits", Int (Atomic.get hits));
            ("misses", Int (Atomic.get misses));
            ("coalesced", Int (Atomic.get coalesced));
            ("size", Int (cache_size ()));
          ] );
      ("metrics", of_metrics r.metrics);
      ( "violations",
        match r.validation with
        | None -> not_validated
        | Some res -> violation_summary res );
      ( "report",
        match r.report with None -> Null | Some rep -> of_report rep );
    ]
