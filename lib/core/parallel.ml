type stats = { workers : int; hits : int; misses : int }
type backend = Domains | Fork | Sequential

let backend_name = function
  | Domains -> "domains"
  | Fork -> "fork"
  | Sequential -> "sequential"

(* the runtime refuses Unix.fork forever once a domain has been
   spawned, so fork availability is dynamic: true until the domain
   backend first runs *)
let available () = (not Sys.win32) && not (Mvl_pool.Domain_pool.spawned_domains ())

let force_fork () =
  match Sys.getenv_opt "MVL_FORCE_FORK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let default_backend () =
  if force_fork () && available () then Fork else Domains

(* /proc/cpuinfo counts every online processor, which over-reports in
   cpuset-limited containers; kept only as a fallback for runtimes
   where the affinity probe answers nothing useful *)
let proc_cpu_count () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> 1
  | ic ->
      let count = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor"
           then incr count
         done
       with End_of_file -> ());
      close_in ic;
      max 1 !count

let cpu_count () =
  (* the affinity mask (what recommended_domain_count reads) is the
     truth inside containers; when it reports a single processor it
     cannot be distinguished from a failed probe, so the /proc parse
     gets the last word there *)
  match Domain.recommended_domain_count () with
  | n when n > 1 -> n
  | _ -> proc_cpu_count ()

let default_jobs () = cpu_count ()

let counter_delta (before : Pipeline.cache_stats) =
  let after = Pipeline.cache_stats () in
  (after.Pipeline.hits - before.Pipeline.hits,
   after.Pipeline.misses - before.Pipeline.misses)

let run_sequential f items =
  let before = Pipeline.cache_stats () in
  let results = Array.to_list (Array.map f items) in
  let hits, misses = counter_delta before in
  (results, { workers = 1; hits; misses })

(* --- domain backend ---------------------------------------------------- *)

(* results come back by reference from the work-stealing pool; the
   Pipeline cache is shared (it locks internally), so the counter delta
   around the whole map is the aggregate over every domain *)
let domain_map ~f ~items ~workers =
  let before = Pipeline.cache_stats () in
  let results, _pool = Mvl_pool.Domain_pool.map ~domains:workers ~f items in
  let hits, misses = counter_delta before in
  (Array.to_list results, { workers; hits; misses })

(* --- fork backend ------------------------------------------------------ *)

(* worker [w] of [workers] handles indices w, w+workers, w+2*workers, ...
   — a static partition, so which worker owns a job never depends on
   runtime scheduling.  An exception from [f] writes nothing: the
   parent recomputes the missing index and the exception surfaces
   there with sequential semantics. *)
let worker_loop ~f ~items ~w ~workers oc =
  let before = Pipeline.cache_stats () in
  let n = Array.length items in
  let i = ref w in
  while !i < n do
    (match f items.(!i) with
    | json -> Printf.fprintf oc "%d\t%s\n" !i (Telemetry.to_string json)
    | exception _ -> ());
    i := !i + workers
  done;
  let hits, misses = counter_delta before in
  Printf.fprintf oc "stats\t{\"hits\":%d,\"misses\":%d}\n" hits misses;
  flush oc

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid

let fork_map ~f ~items ~workers =
  let n = Array.length items in
  let pipes = Array.init workers (fun _ -> Unix.pipe ()) in
  (* children exit with Unix._exit, so anything sitting in inherited
     stdio buffers would otherwise be flushed once per process *)
  flush stdout;
  flush stderr;
  let pids =
    Array.init workers (fun w ->
        match Unix.fork () with
        | 0 ->
            Array.iteri
              (fun i (rd, wr) ->
                Unix.close rd;
                if i <> w then Unix.close wr)
              pipes;
            let oc = Unix.out_channel_of_descr (snd pipes.(w)) in
            (try worker_loop ~f ~items ~w ~workers oc with _ -> ());
            (try close_out oc with _ -> ());
            Unix._exit 0
        | pid -> pid)
  in
  Array.iter (fun (_, wr) -> Unix.close wr) pipes;
  let results : Telemetry.json option array = Array.make n None in
  let hits = ref 0 in
  let misses = ref 0 in
  let record_stats json =
    (match Telemetry.member "hits" json with
    | Some (Telemetry.Int h) -> hits := !hits + h
    | _ -> ());
    match Telemetry.member "misses" json with
    | Some (Telemetry.Int m) -> misses := !misses + m
    | _ -> ()
  in
  let consume_line line =
    match String.index_opt line '\t' with
    | None -> ()
    | Some tab -> (
        let tag = String.sub line 0 tab in
        let payload =
          String.sub line (tab + 1) (String.length line - tab - 1)
        in
        match Telemetry.parse payload with
        | Error _ -> ()
        | Ok json -> (
            if tag = "stats" then record_stats json
            else
              match int_of_string_opt tag with
              | Some i when i >= 0 && i < n -> results.(i) <- Some json
              | _ -> ()))
  in
  (* one pipe at a time is deadlock-free: workers only ever block
     writing their own pipe, and the parent drains every pipe to EOF
     before waiting on any child *)
  Array.iter
    (fun (rd, _) ->
      let ic = Unix.in_channel_of_descr rd in
      (try
         while true do
           consume_line (input_line ic)
         done
       with End_of_file -> ());
      close_in ic)
    pipes;
  Array.iter reap pids;
  let before = Pipeline.cache_stats () in
  let merged =
    Array.to_list
      (Array.mapi
         (fun i -> function Some json -> json | None -> f items.(i))
         results)
  in
  let parent_hits, parent_misses = counter_delta before in
  ( merged,
    { workers; hits = !hits + parent_hits; misses = !misses + parent_misses } )

(* --- facade ------------------------------------------------------------ *)

let map ?backend ?jobs ~f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let requested =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let workers = min requested (max 1 n) in
  let backend =
    match backend with Some b -> b | None -> default_backend ()
  in
  if workers <= 1 then run_sequential f items
  else
    match backend with
    | Sequential -> run_sequential f items
    | Domains -> domain_map ~f ~items ~workers
    | Fork ->
        if available () then fork_map ~f ~items ~workers
        else run_sequential f items
