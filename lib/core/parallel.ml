type stats = { workers : int; hits : int; misses : int }

let available () = not Sys.win32

let cpu_count () =
  match open_in "/proc/cpuinfo" with
  | exception Sys_error _ -> 1
  | ic ->
      let count = ref 0 in
      (try
         while true do
           let line = input_line ic in
           if String.length line >= 9 && String.sub line 0 9 = "processor"
           then incr count
         done
       with End_of_file -> ());
      close_in ic;
      max 1 !count

let default_jobs () = min 8 (cpu_count ())

let counter_delta (before : Pipeline.cache_stats) =
  let after = Pipeline.cache_stats () in
  (after.Pipeline.hits - before.Pipeline.hits,
   after.Pipeline.misses - before.Pipeline.misses)

let run_sequential f items =
  let before = Pipeline.cache_stats () in
  let results = Array.to_list (Array.map f items) in
  let hits, misses = counter_delta before in
  (results, { workers = 1; hits; misses })

(* worker [w] of [workers] handles indices w, w+workers, w+2*workers, ...
   — a static partition, so which worker owns a job never depends on
   runtime scheduling.  An exception from [f] writes nothing: the
   parent recomputes the missing index and the exception surfaces
   there with sequential semantics. *)
let worker_loop ~f ~items ~w ~workers oc =
  let before = Pipeline.cache_stats () in
  let n = Array.length items in
  let i = ref w in
  while !i < n do
    (match f items.(!i) with
    | json -> Printf.fprintf oc "%d\t%s\n" !i (Telemetry.to_string json)
    | exception _ -> ());
    i := !i + workers
  done;
  let hits, misses = counter_delta before in
  Printf.fprintf oc "stats\t{\"hits\":%d,\"misses\":%d}\n" hits misses;
  flush oc

let rec reap pid =
  match Unix.waitpid [] pid with
  | _ -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> reap pid

let fork_map ~f ~items ~workers =
  let n = Array.length items in
  let pipes = Array.init workers (fun _ -> Unix.pipe ()) in
  (* children exit with Unix._exit, so anything sitting in inherited
     stdio buffers would otherwise be flushed once per process *)
  flush stdout;
  flush stderr;
  let pids =
    Array.init workers (fun w ->
        match Unix.fork () with
        | 0 ->
            Array.iteri
              (fun i (rd, wr) ->
                Unix.close rd;
                if i <> w then Unix.close wr)
              pipes;
            let oc = Unix.out_channel_of_descr (snd pipes.(w)) in
            (try worker_loop ~f ~items ~w ~workers oc with _ -> ());
            (try close_out oc with _ -> ());
            Unix._exit 0
        | pid -> pid)
  in
  Array.iter (fun (_, wr) -> Unix.close wr) pipes;
  let results : Telemetry.json option array = Array.make n None in
  let hits = ref 0 in
  let misses = ref 0 in
  let record_stats json =
    (match Telemetry.member "hits" json with
    | Some (Telemetry.Int h) -> hits := !hits + h
    | _ -> ());
    match Telemetry.member "misses" json with
    | Some (Telemetry.Int m) -> misses := !misses + m
    | _ -> ()
  in
  let consume_line line =
    match String.index_opt line '\t' with
    | None -> ()
    | Some tab -> (
        let tag = String.sub line 0 tab in
        let payload =
          String.sub line (tab + 1) (String.length line - tab - 1)
        in
        match Telemetry.parse payload with
        | Error _ -> ()
        | Ok json -> (
            if tag = "stats" then record_stats json
            else
              match int_of_string_opt tag with
              | Some i when i >= 0 && i < n -> results.(i) <- Some json
              | _ -> ()))
  in
  (* one pipe at a time is deadlock-free: workers only ever block
     writing their own pipe, and the parent drains every pipe to EOF
     before waiting on any child *)
  Array.iter
    (fun (rd, _) ->
      let ic = Unix.in_channel_of_descr rd in
      (try
         while true do
           consume_line (input_line ic)
         done
       with End_of_file -> ());
      close_in ic)
    pipes;
  Array.iter reap pids;
  let before = Pipeline.cache_stats () in
  let merged =
    Array.to_list
      (Array.mapi
         (fun i -> function Some json -> json | None -> f items.(i))
         results)
  in
  let parent_hits, parent_misses = counter_delta before in
  ( merged,
    { workers; hits = !hits + parent_hits; misses = !misses + parent_misses } )

let map ?jobs ~f xs =
  let items = Array.of_list xs in
  let n = Array.length items in
  let requested =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let workers = min requested (max 1 n) in
  if workers <= 1 || not (available ()) then run_sequential f items
  else fork_map ~f ~items ~workers
