type param = { pname : string; pdoc : string }

type arity =
  | Fixed of param list
  | Variadic of { min_args : int; param : param }

type entry = {
  name : string;
  doc : string;
  args : arity;
  flags : (string * string) list;
  small : int array * string list;
  construct : ints:int array -> flag:(string -> bool) -> Families.t;
}

type spec = { family : string; ints : int array; set_flags : string list }

(* --- the catalog ------------------------------------------------------ *)

let p pname pdoc = { pname; pdoc }
let fixed ps = Fixed ps
let fold_flag = ("fold", "folded ring orders: shorter wrap wires, same tracks")
let opt_flag = ("opt", "annealed node order (typically halves the tracks)")

let entries : entry list =
  [
    {
      name = "hypercube";
      doc = "n-cube via two ~2N/3-track collinear factors (S5.1)";
      args = fixed [ p "N" "dimension" ];
      flags = [ fold_flag ];
      small = ([| 5 |], []);
      construct =
        (fun ~ints ~flag -> Families.hypercube ~fold:(flag "fold") ints.(0));
    };
    {
      name = "kary";
      doc = "k-ary n-cube, k >= 3 (S3.1)";
      args = fixed [ p "K" "radix"; p "N" "dimension" ];
      flags = [ fold_flag ];
      small = ([| 3; 3 |], []);
      construct =
        (fun ~ints ~flag ->
          Families.kary ~fold:(flag "fold") ~k:ints.(0) ~n:ints.(1) ());
    };
    {
      name = "torus";
      doc = "mixed-radix torus, every side >= 3 (S3.2)";
      args = Variadic { min_args = 1; param = p "K" "side length" };
      flags = [ fold_flag ];
      small = ([| 3; 4; 5 |], []);
      construct =
        (fun ~ints ~flag -> Families.torus ~fold:(flag "fold") ~dims:ints ());
    };
    {
      name = "mesh";
      doc = "open mesh: product of paths (S3.2)";
      args = Variadic { min_args = 1; param = p "K" "side length" };
      flags = [];
      small = ([| 4; 3 |], []);
      construct = (fun ~ints ~flag:_ -> Families.mesh ~dims:ints);
    };
    {
      name = "ghc";
      doc = "generalized hypercube, uniform radix (S4.1)";
      args = fixed [ p "R" "radix"; p "N" "dimension" ];
      flags = [ fold_flag ];
      small = ([| 4; 2 |], []);
      construct =
        (fun ~ints ~flag ->
          Families.generalized_hypercube ~fold:(flag "fold") ~r:ints.(0)
            ~n:ints.(1) ());
    };
    {
      name = "complete";
      doc = "K_N on the single-row collinear layout (S4.1)";
      args = fixed [ p "N" "node count" ];
      flags = [];
      small = ([| 9 |], []);
      construct = (fun ~ints ~flag:_ -> Families.complete ints.(0));
    };
    {
      name = "hsn";
      doc = "hierarchical swap network over a GHC quotient (S4.3)";
      args = fixed [ p "LEVELS" "hierarchy levels"; p "R" "nucleus radix" ];
      flags = [];
      small = ([| 3; 3 |], []);
      construct =
        (fun ~ints ~flag:_ -> Families.hsn ~levels:ints.(0) ~radix:ints.(1));
    };
    {
      name = "hhn";
      doc = "hierarchical hypercube network: HSN with cube nucleus (S4.3)";
      args = fixed [ p "LEVELS" "hierarchy levels"; p "M" "nucleus cube dims" ];
      flags = [];
      small = ([| 2; 2 |], []);
      construct =
        (fun ~ints ~flag:_ ->
          Families.hhn ~levels:ints.(0) ~cube_dims:ints.(1));
    };
    {
      name = "ccc";
      doc = "cube-connected cycles as a hypercube PN cluster (S5.2)";
      args = fixed [ p "N" "cube dimension" ];
      flags = [];
      small = ([| 4 |], []);
      construct = (fun ~ints ~flag:_ -> Families.ccc ints.(0));
    };
    {
      name = "rh";
      doc = "reduced hypercube: CCC with hypercube clusters (S5.2)";
      args = fixed [ p "N" "cube dimension" ];
      flags = [];
      small = ([| 4 |], []);
      construct = (fun ~ints ~flag:_ -> Families.reduced_hypercube ints.(0));
    };
    {
      name = "butterfly";
      doc = "butterfly as a multiplicity-4 GHC cluster (S4.2)";
      args = fixed [ p "R" "quotient radix"; p "M" "quotient dims" ];
      flags = [];
      small = ([| 3; 2 |], []);
      construct =
        (fun ~ints ~flag:_ ->
          Families.butterfly_cluster ~radix:ints.(0) ~quotient_dims:ints.(1));
    };
    {
      name = "isn";
      doc = "indirect swap network: multiplicity-2 substitute (S4.3)";
      args = fixed [ p "R" "quotient radix"; p "M" "quotient dims" ];
      flags = [];
      small = ([| 3; 2 |], []);
      construct =
        (fun ~ints ~flag:_ ->
          Families.isn ~radix:ints.(0) ~quotient_dims:ints.(1));
    };
    {
      name = "folded";
      doc = "folded hypercube (S5.3)";
      args = fixed [ p "N" "dimension" ];
      flags = [];
      small = ([| 5 |], []);
      construct = (fun ~ints ~flag:_ -> Families.folded_hypercube ints.(0));
    };
    {
      name = "enhanced";
      doc = "enhanced cube with N random extra links (S5.3)";
      args = fixed [ p "N" "dimension"; p "SEED" "rng seed" ];
      flags = [];
      small = ([| 5; 7 |], []);
      construct =
        (fun ~ints ~flag:_ -> Families.enhanced_cube ~n:ints.(0) ~seed:ints.(1));
    };
    {
      name = "karycluster";
      doc = "k-ary n-cube cluster-c with hypercube clusters (S3.2)";
      args = fixed [ p "K" "radix"; p "N" "dimension"; p "C" "cluster size" ];
      flags = [];
      small = ([| 4; 2; 4 |], []);
      construct =
        (fun ~ints ~flag:_ ->
          Families.kary_cluster ~k:ints.(0) ~n:ints.(1) ~c:ints.(2));
    };
    {
      name = "star";
      doc = "star graph S_d on the single-row scheme (S4.3 ext.)";
      args = fixed [ p "D" "symbols" ];
      flags = [ opt_flag ];
      small = ([| 4 |], []);
      construct =
        (fun ~ints ~flag -> Families.star ~optimize:(flag "opt") ints.(0));
    };
    {
      name = "pancake";
      doc = "pancake graph on the single-row scheme (S4.3 ext.)";
      args = fixed [ p "D" "symbols" ];
      flags = [ opt_flag ];
      small = ([| 4 |], []);
      construct =
        (fun ~ints ~flag -> Families.pancake ~optimize:(flag "opt") ints.(0));
    };
    {
      name = "bubble";
      doc = "bubble-sort graph on the single-row scheme (S4.3 ext.)";
      args = fixed [ p "D" "symbols" ];
      flags = [ opt_flag ];
      small = ([| 4 |], []);
      construct =
        (fun ~ints ~flag -> Families.bubble_sort ~optimize:(flag "opt") ints.(0));
    };
    {
      name = "transposition";
      doc = "transposition graph on the single-row scheme (S4.3 ext.)";
      args = fixed [ p "D" "symbols" ];
      flags = [ opt_flag ];
      small = ([| 4 |], []);
      construct =
        (fun ~ints ~flag ->
          Families.transposition ~optimize:(flag "opt") ints.(0));
    };
    {
      name = "scc";
      doc = "star-connected cycles over a star-graph quotient (S4.3)";
      args = fixed [ p "D" "symbols" ];
      flags = [];
      small = ([| 4 |], []);
      construct = (fun ~ints ~flag:_ -> Families.scc ints.(0));
    };
    {
      name = "shuffle";
      doc = "shuffle-exchange on the single-row scheme (ext.)";
      args = fixed [ p "N" "address bits" ];
      flags = [ opt_flag ];
      small = ([| 4 |], []);
      construct =
        (fun ~ints ~flag ->
          Families.shuffle_exchange ~optimize:(flag "opt") ints.(0));
    };
    {
      name = "debruijn";
      doc = "de Bruijn graph on the single-row scheme (ext.)";
      args = fixed [ p "N" "address bits" ];
      flags = [ opt_flag ];
      small = ([| 4 |], []);
      construct =
        (fun ~ints ~flag -> Families.de_bruijn ~optimize:(flag "opt") ints.(0));
    };
    {
      name = "tree";
      doc = "complete binary tree on the in-order collinear layout";
      args = fixed [ p "LEVELS" "tree levels" ];
      flags = [];
      small = ([| 4 |], []);
      construct = (fun ~ints ~flag:_ -> Families.binary_tree ints.(0));
    };
  ]

let all () = entries
let names () = List.map (fun e -> e.name) entries
let find name = List.find_opt (fun e -> e.name = name) entries

(* --- signatures and help ---------------------------------------------- *)

let signature e =
  let args =
    match e.args with
    | Fixed ps -> List.map (fun q -> q.pname) ps
    | Variadic { min_args; param } ->
        let req =
          List.init (max 1 min_args) (fun i ->
              Printf.sprintf "%s%d" param.pname (i + 1))
        in
        req @ [ Printf.sprintf "[:%s%d...]" param.pname (max 1 min_args + 1) ]
  in
  let flags = List.map (fun (f, _) -> Printf.sprintf "[:%s]" f) e.flags in
  let join acc part =
    if String.length part > 0 && part.[0] = '[' then acc ^ part
    else acc ^ ":" ^ part
  in
  List.fold_left join e.name (args @ flags)

let usage e = Printf.sprintf "usage: %s — %s" (signature e) e.doc

let family_doc () =
  "NETWORK is one of: "
  ^ String.concat " | " (List.map signature entries)
  ^ ". Flags: fold = folded ring orders; opt = annealed node order."

(* --- parsing ----------------------------------------------------------- *)

let to_string spec =
  String.concat ":"
    (spec.family
     :: List.map string_of_int (Array.to_list spec.ints)
    @ spec.set_flags)

let parse s =
  match String.split_on_char ':' s with
  | [] | [ "" ] -> Error "empty network spec"
  | fam :: rest -> (
      match find fam with
      | None ->
          Error
            (Printf.sprintf "unknown network family %S; known: %s" fam
               (String.concat ", " (names ())))
      | Some e -> (
          (* trailing tokens naming declared flags are flags; everything
             before them must be an integer parameter *)
          let is_flag t = List.mem_assoc t e.flags in
          let rec split_flags acc = function
            | t :: tl when is_flag t && not (List.mem t acc) ->
                split_flags (t :: acc) tl
            | l -> (acc, List.rev l)
          in
          let raw_flags, int_toks = split_flags [] (List.rev rest) in
          let set_flags =
            List.filter (fun (f, _) -> List.mem f raw_flags) e.flags
            |> List.map fst
          in
          let ints_res =
            List.fold_left
              (fun acc t ->
                match (acc, int_of_string_opt t) with
                | Error _, _ -> acc
                | Ok l, Some i -> Ok (i :: l)
                | Ok _, None ->
                    Error
                      (Printf.sprintf "%s: bad parameter %S (expected an \
                                       integer); %s"
                         e.name t (usage e)))
              (Ok []) int_toks
          in
          match ints_res with
          | Error _ as err -> err
          | Ok rev_ints ->
              let ints = Array.of_list (List.rev rev_ints) in
              let got = Array.length ints in
              let arity_ok =
                match e.args with
                | Fixed ps -> got = List.length ps
                | Variadic { min_args; _ } -> got >= min_args
              in
              if not arity_ok then
                Error
                  (Printf.sprintf
                     "%s: expected %s integer parameter(s), got %d; %s" e.name
                     (match e.args with
                     | Fixed ps -> string_of_int (List.length ps)
                     | Variadic { min_args; _ } ->
                         Printf.sprintf ">= %d" min_args)
                     got (usage e))
              else Ok { family = e.name; ints; set_flags }))

let spec_exn s =
  match parse s with Ok spec -> spec | Error msg -> invalid_arg msg

let build spec =
  match find spec.family with
  | None -> Error (Printf.sprintf "unknown network family %S" spec.family)
  | Some e -> (
      let flag f = List.mem f spec.set_flags in
      try Ok (e.construct ~ints:spec.ints ~flag)
      with Invalid_argument msg | Failure msg ->
        Error
          (Printf.sprintf "%s: cannot build %s (%s); %s" e.name
             (to_string spec) msg (usage e)))

let build_exn spec =
  match build spec with Ok fam -> fam | Error msg -> invalid_arg msg

let small_spec e =
  let ints, set_flags = e.small in
  { family = e.name; ints; set_flags }

let all_small () = List.map (fun e -> build_exn (small_spec e)) entries
