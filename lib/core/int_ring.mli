(** {!Ring_buffer} specialized to [int] elements.

    Same structure and API shape as the generic ring, but the backing
    [int array] lets the compiler emit direct word stores instead of
    routing every write through the polymorphic write barrier — the
    simulator engines push tens of millions of ints per run through
    these.  There is no [dummy]: vacated slots simply keep their old
    (unreachable) values. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 16) is rounded up to a power of two. *)

val length : t -> int
val is_empty : t -> bool

val capacity : t -> int
(** Current backing-array size (a power of two, >= {!length}). *)

val push : t -> int -> unit
(** Append at the back; doubles the backing array when full. *)

val pop : t -> int
(** Remove and return the front element.  Raises [Invalid_argument]
    when empty. *)

val get : t -> int -> int
(** [get t i] is the element at logical position [i] from the front.
    Raises [Invalid_argument] out of bounds. *)

val set : t -> int -> int -> unit

val unsafe_get : t -> int -> int
(** {!get} without the bounds check; the caller must guarantee
    [0 <= i < length t]. *)

val unsafe_set : t -> int -> int -> unit

val drop_front : t -> int -> unit
(** Remove the [n] front elements in O(1).  Raises [Invalid_argument]
    when [n] is negative or exceeds {!length}. *)

val clear : t -> unit
val iter : (int -> unit) -> t -> unit
