(** Cost- and size-aware bounded cache: GreedyDual-Size-Frequency
    (GDSF) admission/eviction over a hash table.

    Plain FIFO eviction ({!Bounded_fifo}) treats a layout that took
    seconds to build exactly like one that took microseconds, so a
    sweep over cheap specs flushes the expensive residents the next
    client is about to ask for.  GDSF ranks every entry by

    {v priority = clock + frequency * cost / size v}

    where [cost] is the measured build time (seconds), [size] the
    resident bytes, [frequency] the access count since admission, and
    [clock] an aging term set to the priority of the last evicted entry
    — so an entry that stops being touched eventually ages below fresh
    arrivals no matter how expensive it was.  Eviction removes the
    minimum-priority entry (ties broken oldest-insertion-first, so the
    order is deterministic and unit-testable).

    The cache is bounded two ways: a maximum entry count and a maximum
    byte budget (sum of entry sizes).  {!add} admits the candidate,
    then evicts minimum-priority entries until both bounds hold; when
    the candidate itself is the minimum it is the one evicted — i.e.
    the admission policy rejected it — and {!add} returns [false].
    A candidate larger than the whole byte budget is rejected outright
    without disturbing residents.

    Not synchronized: callers that share a cache across domains must
    serialize access (as {!Pipeline} does behind its cache lock).  The
    monotonically increasing stats counters are plain ints read and
    written under the same external lock. *)

type ('k, 'v) t

type stats = {
  hits : int;        (** {!find_opt} found the key resident *)
  misses : int;      (** {!find_opt} came up empty *)
  admissions : int;  (** {!add} left the key resident *)
  rejections : int;  (** {!add} did not (candidate was the victim) *)
  evictions : int;   (** residents removed to make room (not candidates) *)
}

val create : ?max_bytes:int -> capacity:int -> unit -> ('k, 'v) t
(** Structural key equality/hashing.  [capacity <= 0] disables the
    cache ({!add} rejects everything, lookups miss).  [max_bytes]
    defaults to [max_int] (entry count is the only bound). *)

val capacity : ('k, 'v) t -> int
val set_capacity : ('k, 'v) t -> int -> unit
(** Clamped at 0.  Shrinking evicts minimum-priority entries
    immediately. *)

val max_bytes : ('k, 'v) t -> int
val set_max_bytes : ('k, 'v) t -> int -> unit
(** Clamped at 0.  Shrinking evicts immediately. *)

val length : ('k, 'v) t -> int
val resident_bytes : ('k, 'v) t -> int
(** Sum of the resident entries' sizes ([<= max_bytes t]). *)

val mem : ('k, 'v) t -> 'k -> bool
(** Residence test; does not touch frequency or the counters. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** A hit bumps the entry's frequency and re-ranks it
    ([clock + freq * cost / size]); both outcomes move the stats. *)

val add : ('k, 'v) t -> 'k -> 'v -> cost:float -> size:int -> bool
(** Insert or update; [true] iff the key is resident afterwards.
    [cost] is clamped below at a small positive epsilon and [size] at
    [1] so degenerate measurements cannot produce NaN or infinite
    priorities.  Re-adding a resident key updates its value, cost and
    size in place (frequency and insertion order are kept) and then
    re-enforces the byte bound.  Rejected candidates leave residents
    untouched except for evictions their admission attempt forced. *)

val remove : ('k, 'v) t -> 'k -> unit

val victim : ('k, 'v) t -> 'k option
(** The entry the next eviction would remove: minimum priority, ties
    oldest-first.  [None] when empty. *)

val priority : ('k, 'v) t -> 'k -> float option
(** Current GDSF priority of a resident key (for tests and debugging). *)

val clock : ('k, 'v) t -> float
(** The aging term: the priority of the most recently evicted or
    rejected entry (0 initially, monotonically non-decreasing). *)

val stats : ('k, 'v) t -> stats
val reset_stats : ('k, 'v) t -> unit

val clear : ('k, 'v) t -> unit
(** Drop every entry (bounds and stats are kept). *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
