type ('k, 'v) t = {
  tbl : ('k, 'v) Hashtbl.t;
  mutable order : 'k Queue.t;
  mutable capacity : int;
}

let create ~capacity =
  { tbl = Hashtbl.create 64; order = Queue.create (); capacity = max 0 capacity }

let capacity t = t.capacity
let length t = Hashtbl.length t.tbl
let order_length t = Queue.length t.order
let mem t k = Hashtbl.mem t.tbl k
let find_opt t k = Hashtbl.find_opt t.tbl k
let oldest t = Queue.peek_opt t.order

let evict_one t =
  match Queue.take_opt t.order with
  | None -> ()
  | Some k -> Hashtbl.remove t.tbl k

(* drop [k]'s single queue entry; O(length), only paid on re-insert *)
let remove_from_order t k =
  let q = Queue.create () in
  Queue.iter (fun k' -> if k' <> k then Queue.add k' q) t.order;
  t.order <- q

let add t k v =
  if t.capacity > 0 then
    if Hashtbl.mem t.tbl k then begin
      remove_from_order t k;
      Hashtbl.replace t.tbl k v;
      Queue.add k t.order
    end
    else begin
      while Hashtbl.length t.tbl >= t.capacity && not (Queue.is_empty t.order) do
        evict_one t
      done;
      Hashtbl.replace t.tbl k v;
      Queue.add k t.order
    end

let set_capacity t cap =
  t.capacity <- max 0 cap;
  while Hashtbl.length t.tbl > t.capacity && not (Queue.is_empty t.order) do
    evict_one t
  done

let clear t =
  Hashtbl.reset t.tbl;
  Queue.clear t.order
