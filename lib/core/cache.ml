(* GreedyDual-Size-Frequency over a Hashtbl.

   Entries carry their priority explicitly; eviction scans for the
   minimum.  The scan is O(length) but length is bounded by [capacity]
   (hundreds for the pipeline caches), eviction only runs on inserts
   that exceed a bound, and the alternative — an intrusive heap keyed
   by a float that changes on every hit — costs more bookkeeping on
   the hit path, which is the one that must stay cheap. *)

type ('k, 'v) entry = {
  mutable value : 'v;
  mutable cost : float;
  mutable size : int;
  mutable freq : int;
  mutable prio : float;
  seq : int; (* insertion order, the deterministic tie-break *)
}

type stats = {
  hits : int;
  misses : int;
  admissions : int;
  rejections : int;
  evictions : int;
}

(* [t]'s counter fields deliberately shadow [stats]'s — all direct
   field accesses below resolve against [t] *)
type ('k, 'v) t = {
  tbl : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable capacity : int;
  mutable max_bytes : int;
  mutable bytes : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable hits : int;
  mutable misses : int;
  mutable admissions : int;
  mutable rejections : int;
  mutable evictions : int;
}

(* a zero-cost or zero-size measurement must not collapse the priority
   to the clock (or blow it up to infinity) *)
let min_cost = 1e-9

let create ?(max_bytes = max_int) ~capacity () =
  {
    tbl = Hashtbl.create 64;
    capacity = max 0 capacity;
    max_bytes = max 0 max_bytes;
    bytes = 0;
    clock = 0.0;
    next_seq = 0;
    hits = 0;
    misses = 0;
    admissions = 0;
    rejections = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let max_bytes t = t.max_bytes
let length t = Hashtbl.length t.tbl
let resident_bytes t = t.bytes
let clock t = t.clock
let mem t k = Hashtbl.mem t.tbl k

let rank e = e.prio

let find_opt t k =
  match Hashtbl.find_opt t.tbl k with
  | None ->
      t.misses <- t.misses + 1;
      None
  | Some e ->
      t.hits <- t.hits + 1;
      e.freq <- e.freq + 1;
      e.prio <- t.clock +. (float_of_int e.freq *. e.cost /. float_of_int e.size);
      Some e.value

(* minimum priority, ties oldest-first — [None] when empty *)
let find_victim t =
  let best = ref None in
  Hashtbl.iter
    (fun k e ->
      match !best with
      | None -> best := Some (k, e)
      | Some (_, b) ->
          if
            rank e < rank b
            || (Float.equal (rank e) (rank b) && e.seq < b.seq)
          then best := Some (k, e))
    t.tbl;
  !best

let victim t = Option.map fst (find_victim t)

let priority t k = Option.map rank (Hashtbl.find_opt t.tbl k)

let remove_entry t k e =
  Hashtbl.remove t.tbl k;
  t.bytes <- t.bytes - e.size

let remove t k =
  match Hashtbl.find_opt t.tbl k with
  | None -> ()
  | Some e -> remove_entry t k e

let over_bounds t =
  Hashtbl.length t.tbl > t.capacity || t.bytes > t.max_bytes

(* evict minimum-priority entries until the bounds hold, advancing the
   clock to each victim's priority (the GDSF aging step) *)
let enforce ?(candidate = None) t =
  let rejected = ref false in
  while over_bounds t do
    match find_victim t with
    | None ->
        (* bounds can only be exceeded by resident entries *)
        assert false
    | Some (k, e) ->
        t.clock <- Float.max t.clock (rank e);
        remove_entry t k e;
        if candidate = Some e.seq then rejected := true
        else t.evictions <- t.evictions + 1
  done;
  !rejected

let add t k v ~cost ~size =
  let cost = Float.max cost min_cost in
  let size = max size 1 in
  if t.capacity = 0 || size > t.max_bytes then begin
    (* cannot fit even an empty cache: reject without touching
       residents *)
    remove t k;
    t.rejections <- t.rejections + 1;
    false
  end
  else begin
    (match Hashtbl.find_opt t.tbl k with
    | Some e ->
        t.bytes <- t.bytes - e.size + size;
        e.value <- v;
        e.cost <- cost;
        e.size <- size;
        e.prio <-
          t.clock +. (float_of_int e.freq *. e.cost /. float_of_int e.size)
    | None ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        let e =
          {
            value = v;
            cost;
            size;
            freq = 1;
            prio = t.clock +. (cost /. float_of_int size);
            seq;
          }
        in
        Hashtbl.replace t.tbl k e;
        t.bytes <- t.bytes + size);
    let seq = (Hashtbl.find t.tbl k).seq in
    let rejected = enforce ~candidate:(Some seq) t in
    if rejected then t.rejections <- t.rejections + 1
    else t.admissions <- t.admissions + 1;
    not rejected
  end

let set_capacity t cap =
  t.capacity <- max 0 cap;
  ignore (enforce t)

let set_max_bytes t b =
  t.max_bytes <- max 0 b;
  ignore (enforce t)

let stats t : stats =
  {
    hits = t.hits;
    misses = t.misses;
    admissions = t.admissions;
    rejections = t.rejections;
    evictions = t.evictions;
  }

let reset_stats t =
  t.hits <- 0;
  t.misses <- 0;
  t.admissions <- 0;
  t.rejections <- 0;
  t.evictions <- 0

let clear t =
  Hashtbl.reset t.tbl;
  t.bytes <- 0;
  t.clock <- 0.0;
  t.next_seq <- 0

let iter f t = Hashtbl.iter (fun k e -> f k e.value) t.tbl
