open Mvl_layout

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list

(* --- encoding ---------------------------------------------------------- *)

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no NaN/Infinity; finite floats must re-parse as floats, so
   integral values keep an explicit ".0".  The shortest of %.15g/%.16g/
   %.17g that reads back exactly keeps records compact without losing
   bits on the round-trip. *)
let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.15g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.16g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent n = Buffer.add_string buf (String.make (2 * n) ' ') in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | String s ->
        Buffer.add_char buf '"';
        add_escaped buf s;
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            go (depth + 1) item)
          items;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            if pretty then begin
              Buffer.add_char buf '\n';
              indent (depth + 1)
            end;
            Buffer.add_char buf '"';
            add_escaped buf k;
            Buffer.add_string buf (if pretty then "\": " else "\":");
            go (depth + 1) v)
          fields;
        if pretty then begin
          Buffer.add_char buf '\n';
          indent depth
        end;
        Buffer.add_char buf '}'
  in
  go 0 t;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string ~pretty:true t)

(* --- parsing ----------------------------------------------------------- *)

exception Bad of string * int

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (msg, !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  (* encode a Unicode code point as UTF-8 *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          (if !pos >= n then fail "truncated escape";
           let c = s.[!pos] in
           advance ();
           match c with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 't' -> Buffer.add_char buf '\t'
           | 'r' -> Buffer.add_char buf '\r'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               let cp = hex4 () in
               let cp =
                 (* surrogate pair *)
                 if cp >= 0xD800 && cp <= 0xDBFF && !pos + 6 <= n
                    && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                 then begin
                   pos := !pos + 2;
                   let lo = hex4 () in
                   if lo >= 0xDC00 && lo <= 0xDFFF then
                     0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                   else fail "invalid low surrogate"
                 end
                 else cp
               in
               add_utf8 buf cp
           | c -> fail (Printf.sprintf "bad escape \\%c" c));
          loop ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let digits () =
      let d0 = !pos in
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    digits ();
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let rec fields acc =
            let kv = field () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields (kv :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev (kv :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          fields []
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Bad (msg, at) ->
      Error (Printf.sprintf "json: %s at byte %d" msg at)
  | exception Failure _ -> Error "json: malformed number"

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let keys = function Obj fields -> List.map fst fields | _ -> []

let rec strip_volatile = function
  | Obj fields ->
      Obj
        (List.filter_map
           (fun (k, v) ->
             if
               k = "seconds" || k = "cache" || k = "layout_phases"
               || k = "from_cache"
             then None
             else Some (k, strip_volatile v))
           fields)
  | List items -> List (List.map strip_volatile items)
  | (Null | Bool _ | Int _ | Float _ | String _) as atom -> atom

(* --- typed emitters ---------------------------------------------------- *)

let of_metrics (m : Layout.metrics) =
  Obj
    [
      ("width", Int m.Layout.width);
      ("height", Int m.Layout.height);
      ("area", Int m.Layout.area);
      ("layers", Int m.Layout.layers);
      ("volume", Int m.Layout.volume);
      ("max_wire", Int m.Layout.max_wire);
      ("total_wire", Int m.Layout.total_wire);
      ("vias", Int m.Layout.vias);
    ]

let rule_counts violations =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (v : Check.violation) ->
      Hashtbl.replace tbl v.Check.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl v.Check.rule)))
    violations;
  Hashtbl.fold (fun rule count acc -> (rule, Int count) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let violation_summary (r : Check.result) =
  Obj
    [
      ("checked", Bool true);
      ("mode", String (Check.mode_name r.Check.mode));
      ("count", Int (List.length r.Check.violations));
      ("truncated", Bool r.Check.truncated);
      ("rules", Obj (rule_counts r.Check.violations));
    ]

let not_validated = Obj [ ("checked", Bool false) ]

let of_check (r : Check.result) =
  match violation_summary r with
  | Obj fields ->
      Obj
        (fields
        @ [
            ( "violations",
              List
                (List.map
                   (fun (v : Check.violation) ->
                     Obj
                       [
                         ("rule", String v.Check.rule);
                         ("detail", String v.Check.detail);
                       ])
                   r.Check.violations) );
          ])
  | other -> other

let of_sim (r : Mvl_sim.Network_sim.result) =
  let open Mvl_sim.Network_sim in
  Obj
    [
      ("injected", Int r.injected);
      ("delivered", Int r.delivered);
      ("hop_total", Int r.hop_total);
      ("avg_latency", Float r.avg_latency);
      ("p50_latency", Int r.p50_latency);
      ("p95_latency", Int r.p95_latency);
      ("p99_latency", Int r.p99_latency);
      ("max_latency", Int r.max_latency);
      ("throughput", Float r.throughput);
      ("avg_hops", Float r.avg_hops);
      ("cycles", Int r.cycles);
      ("undrained", Int r.undrained);
      ( "latency_histogram",
        List
          (Array.to_list
             (Array.map
                (fun (lat, count) -> List [ Int lat; Int count ])
                r.latency_histogram)) );
    ]

let of_report (r : Report.t) =
  Obj
    [
      ("node_area", Int r.Report.node_area);
      ("node_area_share", Float r.Report.node_area_share);
      ("wire_count", Int r.Report.wire_count);
      ("wire_min", Int r.Report.wire_min);
      ("wire_median", Int r.Report.wire_median);
      ("wire_p90", Int r.Report.wire_p90);
      ("wire_max", Int r.Report.wire_max);
      ( "run_length_per_layer",
        Obj
          (List.map
             (fun (z, len) -> (string_of_int z, Int len))
             r.Report.segments_per_layer) );
      ("via_count", Int r.Report.via_count);
      ("active_layers", Int r.Report.active_layers);
    ]
