(** A capacity-bounded hash table with FIFO eviction — the structure
    behind {!Pipeline}'s family and layout caches.

    The insertion-order queue mirrors the table {e exactly}: every live
    key appears in the queue once, so [order_length t = length t] at
    all times.  Re-inserting a key that is already resident updates its
    value and refreshes its queue position (it becomes the newest
    entry) instead of leaving a duplicate behind — the previous
    implementation's unconditional [Queue.add] let eviction pop a stale
    duplicate and remove a live, recently-used key while the queue grew
    without bound relative to the table. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Structural key equality/hashing.  [capacity <= 0] disables the
    cache: {!add} is a no-op and lookups always miss. *)

val capacity : ('k, 'v) t -> int

val set_capacity : ('k, 'v) t -> int -> unit
(** Clamped at 0.  Shrinking below the current {!length} evicts the
    oldest entries immediately. *)

val length : ('k, 'v) t -> int
(** Live entries ([<= capacity t]). *)

val order_length : ('k, 'v) t -> int
(** Length of the insertion-order queue.  Always equals {!length} —
    exposed so tests can assert the mirror invariant. *)

val mem : ('k, 'v) t -> 'k -> bool
val find_opt : ('k, 'v) t -> 'k -> 'v option

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or update.  A fresh key evicts the oldest entries until the
    bound holds, then enters the table and the back of the queue; a
    resident key is updated in place and moved to the back of the
    queue (no eviction, no duplicate queue entry). *)

val oldest : ('k, 'v) t -> 'k option
(** The next eviction victim, if any. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry (capacity is kept). *)
