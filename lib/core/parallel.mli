(** Fork-based worker pool for embarrassingly parallel sweeps.

    Every sweep surface — [mvl sweep --jobs], [mvl validate --jobs],
    [bench emit --jobs] — evaluates one independent pipeline run per
    (spec, layers) point, so the pool is a plain parallel [map]: the
    job list is split round-robin over [N] forked workers, each worker
    streams its results back over a pipe as framed compact
    {!Telemetry} records, and the parent merges them by input index —
    the output list order is the input order, independent of worker
    scheduling.

    Framing (one line per message, no raw newlines can occur inside a
    compact record):
    {v
    <index> TAB <compact JSON record> NL      one per completed job
    stats   TAB {"hits":H,"misses":M}  NL     once per worker, at exit
    v}

    Failure handling: a job whose record never arrives — [f] raised,
    or the worker crashed or was killed mid-run — is recomputed in the
    parent after the merge, so an exception from [f] surfaces exactly
    as it would sequentially and a lost worker costs only its own
    unreported jobs.

    When forking is unavailable ([available () = false]) or one worker
    is requested, {!map} degrades to the plain sequential map in the
    calling process. *)

type stats = {
  workers : int;  (** processes actually used (1 = in-process) *)
  hits : int;     (** layout-cache hits summed over all workers *)
  misses : int;   (** layout-cache misses summed over all workers *)
}

val available : unit -> bool
(** [true] where [Unix.fork] works (i.e. not on native Windows). *)

val cpu_count : unit -> int
(** Online processors (from [/proc/cpuinfo]; 1 when unreadable). *)

val default_jobs : unit -> int
(** [min 8 (cpu_count ())] — the default for the [--jobs] flags. *)

val map :
  ?jobs:int -> f:('a -> Telemetry.json) -> 'a list -> Telemetry.json list * stats
(** [map ~jobs ~f xs] is [List.map f xs] evaluated on up to [jobs]
    forked workers (default {!default_jobs}; never more workers than
    jobs), plus the aggregated per-worker {!Pipeline} layout-cache
    counter deltas.  Results are in input order.  Each worker inherits
    the parent's cache state at fork time; cache insertions made by a
    worker die with it. *)
