(** Parallel runtime facade for embarrassingly parallel sweeps.

    Every sweep surface — [mvl sweep --jobs], [mvl validate --jobs],
    [bench emit --jobs] — evaluates one independent pipeline run per
    (spec, layers) point, so the runtime is a plain parallel [map]
    over two interchangeable backends:

    - {b Domains} (the default): the jobs run on a work-stealing
      {!Domain_pool} of OCaml 5 domains inside one process.  Results
      come back by reference — no serialization — and every domain
      shares the one {!Pipeline} layout cache, so a layout built by
      any worker is a hit for all of them.  An exception from [f]
      propagates with its backtrace after the pool drains.
    - {b Fork} (legacy, kept behind [MVL_FORCE_FORK=1]): the job list
      is split round-robin over [N] forked workers, each worker
      streams its results back over a pipe as framed compact
      {!Telemetry} records, and the parent merges them by input
      index.  Framing (one line per message; no raw newlines occur
      inside a compact record):
      {v
      <index> TAB <compact JSON record> NL      one per completed job
      stats   TAB {"hits":H,"misses":M}  NL     once per worker, at exit
      v}
      A job whose record never arrives — [f] raised, or the worker
      crashed or was killed mid-run — is recomputed in the parent
      after the merge, so an exception from [f] surfaces exactly as it
      would sequentially and a lost worker costs only its own
      unreported jobs.  Workers inherit the parent's cache state at
      fork time; insertions made by a worker die with it.

    Both backends merge results in input order, independent of worker
    scheduling, so [--stable] output is byte-identical across backends
    and job counts.  With one worker (or one job) either backend
    degrades to the plain sequential map in the calling process. *)

type stats = {
  workers : int;  (** domains/processes actually used (1 = in-process) *)
  hits : int;     (** layout-cache hits summed over all workers *)
  misses : int;   (** layout-cache misses summed over all workers *)
}

type backend =
  | Domains     (** shared-memory work-stealing domain pool *)
  | Fork        (** legacy fork/pipe worker pool *)
  | Sequential  (** plain [List.map] in the calling process *)

val backend_name : backend -> string
(** ["domains"], ["fork"], ["sequential"] — for telemetry and logs. *)

val default_backend : unit -> backend
(** [Domains], unless [MVL_FORCE_FORK] is set to [1]/[true]/[yes]
    (and forking is {!available}), which selects [Fork]. *)

val available : unit -> bool
(** [true] where [Unix.fork] currently works: not on native Windows,
    and not once the domain backend has spawned a domain — the OCaml 5
    runtime permanently refuses [fork] in a process that has created
    domains.  Gates only the [Fork] backend (a [Fork] request falls
    back to sequential when unavailable); [Domains] works
    everywhere. *)

val cpu_count : unit -> int
(** Processors available to {e this} process:
    [Domain.recommended_domain_count ()], which respects cpuset /
    affinity limits in containers, falling back to counting
    [/proc/cpuinfo] processors when the probe reports a single CPU
    (indistinguishable from a failed probe). *)

val default_jobs : unit -> int
(** [cpu_count ()] — the default for the [--jobs] flags.  No longer
    capped at 8: the domain backend has no per-worker fork cost, so
    wide machines should use their width. *)

val map :
  ?backend:backend ->
  ?jobs:int ->
  f:('a -> Telemetry.json) ->
  'a list ->
  Telemetry.json list * stats
(** [map ~jobs ~f xs] is [List.map f xs] evaluated on up to [jobs]
    workers (default {!default_jobs}; never more workers than jobs) of
    [backend] (default {!default_backend}), plus the aggregated
    {!Pipeline} layout-cache counter deltas.  Results are in input
    order. *)
