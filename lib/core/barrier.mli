(** Sense-reversing cyclic barrier for gang-scheduled domains.

    [parties] workers advance in lockstep: each calls {!wait} at the end
    of a phase and resumes only once all parties have arrived.  The
    barrier is cyclic — the same value synchronizes every subsequent
    phase, with an internal generation counter preventing a fast worker
    from lapping a slow one.

    Failure handling: a worker that cannot reach its next {!wait}
    (because its phase body raised) must call {!break} before
    propagating the exception.  Every peer blocked in — or subsequently
    entering — {!wait} then raises {!Broken} instead of deadlocking on
    an arrival that will never come.  Breaking is sticky: a broken
    barrier stays broken.

    The mutex acquire/release pair inside {!wait} is also the
    happens-before edge gang protocols rely on: writes a worker makes
    before [wait] are visible to every party after the matching [wait]
    returns. *)

type t

exception Broken
(** Raised from {!wait} by every party of a barrier that was {!break}ed. *)

val create : parties:int -> t
(** [create ~parties] makes a barrier for [parties >= 1] workers.
    Raises [Invalid_argument] on [parties < 1]. *)

val parties : t -> int

val wait : t -> unit
(** Block until all [parties] workers have called [wait] for the current
    phase, then advance together.  Raises {!Broken} (possibly without
    blocking) if the barrier is or becomes broken. *)

val break : t -> unit
(** Mark the barrier broken and wake all waiters.  Idempotent. *)

val is_broken : t -> bool
