(** Declarative catalog of the paper's network families.

    Each entry describes one family once — CLI name, integer-parameter
    signature (with arity checking), optional trailing flags, a one-line
    doc and the constructor — and everything else is {e derived} from
    it: the [mvl] command-line parser and its help string, the [mvl
    list] output, the representative small instances used by tests and
    examples, and the bench enumerations.  Adding a family to the
    library means adding one entry to {!all} in [registry.ml]; no other
    file needs editing. *)

type param = {
  pname : string;  (** placeholder shown in the signature, e.g. ["N"] *)
  pdoc : string;   (** short meaning, e.g. ["dimension"] *)
}

type arity =
  | Fixed of param list
      (** exactly these integer parameters, in order *)
  | Variadic of { min_args : int; param : param }
      (** at least [min_args] integers of the same kind (e.g. torus
          side lengths) *)

type entry = {
  name : string;  (** CLI family name, e.g. ["hypercube"] *)
  doc : string;   (** one-line description (paper section reference) *)
  args : arity;
  flags : (string * string) list;
      (** optional trailing flag tokens, [(flag, doc)], e.g.
          [("fold", "folded ring orders")] *)
  small : int array * string list;
      (** parameters of a representative small instance *)
  construct : ints:int array -> flag:(string -> bool) -> Families.t;
      (** build the family; [ints] is already arity-checked.  May still
          raise [Invalid_argument] on out-of-range values — {!build}
          converts that to an [Error]. *)
}

type spec = {
  family : string;        (** entry name *)
  ints : int array;       (** integer parameters, in signature order *)
  set_flags : string list;
      (** flags present, normalized to the entry's declaration order *)
}
(** A parsed, arity-checked family specification.  [to_string] and
    {!parse} round-trip: [parse (to_string s) = Ok s]. *)

val all : unit -> entry list
(** Every registered family, in presentation order. *)

val names : unit -> string list

val find : string -> entry option

val signature : entry -> string
(** The colon-joined usage pattern, e.g. ["hypercube:N[:fold]"] or
    ["torus:K1[:K2...]"]. *)

val family_doc : unit -> string
(** The CLI help string listing every signature — derived, not
    hand-maintained. *)

val parse : string -> (spec, string) result
(** Parse ["name:int:...[:flag...]"].  Unknown names, non-integer
    parameters and wrong arity all return [Error] with a usage message
    naming the family's expected signature (never a raw
    [int_of_string] failure). *)

val to_string : spec -> string
(** Canonical spec string; re-parses to the same spec. *)

val spec_exn : string -> spec
(** [parse], raising [Invalid_argument] on [Error] (for hard-coded
    specs in benches and examples). *)

val build : spec -> (Families.t, string) result
(** Run the entry's constructor; constructor-level [Invalid_argument]
    / [Failure] become [Error] messages naming the family. *)

val build_exn : spec -> Families.t

val small_spec : entry -> spec
(** The entry's representative small instance as a spec. *)

val all_small : unit -> Families.t list
(** A representative small instance of every family (used by tests,
    [mvl list] and the quickstart example). *)
