(** A growable ring buffer (circular array deque): O(1) push at the
    back, O(1) pop at the front, O(1) random access by logical index —
    the structure behind the simulators' router queues and timing-wheel
    buckets, where per-cycle [Hashtbl] and reversed-list traffic used to
    dominate the allocation profile.

    The backing array doubles when full (amortized O(1) push) and never
    shrinks, so a queue that has reached its steady-state high-water
    mark performs no further allocation.  Popped and dropped slots are
    overwritten with the [dummy] element so the buffer does not retain
    references to departed values. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [create ~dummy ()] makes an empty buffer.  [capacity] (default 16)
    is rounded up to a power of two; [dummy] fills unused slots. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current backing-array size (a power of two, >= {!length}). *)

val push : 'a t -> 'a -> unit
(** Append at the back; doubles the backing array when full. *)

val pop : 'a t -> 'a
(** Remove and return the front element.  Raises [Invalid_argument]
    when empty. *)

val pop_opt : 'a t -> 'a option

val get : 'a t -> int -> 'a
(** [get t i] is the element at logical position [i] from the front
    ([0] = next to pop).  Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Overwrite the element at logical position [i]. *)

val unsafe_get : 'a t -> int -> 'a
(** {!get} without the bounds check.  The caller must guarantee
    [0 <= i < length t]; out-of-range indexes read stale slots. *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** {!set} without the bounds check; same contract as {!unsafe_get}. *)

val drop_front : 'a t -> int -> unit
(** [drop_front t n] removes the [n] front elements in O(n), without
    touching the rest.  Raises [Invalid_argument] when [n] is negative
    or exceeds {!length}. *)

val clear : 'a t -> unit
(** Empty the buffer (capacity kept, all slots reset to [dummy]). *)

val iter : ('a -> unit) -> 'a t -> unit
(** Front-to-back iteration. *)
