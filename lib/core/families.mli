(** One-call drivers: for every network family in the paper, build the
    graph and produce its multilayer layout, together with the paper's
    predicted leading terms for comparison. *)

open Mvl_topology
open Mvl_layout

type t = {
  name : string;
  n_nodes : int;
  graph : Graph.t;
  layout : layers:int -> Layout.t;
      (** the paper's construction for this family at [L] layers *)
  layout_jobs : jobs:int -> layers:int -> Layout.t;
      (** like [layout], sharding wire emission over [jobs] domains for
          families whose realization supports it (the orthogonal product
          and augmented schemes); byte-identical to [layout] at every
          job count.  Families without a sharded path ignore [jobs].
          A separate field because optional arguments do not survive in
          record-field function types. *)
  paper_area : (layers:int -> float) option;
  paper_volume : (layers:int -> float) option;
  paper_max_wire : (layers:int -> float) option;
  bisection : int option;
      (** exact bisection width, when a closed form is known *)
}

val hypercube : ?fold:bool -> int -> t
(** §5.1: [n]-cube via the product of two [floor(2N/3)]-track collinear
    factors. *)

val kary : ?fold:bool -> k:int -> n:int -> unit -> t
(** §3.1: [k]-ary [n]-cube, [k >= 3].  [~fold] uses folded ring orders
    (shorter wrap wires, same track count). *)

val generic_product : row:Collinear.t -> col:Collinear.t -> t
(** §3.2 in full generality: the Cartesian product of any two factor
    graphs, laid out from their collinear layouts (rows like the first
    factor, columns like the second) — e.g. clique x ring or
    hypercube x path hybrids. *)

val torus : ?fold:bool -> dims:int array -> unit -> t
(** §3.2 generalization: mixed-radix torus (product of rings of the
    given sizes, [dims.(0)] fastest), laid out with the generic
    collinear-product recursion.  Every side must be >= 3. *)

val generalized_hypercube : ?fold:bool -> r:int -> n:int -> unit -> t
(** §4.1 (uniform radix). *)

val complete : int -> t
(** [K_N] via the single-row collinear layout (§4.1's building block). *)

val hsn : levels:int -> radix:int -> t
(** §4.3: hierarchical swap network with complete-graph nucleus, laid
    out as a PN cluster over its generalized-hypercube quotient. *)

val hhn : levels:int -> cube_dims:int -> t
(** §4.3: hierarchical hypercube network (HSN with hypercube nucleus). *)

val ccc : int -> t
(** §5.2: cube-connected cycles as a hypercube PN cluster. *)

val reduced_hypercube : int -> t
(** §5.2: RH — CCC with cycles replaced by hypercubes. *)

val butterfly_cluster : radix:int -> quotient_dims:int -> t
(** §4.2: the butterfly's PN-cluster structure — a generalized-hypercube
    quotient with multiplicity 4 and small butterfly-like clusters
    ([radix * quotient_dims]-sized grids; see DESIGN.md for the
    substitution note). *)

val isn : radix:int -> quotient_dims:int -> t
(** §4.3: indirect swap network substitute — same quotient with
    multiplicity 2. *)

val folded_hypercube : int -> t
(** §5.3. *)

val enhanced_cube : n:int -> seed:int -> t
(** §5.3. *)

val kary_cluster : k:int -> n:int -> c:int -> t
(** §3.2: [k]-ary [n]-cube cluster-[c] with hypercube clusters. *)

val star : ?optimize:bool -> int -> t
(** §4.3 extension: star graph [S_d] on the single-row collinear
    layout.  [~optimize:true] runs simulated annealing over the node
    order (no constructive order is known for these families; the
    optimizer typically halves the track count). *)

val pancake : ?optimize:bool -> int -> t
val bubble_sort : ?optimize:bool -> int -> t
val transposition : ?optimize:bool -> int -> t

val scc : int -> t
(** §4.3: star-connected cycles — the star graph's cycles expanded by
    the recursive grid scheme over a single-row star-graph quotient. *)

val shuffle_exchange : ?optimize:bool -> int -> t
(** Extension: the classic Thompson/Leighton benchmark on the
    single-row collinear scheme. *)

val de_bruijn : ?optimize:bool -> int -> t

val mesh : dims:int array -> t
(** Open mesh (product of paths) on the orthogonal product scheme —
    the cheap, low-bisection end of the comparison. *)

val binary_tree : int -> t
(** Complete binary tree on the in-order collinear layout (cutwidth
    [<= levels]) — the minimal-area extreme. *)

(** A representative small instance of every family is available as
    {!Registry.all_small}, derived from the declarative catalog. *)
