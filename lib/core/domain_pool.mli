(** Work-stealing OCaml 5 domain pool for coarse-grained parallel maps.

    The pool runs one worker per domain ([domains - 1] spawned domains
    plus the calling domain) over a fixed task set known up front — no
    task ever spawns another task, so a worker that finds every deque
    empty can retire immediately.

    Deque protocol: task indices are dealt round-robin into one deque
    per worker (worker [w] initially owns indices [w, w+D, w+2D, ...],
    the same static partition the fork pool used, so ownership is
    reproducible); an owner pops from the {e front} of its own deque
    (ascending index order) and an idle worker steals from the {e back}
    of a victim's deque (the indices the owner would reach last),
    scanning victims round-robin from its own successor.  Each deque is
    guarded by its own mutex — tasks here are whole pipeline runs or
    verification shards, so the per-task locking cost is noise.

    Results are written into a shared slot array, one slot per index,
    each written by exactly one worker; [Domain.join] publishes every
    worker's writes before the caller reads them, so results pass by
    reference with no serialization of any kind.

    Determinism: output order is input order by construction, and the
    pool itself consumes no randomness.  Workloads that need per-task
    random streams should derive them from the task, not the worker —
    {!split_seed} gives a stream per (seed, index) pair so results
    cannot depend on which domain ran which task.

    Exceptions: a task that raises marks its slot; after every worker
    has been joined the exception from the {e lowest} failing index is
    re-raised (with its backtrace) in the caller — the same exception a
    sequential left-to-right map would have surfaced first, for
    deterministic [f]. *)

type stats = {
  domains : int;  (** workers that ran (including the calling domain) *)
  steals : int;   (** tasks executed by a worker that did not own them *)
}

val map : ?domains:int -> f:('a -> 'b) -> 'a array -> 'b array * stats
(** [map ~domains ~f items] is [Array.map f items] evaluated on
    [domains] workers (default {!Domain.recommended_domain_count}, and
    never more workers than items).  [domains <= 1] or fewer than two
    items degrade to a plain sequential map in the calling domain.
    [f] must be safe to call from multiple domains at once. *)

val gang : workers:int -> ?abort:(unit -> unit) -> (int -> unit) -> unit
(** [gang ~workers f] runs [f 0 .. f (workers - 1)] with every worker on
    its own domain, concurrently ([workers - 1] spawned domains plus the
    calling domain as worker 0), and joins them all.  Use this — never
    {!map} — for tasks that synchronize with each other (e.g. through
    {!Barrier.wait}): a stealing pool may schedule two lockstep tasks on
    one domain, which deadlocks at their first rendezvous.

    [workers = 1] calls [f 0] inline without spawning anything.

    If a worker raises, [abort] (typically [fun () -> Barrier.break b])
    is invoked exactly once so gang-mates blocked on a rendezvous wake
    up and fail too; after all workers are joined the exception from the
    lowest-index worker whose failure is not a {!Barrier.Broken} echo is
    re-raised with its backtrace. *)

val spawned_domains : unit -> bool
(** [true] once any {!map} call has spawned a domain in this process.
    The OCaml 5 runtime permanently refuses [Unix.fork] after that
    point, so the fork backend consults this before forking. *)

val split_seed : seed:int -> index:int -> int
(** A deterministic per-task seed: a splitmix64-style finalizer over
    [seed] and [index].  Two distinct [(seed, index)] pairs give
    unrelated streams, and the result never depends on scheduling, so
    seeding [Rng.create] with it keeps domain-parallel runs
    byte-identical to sequential ones. *)
