open Mvl_topology
open Mvl_layout
open Mvl_model

type t = {
  name : string;
  n_nodes : int;
  graph : Graph.t;
  layout : layers:int -> Layout.t;
  layout_jobs : jobs:int -> layers:int -> Layout.t;
  paper_area : (layers:int -> float) option;
  paper_volume : (layers:int -> float) option;
  paper_max_wire : (layers:int -> float) option;
  bisection : int option;
}

let trivial_collinear = Collinear.natural (Graph.of_edges ~n:1 [])

(* families whose realization has no sharded emission path ignore
   [jobs]; their [layout_jobs] stays deterministic trivially *)
let no_jobs layout ~jobs:_ ~layers = layout ~layers

(* --- product families ------------------------------------------------ *)

let hypercube_factors ?(fold = false) n =
  let maybe_fold c = if fold then Collinear.fold c else c in
  let row_dims = (n + 1) / 2 in
  let col_dims = n - row_dims in
  let row = maybe_fold (Collinear_hypercube.create row_dims) in
  let col =
    if col_dims = 0 then trivial_collinear
    else maybe_fold (Collinear_hypercube.create col_dims)
  in
  (row, col)

let hypercube ?fold n =
  if n < 1 then invalid_arg "Families.hypercube: n < 1";
  let graph = Hypercube.create n in
  let row, col = hypercube_factors ?fold n in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col graph in
  let n_nodes = 1 lsl n in
  {
    name = Printf.sprintf "hypercube(n=%d)" n;
    n_nodes;
    graph;
    layout = (fun ~layers -> Multilayer.realize ortho ~layers);
    layout_jobs = (fun ~jobs ~layers -> Multilayer.realize ~jobs ortho ~layers);
    paper_area = Some (fun ~layers -> Formulas.hypercube_area ~n_nodes ~layers);
    paper_volume =
      Some (fun ~layers -> Formulas.hypercube_volume ~n_nodes ~layers);
    paper_max_wire =
      Some (fun ~layers -> Formulas.hypercube_max_wire ~n_nodes ~layers);
    bisection = Some (Lower_bounds.hypercube_bisection n);
  }

let kary ?(fold = false) ~k ~n () =
  if k < 3 then invalid_arg "Families.kary: k < 3 (use hypercube for k = 2)";
  let graph = Kary_ncube.create ~k ~n in
  let row_dims = (n + 1) / 2 in
  let col_dims = n - row_dims in
  let row = Collinear_kary.create ~fold ~k ~n:row_dims () in
  let col =
    if col_dims = 0 then trivial_collinear
    else Collinear_kary.create ~fold ~k ~n:col_dims ()
  in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col graph in
  let n_nodes = Graph.n graph in
  {
    name = Printf.sprintf "kary(k=%d,n=%d%s)" k n (if fold then ",fold" else "");
    n_nodes;
    graph;
    layout = (fun ~layers -> Multilayer.realize ortho ~layers);
    layout_jobs = (fun ~jobs ~layers -> Multilayer.realize ~jobs ortho ~layers);
    paper_area = Some (fun ~layers -> Formulas.kary_area ~n_nodes ~k ~layers);
    paper_volume = Some (fun ~layers -> Formulas.kary_volume ~n_nodes ~k ~layers);
    paper_max_wire = None;
    bisection = Some (Lower_bounds.kary_bisection ~k ~n);
  }

let generic_product ~row ~col =
  let graph =
    Graph.cartesian_product row.Collinear.graph col.Collinear.graph
  in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col graph in
  {
    name =
      Printf.sprintf "product(%dx%d)"
        (Graph.n row.Collinear.graph)
        (Graph.n col.Collinear.graph);
    n_nodes = Graph.n graph;
    graph;
    layout = (fun ~layers -> Multilayer.realize ortho ~layers);
    layout_jobs = (fun ~jobs ~layers -> Multilayer.realize ~jobs ortho ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = None;
  }

let torus ?(fold = false) ~dims () =
  if Array.length dims < 1 then invalid_arg "Families.torus: no dimensions";
  Array.iter (fun k -> if k < 3 then invalid_arg "Families.torus: side < 3") dims;
  let ring k = Ring.create k in
  let ring_layout k = Collinear_ring.create ~fold k in
  let fold_factors lo hi =
    (* collinear product over dims.(lo..hi-1), low dimension fastest *)
    if hi <= lo then trivial_collinear
    else begin
      let acc = ref (ring_layout dims.(lo)) in
      for j = lo + 1 to hi - 1 do
        acc := Collinear_product.create !acc (ring_layout dims.(j))
      done;
      !acc
    end
  in
  let ndims = Array.length dims in
  let row_dims = (ndims + 1) / 2 in
  let row = fold_factors 0 row_dims in
  let col = fold_factors row_dims ndims in
  let graph =
    let acc = ref (ring dims.(0)) in
    for j = 1 to ndims - 1 do
      acc := Graph.cartesian_product !acc (ring dims.(j))
    done;
    !acc
  in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col graph in
  let n_nodes = Graph.n graph in
  let max_side = Array.fold_left max 0 dims in
  let name =
    Printf.sprintf "torus(%s%s)"
      (String.concat "x" (Array.to_list (Array.map string_of_int dims)))
      (if fold then ",fold" else "")
  in
  {
    name;
    n_nodes;
    graph;
    layout = (fun ~layers -> Multilayer.realize ortho ~layers);
    layout_jobs = (fun ~jobs ~layers -> Multilayer.realize ~jobs ortho ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = Some (2 * n_nodes / max_side);
  }

let generalized_hypercube ?(fold = false) ~r ~n () =
  if r < 2 then invalid_arg "Families.generalized_hypercube: r < 2";
  let radices = Mixed_radix.uniform ~radix:r ~dims:n in
  let graph = Generalized_hypercube.create radices in
  let row_dims = (n + 1) / 2 in
  let col_dims = n - row_dims in
  let row = Collinear_ghc.create ~fold (Mixed_radix.uniform ~radix:r ~dims:row_dims) in
  let col =
    if col_dims = 0 then trivial_collinear
    else Collinear_ghc.create ~fold (Mixed_radix.uniform ~radix:r ~dims:col_dims)
  in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col graph in
  let n_nodes = Graph.n graph in
  {
    name = Printf.sprintf "ghc(r=%d,n=%d)" r n;
    n_nodes;
    graph;
    layout = (fun ~layers -> Multilayer.realize ortho ~layers);
    layout_jobs = (fun ~jobs ~layers -> Multilayer.realize ~jobs ortho ~layers);
    paper_area = Some (fun ~layers -> Formulas.ghc_area ~n_nodes ~r ~layers);
    paper_volume = Some (fun ~layers -> Formulas.ghc_volume ~n_nodes ~r ~layers);
    paper_max_wire =
      Some (fun ~layers -> Formulas.ghc_max_wire ~n_nodes ~r ~layers);
    bisection = Some (Lower_bounds.ghc_bisection ~r ~n);
  }

(* --- single-row collinear realizations ------------------------------- *)

let one_row_layout ?jobs (c : Collinear.t) ~layers =
  let n = Graph.n c.Collinear.graph in
  let ortho =
    Orthogonal.create c.Collinear.graph ~rows:1 ~cols:n ~place:(fun u ->
        (0, c.Collinear.position.(u)))
  in
  Multilayer.realize ?jobs ortho ~layers

let complete nn =
  let c = Collinear_complete.create nn in
  {
    name = Printf.sprintf "complete(N=%d)" nn;
    n_nodes = nn;
    graph = c.Collinear.graph;
    layout = (fun ~layers -> one_row_layout c ~layers);
    layout_jobs = (fun ~jobs ~layers -> one_row_layout ~jobs c ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = Some (Lower_bounds.complete_bisection nn);
  }

let cayley_family ?(optimize = false) name graph =
  let c =
    if optimize then Order_opt.optimize ~iterations:12000 graph
    else Collinear.natural graph
  in
  {
    name;
    n_nodes = Graph.n graph;
    graph;
    layout = (fun ~layers -> one_row_layout c ~layers);
    layout_jobs = (fun ~jobs ~layers -> one_row_layout ~jobs c ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = None;
  }

let opt_tag optimize = if Option.value ~default:false optimize then ",opt" else ""

let star ?optimize d =
  cayley_family ?optimize
    (Printf.sprintf "star(d=%d%s)" d (opt_tag optimize))
    (Cayley.star d)

let pancake ?optimize d =
  cayley_family ?optimize
    (Printf.sprintf "pancake(d=%d%s)" d (opt_tag optimize))
    (Cayley.pancake d)

let bubble_sort ?optimize d =
  cayley_family ?optimize
    (Printf.sprintf "bubble_sort(d=%d%s)" d (opt_tag optimize))
    (Cayley.bubble_sort d)

let transposition ?optimize d =
  cayley_family ?optimize
    (Printf.sprintf "transposition(d=%d%s)" d (opt_tag optimize))
    (Cayley.transposition d)

let shuffle_exchange ?optimize n =
  cayley_family ?optimize
    (Printf.sprintf "shuffle_exchange(n=%d%s)" n (opt_tag optimize))
    (Shuffle.shuffle_exchange n)

let de_bruijn ?optimize n =
  cayley_family ?optimize
    (Printf.sprintf "de_bruijn(n=%d%s)" n (opt_tag optimize))
    (Shuffle.de_bruijn n)

let mesh ~dims =
  if Array.length dims < 1 then invalid_arg "Families.mesh: no dimensions";
  let path_layout k = Collinear.natural (Mesh.path k) in
  let fold_factors lo hi =
    if hi <= lo then trivial_collinear
    else begin
      let acc = ref (path_layout dims.(lo)) in
      for j = lo + 1 to hi - 1 do
        acc := Collinear_product.create !acc (path_layout dims.(j))
      done;
      !acc
    end
  in
  let ndims = Array.length dims in
  let row_dims = (ndims + 1) / 2 in
  let row = fold_factors 0 row_dims in
  let col = fold_factors row_dims ndims in
  let graph = Mesh.create ~dims in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col graph in
  {
    name =
      Printf.sprintf "mesh(%s)"
        (String.concat "x" (Array.to_list (Array.map string_of_int dims)));
    n_nodes = Graph.n graph;
    graph;
    layout = (fun ~layers -> Multilayer.realize ortho ~layers);
    layout_jobs = (fun ~jobs ~layers -> Multilayer.realize ~jobs ortho ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = None;
  }

let binary_tree levels =
  let graph = Tree.complete_binary levels in
  let c = Collinear.of_order graph ~node_at:(Tree.in_order levels) in
  {
    name = Printf.sprintf "binary_tree(levels=%d)" levels;
    n_nodes = Graph.n graph;
    graph;
    layout = (fun ~layers -> one_row_layout c ~layers);
    layout_jobs = (fun ~jobs ~layers -> one_row_layout ~jobs c ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = Some 1;
  }

(* --- PN-cluster families ---------------------------------------------- *)

let ghc_quotient_factors ?(fold = false) ~r ~dims () =
  let row_dims = (dims + 1) / 2 in
  let col_dims = dims - row_dims in
  let row = Collinear_ghc.create ~fold (Mixed_radix.uniform ~radix:r ~dims:row_dims) in
  let col =
    if col_dims = 0 then trivial_collinear
    else Collinear_ghc.create ~fold (Mixed_radix.uniform ~radix:r ~dims:col_dims)
  in
  (row, col)

let cluster_family ~name ~pn ~row ~col ~intra ~paper_area ~paper_max_wire
    ~bisection =
  let spec = Cluster_expand.of_product_quotient ~pn ~row_factor:row
      ~col_factor:col ~intra
  in
  let graph = pn.Pn_cluster.graph in
  {
    name;
    n_nodes = Graph.n graph;
    graph;
    layout = (fun ~layers -> Cluster_expand.realize spec ~layers);
    layout_jobs = no_jobs (fun ~layers -> Cluster_expand.realize spec ~layers);
    paper_area;
    paper_volume = None;
    paper_max_wire;
    bisection;
  }

let hsn ~levels ~radix =
  if levels < 2 then invalid_arg "Families.hsn: levels < 2";
  let hsn_net = Hsn.create_complete ~levels ~radix in
  (* the PN-cluster view: quotient GHC(radix, levels-1); the level-i swap
     link between clusters X and Y (differing in cluster digit i) joins
     the node of X whose nucleus digit equals Y's digit with the node of
     Y whose nucleus digit equals X's *)
  let quotient =
    Generalized_hypercube.create
      (Mixed_radix.uniform ~radix ~dims:(levels - 1))
  in
  let radices = Mixed_radix.uniform ~radix ~dims:(levels - 1) in
  let attach (qu, qv) _ =
    let du = Mixed_radix.to_digits radices qu in
    let dv = Mixed_radix.to_digits radices qv in
    let i = ref (-1) in
    Array.iteri (fun j x -> if x <> dv.(j) then i := j) du;
    (dv.(!i), du.(!i))
  in
  let pn =
    Pn_cluster.create ~quotient ~intra:(Complete.create radix) ~attach ()
  in
  if not (Graph.equal pn.Pn_cluster.graph hsn_net.Hsn.graph) then
    invalid_arg "Families.hsn: PN-cluster view disagrees with the generator";
  let row, col = ghc_quotient_factors ~r:radix ~dims:(levels - 1) () in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "hsn(l=%d,r=%d)" levels radix)
    ~pn ~row ~col
    ~intra:(Collinear_complete.create radix)
    ~paper_area:(Some (fun ~layers -> Formulas.hsn_area ~n_nodes ~layers))
    ~paper_max_wire:(Some (fun ~layers -> Formulas.hsn_max_wire ~n_nodes ~layers))
    ~bisection:None

let hhn ~levels ~cube_dims =
  if levels < 2 then invalid_arg "Families.hhn: levels < 2";
  let radix = 1 lsl cube_dims in
  let hhn_net = Hhn.create ~levels ~cube_dims in
  let quotient =
    Generalized_hypercube.create
      (Mixed_radix.uniform ~radix ~dims:(levels - 1))
  in
  let radices = Mixed_radix.uniform ~radix ~dims:(levels - 1) in
  let attach (qu, qv) _ =
    let du = Mixed_radix.to_digits radices qu in
    let dv = Mixed_radix.to_digits radices qv in
    let i = ref (-1) in
    Array.iteri (fun j x -> if x <> dv.(j) then i := j) du;
    (dv.(!i), du.(!i))
  in
  let pn =
    Pn_cluster.create ~quotient ~intra:(Hypercube.create cube_dims) ~attach ()
  in
  if not (Graph.equal pn.Pn_cluster.graph hhn_net.Hsn.graph) then
    invalid_arg "Families.hhn: PN-cluster view disagrees with the generator";
  let row, col = ghc_quotient_factors ~r:radix ~dims:(levels - 1) () in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "hhn(l=%d,m=%d)" levels cube_dims)
    ~pn ~row ~col
    ~intra:(Collinear_hypercube.create cube_dims)
    ~paper_area:(Some (fun ~layers -> Formulas.hsn_area ~n_nodes ~layers))
    ~paper_max_wire:(Some (fun ~layers -> Formulas.hsn_max_wire ~n_nodes ~layers))
    ~bisection:None

let ccc n =
  if n < 3 then invalid_arg "Families.ccc: n < 3";
  let quotient = Hypercube.create n in
  let attach (qu, qv) _ =
    let d = Hypercube.dimension_of_edge qu qv in
    (d, d)
  in
  let pn = Pn_cluster.create ~quotient ~intra:(Ring.create n) ~attach () in
  let direct = (Ccc.create n).Ccc.graph in
  if not (Graph.equal pn.Pn_cluster.graph direct) then
    invalid_arg "Families.ccc: PN-cluster view disagrees with the generator";
  let row, col = hypercube_factors n in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "ccc(n=%d)" n)
    ~pn ~row ~col
    ~intra:(Collinear_ring.create n)
    ~paper_area:(Some (fun ~layers -> Formulas.ccc_area ~n_nodes ~layers))
    ~paper_max_wire:None ~bisection:None

let reduced_hypercube n =
  let quotient = Hypercube.create n in
  let rh = Reduced_hypercube.create n in
  let attach (qu, qv) _ =
    let d = Hypercube.dimension_of_edge qu qv in
    (d, d)
  in
  let pn =
    Pn_cluster.create ~quotient
      ~intra:(Hypercube.create rh.Reduced_hypercube.cluster_dims)
      ~attach ()
  in
  if not (Graph.equal pn.Pn_cluster.graph rh.Reduced_hypercube.graph) then
    invalid_arg
      "Families.reduced_hypercube: PN-cluster view disagrees with generator";
  let row, col = hypercube_factors n in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "rh(n=%d)" n)
    ~pn ~row ~col
    ~intra:(Collinear_hypercube.create rh.Reduced_hypercube.cluster_dims)
    ~paper_area:(Some (fun ~layers -> Formulas.ccc_area ~n_nodes ~layers))
    ~paper_max_wire:None ~bisection:None

let butterfly_cluster ~radix ~quotient_dims =
  let quotient =
    Generalized_hypercube.create_uniform ~r:radix ~n:quotient_dims
  in
  let intra = Mesh.create ~dims:[| radix; quotient_dims + 1 |] in
  let pn = Pn_cluster.create ~quotient ~intra ~multiplicity:4 () in
  let row, col = ghc_quotient_factors ~r:radix ~dims:quotient_dims () in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "butterfly_cluster(r=%d,m=%d)" radix quotient_dims)
    ~pn ~row ~col ~intra:(Collinear.natural intra)
    ~paper_area:
      (Some (fun ~layers -> Formulas.butterfly_area ~n_nodes ~layers))
    ~paper_max_wire:
      (Some (fun ~layers -> Formulas.butterfly_max_wire ~n_nodes ~layers))
    ~bisection:None

let isn ~radix ~quotient_dims =
  let pn = Isn.create ~radix ~quotient_dims ~levels:(quotient_dims + 1) in
  let row, col = ghc_quotient_factors ~r:radix ~dims:quotient_dims () in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "isn(r=%d,m=%d)" radix quotient_dims)
    ~pn ~row ~col
    ~intra:(Collinear.natural pn.Pn_cluster.intra)
    ~paper_area:
      (Some
         (fun ~layers ->
           Formulas.butterfly_area ~n_nodes ~layers
           /. Formulas.isn_vs_butterfly_area_factor))
    ~paper_max_wire:
      (Some
         (fun ~layers ->
           Formulas.butterfly_max_wire ~n_nodes ~layers
           /. Formulas.isn_vs_butterfly_wire_factor))
    ~bisection:None

let kary_cluster ~k ~n ~c =
  let pn = Kary_cluster.create_hypercube_clusters ~k ~n ~c in
  let row_dims = (n + 1) / 2 in
  let col_dims = n - row_dims in
  let row = Collinear_kary.create ~k ~n:row_dims () in
  let col =
    if col_dims = 0 then trivial_collinear
    else Collinear_kary.create ~k ~n:col_dims ()
  in
  let n_nodes = Graph.n pn.Pn_cluster.graph in
  cluster_family
    ~name:(Printf.sprintf "kary_cluster(k=%d,n=%d,c=%d)" k n c)
    ~pn ~row ~col
    ~intra:(Collinear.natural pn.Pn_cluster.intra)
    ~paper_area:
      (Some (fun ~layers -> Formulas.kary_area ~n_nodes:(Graph.n pn.Pn_cluster.quotient) ~k ~layers))
    ~paper_max_wire:None ~bisection:None
  |> fun fam -> { fam with n_nodes }

let scc d =
  let scc_net = Scc.create d in
  let quotient = Cayley.star d in
  let attach (qu, qv) _ =
    let p = Permutation.unrank ~d qu and q = Permutation.unrank ~d qv in
    (* find the star generator connecting the two permutations *)
    let gen = ref (-1) in
    for i = 1 to d - 1 do
      if Permutation.swap p 0 i = q then gen := i
    done;
    if !gen < 0 then invalid_arg "Families.scc: not a star edge";
    (!gen - 1, !gen - 1)
  in
  let pn =
    Pn_cluster.create ~quotient ~intra:(Ring.create (d - 1)) ~attach ()
  in
  if not (Graph.equal pn.Pn_cluster.graph scc_net.Scc.graph) then
    invalid_arg "Families.scc: PN-cluster view disagrees with the generator";
  (* the star quotient is not a product: place it on a single row *)
  let row = Collinear.natural quotient in
  let spec =
    Cluster_expand.of_product_quotient ~pn ~row_factor:row
      ~col_factor:trivial_collinear
      ~intra:(Collinear_ring.create (d - 1))
  in
  let graph = pn.Pn_cluster.graph in
  {
    name = Printf.sprintf "scc(d=%d)" d;
    n_nodes = Graph.n graph;
    graph;
    layout = (fun ~layers -> Cluster_expand.realize spec ~layers);
    layout_jobs = no_jobs (fun ~layers -> Cluster_expand.realize spec ~layers);
    paper_area = None;
    paper_volume = None;
    paper_max_wire = None;
    bisection = None;
  }

(* --- augmented families ----------------------------------------------- *)

let folded_hypercube n =
  let base = Hypercube.create n in
  let full = Folded_hypercube.create n in
  let row, col = hypercube_factors n in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col base in
  let n_nodes = 1 lsl n in
  {
    name = Printf.sprintf "folded_hypercube(n=%d)" n;
    n_nodes;
    graph = full;
    layout =
      (fun ~layers -> Multilayer.realize_augmented ortho ~full_graph:full ~layers);
    layout_jobs =
      (fun ~jobs ~layers ->
        Multilayer.realize_augmented ~jobs ortho ~full_graph:full ~layers);
    paper_area =
      Some (fun ~layers -> Formulas.folded_hypercube_area ~n_nodes ~layers);
    paper_volume = None;
    paper_max_wire = None;
    bisection = Some (Lower_bounds.folded_hypercube_bisection n);
  }

let enhanced_cube ~n ~seed =
  let base = Hypercube.create n in
  let full = Enhanced_cube.create ~n ~seed in
  let row, col = hypercube_factors n in
  let ortho = Orthogonal.of_product ~row_factor:row ~col_factor:col base in
  let n_nodes = 1 lsl n in
  {
    name = Printf.sprintf "enhanced_cube(n=%d,seed=%d)" n seed;
    n_nodes;
    graph = full;
    layout =
      (fun ~layers -> Multilayer.realize_augmented ortho ~full_graph:full ~layers);
    layout_jobs =
      (fun ~jobs ~layers ->
        Multilayer.realize_augmented ~jobs ortho ~full_graph:full ~layers);
    paper_area =
      Some (fun ~layers -> Formulas.enhanced_cube_area ~n_nodes ~layers);
    paper_volume = None;
    paper_max_wire = None;
    bisection = None;
  }

(* the representative small instances live in Registry.all_small, derived
   from the declarative catalog *)
