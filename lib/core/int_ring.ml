(* Monomorphic int specialization of {!Ring_buffer}.  The generic
   version's stores go through the polymorphic write barrier
   ([caml_modify]); on an [int array] the compiler emits plain word
   stores, which matters in the simulator loops where ring traffic is
   tens of millions of pushes per run.  Empty slots are left as 0. *)

type t = {
  mutable data : int array;
  mutable head : int; (* physical index of the front element *)
  mutable len : int;
}

let round_up_pow2 n =
  let c = ref 1 in
  while !c < n do
    c := !c * 2
  done;
  !c

let create ?(capacity = 16) () =
  { data = Array.make (round_up_pow2 (max 1 capacity)) 0; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.data

let grow t =
  let cap = Array.length t.data in
  let data = Array.make (cap * 2) 0 in
  let mask = cap - 1 in
  for i = 0 to t.len - 1 do
    Array.unsafe_set data i (Array.unsafe_get t.data ((t.head + i) land mask))
  done;
  t.data <- data;
  t.head <- 0

let push t x =
  if t.len = Array.length t.data then grow t;
  Array.unsafe_set t.data
    ((t.head + t.len) land (Array.length t.data - 1))
    x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Int_ring.get: out of bounds";
  Array.unsafe_get t.data ((t.head + i) land (Array.length t.data - 1))

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Int_ring.set: out of bounds";
  Array.unsafe_set t.data ((t.head + i) land (Array.length t.data - 1)) x

let unsafe_get t i =
  Array.unsafe_get t.data ((t.head + i) land (Array.length t.data - 1))

let unsafe_set t i x =
  Array.unsafe_set t.data ((t.head + i) land (Array.length t.data - 1)) x

let pop t =
  if t.len = 0 then invalid_arg "Int_ring.pop: empty";
  let x = Array.unsafe_get t.data t.head in
  t.head <- (t.head + 1) land (Array.length t.data - 1);
  t.len <- t.len - 1;
  x

let drop_front t n =
  if n < 0 || n > t.len then invalid_arg "Int_ring.drop_front: bad count";
  t.head <- (t.head + n) land (Array.length t.data - 1);
  t.len <- t.len - n

let clear t =
  t.head <- 0;
  t.len <- 0

let iter f t =
  let mask = Array.length t.data - 1 in
  for i = 0 to t.len - 1 do
    f (Array.unsafe_get t.data ((t.head + i) land mask))
  done
