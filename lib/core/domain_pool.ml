(* Work-stealing domain pool over a fixed task set.

   One mutex-protected deque of task indices per worker: the owner pops
   the front (ascending index order, matching the fork pool's static
   round-robin partition), thieves pop the back.  No task creates new
   tasks, so a worker that scans every deque and finds nothing can
   retire — there is no blocking hand-off to get wrong. *)

type deque = {
  ids : int array;        (* task indices dealt to this worker *)
  mutable head : int;     (* owner's end: next index to pop *)
  mutable tail : int;     (* thieves' end: one past the last live entry *)
  lock : Mutex.t;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let pop_front d =
  with_lock d.lock (fun () ->
      if d.head < d.tail then begin
        let i = d.ids.(d.head) in
        d.head <- d.head + 1;
        i
      end
      else -1)

let pop_back d =
  with_lock d.lock (fun () ->
      if d.head < d.tail then begin
        d.tail <- d.tail - 1;
        d.ids.(d.tail)
      end
      else -1)

(* worker [w] of [d]: drain own deque front-first, then sweep the other
   deques round-robin from w+1 stealing one task at a time; a full
   sweep finding nothing means the task set is exhausted *)
let worker_loop deques w run steals =
  let d = Array.length deques in
  let rec own () =
    let i = pop_front deques.(w) in
    if i >= 0 then begin
      run i;
      own ()
    end
    else steal 1
  and steal k =
    if k < d then begin
      let i = pop_back deques.((w + k) mod d) in
      if i >= 0 then begin
        Atomic.incr steals;
        run i;
        own ()
      end
      else steal (k + 1)
    end
  in
  own ()

type stats = { domains : int; steals : int }

(* the OCaml 5 runtime permanently refuses Unix.fork once any domain
   has been spawned in the process, so record that we did — the fork
   backend's availability probe reads this *)
let ever_spawned = Atomic.make false
let spawned_domains () = Atomic.get ever_spawned

let map ?domains ~f items =
  let n = Array.length items in
  let workers =
    let requested =
      match domains with
      | Some d -> max 1 d
      | None -> Domain.recommended_domain_count ()
    in
    min requested (max 1 n)
  in
  if workers <= 1 || n <= 1 then
    (Array.map f items, { domains = 1; steals = 0 })
  else begin
    (* deal indices round-robin: deque w holds w, w+W, w+2W, ... *)
    let deques =
      Array.init workers (fun w ->
          (* workers <= n, so every deque gets at least one index *)
          let len = ((n - 1 - w) / workers) + 1 in
          {
            ids = Array.init len (fun j -> w + (j * workers));
            head = 0;
            tail = len;
            lock = Mutex.create ();
          })
    in
    let results = Array.make n None in
    let failures = Array.make n None in
    let steals = Atomic.make 0 in
    let run i =
      match f items.(i) with
      | v -> results.(i) <- Some v
      | exception e ->
          failures.(i) <- Some (e, Printexc.get_raw_backtrace ())
    in
    Atomic.set ever_spawned true;
    let spawned =
      Array.init (workers - 1) (fun k ->
          Domain.spawn (fun () -> worker_loop deques (k + 1) run steals))
    in
    worker_loop deques 0 run steals;
    (* join publishes every worker's slot writes to this domain *)
    Array.iter Domain.join spawned;
    (* the lowest failing index re-raises first: sequential
       left-to-right semantics for deterministic [f] *)
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt
        | None -> ())
      failures;
    let out =
      Array.map
        (function
          | Some v -> v
          | None -> assert false (* every slot ran or raised above *))
        results
    in
    (out, { domains = workers; steals = Atomic.get steals })
  end

(* Gang execution: [workers] long-lived tasks that must all run
   concurrently because they synchronize with each other (typically
   through a Barrier).  This is deliberately NOT expressible with [map]:
   a work-stealing pool may place two tasks on one domain, and two
   lockstep tasks sharing a domain deadlock on their first barrier. *)
let gang ~workers ?abort f =
  if workers < 1 then invalid_arg "Domain_pool.gang: workers < 1";
  if workers = 1 then f 0
  else begin
    let failures = Array.make workers None in
    let aborted = Atomic.make false in
    let run w =
      match f w with
      | () -> ()
      | exception e ->
          failures.(w) <- Some (e, Printexc.get_raw_backtrace ());
          (* wake gang-mates blocked on a rendezvous this worker will
             never reach; first failure wins, the rest are echoes *)
          if not (Atomic.exchange aborted true) then
            Option.iter (fun k -> k ()) abort
    in
    Atomic.set ever_spawned true;
    let spawned =
      Array.init (workers - 1) (fun k -> Domain.spawn (fun () -> run (k + 1)))
    in
    run 0;
    Array.iter Domain.join spawned;
    (* re-raise the root cause: the lowest-index failure that is not an
       abort echo (Barrier.Broken from a peer that was woken by [abort]),
       falling back to any failure at all *)
    let first_not_broken = ref None and first_any = ref None in
    Array.iter
      (function
        | Some ((e, _) as fail) ->
            if !first_any = None then first_any := Some fail;
            let echo =
              match e with Barrier.Broken -> true | _ -> false
            in
            if (not echo) && !first_not_broken = None then
              first_not_broken := Some fail
        | None -> ())
      failures;
    match (!first_not_broken, !first_any) with
    | Some (e, bt), _ | None, Some (e, bt) ->
        Printexc.raise_with_backtrace e bt
    | None, None -> ()
  end

(* splitmix64 finalizer over (seed, index): the same mixing Rng uses
   internally, so per-task streams are unrelated for adjacent indices *)
let split_seed ~seed ~index =
  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
        0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
        0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
  in
  let h =
    mix (Int64.add (Int64.of_int seed)
           (Int64.mul (Int64.of_int (index + 1)) 0x9E3779B97F4A7C15L))
  in
  (* keep it a non-negative native int so it can feed Rng.create
     (shift_right_logical alone still leaves bit 62 set, which is the
     native int's sign bit after to_int) *)
  Int64.to_int h land max_int
