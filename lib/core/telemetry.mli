(** Structured telemetry: a dependency-free JSON tree, an encoder whose
    output is stable (fixed key order, deterministic number formatting),
    a strict parser (for round-trip tests and output self-checks), and
    typed emitters for the library's measurement records.

    Every machine-readable surface of the repository — [mvl ... --json],
    [bench emit]'s [BENCH_pipeline.json], serialized validation results —
    goes through this module, so the schema evolves in exactly one
    place. *)

open Mvl_layout

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of json list
  | Obj of (string * json) list  (** key order is preserved verbatim *)

(* --- encoding ---------------------------------------------------------- *)

val to_string : ?pretty:bool -> json -> string
(** Compact by default ([{"a":1,"b":[2,3]}]); [~pretty:true] indents
    with two spaces.  Strings are escaped per RFC 8259 (including
    control characters as [\u00XX]); non-finite floats encode as
    [null]; finite floats always carry a fractional part or exponent so
    they re-parse as [Float]. *)

val pp : Format.formatter -> json -> unit
(** [to_string ~pretty:true] on a formatter. *)

(* --- parsing ----------------------------------------------------------- *)

val parse : string -> (json, string) result
(** Strict RFC 8259 parser over the whole input (trailing garbage is an
    error).  Numbers with a fraction or exponent parse as [Float],
    others as [Int].  [\uXXXX] escapes (including surrogate pairs)
    decode to UTF-8.  Errors name the byte offset. *)

(* --- accessors --------------------------------------------------------- *)

val member : string -> json -> json option
(** Field of an [Obj]; [None] on missing fields and non-objects. *)

val keys : json -> string list
(** Key list of an [Obj] in order; [[]] on non-objects. *)

val strip_volatile : json -> json
(** Recursively drop the fields whose values legitimately differ
    between two otherwise identical runs: every ["seconds"] object
    (wall-clock stage timings), every ["layout_phases"] object
    (per-phase construction timings), every ["cache"] object
    (cumulative per-process hit/miss counters) and every ["from_cache"]
    flag (whether this particular run hit the cache).  What remains is
    a deterministic function of the inputs — the form the [--jobs]
    determinism tests, [bench emit --stable] and the serve daemon's
    byte-identity contract compare byte-for-byte. *)

(* --- typed emitters ---------------------------------------------------- *)

val of_metrics : Layout.metrics -> json
(** [{"width","height","area","layers","volume","max_wire",
    "total_wire","vias"}] — the §2.2 cost measures. *)

val violation_summary : Check.result -> json
(** [{"checked":true,"mode","count","truncated","rules"}] where
    ["rules"] maps each violated rule name to its count (keys sorted).
    This is the summary embedded in pipeline/bench records. *)

val not_validated : json
(** [{"checked":false}] — the summary when validation was not run. *)

val of_check : Check.result -> json
(** [violation_summary] plus the full ["violations"] detail list
    ([{"rule","detail"}] per entry) — used by [mvl validate --json]. *)

val of_sim : Mvl_sim.Network_sim.result -> json
(** The packet-simulation measurement record: counts, latency
    percentiles, throughput, hops, cycles, and the full
    [latency_histogram] as [[latency, count]] pairs.  Embedded under
    ["sim"] by [mvl sim --json] ([mvl.sim.run/1]) and per grid point by
    [bench throughput] ([mvl.bench.sim/1]). *)

val of_report : Report.t -> json
(** The layout-anatomy report: node area share, wire-length
    distribution, per-layer run lengths, via count. *)
