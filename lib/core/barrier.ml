(* Sense-reversing cyclic barrier with a break (abort) path.

   [parties] workers call [wait] once per phase; the last arrival flips
   the phase counter and wakes the rest.  A worker that fails mid-phase
   calls [break] so its peers raise [Broken] out of their next (or
   current) [wait] instead of blocking forever on an arrival that will
   never come. *)

type t = {
  lock : Mutex.t;
  cond : Condition.t;
  parties : int;
  mutable arrived : int;
  mutable phase : int;   (* generation counter; wraps harmlessly *)
  mutable broken : bool;
}

exception Broken

let create ~parties =
  if parties < 1 then invalid_arg "Barrier.create: parties < 1";
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    parties;
    arrived = 0;
    phase = 0;
    broken = false;
  }

let parties t = t.parties

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let wait t =
  with_lock t (fun () ->
      if t.broken then raise Broken;
      let my_phase = t.phase in
      t.arrived <- t.arrived + 1;
      if t.arrived = t.parties then begin
        t.arrived <- 0;
        t.phase <- t.phase + 1;
        Condition.broadcast t.cond
      end
      else begin
        while t.phase = my_phase && not t.broken do
          Condition.wait t.cond t.lock
        done;
        if t.broken then raise Broken
      end)

let break t =
  with_lock t (fun () ->
      if not t.broken then begin
        t.broken <- true;
        Condition.broadcast t.cond
      end)

let is_broken t = with_lock t (fun () -> t.broken)
