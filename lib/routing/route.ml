open Mvl_topology
open Mvl_layout

type t = {
  graph : Graph.t;
  lengths : (int, int) Hashtbl.t;  (* keyed [min * n + max] *)
  max_wire : int;
}

let pack n u v = (min u v * n) + max u v

let of_layout (layout : Layout.t) =
  let graph = Layout.graph layout in
  let n = Graph.n graph in
  let lengths = Hashtbl.create (Graph.m graph) in
  let max_wire = ref 0 in
  Array.iter
    (fun w ->
      let len = Wire.length_xy w in
      if len > !max_wire then max_wire := len;
      let u, v = w.Wire.edge in
      Hashtbl.replace lengths (pack n u v) len)
    (Layout.wires layout);
  { graph; lengths; max_wire = !max_wire }

let edge_length t u v = Hashtbl.find t.lengths (pack (Graph.n t.graph) u v)

let best_path_wire t ~src =
  let n = Graph.n t.graph in
  let dist = Graph.bfs_dist t.graph src in
  let best = Array.make n max_int in
  best.(src) <- 0;
  (* relax nodes in increasing BFS distance: every hop-shortest path
     enters a node from a predecessor one BFS level below *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare dist.(a) dist.(b)) order;
  Array.iter
    (fun v ->
      if dist.(v) > 0 && dist.(v) < max_int then
        Graph.iter_neighbors t.graph v (fun u ->
            if dist.(u) = dist.(v) - 1 && best.(u) < max_int then begin
              let candidate = best.(u) + edge_length t u v in
              if candidate < best.(v) then best.(v) <- candidate
            end))
    order;
  best

let max_path_wire ?(samples = 16) t =
  let n = Graph.n t.graph in
  let step = max 1 (n / max 1 samples) in
  let worst = ref 0 in
  let src = ref 0 in
  while !src < n do
    Array.iter
      (fun b -> if b < max_int && b > !worst then worst := b)
      (best_path_wire t ~src:!src);
    src := !src + step
  done;
  !worst

let max_wire t = t.max_wire
