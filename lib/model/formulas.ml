let layer_sq layers =
  if layers < 2 then invalid_arg "Formulas.layer_sq: layers < 2";
  let l = float_of_int layers in
  if layers mod 2 = 0 then l *. l else (l *. l) -. 1.0

let fl = float_of_int

let kary_area ~n_nodes ~k ~layers =
  16.0 *. fl n_nodes *. fl n_nodes /. (layer_sq layers *. fl k *. fl k)

let kary_volume ~n_nodes ~k ~layers =
  fl layers *. kary_area ~n_nodes ~k ~layers

let kary_collinear_tracks ~k ~n =
  if k < 2 then invalid_arg "Formulas.kary_collinear_tracks: k < 2";
  if n < 0 then invalid_arg "Formulas.kary_collinear_tracks: n < 0";
  let rec ipow acc n = if n = 0 then acc else ipow (acc * k) (n - 1) in
  2 * ((ipow 1 n - 1) / (k - 1))

let ghc_area ~n_nodes ~r ~layers =
  fl r *. fl r *. fl n_nodes *. fl n_nodes /. (4.0 *. layer_sq layers)

let ghc_volume ~n_nodes ~r ~layers = fl layers *. ghc_area ~n_nodes ~r ~layers

let ghc_max_wire ~n_nodes ~r ~layers =
  fl r *. fl n_nodes /. (2.0 *. fl layers)

let ghc_path_wire ~n_nodes ~r ~layers = fl r *. fl n_nodes /. fl layers

let ghc_collinear_tracks radices =
  let n = Array.length radices in
  if n < 1 then invalid_arg "Formulas.ghc_collinear_tracks";
  let f = ref (radices.(0) * radices.(0) / 4) in
  for j = 1 to n - 1 do
    f := (radices.(j) * !f) + (radices.(j) * radices.(j) / 4)
  done;
  !f

let log2 x = log x /. log 2.0

(* the log-divisor formulas degenerate at N <= 1 (log2 1 = 0, log2 0 =
   -inf): the quotient silently becomes inf/nan, so reject the input
   the way layer_sq rejects L < 2 *)
let require_log_divisor fn n_nodes =
  if n_nodes <= 1 then invalid_arg (Printf.sprintf "Formulas.%s: n_nodes <= 1" fn)

let butterfly_area ~n_nodes ~layers =
  require_log_divisor "butterfly_area" n_nodes;
  let lg = log2 (fl n_nodes) in
  4.0 *. fl n_nodes *. fl n_nodes /. (layer_sq layers *. lg *. lg)

let butterfly_volume ~n_nodes ~layers =
  fl layers *. butterfly_area ~n_nodes ~layers

let butterfly_max_wire ~n_nodes ~layers =
  require_log_divisor "butterfly_max_wire" n_nodes;
  2.0 *. fl n_nodes /. (fl layers *. log2 (fl n_nodes))

let hsn_area ~n_nodes ~layers =
  fl n_nodes *. fl n_nodes /. (4.0 *. layer_sq layers)

let hsn_volume ~n_nodes ~layers = fl layers *. hsn_area ~n_nodes ~layers
let hsn_max_wire ~n_nodes ~layers = fl n_nodes /. (2.0 *. fl layers)
let hsn_path_wire ~n_nodes ~layers = fl n_nodes /. fl layers
let isn_vs_butterfly_area_factor = 4.0
let isn_vs_butterfly_wire_factor = 2.0

let hypercube_area ~n_nodes ~layers =
  16.0 *. fl n_nodes *. fl n_nodes /. (9.0 *. layer_sq layers)

let hypercube_volume ~n_nodes ~layers =
  fl layers *. hypercube_area ~n_nodes ~layers

let hypercube_max_wire ~n_nodes ~layers =
  2.0 *. fl n_nodes /. (3.0 *. fl layers)

let hypercube_collinear_tracks n = 2 * (1 lsl n) / 3

let ccc_area ~n_nodes ~layers =
  require_log_divisor "ccc_area" n_nodes;
  let lg = log2 (fl n_nodes) in
  16.0 *. fl n_nodes *. fl n_nodes /. (9.0 *. layer_sq layers *. lg *. lg)

let folded_hypercube_area ~n_nodes ~layers =
  49.0 *. fl n_nodes *. fl n_nodes /. (9.0 *. layer_sq layers)

let enhanced_cube_area ~n_nodes ~layers =
  100.0 *. fl n_nodes *. fl n_nodes /. (9.0 *. layer_sq layers)

let area_reduction_vs_thompson ~layers = layer_sq layers /. 4.0
let area_reduction_folding ~layers = fl layers /. 2.0
let volume_reduction_vs_thompson ~layers = fl layers /. 2.0
let wire_reduction_vs_thompson ~layers = fl layers /. 2.0
