open Mvl_topology
open Mvl_layout

type params = {
  t_node : float;
  t_drive : float;
  rc : float;
  via_penalty : float;
  repeater_every : int;
}

let default =
  { t_node = 20.0; t_drive = 1.0; rc = 0.01; via_penalty = 0.5; repeater_every = 0 }

let with_repeaters every =
  if every < 1 then invalid_arg "Delay.with_repeaters";
  { default with repeater_every = every }

let wire_delay p ~length ~vias =
  let quadratic len = p.rc *. float_of_int (len * len) /. 2.0 in
  let wire_term =
    if p.repeater_every <= 0 || length <= p.repeater_every then
      quadratic length
    else begin
      (* full segments plus the remainder; each repeater re-drives *)
      let segments = length / p.repeater_every in
      let remainder = length mod p.repeater_every in
      (float_of_int segments *. (quadratic p.repeater_every +. p.t_drive))
      +. quadratic remainder
    end
  in
  p.t_drive +. wire_term +. (p.via_penalty *. float_of_int vias)

let delay_of_wire p w =
  let xy = Wire.length_xy w in
  wire_delay p ~length:xy ~vias:(Wire.length w - xy)

let slowest_wire p (layout : Layout.t) =
  Array.fold_left
    (fun acc w -> max acc (delay_of_wire p w))
    0.0 (Layout.wires layout)

let worst_route_latency ?(samples = 8) p (layout : Layout.t) =
  let graph = Layout.graph layout in
  let delays = Hashtbl.create (Graph.m graph) in
  Array.iter
    (fun w -> Hashtbl.replace delays w.Wire.edge (delay_of_wire p w))
    (Layout.wires layout);
  let edge_delay u v =
    let key = if u < v then (u, v) else (v, u) in
    Hashtbl.find delays key
  in
  let n = Graph.n graph in
  let best_from src =
    let dist = Graph.bfs_dist graph src in
    let best = Array.make n infinity in
    best.(src) <- 0.0;
    let order = Array.init n (fun i -> i) in
    Array.sort (fun a b -> Int.compare dist.(a) dist.(b)) order;
    Array.iter
      (fun v ->
        if dist.(v) > 0 && dist.(v) < max_int then
          Graph.iter_neighbors graph v (fun u ->
              if dist.(u) = dist.(v) - 1 && best.(u) < infinity then begin
                let candidate = best.(u) +. p.t_node +. edge_delay u v in
                if candidate < best.(v) then best.(v) <- candidate
              end))
      order;
    Array.fold_left
      (fun acc b -> if b < infinity && b > acc then b else acc)
      0.0 best
  in
  let step = max 1 (n / max 1 samples) in
  let worst = ref 0.0 in
  let src = ref 0 in
  while !src < n do
    let b = best_from !src in
    if b > !worst then worst := b;
    src := !src + step
  done;
  !worst
