(** Every closed-form leading term displayed in the paper (§2–§5),
    as floats of the leading term only (the [o(...)] slack is what the
    experiments measure).  [n_nodes] is the network size [N]; [layers]
    is [L].

    Odd/even [L] are handled per the paper: the effective area divisor is
    [L^2] for even [L] and [L^2 - 1] for odd [L] (the spare layer carries
    horizontal tracks only). *)

val layer_sq : int -> float
(** [L^2] for even [L], [L^2 - 1] for odd [L]. *)

(* --- §3.1: k-ary n-cubes ------------------------------------------- *)

val kary_area : n_nodes:int -> k:int -> layers:int -> float
(** [16 N^2 / (L^2 k^2)]. *)

val kary_volume : n_nodes:int -> k:int -> layers:int -> float
(** [16 N^2 / (L k^2)] (odd [L]: [16 N^2 L / ((L^2-1) k^2)]). *)

val kary_collinear_tracks : k:int -> n:int -> int
(** [f_k(n) = 2 (k^n - 1) / (k - 1)].
    @raise Invalid_argument on [k < 2] or [n < 0] (the closed form
    divides by [k - 1]). *)

(* --- §4.1: generalized hypercubes ---------------------------------- *)

val ghc_area : n_nodes:int -> r:int -> layers:int -> float
(** [r^2 N^2 / (4 L^2)]. *)

val ghc_volume : n_nodes:int -> r:int -> layers:int -> float
val ghc_max_wire : n_nodes:int -> r:int -> layers:int -> float
(** [r N / (2 L)]. *)

val ghc_path_wire : n_nodes:int -> r:int -> layers:int -> float
(** [r N / L]: max total wire length along a shortest routing path. *)

val ghc_collinear_tracks : Mvl_topology.Mixed_radix.radices -> int
(** [f_r(n)] from the recurrence [f_r(n+1) = r_n f_r(n) + floor(r_n^2/4)]. *)

(* --- §4.2: butterfly networks --------------------------------------- *)

val butterfly_area : n_nodes:int -> layers:int -> float
(** [4 N^2 / (L^2 log2^2 N)].
    @raise Invalid_argument on [n_nodes <= 1] ([log2 N] would be a
    zero or undefined divisor), like {!layer_sq} on [layers < 2]. *)

val butterfly_volume : n_nodes:int -> layers:int -> float
val butterfly_max_wire : n_nodes:int -> layers:int -> float
(** [2 N / (L log2 N)].
    @raise Invalid_argument on [n_nodes <= 1]. *)

(* --- §4.3: HSNs, HHNs, ISNs ----------------------------------------- *)

val hsn_area : n_nodes:int -> layers:int -> float
(** [N^2 / (4 L^2)]. *)

val hsn_volume : n_nodes:int -> layers:int -> float
val hsn_max_wire : n_nodes:int -> layers:int -> float
(** [N / (2L)]. *)

val hsn_path_wire : n_nodes:int -> layers:int -> float
(** [N / L]. *)

val isn_vs_butterfly_area_factor : float
(** ISN area is smaller than a same-size butterfly's by ~this factor (4). *)

val isn_vs_butterfly_wire_factor : float
(** ~2. *)

(* --- §5.1/§5.2: hypercubes, CCC, reduced hypercubes ----------------- *)

val hypercube_area : n_nodes:int -> layers:int -> float
(** [16 N^2 / (9 L^2)]. *)

val hypercube_volume : n_nodes:int -> layers:int -> float
(** [16 N^2 / (9 L)] (the paper's §5.1 volume display repeats the area
    formula's [L^2]; the correct leading term divides by [L], consistent
    with [volume = L x area]). *)

val hypercube_max_wire : n_nodes:int -> layers:int -> float
(** [2 N / (3 L)]. *)

val hypercube_collinear_tracks : int -> int
(** [floor(2 N / 3)] for the [n]-cube ([N = 2^n]). *)

val ccc_area : n_nodes:int -> layers:int -> float
(** [16 N^2 / (9 L^2 log2^2 N)].
    @raise Invalid_argument on [n_nodes <= 1]. *)

(* --- §5.3: folded hypercubes and enhanced cubes ---------------------- *)

val folded_hypercube_area : n_nodes:int -> layers:int -> float
(** [49 N^2 / (9 L^2)]. *)

val enhanced_cube_area : n_nodes:int -> layers:int -> float
(** [100 N^2 / (9 L^2)]. *)

(* --- §2.2: claimed improvement factors over the baselines ------------ *)

val area_reduction_vs_thompson : layers:int -> float
(** [~L^2/4]: direct multilayer design vs. the 2-layer layout. *)

val area_reduction_folding : layers:int -> float
(** [~L/2]: what folding the Thompson layout achieves. *)

val volume_reduction_vs_thompson : layers:int -> float
(** [~L/2]. *)

val wire_reduction_vs_thompson : layers:int -> float
(** [~L/2]. *)
