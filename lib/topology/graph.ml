type t = {
  n : int;
  (* CSR adjacency: neighbours of u are adj.(row.(u)) .. adj.(row.(u+1)-1),
     sorted increasingly. *)
  row : int array;
  adj : int array;
  (* Edges with u < v, sorted lexicographically. *)
  edge_list : (int * int) array;
}

let check_endpoint n u =
  if u < 0 || u >= n then
    invalid_arg (Printf.sprintf "Graph: node %d out of range [0,%d)" u n)

let of_edges_array ~n edges =
  if n < 0 then invalid_arg "Graph.of_edges: negative n";
  let norm (u, v) =
    check_endpoint n u;
    check_endpoint n v;
    if u = v then invalid_arg (Printf.sprintf "Graph: self-loop at %d" u);
    if u < v then (u, v) else (v, u)
  in
  let normalized = Array.map norm edges in
  Array.sort
    (fun (u1, v1) (u2, v2) ->
      match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
    normalized;
  (* dedupe *)
  let uniq = ref [] in
  let last = ref (-1, -1) in
  Array.iter
    (fun e ->
      if e <> !last then begin
        uniq := e :: !uniq;
        last := e
      end)
    normalized;
  let edge_list = Array.of_list (List.rev !uniq) in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edge_list;
  let row = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row.(u + 1) <- row.(u) + deg.(u)
  done;
  let adj = Array.make row.(n) 0 in
  let cursor = Array.copy row in
  Array.iter
    (fun (u, v) ->
      adj.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1;
      adj.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1)
    edge_list;
  for u = 0 to n - 1 do
    let lo = row.(u) and hi = row.(u + 1) in
    let slice = Array.sub adj lo (hi - lo) in
    Array.sort Int.compare slice;
    Array.blit slice 0 adj lo (hi - lo)
  done;
  { n; row; adj; edge_list }

let of_edges ~n edges = of_edges_array ~n (Array.of_list edges)
let n g = g.n
let m g = Array.length g.edge_list

let degree g u =
  check_endpoint g.n u;
  g.row.(u + 1) - g.row.(u)

let max_degree g =
  let best = ref 0 in
  for u = 0 to g.n - 1 do
    let d = g.row.(u + 1) - g.row.(u) in
    if d > !best then best := d
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for u = 0 to g.n - 1 do
      let d = g.row.(u + 1) - g.row.(u) in
      if d < !best then best := d
    done;
    !best
  end

let is_regular g = g.n = 0 || max_degree g = min_degree g

let neighbors g u =
  check_endpoint g.n u;
  Array.sub g.adj g.row.(u) (g.row.(u + 1) - g.row.(u))

let iter_neighbors g u f =
  check_endpoint g.n u;
  for i = g.row.(u) to g.row.(u + 1) - 1 do
    f g.adj.(i)
  done

let mem_edge g u v =
  check_endpoint g.n u;
  check_endpoint g.n v;
  (* binary search for v among neighbours of u *)
  let lo = ref g.row.(u) and hi = ref (g.row.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let w = g.adj.(mid) in
    if w = v then found := true
    else if w < v then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let edges g = Array.copy g.edge_list

let iter_edges g f = Array.iter (fun (u, v) -> f u v) g.edge_list

let fold_edges g ~init ~f =
  Array.fold_left (fun acc (u, v) -> f acc u v) init g.edge_list

let bfs_dist g s =
  check_endpoint g.n s;
  let dist = Array.make g.n max_int in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_neighbors g u (fun v ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let is_connected g =
  if g.n <= 1 then true
  else begin
    let dist = bfs_dist g 0 in
    Array.for_all (fun d -> d < max_int) dist
  end

let diameter g =
  if g.n = 0 then 0
  else begin
    let best = ref 0 in
    for s = 0 to g.n - 1 do
      let dist = bfs_dist g s in
      Array.iter (fun d -> if d > !best then best := d) dist
    done;
    !best
  end

let cartesian_product a b =
  let na = a.n and nb = b.n in
  let encode x y = (y * na) + x in
  let edges = ref [] in
  for y = 0 to nb - 1 do
    Array.iter
      (fun (x, x') -> edges := (encode x y, encode x' y) :: !edges)
      a.edge_list
  done;
  for x = 0 to na - 1 do
    Array.iter
      (fun (y, y') -> edges := (encode x y, encode x y') :: !edges)
      b.edge_list
  done;
  of_edges ~n:(na * nb) !edges

let relabel g ~perm =
  if Array.length perm <> g.n then invalid_arg "Graph.relabel: length";
  let seen = Array.make g.n false in
  Array.iter
    (fun p ->
      check_endpoint g.n p;
      if seen.(p) then invalid_arg "Graph.relabel: not a permutation";
      seen.(p) <- true)
    perm;
  of_edges_array ~n:g.n
    (Array.map (fun (u, v) -> (perm.(u), perm.(v))) g.edge_list)

let equal g h = g.n = h.n && g.edge_list = h.edge_list

let pp ppf g =
  Format.fprintf ppf "graph(n=%d, m=%d, deg=[%d..%d])" g.n (m g) (min_degree g)
    (max_degree g)
