let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for u = 0 to Graph.n g - 1 do
    let d = Graph.degree g u in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let level_profile g s =
  let dist = Graph.bfs_dist g s in
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun d ->
      Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d)))
    dist;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let is_vertex_transitive_sample g ~samples =
  let n = Graph.n g in
  if n = 0 then true
  else begin
    let reference = level_profile g 0 in
    let deg0 = Graph.degree g 0 in
    let step = max 1 (n / max 1 samples) in
    let ok = ref true in
    let u = ref step in
    while !ok && !u < n do
      if Graph.degree g !u <> deg0 || level_profile g !u <> reference then
        ok := false;
      u := !u + step
    done;
    !ok
  end

let average_distance g =
  let n = Graph.n g in
  if n <= 1 then 0.0
  else begin
    let total = ref 0 in
    for s = 0 to n - 1 do
      let dist = Graph.bfs_dist g s in
      Array.iter
        (fun d ->
          if d = max_int then
            invalid_arg "Properties.average_distance: disconnected";
          total := !total + d)
        dist
    done;
    float_of_int !total /. float_of_int (n * (n - 1))
  end

let edge_cut g ~left =
  if Array.length left <> Graph.n g then invalid_arg "Properties.edge_cut";
  Graph.fold_edges g ~init:0 ~f:(fun acc u v ->
      if left.(u) <> left.(v) then acc + 1 else acc)

let cut_of_order g order =
  (* balanced cut induced by taking the first half of [order] *)
  let n = Graph.n g in
  let left = Array.make n false in
  Array.iteri (fun i u -> if i < n / 2 then left.(u) <- true) order;
  edge_cut g ~left

let bfs_order g s =
  let dist = Graph.bfs_dist g s in
  let order = Array.init (Graph.n g) (fun i -> i) in
  Array.sort
    (fun a b ->
      match Int.compare dist.(a) dist.(b) with 0 -> Int.compare a b | c -> c)
    order;
  order

let bisection_upper_bound g ~sweeps =
  let n = Graph.n g in
  if n <= 1 then 0
  else begin
    let best = ref (cut_of_order g (Array.init n (fun i -> i))) in
    let step = max 1 (n / max 1 sweeps) in
    let s = ref 0 in
    while !s < n do
      let cut = cut_of_order g (bfs_order g !s) in
      if cut < !best then best := cut;
      s := !s + step
    done;
    !best
  end
