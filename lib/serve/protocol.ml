open Mvl_core

(* all library access goes through the Mvl facade, same as the CLI *)

type op =
  | Layout of { spec : string; layers : int; validate : bool }
  | Validate of { spec : string; layers : int }
  | Sim of { spec : string; layers : int; load : float; pattern : string }
  | Metrics of { spec : string; layers : int }
  | Stats
  | Shutdown

type request = { id : int; op : op }

let op_cost_hint = function
  | Layout _ -> "layout"
  | Validate _ -> "validate"
  | Sim _ -> "sim"
  | Metrics _ -> "metrics"
  | Stats -> "stats"
  | Shutdown -> "shutdown"

let cache_key = function
  | Layout { spec; layers; validate } ->
      Some
        (Printf.sprintf "layout/%s@%d%s" spec layers
           (if validate then "/v" else ""))
  | Validate { spec; layers } -> Some (Printf.sprintf "validate/%s@%d" spec layers)
  | Sim { spec; layers; load; pattern } ->
      Some (Printf.sprintf "sim/%s@%d/%s@%h" spec layers pattern load)
  | Metrics { spec; layers } -> Some (Printf.sprintf "metrics/%s@%d" spec layers)
  | Stats | Shutdown -> None

(* --- encoding ---------------------------------------------------------- *)

let request_schema = "mvl.serve.request/1"
let reply_schema = "mvl.serve.reply/1"

let encode_request { id; op } =
  let open Telemetry in
  let base = [ ("schema", String request_schema); ("id", Int id) ] in
  let rest =
    match op with
    | Layout { spec; layers; validate } ->
        [ ("op", String "layout"); ("spec", String spec);
          ("layers", Int layers); ("validate", Bool validate) ]
    | Validate { spec; layers } ->
        [ ("op", String "validate"); ("spec", String spec);
          ("layers", Int layers) ]
    | Sim { spec; layers; load; pattern } ->
        [ ("op", String "sim"); ("spec", String spec); ("layers", Int layers);
          ("load", Float load); ("pattern", String pattern) ]
    | Metrics { spec; layers } ->
        [ ("op", String "metrics"); ("spec", String spec);
          ("layers", Int layers) ]
    | Stats -> [ ("op", String "stats") ]
    | Shutdown -> [ ("op", String "shutdown") ]
  in
  to_string (Obj (base @ rest))

let jint ?default key j =
  match (Mvl.Telemetry.member key j, default) with
  | Some (Mvl.Telemetry.Int i), _ -> Ok i
  | None, Some d -> Ok d
  | _ -> Error (Printf.sprintf "field %S must be an integer" key)

let jfloat ?default key j =
  match (Mvl.Telemetry.member key j, default) with
  | Some (Mvl.Telemetry.Float f), _ -> Ok f
  | Some (Mvl.Telemetry.Int i), _ -> Ok (float_of_int i)
  | None, Some d -> Ok d
  | _ -> Error (Printf.sprintf "field %S must be a number" key)

let jstring ?default key j =
  match (Mvl.Telemetry.member key j, default) with
  | Some (Mvl.Telemetry.String s), _ -> Ok s
  | None, Some d -> Ok d
  | _ -> Error (Printf.sprintf "field %S must be a string" key)

let jbool ?default key j =
  match (Mvl.Telemetry.member key j, default) with
  | Some (Mvl.Telemetry.Bool b), _ -> Ok b
  | None, Some d -> Ok d
  | _ -> Error (Printf.sprintf "field %S must be a boolean" key)

let ( let* ) = Result.bind

let parse_request line =
  let* j = Mvl.Telemetry.parse line in
  let* id = jint ~default:0 "id" j in
  let* opname = jstring "op" j in
  let* op =
    match opname with
    | "layout" ->
        let* spec = jstring "spec" j in
        let* layers = jint ~default:2 "layers" j in
        let* validate = jbool ~default:false "validate" j in
        Ok (Layout { spec; layers; validate })
    | "validate" ->
        let* spec = jstring "spec" j in
        let* layers = jint ~default:2 "layers" j in
        Ok (Validate { spec; layers })
    | "sim" ->
        let* spec = jstring "spec" j in
        let* layers = jint ~default:2 "layers" j in
        let* load = jfloat ~default:0.1 "load" j in
        let* pattern = jstring ~default:"uniform" "pattern" j in
        Ok (Sim { spec; layers; load; pattern })
    | "metrics" ->
        let* spec = jstring "spec" j in
        let* layers = jint ~default:2 "layers" j in
        Ok (Metrics { spec; layers })
    | "stats" -> Ok Stats
    | "shutdown" -> Ok Shutdown
    | other -> Error (Printf.sprintf "unknown op %S" other)
  in
  Ok { id; op }

(* the payload is spliced in as already-encoded bytes: the cached-hit
   path must not re-parse or re-encode a multi-kilobyte document per
   request *)
let reply_prefix =
  Printf.sprintf "{\"schema\":%s,\"id\":"
    (Mvl.Telemetry.to_string (Mvl.Telemetry.String reply_schema))

let encode_reply_ok ~id ~payload =
  String.concat ""
    [ reply_prefix; string_of_int id; ",\"ok\":true,\"payload\":"; payload; "}" ]

let encode_reply_error ~id msg =
  Mvl.Telemetry.to_string
    (Mvl.Telemetry.Obj
       [
         ("schema", Mvl.Telemetry.String reply_schema);
         ("id", Mvl.Telemetry.Int id);
         ("ok", Mvl.Telemetry.Bool false);
         ("error", Mvl.Telemetry.String msg);
       ])

let parse_reply line =
  let* j = Mvl.Telemetry.parse line in
  let* id = jint ~default:0 "id" j in
  let* ok = jbool "ok" j in
  if ok then
    match Mvl.Telemetry.member "payload" j with
    | Some payload -> Ok (id, Ok payload)
    | None -> Error "reply has ok=true but no payload"
  else
    let* msg = jstring ~default:"unknown server error" "error" j in
    Ok (id, Error msg)

(* --- evaluation -------------------------------------------------------- *)

(* each branch reproduces the corresponding one-shot CLI document
   construction exactly; [strip_volatile] then removes timings, cache
   counters and the from_cache flag, so the compact payload
   pretty-prints to the CLI's [--json --stable] bytes *)

let stable doc = Mvl.Telemetry.to_string (Mvl.Telemetry.strip_volatile doc)

let eval_layout ~spec ~layers ~validate =
  let* r =
    Mvl.Pipeline.run_string
      ?validate:(if validate then Some Mvl.Check.Strict else None)
      ~layers spec
  in
  Ok (stable (Mvl.Pipeline.to_json r))

let eval_validate ~spec ~layers =
  let* parsed = Mvl.Registry.parse spec in
  let* r = Mvl.Pipeline.run ~layers parsed in
  let res =
    Mvl.Check.run ~mode:Mvl.Check.Strict ~max_violations:20
      r.Mvl.Pipeline.layout
  in
  Ok
    (stable
       (Mvl.Telemetry.Obj
          [
            ("schema", Mvl.Telemetry.String "mvl.validate/1");
            ("spec", Mvl.Telemetry.String (Mvl.Registry.to_string parsed));
            ("layers", Mvl.Telemetry.Int layers);
            ("validation", Mvl.Telemetry.of_check res);
          ]))

let eval_sim ~spec ~layers ~load ~pattern =
  let* parsed = Mvl.Registry.parse spec in
  let* traffic = Mvl.Traffic.of_string pattern in
  let* r = Mvl.Pipeline.run ~layers parsed in
  let fam = r.Mvl.Pipeline.family in
  let layout = r.Mvl.Pipeline.layout in
  let link =
    Mvl.Network_sim.link_latency_of_layout ~units_per_cycle:32 layout
  in
  let cfg =
    {
      Mvl.Network_sim.default_config with
      Mvl.Network_sim.traffic;
      offered_load = load;
    }
  in
  match
    Mvl.Network_sim.run ~config:cfg ~link_latency:link
      fam.Mvl.Families.graph
  with
  | exception Invalid_argument msg -> Error msg
  | res ->
      let zll =
        Mvl.Network_sim.zero_load_latency ~link_latency:link
          fam.Mvl.Families.graph
      in
      Ok
        (stable
           (Mvl.Telemetry.Obj
              [
                ("schema", Mvl.Telemetry.String "mvl.sim.run/1");
                ("spec", Mvl.Telemetry.String (Mvl.Registry.to_string parsed));
                ("family", Mvl.Telemetry.String fam.Mvl.Families.name);
                ("layers", Mvl.Telemetry.Int layers);
                ( "pattern",
                  Mvl.Telemetry.String
                    (Format.asprintf "%a" Mvl.Traffic.pp traffic) );
                ("offered_load", Mvl.Telemetry.Float load);
                ("seed", Mvl.Telemetry.Int cfg.Mvl.Network_sim.seed);
                ("zero_load_latency", Mvl.Telemetry.Float zll);
                ("sim", Mvl.Telemetry.of_sim res);
              ]))

let eval_metrics ~spec ~layers =
  let* parsed = Mvl.Registry.parse spec in
  let* r = Mvl.Pipeline.run ~layers parsed in
  let fam = r.Mvl.Pipeline.family in
  Ok
    (stable
       (Mvl.Telemetry.Obj
          [
            ("schema", Mvl.Telemetry.String "mvl.metrics/1");
            ("spec", Mvl.Telemetry.String (Mvl.Registry.to_string parsed));
            ("family", Mvl.Telemetry.String fam.Mvl.Families.name);
            ("n_nodes", Mvl.Telemetry.Int fam.Mvl.Families.n_nodes);
            ("layers", Mvl.Telemetry.Int layers);
            ("metrics", Mvl.Telemetry.of_metrics r.Mvl.Pipeline.metrics);
          ]))

let eval = function
  | Layout { spec; layers; validate } -> eval_layout ~spec ~layers ~validate
  | Validate { spec; layers } -> eval_validate ~spec ~layers
  | Sim { spec; layers; load; pattern } -> eval_sim ~spec ~layers ~load ~pattern
  | Metrics { spec; layers } -> eval_metrics ~spec ~layers
  | Stats -> Error "stats is a server-side op"
  | Shutdown -> Error "shutdown is a server-side op"
