open Mvl_core

(* [buf.[start .. start+len)] holds unconsumed reply bytes; lines are
   scanned in place and the window is compacted only when a read needs
   room, so draining a deep pipelined batch costs O(bytes), not
   O(lines * bytes) as a naive Buffer.contents-per-line would *)
type t = {
  fd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable start : int;
  mutable len : int;
}

let parse_addr s =
  if String.length s >= 5 && String.sub s 0 5 = "unix:" then
    Ok (`Unix (String.sub s 5 (String.length s - 5)))
  else if String.contains s '/' then Ok (`Unix s)
  else
    match String.rindex_opt s ':' with
    | None -> Error (Printf.sprintf "address %S: expected unix:PATH or HOST:PORT" s)
    | Some i -> (
        let host = String.sub s 0 i in
        let port = String.sub s (i + 1) (String.length s - i - 1) in
        match int_of_string_opt port with
        | None -> Error (Printf.sprintf "address %S: bad port" s)
        | Some p -> Ok (`Tcp ((if host = "" then "127.0.0.1" else host), p)))

let connect addr =
  match parse_addr addr with
  | Error _ as e -> e
  | Ok target -> (
      match
        match target with
        | `Unix path ->
            let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
            Unix.connect fd (Unix.ADDR_UNIX path);
            fd
        | `Tcp (host, port) ->
            let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
            let ip =
              try Unix.inet_addr_of_string host
              with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
            in
            Unix.connect fd (Unix.ADDR_INET (ip, port));
            (try Unix.setsockopt fd Unix.TCP_NODELAY true
             with Unix.Unix_error _ -> ());
            fd
      with
      | fd -> Ok { fd; buf = Bytes.create 65536; start = 0; len = 0 }
      | exception Unix.Unix_error (e, _, _) ->
          Error
            (Printf.sprintf "connect %s: %s" addr (Unix.error_message e)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send_raw t msg =
  let n = String.length msg in
  let off = ref 0 in
  while !off < n do
    match Unix.write_substring t.fd msg !off (n - !off) with
    | 0 -> off := n (* peer gone; surface on the next recv *)
    | w -> off := !off + w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let send_line t line = send_raw t (line ^ "\n")

let recv_line t =
  let take_line () =
    match Bytes.index_from_opt t.buf t.start '\n' with
    | Some i when i < t.start + t.len ->
        let line = Bytes.sub_string t.buf t.start (i - t.start) in
        t.len <- t.len - (i - t.start + 1);
        t.start <- i + 1;
        Some line
    | _ -> None
  in
  let rec go () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
        (* compact, then grow if a single line overflows the buffer *)
        if t.start > 0 then begin
          Bytes.blit t.buf t.start t.buf 0 t.len;
          t.start <- 0
        end;
        if t.len = Bytes.length t.buf then begin
          let bigger = Bytes.create (2 * Bytes.length t.buf) in
          Bytes.blit t.buf 0 bigger 0 t.len;
          t.buf <- bigger
        end;
        match Unix.read t.fd t.buf t.len (Bytes.length t.buf - t.len) with
        | 0 -> Error "connection closed by server"
        | n ->
            t.len <- t.len + n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) ->
            Error (Unix.error_message e))
  in
  go ()

let ( let* ) = Result.bind

let rpc t (req : Protocol.request) =
  send_line t (Protocol.encode_request req);
  let* line = recv_line t in
  let* id, outcome = Protocol.parse_reply line in
  if id <> req.Protocol.id then
    Error
      (Printf.sprintf "reply id %d does not echo request id %d" id
         req.Protocol.id)
  else outcome

let rpc_pretty t req =
  let* payload = rpc t req in
  Ok (Mvl.Telemetry.to_string ~pretty:true payload)
