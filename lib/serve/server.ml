open Mvl_core
module Ring_buffer = Mvl_ring.Ring_buffer

type addr = Unix_sock of string | Tcp of string * int

type config = {
  addr : addr;
  workers : int;
  cache_entries : int;
  cache_bytes : int;
  max_pending : int;
  idle_timeout : float;
  log : bool;
}

let default_config =
  {
    addr = Unix_sock "/tmp/mvl.sock";
    workers = 2;
    cache_entries = 1024;
    cache_bytes = 256 * 1024 * 1024;
    max_pending = 1024;
    idle_timeout = 300.0;
    log = false;
  }

type client = {
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  pending : string Ring_buffer.t;  (* complete reply lines, oldest first *)
  mutable out : string;            (* line currently being written *)
  mutable out_off : int;
  mutable last_active : float;
  mutable alive : bool;
}

type job = { key : string; op : Protocol.op }

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  (* owned by the event-loop domain only — no locks *)
  mutable clients : client list;
  reply_cache : (string, string) Mvl.Cache.t;
  waiters : (string, (client * int) list ref) Hashtbl.t;
  mutable requests : int;
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  (* one-line parse memo: a pipelined client repeating a request sends
     byte-identical lines, and re-parsing them would dominate the
     cached-hit path *)
  mutable memo_line : string;
  mutable memo_parsed :
    (Protocol.request * string option, string) result;
  mutable stop : bool;
  mutable stop_at : float;
  (* shared with the worker domains *)
  jobs : job Queue.t;
  jobs_mu : Mutex.t;
  jobs_cond : Condition.t;
  mutable stopping : bool;  (* under jobs_mu *)
  done_q : (string * (string, string) result * float) Queue.t;
  done_mu : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let log t fmt =
  if t.config.log then Printf.eprintf ("mvl serve: " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let port t = t.bound_port

let create config =
  let listen_fd, bound_port =
    match config.addr with
    | Unix_sock path ->
        (try Unix.unlink path with Unix.Unix_error _ -> ());
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 128;
        (fd, 0)
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.bind fd (Unix.ADDR_INET (ip, port));
        Unix.listen fd 128;
        let actual =
          match Unix.getsockname fd with
          | Unix.ADDR_INET (_, p) -> p
          | _ -> 0
        in
        (fd, actual)
  in
  Unix.set_nonblock listen_fd;
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  {
    config;
    listen_fd;
    bound_port;
    clients = [];
    reply_cache =
      Mvl.Cache.create ~max_bytes:(max 1 config.cache_bytes)
        ~capacity:(max 1 config.cache_entries) ();
    waiters = Hashtbl.create 64;
    requests = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    memo_line = "";
    memo_parsed = Error "empty request";
    stop = false;
    stop_at = 0.0;
    jobs = Queue.create ();
    jobs_mu = Mutex.create ();
    jobs_cond = Condition.create ();
    stopping = false;
    done_q = Queue.create ();
    done_mu = Mutex.create ();
    wake_r;
    wake_w;
  }

(* --- worker domains ---------------------------------------------------- *)

let wake_byte = Bytes.make 1 '!'

let worker t =
  let rec next () =
    let job =
      Mutex.lock t.jobs_mu;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.jobs_mu) (fun () ->
          let rec go () =
            if t.stopping then None
            else
              match Queue.take_opt t.jobs with
              | Some j -> Some j
              | None ->
                  Condition.wait t.jobs_cond t.jobs_mu;
                  go ()
          in
          go ())
    in
    match job with
    | None -> ()
    | Some job ->
        let t0 = Monotonic_clock.now () in
        let result =
          try Protocol.eval job.op
          with e -> Error (Printexc.to_string e)
        in
        let ns = Int64.sub (Monotonic_clock.now ()) t0 in
        let seconds =
          if Int64.compare ns 0L < 0 then 0.0 else Int64.to_float ns *. 1e-9
        in
        Mutex.lock t.done_mu;
        Fun.protect ~finally:(fun () -> Mutex.unlock t.done_mu) (fun () ->
            Queue.push (job.key, result, seconds) t.done_q);
        (try ignore (Unix.write t.wake_w wake_byte 0 1)
         with Unix.Unix_error _ -> ());
        next ()
  in
  next ()

let push_job t job =
  Mutex.lock t.jobs_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.jobs_mu) (fun () ->
      Queue.push job t.jobs;
      Condition.signal t.jobs_cond)

(* --- client bookkeeping ------------------------------------------------ *)

let disconnect t c =
  if c.alive then begin
    c.alive <- false;
    (try Unix.close c.fd with Unix.Unix_error _ -> ());
    t.clients <- List.filter (fun x -> x != c) t.clients;
    log t "client disconnected (%d left)" (List.length t.clients)
  end

(* queue one reply line; a client that stops draining its socket hits
   the pending bound and is dropped instead of wedging the loop *)
let enqueue_line t c line =
  if c.alive then begin
    if c.out = "" && Ring_buffer.is_empty c.pending then begin
      c.out <- line ^ "\n";
      c.out_off <- 0
    end
    else if Ring_buffer.length c.pending >= t.config.max_pending then begin
      log t "client over pending-reply bound (%d), dropping"
        t.config.max_pending;
      disconnect t c
    end
    else Ring_buffer.push c.pending (line ^ "\n")
  end

(* coalesce queued reply lines into one outgoing string so a deep
   pipelined batch drains in a few large writes, not one write syscall
   per reply *)
let flush_batch_bytes = 60 * 1024

let refill_out c =
  if c.out = "" && not (Ring_buffer.is_empty c.pending) then begin
    match Ring_buffer.pop_opt c.pending with
    | None -> ()
    | Some first ->
        if Ring_buffer.is_empty c.pending then c.out <- first
        else begin
          let b = Buffer.create (2 * String.length first) in
          Buffer.add_string b first;
          let continue = ref true in
          while !continue && Buffer.length b < flush_batch_bytes do
            match Ring_buffer.pop_opt c.pending with
            | Some s -> Buffer.add_string b s
            | None -> continue := false
          done;
          c.out <- Buffer.contents b
        end;
        c.out_off <- 0
  end

let rec flush_client t c =
  if c.alive then begin
    refill_out c;
    if c.out <> "" then
      let len = String.length c.out - c.out_off in
      match Unix.write_substring c.fd c.out c.out_off len with
      | 0 -> ()
      | n ->
          c.out_off <- c.out_off + n;
          if c.out_off = String.length c.out then begin
            c.out <- "";
            c.out_off <- 0;
            flush_client t c
          end
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        ->
          ()
      | exception Unix.Unix_error _ -> disconnect t c
  end

(* --- request handling -------------------------------------------------- *)

let stats_payload t =
  let open Mvl.Telemetry in
  let cs = Mvl.Cache.stats t.reply_cache in
  let ps = Mvl.Pipeline.cache_stats () in
  to_string
    (Obj
       [
         ("schema", String "mvl.serve.stats/1");
         ("requests", Int t.requests);
         ("hits", Int t.hits);
         ("misses", Int t.misses);
         ("coalesced", Int t.coalesced);
         ( "reply_cache",
           Obj
             [
               ("entries", Int (Mvl.Cache.length t.reply_cache));
               ("resident_bytes", Int (Mvl.Cache.resident_bytes t.reply_cache));
               ("admissions", Int cs.Mvl.Cache.admissions);
               ("rejections", Int cs.Mvl.Cache.rejections);
               ("evictions", Int cs.Mvl.Cache.evictions);
             ] );
         ( "pipeline",
           Obj
             [
               ("hits", Int ps.Mvl.Pipeline.hits);
               ("misses", Int ps.Mvl.Pipeline.misses);
               ("coalesced", Int ps.Mvl.Pipeline.coalesced);
               ("entries", Int (Mvl.Pipeline.cache_size ()));
               ("resident_bytes", Int (Mvl.Pipeline.cache_resident_bytes ()));
             ] );
         ("clients", Int (List.length t.clients));
       ])

let shutdown_payload = "{\"schema\":\"mvl.serve.shutdown/1\"}"

let parse_memo t line =
  if String.equal line t.memo_line then t.memo_parsed
  else begin
    let parsed =
      match Protocol.parse_request line with
      | Error _ as e -> e
      | Ok r -> Ok (r, Protocol.cache_key r.Protocol.op)
    in
    t.memo_line <- line;
    t.memo_parsed <- parsed;
    parsed
  end

let handle_request t c line =
  t.requests <- t.requests + 1;
  match parse_memo t line with
  | Error msg -> enqueue_line t c (Protocol.encode_reply_error ~id:0 msg)
  | Ok ({ Protocol.id; op }, cache_key) -> (
      match op with
      | Protocol.Shutdown ->
          enqueue_line t c
            (Protocol.encode_reply_ok ~id ~payload:shutdown_payload);
          if not t.stop then begin
            t.stop <- true;
            t.stop_at <- Unix.gettimeofday ();
            log t "shutdown requested"
          end
      | Protocol.Stats ->
          enqueue_line t c
            (Protocol.encode_reply_ok ~id ~payload:(stats_payload t))
      | _ -> (
          let key = Option.get cache_key in
          match Mvl.Cache.find_opt t.reply_cache key with
          | Some payload ->
              t.hits <- t.hits + 1;
              enqueue_line t c (Protocol.encode_reply_ok ~id ~payload)
          | None -> (
              (* coalesce: one evaluation per key, shared by every
                 waiter that arrives before it completes *)
              match Hashtbl.find_opt t.waiters key with
              | Some ws ->
                  t.coalesced <- t.coalesced + 1;
                  ws := (c, id) :: !ws
              | None ->
                  t.misses <- t.misses + 1;
                  Hashtbl.replace t.waiters key (ref [ (c, id) ]);
                  push_job t { key; op })))

(* a request line may not exceed this; protects the loop from a
   client streaming garbage with no newline *)
let max_line_bytes = 1 lsl 20

let process_lines t c =
  let s = Buffer.contents c.inbuf in
  let n = String.length s in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if String.unsafe_get s i = '\n' then begin
      let line = String.sub s !start (i - !start) in
      if String.length line > 0 && c.alive then handle_request t c line;
      start := i + 1
    end
  done;
  if !start > 0 then begin
    Buffer.clear c.inbuf;
    Buffer.add_substring c.inbuf s !start (n - !start)
  end;
  if Buffer.length c.inbuf > max_line_bytes then begin
    log t "request line over %d bytes, dropping client" max_line_bytes;
    disconnect t c
  end

let read_chunk = Bytes.create 65536

let read_client t c =
  match Unix.read c.fd read_chunk 0 (Bytes.length read_chunk) with
  | 0 -> disconnect t c
  | n ->
      c.last_active <- Unix.gettimeofday ();
      Buffer.add_subbytes c.inbuf read_chunk 0 n;
      process_lines t c
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
  | exception Unix.Unix_error _ -> disconnect t c

let accept_new t =
  match Unix.accept t.listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      (match t.config.addr with
      | Tcp _ -> (
          try Unix.setsockopt fd Unix.TCP_NODELAY true
          with Unix.Unix_error _ -> ())
      | Unix_sock _ -> ());
      let c =
        {
          fd;
          inbuf = Buffer.create 256;
          pending = Ring_buffer.create ~dummy:"" ();
          out = "";
          out_off = 0;
          last_active = Unix.gettimeofday ();
          alive = true;
        }
      in
      t.clients <- c :: t.clients;
      log t "client connected (%d total)" (List.length t.clients)
  | exception
      Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()

(* finished evaluations: admit into the reply cache (cost = measured
   seconds, size = payload bytes — the GDSF inputs) and answer every
   waiter of the key *)
let drain_done t =
  let drain_buf = Bytes.create 64 in
  (try
     while Unix.read t.wake_r drain_buf 0 64 > 0 do
       ()
     done
   with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  );
  let items =
    Mutex.lock t.done_mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.done_mu) (fun () ->
        let acc = ref [] in
        while not (Queue.is_empty t.done_q) do
          acc := Queue.pop t.done_q :: !acc
        done;
        List.rev !acc)
  in
  List.iter
    (fun (key, result, seconds) ->
      (match result with
      | Ok payload ->
          ignore
            (Mvl.Cache.add t.reply_cache key payload ~cost:seconds
               ~size:(String.length payload))
      | Error _ -> ());
      match Hashtbl.find_opt t.waiters key with
      | None -> ()
      | Some ws ->
          Hashtbl.remove t.waiters key;
          List.iter
            (fun (c, id) ->
              match result with
              | Ok payload ->
                  enqueue_line t c (Protocol.encode_reply_ok ~id ~payload)
              | Error msg ->
                  enqueue_line t c (Protocol.encode_reply_error ~id msg))
            (List.rev !ws))
    items

let idle_scan t =
  if t.config.idle_timeout > 0.0 then begin
    let now = Unix.gettimeofday () in
    List.iter
      (fun c ->
        if c.alive && now -. c.last_active > t.config.idle_timeout then begin
          log t "idle timeout";
          disconnect t c
        end)
      t.clients
  end

let all_flushed t =
  List.for_all
    (fun c -> c.out = "" && Ring_buffer.is_empty c.pending)
    t.clients

let serve t =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let workers =
    Array.init (max 1 t.config.workers) (fun _ ->
        Domain.spawn (fun () -> worker t))
  in
  log t "listening (%d workers)" (Array.length workers);
  let finished () =
    t.stop
    && (all_flushed t || Unix.gettimeofday () -. t.stop_at > 2.0)
  in
  while not (finished ()) do
    let snapshot = t.clients in
    let rds =
      t.listen_fd :: t.wake_r :: List.map (fun c -> c.fd) snapshot
    in
    let wrs =
      List.filter_map
        (fun c ->
          if c.out <> "" || not (Ring_buffer.is_empty c.pending) then
            Some c.fd
          else None)
        snapshot
    in
    match Unix.select rds wrs [] 1.0 with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | rset, wset, _ ->
        if List.memq t.wake_r rset then drain_done t;
        if List.memq t.listen_fd rset then accept_new t;
        List.iter
          (fun c -> if c.alive && List.memq c.fd rset then read_client t c)
          snapshot;
        List.iter
          (fun c -> if c.alive && List.memq c.fd wset then flush_client t c)
          snapshot;
        idle_scan t
  done;
  Mutex.lock t.jobs_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.jobs_mu) (fun () ->
      t.stopping <- true;
      Condition.broadcast t.jobs_cond);
  Array.iter Domain.join workers;
  List.iter (fun c -> disconnect t c) t.clients;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  (try Unix.close t.wake_w with Unix.Unix_error _ -> ());
  (match t.config.addr with
  | Unix_sock path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> ());
  log t "stopped"
