(** The [mvl serve] daemon: a select-based event loop serving the
    {!Protocol} over a Unix-domain or TCP socket.

    One domain owns every socket, the reply cache and the coalescing
    table; [workers] extra domains evaluate cache misses.  Deterministic
    requests are cached by {!Protocol.cache_key} in an {!Mvl.Cache}
    (GreedyDual-Size-Frequency: priority grows with hit frequency and
    measured evaluation seconds, shrinks with payload bytes), so a hot
    cached spec is answered entirely inside the event loop.  Concurrent
    misses on one key coalesce: the first enqueues an evaluation job,
    the rest just register as waiters and share the one reply.

    Flow control: replies queue per client in a bounded {!Ring_buffer}
    and drain as the socket accepts writes; a client that stops reading
    past [max_pending] queued replies is disconnected rather than
    allowed to wedge the server.  Idle connections close after
    [idle_timeout] seconds. *)

type addr =
  | Unix_sock of string  (** filesystem path *)
  | Tcp of string * int  (** host, port; port 0 binds an ephemeral port *)

type config = {
  addr : addr;
  workers : int;          (** evaluation domains (>= 1) *)
  cache_entries : int;    (** reply-cache entry bound *)
  cache_bytes : int;      (** reply-cache byte budget *)
  max_pending : int;      (** queued replies per client before disconnect *)
  idle_timeout : float;   (** seconds; <= 0 disables *)
  log : bool;             (** one stderr line per lifecycle event *)
}

val default_config : config
(** Unix socket ["/tmp/mvl.sock"], 2 workers, 1024 entries, 256 MiB,
    1024 pending replies, 300 s idle timeout, logging off. *)

type t

val create : config -> t
(** Binds and listens (unlinking a stale Unix-socket path first).
    Raises [Unix.Unix_error] on bind/listen failure. *)

val port : t -> int
(** The bound TCP port (useful with [Tcp (_, 0)]); [0] for a Unix
    socket. *)

val serve : t -> unit
(** Runs the event loop until a [shutdown] request arrives, then joins
    the workers and closes every socket.  Ignores SIGPIPE. *)
