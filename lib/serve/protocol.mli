(** The [mvl serve] wire protocol: newline-delimited Telemetry JSON.

    A connection carries a sequence of requests, one compact JSON
    object per line ([mvl.serve.request/1]); each gets exactly one
    compact reply line ([mvl.serve.reply/1]).  Replies may arrive out
    of request order under coalescing, so every request carries a
    client-chosen [id] that its reply echoes.

    Request:  [{"schema":"mvl.serve.request/1","id":7,"op":"layout",
                "spec":"hypercube:6","layers":4}]
    Reply:    [{"schema":"mvl.serve.reply/1","id":7,"ok":true,
                "payload":{...}}]
          or  [{"schema":"mvl.serve.reply/1","id":7,"ok":false,
                "error":"..."}]

    The payload of a [layout]/[validate]/[sim]/[metrics] reply is the
    {e same document} the one-shot CLI prints for that request with
    [--json --stable] (volatile fields stripped), in compact form;
    re-encoding it with [Telemetry.to_string ~pretty:true] reproduces
    the CLI output byte for byte — the identity {!Client} and the CI
    smoke rely on. *)

open Mvl_core

type op =
  | Layout of { spec : string; layers : int; validate : bool }
  | Validate of { spec : string; layers : int }
  | Sim of { spec : string; layers : int; load : float; pattern : string }
  | Metrics of { spec : string; layers : int }
  | Stats
  | Shutdown

type request = { id : int; op : op }

val cache_key : op -> string option
(** Canonical reply-cache key of a deterministic op ([None] for
    [Stats]/[Shutdown], which are volatile).  Two requests with equal
    keys have byte-identical payloads. *)

val op_cost_hint : op -> string
(** The op name ("layout", "validate", ...) — for logs and stats. *)

val encode_request : request -> string
(** One compact JSON line (no trailing newline). *)

val parse_request : string -> (request, string) result
(** Parses one request line.  Unknown fields are ignored; [id] defaults
    to 0, [layers] to 2.  Errors name the offending field. *)

val encode_reply_ok : id:int -> payload:string -> string
(** Envelope around an already-encoded compact payload (spliced
    verbatim, no re-parse — the hot path of the serving loop). *)

val encode_reply_error : id:int -> string -> string

val parse_reply : string -> (int * (Telemetry.json, string) result, string) result
(** [(id, Ok payload | Error server_message)], or [Error] on a
    malformed envelope. *)

val eval : op -> (string, string) result
(** Computes the compact payload for a deterministic op — the single
    evaluation path shared by the server's workers and the tests.
    [Stats]/[Shutdown] are server-side ops and return [Error] here. *)
