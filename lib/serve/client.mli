(** Blocking client for the {!Protocol}, shared by [mvl request],
    [mvl sweep --connect] and [bench serve].

    Addresses: ["unix:/path"] (or any string containing ['/']) connects
    a Unix-domain socket; ["host:port"] connects TCP. *)

open Mvl_core

type t

val connect : string -> (t, string) result
val close : t -> unit

val send_line : t -> string -> unit
(** Writes one request line (newline appended).  With {!recv_line}
    this is the raw pipelined interface the serving bench drives. *)

val send_raw : t -> string -> unit
(** Writes bytes exactly as given — a pipelined sender batches many
    newline-terminated request lines into one write. *)

val recv_line : t -> (string, string) result
(** Blocks for the next reply line (newline stripped); [Error] on EOF
    or a socket error. *)

val rpc : t -> Protocol.request -> (Telemetry.json, string) result
(** One request, one reply: sends, blocks, parses the envelope and
    returns the payload (or the server's error).  The reply's [id]
    must echo the request's. *)

val rpc_pretty : t -> Protocol.request -> (string, string) result
(** {!rpc}, re-encoding the payload with
    [Telemetry.to_string ~pretty:true] — byte-identical to the one-shot
    CLI's [--json --stable] output for the same request (the encoder's
    compact → parse → pretty round trip is the identity). *)
