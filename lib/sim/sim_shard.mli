(** Shard-count policy and router partition for the domain-sharded
    simulator engines ({!Network_sim.run} / {!Wormhole.run} with
    [~jobs]). *)

val env_force_fork : unit -> bool
(** [true] when [MVL_FORCE_FORK] is set to [1]/[true]/[yes] — the same
    test {!Mvl_core} applies when selecting the fork backend, repeated
    here because the engines cannot depend on it.  Sharding is refused
    under it: domains would permanently disable [Unix.fork]. *)

val shards : jobs:int option -> n:int -> int
(** Effective shard count for a [~jobs] request on [n] routers: [1]
    (the serial path — no domain is spawned) when [jobs] is absent,
    [<= 1], or [MVL_FORCE_FORK] is set (the fork worker pool cannot
    coexist with domains); otherwise [min jobs n]. *)

val bounds : n:int -> shards:int -> int -> int * int
(** [bounds ~n ~shards w] is the half-open router range [(lo, hi)] owned
    by shard [w]: the contiguous even partition [w*n/S, (w+1)*n/S).
    Ranges ascend with [w], so ascending-shard concatenation of
    per-shard event streams equals the serial engine's global
    ascending-router order. *)

val owner_table : n:int -> shards:int -> int array
(** [owner_table ~n ~shards] maps each router to its owning shard. *)
