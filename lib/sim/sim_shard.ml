(* Shard-count policy and router partition shared by both sharded
   simulator engines.

   The contiguous even partition [w*n/S, (w+1)*n/S) is load-balanced to
   within one router and — because shard ranges ascend with the shard
   index — concatenating per-shard event streams in ascending shard
   order reproduces the serial engine's global ascending-router order.
   That identity is what makes the phase-2 mailbox drain deterministic
   and byte-identical to serial (DESIGN.md §11). *)

(* mirror of Parallel.force_fork, which lives above this library in the
   dependency order: under the fork backend no domain may ever be
   spawned (OCaml 5 permanently refuses [Unix.fork] afterwards), so the
   engines must degrade to their serial path *)
let env_force_fork () =
  match Sys.getenv_opt "MVL_FORCE_FORK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let shards ~jobs ~n =
  match jobs with
  | None -> 1
  | Some j -> if j <= 1 || env_force_fork () then 1 else min j (max 1 n)

let bounds ~n ~shards w = ((w * n) / shards, ((w + 1) * n) / shards)

let owner_table ~n ~shards =
  let t = Array.make n 0 in
  for w = 0 to shards - 1 do
    let lo, hi = bounds ~n ~shards w in
    for u = lo to hi - 1 do
      t.(u) <- w
    done
  done;
  t
