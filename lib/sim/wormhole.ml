open Mvl_topology
module Int_ring = Mvl_ring.Int_ring

type fabric = Hypercube of int | Torus of { k : int; n : int }

type routing = Deterministic | Adaptive

type config = {
  packet_len : int;
  vcs : int;
  buffer_depth : int;
  routing : routing;
  traffic : Traffic.t;
  offered_load : float;
  warmup : int;
  measure : int;
  drain : int;
  seed : int;
}

let default_config =
  {
    packet_len = 4;
    vcs = 2;
    buffer_depth = 4;
    routing = Deterministic;
    traffic = Traffic.Uniform;
    offered_load = 0.02;
    warmup = 500;
    measure = 2000;
    drain = 20000;
    seed = 1;
  }

type result = {
  injected : int;
  delivered : int;
  avg_latency : float;
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  throughput : float;
  latency_histogram : (int * int) array;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[delivered %d/%d, latency avg=%.1f p50=%d p95=%d p99=%d, \
     throughput=%.4f pkt/node/cyc@]"
    r.delivered r.injected r.avg_latency r.p50_latency r.p95_latency
    r.p99_latency r.throughput

let graph_of_fabric = function
  | Hypercube n -> Mvl_topology.Hypercube.create n
  | Torus { k; n } -> Kary_ncube.create ~k ~n

(* ------------------------------------------------------------------ *)

(* Like {!Network_sim}, the flit-level engine keeps its hot state in
   flat preallocated structures so the steady state allocates nothing:

   - packets are ids into structure-of-arrays fields ([pq_dest] /
     [pq_born] / dateline state); a flit is the packed word
     [(id lsl 2) lor (head lsl 1) lor tail], so every VC buffer is a
     monomorphic {!Int_ring} instead of a [flit Queue.t];
   - link arrivals and credit returns travel through power-of-two
     timing wheels (slot = [cycle land mask]) instead of per-cycle
     [Hashtbl]s of prepend-built lists.  Arrival buckets interleave
     (input address, flit) pairs and drain in push order — the FIFO
     order the old [List.rev] restored; credit increments commute, so
     their drain order is free;
   - the adaptive candidate scan fills scratch arrays and runs a stable
     insertion sort, reproducing [List.sort]'s (stable) most-credits
     order over the prepend-built candidate list exactly;
   - the per-router [out_used] set is a scratch array versioned by a
     generation counter, and upstream input indexes ([neighbor_idx])
     are precomputed instead of searched per credit event. *)

let run ?(config = default_config) ?(link_latency = fun _ _ -> 1) fabric =
  if config.packet_len < 1 then invalid_arg "Wormhole: packet_len < 1";
  if config.vcs < 1 then invalid_arg "Wormhole: vcs < 1";
  (match (fabric, config.routing) with
  | Torus _, Deterministic when config.vcs < 2 ->
      invalid_arg "Wormhole: tori need >= 2 virtual channels"
  | Torus _, Adaptive when config.vcs < 3 ->
      invalid_arg "Wormhole: adaptive tori need >= 3 virtual channels"
  | Hypercube _, Adaptive when config.vcs < 2 ->
      invalid_arg "Wormhole: adaptive hypercubes need >= 2 virtual channels"
  | _ -> ());
  let graph = graph_of_fabric fabric in
  let n = Graph.n graph in
  let vcs = config.vcs in
  let rng = Rng.create ~seed:config.seed in
  let neighbors = Array.init n (fun u -> Graph.neighbors graph u) in
  let neighbor_idx u v =
    let arr = neighbors.(u) in
    let rec find i = if arr.(i) = v then i else find (i + 1) in
    find 0
  in
  (* back_idx.(u).(d): index of u among the neighbours of
     neighbors.(u).(d) — the upstream input a credit returns to *)
  let back_idx =
    Array.init n (fun u ->
        Array.map (fun v -> neighbor_idx v u) neighbors.(u))
  in
  let max_deg =
    Array.fold_left (fun m a -> max m (Array.length a)) 1 neighbors
  in
  let max_inputs = max_deg + 1 in
  (* packet store (structure of arrays); ids are never recycled, the
     arrays just double.  Tracked = [born >= warmup]. *)
  let pq_dest = ref (Array.make 1024 0) in
  let pq_born = ref (Array.make 1024 0) in
  let pq_class = ref (Array.make 1024 0) in
  let pq_dim = ref (Array.make 1024 0) in
  let next_packet_id = ref 0 in
  let new_packet ~dest ~born =
    let cap = Array.length !pq_dest in
    if !next_packet_id = cap then begin
      let g a =
        let a' = Array.make (cap * 2) 0 in
        Array.blit !a 0 a' 0 cap;
        a := a'
      in
      g pq_dest;
      g pq_born;
      g pq_class;
      g pq_dim
    end;
    let id = !next_packet_id in
    incr next_packet_id;
    !pq_dest.(id) <- dest;
    !pq_born.(id) <- born;
    !pq_class.(id) <- 0;
    !pq_dim.(id) <- -1;
    id
  in
  (* e-cube route for the packet at the head of an input VC; results
     land in scratch refs (next node, required vc or -1 for any) plus a
     pending dateline-class update applied only once the output VC is
     actually allocated, since allocation may be retried across
     cycles *)
  let rh_next = ref 0 and rh_want = ref (-1) in
  (* 0 = no state update (hypercube), 1 = torus escape, 2 = adaptive *)
  let rh_commit = ref 0 in
  let rh_dim = ref 0 and rh_class = ref 0 in
  let route_hop id u =
    match fabric with
    | Hypercube _ ->
        let diff = u lxor !pq_dest.(id) in
        let b =
          let rec lowest i =
            if diff land (1 lsl i) <> 0 then i else lowest (i + 1)
          in
          lowest 0
        in
        rh_next := u lxor (1 lsl b);
        rh_want := -1;
        rh_commit := 0
    | Torus { k; n = dims } ->
        let dest = !pq_dest.(id) in
        let j = ref 0 and w = ref 1 in
        while
          !j < dims && u / !w mod k = dest / !w mod k
        do
          incr j;
          w := !w * k
        done;
        if !j >= dims then invalid_arg "Wormhole: routing at destination";
        let du_j = u / !w mod k and dd_j = dest / !w mod k in
        let klass = if !j <> !pq_dim.(id) then 0 else !pq_class.(id) in
        let fwd = (dd_j - du_j + k) mod k in
        let go_plus = fwd <= k - fwd in
        let next_digit =
          if go_plus then (du_j + 1) mod k else (du_j + k - 1) mod k
        in
        let crosses =
          (go_plus && du_j = k - 1) || ((not go_plus) && du_j = 0)
        in
        rh_next := u + ((next_digit - du_j) * !w);
        rh_want := klass;
        rh_commit := 1;
        rh_dim := !j;
        rh_class := if crosses then 1 else klass
  in
  (* per node: inputs = in-neighbours (by index) plus one injection
     pseudo-input at index deg(u); a VC's buffered flits live in an
     int ring and its allocated route is [d * vcs + out_vc], -1 when
     unrouted *)
  let bufs =
    Array.init n (fun u ->
        Array.init
          (Array.length neighbors.(u) + 1)
          (fun _ -> Array.init vcs (fun _ -> Int_ring.create ())))
  in
  let route_of =
    Array.init n (fun u ->
        Array.init
          (Array.length neighbors.(u) + 1)
          (fun _ -> Array.make vcs (-1)))
  in
  let owner =
    Array.init n (fun u ->
        Array.init (Array.length neighbors.(u)) (fun _ ->
            Array.make vcs (-1)))
  in
  let credits =
    Array.init n (fun u ->
        Array.init (Array.length neighbors.(u)) (fun _ ->
            Array.make vcs config.buffer_depth))
  in
  (* timing wheels sized from the slowest link *)
  let max_lat = ref 1 in
  Graph.iter_edges graph (fun u v ->
      max_lat := max !max_lat (max 1 (link_latency u v));
      max_lat := max !max_lat (max 1 (link_latency v u)));
  let wheel_size =
    let c = ref 1 in
    while !c < !max_lat + 1 do
      c := !c * 2
    done;
    !c
  in
  let wheel_mask = wheel_size - 1 in
  (* arrival buckets interleave (address, flit) pairs where address =
     (v * max_inputs + in_idx) * vcs + vc; credit buckets hold
     (u * max_deg + d) * vcs + vc *)
  let arrivals = Array.init wheel_size (fun _ -> Int_ring.create ()) in
  let credit_returns =
    Array.init wheel_size (fun _ -> Int_ring.create ())
  in
  (* out_used scratch, versioned per router scan *)
  let used_stamp = Array.make max_deg 0 in
  let stamp = ref 0 in
  (* adaptive candidate scratch *)
  let cand_cred = Array.make (max_deg * vcs) 0 in
  let cand_d = Array.make (max_deg * vcs) 0 in
  let cand_vc = Array.make (max_deg * vcs) 0 in
  let horizon = config.warmup + config.measure + config.drain in
  let injected = ref 0 and delivered = ref 0 and pending = ref 0 in
  let hist = Histogram.create () in
  let rr = Array.make n 0 in
  for now = 0 to horizon - 1 do
    (* arrivals *)
    let ab = arrivals.(now land wheel_mask) in
    let n_arr = Int_ring.length ab / 2 in
    if n_arr > 0 then begin
      for i = 0 to n_arr - 1 do
        let addr = Int_ring.unsafe_get ab (2 * i) in
        let fw = Int_ring.unsafe_get ab ((2 * i) + 1) in
        let vc = addr mod vcs in
        let rest = addr / vcs in
        Int_ring.push bufs.(rest / max_inputs).(rest mod max_inputs).(vc) fw
      done;
      Int_ring.drop_front ab (2 * n_arr)
    end;
    let cb = credit_returns.(now land wheel_mask) in
    let n_cred = Int_ring.length cb in
    if n_cred > 0 then begin
      for i = 0 to n_cred - 1 do
        let addr = Int_ring.unsafe_get cb i in
        let vc = addr mod vcs in
        let rest = addr / vcs in
        let c = credits.(rest / max_deg).(rest mod max_deg) in
        c.(vc) <- c.(vc) + 1
      done;
      Int_ring.drop_front cb n_cred
    end;
    (* injection: whole packet enqueued flit by flit into the pseudo-input *)
    if now < config.warmup + config.measure then
      for src = 0 to n - 1 do
        if Rng.bool rng ~p:config.offered_load then begin
          let dest = Traffic.destination config.traffic rng ~n_nodes:n ~src in
          if now >= config.warmup then begin
            incr injected;
            incr pending
          end;
          let id = new_packet ~dest ~born:now in
          let inj = bufs.(src).(Array.length neighbors.(src)).(0) in
          for f = 0 to config.packet_len - 1 do
            Int_ring.push inj
              ((id lsl 2)
              lor (if f = 0 then 2 else 0)
              lor (if f = config.packet_len - 1 then 1 else 0))
          done
        end
      done;
    (* switching *)
    for u = 0 to n - 1 do
      let nbrs = neighbors.(u) in
      let deg = Array.length nbrs in
      let n_inputs = deg + 1 in
      incr stamp;
      let st = !stamp in
      let start = rr.(u) in
      rr.(u) <- (start + 1) mod n_inputs;
      for step = 0 to n_inputs - 1 do
        let in_idx = (start + step) mod n_inputs in
        let routes_i = route_of.(u).(in_idx) in
        let bufs_i = bufs.(u).(in_idx) in
        (* one flit per input per cycle: scan this input's VCs *)
        let granted = ref false in
        for vc = 0 to vcs - 1 do
          let buf = bufs_i.(vc) in
          if (not !granted) && Int_ring.length buf > 0 then begin
            let fw = Int_ring.unsafe_get buf 0 in
            let fid = fw lsr 2 in
            if !pq_dest.(fid) = u then begin
              (* ejection *)
              Int_ring.drop_front buf 1;
              granted := true;
              if in_idx < deg then begin
                let upstream = nbrs.(in_idx) in
                let d_up = back_idx.(u).(in_idx) in
                Int_ring.push
                  credit_returns.((now + max 1 (link_latency upstream u))
                                  land wheel_mask)
                  ((((upstream * max_deg) + d_up) * vcs) + vc)
              end;
              if fw land 1 <> 0 then begin
                routes_i.(vc) <- -1;
                if !pq_born.(fid) >= config.warmup then begin
                  incr delivered;
                  decr pending;
                  Histogram.add hist (now - !pq_born.(fid))
                end
              end
            end
            else begin
              (* route the head if not yet routed *)
              (if routes_i.(vc) < 0 && fw land 2 <> 0 then begin
                 let try_alloc d vc' commit =
                   if owner.(u).(d).(vc') < 0 then begin
                     owner.(u).(d).(vc') <- fid;
                     routes_i.(vc) <- (d * vcs) + vc';
                     (match commit with
                     | 0 -> ()
                     | 1 ->
                         !pq_dim.(fid) <- !rh_dim;
                         !pq_class.(fid) <- !rh_class
                     | _ ->
                         !pq_dim.(fid) <- -1;
                         !pq_class.(fid) <- 0);
                     true
                   end
                   else false
                 in
                 let escape () =
                   route_hop fid u;
                   let d = neighbor_idx u !rh_next in
                   (* under adaptive routing the hypercube escape lane is
                      pinned to VC 0 *)
                   let want_vc =
                     if config.routing = Adaptive && !rh_want < 0 then 0
                     else !rh_want
                   in
                   if want_vc >= 0 then
                     ignore (try_alloc d want_vc !rh_commit)
                   else begin
                     let ok = ref false in
                     for off = 0 to vcs - 1 do
                       if not !ok then
                         ok := try_alloc d ((fid + off) mod vcs) !rh_commit
                     done
                   end
                 in
                 match config.routing with
                 | Deterministic -> escape ()
                 | Adaptive ->
                     (* adaptive candidates: any minimal hop on an
                        adaptive VC, most credits first; an adaptive hop
                        resets the escape (dateline) state so a later
                        escape re-enters its ring fresh.  The scratch is
                        filled in the reverse of the old prepend order
                        and insertion-sorted stably by credits, which
                        reproduces the original list-and-stable-sort
                        candidate order exactly. *)
                     let adaptive_lo =
                       match fabric with Hypercube _ -> 1 | Torus _ -> 2
                     in
                     let m = ref 0 in
                     let add next =
                       let d = neighbor_idx u next in
                       let ow = owner.(u).(d) and cr = credits.(u).(d) in
                       for vc' = vcs - 1 downto adaptive_lo do
                         if ow.(vc') < 0 then begin
                           cand_cred.(!m) <- cr.(vc');
                           cand_d.(!m) <- d;
                           cand_vc.(!m) <- vc';
                           incr m
                         end
                       done
                     in
                     (match fabric with
                     | Hypercube dims ->
                         let diff = u lxor !pq_dest.(fid) in
                         for b = dims - 1 downto 0 do
                           if diff land (1 lsl b) <> 0 then
                             add (u lxor (1 lsl b))
                         done
                     | Torus { k; n = dims } ->
                         let dest = !pq_dest.(fid) in
                         let w = ref 1 in
                         for _j = 0 to dims - 1 do
                           let dj = u / !w mod k and tj = dest / !w mod k in
                           if dj <> tj then begin
                             let fwd = (tj - dj + k) mod k in
                             let go_plus = fwd <= k - fwd in
                             let next_digit =
                               if go_plus then (dj + 1) mod k
                               else (dj + k - 1) mod k
                             in
                             add (u + ((next_digit - dj) * !w))
                           end;
                           w := !w * k
                         done);
                     (* stable insertion sort, credits descending *)
                     for i = 1 to !m - 1 do
                       let c = cand_cred.(i)
                       and d = cand_d.(i)
                       and v' = cand_vc.(i) in
                       let j = ref (i - 1) in
                       while !j >= 0 && cand_cred.(!j) < c do
                         cand_cred.(!j + 1) <- cand_cred.(!j);
                         cand_d.(!j + 1) <- cand_d.(!j);
                         cand_vc.(!j + 1) <- cand_vc.(!j);
                         decr j
                       done;
                       cand_cred.(!j + 1) <- c;
                       cand_d.(!j + 1) <- d;
                       cand_vc.(!j + 1) <- v'
                     done;
                     let done_ = ref false in
                     let i = ref 0 in
                     while (not !done_) && !i < !m do
                       done_ := try_alloc cand_d.(!i) cand_vc.(!i) 2;
                       incr i
                     done;
                     if not !done_ then escape ()
               end);
              let r = routes_i.(vc) in
              if r >= 0 then begin
                let d = r / vcs and out_vc = r mod vcs in
                if used_stamp.(d) <> st && credits.(u).(d).(out_vc) > 0
                then begin
                  Int_ring.drop_front buf 1;
                  granted := true;
                  used_stamp.(d) <- st;
                  credits.(u).(d).(out_vc) <- credits.(u).(d).(out_vc) - 1;
                  let v = nbrs.(d) in
                  let lat = max 1 (link_latency u v) in
                  let v_in = back_idx.(u).(d) in
                  let ab = arrivals.((now + lat) land wheel_mask) in
                  Int_ring.push ab ((((v * max_inputs) + v_in) * vcs) + out_vc);
                  Int_ring.push ab fw;
                  (* return a credit upstream for the slot we vacated *)
                  if in_idx < deg then begin
                    let upstream = nbrs.(in_idx) in
                    let d_up = back_idx.(u).(in_idx) in
                    Int_ring.push
                      credit_returns.((now + max 1 (link_latency upstream u))
                                      land wheel_mask)
                      ((((upstream * max_deg) + d_up) * vcs) + vc)
                  end;
                  if fw land 1 <> 0 then begin
                    owner.(u).(d).(out_vc) <- -1;
                    routes_i.(vc) <- -1
                  end
                end
              end
            end
          end
        done
      done
    done
  done;
  {
    injected = !injected;
    delivered = !delivered;
    avg_latency = Histogram.mean hist;
    p50_latency = Histogram.percentile hist 50;
    p95_latency = Histogram.percentile hist 95;
    p99_latency = Histogram.percentile hist 99;
    max_latency = Histogram.max_value hist;
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
    latency_histogram = Histogram.to_pairs hist;
  }
