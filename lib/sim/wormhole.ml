open Mvl_topology
module Int_ring = Mvl_ring.Int_ring
module Barrier = Mvl_pool.Barrier
module Domain_pool = Mvl_pool.Domain_pool

type fabric = Hypercube of int | Torus of { k : int; n : int }

type routing = Deterministic | Adaptive

type config = {
  packet_len : int;
  vcs : int;
  buffer_depth : int;
  routing : routing;
  traffic : Traffic.t;
  offered_load : float;
  warmup : int;
  measure : int;
  drain : int;
  seed : int;
}

let default_config =
  {
    packet_len = 4;
    vcs = 2;
    buffer_depth = 4;
    routing = Deterministic;
    traffic = Traffic.Uniform;
    offered_load = 0.02;
    warmup = 500;
    measure = 2000;
    drain = 20000;
    seed = 1;
  }

type result = {
  injected : int;
  delivered : int;
  avg_latency : float;
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  throughput : float;
  undrained : int;
  latency_histogram : (int * int) array;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[delivered %d/%d, latency avg=%.1f p50=%d p95=%d p99=%d, \
     throughput=%.4f pkt/node/cyc%t@]"
    r.delivered r.injected r.avg_latency r.p50_latency r.p95_latency
    r.p99_latency r.throughput (fun ppf ->
      if r.undrained > 0 then Format.fprintf ppf ", UNDRAINED=%d" r.undrained)

let graph_of_fabric = function
  | Hypercube n -> Mvl_topology.Hypercube.create n
  | Torus { k; n } -> Kary_ncube.create ~k ~n

(* ------------------------------------------------------------------ *)

(* Like {!Network_sim}, the flit-level engine keeps its hot state in
   flat preallocated structures so the steady state allocates nothing:

   - packets are ids into structure-of-arrays fields ([pq_dest] /
     [pq_born] / dateline state); a flit is the packed word
     [(id lsl 2) lor (head lsl 1) lor tail], so every VC buffer is a
     monomorphic {!Int_ring} instead of a [flit Queue.t];
   - link arrivals and credit returns travel through power-of-two
     timing wheels (slot = [cycle land mask]) instead of per-cycle
     [Hashtbl]s of prepend-built lists.  Arrival buckets interleave
     (input address, flit) pairs and drain in push order — the FIFO
     order the old [List.rev] restored; credit increments commute, so
     their drain order is free;
   - the adaptive candidate scan fills scratch arrays and runs a stable
     insertion sort, reproducing [List.sort]'s (stable) most-credits
     order over the prepend-built candidate list exactly;
   - the per-router [out_used] set is a scratch array versioned by a
     generation counter, and upstream input indexes ([neighbor_idx])
     are precomputed instead of searched per credit event. *)

let run_serial config link_latency fabric graph =
  let n = Graph.n graph in
  let vcs = config.vcs in
  let rng = Rng.create ~seed:config.seed in
  let neighbors = Array.init n (fun u -> Graph.neighbors graph u) in
  let neighbor_idx u v =
    let arr = neighbors.(u) in
    let rec find i = if arr.(i) = v then i else find (i + 1) in
    find 0
  in
  (* back_idx.(u).(d): index of u among the neighbours of
     neighbors.(u).(d) — the upstream input a credit returns to *)
  let back_idx =
    Array.init n (fun u ->
        Array.map (fun v -> neighbor_idx v u) neighbors.(u))
  in
  let max_deg =
    Array.fold_left (fun m a -> max m (Array.length a)) 1 neighbors
  in
  let max_inputs = max_deg + 1 in
  (* packet store (structure of arrays); ids are never recycled, the
     arrays just double.  Tracked = [born >= warmup]. *)
  let pq_dest = ref (Array.make 1024 0) in
  let pq_born = ref (Array.make 1024 0) in
  let pq_class = ref (Array.make 1024 0) in
  let pq_dim = ref (Array.make 1024 0) in
  let next_packet_id = ref 0 in
  let new_packet ~dest ~born =
    let cap = Array.length !pq_dest in
    if !next_packet_id = cap then begin
      let g a =
        let a' = Array.make (cap * 2) 0 in
        Array.blit !a 0 a' 0 cap;
        a := a'
      in
      g pq_dest;
      g pq_born;
      g pq_class;
      g pq_dim
    end;
    let id = !next_packet_id in
    incr next_packet_id;
    !pq_dest.(id) <- dest;
    !pq_born.(id) <- born;
    !pq_class.(id) <- 0;
    !pq_dim.(id) <- -1;
    id
  in
  (* e-cube route for the packet at the head of an input VC; results
     land in scratch refs (next node, required vc or -1 for any) plus a
     pending dateline-class update applied only once the output VC is
     actually allocated, since allocation may be retried across
     cycles *)
  let rh_next = ref 0 and rh_want = ref (-1) in
  (* 0 = no state update (hypercube), 1 = torus escape, 2 = adaptive *)
  let rh_commit = ref 0 in
  let rh_dim = ref 0 and rh_class = ref 0 in
  let route_hop id u =
    match fabric with
    | Hypercube _ ->
        let diff = u lxor !pq_dest.(id) in
        let b =
          let rec lowest i =
            if diff land (1 lsl i) <> 0 then i else lowest (i + 1)
          in
          lowest 0
        in
        rh_next := u lxor (1 lsl b);
        rh_want := -1;
        rh_commit := 0
    | Torus { k; n = dims } ->
        let dest = !pq_dest.(id) in
        let j = ref 0 and w = ref 1 in
        while
          !j < dims && u / !w mod k = dest / !w mod k
        do
          incr j;
          w := !w * k
        done;
        if !j >= dims then invalid_arg "Wormhole: routing at destination";
        let du_j = u / !w mod k and dd_j = dest / !w mod k in
        let klass = if !j <> !pq_dim.(id) then 0 else !pq_class.(id) in
        let fwd = (dd_j - du_j + k) mod k in
        let go_plus = fwd <= k - fwd in
        let next_digit =
          if go_plus then (du_j + 1) mod k else (du_j + k - 1) mod k
        in
        let crosses =
          (go_plus && du_j = k - 1) || ((not go_plus) && du_j = 0)
        in
        rh_next := u + ((next_digit - du_j) * !w);
        rh_want := klass;
        rh_commit := 1;
        rh_dim := !j;
        rh_class := if crosses then 1 else klass
  in
  (* per node: inputs = in-neighbours (by index) plus one injection
     pseudo-input at index deg(u); a VC's buffered flits live in an
     int ring and its allocated route is [d * vcs + out_vc], -1 when
     unrouted *)
  let bufs =
    Array.init n (fun u ->
        Array.init
          (Array.length neighbors.(u) + 1)
          (fun _ -> Array.init vcs (fun _ -> Int_ring.create ())))
  in
  let route_of =
    Array.init n (fun u ->
        Array.init
          (Array.length neighbors.(u) + 1)
          (fun _ -> Array.make vcs (-1)))
  in
  let owner =
    Array.init n (fun u ->
        Array.init (Array.length neighbors.(u)) (fun _ ->
            Array.make vcs (-1)))
  in
  let credits =
    Array.init n (fun u ->
        Array.init (Array.length neighbors.(u)) (fun _ ->
            Array.make vcs config.buffer_depth))
  in
  (* timing wheels sized from the slowest link *)
  let max_lat = ref 1 in
  Graph.iter_edges graph (fun u v ->
      max_lat := max !max_lat (max 1 (link_latency u v));
      max_lat := max !max_lat (max 1 (link_latency v u)));
  let wheel_size =
    let c = ref 1 in
    while !c < !max_lat + 1 do
      c := !c * 2
    done;
    !c
  in
  let wheel_mask = wheel_size - 1 in
  (* arrival buckets interleave (address, flit) pairs where address =
     (v * max_inputs + in_idx) * vcs + vc; credit buckets hold
     (u * max_deg + d) * vcs + vc *)
  let arrivals = Array.init wheel_size (fun _ -> Int_ring.create ()) in
  let credit_returns =
    Array.init wheel_size (fun _ -> Int_ring.create ())
  in
  (* out_used scratch, versioned per router scan *)
  let used_stamp = Array.make max_deg 0 in
  let stamp = ref 0 in
  (* adaptive candidate scratch *)
  let cand_cred = Array.make (max_deg * vcs) 0 in
  let cand_d = Array.make (max_deg * vcs) 0 in
  let cand_vc = Array.make (max_deg * vcs) 0 in
  let horizon = config.warmup + config.measure + config.drain in
  let injected = ref 0 and delivered = ref 0 and pending = ref 0 in
  let hist = Histogram.create () in
  let rr = Array.make n 0 in
  for now = 0 to horizon - 1 do
    (* arrivals *)
    let ab = arrivals.(now land wheel_mask) in
    let n_arr = Int_ring.length ab / 2 in
    if n_arr > 0 then begin
      for i = 0 to n_arr - 1 do
        let addr = Int_ring.unsafe_get ab (2 * i) in
        let fw = Int_ring.unsafe_get ab ((2 * i) + 1) in
        let vc = addr mod vcs in
        let rest = addr / vcs in
        Int_ring.push bufs.(rest / max_inputs).(rest mod max_inputs).(vc) fw
      done;
      Int_ring.drop_front ab (2 * n_arr)
    end;
    let cb = credit_returns.(now land wheel_mask) in
    let n_cred = Int_ring.length cb in
    if n_cred > 0 then begin
      for i = 0 to n_cred - 1 do
        let addr = Int_ring.unsafe_get cb i in
        let vc = addr mod vcs in
        let rest = addr / vcs in
        let c = credits.(rest / max_deg).(rest mod max_deg) in
        c.(vc) <- c.(vc) + 1
      done;
      Int_ring.drop_front cb n_cred
    end;
    (* injection: whole packet enqueued flit by flit into the pseudo-input *)
    if now < config.warmup + config.measure then
      for src = 0 to n - 1 do
        if Rng.bool rng ~p:config.offered_load then begin
          let dest = Traffic.destination config.traffic rng ~n_nodes:n ~src in
          if now >= config.warmup then begin
            incr injected;
            incr pending
          end;
          let id = new_packet ~dest ~born:now in
          let inj = bufs.(src).(Array.length neighbors.(src)).(0) in
          for f = 0 to config.packet_len - 1 do
            Int_ring.push inj
              ((id lsl 2)
              lor (if f = 0 then 2 else 0)
              lor (if f = config.packet_len - 1 then 1 else 0))
          done
        end
      done;
    (* switching *)
    for u = 0 to n - 1 do
      let nbrs = neighbors.(u) in
      let deg = Array.length nbrs in
      let n_inputs = deg + 1 in
      incr stamp;
      let st = !stamp in
      let start = rr.(u) in
      rr.(u) <- (start + 1) mod n_inputs;
      for step = 0 to n_inputs - 1 do
        let in_idx = (start + step) mod n_inputs in
        let routes_i = route_of.(u).(in_idx) in
        let bufs_i = bufs.(u).(in_idx) in
        (* one flit per input per cycle: scan this input's VCs *)
        let granted = ref false in
        for vc = 0 to vcs - 1 do
          let buf = bufs_i.(vc) in
          if (not !granted) && Int_ring.length buf > 0 then begin
            let fw = Int_ring.unsafe_get buf 0 in
            let fid = fw lsr 2 in
            if !pq_dest.(fid) = u then begin
              (* ejection *)
              Int_ring.drop_front buf 1;
              granted := true;
              if in_idx < deg then begin
                let upstream = nbrs.(in_idx) in
                let d_up = back_idx.(u).(in_idx) in
                Int_ring.push
                  credit_returns.((now + max 1 (link_latency upstream u))
                                  land wheel_mask)
                  ((((upstream * max_deg) + d_up) * vcs) + vc)
              end;
              if fw land 1 <> 0 then begin
                routes_i.(vc) <- -1;
                if !pq_born.(fid) >= config.warmup then begin
                  incr delivered;
                  decr pending;
                  Histogram.add hist (now - !pq_born.(fid))
                end
              end
            end
            else begin
              (* route the head if not yet routed *)
              (if routes_i.(vc) < 0 && fw land 2 <> 0 then begin
                 let try_alloc d vc' commit =
                   if owner.(u).(d).(vc') < 0 then begin
                     owner.(u).(d).(vc') <- fid;
                     routes_i.(vc) <- (d * vcs) + vc';
                     (match commit with
                     | 0 -> ()
                     | 1 ->
                         !pq_dim.(fid) <- !rh_dim;
                         !pq_class.(fid) <- !rh_class
                     | _ ->
                         !pq_dim.(fid) <- -1;
                         !pq_class.(fid) <- 0);
                     true
                   end
                   else false
                 in
                 let escape () =
                   route_hop fid u;
                   let d = neighbor_idx u !rh_next in
                   (* under adaptive routing the hypercube escape lane is
                      pinned to VC 0 *)
                   let want_vc =
                     if config.routing = Adaptive && !rh_want < 0 then 0
                     else !rh_want
                   in
                   if want_vc >= 0 then
                     ignore (try_alloc d want_vc !rh_commit)
                   else begin
                     let ok = ref false in
                     for off = 0 to vcs - 1 do
                       if not !ok then
                         ok := try_alloc d ((fid + off) mod vcs) !rh_commit
                     done
                   end
                 in
                 match config.routing with
                 | Deterministic -> escape ()
                 | Adaptive ->
                     (* adaptive candidates: any minimal hop on an
                        adaptive VC, most credits first; an adaptive hop
                        resets the escape (dateline) state so a later
                        escape re-enters its ring fresh.  The scratch is
                        filled in the reverse of the old prepend order
                        and insertion-sorted stably by credits, which
                        reproduces the original list-and-stable-sort
                        candidate order exactly. *)
                     let adaptive_lo =
                       match fabric with Hypercube _ -> 1 | Torus _ -> 2
                     in
                     let m = ref 0 in
                     let add next =
                       let d = neighbor_idx u next in
                       let ow = owner.(u).(d) and cr = credits.(u).(d) in
                       for vc' = vcs - 1 downto adaptive_lo do
                         if ow.(vc') < 0 then begin
                           cand_cred.(!m) <- cr.(vc');
                           cand_d.(!m) <- d;
                           cand_vc.(!m) <- vc';
                           incr m
                         end
                       done
                     in
                     (match fabric with
                     | Hypercube dims ->
                         let diff = u lxor !pq_dest.(fid) in
                         for b = dims - 1 downto 0 do
                           if diff land (1 lsl b) <> 0 then
                             add (u lxor (1 lsl b))
                         done
                     | Torus { k; n = dims } ->
                         let dest = !pq_dest.(fid) in
                         let w = ref 1 in
                         for _j = 0 to dims - 1 do
                           let dj = u / !w mod k and tj = dest / !w mod k in
                           if dj <> tj then begin
                             let fwd = (tj - dj + k) mod k in
                             let go_plus = fwd <= k - fwd in
                             let next_digit =
                               if go_plus then (dj + 1) mod k
                               else (dj + k - 1) mod k
                             in
                             add (u + ((next_digit - dj) * !w))
                           end;
                           w := !w * k
                         done);
                     (* stable insertion sort, credits descending *)
                     for i = 1 to !m - 1 do
                       let c = cand_cred.(i)
                       and d = cand_d.(i)
                       and v' = cand_vc.(i) in
                       let j = ref (i - 1) in
                       while !j >= 0 && cand_cred.(!j) < c do
                         cand_cred.(!j + 1) <- cand_cred.(!j);
                         cand_d.(!j + 1) <- cand_d.(!j);
                         cand_vc.(!j + 1) <- cand_vc.(!j);
                         decr j
                       done;
                       cand_cred.(!j + 1) <- c;
                       cand_d.(!j + 1) <- d;
                       cand_vc.(!j + 1) <- v'
                     done;
                     let done_ = ref false in
                     let i = ref 0 in
                     while (not !done_) && !i < !m do
                       done_ := try_alloc cand_d.(!i) cand_vc.(!i) 2;
                       incr i
                     done;
                     if not !done_ then escape ()
               end);
              let r = routes_i.(vc) in
              if r >= 0 then begin
                let d = r / vcs and out_vc = r mod vcs in
                if used_stamp.(d) <> st && credits.(u).(d).(out_vc) > 0
                then begin
                  Int_ring.drop_front buf 1;
                  granted := true;
                  used_stamp.(d) <- st;
                  credits.(u).(d).(out_vc) <- credits.(u).(d).(out_vc) - 1;
                  let v = nbrs.(d) in
                  let lat = max 1 (link_latency u v) in
                  let v_in = back_idx.(u).(d) in
                  let ab = arrivals.((now + lat) land wheel_mask) in
                  Int_ring.push ab ((((v * max_inputs) + v_in) * vcs) + out_vc);
                  Int_ring.push ab fw;
                  (* return a credit upstream for the slot we vacated *)
                  if in_idx < deg then begin
                    let upstream = nbrs.(in_idx) in
                    let d_up = back_idx.(u).(in_idx) in
                    Int_ring.push
                      credit_returns.((now + max 1 (link_latency upstream u))
                                      land wheel_mask)
                      ((((upstream * max_deg) + d_up) * vcs) + vc)
                  end;
                  if fw land 1 <> 0 then begin
                    owner.(u).(d).(out_vc) <- -1;
                    routes_i.(vc) <- -1
                  end
                end
              end
            end
          end
        done
      done
    done
  done;
  {
    injected = !injected;
    delivered = !delivered;
    avg_latency = Histogram.mean hist;
    p50_latency = Histogram.percentile hist 50;
    p95_latency = Histogram.percentile hist 95;
    p99_latency = Histogram.percentile hist 99;
    max_latency = Histogram.max_value hist;
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
    undrained = !pending;
    latency_histogram = Histogram.to_pairs hist;
  }

(* Domain-sharded flit engine.  The phase/mailbox/barrier protocol is
   the one {!Network_sim.run_sharded} uses (DESIGN.md §11); the parts
   specific to wormhole flow control:

   - {e Replicated global packet ids.}  Unlike Network_sim's pids,
     wormhole packet ids are semantically load-bearing: the escape VC
     scan starts at [(id + off) mod vcs].  Every shard therefore replays
     the full injection loop (same replicated [Rng] stream) {e and}
     advances a replica of the global id counter for every injection
     network-wide, so a packet's [gid] is identical on every shard and
     to the serial engine's id.  The store index ([lid]) stays
     shard-local and recycles through a free list; [gid] rides in the
     store next to dest/born/class/dim.
   - {e Head-translated flit messages.}  A granted flit crosses shards
     as the 8-int message [lat, addr, flags, gid, dest, born, class,
     dim] (class/dim as committed when the route was allocated at the
     sender — final by grant time).  The receiver keeps a per-(input,
     vc) [cur_lid] map: a head flit allocates a fresh local store entry
     and records it at [addr]; body/tail flits reuse it.  This is sound
     because wormhole flits of one packet are contiguous per input VC —
     the output VC is owned by the packet from head to tail, so no other
     packet's flit can interleave at that address.
   - {e Credit messages} are 2-int [lat, addr] pairs; credit increments
     commute, so only their arrival cycle matters, never their order.
   - {e No early exit:} the serial engine runs the fixed horizon, so
     there is no stop vote — the second barrier per cycle only fences
     mailbox reuse. *)
let run_sharded ~shards config link_latency fabric graph =
  let n = Graph.n graph in
  let vcs = config.vcs in
  let neighbors = Array.init n (fun u -> Graph.neighbors graph u) in
  let neighbor_idx u v =
    let arr = neighbors.(u) in
    let rec find i = if arr.(i) = v then i else find (i + 1) in
    find 0
  in
  let back_idx =
    Array.init n (fun u -> Array.map (fun v -> neighbor_idx v u) neighbors.(u))
  in
  let max_deg =
    Array.fold_left (fun m a -> max m (Array.length a)) 1 neighbors
  in
  let max_inputs = max_deg + 1 in
  let max_lat = ref 1 in
  Graph.iter_edges graph (fun u v ->
      max_lat := max !max_lat (max 1 (link_latency u v));
      max_lat := max !max_lat (max 1 (link_latency v u)));
  let wheel_size =
    let c = ref 1 in
    while !c < !max_lat + 1 do
      c := !c * 2
    done;
    !c
  in
  let wheel_mask = wheel_size - 1 in
  let horizon = config.warmup + config.measure + config.drain in
  let owner_of = Sim_shard.owner_table ~n ~shards in
  (* flit mailboxes carry 8-int messages, credit mailboxes 2-int ones;
     mail.(s).(t) is written by shard s in phase 1 and drained by shard
     t in phase 2, with the barriers ordering every access *)
  let flit_mail =
    Array.init shards (fun _ -> Array.init shards (fun _ -> Int_ring.create ()))
  in
  let cred_mail =
    Array.init shards (fun _ -> Array.init shards (fun _ -> Int_ring.create ()))
  in
  let barrier = Barrier.create ~parties:shards in
  let sh_injected = Array.make shards 0 in
  let sh_delivered = Array.make shards 0 in
  let sh_undrained = Array.make shards 0 in
  let sh_hist = Array.init shards (fun _ -> Histogram.create ()) in
  let shard w =
    let lo, hi = Sim_shard.bounds ~n ~shards w in
    let own u = u >= lo && u < hi in
    let rng = Rng.create ~seed:config.seed in
    let flit_out = flit_mail.(w) and cred_out = cred_mail.(w) in
    (* local packet store: [lid] never leaves this shard, [gid] is the
       globally replicated serial packet id *)
    let pq_gid = ref (Array.make 1024 0) in
    let pq_dest = ref (Array.make 1024 0) in
    let pq_born = ref (Array.make 1024 0) in
    let pq_class = ref (Array.make 1024 0) in
    let pq_dim = ref (Array.make 1024 0) in
    let n_lids = ref 0 in
    let free = Int_ring.create () in
    let new_local ~gid ~dest ~born ~klass ~dim =
      let lid =
        if Int_ring.length free > 0 then Int_ring.pop free
        else begin
          let cap = Array.length !pq_dest in
          if !n_lids = cap then begin
            let g a =
              let a' = Array.make (cap * 2) 0 in
              Array.blit !a 0 a' 0 cap;
              a := a'
            in
            g pq_gid;
            g pq_dest;
            g pq_born;
            g pq_class;
            g pq_dim
          end;
          let l = !n_lids in
          incr n_lids;
          l
        end
      in
      !pq_gid.(lid) <- gid;
      !pq_dest.(lid) <- dest;
      !pq_born.(lid) <- born;
      !pq_class.(lid) <- klass;
      !pq_dim.(lid) <- dim;
      lid
    in
    (* the globally replicated packet id counter *)
    let next_gid = ref 0 in
    let rh_next = ref 0 and rh_want = ref (-1) in
    let rh_commit = ref 0 in
    let rh_dim = ref 0 and rh_class = ref 0 in
    let route_hop lid u =
      match fabric with
      | Hypercube _ ->
          let diff = u lxor !pq_dest.(lid) in
          let b =
            let rec lowest i =
              if diff land (1 lsl i) <> 0 then i else lowest (i + 1)
            in
            lowest 0
          in
          rh_next := u lxor (1 lsl b);
          rh_want := -1;
          rh_commit := 0
      | Torus { k; n = dims } ->
          let dest = !pq_dest.(lid) in
          let j = ref 0 and w = ref 1 in
          while !j < dims && u / !w mod k = dest / !w mod k do
            incr j;
            w := !w * k
          done;
          if !j >= dims then invalid_arg "Wormhole: routing at destination";
          let du_j = u / !w mod k and dd_j = dest / !w mod k in
          let klass = if !j <> !pq_dim.(lid) then 0 else !pq_class.(lid) in
          let fwd = (dd_j - du_j + k) mod k in
          let go_plus = fwd <= k - fwd in
          let next_digit =
            if go_plus then (du_j + 1) mod k else (du_j + k - 1) mod k
          in
          let crosses =
            (go_plus && du_j = k - 1) || ((not go_plus) && du_j = 0)
          in
          rh_next := u + ((next_digit - du_j) * !w);
          rh_want := klass;
          rh_commit := 1;
          rh_dim := !j;
          rh_class := if crosses then 1 else klass
    in
    (* per-router state for own routers only; foreign rows share dummies
       and are never touched *)
    let dummy_bufs = [||] and dummy_routes = [||] in
    let bufs =
      Array.init n (fun u ->
          if own u then
            Array.init
              (Array.length neighbors.(u) + 1)
              (fun _ -> Array.init vcs (fun _ -> Int_ring.create ()))
          else dummy_bufs)
    in
    let route_of =
      Array.init n (fun u ->
          if own u then
            Array.init
              (Array.length neighbors.(u) + 1)
              (fun _ -> Array.make vcs (-1))
          else dummy_routes)
    in
    let owner =
      Array.init n (fun u ->
          if own u then
            Array.init (Array.length neighbors.(u)) (fun _ ->
                Array.make vcs (-1))
          else dummy_routes)
    in
    let credits =
      Array.init n (fun u ->
          if own u then
            Array.init (Array.length neighbors.(u)) (fun _ ->
                Array.make vcs config.buffer_depth)
          else dummy_routes)
    in
    (* head-flit translation: cur_lid.(addr) = local id of the packet
       currently streaming through input address [addr] *)
    let cur_lid = Array.make (n * max_inputs * vcs) (-1) in
    let arrivals = Array.init wheel_size (fun _ -> Int_ring.create ()) in
    let credit_returns =
      Array.init wheel_size (fun _ -> Int_ring.create ())
    in
    let used_stamp = Array.make max_deg 0 in
    let stamp = ref 0 in
    let cand_cred = Array.make (max_deg * vcs) 0 in
    let cand_d = Array.make (max_deg * vcs) 0 in
    let cand_vc = Array.make (max_deg * vcs) 0 in
    let injected = ref 0 and delivered = ref 0 and pending = ref 0 in
    let hist = sh_hist.(w) in
    let rr = Array.make n 0 in
    (* a credit for the slot just vacated at (u, in_idx, vc); upstream
       may live on any shard, so it always travels as a message *)
    let return_credit u in_idx vc =
      let upstream = neighbors.(u).(in_idx) in
      let d_up = back_idx.(u).(in_idx) in
      let m = cred_out.(owner_of.(upstream)) in
      Int_ring.push m (max 1 (link_latency upstream u));
      Int_ring.push m ((((upstream * max_deg) + d_up) * vcs) + vc)
    in
    for now = 0 to horizon - 1 do
      (* phase 1: arrivals and credits for own routers *)
      let ab = arrivals.(now land wheel_mask) in
      let n_arr = Int_ring.length ab / 2 in
      if n_arr > 0 then begin
        for i = 0 to n_arr - 1 do
          let addr = Int_ring.unsafe_get ab (2 * i) in
          let fw = Int_ring.unsafe_get ab ((2 * i) + 1) in
          let vc = addr mod vcs in
          let rest = addr / vcs in
          Int_ring.push bufs.(rest / max_inputs).(rest mod max_inputs).(vc) fw
        done;
        Int_ring.drop_front ab (2 * n_arr)
      end;
      let cb = credit_returns.(now land wheel_mask) in
      let n_cred = Int_ring.length cb in
      if n_cred > 0 then begin
        for i = 0 to n_cred - 1 do
          let addr = Int_ring.unsafe_get cb i in
          let vc = addr mod vcs in
          let rest = addr / vcs in
          let c = credits.(rest / max_deg).(rest mod max_deg) in
          c.(vc) <- c.(vc) + 1
        done;
        Int_ring.drop_front cb n_cred
      end;
      (* replicated injection: every shard replays the full serial draw
         sequence and gid numbering, materializing only own sources *)
      if now < config.warmup + config.measure then
        for src = 0 to n - 1 do
          if Rng.bool rng ~p:config.offered_load then begin
            let dest =
              Traffic.destination config.traffic rng ~n_nodes:n ~src
            in
            let gid = !next_gid in
            incr next_gid;
            if own src then begin
              if now >= config.warmup then begin
                incr injected;
                incr pending
              end;
              let lid = new_local ~gid ~dest ~born:now ~klass:0 ~dim:(-1) in
              let inj = bufs.(src).(Array.length neighbors.(src)).(0) in
              for f = 0 to config.packet_len - 1 do
                Int_ring.push inj
                  ((lid lsl 2)
                  lor (if f = 0 then 2 else 0)
                  lor (if f = config.packet_len - 1 then 1 else 0))
              done
            end
          end
        done;
      (* switching own routers; grants and credits become messages *)
      for u = lo to hi - 1 do
        let nbrs = neighbors.(u) in
        let deg = Array.length nbrs in
        let n_inputs = deg + 1 in
        incr stamp;
        let st = !stamp in
        let start = rr.(u) in
        rr.(u) <- (start + 1) mod n_inputs;
        for step = 0 to n_inputs - 1 do
          let in_idx = (start + step) mod n_inputs in
          let routes_i = route_of.(u).(in_idx) in
          let bufs_i = bufs.(u).(in_idx) in
          let granted = ref false in
          for vc = 0 to vcs - 1 do
            let buf = bufs_i.(vc) in
            if (not !granted) && Int_ring.length buf > 0 then begin
              let fw = Int_ring.unsafe_get buf 0 in
              let lid = fw lsr 2 in
              if !pq_dest.(lid) = u then begin
                (* ejection *)
                Int_ring.drop_front buf 1;
                granted := true;
                if in_idx < deg then return_credit u in_idx vc;
                if fw land 1 <> 0 then begin
                  routes_i.(vc) <- -1;
                  if !pq_born.(lid) >= config.warmup then begin
                    incr delivered;
                    decr pending;
                    Histogram.add hist (now - !pq_born.(lid))
                  end;
                  Int_ring.push free lid
                end
              end
              else begin
                (if routes_i.(vc) < 0 && fw land 2 <> 0 then begin
                   let try_alloc d vc' commit =
                     if owner.(u).(d).(vc') < 0 then begin
                       owner.(u).(d).(vc') <- lid;
                       routes_i.(vc) <- (d * vcs) + vc';
                       (match commit with
                       | 0 -> ()
                       | 1 ->
                           !pq_dim.(lid) <- !rh_dim;
                           !pq_class.(lid) <- !rh_class
                       | _ ->
                           !pq_dim.(lid) <- -1;
                           !pq_class.(lid) <- 0);
                       true
                     end
                     else false
                   in
                   let escape () =
                     route_hop lid u;
                     let d = neighbor_idx u !rh_next in
                     let want_vc =
                       if config.routing = Adaptive && !rh_want < 0 then 0
                       else !rh_want
                     in
                     if want_vc >= 0 then
                       ignore (try_alloc d want_vc !rh_commit)
                     else begin
                       (* the escape scan starts at the packet id — the
                          replicated gid, never the local store index *)
                       let gid = !pq_gid.(lid) in
                       let ok = ref false in
                       for off = 0 to vcs - 1 do
                         if not !ok then
                           ok := try_alloc d ((gid + off) mod vcs) !rh_commit
                       done
                     end
                   in
                   match config.routing with
                   | Deterministic -> escape ()
                   | Adaptive ->
                       let adaptive_lo =
                         match fabric with Hypercube _ -> 1 | Torus _ -> 2
                       in
                       let m = ref 0 in
                       let add next =
                         let d = neighbor_idx u next in
                         let ow = owner.(u).(d) and cr = credits.(u).(d) in
                         for vc' = vcs - 1 downto adaptive_lo do
                           if ow.(vc') < 0 then begin
                             cand_cred.(!m) <- cr.(vc');
                             cand_d.(!m) <- d;
                             cand_vc.(!m) <- vc';
                             incr m
                           end
                         done
                       in
                       (match fabric with
                       | Hypercube dims ->
                           let diff = u lxor !pq_dest.(lid) in
                           for b = dims - 1 downto 0 do
                             if diff land (1 lsl b) <> 0 then
                               add (u lxor (1 lsl b))
                           done
                       | Torus { k; n = dims } ->
                           let dest = !pq_dest.(lid) in
                           let w = ref 1 in
                           for _j = 0 to dims - 1 do
                             let dj = u / !w mod k and tj = dest / !w mod k in
                             if dj <> tj then begin
                               let fwd = (tj - dj + k) mod k in
                               let go_plus = fwd <= k - fwd in
                               let next_digit =
                                 if go_plus then (dj + 1) mod k
                                 else (dj + k - 1) mod k
                               in
                               add (u + ((next_digit - dj) * !w))
                             end;
                             w := !w * k
                           done);
                       for i = 1 to !m - 1 do
                         let c = cand_cred.(i)
                         and d = cand_d.(i)
                         and v' = cand_vc.(i) in
                         let j = ref (i - 1) in
                         while !j >= 0 && cand_cred.(!j) < c do
                           cand_cred.(!j + 1) <- cand_cred.(!j);
                           cand_d.(!j + 1) <- cand_d.(!j);
                           cand_vc.(!j + 1) <- cand_vc.(!j);
                           decr j
                         done;
                         cand_cred.(!j + 1) <- c;
                         cand_d.(!j + 1) <- d;
                         cand_vc.(!j + 1) <- v'
                       done;
                       let done_ = ref false in
                       let i = ref 0 in
                       while (not !done_) && !i < !m do
                         done_ := try_alloc cand_d.(!i) cand_vc.(!i) 2;
                         incr i
                       done;
                       if not !done_ then escape ()
                 end);
                let r = routes_i.(vc) in
                if r >= 0 then begin
                  let d = r / vcs and out_vc = r mod vcs in
                  if used_stamp.(d) <> st && credits.(u).(d).(out_vc) > 0
                  then begin
                    Int_ring.drop_front buf 1;
                    granted := true;
                    used_stamp.(d) <- st;
                    credits.(u).(d).(out_vc) <- credits.(u).(d).(out_vc) - 1;
                    let v = nbrs.(d) in
                    let lat = max 1 (link_latency u v) in
                    let v_in = back_idx.(u).(d) in
                    (* the flit crosses shards as a full-metadata
                       message; for body/tail flits the receiver uses
                       only lat/addr/flags *)
                    let fm = flit_out.(owner_of.(v)) in
                    Int_ring.push fm lat;
                    Int_ring.push fm ((((v * max_inputs) + v_in) * vcs) + out_vc);
                    Int_ring.push fm (fw land 3);
                    Int_ring.push fm (!pq_gid.(lid));
                    Int_ring.push fm (!pq_dest.(lid));
                    Int_ring.push fm (!pq_born.(lid));
                    Int_ring.push fm (!pq_class.(lid));
                    Int_ring.push fm (!pq_dim.(lid));
                    if in_idx < deg then return_credit u in_idx vc;
                    if fw land 1 <> 0 then begin
                      owner.(u).(d).(out_vc) <- -1;
                      routes_i.(vc) <- -1;
                      (* the tail has left this shard: retire the local
                         store entry (the metadata now lives in the
                         message and, for earlier flits, downstream) *)
                      Int_ring.push free lid
                    end
                  end
                end
              end
            end
          done
        done
      done;
      Barrier.wait barrier;
      (* phase 2: drain inbound mailboxes in ascending source-shard
         order — concatenation equals the serial ascending-router push
         order, so arrival buckets fill exactly as in the serial engine;
         credit increments commute but ride the same protocol *)
      for s = 0 to shards - 1 do
        let fm = flit_mail.(s).(w) in
        let msgs = Int_ring.length fm / 8 in
        for i = 0 to msgs - 1 do
          let base = 8 * i in
          let lat = Int_ring.unsafe_get fm base in
          let addr = Int_ring.unsafe_get fm (base + 1) in
          let flags = Int_ring.unsafe_get fm (base + 2) in
          let lid =
            if flags land 2 <> 0 then begin
              (* head: allocate the local replica and bind the input
                 address to it until the tail passes *)
              let gid = Int_ring.unsafe_get fm (base + 3) in
              let dest = Int_ring.unsafe_get fm (base + 4) in
              let born = Int_ring.unsafe_get fm (base + 5) in
              let klass = Int_ring.unsafe_get fm (base + 6) in
              let dim = Int_ring.unsafe_get fm (base + 7) in
              let lid = new_local ~gid ~dest ~born ~klass ~dim in
              cur_lid.(addr) <- lid;
              lid
            end
            else cur_lid.(addr)
          in
          let ab = arrivals.((now + lat) land wheel_mask) in
          Int_ring.push ab addr;
          Int_ring.push ab ((lid lsl 2) lor flags)
        done;
        Int_ring.clear fm;
        let cm = cred_mail.(s).(w) in
        let creds = Int_ring.length cm / 2 in
        for i = 0 to creds - 1 do
          let lat = Int_ring.unsafe_get cm (2 * i) in
          let addr = Int_ring.unsafe_get cm ((2 * i) + 1) in
          Int_ring.push credit_returns.((now + lat) land wheel_mask) addr
        done;
        Int_ring.clear cm
      done;
      Barrier.wait barrier
    done;
    sh_injected.(w) <- !injected;
    sh_delivered.(w) <- !delivered;
    sh_undrained.(w) <- !pending
  in
  Domain_pool.gang ~workers:shards
    ~abort:(fun () -> Barrier.break barrier)
    shard;
  let injected = ref 0 and delivered = ref 0 and undrained = ref 0 in
  let hist = Histogram.create () in
  for s = 0 to shards - 1 do
    injected := !injected + sh_injected.(s);
    delivered := !delivered + sh_delivered.(s);
    undrained := !undrained + sh_undrained.(s);
    Histogram.merge_into ~into:hist sh_hist.(s)
  done;
  {
    injected = !injected;
    delivered = !delivered;
    avg_latency = Histogram.mean hist;
    p50_latency = Histogram.percentile hist 50;
    p95_latency = Histogram.percentile hist 95;
    p99_latency = Histogram.percentile hist 99;
    max_latency = Histogram.max_value hist;
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
    undrained = !undrained;
    latency_histogram = Histogram.to_pairs hist;
  }

let run ?(config = default_config) ?(link_latency = fun _ _ -> 1) ?jobs fabric =
  if config.packet_len < 1 then invalid_arg "Wormhole: packet_len < 1";
  if config.vcs < 1 then invalid_arg "Wormhole: vcs < 1";
  (match (fabric, config.routing) with
  | Torus _, Deterministic when config.vcs < 2 ->
      invalid_arg "Wormhole: tori need >= 2 virtual channels"
  | Torus _, Adaptive when config.vcs < 3 ->
      invalid_arg "Wormhole: adaptive tori need >= 3 virtual channels"
  | Hypercube _, Adaptive when config.vcs < 2 ->
      invalid_arg "Wormhole: adaptive hypercubes need >= 2 virtual channels"
  | _ -> ());
  let graph = graph_of_fabric fabric in
  let n = Graph.n graph in
  let shards = Sim_shard.shards ~jobs ~n in
  if shards <= 1 then run_serial config link_latency fabric graph
  else run_sharded ~shards config link_latency fabric graph
