(** Deterministic minimal routing tables.

    [next_hop t ~at ~dest] is the neighbour to forward to, chosen on a
    BFS-shortest path with a deterministic tie-break (prefer the
    lowest-latency outgoing link, then the lowest neighbour id), so the
    routing is oblivious and reproducible.  Tables are built per
    destination on demand and cached.

    Domain safety: the cache is mutex-guarded, so {!table} (and
    everything built on it) may be called concurrently from multiple
    domains; for a given destination every caller sees the same array.
    Tables are immutable after construction — share them freely. *)

open Mvl_topology

type t

val create : ?edge_cost:(int -> int -> int) -> Graph.t -> t
(** [edge_cost u v] breaks ties among hop-shortest paths (default:
    constant). *)

val next_hop : t -> at:int -> dest:int -> int
(** Raises [Invalid_argument] if [dest] is unreachable or
    [at = dest]. *)

val table : t -> int -> int array
(** [table t dest] is the per-node next-hop array towards [dest]
    ([-1] for [dest] itself and unreachable nodes), built on first use
    and cached.  Hot loops index it directly instead of paying
    {!next_hop}'s per-call table lookup. *)

val build : t -> int -> int array
(** [build t dest] computes a fresh next-hop array towards [dest]
    without consulting or populating the cache.  Use it to pre-build
    table sets in parallel (it is pure given an immutable graph and a
    thread-safe [edge_cost]) when the shared cache would serialize or
    retain more than needed. *)

val path : t -> src:int -> dest:int -> int list
(** The full node sequence, [src] and [dest] included. *)

val hops : t -> src:int -> dest:int -> int
