(** Monte-Carlo fault-tolerance analysis — the motivation behind the
    §5.3 augmented networks (folded hypercubes and enhanced cubes were
    proposed as fault-tolerant variants): how much connectivity do the
    extra links buy once links or nodes start failing? *)

open Mvl_topology

type stats = {
  connected_fraction : float;
      (** fraction of trials whose surviving graph stays connected *)
  avg_largest_component : float;
      (** mean size of the largest surviving component, as a fraction of
          the surviving nodes *)
  trials : int;
}

val edge_faults : Graph.t -> p_fail:float -> trials:int -> seed:int -> stats
(** Each edge fails independently with probability [p_fail]. *)

val node_faults : Graph.t -> p_fail:float -> trials:int -> seed:int -> stats
(** Each node fails independently (its edges disappear); connectivity is
    judged among the surviving nodes.  A trial that kills {e every}
    node counts as connected with a full component share — connectivity
    among zero survivors is vacuously true, so at [p_fail = 1.0] both
    statistics are exactly [1.0] rather than a 0/0 artifact. *)
