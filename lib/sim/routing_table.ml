open Mvl_topology

type t = {
  graph : Graph.t;
  edge_cost : int -> int -> int;
  (* dest -> per-node next hop towards dest; shared across domains, so
     every access goes through [lock] *)
  cache : (int, int array) Hashtbl.t;
  lock : Mutex.t;
}

let create ?(edge_cost = fun _ _ -> 0) graph =
  { graph; edge_cost; cache = Hashtbl.create 64; lock = Mutex.create () }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* build the next-hop array for one destination: BFS from [dest]; each
   node forwards to the predecessor that minimizes (cost, id) among
   neighbours one level closer to dest.  The (cost, id) minimum is
   tracked as two explicit ints — no tuple allocation or polymorphic
   comparison in the per-neighbor loop.  Pure given an immutable graph
   and a thread-safe [edge_cost], so it is safe to call from any
   domain. *)
let build t dest =
  let n = Graph.n t.graph in
  let dist = Graph.bfs_dist t.graph dest in
  let hop = Array.make n (-1) in
  for u = 0 to n - 1 do
    if u <> dest && dist.(u) < max_int then begin
      let best = ref (-1) and best_cost = ref max_int in
      Graph.iter_neighbors t.graph u (fun v ->
          if dist.(v) = dist.(u) - 1 then begin
            let c = t.edge_cost u v in
            (* lexicographic (cost, id) with the unset state folded in:
               best < 0 makes even a max_int-cost first candidate win,
               matching the old (max_int, max_int) sentinel pair *)
            if c < !best_cost || (c = !best_cost && (!best < 0 || v < !best))
            then begin
              best_cost := c;
              best := v
            end
          end);
      hop.(u) <- !best
    end
  done;
  hop

(* double-checked insert: build outside the lock (builds for the same
   dest are deterministic and identical, so a racing duplicate build is
   benign — the first insert wins and everyone returns that array) *)
let table t dest =
  match with_lock t (fun () -> Hashtbl.find_opt t.cache dest) with
  | Some h -> h
  | None ->
      let h = build t dest in
      with_lock t (fun () ->
          match Hashtbl.find_opt t.cache dest with
          | Some winner -> winner
          | None ->
              Hashtbl.add t.cache dest h;
              h)

let next_hop t ~at ~dest =
  if at = dest then invalid_arg "Routing_table.next_hop: already there";
  let hop = (table t dest).(at) in
  if hop < 0 then invalid_arg "Routing_table.next_hop: unreachable";
  hop

let path t ~src ~dest =
  let rec go acc at =
    if at = dest then List.rev (dest :: acc)
    else go (at :: acc) (next_hop t ~at ~dest)
  in
  if src = dest then [ src ] else go [] src

let hops t ~src ~dest = List.length (path t ~src ~dest) - 1
