type t = {
  mutable counts : int array; (* counts.(v) = observations of value v *)
  mutable max_v : int;        (* largest observed value; -1 when empty *)
  mutable count : int;
  mutable total : int;
}

let create ?(initial = 256) () =
  { counts = Array.make (max 1 initial) 0; max_v = -1; count = 0; total = 0 }

let add t v =
  if v < 0 then invalid_arg "Histogram.add: negative value";
  if v >= Array.length t.counts then begin
    let cap = ref (Array.length t.counts) in
    while v >= !cap do
      cap := !cap * 2
    done;
    let a = Array.make !cap 0 in
    Array.blit t.counts 0 a 0 (Array.length t.counts);
    t.counts <- a
  end;
  t.counts.(v) <- t.counts.(v) + 1;
  if v > t.max_v then t.max_v <- v;
  t.count <- t.count + 1;
  t.total <- t.total + v

let count t = t.count
let total t = t.total
let max_value t = if t.max_v < 0 then 0 else t.max_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.total /. float_of_int t.count

let percentile t p =
  (* a p outside [0, 100] used to be silently clamped (returning the
     minimum for negative p, the maximum above 100) — now rejected *)
  if p < 0 || p > 100 then invalid_arg "Histogram.percentile: p not in [0,100]";
  if t.count = 0 then 0
  else begin
    let idx = min (t.count - 1) (t.count * p / 100) in
    let v = ref 0 and cum = ref 0 in
    let rec find () =
      cum := !cum + t.counts.(!v);
      if !cum > idx then !v
      else begin
        incr v;
        find ()
      end
    in
    find ()
  end

let to_pairs t =
  let n = ref 0 in
  for v = 0 to t.max_v do
    if t.counts.(v) > 0 then incr n
  done;
  let out = Array.make (max 1 !n) (0, 0) in
  if !n = 0 then [||]
  else begin
    let i = ref 0 in
    for v = 0 to t.max_v do
      if t.counts.(v) > 0 then begin
        out.(!i) <- (v, t.counts.(v));
        incr i
      end
    done;
    out
  end

let merge_into ~into src =
  if src.max_v >= 0 then begin
    if src.max_v >= Array.length into.counts then begin
      let cap = ref (Array.length into.counts) in
      while src.max_v >= !cap do
        cap := !cap * 2
      done;
      let a = Array.make !cap 0 in
      Array.blit into.counts 0 a 0 (Array.length into.counts);
      into.counts <- a
    end;
    for v = 0 to src.max_v do
      let c = src.counts.(v) in
      if c > 0 then into.counts.(v) <- into.counts.(v) + c
    done;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    into.count <- into.count + src.count;
    into.total <- into.total + src.total
  end

let clear t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.max_v <- -1;
  t.count <- 0;
  t.total <- 0
