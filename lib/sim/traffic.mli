(** Synthetic traffic patterns, the standard suite for interconnection
    network evaluation.  A pattern maps a source to a destination; the
    permutation patterns assume node labels are bit strings of the
    network's label width. *)

type t =
  | Uniform          (** destination drawn uniformly (excluding self) *)
  | Transpose        (** swap the two halves of the label bits *)
  | Bit_reversal     (** reverse the label bits *)
  | Bit_complement   (** flip all label bits *)
  | Hotspot of int   (** all traffic to one node *)

val pp : Format.formatter -> t -> unit

val permute : t -> n_nodes:int -> src:int -> int
(** The raw deterministic map of a fixed pattern, before the
    self-destination fixup — a bijection on [[0, n_nodes)] for the
    permutation patterns, the constant [h] for [Hotspot h].

    Raises [Invalid_argument] for [Uniform] (not a deterministic map),
    for [src] outside [[0, n_nodes)], for a hotspot node outside
    [[0, n_nodes)], and (permutation patterns only) when [n_nodes] is
    not a power of two. *)

val destination : t -> Rng.t -> n_nodes:int -> src:int -> int
(** Picks a destination for [src].  For the permutation patterns
    [n_nodes] must be a power of two; a self-destination (possible for
    the fixed patterns) is mapped to [src + 1 mod n].

    Raises [Invalid_argument] for [Hotspot h] with [h] outside
    [[0, n_nodes)] — an out-of-range hotspot used to be silently
    wrapped by [mod], which even produced negative destinations for
    negative [h]. *)

val destinations : t -> n_nodes:int -> int array
(** Every destination {!destination} can ever return for this pattern
    and size, sorted ascending and duplicate-free: all of
    [[0, n_nodes)] for [Uniform]; the fixup-adjusted permutation image
    for the fixed patterns ([{h; (h+1) mod n}] for [Hotspot h]).  The
    sharded simulators pre-build exactly this set of routing tables
    before spawning domains.  Raises like {!destination} does, plus
    [Invalid_argument] when [n_nodes < 2]. *)
