(** Synthetic traffic patterns, the standard suite for interconnection
    network evaluation.  A pattern maps a source to a destination; the
    permutation patterns assume node labels are bit strings of the
    network's label width. *)

type t =
  | Uniform          (** destination drawn uniformly (excluding self) *)
  | Transpose        (** swap the two halves of the label bits *)
  | Bit_reversal     (** reverse the label bits *)
  | Bit_complement   (** flip all label bits *)
  | Hotspot of int   (** all traffic to one node *)
  | Tornado
      (** half-way around the label ring:
          [dst = (src + ceil(n/2) - 1) mod n] — the adversarial pattern
          for minimal ring/torus routing; any [n], not just powers of
          two *)
  | Bursty of { pattern : t; burst : int; duty_pct : int }
      (** the spatial [pattern] driven by a per-node two-state
          ON/OFF Markov process: mean ON dwell of [burst] cycles, ON
          for [duty_pct]% of cycles in steady state, injecting at
          [offered_load / duty] while ON so the long-run offered rate
          matches the steady pattern.  [pattern] must not itself be
          [Bursty]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Canonical spec-string form, accepted by {!of_string}: ["uniform"],
    ["transpose"], ["bit-reversal"], ["bit-complement"], ["tornado"],
    ["hotspot:3"], ["bursty:uniform:16:25"]
    (= [Bursty {pattern = Uniform; burst = 16; duty_pct = 25}]). *)

val of_string : string -> (t, string) result
(** Parses {!to_string}'s forms, case-insensitively.  Structural only —
    range errors (hotspot node, burst length, duty cycle) surface from
    {!destination}/{!injector} at use, where the network size is
    known. *)

val permute : t -> n_nodes:int -> src:int -> int
(** The raw deterministic map of a fixed pattern, before the
    self-destination fixup — a bijection on [[0, n_nodes)] for the
    permutation patterns, the constant [h] for [Hotspot h].

    Raises [Invalid_argument] for [Uniform] (not a deterministic map),
    for [src] outside [[0, n_nodes)], for a hotspot node outside
    [[0, n_nodes)], and (permutation patterns only) when [n_nodes] is
    not a power of two. *)

val destination : t -> Rng.t -> n_nodes:int -> src:int -> int
(** Picks a destination for [src].  For the permutation patterns
    [n_nodes] must be a power of two; a self-destination (possible for
    the fixed patterns) is mapped to [src + 1 mod n].

    Raises [Invalid_argument] for [Hotspot h] with [h] outside
    [[0, n_nodes)] — an out-of-range hotspot used to be silently
    wrapped by [mod], which even produced negative destinations for
    negative [h]. *)

val destinations : t -> n_nodes:int -> int array
(** Every destination {!destination} can ever return for this pattern
    and size, sorted ascending and duplicate-free: all of
    [[0, n_nodes)] for [Uniform]; the fixup-adjusted permutation image
    for the fixed patterns ([{h; (h+1) mod n}] for [Hotspot h]).  The
    sharded simulators pre-build exactly this set of routing tables
    before spawning domains.  [Bursty] delegates to its inner pattern
    (burstiness is temporal, not spatial).  Raises like {!destination}
    does, plus [Invalid_argument] when [n_nodes < 2]. *)

(* --- injection process ------------------------------------------------- *)

type injector
(** Per-cycle injection decisions for one pattern at one offered load:
    a constant Bernoulli draw for every pattern except [Bursty], whose
    nodes each run the ON/OFF Markov chain described above.  Holds the
    per-node ON/OFF state, so one injector serves exactly one
    simulation run. *)

val injector : t -> offered_load:float -> n_nodes:int -> Rng.t -> injector
(** Builds the process, drawing each node's initial ON/OFF state from
    its stationary distribution (one [Rng.bool ~p:duty] per node, in
    node order; no draws for non-bursty patterns).  A duty cycle of
    100% degenerates to the steady process.  Raises [Invalid_argument]
    for a nested [Bursty], [burst < 1], or [duty_pct] outside
    [[1, 100]]. *)

val inject : injector -> Rng.t -> src:int -> bool
(** Should [src] inject a packet this cycle?  Draw order per call is
    fixed (decision from the pre-transition state, then the state
    advance) — both simulator engines call this for {e every} source
    every cycle in source order, which is what keeps the sharded
    engine's replicated RNG streams byte-identical to the serial
    engine's. *)
