(* splitmix64, implemented on 32-bit halves held in native ints.  The
   obvious Int64 transcription boxes every intermediate value on
   non-flambda compilers, which made the generator the simulators'
   single largest allocation source; the half-word form is pure unboxed
   integer arithmetic.  The output stream is bit-identical to the Int64
   version — the reference-equivalence test in the suite pins every
   draw, and the golden-determinism tests pin the consumers. *)

type t = {
  mutable hi : int; (* high 32 bits of the state *)
  mutable lo : int; (* low 32 bits *)
  mutable zhi : int; (* halves of the last draw *)
  mutable zlo : int;
  (* memoized rejection threshold for [int] (bound 0 = empty) *)
  mutable memo_bound : int;
  mutable memo_thi : int;
  mutable memo_tlo : int;
}

let mask32 = 0xFFFFFFFF

let create ~seed =
  let s = Int64.of_int ((seed * 2) + 1) in
  {
    hi = Int64.to_int (Int64.logand (Int64.shift_right_logical s 32) 0xFFFFFFFFL);
    lo = Int64.to_int (Int64.logand s 0xFFFFFFFFL);
    zhi = 0;
    zlo = 0;
    memo_bound = 0;
    memo_thi = 0;
    memo_tlo = 0;
  }

(* One splitmix64 step; leaves the 64-bit draw in [t.zhi]/[t.zlo].
   The two 64x64->low-64 multiplies are done in 16-bit limbs so no
   intermediate product exceeds the native-int range. *)
let next t =
  (* state += 0x9E3779B97F4A7C15 *)
  let lo = t.lo + 0x7F4A7C15 in
  let hi = (t.hi + 0x9E3779B9 + (lo lsr 32)) land mask32 in
  let lo = lo land mask32 in
  t.hi <- hi;
  t.lo <- lo;
  (* z ^= z >>> 30 *)
  let zlo = lo lxor (((lo lsr 30) lor (hi lsl 2)) land mask32) in
  let zhi = hi lxor (hi lsr 30) in
  (* z *= 0xBF58476D1CE4E5B9 *)
  let a0 = zlo land 0xFFFF and a1 = zlo lsr 16 in
  let a2 = zhi land 0xFFFF and a3 = zhi lsr 16 in
  let r0 = a0 * 0xE5B9 in
  let r1 = (r0 lsr 16) + (a1 * 0xE5B9) + (a0 * 0x1CE4) in
  let r2 = (r1 lsr 16) + (a2 * 0xE5B9) + (a1 * 0x1CE4) + (a0 * 0x476D) in
  let r3 =
    (r2 lsr 16) + (a3 * 0xE5B9) + (a2 * 0x1CE4) + (a1 * 0x476D)
    + (a0 * 0xBF58)
  in
  let zlo = (r0 land 0xFFFF) lor ((r1 land 0xFFFF) lsl 16) in
  let zhi = (r2 land 0xFFFF) lor ((r3 land 0xFFFF) lsl 16) in
  (* z ^= z >>> 27 *)
  let zlo = zlo lxor (((zlo lsr 27) lor (zhi lsl 5)) land mask32) in
  let zhi = zhi lxor (zhi lsr 27) in
  (* z *= 0x94D049BB133111EB *)
  let a0 = zlo land 0xFFFF and a1 = zlo lsr 16 in
  let a2 = zhi land 0xFFFF and a3 = zhi lsr 16 in
  let r0 = a0 * 0x11EB in
  let r1 = (r0 lsr 16) + (a1 * 0x11EB) + (a0 * 0x1331) in
  let r2 = (r1 lsr 16) + (a2 * 0x11EB) + (a1 * 0x1331) + (a0 * 0x49BB) in
  let r3 =
    (r2 lsr 16) + (a3 * 0x11EB) + (a2 * 0x1331) + (a1 * 0x49BB)
    + (a0 * 0x94D0)
  in
  let zlo = (r0 land 0xFFFF) lor ((r1 land 0xFFFF) lsl 16) in
  let zhi = (r2 land 0xFFFF) lor ((r3 land 0xFFFF) lsl 16) in
  (* z ^= z >>> 31 *)
  t.zlo <- zlo lxor (((zlo lsr 31) lor (zhi lsl 1)) land mask32);
  t.zhi <- zhi lxor (zhi lsr 31)

(* Rejection sampling over the 63-bit draw: values above the largest
   multiple of [bound] are redrawn, so every residue is hit by exactly
   [2^63 / bound] raw values — the naive [rem] alone over-weights the
   low residues by one part in [2^63 / bound].  For powers of two the
   threshold is never exceeded and the stream matches the pre-fix one
   draw for draw. *)
let int t ~bound =
  if bound < 1 then invalid_arg "Rng.int: bound < 1";
  if bound <> t.memo_bound then begin
    (* number of raw values rejected: (2^63) mod b, computed without
       overflowing as ((2^63 - 1) mod b + 1) mod b *)
    let b = Int64.of_int bound in
    let excess = Int64.rem (Int64.add (Int64.rem Int64.max_int b) 1L) b in
    let th = Int64.sub Int64.max_int excess in
    t.memo_thi <- Int64.to_int (Int64.shift_right_logical th 32);
    t.memo_tlo <- Int64.to_int (Int64.logand th 0xFFFFFFFFL);
    t.memo_bound <- bound
  end;
  let thi = t.memo_thi and tlo = t.memo_tlo in
  let rec draw () =
    next t;
    let vhi = t.zhi land 0x7FFFFFFF in
    let vlo = t.zlo in
    if vhi < thi || (vhi = thi && vlo <= tlo) then
      if bound land (bound - 1) = 0 && bound <= 0x100000000 then
        (* power of two: the low bits are the residue *)
        vlo land (bound - 1)
      else if bound < 0x40000000 then
        (* (vhi * 2^32 + vlo) mod bound without leaving native ints:
           the partial product stays below bound * 2^32 < 2^62 *)
        (((vhi mod bound) * (0x100000000 mod bound)) + (vlo mod bound))
        mod bound
      else
        Int64.to_int
          (Int64.rem
             (Int64.logor
                (Int64.shift_left (Int64.of_int vhi) 32)
                (Int64.of_int vlo))
             (Int64.of_int bound))
    else draw ()
  in
  draw ()

let float t =
  next t;
  (* top 53 bits of the draw *)
  let bits = (t.zhi lsl 21) lor (t.zlo lsr 11) in
  float_of_int bits /. 9007199254740992.0 (* 2^53 *)

let bool t ~p = float t < p
