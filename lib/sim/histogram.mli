(** A dense counting histogram over small non-negative integers — the
    latency accumulator behind {!Network_sim} and {!Wormhole}.

    Observations index directly into a preallocated count array that
    doubles on demand, so recording a latency in the simulators' steady
    state touches one cell and allocates nothing (growth is amortized
    and stops once the largest latency has been seen).  Percentiles are
    computed by a cumulative walk and agree exactly with indexing into
    the sorted observation array, which is what the engines previously
    built per run. *)

type t

val create : ?initial:int -> unit -> t
(** [initial] is the starting capacity in distinct values (default
    256). *)

val add : t -> int -> unit
(** Record one observation.  Raises [Invalid_argument] on negative
    values. *)

val count : t -> int
(** Number of observations. *)

val total : t -> int
(** Sum of all observed values. *)

val mean : t -> float
(** [total / count]; 0 when empty. *)

val max_value : t -> int
(** Largest observed value; 0 when empty. *)

val percentile : t -> int -> int
(** [percentile t p] is the value at index [min (count-1) (count*p/100)]
    of the sorted observation multiset — identical to the historical
    [sorted_array.(count * p / 100)] convention; 0 when empty.  Raises
    [Invalid_argument] unless [0 <= p <= 100] (out-of-range [p] was
    previously clamped silently). *)

val to_pairs : t -> (int * int) array
(** [(value, count)] pairs in ascending value order, zero counts
    omitted. *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into src] adds every observation of [src] to [into]
    ([src] is unchanged).  Counting histograms make the merge exact:
    merging per-shard histograms in any order yields the same counts,
    totals and percentiles as recording all observations into one
    histogram — the property the domain-sharded simulators rely on. *)

val clear : t -> unit
(** Forget every observation (capacity kept). *)
