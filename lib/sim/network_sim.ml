open Mvl_topology
module Int_ring = Mvl_ring.Int_ring
module Barrier = Mvl_pool.Barrier
module Domain_pool = Mvl_pool.Domain_pool

type config = {
  traffic : Traffic.t;
  offered_load : float;
  warmup : int;
  measure : int;
  drain : int;
  seed : int;
  lookahead : int;
}

let default_config =
  {
    traffic = Traffic.Uniform;
    offered_load = 0.1;
    warmup = 500;
    measure = 2000;
    drain = 5000;
    seed = 1;
    lookahead = 8;
  }

type result = {
  injected : int;
  delivered : int;
  hop_total : int;
  avg_latency : float;
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  throughput : float;
  avg_hops : float;
  cycles : int;
  undrained : int;
  latency_histogram : (int * int) array;
}

let pp_result ppf r =
  Format.fprintf ppf
    "@[delivered %d/%d, latency avg=%.1f p50=%d p95=%d p99=%d max=%d, \
     throughput=%.4f, hops=%.2f%t@]"
    r.delivered r.injected r.avg_latency r.p50_latency r.p95_latency
    r.p99_latency r.max_latency r.throughput r.avg_hops (fun ppf ->
      if r.undrained > 0 then Format.fprintf ppf ", UNDRAINED=%d" r.undrained)

let link_latency_of_layout ?(units_per_cycle = 64) layout =
  let route = Mvl_routing.Route.of_layout layout in
  fun u v ->
    1 + (Mvl_routing.Route.edge_length route u v / max 1 units_per_cycle)

(* The engine is a cycle-driven loop over preallocated flat structures;
   per cycle it allocates nothing once the rings and the histogram have
   reached their high-water marks.  The semantics (and fixed-seed
   statistics) are bit-identical to the original list/Hashtbl engine —
   the golden-determinism tests pin that down.

   Layout of the hot state:

   - Packets live in structure-of-arrays form: a packet is an id [pid]
     indexed into [pk_born] / [pk_hops]; freed ids are recycled through
     a free list so the arrays stay dense.  Whether a packet is tracked
     is derived ([born >= warmup]) rather than stored.  Everywhere a
     packet travels it is the packed word [(pid lsl dshift) lor dest],
     so router queues and wheel buckets are monomorphic {!Int_ring}s —
     sequential integer streams with no pointer chasing and no write
     barrier.
   - Arrivals sit in a timing wheel of power-of-two size (slot =
     [cycle land wheel_mask]) instead of a per-cycle [Hashtbl]; each
     bucket interleaves (node, packed packet) pairs and drains in push
     order, exactly the FIFO order the old reversed association list
     produced.
   - Router queues replace the [q_front]/[q_back] list pair, with a
     [visible] counter marking how much of the queue corresponds to the
     old [q_front] (new arrivals land behind it and only become
     scannable once it empties).
   - Routing is a transposed table: [next_out.(u).(dest)], so one
     router's scan stays inside a single row (the per-destination
     arrays of {!Routing_table} would scatter it across as many arrays
     as there are destinations in the queue).  Columns fill lazily the
     first time a destination is drawn.
   - The per-router grant set is a node-indexed scratch array versioned
     by a generation counter, replacing the per-router-per-cycle
     [Hashtbl.create 8].
   - Delivered latencies accumulate into a dense {!Histogram} instead
     of an ever-growing list. *)
let run_serial config link_latency graph =
  let n = Graph.n graph in
  let rng = Rng.create ~seed:config.seed in
  let inj =
    Traffic.injector config.traffic ~offered_load:config.offered_load
      ~n_nodes:n rng
  in
  let routing = Routing_table.create ~edge_cost:link_latency graph in
  (* packed-word geometry: low [dshift] bits carry the destination *)
  let dshift =
    let b = ref 1 in
    while 1 lsl !b < n do
      incr b
    done;
    !b
  in
  let dmask = (1 lsl dshift) - 1 in
  (* transposed routing tables, filled lazily per destination *)
  let next_out = Array.init n (fun _ -> Array.make n (-1)) in
  let dest_built = Array.make n false in
  let ensure_dest dest =
    if not dest_built.(dest) then begin
      let tbl = Routing_table.table routing dest in
      for u = 0 to n - 1 do
        next_out.(u).(dest) <- tbl.(u)
      done;
      dest_built.(dest) <- true
    end
  in
  (* packet store (structure of arrays) + free-list recycling *)
  let pk_born = ref (Array.make 1024 0) in
  let pk_hops = ref (Array.make 1024 0) in
  let n_pids = ref 0 in
  let free = Int_ring.create () in
  let acquire ~dest ~born =
    ensure_dest dest;
    let pid =
      if Int_ring.length free > 0 then Int_ring.pop free
      else begin
        let cap = Array.length !pk_born in
        if !n_pids = cap then begin
          let born' = Array.make (cap * 2) 0 in
          let hops' = Array.make (cap * 2) 0 in
          Array.blit !pk_born 0 born' 0 cap;
          Array.blit !pk_hops 0 hops' 0 cap;
          pk_born := born';
          pk_hops := hops'
        end;
        let p = !n_pids in
        incr n_pids;
        p
      end
    in
    !pk_born.(pid) <- born;
    !pk_hops.(pid) <- 0;
    (pid lsl dshift) lor dest
  in
  (* timing wheel sized from the slowest link, rounded up to a power of
     two so the slot computation is a mask; each bucket holds
     interleaved (node, packed packet) pairs *)
  let max_lat = ref 1 in
  Graph.iter_edges graph (fun u v ->
      max_lat := max !max_lat (max 1 (link_latency u v));
      max_lat := max !max_lat (max 1 (link_latency v u)));
  let wheel_size =
    let c = ref 1 in
    while !c < !max_lat + 1 do
      c := !c * 2
    done;
    !c
  in
  let wheel_mask = wheel_size - 1 in
  let unit_latency = !max_lat = 1 in
  let bucket = Array.init wheel_size (fun _ -> Int_ring.create ()) in
  let in_flight = ref 0 in
  (* router queues; [visible.(u)] = the old q_front length *)
  let queue = Array.init n (fun _ -> Int_ring.create ()) in
  let visible = Array.make n 0 in
  (* grant scratch: output port [v] is taken in this scan iff
     [granted_gen.(v) = gen] *)
  let granted_gen = Array.make n 0 in
  let gen = ref 0 in
  (* scan decisions for the <= lookahead packets examined per router *)
  let keep = ref (Array.make 64 false) in
  let ensure_keep k =
    if k > Array.length !keep then begin
      let cap = ref (Array.length !keep) in
      while !cap < k do
        cap := !cap * 2
      done;
      keep := Array.make !cap false
    end
  in
  let horizon = config.warmup + config.measure + config.drain in
  let injected = ref 0 and delivered = ref 0 in
  let hist = Histogram.create () in
  let hop_total = ref 0 in
  let pending_tracked = ref 0 in
  let cycle = ref 0 in
  let continue = ref true in
  while !continue do
    let now = !cycle in
    (* arrivals land in router queues (or terminate) *)
    let b = bucket.(now land wheel_mask) in
    let landed = Int_ring.length b / 2 in
    if landed > 0 then begin
      in_flight := !in_flight - landed;
      let born_a = !pk_born and hops_a = !pk_hops in
      for i = 0 to landed - 1 do
        let node = Int_ring.unsafe_get b (2 * i) in
        let v = Int_ring.unsafe_get b ((2 * i) + 1) in
        if node = v land dmask then begin
          let pid = v lsr dshift in
          let born = Array.unsafe_get born_a pid in
          if born >= config.warmup then begin
            delivered := !delivered + 1;
            pending_tracked := !pending_tracked - 1;
            Histogram.add hist (now - born);
            hop_total := !hop_total + Array.unsafe_get hops_a pid
          end;
          Int_ring.push free pid
        end
        else Int_ring.push queue.(node) v
      done;
      Int_ring.drop_front b (2 * landed)
    end;
    (* injection *)
    if now < config.warmup + config.measure then
      for src = 0 to n - 1 do
        if Traffic.inject inj rng ~src then begin
          let dest =
            Traffic.destination config.traffic rng ~n_nodes:n ~src
          in
          if now >= config.warmup then begin
            injected := !injected + 1;
            pending_tracked := !pending_tracked + 1
          end;
          Int_ring.push queue.(src) (acquire ~dest ~born:now)
        end
      done;
    (* switching: scan each router's visible window up to the lookahead
       depth, granting at most one packet per output port *)
    let hops_a = !pk_hops in
    for u = 0 to n - 1 do
      let q = queue.(u) in
      if visible.(u) = 0 && Int_ring.length q > 0 then
        visible.(u) <- Int_ring.length q;
      let vis = visible.(u) in
      if vis > 0 then begin
        incr gen;
        let g = !gen in
        let k = if config.lookahead < vis then config.lookahead else vis in
        ensure_keep k;
        let keep = !keep in
        let row = Array.unsafe_get next_out u in
        let granted = ref 0 in
        (* pass 1: decide (and schedule) in queue order *)
        for i = 0 to k - 1 do
          let v = Int_ring.unsafe_get q i in
          let out = Array.unsafe_get row (v land dmask) in
          if out < 0 then invalid_arg "Network_sim.run: unreachable node";
          if Array.unsafe_get granted_gen out = g then
            Array.unsafe_set keep i true
          else begin
            Array.unsafe_set granted_gen out g;
            Array.unsafe_set keep i false;
            let pid = v lsr dshift in
            Array.unsafe_set hops_a pid (Array.unsafe_get hops_a pid + 1);
            let lat =
              if unit_latency then 1 else max 1 (link_latency u out)
            in
            let b = Array.unsafe_get bucket ((now + lat) land wheel_mask) in
            Int_ring.push b out;
            Int_ring.push b v;
            incr in_flight;
            granted := !granted + 1
          end
        done;
        if !granted > 0 then begin
          (* pass 2: right-align the kept packets inside the scanned
             prefix, then drop the vacated front slots *)
          let w = ref (k - 1) in
          for i = k - 1 downto 0 do
            if Array.unsafe_get keep i then begin
              if !w <> i then
                Int_ring.unsafe_set q !w (Int_ring.unsafe_get q i);
              decr w
            end
          done;
          Int_ring.drop_front q !granted;
          visible.(u) <- vis - !granted
        end
      end
    done;
    incr cycle;
    if !cycle >= horizon then continue := false
    else if
      !cycle >= config.warmup + config.measure
      && !pending_tracked = 0
      && !in_flight = 0
    then continue := false
  done;
  {
    injected = !injected;
    delivered = !delivered;
    hop_total = !hop_total;
    avg_latency = Histogram.mean hist;
    p50_latency = Histogram.percentile hist 50;
    p95_latency = Histogram.percentile hist 95;
    p99_latency = Histogram.percentile hist 99;
    max_latency = Histogram.max_value hist;
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
    avg_hops =
      (if !delivered = 0 then 0.0
       else float_of_int !hop_total /. float_of_int !delivered);
    cycles = !cycle;
    undrained = !pending_tracked;
    latency_histogram = Histogram.to_pairs hist;
  }

(* Domain-sharded engine: routers are partitioned into [shards]
   contiguous ranges, one domain each, advancing in barrier-phased
   lockstep (two barriers per cycle).  Stats are byte-identical to
   {!run_serial} for any shard count; DESIGN.md §11 gives the full
   argument.  The load-bearing pieces:

   - {e Replicated injection stream.}  Each shard holds its own [Rng]
     seeded with [config.seed] and replays the serial engine's entire
     per-cycle injection loop over all [n] sources — [Rng.bool] and the
     destination draw consume the same number of splitmix64 steps
     everywhere — but materializes packets only for sources it owns.
     Splitting one stream across shards is impossible (bounded draws use
     rejection sampling, so the positions a source consumes depend on
     every earlier draw), and per-shard [split_seed] streams would
     change the stats; replaying the one serial stream is what keeps
     them bit-identical.
   - {e Mailbox-routed grants.}  Phase 1: each shard drains its own
     wheel bucket, injects, and switches its own routers in ascending
     order; every grant (own-shard destinations included) is buffered as
     a 5-int message [lat, out, dest, born, hops] into the
     per-(src-shard, dst-shard) mailbox.  Phase 2 (after a barrier):
     each shard drains its inbound mailboxes in ascending source-shard
     order, transferring messages into its wheel.  Shard ranges ascend
     with the shard index, so (ascending shard, push order) concatenates
     to exactly the serial engine's ascending-router push order — wheel
     buckets fill in the serial order, so arrival processing, queue
     contents and every subsequent decision match cycle for cycle.
   - {e Local packet stores.}  Packet ids are shard-local (the packed
     word's pid field never crosses a shard boundary): the sender
     retires its pid when the grant becomes a message, the receiver
     acquires a fresh one on transfer.  Serial pid numbering differs,
     but pids are pure store indices — no decision ever reads one.
   - {e Stop votes.}  Each shard publishes its pending/in-flight counts
     (per-shard [pending] may go negative: injector and deliverer
     shards book the same packet asymmetrically — only the sum is
     meaningful) between the barriers; after the second barrier every
     shard sums the same arrays and reaches the same stop decision, so
     all shards run the same number of cycles as the serial engine. *)
let run_sharded ~shards config link_latency graph =
  let n = Graph.n graph in
  let dshift =
    let b = ref 1 in
    while 1 lsl !b < n do
      incr b
    done;
    !b
  in
  let dmask = (1 lsl dshift) - 1 in
  (* shared read-only routing matrix: the full destination set is known
     up front from the traffic pattern, so shards pre-build disjoint
     column slices before cycle 0 (first barrier publishes them) and the
     run itself never touches the Routing_table cache *)
  let routing = Routing_table.create ~edge_cost:link_latency graph in
  let dests = Traffic.destinations config.traffic ~n_nodes:n in
  let n_dests = Array.length dests in
  let next_out = Array.init n (fun _ -> Array.make n (-1)) in
  let max_lat = ref 1 in
  Graph.iter_edges graph (fun u v ->
      max_lat := max !max_lat (max 1 (link_latency u v));
      max_lat := max !max_lat (max 1 (link_latency v u)));
  let wheel_size =
    let c = ref 1 in
    while !c < !max_lat + 1 do
      c := !c * 2
    done;
    !c
  in
  let wheel_mask = wheel_size - 1 in
  let unit_latency = !max_lat = 1 in
  let horizon = config.warmup + config.measure + config.drain in
  let owner = Sim_shard.owner_table ~n ~shards in
  (* mail.(s).(t): written by shard s in phase 1, drained by shard t in
     phase 2; the barriers order every access *)
  let mail =
    Array.init shards (fun _ -> Array.init shards (fun _ -> Int_ring.create ()))
  in
  let barrier = Barrier.create ~parties:shards in
  (* stop votes: slot w written by shard w between the barriers, read
     by every shard after the second one *)
  let vote_pending = Array.make shards 0 in
  let vote_in_flight = Array.make shards 0 in
  (* per-shard results, merged after the join *)
  let sh_injected = Array.make shards 0 in
  let sh_delivered = Array.make shards 0 in
  let sh_hop_total = Array.make shards 0 in
  let sh_undrained = Array.make shards 0 in
  let sh_cycles = Array.make shards 0 in
  let sh_hist = Array.init shards (fun _ -> Histogram.create ()) in
  let shard w =
    let lo, hi = Sim_shard.bounds ~n ~shards w in
    let rng = Rng.create ~seed:config.seed in
    (* every shard replicates the full injection process (init draws
       included) so the per-shard streams stay byte-identical to the
       serial engine's *)
    let inj =
      Traffic.injector config.traffic ~offered_load:config.offered_load
        ~n_nodes:n rng
    in
    let mail_out = mail.(w) in
    (* local packet store — pids never leave this shard *)
    let pk_born = ref (Array.make 1024 0) in
    let pk_hops = ref (Array.make 1024 0) in
    let n_pids = ref 0 in
    let free = Int_ring.create () in
    let acquire ~dest ~born ~hops =
      let pid =
        if Int_ring.length free > 0 then Int_ring.pop free
        else begin
          let cap = Array.length !pk_born in
          if !n_pids = cap then begin
            let born' = Array.make (cap * 2) 0 in
            let hops' = Array.make (cap * 2) 0 in
            Array.blit !pk_born 0 born' 0 cap;
            Array.blit !pk_hops 0 hops' 0 cap;
            pk_born := born';
            pk_hops := hops'
          end;
          let p = !n_pids in
          incr n_pids;
          p
        end
      in
      !pk_born.(pid) <- born;
      !pk_hops.(pid) <- hops;
      (pid lsl dshift) lor dest
    in
    let bucket = Array.init wheel_size (fun _ -> Int_ring.create ()) in
    let in_flight = ref 0 in
    (* only own rows are ever touched; foreign slots share one dummy *)
    let dummy = Int_ring.create () in
    let queue =
      Array.init n (fun u ->
          if u >= lo && u < hi then Int_ring.create () else dummy)
    in
    let visible = Array.make n 0 in
    let granted_gen = Array.make n 0 in
    let gen = ref 0 in
    let keep = ref (Array.make 64 false) in
    let ensure_keep k =
      if k > Array.length !keep then begin
        let cap = ref (Array.length !keep) in
        while !cap < k do
          cap := !cap * 2
        done;
        keep := Array.make !cap false
      end
    in
    let injected = ref 0 and delivered = ref 0 in
    let hist = sh_hist.(w) in
    let hop_total = ref 0 in
    let pending_tracked = ref 0 in
    let cycle = ref 0 in
    let continue = ref true in
    (* pre-build this shard's slice of the shared routing matrix:
       disjoint (u, dest) cells per shard, published by the barrier *)
    let dlo = w * n_dests / shards and dhi = (w + 1) * n_dests / shards in
    for i = dlo to dhi - 1 do
      let dest = dests.(i) in
      let tbl = Routing_table.build routing dest in
      for u = 0 to n - 1 do
        next_out.(u).(dest) <- tbl.(u)
      done
    done;
    Barrier.wait barrier;
    while !continue do
      let now = !cycle in
      (* phase 1: arrivals at own routers *)
      let b = bucket.(now land wheel_mask) in
      let landed = Int_ring.length b / 2 in
      if landed > 0 then begin
        in_flight := !in_flight - landed;
        let born_a = !pk_born and hops_a = !pk_hops in
        for i = 0 to landed - 1 do
          let node = Int_ring.unsafe_get b (2 * i) in
          let v = Int_ring.unsafe_get b ((2 * i) + 1) in
          if node = v land dmask then begin
            let pid = v lsr dshift in
            let born = Array.unsafe_get born_a pid in
            if born >= config.warmup then begin
              delivered := !delivered + 1;
              pending_tracked := !pending_tracked - 1;
              Histogram.add hist (now - born);
              hop_total := !hop_total + Array.unsafe_get hops_a pid
            end;
            Int_ring.push free pid
          end
          else Int_ring.push queue.(node) v
        done;
        Int_ring.drop_front b (2 * landed)
      end;
      (* replicated injection: every shard replays the full serial draw
         sequence, materializing only its own sources *)
      if now < config.warmup + config.measure then
        for src = 0 to n - 1 do
          if Traffic.inject inj rng ~src then begin
            let dest =
              Traffic.destination config.traffic rng ~n_nodes:n ~src
            in
            if src >= lo && src < hi then begin
              if now >= config.warmup then begin
                injected := !injected + 1;
                pending_tracked := !pending_tracked + 1
              end;
              Int_ring.push queue.(src) (acquire ~dest ~born:now ~hops:0)
            end
          end
        done;
      (* switching own routers; grants become mailbox messages *)
      let hops_a = !pk_hops in
      for u = lo to hi - 1 do
        let q = queue.(u) in
        if visible.(u) = 0 && Int_ring.length q > 0 then
          visible.(u) <- Int_ring.length q;
        let vis = visible.(u) in
        if vis > 0 then begin
          incr gen;
          let g = !gen in
          let k = if config.lookahead < vis then config.lookahead else vis in
          ensure_keep k;
          let keep = !keep in
          let row = Array.unsafe_get next_out u in
          let granted = ref 0 in
          for i = 0 to k - 1 do
            let v = Int_ring.unsafe_get q i in
            let out = Array.unsafe_get row (v land dmask) in
            if out < 0 then invalid_arg "Network_sim.run: unreachable node";
            if Array.unsafe_get granted_gen out = g then
              Array.unsafe_set keep i true
            else begin
              Array.unsafe_set granted_gen out g;
              Array.unsafe_set keep i false;
              let pid = v lsr dshift in
              let hops = Array.unsafe_get hops_a pid + 1 in
              let lat =
                if unit_latency then 1 else max 1 (link_latency u out)
              in
              (* the grant leaves this shard as a message; the local pid
                 retires (data travels in the message, and the receiver
                 acquires a pid of its own) *)
              let m = Array.unsafe_get mail_out (Array.unsafe_get owner out) in
              Int_ring.push m lat;
              Int_ring.push m out;
              Int_ring.push m (v land dmask);
              Int_ring.push m (Array.unsafe_get !pk_born pid);
              Int_ring.push m hops;
              Int_ring.push free pid;
              granted := !granted + 1
            end
          done;
          if !granted > 0 then begin
            let w' = ref (k - 1) in
            for i = k - 1 downto 0 do
              if Array.unsafe_get keep i then begin
                if !w' <> i then
                  Int_ring.unsafe_set q !w' (Int_ring.unsafe_get q i);
                decr w'
              end
            done;
            Int_ring.drop_front q !granted;
            visible.(u) <- vis - !granted
          end
        end
      done;
      Barrier.wait barrier;
      (* phase 2: drain inbound mailboxes in ascending source-shard
         order — concatenation equals the serial ascending-router push
         order, so wheel buckets fill exactly as in the serial engine *)
      for s = 0 to shards - 1 do
        let m = mail.(s).(w) in
        let msgs = Int_ring.length m / 5 in
        for i = 0 to msgs - 1 do
          let base = 5 * i in
          let lat = Int_ring.unsafe_get m base in
          let out = Int_ring.unsafe_get m (base + 1) in
          let dest = Int_ring.unsafe_get m (base + 2) in
          let born = Int_ring.unsafe_get m (base + 3) in
          let hops = Int_ring.unsafe_get m (base + 4) in
          let b = Array.unsafe_get bucket ((now + lat) land wheel_mask) in
          Int_ring.push b out;
          Int_ring.push b (acquire ~dest ~born ~hops);
          incr in_flight
        done;
        Int_ring.clear m
      done;
      vote_pending.(w) <- !pending_tracked;
      vote_in_flight.(w) <- !in_flight;
      Barrier.wait barrier;
      incr cycle;
      if !cycle >= horizon then continue := false
      else if !cycle >= config.warmup + config.measure then begin
        let p = ref 0 and f = ref 0 in
        for s = 0 to shards - 1 do
          p := !p + vote_pending.(s);
          f := !f + vote_in_flight.(s)
        done;
        if !p = 0 && !f = 0 then continue := false
      end
    done;
    sh_injected.(w) <- !injected;
    sh_delivered.(w) <- !delivered;
    sh_hop_total.(w) <- !hop_total;
    sh_undrained.(w) <- !pending_tracked;
    sh_cycles.(w) <- !cycle
  in
  Domain_pool.gang ~workers:shards
    ~abort:(fun () -> Barrier.break barrier)
    shard;
  let injected = ref 0
  and delivered = ref 0
  and hop_total = ref 0
  and undrained = ref 0 in
  let hist = Histogram.create () in
  for s = 0 to shards - 1 do
    injected := !injected + sh_injected.(s);
    delivered := !delivered + sh_delivered.(s);
    hop_total := !hop_total + sh_hop_total.(s);
    undrained := !undrained + sh_undrained.(s);
    Histogram.merge_into ~into:hist sh_hist.(s)
  done;
  {
    injected = !injected;
    delivered = !delivered;
    hop_total = !hop_total;
    avg_latency = Histogram.mean hist;
    p50_latency = Histogram.percentile hist 50;
    p95_latency = Histogram.percentile hist 95;
    p99_latency = Histogram.percentile hist 99;
    max_latency = Histogram.max_value hist;
    throughput =
      float_of_int !delivered /. float_of_int (n * max 1 config.measure);
    avg_hops =
      (if !delivered = 0 then 0.0
       else float_of_int !hop_total /. float_of_int !delivered);
    cycles = sh_cycles.(0);
    undrained = !undrained;
    latency_histogram = Histogram.to_pairs hist;
  }

let run ?(config = default_config) ?(link_latency = fun _ _ -> 1) ?jobs graph =
  let n = Graph.n graph in
  if n < 2 then invalid_arg "Network_sim.run: need at least 2 nodes";
  let shards = Sim_shard.shards ~jobs ~n in
  if shards <= 1 then run_serial config link_latency graph
  else run_sharded ~shards config link_latency graph

let saturation_throughput ?(config = default_config) ?link_latency graph =
  let cfg = { config with offered_load = 0.95 } in
  (run ~config:cfg ?link_latency graph).throughput

let zero_load_latency ?(samples = 64) ?(link_latency = fun _ _ -> 1) graph =
  let n = Graph.n graph in
  let routing = Routing_table.create ~edge_cost:link_latency graph in
  let rng = Rng.create ~seed:7 in
  let total = ref 0 and count = ref 0 in
  for _ = 1 to samples do
    let src = Rng.int rng ~bound:n in
    let dest = Rng.int rng ~bound:n in
    if src <> dest then begin
      let path = Routing_table.path routing ~src ~dest in
      let rec walk = function
        | a :: (b :: _ as rest) ->
            total := !total + max 1 (link_latency a b);
            walk rest
        | _ -> ()
      in
      walk path;
      count := !count + 1
    end
  done;
  if !count = 0 then 0.0 else float_of_int !total /. float_of_int !count
