(** Small deterministic PRNG (splitmix64) so simulations are exactly
    reproducible across runs and platforms. *)

type t

val create : seed:int -> t
val int : t -> bound:int -> int
(** Exactly uniform in [0, bound); [bound >= 1].  Uses rejection
    sampling over the generator's 63-bit draw: raw values above the
    largest multiple of [bound] are discarded and redrawn, so every
    result is hit by exactly [floor(2^63 / bound)] raw values — no
    modulo bias.  For power-of-two bounds no draw is ever rejected and
    the stream is identical to plain masking; for other bounds the
    rejection probability is below [bound / 2^63] per draw, so the
    expected cost stays one draw. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)
