(** A cycle-driven interconnection-network simulator with layout-derived
    link latencies.

    Model: single-flit packets, oblivious minimal routing
    ({!Routing_table}), one shared FIFO per router with per-output
    crossbar arbitration (one grant per output port per cycle, router
    lookahead bounded), and pipelined links — a packet granted output
    [u -> v] at cycle [c] arrives at [v] at [c + link_latency u v].

    The link latency hook is where the paper's geometry enters: feeding
    wire lengths from a realized layout makes an [L]-layer network
    measurably faster than its 2-layer twin at identical topology. *)

open Mvl_topology

type config = {
  traffic : Traffic.t;
  offered_load : float;   (** injection probability per node per cycle *)
  warmup : int;           (** cycles before measurement starts *)
  measure : int;          (** cycles during which injections are tracked *)
  drain : int;            (** extra cycles to let tracked packets finish *)
  seed : int;
  lookahead : int;        (** how deep the router scans its queue *)
}

val default_config : config
(** uniform traffic, load 0.1, warmup 500, measure 2000, drain 5000,
    seed 1, lookahead 8. *)

type result = {
  injected : int;         (** tracked packets injected *)
  delivered : int;        (** tracked packets delivered *)
  hop_total : int;        (** hops summed over delivered tracked packets *)
  avg_latency : float;    (** cycles, over delivered tracked packets *)
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  throughput : float;     (** delivered / (nodes * measure) *)
  avg_hops : float;
  cycles : int;           (** simulated cycles until the run stopped *)
  undrained : int;
      (** tracked packets still in the network when the run stopped —
          nonzero only when the [warmup+measure+drain] horizon expired
          before the network drained (always [injected - delivered]);
          these packets used to vanish from the stats silently *)
  latency_histogram : (int * int) array;
      (** [(latency, delivered count)] in ascending latency order — the
          full delivered-latency distribution the percentiles are read
          from *)
}

val pp_result : Format.formatter -> result -> unit

val run :
  ?config:config ->
  ?link_latency:(int -> int -> int) ->
  ?jobs:int ->
  Graph.t ->
  result
(** [run graph] simulates the network.  [link_latency u v] is in cycles
    (default 1 everywhere); it must be symmetric and >= 1 — and, when
    [jobs > 1], callable from multiple domains at once (pure functions
    and {!link_latency_of_layout} closures qualify).

    [jobs] shards the routers across that many domains (capped at the
    node count) advancing in barrier-phased lockstep; the result is
    byte-identical to the serial engine for every [jobs] value — same
    counts, percentiles and histogram, enforced by the parity tests.
    Omitted, [<= 1], or under [MVL_FORCE_FORK=1] (domains would
    permanently disable the fork backend) the serial engine runs and no
    domain is spawned. *)

val link_latency_of_layout :
  ?units_per_cycle:int -> Mvl_layout.Layout.t -> int -> int -> int
(** Latency hook derived from a realized layout: [1 + len(u,v) /
    units_per_cycle] cycles (default 64 grid units per cycle). *)

val saturation_throughput :
  ?config:config -> ?link_latency:(int -> int -> int) -> Graph.t -> float
(** Delivered throughput (packets/node/cycle) under saturating injection
    (offered load 0.95): the network's capacity limit, bounded above by
    [2 B / N] for bisection width [B] under uniform traffic. *)

val zero_load_latency :
  ?samples:int ->
  ?link_latency:(int -> int -> int) ->
  Graph.t ->
  float
(** Mean uncontended packet latency over sampled source/destination
    pairs (hops + link latencies along the routed path). *)
