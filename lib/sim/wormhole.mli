(** Flit-level wormhole simulation with virtual channels and credit
    flow control — the classic Dally router model, complementing the
    packet-level {!Network_sim}.

    Supported fabrics: binary hypercubes and [k]-ary [n]-cubes with
    deterministic e-cube (dimension-order) routing; tori use the
    dateline virtual-channel scheme (packets switch from VC 0 to VC 1
    after crossing a ring's wrap link), which makes the routing
    provably deadlock-free.  Links are pipelined with configurable
    latency (feed {!Network_sim.link_latency_of_layout} to tie
    performance to a realized layout); credits return with the same
    latency. *)

type fabric =
  | Hypercube of int            (** dimensions *)
  | Torus of { k : int; n : int }

type routing =
  | Deterministic
      (** pure e-cube: every hop follows dimension order *)
  | Adaptive
      (** Duato minimal-adaptive: any productive hop on the adaptive
          VCs, with the e-cube channels as the deadlock-free escape
          sub-network.  Hypercubes need [vcs >= 2]; tori [vcs >= 3]
          (two escape dateline classes + adaptive). *)

type config = {
  packet_len : int;      (** flits per packet, >= 1 *)
  vcs : int;             (** virtual channels per link (>= 2 for tori) *)
  buffer_depth : int;    (** flits of buffering per VC *)
  routing : routing;
  traffic : Traffic.t;
  offered_load : float;  (** packet injection probability/node/cycle *)
  warmup : int;
  measure : int;
  drain : int;
  seed : int;
}

val default_config : config
(** 4-flit packets, 2 VCs, depth 4, deterministic routing, uniform
    traffic, load 0.02. *)

type result = {
  injected : int;
  delivered : int;
  avg_latency : float;   (** head injection to tail ejection, cycles *)
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  throughput : float;    (** delivered packets / (nodes * measure) *)
  undrained : int;
      (** tracked packets still in the network at the horizon (always
          [injected - delivered]); these used to vanish from the stats
          silently *)
  latency_histogram : (int * int) array;
      (** [(latency, count)] in ascending latency order *)
}

val pp_result : Format.formatter -> result -> unit

val run :
  ?config:config ->
  ?link_latency:(int -> int -> int) ->
  ?jobs:int ->
  fabric ->
  result
(** Simulates the fabric; raises [Invalid_argument] for a torus with
    fewer than 2 VCs.

    [jobs] shards the routers across that many domains (capped at the
    node count) in barrier-phased lockstep, byte-identical to the
    serial engine for every value — see {!Network_sim.run}; omitted,
    [<= 1], or under [MVL_FORCE_FORK=1] the serial engine runs and no
    domain is spawned.  A [link_latency] used with [jobs > 1] must be
    callable from multiple domains at once. *)

val graph_of_fabric : fabric -> Mvl_topology.Graph.t
