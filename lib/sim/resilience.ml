open Mvl_topology

type stats = {
  connected_fraction : float;
  avg_largest_component : float;
  trials : int;
}

(* BFS over the surviving subgraph; returns (largest component size,
   surviving node count, connected?) *)
let survey graph ~edge_alive ~node_alive =
  let n = Graph.n graph in
  let visited = Array.make n false in
  let survivors = ref 0 in
  for u = 0 to n - 1 do
    if node_alive u then incr survivors
  done;
  let largest = ref 0 and components = ref 0 in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    if node_alive s && not visited.(s) then begin
      incr components;
      let size = ref 0 in
      visited.(s) <- true;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        incr size;
        Graph.iter_neighbors graph u (fun v ->
            if node_alive v && (not visited.(v)) && edge_alive u v then begin
              visited.(v) <- true;
              Queue.add v queue
            end)
      done;
      if !size > !largest then largest := !size
    end
  done;
  (!largest, !survivors, !components <= 1)

let run graph ~p_fail ~trials ~seed ~mode =
  if p_fail < 0.0 || p_fail > 1.0 then invalid_arg "Resilience: p_fail";
  if trials < 1 then invalid_arg "Resilience: trials";
  let rng = Rng.create ~seed in
  let n = Graph.n graph in
  let connected = ref 0 and component_share = ref 0.0 in
  for _ = 1 to trials do
    match mode with
    | `Edges ->
        (* sample failed edges into a hash set, keyed [min * n + max]:
           the lookup below normalizes its query the same way, so an
           unnormalized insertion would never be found again and the
           edge would be silently immortal (Graph.of_edges happens to
           emit normalized pairs today — this must not depend on it) *)
        let failed = Hashtbl.create 64 in
        let pack u v = (min u v * n) + max u v in
        Graph.iter_edges graph (fun u v ->
            assert (u <> v);
            if Rng.bool rng ~p:p_fail then Hashtbl.replace failed (pack u v) ());
        let edge_alive u v = not (Hashtbl.mem failed (pack u v)) in
        let largest, survivors, ok =
          survey graph ~edge_alive ~node_alive:(fun _ -> true)
        in
        ignore survivors;
        if ok then incr connected;
        component_share :=
          !component_share +. (float_of_int largest /. float_of_int n)
    | `Nodes ->
        let alive = Array.init n (fun _ -> not (Rng.bool rng ~p:p_fail)) in
        let largest, survivors, ok =
          survey graph
            ~edge_alive:(fun _ _ -> true)
            ~node_alive:(fun u -> alive.(u))
        in
        if ok then incr connected;
        (* all nodes dead: the empty graph counts as connected (survey
           finds 0 components) and contributes a full component share —
           "every surviving node can reach every other" is vacuously
           true, and it keeps both curves at their p_fail→1 limits
           instead of poisoning the averages with a 0/0 *)
        component_share :=
          !component_share
          +. (if survivors = 0 then 1.0
              else float_of_int largest /. float_of_int survivors)
  done;
  {
    connected_fraction = float_of_int !connected /. float_of_int trials;
    avg_largest_component = !component_share /. float_of_int trials;
    trials;
  }

let edge_faults graph ~p_fail ~trials ~seed =
  run graph ~p_fail ~trials ~seed ~mode:`Edges

let node_faults graph ~p_fail ~trials ~seed =
  run graph ~p_fail ~trials ~seed ~mode:`Nodes
