type t =
  | Uniform
  | Transpose
  | Bit_reversal
  | Bit_complement
  | Hotspot of int

let pp ppf = function
  | Uniform -> Format.fprintf ppf "uniform"
  | Transpose -> Format.fprintf ppf "transpose"
  | Bit_reversal -> Format.fprintf ppf "bit-reversal"
  | Bit_complement -> Format.fprintf ppf "bit-complement"
  | Hotspot h -> Format.fprintf ppf "hotspot(%d)" h

let log2_exact n =
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Traffic: permutation patterns need a power-of-two size";
  go 0 n

(* the raw deterministic map, before the self-destination fixup: each
   permutation pattern is a bijection on [0, n_nodes), which the
   property tests check directly *)
let permute pattern ~n_nodes ~src =
  if src < 0 || src >= n_nodes then
    invalid_arg "Traffic.permute: src out of range";
  match pattern with
  | Uniform -> invalid_arg "Traffic.permute: Uniform has no deterministic map"
  | Hotspot h ->
      (* [h mod n_nodes] used to be applied here, which silently
         rewrote an out-of-range hotspot — and produced a negative
         destination for a negative [h] *)
      if h < 0 || h >= n_nodes then
        invalid_arg "Traffic: hotspot node out of range";
      h
  | Transpose ->
      let bits = log2_exact n_nodes in
      let half = bits / 2 in
      let low = src land ((1 lsl half) - 1) in
      let high = src lsr half in
      (* rotate by half: the classic matrix-transpose pattern *)
      (low lsl (bits - half)) lor high
  | Bit_reversal ->
      let bits = log2_exact n_nodes in
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if src land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      !r
  | Bit_complement ->
      let bits = log2_exact n_nodes in
      src lxor ((1 lsl bits) - 1)

(* the fixed patterns after the self-destination fixup: exactly what
   [destination] returns for them, with no rng involved *)
let fixed_destination pattern ~n_nodes ~src =
  let d = permute pattern ~n_nodes ~src in
  if d = src then (src + 1) mod n_nodes else d

let destination pattern rng ~n_nodes ~src =
  match pattern with
  | Uniform ->
      let d = Rng.int rng ~bound:(n_nodes - 1) in
      if d >= src then d + 1 else d
  | Hotspot _ | Transpose | Bit_reversal | Bit_complement ->
      fixed_destination pattern ~n_nodes ~src

let destinations pattern ~n_nodes =
  if n_nodes < 2 then invalid_arg "Traffic.destinations: n_nodes < 2";
  match pattern with
  | Uniform -> Array.init n_nodes (fun d -> d)
  | Hotspot _ | Transpose | Bit_reversal | Bit_complement ->
      let seen = Array.make n_nodes false in
      for src = 0 to n_nodes - 1 do
        seen.(fixed_destination pattern ~n_nodes ~src) <- true
      done;
      let count = ref 0 in
      Array.iter (fun b -> if b then incr count) seen;
      let out = Array.make !count 0 in
      let i = ref 0 in
      for d = 0 to n_nodes - 1 do
        if seen.(d) then begin
          out.(!i) <- d;
          incr i
        end
      done;
      out
