type t =
  | Uniform
  | Transpose
  | Bit_reversal
  | Bit_complement
  | Hotspot of int
  | Tornado
  | Bursty of { pattern : t; burst : int; duty_pct : int }

let rec pp ppf = function
  | Uniform -> Format.fprintf ppf "uniform"
  | Transpose -> Format.fprintf ppf "transpose"
  | Bit_reversal -> Format.fprintf ppf "bit-reversal"
  | Bit_complement -> Format.fprintf ppf "bit-complement"
  | Hotspot h -> Format.fprintf ppf "hotspot(%d)" h
  | Tornado -> Format.fprintf ppf "tornado"
  | Bursty { pattern; burst; duty_pct } ->
      Format.fprintf ppf "bursty(%a,burst=%d,duty=%d%%)" pp pattern burst
        duty_pct

let rec to_string = function
  | Uniform -> "uniform"
  | Transpose -> "transpose"
  | Bit_reversal -> "bit-reversal"
  | Bit_complement -> "bit-complement"
  | Hotspot h -> "hotspot:" ^ string_of_int h
  | Tornado -> "tornado"
  | Bursty { pattern; burst; duty_pct } ->
      Printf.sprintf "bursty:%s:%d:%d" (to_string pattern) burst duty_pct

let of_string s =
  let err () =
    Error
      (Printf.sprintf
         "unknown traffic pattern %S (expected \
          uniform|transpose|bit-reversal|bit-complement|tornado|hotspot:N|\
          bursty:PATTERN:BURST:DUTY%%)"
         s)
  in
  let rec parse = function
    | [ "uniform" ] -> Ok Uniform
    | [ "transpose" ] -> Ok Transpose
    | [ "bit-reversal" ] -> Ok Bit_reversal
    | [ "bit-complement" ] -> Ok Bit_complement
    | [ "tornado" ] -> Ok Tornado
    | [ "hotspot"; h ] -> (
        match int_of_string_opt h with
        | Some h -> Ok (Hotspot h)
        | None -> err ())
    | "bursty" :: (_ :: _ :: _ :: _ as rest) -> (
        (* the inner pattern may itself contain ':' (hotspot:N), so the
           burst length and duty cycle are the LAST two components *)
        let rec split_last2 acc = function
          | [ b; d ] -> (List.rev acc, b, d)
          | x :: tl -> split_last2 (x :: acc) tl
          | _ -> assert false
        in
        let inner, b, d = split_last2 [] rest in
        match (parse inner, int_of_string_opt b, int_of_string_opt d) with
        | Ok (Bursty _), _, _ -> err ()
        | Ok pattern, Some burst, Some duty_pct ->
            Ok (Bursty { pattern; burst; duty_pct })
        | _ -> err ())
    | _ -> err ()
  in
  parse (String.split_on_char ':' (String.lowercase_ascii s))

let log2_exact n =
  let rec go acc x = if x = 1 then acc else go (acc + 1) (x lsr 1) in
  if n < 2 || n land (n - 1) <> 0 then
    invalid_arg "Traffic: permutation patterns need a power-of-two size";
  go 0 n

(* the raw deterministic map, before the self-destination fixup: each
   permutation pattern is a bijection on [0, n_nodes), which the
   property tests check directly *)
let rec permute pattern ~n_nodes ~src =
  if src < 0 || src >= n_nodes then
    invalid_arg "Traffic.permute: src out of range";
  match pattern with
  | Uniform -> invalid_arg "Traffic.permute: Uniform has no deterministic map"
  | Bursty { pattern; _ } -> permute pattern ~n_nodes ~src
  | Tornado ->
      (* half-way around the ring of labels — the adversarial pattern
         for minimal ring/torus routing.  Adding a constant modulo n is
         a bijection at every n, so no power-of-two requirement. *)
      let offset = ((n_nodes + 1) / 2) - 1 in
      (src + offset) mod n_nodes
  | Hotspot h ->
      (* [h mod n_nodes] used to be applied here, which silently
         rewrote an out-of-range hotspot — and produced a negative
         destination for a negative [h] *)
      if h < 0 || h >= n_nodes then
        invalid_arg "Traffic: hotspot node out of range";
      h
  | Transpose ->
      let bits = log2_exact n_nodes in
      let half = bits / 2 in
      let low = src land ((1 lsl half) - 1) in
      let high = src lsr half in
      (* rotate by half: the classic matrix-transpose pattern *)
      (low lsl (bits - half)) lor high
  | Bit_reversal ->
      let bits = log2_exact n_nodes in
      let r = ref 0 in
      for b = 0 to bits - 1 do
        if src land (1 lsl b) <> 0 then r := !r lor (1 lsl (bits - 1 - b))
      done;
      !r
  | Bit_complement ->
      let bits = log2_exact n_nodes in
      src lxor ((1 lsl bits) - 1)

(* the fixed patterns after the self-destination fixup: exactly what
   [destination] returns for them, with no rng involved *)
let fixed_destination pattern ~n_nodes ~src =
  let d = permute pattern ~n_nodes ~src in
  if d = src then (src + 1) mod n_nodes else d

let rec destination pattern rng ~n_nodes ~src =
  match pattern with
  | Uniform ->
      let d = Rng.int rng ~bound:(n_nodes - 1) in
      if d >= src then d + 1 else d
  | Bursty { pattern; _ } -> destination pattern rng ~n_nodes ~src
  | Hotspot _ | Transpose | Bit_reversal | Bit_complement | Tornado ->
      fixed_destination pattern ~n_nodes ~src

let rec destinations pattern ~n_nodes =
  if n_nodes < 2 then invalid_arg "Traffic.destinations: n_nodes < 2";
  match pattern with
  | Uniform -> Array.init n_nodes (fun d -> d)
  | Bursty { pattern; _ } -> destinations pattern ~n_nodes
  | Hotspot _ | Transpose | Bit_reversal | Bit_complement | Tornado ->
      let seen = Array.make n_nodes false in
      for src = 0 to n_nodes - 1 do
        seen.(fixed_destination pattern ~n_nodes ~src) <- true
      done;
      let count = ref 0 in
      Array.iter (fun b -> if b then incr count) seen;
      let out = Array.make !count 0 in
      let i = ref 0 in
      for d = 0 to n_nodes - 1 do
        if seen.(d) then begin
          out.(!i) <- d;
          incr i
        end
      done;
      out

(* --- injection process ------------------------------------------------- *)

type injector =
  | Steady of float
  | On_off of {
      r_on : float;
      p_on_off : float;
      p_off_on : float;
      on : bool array;
    }

let injector pattern ~offered_load ~n_nodes rng =
  match pattern with
  | Bursty { pattern = inner; burst; duty_pct } ->
      (match inner with
      | Bursty _ -> invalid_arg "Traffic: nested bursty patterns"
      | _ -> ());
      if burst < 1 then invalid_arg "Traffic: bursty burst length < 1";
      if duty_pct < 1 || duty_pct > 100 then
        invalid_arg "Traffic: bursty duty cycle outside [1, 100]%";
      if duty_pct = 100 then Steady offered_load
      else begin
        (* two-state Markov chain per node.  Mean ON dwell = [burst]
           cycles gives p(on->off) = 1/burst; the stationary ON share
           equals the duty cycle d when p(off->on) = d/(burst*(1-d))
           (clamped — a duty near 1 with a short burst saturates).  In
           ON the node injects at r_on = load/d, so the long-run
           offered rate is d * load/d = load, matching Steady. *)
        let duty = float_of_int duty_pct /. 100.0 in
        let p_on_off = 1.0 /. float_of_int burst in
        let p_off_on =
          Float.min 1.0 (duty /. (float_of_int burst *. (1.0 -. duty)))
        in
        let r_on = Float.min 1.0 (offered_load /. duty) in
        let on = Array.init n_nodes (fun _ -> Rng.bool rng ~p:duty) in
        On_off { r_on; p_on_off; p_off_on; on }
      end
  | _ -> Steady offered_load

let inject inj rng ~src =
  match inj with
  | Steady p -> Rng.bool rng ~p
  | On_off o ->
      (* decide from the pre-transition state, then advance it; the
         draw order is part of the replicated-stream contract between
         the serial and sharded simulator engines *)
      let was_on = o.on.(src) in
      let fire = was_on && Rng.bool rng ~p:o.r_on in
      o.on.(src) <-
        (if was_on then not (Rng.bool rng ~p:o.p_on_off)
         else Rng.bool rng ~p:o.p_off_on);
      fire
