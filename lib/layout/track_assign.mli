(** Track assignment = interval-graph colouring.

    A set of spans (closed intervals over positions) must be packed into
    horizontal tracks so that spans sharing a track overlap in at most a
    single point.  The classic left-edge greedy algorithm is optimal: it
    uses exactly [max_density] tracks. *)

open Mvl_geometry

val greedy : Interval.t array -> int array
(** [greedy spans] returns a track index (0-based) for each span.  Spans
    assigned the same track have disjoint interiors.  The number of
    tracks used equals {!max_density}[ spans]. *)

val max_density : Interval.t array -> int
(** The maximum number of spans whose interiors share a common point —
    a lower bound on (and, by {!greedy}, the exact value of) the number
    of tracks needed. *)

val count_tracks : int array -> int
(** [count_tracks assignment] is [1 + max assignment] (0 when empty). *)

(** {1 Flat engine}

    Allocation-free core over parallel int columns — the construction
    hot path.  Spans live as [lo]/[hi] slices ([off], [len]) of flat
    arrays (typically a CSR line of {!Orthogonal}); the greedy heap and
    the sort keys live in a reusable {!scratch} that grows to the
    largest line it has seen and is then reused for every further line.
    A scratch must not be shared between domains. *)

type scratch

val scratch : unit -> scratch

val greedy_into :
  scratch ->
  lo:int array ->
  hi:int array ->
  track:int array ->
  off:int ->
  len:int ->
  int
(** [greedy_into s ~lo ~hi ~track ~off ~len] assigns a track to each of
    the [len] spans [lo.(off+i), hi.(off+i)], writing it to
    [track.(off+i)], and returns the number of tracks used.  Processing
    order is (lo, hi, index) ascending — a total order, so the result
    never depends on input order.  For the distinct spans produced by a
    simple graph's line edges this matches {!greedy} exactly.
    Coordinates must lie in [0, 2^20) and [len] below [2^22]
    ([Invalid_argument] otherwise). *)

val max_density_into :
  scratch -> lo:int array -> hi:int array -> off:int -> len:int -> int
(** Flat variant of {!max_density} over the same column slices. *)

val sort_ints : int array -> off:int -> len:int -> unit
(** In-place ascending heapsort of [a.(off .. off+len-1)] — the range
    sort under the flat engine, exposed for other columnar passes
    (e.g. incidence sorting in {!Multilayer}). *)
