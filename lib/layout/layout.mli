(** Realized multilayer layouts: node footprints on layer 1 plus one
    routed wire per network edge, with the cost metrics of §2.2.

    Geometry is held columnarly (see {!Geom}); [wires]/[nodes]
    materialize record views lazily for the small-layout API, while
    bulk consumers (checking, metrics, serialization, rendering) read
    the columns directly. *)

open Mvl_geometry
open Mvl_topology

type t

type metrics = {
  width : int;
  height : int;
  area : int;              (** smallest upright bounding rectangle *)
  layers : int;
  volume : int;            (** [layers * area] *)
  max_wire : int;          (** longest in-plane wire length *)
  total_wire : int;        (** sum of in-plane wire lengths *)
  vias : int;              (** total via length over all wires *)
}

val make :
  graph:Graph.t ->
  layers:int ->
  ?node_layers:int array ->
  nodes:Rect.t array ->
  wires:Wire.t array ->
  unit ->
  t
(** Columnarizes record geometry.  [node_layers] defaults to all nodes
    on layer 1 (the 2-D grid model).  Wires must be listed in the same
    order as [Graph.edges graph]. *)

val of_geom :
  graph:Graph.t -> layers:int -> ?node_layers:int array -> Geom.t -> t
(** Wraps columnar geometry directly — the zero-copy path used by the
    constructions ([Multilayer], [Cluster_expand]). *)

val graph : t -> Graph.t
val layers : t -> int

val node_layers : t -> int array
(** Active layer of each node; all 1 in the multilayer 2-D grid model,
    multiple values under the 3-D grid model.  The returned array is
    the layout's own — treat it as read-only. *)

val geom : t -> Geom.t

val wires : t -> Wire.t array
(** One wire per graph edge, same order as [Graph.edges graph].
    Materialized lazily from the columns on first use and cached. *)

val nodes : t -> Rect.t array
(** Footprint of each node, materialized lazily like [wires]. *)

val node_rect : t -> int -> Rect.t
(** Footprint of one node straight from the columns (no array
    materialization). *)

val active_layers : t -> int
(** Number of distinct active layers ([L_A] of §2.2). *)

val bounding_box : t -> Rect.t
(** Hull of all node footprints and wire vertices. *)

val translate : t -> dx:int -> dy:int -> t
(** Shifts the whole layout in the plane.  Validity and all metrics are
    invariant under translation. *)

val metrics : t -> metrics

val resident_bytes : t -> int
(** Approximate bytes a resident layout pins: the off-heap geometry
    columns ({!Geom.resident_bytes}) plus the node-layer array.  The
    size input for cost/size-aware cache admission. *)

val pp_metrics : Format.formatter -> metrics -> unit
