open Mvl_topology
open Mvl_geometry

type placement = {
  nodes : Rect.t array;
  width : int;
  height : int;
  layers : int;
}

let grid_placement graph ~rows ~cols ~margin ~layers =
  let n = Graph.n graph in
  if rows * cols < n then invalid_arg "Maze_router.grid_placement: grid too small";
  let side = max 3 (Graph.max_degree graph + 2) in
  let pitch = side + margin in
  let nodes =
    Array.init n (fun u ->
        let r = u / cols and c = u mod cols in
        let x0 = margin + (c * pitch) and y0 = margin + (r * pitch) in
        Rect.make ~x0 ~y0 ~x1:(x0 + side - 1) ~y1:(y0 + side - 1))
  in
  {
    nodes;
    width = (cols * pitch) + margin;
    height = (rows * pitch) + margin;
    layers;
  }

(* point encoding: ((z-1) * height + y) * width + x *)
let route graph placement =
  let w = placement.width and h = placement.height and l = placement.layers in
  if l < 2 then invalid_arg "Maze_router.route: layers < 2";
  let plane = w * h in
  let total = plane * l in
  let encode x y z = (((z - 1) * h) + y) * w + x in
  (* layer-1 footprint ownership: -1 = free space *)
  let owner = Array.make plane (-1) in
  Array.iteri
    (fun id (r : Rect.t) ->
      if r.Rect.x1 >= w || r.Rect.y1 >= h then
        invalid_arg "Maze_router.route: node outside canvas";
      for y = r.Rect.y0 to r.Rect.y1 do
        for x = r.Rect.x0 to r.Rect.x1 do
          owner.((y * w) + x) <- id
        done
      done)
    placement.nodes;
  let used = Bytes.make total '\000' in
  let is_used p = Bytes.get used p <> '\000' in
  let mark_used p = Bytes.set used p '\001' in
  (* BFS state, reused across nets via version stamping *)
  let seen = Array.make total 0 in
  let prev = Array.make total (-1) in
  let version = ref 0 in
  let queue = Queue.create () in
  let boundary_points node =
    let r = placement.nodes.(node) in
    let pts = ref [] in
    for x = r.Rect.x0 to r.Rect.x1 do
      pts := (x, r.Rect.y0) :: (x, r.Rect.y1) :: !pts
    done;
    for y = r.Rect.y0 + 1 to r.Rect.y1 - 1 do
      pts := (r.Rect.x0, y) :: (r.Rect.x1, y) :: !pts
    done;
    !pts
  in
  (* passable interior point: free space (layer >= 2 passes over nodes) *)
  let passable x y z =
    is_used (encode x y z) = false
    && (z > 1 || owner.((y * w) + x) < 0)
  in
  let route_net u v =
    incr version;
    Queue.clear queue;
    let stamp = !version in
    List.iter
      (fun (x, y) ->
        let p = encode x y 1 in
        if not (is_used p) then begin
          seen.(p) <- stamp;
          prev.(p) <- -1;
          Queue.add p queue
        end)
      (boundary_points u);
    let target = Hashtbl.create 32 in
    List.iter
      (fun (x, y) ->
        let p = encode x y 1 in
        if not (is_used p) then Hashtbl.replace target p ())
      (boundary_points v);
    if Queue.is_empty queue || Hashtbl.length target = 0 then None
    else begin
      let found = ref (-1) in
      while !found < 0 && not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        if Hashtbl.mem target p then found := p
        else begin
          let x = p mod w in
          let y = p / w mod h in
          let z = 1 + (p / plane) in
          let try_step x' y' z' =
            if
              x' >= 0 && x' < w && y' >= 0 && y' < h && z' >= 1 && z' <= l
            then begin
              let q = encode x' y' z' in
              if seen.(q) <> stamp then begin
                (* a target point is enterable even though it sits on a
                   node boundary; other footprint points are not *)
                let ok =
                  (not (is_used q))
                  && (Hashtbl.mem target q || passable x' y' z')
                in
                if ok then begin
                  seen.(q) <- stamp;
                  prev.(q) <- p;
                  Queue.add q queue
                end
              end
            end
          in
          (* direction discipline: x on odd layers, y on even, z always *)
          if z mod 2 = 1 then begin
            try_step (x - 1) y z;
            try_step (x + 1) y z
          end
          else begin
            try_step x (y - 1) z;
            try_step x (y + 1) z
          end;
          try_step x y (z - 1);
          try_step x y (z + 1)
        end
      done;
      if !found < 0 then None
      else begin
        (* walk back, mark used, build the polyline *)
        let rec collect p acc =
          let acc = p :: acc in
          if prev.(p) < 0 then acc else collect prev.(p) acc
        in
        let path = collect !found [] in
        List.iter mark_used path;
        let points =
          List.map
            (fun p ->
              Point.make ~x:(p mod w) ~y:(p / w mod h) ~z:(1 + (p / plane)))
            path
        in
        Some points
      end
    end
  in
  (* route short nets first *)
  let edges = Graph.edges graph in
  let order = Array.init (Array.length edges) (fun i -> i) in
  let dist (u, v) =
    let ru = placement.nodes.(u) and rv = placement.nodes.(v) in
    abs (ru.Rect.x0 - rv.Rect.x0) + abs (ru.Rect.y0 - rv.Rect.y0)
  in
  Array.sort (fun a b -> Int.compare (dist edges.(a)) (dist edges.(b))) order;
  let wires = Array.make (Array.length edges) None in
  let ok = ref true in
  Array.iter
    (fun i ->
      if !ok then begin
        let u, v = edges.(i) in
        match route_net u v with
        (* the checker accepts either endpoint orientation, so the wire
           can keep the canonical (u < v) edge label *)
        | Some points -> wires.(i) <- Some (Wire.make ~edge:edges.(i) points)
        | None -> ok := false
      end)
    order;
  if not !ok then None
  else begin
    let wires =
      Array.map (function Some w -> w | None -> assert false) wires
    in
    Some
      (Layout.make ~graph ~layers:placement.layers ~nodes:placement.nodes
         ~wires ())
  end

let route_or_grow ?(max_attempts = 4) graph ~rows ~cols ~layers =
  let rec go attempt margin =
    if attempt >= max_attempts then None
    else begin
      let placement = grid_placement graph ~rows ~cols ~margin ~layers in
      match route graph placement with
      | Some layout -> Some layout
      | None -> go (attempt + 1) (margin * 2)
    end
  in
  go 0 2
