open Mvl_topology
open Mvl_geometry

let to_string (t : Layout.t) =
  let g = Layout.geom t in
  let node_layers = Layout.node_layers t in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf "mvl-layout 1\n";
  Buffer.add_string buf (Printf.sprintf "layers %d\n" (Layout.layers t));
  Buffer.add_string buf (Printf.sprintf "nodes %d\n" g.Geom.n_nodes);
  for id = 0 to g.Geom.n_nodes - 1 do
    Buffer.add_string buf
      (Printf.sprintf "node %d %d %d %d %d %d\n" id g.Geom.nx0.{id}
         g.Geom.ny0.{id} g.Geom.nx1.{id} g.Geom.ny1.{id} node_layers.(id))
  done;
  Buffer.add_string buf (Printf.sprintf "edges %d\n" g.Geom.n_wires);
  for i = 0 to g.Geom.n_wires - 1 do
    let lo = g.Geom.wire_off.{i} and hi = g.Geom.wire_off.{i + 1} in
    Buffer.add_string buf
      (Printf.sprintf "wire %d %d %d" g.Geom.edge_u.{i} g.Geom.edge_v.{i}
         (hi - lo));
    for k = lo to hi - 1 do
      Buffer.add_string buf
        (Printf.sprintf " %d %d %d" g.Geom.px.{k} g.Geom.py.{k} g.Geom.pz.{k})
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let graph_of_wires wires ~n =
  Graph.of_edges_array ~n (Array.map (fun w -> w.Wire.edge) wires)

exception Parse of string

let of_string s =
  let lines = String.split_on_char '\n' s in
  let lines = List.filter (fun l -> String.trim l <> "") lines in
  let ints_of rest = List.map int_of_string rest in
  try
    match lines with
    | header :: rest ->
        if String.trim header <> "mvl-layout 1" then
          raise (Parse "bad header");
        let layers, rest =
          match rest with
          | l :: rest -> (
              match String.split_on_char ' ' l with
              | [ "layers"; n ] -> (int_of_string n, rest)
              | _ -> raise (Parse "expected layers line"))
          | [] -> raise (Parse "truncated")
        in
        let n_nodes, rest =
          match rest with
          | l :: rest -> (
              match String.split_on_char ' ' l with
              | [ "nodes"; n ] -> (int_of_string n, rest)
              | _ -> raise (Parse "expected nodes line"))
          | [] -> raise (Parse "truncated")
        in
        let nodes = Array.make n_nodes (Rect.make ~x0:0 ~y0:0 ~x1:0 ~y1:0) in
        let node_layers = Array.make n_nodes 1 in
        let rest = ref rest in
        for _ = 1 to n_nodes do
          match !rest with
          | l :: more -> (
              rest := more;
              match String.split_on_char ' ' l with
              | "node" :: fields -> (
                  match ints_of fields with
                  | [ id; x0; y0; x1; y1; zl ] ->
                      if id < 0 || id >= n_nodes then
                        raise (Parse "node id out of range");
                      nodes.(id) <- Rect.make ~x0 ~y0 ~x1 ~y1;
                      node_layers.(id) <- zl
                  | _ -> raise (Parse "bad node line"))
              | _ -> raise (Parse "expected node line"))
          | [] -> raise (Parse "truncated nodes")
        done;
        let n_edges =
          match !rest with
          | l :: more -> (
              rest := more;
              match String.split_on_char ' ' l with
              | [ "edges"; n ] -> int_of_string n
              | _ -> raise (Parse "expected edges line"))
          | [] -> raise (Parse "truncated")
        in
        let wires = Array.make n_edges None in
        for i = 0 to n_edges - 1 do
          match !rest with
          | l :: more -> (
              rest := more;
              match String.split_on_char ' ' l with
              | "wire" :: fields -> (
                  match ints_of fields with
                  | u :: v :: k :: coords ->
                      if List.length coords <> 3 * k then
                        raise (Parse "bad wire coordinate count");
                      let rec points = function
                        | [] -> []
                        | x :: y :: z :: tl ->
                            Point.make ~x ~y ~z :: points tl
                        | _ -> raise (Parse "ragged wire coordinates")
                      in
                      wires.(i) <- Some (Wire.make ~edge:(u, v) (points coords))
                  | _ -> raise (Parse "bad wire line"))
              | _ -> raise (Parse "expected wire line"))
          | [] -> raise (Parse "truncated wires")
        done;
        (match !rest with
        | [ l ] when String.trim l = "end" -> ()
        | _ -> raise (Parse "missing end marker"));
        let wires =
          Array.map
            (function Some w -> w | None -> raise (Parse "missing wire"))
            wires
        in
        let graph = graph_of_wires wires ~n:n_nodes in
        if Graph.m graph <> n_edges then
          raise (Parse "duplicate edges in wire list");
        (* reorder wires to the graph's canonical edge order *)
        let order = Hashtbl.create n_edges in
        Array.iteri (fun i e -> Hashtbl.add order e i) (Graph.edges graph);
        let sorted = Array.make n_edges None in
        Array.iter
          (fun (w : Wire.t) ->
            let u, v = w.Wire.edge in
            let key = if u < v then (u, v) else (v, u) in
            sorted.(Hashtbl.find order key) <- Some { w with Wire.edge = key })
          wires;
        let wires =
          Array.map
            (function Some w -> w | None -> raise (Parse "wire ordering"))
            sorted
        in
        Ok (Layout.make ~graph ~layers ~node_layers ~nodes ~wires ())
    | [] -> Error "empty input"
  with
  | Parse msg -> Error msg
  | Failure _ -> Error "malformed integer"
  | Invalid_argument msg -> Error msg

let write_file path t =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  of_string content

let roundtrip_equal (a : Layout.t) (b : Layout.t) =
  Graph.equal (Layout.graph a) (Layout.graph b)
  && Layout.layers a = Layout.layers b
  && Layout.node_layers a = Layout.node_layers b
  && Geom.equal (Layout.geom a) (Layout.geom b)
