type t = {
  metrics : Layout.metrics;
  node_area : int;
  node_area_share : float;
  wire_count : int;
  wire_min : int;
  wire_median : int;
  wire_p90 : int;
  wire_max : int;
  segments_per_layer : (int * int) list;
  via_count : int;
  active_layers : int;
}

let analyze (layout : Layout.t) =
  let metrics = Layout.metrics layout in
  let g = Layout.geom layout in
  let node_area = ref 0 in
  for i = 0 to g.Geom.n_nodes - 1 do
    node_area :=
      !node_area
      + ((g.Geom.nx1.{i} - g.Geom.nx0.{i} + 1)
        * (g.Geom.ny1.{i} - g.Geom.ny0.{i} + 1))
  done;
  let node_area = !node_area in
  let lengths =
    Array.init g.Geom.n_wires (fun i -> Geom.wire_length_xy g i)
  in
  Array.sort Int.compare lengths;
  let count = Array.length lengths in
  let pick fraction =
    if count = 0 then 0
    else lengths.(min (count - 1) (int_of_float (float_of_int count *. fraction)))
  in
  (* a Hashtbl keyed by z keeps user-loaded layouts with out-of-range
     layers from crashing the report *)
  let per_layer = Hashtbl.create 16 in
  let vias = ref 0 in
  for i = 0 to g.Geom.n_wires - 1 do
    for k = g.Geom.wire_off.{i} to g.Geom.wire_off.{i + 1} - 2 do
      let dx = abs (g.Geom.px.{k + 1} - g.Geom.px.{k}) in
      let dy = abs (g.Geom.py.{k + 1} - g.Geom.py.{k}) in
      if dx = 0 && dy = 0 then incr vias
      else begin
        let z = g.Geom.pz.{k} in
        Hashtbl.replace per_layer z
          (dx + dy + Option.value ~default:0 (Hashtbl.find_opt per_layer z))
      end
    done
  done;
  {
    metrics;
    node_area;
    node_area_share =
      (if metrics.Layout.area = 0 then 0.0
       else float_of_int node_area /. float_of_int metrics.Layout.area);
    wire_count = count;
    wire_min = (if count = 0 then 0 else lengths.(0));
    wire_median = pick 0.5;
    wire_p90 = pick 0.9;
    wire_max = (if count = 0 then 0 else lengths.(count - 1));
    segments_per_layer =
      Hashtbl.fold (fun z len acc -> (z, len) :: acc) per_layer []
      |> List.sort (fun (za, la) (zb, lb) ->
             let c = Int.compare za zb in
             if c <> 0 then c else Int.compare la lb);
    via_count = !vias;
    active_layers = Layout.active_layers layout;
  }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "bounding box : %dx%d = %d@," t.metrics.Layout.width
    t.metrics.Layout.height t.metrics.Layout.area;
  Format.fprintf ppf "volume       : %d over %d layers (%d active)@,"
    t.metrics.Layout.volume t.metrics.Layout.layers t.active_layers;
  Format.fprintf ppf "node area    : %d (%.1f%% of the box)@," t.node_area
    (100.0 *. t.node_area_share);
  Format.fprintf ppf "wires        : %d, lengths min/med/p90/max = %d/%d/%d/%d@,"
    t.wire_count t.wire_min t.wire_median t.wire_p90 t.wire_max;
  Format.fprintf ppf "vias         : %d cuts, %d total height@," t.via_count
    t.metrics.Layout.vias;
  Format.fprintf ppf "run length per layer:@,";
  List.iter
    (fun (z, len) -> Format.fprintf ppf "  layer %2d : %d@," z len)
    t.segments_per_layer;
  Format.fprintf ppf "@]"
