open Mvl_topology
open Mvl_geometry

type t = {
  layout : Layout.t;
  slabs : int;
  layers_per_slab : int;
  product : Graph.t;
}

let realize ?node_side ~(base : Orthogonal.t) ~slab_graph ~layers_per_slab () =
  if layers_per_slab < 2 then
    invalid_arg "Multilayer3d.realize: layers_per_slab < 2";
  let slabs = Graph.n slab_graph in
  if slabs < 2 then invalid_arg "Multilayer3d.realize: need >= 2 slabs";
  let n_base = Graph.n base.Orthogonal.graph in
  let slab_edges = Graph.edges slab_graph in
  let m_slab = Array.length slab_edges in
  let total_layers = slabs * layers_per_slab in
  let product = Graph.cartesian_product base.Orthogonal.graph slab_graph in
  (* one slab realization per active layer; identical in the plane *)
  let slab_layouts =
    Array.init slabs (fun s ->
        Multilayer.realize_slab ?node_side base
          ~z_offset:(s * layers_per_slab)
          ~band_layers:layers_per_slab ~total_layers
          ~col_gap_extra:m_slab ~node_extra_rows:m_slab)
  in
  let _, frame = slab_layouts.(0) in
  (* assemble nodes *)
  let n_total = slabs * n_base in
  let nodes = Array.make n_total (Rect.make ~x0:0 ~y0:0 ~x1:0 ~y1:0) in
  let node_layers = Array.make n_total 1 in
  Array.iteri
    (fun s (lay, _) ->
      Array.iteri
        (fun u r ->
          nodes.((s * n_base) + u) <- r;
          node_layers.((s * n_base) + u) <- 1 + (s * layers_per_slab))
        (Layout.nodes lay))
    slab_layouts;
  (* assemble wires, keyed by the product graph's edge list *)
  let product_edges = Graph.edges product in
  let edge_id = Hashtbl.create (Array.length product_edges) in
  Array.iteri (fun i e -> Hashtbl.add edge_id e i) product_edges;
  let find_edge u v =
    let key = if u < v then (u, v) else (v, u) in
    match Hashtbl.find_opt edge_id key with
    | Some i -> i
    | None -> invalid_arg "Multilayer3d: product edge not found"
  in
  let wires = Array.make (Array.length product_edges) None in
  (* intra-slab wires: re-key each slab's wires onto the product graph *)
  Array.iteri
    (fun s (lay, _) ->
      Array.iter
        (fun w ->
          let u, v = w.Wire.edge in
          let id = find_edge ((s * n_base) + u) ((s * n_base) + v) in
          let global_edge = product_edges.(id) in
          wires.(id) <- Some { w with Wire.edge = global_edge })
        (Layout.wires lay))
    slab_layouts;
  (* inter-slab wires: C-edge j of base node u runs through a reserved
     terminal row and a reserved via column of u's column gap *)
  let active_layer s = 1 + (s * layers_per_slab) in
  for j = 0 to m_slab - 1 do
    let sa, sb = slab_edges.(j) in
    for u = 0 to n_base - 1 do
      let r, c = base.Orthogonal.place.(u) in
      let x1 = frame.Multilayer.col_x0.(c) + frame.Multilayer.col_w.(c) - 1 in
      let ty = frame.Multilayer.row_y0.(r) + frame.Multilayer.row_h.(r) - 2 - j in
      let x_res =
        frame.Multilayer.col_x0.(c) + frame.Multilayer.col_w.(c)
        + frame.Multilayer.col_slots.(c) + j
      in
      let za = active_layer sa and zb = active_layer sb in
      let id = find_edge ((sa * n_base) + u) ((sb * n_base) + u) in
      wires.(id) <-
        Some
          (Wire.make ~edge:product_edges.(id)
             [
               Point.make ~x:x1 ~y:ty ~z:za;
               Point.make ~x:x_res ~y:ty ~z:za;
               Point.make ~x:x_res ~y:ty ~z:zb;
               Point.make ~x:x1 ~y:ty ~z:zb;
             ])
    done
  done;
  let wires =
    Array.mapi
      (fun i w ->
        match w with
        | Some w -> w
        | None ->
            invalid_arg (Printf.sprintf "Multilayer3d: edge %d unrouted" i))
      wires
  in
  let layout =
    Layout.make ~graph:product ~layers:total_layers ~node_layers ~nodes ~wires
      ()
  in
  { layout; slabs; layers_per_slab; product }

let hypercube ~n ~active ~layers_per_slab =
  if active < 2 || active land (active - 1) <> 0 then
    invalid_arg "Multilayer3d.hypercube: active must be a power of two >= 2";
  let rec log2 x = if x = 1 then 0 else 1 + log2 (x / 2) in
  let slab_dims = log2 active in
  if slab_dims >= n then invalid_arg "Multilayer3d.hypercube: active too large";
  let base_dims = n - slab_dims in
  let row = Collinear_hypercube.create ((base_dims + 1) / 2) in
  let col_dims = base_dims - ((base_dims + 1) / 2) in
  let col =
    if col_dims = 0 then Collinear.natural (Graph.of_edges ~n:1 [])
    else Collinear_hypercube.create col_dims
  in
  let base =
    Orthogonal.of_product ~row_factor:row ~col_factor:col
      (Hypercube.create base_dims)
  in
  realize ~base ~slab_graph:(Hypercube.create slab_dims) ~layers_per_slab ()
