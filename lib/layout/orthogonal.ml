open Mvl_topology

type line_edge = { edge_id : int; a : int; b : int; track : int }

type t = {
  graph : Graph.t;
  rows : int;
  cols : int;
  place : (int * int) array;
  node_at : int array array;
  row_off : int array;
  row_eid : int array;
  row_a : int array;
  row_b : int array;
  row_track : int array;
  col_off : int array;
  col_eid : int array;
  col_a : int array;
  col_b : int array;
  col_track : int array;
  row_tracks : int array;
  col_tracks : int array;
}

(* mirror of Parallel.force_fork (same idiom as Sim_shard): under the
   fork backend no domain may ever be spawned, so packing degrades to
   the serial path *)
let env_force_fork () =
  match Sys.getenv_opt "MVL_FORCE_FORK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let create ?(jobs = 1) graph ~rows ~cols ~place =
  let t_place = Unix.gettimeofday () in
  let n = Graph.n graph in
  if rows * cols <> n then
    invalid_arg
      (Printf.sprintf "Orthogonal.create: %dx%d grid for %d nodes" rows cols n);
  let placements = Array.init n place in
  let node_at = Array.make_matrix rows cols (-1) in
  Array.iteri
    (fun u (r, c) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Orthogonal.create: placement out of grid";
      if node_at.(r).(c) >= 0 then
        invalid_arg "Orthogonal.create: two nodes on one grid cell";
      node_at.(r).(c) <- u)
    placements;
  (* two-pass counting sort of edges into per-line CSR columns: count,
     prefix-sum, fill.  Each line's edges end up in ascending edge id
     order; nothing downstream depends on intra-line order (terminals
     re-sort incidence, emission is reordered by wire id at build). *)
  let row_off = Array.make (rows + 1) 0 and col_off = Array.make (cols + 1) 0 in
  Graph.iter_edges graph (fun u v ->
      let ru, cu = placements.(u) and rv, cv = placements.(v) in
      if ru = rv && cu <> cv then row_off.(ru + 1) <- row_off.(ru + 1) + 1
      else if cu = cv && ru <> rv then col_off.(cu + 1) <- col_off.(cu + 1) + 1
      else
        invalid_arg
          (Printf.sprintf
             "Orthogonal.create: edge %d-%d is not row- or column-aligned" u v));
  for r = 1 to rows do
    row_off.(r) <- row_off.(r) + row_off.(r - 1)
  done;
  for c = 1 to cols do
    col_off.(c) <- col_off.(c) + col_off.(c - 1)
  done;
  let rm = row_off.(rows) and cm = col_off.(cols) in
  let row_eid = Array.make rm 0
  and row_a = Array.make rm 0
  and row_b = Array.make rm 0
  and row_track = Array.make rm 0 in
  let col_eid = Array.make cm 0
  and col_a = Array.make cm 0
  and col_b = Array.make cm 0
  and col_track = Array.make cm 0 in
  let row_cur = Array.copy row_off and col_cur = Array.copy col_off in
  let next_eid = ref 0 in
  Graph.iter_edges graph (fun u v ->
      let e = !next_eid in
      incr next_eid;
      let ru, cu = placements.(u) and rv, cv = placements.(v) in
      if ru = rv then begin
        let k = row_cur.(ru) in
        row_cur.(ru) <- k + 1;
        row_eid.(k) <- e;
        row_a.(k) <- min cu cv;
        row_b.(k) <- max cu cv
      end
      else begin
        let k = col_cur.(cu) in
        col_cur.(cu) <- k + 1;
        col_eid.(k) <- e;
        col_a.(k) <- min ru rv;
        col_b.(k) <- max ru rv
      end);
  Layout_profile.record Place (Unix.gettimeofday () -. t_place);
  (* per-line track packing: lines are independent, so a unified line
     index [0, rows + cols) shards across domains in contiguous chunks;
     each line writes only its own track slice and tracks cell, and the
     result per line is deterministic, so output is identical at every
     job count *)
  let t_pack = Unix.gettimeofday () in
  let row_tracks = Array.make rows 0 and col_tracks = Array.make cols 0 in
  let pack_range s line_lo line_hi =
    for line = line_lo to line_hi - 1 do
      if line < rows then
        row_tracks.(line) <-
          Track_assign.greedy_into s ~lo:row_a ~hi:row_b ~track:row_track
            ~off:row_off.(line)
            ~len:(row_off.(line + 1) - row_off.(line))
      else begin
        let c = line - rows in
        col_tracks.(c) <-
          Track_assign.greedy_into s ~lo:col_a ~hi:col_b ~track:col_track
            ~off:col_off.(c)
            ~len:(col_off.(c + 1) - col_off.(c))
      end
    done
  in
  let lines = rows + cols in
  let jobs =
    if jobs <= 1 || env_force_fork () then 1 else min jobs (max 1 lines)
  in
  if jobs = 1 then pack_range (Track_assign.scratch ()) 0 lines
  else begin
    let workers = Array.init jobs (fun w -> w) in
    let _, _stats =
      Mvl_pool.Domain_pool.map ~domains:jobs
        ~f:(fun w ->
          pack_range (Track_assign.scratch ()) (w * lines / jobs)
            ((w + 1) * lines / jobs))
        workers
    in
    ()
  end;
  Layout_profile.record Pack (Unix.gettimeofday () -. t_pack);
  {
    graph;
    rows;
    cols;
    place = placements;
    node_at;
    row_off;
    row_eid;
    row_a;
    row_b;
    row_track;
    col_off;
    col_eid;
    col_a;
    col_b;
    col_track;
    row_tracks;
    col_tracks;
  }

let of_product ?jobs ~row_factor ~col_factor graph =
  let na = Graph.n row_factor.Collinear.graph in
  let nb = Graph.n col_factor.Collinear.graph in
  if na * nb <> Graph.n graph then
    invalid_arg "Orthogonal.of_product: factor sizes do not match";
  let place v =
    let x = v mod na and y = v / na in
    (col_factor.Collinear.position.(y), row_factor.Collinear.position.(x))
  in
  create ?jobs graph ~rows:nb ~cols:na ~place

let row_edge_count t r = t.row_off.(r + 1) - t.row_off.(r)
let col_edge_count t c = t.col_off.(c + 1) - t.col_off.(c)

let row_edges t r =
  Array.init (row_edge_count t r) (fun i ->
      let k = t.row_off.(r) + i in
      {
        edge_id = t.row_eid.(k);
        a = t.row_a.(k);
        b = t.row_b.(k);
        track = t.row_track.(k);
      })

let col_edges t c =
  Array.init (col_edge_count t c) (fun i ->
      let k = t.col_off.(c) + i in
      {
        edge_id = t.col_eid.(k);
        a = t.col_a.(k);
        b = t.col_b.(k);
        track = t.col_track.(k);
      })

let total_row_tracks t = Array.fold_left ( + ) 0 t.row_tracks
let total_col_tracks t = Array.fold_left ( + ) 0 t.col_tracks

let count_degrees t ~of_rows =
  let n = Graph.n t.graph in
  let deg = Array.make n 0 in
  if of_rows then
    for r = 0 to t.rows - 1 do
      for k = t.row_off.(r) to t.row_off.(r + 1) - 1 do
        let u = t.node_at.(r).(t.row_a.(k))
        and v = t.node_at.(r).(t.row_b.(k)) in
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      done
    done
  else
    for c = 0 to t.cols - 1 do
      for k = t.col_off.(c) to t.col_off.(c + 1) - 1 do
        let u = t.node_at.(t.col_a.(k)).(c)
        and v = t.node_at.(t.col_b.(k)).(c) in
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      done
    done;
  Array.fold_left max 0 deg

let max_row_degree t = count_degrees t ~of_rows:true
let max_col_degree t = count_degrees t ~of_rows:false
