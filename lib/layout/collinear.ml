open Mvl_topology
open Mvl_geometry

type edge = { u : int; v : int; track : int }

type t = {
  graph : Graph.t;
  node_at : int array;
  position : int array;
  edges : edge array;
  tracks : int;
}

let span t e = Interval.make t.position.(e.u) t.position.(e.v)

let position_of_node_at node_at =
  let n = Array.length node_at in
  let position = Array.make n (-1) in
  Array.iteri
    (fun p u ->
      if u < 0 || u >= n then invalid_arg "Collinear: node id out of range";
      if position.(u) >= 0 then invalid_arg "Collinear: duplicate node";
      position.(u) <- p)
    node_at;
  position

let of_order graph ~node_at =
  if Array.length node_at <> Graph.n graph then
    invalid_arg "Collinear.of_order: order length mismatch";
  let position = position_of_node_at node_at in
  let graph_edges = Graph.edges graph in
  let spans =
    Array.map (fun (u, v) -> Interval.make position.(u) position.(v)) graph_edges
  in
  let assignment = Track_assign.greedy spans in
  let edges =
    Array.mapi
      (fun i (u, v) -> { u; v; track = assignment.(i) })
      graph_edges
  in
  {
    graph;
    node_at;
    position;
    edges;
    tracks = Track_assign.count_tracks assignment;
  }

let natural graph =
  of_order graph ~node_at:(Array.init (Graph.n graph) (fun i -> i))

let validate t =
  let n = Graph.n t.graph in
  let ( let* ) r f = Result.bind r f in
  let* () =
    if Array.length t.node_at <> n || Array.length t.position <> n then
      Error "order arrays have wrong length"
    else Ok ()
  in
  let* () =
    try
      let expected = position_of_node_at t.node_at in
      if expected <> t.position then Error "position is not inverse of node_at"
      else Ok ()
    with Invalid_argument msg -> Error msg
  in
  let* () =
    if Array.length t.edges <> Graph.m t.graph then
      Error
        (Printf.sprintf "edge count mismatch: %d edges for %d graph edges"
           (Array.length t.edges) (Graph.m t.graph))
    else Ok ()
  in
  let normalized =
    Array.map (fun e -> if e.u < e.v then (e.u, e.v) else (e.v, e.u)) t.edges
  in
  let sorted = Array.copy normalized in
  Array.sort
    (fun (a1, a2) (b1, b2) ->
      match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
    sorted;
  let* () =
    if sorted <> Graph.edges t.graph then Error "edge set differs from graph"
    else Ok ()
  in
  let* () =
    if Array.exists (fun e -> e.track < 0 || e.track >= t.tracks) t.edges then
      Error "track index out of bounds"
    else Ok ()
  in
  (* interior-disjointness per track *)
  let by_track = Array.make t.tracks [] in
  Array.iter
    (fun e -> by_track.(e.track) <- span t e :: by_track.(e.track))
    t.edges;
  let conflict = ref None in
  Array.iteri
    (fun track spans ->
      if !conflict = None then begin
        let sorted_spans =
          List.sort (fun a b -> Int.compare a.Interval.lo b.Interval.lo) spans
        in
        let rec scan = function
          | a :: (b :: _ as rest) ->
              if Interval.overlap_interior a b then
                conflict :=
                  Some
                    (Format.asprintf "track %d: spans %a and %a overlap" track
                       Interval.pp a Interval.pp b)
              else scan rest
          | _ -> ()
        in
        scan sorted_spans
      end)
    by_track;
  match !conflict with Some msg -> Error msg | None -> Ok ()

let max_span t =
  Array.fold_left (fun acc e -> max acc (Interval.length (span t e))) 0 t.edges

let density_lower_bound t =
  Track_assign.max_density (Array.map (fun e -> span t e) t.edges)

let fold t =
  let n = Array.length t.node_at in
  let h = (n + 1) / 2 in
  let node_at = Array.make n (-1) in
  Array.iteri
    (fun p v ->
      let p' = if p < h then 2 * p else (2 * (n - 1 - p)) + 1 in
      node_at.(p') <- v)
    t.node_at;
  of_order t.graph ~node_at

let relabel_tracks t ~perm =
  if Array.length perm <> t.tracks then invalid_arg "Collinear.relabel_tracks";
  let edges = Array.map (fun e -> { e with track = perm.(e.track) }) t.edges in
  { t with edges }
