(** Orthogonal 2-D layouts (§2.4): nodes arranged on a [rows x cols]
    grid such that every edge connects two nodes of the same row or the
    same column.  Row edges are assigned to horizontal tracks in the gap
    above their row, column edges to vertical tracks in the gap right of
    their column; per-line track packing is the optimal left-edge
    greedy.

    Line tables are stored columnar: per-line CSR offsets over flat
    [edge_id]/[a]/[b]/[track] int columns (built by a two-pass counting
    sort over the edge list, packed by the flat {!Track_assign} engine).
    Within a line, edges appear in ascending edge id order. *)

open Mvl_topology

type line_edge = {
  edge_id : int;  (** index into [Graph.edges graph] *)
  a : int;        (** smaller line coordinate (column for row edges) *)
  b : int;        (** larger line coordinate *)
  track : int;    (** 0-based track within the line's gap *)
}

type t = {
  graph : Graph.t;
  rows : int;
  cols : int;
  place : (int * int) array;  (** node id -> (row, col) *)
  node_at : int array array;  (** [row].(col) -> node id *)
  row_off : int array;        (** CSR offsets, length [rows + 1] *)
  row_eid : int array;        (** edge id per row-edge slot *)
  row_a : int array;          (** smaller column per row-edge slot *)
  row_b : int array;          (** larger column per row-edge slot *)
  row_track : int array;      (** assigned track per row-edge slot *)
  col_off : int array;        (** CSR offsets, length [cols + 1] *)
  col_eid : int array;
  col_a : int array;          (** smaller row per column-edge slot *)
  col_b : int array;
  col_track : int array;
  row_tracks : int array;     (** tracks in the gap above each row *)
  col_tracks : int array;     (** tracks right of each column *)
}

val create :
  ?jobs:int -> Graph.t -> rows:int -> cols:int -> place:(int -> int * int) -> t
(** Classifies each edge as row or column edge and packs tracks.
    Raises [Invalid_argument] if some edge is neither (the placement is
    not orthogonal), if the placement is not a bijection onto the grid,
    or if the grid size does not match [Graph.n].  [jobs > 1] shards the
    per-line track packing across a {!Mvl_pool.Domain_pool} (output is
    identical at every job count; degraded to serial under
    [MVL_FORCE_FORK]). *)

val of_product :
  ?jobs:int -> row_factor:Collinear.t -> col_factor:Collinear.t -> Graph.t -> t
(** Orthogonal layout of a product network [G = A x B] (§3.2): node
    [(x, y)] (encoded [y * n_A + x]) goes to column [pos_A x] and row
    [pos_B y], so each row is laid out like [A] and each column like
    [B].  [graph] must be the Cartesian product with that encoding. *)

val row_edges : t -> int -> line_edge array
(** Materialized per-row view of the CSR columns (ascending edge id);
    convenience for tests and small consumers — the hot paths read the
    flat columns directly. *)

val col_edges : t -> int -> line_edge array

val row_edge_count : t -> int -> int
val col_edge_count : t -> int -> int

val total_row_tracks : t -> int
val total_col_tracks : t -> int

val max_row_degree : t -> int
(** Largest number of row edges incident to a single node — determines
    the minimum node width. *)

val max_col_degree : t -> int
