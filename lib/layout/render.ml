open Mvl_topology
open Mvl_geometry

let collinear_ascii ?label (c : Collinear.t) =
  let label = Option.value label ~default:string_of_int in
  let n = Graph.n c.Collinear.graph in
  (* column of each position: nodes are cellw wide, 1 space apart *)
  let cellw =
    Array.fold_left
      (fun acc u -> max acc (String.length (label u)))
      1 c.Collinear.node_at
    + 2
  in
  let col p = p * (cellw + 1) + (cellw / 2) in
  let width = (n * (cellw + 1)) + 1 in
  let canvas_rows = c.Collinear.tracks in
  let canvas = Array.init canvas_rows (fun _ -> Bytes.make width ' ') in
  let put row x ch =
    if x >= 0 && x < width then Bytes.set canvas.(row) x ch
  in
  (* draw tracks from the top (track tracks-1) downwards; row index 0 is
     the topmost text line *)
  Array.iter
    (fun (e : Collinear.edge) ->
      let row = canvas_rows - 1 - e.track in
      let x1 = col (min c.Collinear.position.(e.u) c.Collinear.position.(e.v)) in
      let x2 = col (max c.Collinear.position.(e.u) c.Collinear.position.(e.v)) in
      put row x1 '+';
      put row x2 '+';
      for x = x1 + 1 to x2 - 1 do
        put row x '-'
      done;
      (* drops down to the node row *)
      for r = row + 1 to canvas_rows - 1 do
        List.iter
          (fun x ->
            let existing = Bytes.get canvas.(r) x in
            put r x (if existing = '-' then '#' else '|'))
          [ x1; x2 ]
      done)
    c.Collinear.edges;
  let rstrip s =
    let stop = ref (String.length s) in
    while !stop > 0 && s.[!stop - 1] = ' ' do
      decr stop
    done;
    String.sub s 0 !stop
  in
  let buf = Buffer.create (width * (canvas_rows + 2)) in
  Array.iter
    (fun row ->
      Buffer.add_string buf (rstrip (Bytes.to_string row));
      Buffer.add_char buf '\n')
    canvas;
  (* node row *)
  Array.iteri
    (fun p u ->
      ignore p;
      let s = label u in
      let pad = cellw - String.length s in
      Buffer.add_char buf '[';
      Buffer.add_string buf (String.make (pad / 2) ' ');
      Buffer.add_string buf s;
      Buffer.add_string buf (String.make (pad - (pad / 2)) ' ');
      Buffer.add_char buf ']')
    c.Collinear.node_at;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let layer_color z =
  let palette =
    [| "#d62728"; "#1f77b4"; "#2ca02c"; "#ff7f0e"; "#9467bd"; "#8c564b";
       "#e377c2"; "#7f7f7f"; "#bcbd22"; "#17becf" |]
  in
  palette.((z - 1) mod Array.length palette)

let layout_svg ?(scale = 4) (t : Layout.t) =
  let bbox = Layout.bounding_box t in
  let pad = 2 in
  let sx x = (x - bbox.Rect.x0 + pad) * scale in
  (* flip y so the layout's y axis points up in the image *)
  let sy y = (bbox.Rect.y1 - y + pad) * scale in
  let buf = Buffer.create 65536 in
  let w = (Rect.width bbox + (2 * pad)) * scale in
  let h = (Rect.height bbox + (2 * pad)) * scale in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"100%%\" height=\"100%%\" \
        fill=\"white\"/>\n"
       w h w h);
  let g = Layout.geom t in
  for id = 0 to g.Geom.n_nodes - 1 do
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" \
          fill=\"#dddddd\" stroke=\"#555555\" stroke-width=\"1\"><title>node \
          %d</title></rect>\n"
         (sx g.Geom.nx0.{id})
         (sy g.Geom.ny1.{id})
         ((g.Geom.nx1.{id} - g.Geom.nx0.{id} + 1) * scale)
         ((g.Geom.ny1.{id} - g.Geom.ny0.{id} + 1) * scale)
         id)
  done;
  for i = 0 to g.Geom.n_wires - 1 do
    for k = g.Geom.wire_off.{i} to g.Geom.wire_off.{i + 1} - 2 do
      let xa = g.Geom.px.{k} and ya = g.Geom.py.{k} and za = g.Geom.pz.{k} in
      let xb = g.Geom.px.{k + 1} and yb = g.Geom.py.{k + 1} in
      if xa = xb && ya = yb then
        Buffer.add_string buf
          (Printf.sprintf
             "<circle cx=\"%d\" cy=\"%d\" r=\"%d\" fill=\"#222222\"/>\n"
             (sx xa) (sy ya) (max 1 (scale / 3)))
      else begin
        (* draw from the lesser endpoint along the running axis, matching
           the normalization Segment.make used to apply *)
        let xa, ya, xb, yb =
          if xb < xa || yb < ya then (xb, yb, xa, ya) else (xa, ya, xb, yb)
        in
        Buffer.add_string buf
          (Printf.sprintf
             "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" \
              stroke=\"%s\" stroke-width=\"%d\"/>\n"
             (sx xa) (sy ya) (sx xb) (sy yb) (layer_color za)
             (max 1 (scale / 4)))
      end
    done
  done;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let grid_summary (o : Orthogonal.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "recursive grid: %d rows x %d cols of blocks\n" o.rows
       o.cols);
  Buffer.add_string buf "horizontal tracks above each row:  ";
  Array.iter (fun t -> Buffer.add_string buf (Printf.sprintf "%d " t)) o.row_tracks;
  Buffer.add_string buf "\nvertical tracks right of each col: ";
  Array.iter (fun t -> Buffer.add_string buf (Printf.sprintf "%d " t)) o.col_tracks;
  Buffer.add_char buf '\n';
  Buffer.contents buf
