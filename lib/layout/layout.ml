open Mvl_geometry
open Mvl_topology

type t = {
  graph : Graph.t;
  layers : int;
  node_layers : int array;
  geom : Geom.t;
  wires_v : Wire.t array Lazy.t;
  nodes_v : Rect.t array Lazy.t;
}

type metrics = {
  width : int;
  height : int;
  area : int;
  layers : int;
  volume : int;
  max_wire : int;
  total_wire : int;
  vias : int;
}

let graph t = t.graph
let layers (t : t) = t.layers

let resident_bytes t =
  Geom.resident_bytes t.geom
  + (Array.length t.node_layers * (Sys.word_size / 8))
let node_layers t = t.node_layers
let geom t = t.geom
let wires t = Lazy.force t.wires_v
let nodes t = Lazy.force t.nodes_v
let node_rect t i = Geom.node_rect t.geom i

let check_node_layers ~layers ~n node_layers =
  match node_layers with
  | None -> Array.make n 1
  | Some nl ->
      if Array.length nl <> n then
        invalid_arg "Layout.make: one active layer per node required";
      Array.iter
        (fun z ->
          if z < 1 || z > layers then
            invalid_arg "Layout.make: node layer out of range")
        nl;
      nl

let make ~graph ~layers ?node_layers ~nodes ~wires () =
  if layers < 1 then invalid_arg "Layout.make: layers < 1";
  if Array.length nodes <> Graph.n graph then
    invalid_arg "Layout.make: one footprint per node required";
  if Array.length wires <> Graph.m graph then
    invalid_arg "Layout.make: one wire per edge required";
  let node_layers = check_node_layers ~layers ~n:(Graph.n graph) node_layers in
  {
    graph;
    layers;
    node_layers;
    geom = Geom.of_wires ~nodes ~wires;
    wires_v = Lazy.from_val wires;
    nodes_v = Lazy.from_val nodes;
  }

let of_geom ~graph ~layers ?node_layers geom =
  if layers < 1 then invalid_arg "Layout.make: layers < 1";
  if geom.Geom.n_nodes <> Graph.n graph then
    invalid_arg "Layout.make: one footprint per node required";
  if geom.Geom.n_wires <> Graph.m graph then
    invalid_arg "Layout.make: one wire per edge required";
  let node_layers = check_node_layers ~layers ~n:(Graph.n graph) node_layers in
  {
    graph;
    layers;
    node_layers;
    geom;
    wires_v = lazy (Geom.wires_view geom);
    nodes_v = lazy (Geom.nodes_view geom);
  }

let active_layers (t : t) =
  (* node layers are validated into [1, layers], so one pass over a
     presence table replaces sorting a boxed copy of the column *)
  let seen = Array.make (t.layers + 1) false in
  let count = ref 0 in
  Array.iter
    (fun z ->
      if not seen.(z) then begin
        seen.(z) <- true;
        incr count
      end)
    t.node_layers;
  !count

let bounding_box t = Geom.bounding_box t.geom

let translate t ~dx ~dy =
  let geom = Geom.translate t.geom ~dx ~dy in
  {
    t with
    geom;
    wires_v = lazy (Geom.wires_view geom);
    nodes_v = lazy (Geom.nodes_view geom);
  }

let metrics t =
  let bbox = bounding_box t in
  let width = Rect.width bbox and height = Rect.height bbox in
  let area = width * height in
  let g = t.geom in
  let max_wire = ref 0 and total_wire = ref 0 and vias = ref 0 in
  for i = 0 to g.Geom.n_wires - 1 do
    let lo = g.Geom.wire_off.{i} and hi = g.Geom.wire_off.{i + 1} in
    let xy = ref 0 and zlen = ref 0 in
    for k = lo to hi - 2 do
      xy :=
        !xy
        + abs (g.Geom.px.{k + 1} - g.Geom.px.{k})
        + abs (g.Geom.py.{k + 1} - g.Geom.py.{k});
      zlen := !zlen + abs (g.Geom.pz.{k + 1} - g.Geom.pz.{k})
    done;
    if !xy > !max_wire then max_wire := !xy;
    total_wire := !total_wire + !xy;
    vias := !vias + !zlen
  done;
  {
    width;
    height;
    area;
    layers = t.layers;
    volume = t.layers * area;
    max_wire = !max_wire;
    total_wire = !total_wire;
    vias = !vias;
  }

let pp_metrics ppf m =
  Format.fprintf ppf
    "@[%dx%d area=%d layers=%d volume=%d max_wire=%d total_wire=%d vias=%d@]"
    m.width m.height m.area m.layers m.volume m.max_wire m.total_wire m.vias
