(** The orthogonal multilayer layout scheme (§2.4): turn an orthogonal
    2-D layout into an [L]-layer layout by splitting each gap's tracks
    into layer groups.

    Horizontal tracks are split into [ceil(L/2)] groups carried by the
    odd layers [1, 3, ...]; vertical tracks into [floor(L/2)] groups on
    the even layers [2, 4, ...].  With [L = 2] this degenerates to the
    classic Thompson-style layout.  The resulting geometry is valid in
    the strict multilayer grid model ({!Check.Strict}): every wire is a
    node-disjoint path, which the realization achieves by giving every
    edge its own terminal on its node's boundary and pairing each track
    group's in-plane runs with a dedicated adjacent layer for the
    perpendicular access runs. *)

type groups = { horizontal : int; vertical : int }

val groups_for_layers : int -> groups
(** [{horizontal = ceil(L/2); vertical = floor(L/2)}].  Requires
    [L >= 2]. *)

val realize :
  ?node_side:int -> ?jobs:int -> Orthogonal.t -> layers:int -> Layout.t
(** Produce the full geometry.  [node_side] forces a minimum node
    footprint side (default: just large enough for the terminals, i.e.
    degree + 2) — used by the optimal-scalability experiment (§3.2).
    [jobs > 1] shards wire emission across a {!Mvl_pool.Domain_pool},
    each worker streaming its wires into their precomputed fixed ranges
    of the final geometry columns — output is byte-identical at every
    job count (degraded to serial under [MVL_FORCE_FORK]). *)

val metrics : ?node_side:int -> Orthogonal.t -> layers:int -> Layout.metrics
(** [metrics o ~layers] = [Layout.metrics (realize o ~layers)]. *)

type frame = {
  col_x0 : int array;  (** leftmost x of each column band *)
  col_w : int array;   (** column band widths *)
  row_y0 : int array;
  row_h : int array;
  col_slots : int array;  (** per-layer vertical track slots per gap *)
  row_slots : int array;
}
(** The coordinate frame of a realized layout, exposed for builders that
    add geometry on top (the 3-D grid model of {!Multilayer3d}). *)

val realize_slab :
  ?node_side:int ->
  Orthogonal.t ->
  z_offset:int ->
  band_layers:int ->
  total_layers:int ->
  col_gap_extra:int ->
  node_extra_rows:int ->
  Layout.t * frame
(** Realize one slab of a 3-D grid-model layout: every z coordinate is
    shifted by [z_offset] (nodes sit on layer [1 + z_offset]), the slab
    uses [band_layers] wiring layers of the [total_layers] stack, each
    column gap reserves [col_gap_extra] extra columns (for inter-slab
    via stacks) and each node band reserves [node_extra_rows] terminal
    rows at its top (for inter-slab terminals). *)

val realize_augmented :
  ?node_side:int ->
  ?jobs:int ->
  Orthogonal.t ->
  full_graph:Mvl_topology.Graph.t ->
  layers:int ->
  Layout.t
(** §5.3 construction: [full_graph] is a supergraph of the orthogonal
    layout's graph on the same nodes.  Edges not present in the
    orthogonal layout (e.g. the folded hypercube's diameter links) are
    each routed on a dedicated horizontal track in the source's row gap
    and a dedicated vertical track right of the destination's column;
    the extra tracks are spread over the [floor(L/2)] paired layer
    groups, so [E] extra links add only about [E / (rows * L/2)] tracks
    per gap in each direction. *)
