(** Columnar (struct-of-arrays) geometry store.

    All layout geometry lives in flat Bigarray int columns: node
    footprint corners in four parallel columns, wire polyline vertices
    in three point columns indexed CSR-style by a per-wire offset
    column.  The columns are off-heap, so the GC never scans a layout's
    geometry, and every consumer (metrics, checking, serialization,
    rendering) walks memory linearly instead of chasing per-point
    records.  [Wire.t]/[Rect.t] views are materialized on demand for
    the small-layout API. *)

open Mvl_geometry

type col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  n_nodes : int;
  n_wires : int;
  n_points : int;
  nx0 : col;      (** node footprint corners, [n_nodes] each *)
  ny0 : col;
  nx1 : col;
  ny1 : col;
  wire_off : col; (** CSR offsets into the point columns, [n_wires + 1] *)
  edge_u : col;   (** canonical edge endpoints, [n_wires] each *)
  edge_v : col;
  px : col;       (** polyline vertices, [n_points] each *)
  py : col;
  pz : col;
}

val n_segments : t -> int
(** Total polyline segments over all wires ([n_points - n_wires]). *)

val resident_bytes : t -> int
(** Bytes pinned by the store's Bigarray columns (one word per
    element) — the size input for cost/size-aware cache admission. *)

val node_rect : t -> int -> Rect.t

val wire_view : t -> int -> Wire.t
(** Materializes wire [i] as a [Wire.t] (pre-validated geometry, no
    re-checking). *)

val nodes_view : t -> Rect.t array
val wires_view : t -> Wire.t array

val of_wires : nodes:Rect.t array -> wires:Wire.t array -> t
(** Columnarizes already-validated record geometry (the compatibility
    path behind [Layout.make]). *)

val equal : t -> t -> bool
(** Element-wise column equality: same nodes, same edges, same polyline
    vertices in the same order. *)

val translate : t -> dx:int -> dy:int -> t

val bounding_box : t -> Rect.t
(** Hull of all node corners and wire vertices; the zero rect when the
    store is empty. *)

val wire_length_xy : t -> int -> int
(** In-plane length of wire [i]. *)

val wire_length : t -> int -> int
(** Full grid length of wire [i], vias included. *)

(** Incremental construction: emit nodes and wires (wires in any id
    order, each wire's points in path order); [build] validates and
    reorders everything into id-ordered CSR columns.

    Point emission replicates [Wire.make] semantics exactly:
    consecutive duplicate points are dropped silently, consecutive
    distinct points must differ in exactly one coordinate, and a wire
    must keep at least two points. *)
module Builder : sig
  type b

  val create : n_nodes:int -> n_wires:int -> b

  val set_node : b -> int -> x0:int -> y0:int -> x1:int -> y1:int -> unit

  val start_wire : b -> id:int -> u:int -> v:int -> unit
  (** Opens wire [id]; subsequent [point] calls append to it until the
      next [start_wire].  Raises if [id] was already emitted. *)

  val point : b -> x:int -> y:int -> z:int -> unit

  val build : b -> t
  (** Raises [Invalid_argument] if any wire id was never emitted, kept
      fewer than two points, or any node footprint is inverted. *)

  (** {1 Fixed-offset emission}

      When every wire's exact deduped point count is known up front,
      [create_fixed] lays out the final CSR columns from those counts
      and each {!writer} streams its wires' points straight into their
      precomputed ranges — zero intermediate buffers, zero merge copy.
      Writers over disjoint wire sets never touch the same slots, so
      emission shards across domains freely; the built geometry is
      byte-identical at every writer/job count because each wire's
      slots depend only on its id.

      Point semantics (duplicate dropping, axis alignment) match
      {!point} exactly, and the count contract is self-checking: a wire
      whose deduped points miss or exceed its declared count raises.
      Duplicate-emission detection is exact within a domain and for
      disjoint per-domain wire sets; two domains racing on the {e same}
      wire id is undefined. *)

  type fixed
  type writer

  val create_fixed : n_nodes:int -> wire_counts:int array -> fixed
  (** [wire_counts.(id)] is wire [id]'s exact deduped point count
      (>= 2; raises otherwise). *)

  val set_node_fixed :
    fixed -> int -> x0:int -> y0:int -> x1:int -> y1:int -> unit

  val writer : fixed -> writer
  (** A per-domain emission cursor.  Must not be shared between
      domains. *)

  val fixed_wire : writer -> id:int -> u:int -> v:int -> unit
  (** Opens wire [id] (closing and count-checking the writer's previous
      wire).  Raises if [id] was already emitted. *)

  val fixed_point : writer -> x:int -> y:int -> z:int -> unit

  val writer_done : writer -> unit
  (** Closes the writer's last open wire, checking its point count.
      Call once per writer after its final wire. *)

  val build_fixed : fixed -> t
  (** Raises [Invalid_argument] if any wire id was never emitted or any
      node was never set; otherwise returns the filled columns with no
      copying. *)
end
