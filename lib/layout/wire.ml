open Mvl_geometry

type t = { edge : int * int; points : Point.t array }

let make ~edge points =
  (* drop zero-length steps so callers can emit uniform point templates *)
  let rec dedupe = function
    | a :: b :: rest when Point.equal a b -> dedupe (a :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  let points = Array.of_list (dedupe points) in
  if Array.length points < 2 then invalid_arg "Wire.make: fewer than 2 points";
  for i = 0 to Array.length points - 2 do
    (* Segment.make validates axis alignment and non-degeneracy *)
    ignore (Segment.make points.(i) points.(i + 1))
  done;
  { edge; points }

let unsafe_of_points ~edge points = { edge; points }

let segments w =
  Array.init
    (Array.length w.points - 1)
    (fun i -> Segment.make w.points.(i) w.points.(i + 1))

let length w =
  let total = ref 0 in
  for i = 0 to Array.length w.points - 2 do
    total := !total + Point.manhattan w.points.(i) w.points.(i + 1)
  done;
  !total

let length_xy w =
  let total = ref 0 in
  for i = 0 to Array.length w.points - 2 do
    let a = w.points.(i) and b = w.points.(i + 1) in
    total := !total + abs (a.Point.x - b.Point.x) + abs (a.Point.y - b.Point.y)
  done;
  !total

let endpoints w = (w.points.(0), w.points.(Array.length w.points - 1))

let pp ppf w =
  let u, v = w.edge in
  Format.fprintf ppf "wire(%d-%d:" u v;
  Array.iter (fun p -> Format.fprintf ppf " %a" Point.pp p) w.points;
  Format.fprintf ppf ")"
