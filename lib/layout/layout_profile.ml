type phase = Place | Pack | Terminals | Emit | Build

type phases = {
  place_seconds : float;
  pack_seconds : float;
  terminals_seconds : float;
  emit_seconds : float;
  build_seconds : float;
}

let zero =
  {
    place_seconds = 0.;
    pack_seconds = 0.;
    terminals_seconds = 0.;
    emit_seconds = 0.;
    build_seconds = 0.;
  }

let current = ref zero
let reset () = current := zero

let label = function
  | Place -> "place"
  | Pack -> "pack"
  | Terminals -> "terminals"
  | Emit -> "emit"
  | Build -> "build"

let debug () = Sys.getenv_opt "MVL_LAYOUT_TIMINGS" <> None

let record phase dt =
  if debug () then Printf.eprintf "layout: %-16s %.4fs\n%!" (label phase) dt;
  let c = !current in
  current :=
    (match phase with
    | Place -> { c with place_seconds = c.place_seconds +. dt }
    | Pack -> { c with pack_seconds = c.pack_seconds +. dt }
    | Terminals -> { c with terminals_seconds = c.terminals_seconds +. dt }
    | Emit -> { c with emit_seconds = c.emit_seconds +. dt }
    | Build -> { c with build_seconds = c.build_seconds +. dt })

let timed phase f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  record phase (Unix.gettimeofday () -. t0);
  r

let snapshot () = !current
