type channel = {
  index : int;
  tracks : int;
  edges : int;
  utilization : float;
}

type t = {
  rows : channel array;
  cols : channel array;
  max_row_tracks : int;
  max_col_tracks : int;
  avg_row_tracks : float;
  avg_col_tracks : float;
  balance : float;
}

let analyze (o : Orthogonal.t) =
  let build tracks edge_count =
    let max_tracks = Array.fold_left max 0 tracks in
    let channels =
      Array.mapi
        (fun i t ->
          {
            index = i;
            tracks = t;
            edges = edge_count i;
            utilization =
              (if max_tracks = 0 then 0.0
               else float_of_int t /. float_of_int max_tracks);
          })
        tracks
    in
    (channels, max_tracks)
  in
  let rows, max_row_tracks =
    build o.Orthogonal.row_tracks (Orthogonal.row_edge_count o)
  in
  let cols, max_col_tracks =
    build o.Orthogonal.col_tracks (Orthogonal.col_edge_count o)
  in
  let avg arr =
    if Array.length arr = 0 then 0.0
    else
      float_of_int (Array.fold_left (fun acc c -> acc + c.tracks) 0 arr)
      /. float_of_int (Array.length arr)
  in
  let avg_row_tracks = avg rows and avg_col_tracks = avg cols in
  let balance =
    let denom = float_of_int (max_row_tracks + max_col_tracks) in
    if denom = 0.0 then 1.0 else (avg_row_tracks +. avg_col_tracks) /. denom
  in
  { rows; cols; max_row_tracks; max_col_tracks; avg_row_tracks; avg_col_tracks; balance }

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "row gaps: max %d tracks, avg %.1f@," t.max_row_tracks
    t.avg_row_tracks;
  Format.fprintf ppf "col gaps: max %d tracks, avg %.1f@," t.max_col_tracks
    t.avg_col_tracks;
  Format.fprintf ppf "channel balance: %.2f@," t.balance;
  Format.fprintf ppf "@]"
