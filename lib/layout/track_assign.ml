open Mvl_geometry

(* a simple binary min-heap over (key, value) int pairs *)
module Heap = struct
  type t = { mutable data : (int * int) array; mutable size : int }

  let create () = { data = Array.make 16 (0, 0); size = 0 }

  let swap h i j =
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(j);
    h.data.(j) <- tmp

  let push h kv =
    if h.size = Array.length h.data then begin
      let bigger = Array.make (2 * h.size) (0, 0) in
      Array.blit h.data 0 bigger 0 h.size;
      h.data <- bigger
    end;
    h.data.(h.size) <- kv;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && fst h.data.((!i - 1) / 2) > fst h.data.(!i) do
      swap h ((!i - 1) / 2) !i;
      i := (!i - 1) / 2
    done

  let peek h = if h.size = 0 then None else Some h.data.(0)

  let pop h =
    let top = h.data.(0) in
    h.size <- h.size - 1;
    h.data.(0) <- h.data.(h.size);
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < h.size && fst h.data.(l) < fst h.data.(!smallest) then smallest := l;
      if r < h.size && fst h.data.(r) < fst h.data.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        swap h !i !smallest;
        i := !smallest
      end
    done;
    top
end

let greedy spans =
  let count = Array.length spans in
  let order = Array.init count (fun i -> i) in
  Array.sort
    (fun a b ->
      match Int.compare spans.(a).Interval.lo spans.(b).Interval.lo with
      | 0 -> Int.compare spans.(a).Interval.hi spans.(b).Interval.hi
      | c -> c)
    order;
  let assignment = Array.make count 0 in
  (* heap of (right end, track): a track is reusable for a span starting
     at [lo] when its last span ends at or before [lo] *)
  let heap = Heap.create () in
  let next_track = ref 0 in
  Array.iter
    (fun i ->
      let span = spans.(i) in
      let track =
        match Heap.peek heap with
        | Some (finish, track) when finish <= span.Interval.lo ->
            ignore (Heap.pop heap);
            track
        | _ ->
            let t = !next_track in
            incr next_track;
            t
      in
      assignment.(i) <- track;
      Heap.push heap (span.Interval.hi, track))
    order;
  assignment

let max_density spans =
  (* sweep: +1 at lo, -1 at hi; density measured on open interiors, so
     process closings before openings at equal coordinates *)
  let events =
    Array.concat
      (Array.to_list
         (Array.map
            (fun s -> [| (s.Interval.lo, 1); (s.Interval.hi, -1) |])
            spans))
  in
  Array.sort
    (fun (x1, d1) (x2, d2) ->
      match Int.compare x1 x2 with 0 -> Int.compare d1 d2 | c -> c)
    events;
  let best = ref 0 and current = ref 0 in
  Array.iter
    (fun (_, d) ->
      current := !current + d;
      if !current > !best then best := !current)
    events;
  !best

let count_tracks assignment =
  Array.fold_left (fun acc t -> max acc (t + 1)) 0 assignment
