open Mvl_geometry

(* Two front ends over one engine.

   The flat [_into] functions are the construction hot path: spans live
   in parallel int columns (a CSR slice of Orthogonal's line tables),
   the heap is two preallocated int arrays inside a reusable [scratch],
   and the span sort works on packed [(lo, hi, index)] int keys — no
   records, no tuples, no per-call allocation beyond scratch growth.

   The original [Interval.t array] API stays for the small consumers
   (collinear layouts, cluster quotients, order search).  It keeps its
   historical comparison semantics bit-for-bit: [Array.sort] on a
   (lo, hi) comparator leaves equal spans in an order the flat engine's
   total (lo, hi, index) key would not reproduce, and cluster layouts
   with parallel links depend on that order, so the record API must not
   be rebased onto the flat sort. *)

(* --- in-place int heapsort over a range -------------------------------- *)

(* [Array.sort] cannot sort a prefix in place; this is a plain heapsort
   over [a.(off .. off+len-1)], allocation-free and deterministic. *)
let sort_ints a ~off ~len =
  let sift_down root last =
    let r = ref root in
    let continue = ref true in
    while !continue do
      let child = (2 * !r) + 1 in
      if child > last then continue := false
      else begin
        let child =
          if child < last && a.(off + child) < a.(off + child + 1) then
            child + 1
          else child
        in
        if a.(off + !r) >= a.(off + child) then continue := false
        else begin
          let tmp = a.(off + !r) in
          a.(off + !r) <- a.(off + child);
          a.(off + child) <- tmp;
          r := child
        end
      end
    done
  in
  for root = (len - 2) / 2 downto 0 do
    sift_down root (len - 1)
  done;
  for last = len - 1 downto 1 do
    let tmp = a.(off) in
    a.(off) <- a.(off + last);
    a.(off + last) <- tmp;
    sift_down 0 (last - 1)
  done

(* --- preallocated int-packed min-heap ---------------------------------- *)

(* Keyed on span right end only — the same comparisons, in the same
   order, as the historical (finish, track) pair heap, so pop order
   (and with it every track assignment) is reproduced exactly. *)
type scratch = {
  mutable keys : int array; (* packed sort keys / event queue *)
  mutable hfin : int array; (* heap: span right ends *)
  mutable htrk : int array; (* heap: track of that span *)
  mutable hsize : int;
}

let scratch () =
  { keys = Array.make 64 0; hfin = Array.make 64 0; htrk = Array.make 64 0;
    hsize = 0 }

let ensure a n =
  if Array.length a >= n then a
  else begin
    let cap = ref (max 64 (Array.length a)) in
    while !cap < n do
      cap := !cap * 2
    done;
    let a' = Array.make !cap 0 in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let heap_push s fin trk =
  if s.hsize = Array.length s.hfin then begin
    s.hfin <- ensure s.hfin (s.hsize + 1);
    s.htrk <- ensure s.htrk (s.hsize + 1)
  end;
  s.hfin.(s.hsize) <- fin;
  s.htrk.(s.hsize) <- trk;
  s.hsize <- s.hsize + 1;
  let i = ref (s.hsize - 1) in
  while !i > 0 && s.hfin.((!i - 1) / 2) > s.hfin.(!i) do
    let p = (!i - 1) / 2 in
    let tf = s.hfin.(p) and tt = s.htrk.(p) in
    s.hfin.(p) <- s.hfin.(!i);
    s.htrk.(p) <- s.htrk.(!i);
    s.hfin.(!i) <- tf;
    s.htrk.(!i) <- tt;
    i := p
  done

let heap_pop s =
  s.hsize <- s.hsize - 1;
  s.hfin.(0) <- s.hfin.(s.hsize);
  s.htrk.(0) <- s.htrk.(s.hsize);
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < s.hsize && s.hfin.(l) < s.hfin.(!smallest) then smallest := l;
    if r < s.hsize && s.hfin.(r) < s.hfin.(!smallest) then smallest := r;
    if !smallest = !i then continue := false
    else begin
      let tf = s.hfin.(!i) and tt = s.htrk.(!i) in
      s.hfin.(!i) <- s.hfin.(!smallest);
      s.htrk.(!i) <- s.htrk.(!smallest);
      s.hfin.(!smallest) <- tf;
      s.htrk.(!smallest) <- tt;
      i := !smallest
    end
  done

(* --- flat engine -------------------------------------------------------- *)

(* key = lo:20 | hi:20 | index:22 — 62 bits, always positive *)
let coord_bits = 20
let index_bits = 22
let coord_limit = 1 lsl coord_bits
let index_limit = 1 lsl index_bits

let greedy_into s ~lo ~hi ~track ~off ~len =
  if len = 0 then 0
  else begin
    if len > index_limit then
      invalid_arg "Track_assign.greedy_into: more than 2^22 spans on one line";
    s.keys <- ensure s.keys len;
    let keys = s.keys in
    for i = 0 to len - 1 do
      let a = lo.(off + i) and b = hi.(off + i) in
      let a, b = if a <= b then (a, b) else (b, a) in
      if a < 0 || b >= coord_limit then
        invalid_arg "Track_assign.greedy_into: coordinate out of [0, 2^20)";
      keys.(i) <-
        (a lsl (coord_bits + index_bits)) lor (b lsl index_bits) lor i
    done;
    sort_ints keys ~off:0 ~len;
    s.hsize <- 0;
    let next_track = ref 0 in
    for k = 0 to len - 1 do
      let key = keys.(k) in
      let i = key land (index_limit - 1) in
      let b = (key lsr index_bits) land (coord_limit - 1) in
      let a = key lsr (coord_bits + index_bits) in
      let t =
        if s.hsize > 0 && s.hfin.(0) <= a then begin
          let t = s.htrk.(0) in
          heap_pop s;
          t
        end
        else begin
          let t = !next_track in
          incr next_track;
          t
        end
      in
      track.(off + i) <- t;
      heap_push s b t
    done;
    !next_track
  end

let max_density_into s ~lo ~hi ~off ~len =
  if len = 0 then 0
  else begin
    (* event key = coordinate:62 | open?:1 — closings sort before
       openings at the same coordinate, so density is measured on open
       interiors exactly like the record API always did *)
    s.keys <- ensure s.keys (2 * len);
    let keys = s.keys in
    for i = 0 to len - 1 do
      let a = lo.(off + i) and b = hi.(off + i) in
      let a, b = if a <= b then (a, b) else (b, a) in
      keys.(2 * i) <- (a lsl 1) lor 1;
      keys.((2 * i) + 1) <- b lsl 1
    done;
    sort_ints keys ~off:0 ~len:(2 * len);
    let best = ref 0 and current = ref 0 in
    for k = 0 to (2 * len) - 1 do
      if keys.(k) land 1 = 1 then begin
        incr current;
        if !current > !best then best := !current
      end
      else decr current
    done;
    !best
  end

(* --- record front end --------------------------------------------------- *)

let greedy spans =
  let count = Array.length spans in
  let order = Array.init count (fun i -> i) in
  Array.sort
    (fun a b ->
      match Int.compare spans.(a).Interval.lo spans.(b).Interval.lo with
      | 0 -> Int.compare spans.(a).Interval.hi spans.(b).Interval.hi
      | c -> c)
    order;
  let assignment = Array.make count 0 in
  (* a track is reusable for a span starting at [lo] when its last span
     ends at or before [lo] *)
  let s = scratch () in
  let next_track = ref 0 in
  Array.iter
    (fun i ->
      let span = spans.(i) in
      let t =
        if s.hsize > 0 && s.hfin.(0) <= span.Interval.lo then begin
          let t = s.htrk.(0) in
          heap_pop s;
          t
        end
        else begin
          let t = !next_track in
          incr next_track;
          t
        end
      in
      assignment.(i) <- t;
      heap_push s span.Interval.hi t)
    order;
  assignment

let max_density spans =
  let count = Array.length spans in
  let lo = Array.make (max 1 count) 0 and hi = Array.make (max 1 count) 0 in
  Array.iteri
    (fun i s ->
      lo.(i) <- s.Interval.lo;
      hi.(i) <- s.Interval.hi)
    spans;
  max_density_into (scratch ()) ~lo ~hi ~off:0 ~len:count

let count_tracks assignment =
  Array.fold_left (fun acc t -> max acc (t + 1)) 0 assignment
