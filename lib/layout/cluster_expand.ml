open Mvl_topology
open Mvl_geometry

type spec = {
  pn : Pn_cluster.t;
  rows : int;
  cols : int;
  qplace : int -> int * int;
  intra : Collinear.t;
}

let of_product_quotient ~pn ~row_factor ~col_factor ~intra =
  let na = Graph.n row_factor.Collinear.graph in
  let nb = Graph.n col_factor.Collinear.graph in
  if na * nb <> Graph.n pn.Pn_cluster.quotient then
    invalid_arg "Cluster_expand.of_product_quotient: size mismatch";
  let qplace q =
    let x = q mod na and y = q / na in
    (col_factor.Collinear.position.(y), row_factor.Collinear.position.(x))
  in
  { pn; rows = nb; cols = na; qplace; intra }

(* one inter-cluster link = (quotient edge id, parallel index); [qe] is
   re-assigned as a unique link id once all links are collected *)
type link = {
  mutable qe : int;
  par : int;
  qa : int;  (* quotient node at the smaller line coordinate *)
  qb : int;
  pa : int;  (* attach position inside cluster qa *)
  pb : int;
  la : int;  (* line coordinate (col for row links / row for col links) *)
  lb : int;
  mutable track : int;
}

let ceil_div a b = if a = 0 then 0 else ((a - 1) / b) + 1

let realize spec ~layers =
  let { pn; rows; cols; qplace; intra } = spec in
  let g = Multilayer.groups_for_layers layers in
  let quotient = pn.Pn_cluster.quotient in
  let qn = Graph.n quotient in
  if rows * cols <> qn then invalid_arg "Cluster_expand.realize: grid size";
  let qpos = Array.init qn qplace in
  let node_at = Array.make_matrix rows cols (-1) in
  Array.iteri
    (fun q (r, c) ->
      if r < 0 || r >= rows || c < 0 || c >= cols then
        invalid_arg "Cluster_expand.realize: placement out of grid";
      if node_at.(r).(c) >= 0 then
        invalid_arg "Cluster_expand.realize: two clusters on one cell";
      node_at.(r).(c) <- q)
    qpos;
  let csize = pn.Pn_cluster.cluster_size in
  let mult = pn.Pn_cluster.multiplicity in
  (* --- classify inter-cluster links ------------------------------- *)
  let row_links = Array.make rows [] and col_links = Array.make cols [] in
  Graph.iter_edges quotient (fun qu qv ->
      for par = 0 to mult - 1 do
        let pu, pv = pn.Pn_cluster.attach (qu, qv) par in
        let ru, cu = qpos.(qu) and rv, cv = qpos.(qv) in
        if ru = rv && cu <> cv then begin
          let (qa, pa, la), (qb, pb, lb) =
            if cu < cv then ((qu, pu, cu), (qv, pv, cv))
            else ((qv, pv, cv), (qu, pu, cu))
          in
          row_links.(ru) <-
            { qe = 0; par; qa; qb; pa; pb; la; lb; track = -1 }
            :: row_links.(ru)
        end
        else if cu = cv && ru <> rv then begin
          let (qa, pa, la), (qb, pb, lb) =
            if ru < rv then ((qu, pu, ru), (qv, pv, rv))
            else ((qv, pv, rv), (qu, pu, ru))
          in
          col_links.(cu) <-
            { qe = 0; par; qa; qb; pa; pb; la; lb; track = -1 }
            :: col_links.(cu)
        end
        else
          invalid_arg
            (Printf.sprintf
               "Cluster_expand: quotient edge %d-%d is not grid-aligned" qu qv)
      done);
  (* --- pack quotient tracks --------------------------------------- *)
  let pack links =
    let arr = Array.of_list links in
    let spans = Array.map (fun l -> Interval.make l.la l.lb) arr in
    let assignment = Track_assign.greedy spans in
    Array.iteri (fun i l -> l.track <- assignment.(i)) arr;
    (arr, Track_assign.count_tracks assignment)
  in
  let row_tracks = Array.make rows 0 and col_tracks = Array.make cols 0 in
  let row_links =
    Array.mapi
      (fun r links ->
        let arr, t = pack links in
        row_tracks.(r) <- t;
        arr)
      row_links
  in
  let col_links =
    Array.mapi
      (fun c links ->
        let arr, t = pack links in
        col_tracks.(c) <- t;
        arr)
      col_links
  in
  (* --- per-cluster external link lists ----------------------------- *)
  (* for each quotient node: its row links and column links *)
  let ext_row = Array.make qn [] and ext_col = Array.make qn [] in
  Array.iter
    (Array.iter (fun l ->
         ext_row.(l.qa) <- l :: ext_row.(l.qa);
         ext_row.(l.qb) <- l :: ext_row.(l.qb)))
    row_links;
  Array.iter
    (Array.iter (fun l ->
         ext_col.(l.qa) <- l :: ext_col.(l.qa);
         ext_col.(l.qb) <- l :: ext_col.(l.qb)))
    col_links;
  (* how many external links attach to cluster position p (max over
     clusters), to size the node bands *)
  let ext_at = Array.make csize 0 in
  (* per (cluster, position) external-link count, flat at [q * csize + p] *)
  let per_cluster_ext_at = Array.make (qn * csize) 0 in
  let bump q p =
    let key = (q * csize) + p in
    let v = per_cluster_ext_at.(key) + 1 in
    per_cluster_ext_at.(key) <- v;
    if v > ext_at.(p) then ext_at.(p) <- v
  in
  for q = 0 to qn - 1 do
    List.iter (fun l -> bump q (if l.qa = q then l.pa else l.pb)) ext_row.(q);
    List.iter (fun l -> bump q (if l.qa = q then l.pa else l.pb)) ext_col.(q)
  done;
  (* --- block geometry ----------------------------------------------- *)
  let intra_deg p = Graph.degree pn.Pn_cluster.intra p in
  (* width of the band of cluster position p (same in every block) *)
  let band_w = Array.init csize (fun p -> intra_deg p + ext_at.(p) + 2) in
  (* x offset of each cluster position's band, ordered by the intra
     layout's positions *)
  let band_x0 = Array.make csize 0 in
  let cursor = ref 0 in
  Array.iter
    (fun p ->
      band_x0.(p) <- !cursor;
      cursor := !cursor + band_w.(p))
    intra.Collinear.node_at;
  let max_row_ext = ref 0 and max_ext_total = ref 0 in
  for q = 0 to qn - 1 do
    let nr = List.length ext_row.(q) and nc = List.length ext_col.(q) in
    if nr > !max_row_ext then max_row_ext := nr;
    if nr + nc > !max_ext_total then max_ext_total := nr + nc
  done;
  let drop_strip = !max_row_ext in
  let block_w = !cursor + drop_strip + 1 in
  let node_h = 2 in
  let intra_slots = ceil_div intra.Collinear.tracks g.Multilayer.horizontal in
  let jog_channel = !max_ext_total in
  let block_h = node_h + intra_slots + jog_channel + 2 in
  (* --- grid frame ---------------------------------------------------- *)
  let row_slots = Array.map (fun t -> ceil_div t g.Multilayer.horizontal) row_tracks in
  let col_slots = Array.map (fun t -> ceil_div t g.Multilayer.vertical) col_tracks in
  let col_x0 = Array.make cols 0 and row_y0 = Array.make rows 0 in
  for c = 1 to cols - 1 do
    col_x0.(c) <- col_x0.(c - 1) + block_w + col_slots.(c - 1) + 1
  done;
  for r = 1 to rows - 1 do
    row_y0.(r) <- row_y0.(r - 1) + block_h + row_slots.(r - 1) + 1
  done;
  let vtrack_x c slot = col_x0.(c) + block_w + slot in
  let htrack_y r slot = row_y0.(r) + block_h + slot in
  (* --- per-cluster terminal/jog/drop assignment ---------------------- *)
  (* expanded node id *)
  let xnode q p = (q * csize) + p in
  let n_expanded = Graph.n pn.Pn_cluster.graph in
  (* top terminal x of expanded nodes: intra edges first (sorted by the
     other endpoint's intra position), then external links *)
  let intra_edges = Graph.edges pn.Pn_cluster.intra in
  let n_intra_edges = Array.length intra_edges in
  (* (cluster, intra edge id) -> its two endpoint terminal x's, flat at
     [2 * (q * n_intra_edges + ie)]; -1 while unassigned *)
  let term_intra = Array.make (max 1 (2 * qn * n_intra_edges)) (-1) in
  let add_term_intra q ie x =
    let k = 2 * ((q * n_intra_edges) + ie) in
    if term_intra.(k) < 0 then term_intra.(k) <- x else term_intra.(k + 1) <- x
  in
  (* per (cluster, position): next free terminal slot *)
  let used = Array.make (qn * csize) 0 in
  let next_slot q p =
    let key = (q * csize) + p in
    let v = used.(key) in
    used.(key) <- v + 1;
    if v >= band_w.(p) - 2 then
      invalid_arg "Cluster_expand: terminal capacity exceeded";
    v
  in
  let bx q = col_x0.(snd qpos.(q)) and by q = row_y0.(fst qpos.(q)) in
  let term_x q p slot = bx q + band_x0.(p) + 1 + slot in
  (* intra terminals, sorted per (cluster-position) by other endpoint's
     intra position *)
  let by_pos = Array.make csize [] in
  Array.iteri
    (fun ie (p1, p2) ->
      by_pos.(p1) <- (intra.Collinear.position.(p2), ie, p1) :: by_pos.(p1);
      by_pos.(p2) <- (intra.Collinear.position.(p1), ie, p2) :: by_pos.(p2))
    intra_edges;
  let by_pos =
    Array.map
      (List.sort (fun (a1, a2, a3) (b1, b2, b3) ->
           let c = Int.compare a1 b1 in
           if c <> 0 then c
           else
             let c = Int.compare a2 b2 in
             if c <> 0 then c else Int.compare a3 b3))
      by_pos
  in
  for q = 0 to qn - 1 do
    Array.iteri
      (fun p sorted ->
        List.iter
          (fun (_, ie, _) ->
            let slot = next_slot q p in
            add_term_intra q ie (term_x q p slot))
          sorted)
      by_pos
  done;
  (* give every link a unique id (stored in the spare [qe] field) *)
  let all_links =
    Array.concat (Array.to_list row_links @ Array.to_list col_links)
  in
  Array.iteri (fun i l -> l.qe <- i) all_links;
  (* l.qe now doubles as the link's unique id; the per-endpoint tables
     are flat at [2 * uid + (at_a ? 1 : 0)] *)
  let n_links = Array.length all_links in
  let lkey uid at_a = (2 * uid) + if at_a then 1 else 0 in
  let term_of_link = Array.make (max 1 (2 * n_links)) (-1) in
  let jog_of_link = Array.make (max 1 (2 * n_links)) (-1) in
  let drop_of_link = Array.make (max 1 (2 * n_links)) (-1) in
  (* row links only, for [drop_of_link] *)
  for q = 0 to qn - 1 do
    (* jogs: column links first, sorted by other endpoint row (their jog
       order fixes track-span disjointness); then row links *)
    let link_cmp l1 l2 =
      let other l = if l.qa = q then l.lb else l.la in
      let c = Int.compare (other l1) (other l2) in
      if c <> 0 then c else Int.compare l1.qe l2.qe
    in
    let col_sorted = List.sort link_cmp ext_col.(q) in
    let jog_y0 = by q + node_h + intra_slots + 1 in
    List.iteri
      (fun j l -> jog_of_link.(lkey l.qe (l.qa = q)) <- jog_y0 + j)
      col_sorted;
    let row_list = ext_row.(q) in
    List.iteri
      (fun j l ->
        jog_of_link.(lkey l.qe (l.qa = q)) <-
          jog_y0 + List.length col_sorted + j)
      row_list;
    (* drops: row links sorted by other endpoint column *)
    let row_sorted = List.sort link_cmp row_list in
    let drop_x0 = bx q + block_w - 1 - drop_strip in
    List.iteri
      (fun j l -> drop_of_link.(lkey l.qe (l.qa = q)) <- drop_x0 + j)
      row_sorted;
    (* terminals for both kinds *)
    List.iter
      (fun l ->
        let p = if l.qa = q then l.pa else l.pb in
        let slot = next_slot q p in
        term_of_link.(lkey l.qe (l.qa = q)) <- term_x q p slot)
      (ext_row.(q) @ ext_col.(q))
  done;
  (* --- footprints ----------------------------------------------------- *)
  let graph_edges = Graph.edges pn.Pn_cluster.graph in
  let b =
    Geom.Builder.create ~n_nodes:n_expanded
      ~n_wires:(Array.length graph_edges)
  in
  for u = 0 to n_expanded - 1 do
    let q = u / csize and p = u mod csize in
    let x0 = bx q + band_x0.(p) and y0 = by q in
    Geom.Builder.set_node b u ~x0 ~y0 ~x1:(x0 + band_w.(p) - 1)
      ~y1:(y0 + node_h - 1)
  done;
  (* --- wires ----------------------------------------------------------- *)
  (* keyed [u * n + v] with u < v *)
  let edge_id = Hashtbl.create (Array.length graph_edges) in
  Array.iteri
    (fun i (u, v) -> Hashtbl.add edge_id ((u * n_expanded) + v) i)
    graph_edges;
  let find_edge u v =
    let u, v = if u < v then (u, v) else (v, u) in
    match Hashtbl.find_opt edge_id ((u * n_expanded) + v) with
    | Some i -> i
    | None -> invalid_arg "Cluster_expand: expanded edge not found"
  in
  let pt x y z = (x, y, z) in
  let route_wire id points =
    let u, v = graph_edges.(id) in
    Geom.Builder.start_wire b ~id ~u ~v;
    List.iter (fun (x, y, z) -> Geom.Builder.point b ~x ~y ~z) points
  in
  let zy_for grp = if (2 * grp) + 2 <= layers then (2 * grp) + 2 else 2 * grp in
  (* intra edges: precompute track per intra edge id *)
  let intra_track = Array.make (Array.length intra_edges) (-1) in
  Array.iter
    (fun (e : Collinear.edge) ->
      let key = if e.u < e.v then (e.u, e.v) else (e.v, e.u) in
      Array.iteri
        (fun ie edge -> if edge = key then intra_track.(ie) <- e.track)
        intra_edges)
    intra.Collinear.edges;
  Array.iter
    (fun t -> if t < 0 then invalid_arg "Cluster_expand: intra track missing")
    intra_track;
  for q = 0 to qn - 1 do
    Array.iteri
      (fun ie (p1, p2) ->
        let track = intra_track.(ie) in
        let islots = max 1 intra_slots in
        let grp = track / islots and slot = track mod islots in
        let zx = (2 * grp) + 1 and zy = zy_for grp in
        let ytrack = by q + node_h + slot in
        let ytop = by q + node_h - 1 in
        let t1, t2 =
          let k = 2 * ((q * n_intra_edges) + ie) in
          let a = term_intra.(k) and b = term_intra.(k + 1) in
          if a < 0 || b < 0 then
            invalid_arg "Cluster_expand: intra terminals"
          else (min a b, max a b)
        in
        route_wire
          (find_edge (xnode q p1) (xnode q p2))
          [
            pt t1 ytop 1;
            pt t1 ytop zy;
            pt t1 ytrack zy;
            pt t1 ytrack zx;
            pt t2 ytrack zx;
            pt t2 ytrack zy;
            pt t2 ytop zy;
            pt t2 ytop 1;
          ])
      intra_edges
  done;
  (* row links *)
  Array.iteri
    (fun r links ->
      Array.iter
        (fun l ->
          let slots = max 1 row_slots.(r) in
          let grp = l.track / slots and slot = l.track mod slots in
          let zx = (2 * grp) + 1 and zy = zy_for grp in
          let ytrack = htrack_y r slot in
          let ta = term_of_link.(lkey l.qe true)
          and tb = term_of_link.(lkey l.qe false) in
          let ja = jog_of_link.(lkey l.qe true)
          and jb = jog_of_link.(lkey l.qe false) in
          let da = drop_of_link.(lkey l.qe true)
          and db = drop_of_link.(lkey l.qe false) in
          let ytop_a = by l.qa + node_h - 1 and ytop_b = by l.qb + node_h - 1 in
          route_wire
            (find_edge (xnode l.qa l.pa) (xnode l.qb l.pb))
            [
              pt ta ytop_a 1;
              pt ta ytop_a zy;
              pt ta ja zy;
              pt ta ja zx;
              pt da ja zx;
              pt da ja zy;
              pt da ytrack zy;
              pt da ytrack zx;
              pt db ytrack zx;
              pt db ytrack zy;
              pt db jb zy;
              pt db jb zx;
              pt tb jb zx;
              pt tb jb zy;
              pt tb ytop_b zy;
              pt tb ytop_b 1;
            ])
        links)
    row_links;
  (* column links *)
  Array.iteri
    (fun c links ->
      Array.iter
        (fun l ->
          let slots = max 1 col_slots.(c) in
          let grp = l.track / slots and slot = l.track mod slots in
          let zx = (2 * grp) + 1 and zv = (2 * grp) + 2 in
          let xtrack = vtrack_x c slot in
          let ta = term_of_link.(lkey l.qe true)
          and tb = term_of_link.(lkey l.qe false) in
          let ja = jog_of_link.(lkey l.qe true)
          and jb = jog_of_link.(lkey l.qe false) in
          let ytop_a = by l.qa + node_h - 1 and ytop_b = by l.qb + node_h - 1 in
          route_wire
            (find_edge (xnode l.qa l.pa) (xnode l.qb l.pb))
            [
              pt ta ytop_a 1;
              pt ta ytop_a zv;
              pt ta ja zv;
              pt ta ja zx;
              pt xtrack ja zx;
              pt xtrack ja zv;
              pt xtrack jb zv;
              pt xtrack jb zx;
              pt tb jb zx;
              pt tb jb zv;
              pt tb ytop_b zv;
              pt tb ytop_b 1;
            ])
        links)
    col_links;
  (* Geom.Builder.build raises on any edge left unrouted *)
  Layout.of_geom ~graph:pn.Pn_cluster.graph ~layers (Geom.Builder.build b)

let metrics spec ~layers = Layout.metrics (realize spec ~layers)
