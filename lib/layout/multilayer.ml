open Mvl_topology

type groups = { horizontal : int; vertical : int }

let groups_for_layers layers =
  if layers < 2 then invalid_arg "Multilayer: layers < 2";
  { horizontal = (layers + 1) / 2; vertical = layers / 2 }

let ceil_div a b = if a = 0 then 0 else ((a - 1) / b) + 1

(* terminal bookkeeping: for each node, the x offsets of its row-edge
   terminals (sorted by the other endpoint's column) and the y offsets of
   its column-edge terminals (sorted by the other endpoint's row) *)
type terminals = {
  row_term : (int, int) Hashtbl.t; (* edge_id -> x (two bindings) *)
  col_term : (int, int) Hashtbl.t; (* edge_id -> y (two bindings) *)
}

(* an extra (non-orthogonal) link of an augmented layout, §5.3 *)
type extra_link = {
  xedge : int;        (* edge id in the full graph *)
  src : int;          (* routed from src's top terminal ... *)
  dst : int;          (* ... to dst's right terminal *)
  mutable grp : int;  (* paired layer group *)
  mutable hslot : int;(* dedicated horizontal slot in src's row gap *)
  mutable vslot : int;(* dedicated vertical slot right of dst's column *)
  mutable term_x : int;
  mutable term_y : int;
}

type frame = {
  col_x0 : int array;
  col_w : int array;
  row_y0 : int array;
  row_h : int array;
  col_slots : int array;
  row_slots : int array;
}

let realize_general ?(node_side = 0) ?(z_offset = 0) ?(col_gap_extra = 0)
    ?(node_extra_rows = 0) ?total_layers (o : Orthogonal.t) ~full_graph ~layers
    =
  let g = groups_for_layers layers in
  let n = Graph.n o.graph in
  if Graph.n full_graph <> n then
    invalid_arg "Multilayer: full graph must have the same nodes";
  (* --- split edges of the full graph into orthogonal + extra -------- *)
  let ortho_id = Hashtbl.create (Graph.m o.graph) in
  Array.iteri (fun i e -> Hashtbl.add ortho_id e i) (Graph.edges o.graph);
  let full_edges = Graph.edges full_graph in
  let extras = ref [] in
  Array.iteri
    (fun i (u, v) ->
      if not (Hashtbl.mem ortho_id (u, v)) then
        extras :=
          {
            xedge = i;
            src = u;
            dst = v;
            grp = 0;
            hslot = 0;
            vslot = 0;
            term_x = 0;
            term_y = 0;
          }
          :: !extras)
    full_edges;
  let extras = Array.of_list !extras in
  (* --- per-gap regular slots ----------------------------------------- *)
  let row_slots = Array.map (fun t -> ceil_div t g.horizontal) o.row_tracks in
  let col_slots = Array.map (fun t -> ceil_div t g.vertical) o.col_tracks in
  (* --- extra links: dedicated slots, paired groups -------------------- *)
  let extra_h = Array.make o.rows 0 and extra_v = Array.make o.cols 0 in
  let row_extra_top = Array.make n 0 and col_extra_right = Array.make n 0 in
  (* a slot may be shared by links of *different* groups (same in-plane
     position, different layers), so slot allocation is per (gap, group) *)
  let h_grp_count = Hashtbl.create 64 and v_grp_count = Hashtbl.create 64 in
  let next tbl key =
    let v = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (v + 1);
    v
  in
  let h_total = Array.make o.rows 0 in
  Array.iter
    (fun l ->
      let r_src, _ = o.place.(l.src) and _, c_dst = o.place.(l.dst) in
      l.grp <- h_total.(r_src) mod g.vertical;
      h_total.(r_src) <- h_total.(r_src) + 1;
      l.hslot <- row_slots.(r_src) + next h_grp_count (r_src, l.grp);
      l.vslot <- col_slots.(c_dst) + next v_grp_count (c_dst, l.grp);
      extra_h.(r_src) <- max extra_h.(r_src) (l.hslot - row_slots.(r_src) + 1);
      extra_v.(c_dst) <- max extra_v.(c_dst) (l.vslot - col_slots.(c_dst) + 1);
      row_extra_top.(l.src) <- row_extra_top.(l.src) + 1;
      col_extra_right.(l.dst) <- col_extra_right.(l.dst) + 1)
    extras;
  (* --- node degrees and band sizes ----------------------------------- *)
  let row_deg = Array.make n 0 and col_deg = Array.make n 0 in
  Array.iteri
    (fun r edges ->
      Array.iter
        (fun (e : Orthogonal.line_edge) ->
          let u = o.node_at.(r).(e.a) and v = o.node_at.(r).(e.b) in
          row_deg.(u) <- row_deg.(u) + 1;
          row_deg.(v) <- row_deg.(v) + 1)
        edges)
    o.row_edges;
  Array.iteri
    (fun c edges ->
      Array.iter
        (fun (e : Orthogonal.line_edge) ->
          let u = o.node_at.(e.a).(c) and v = o.node_at.(e.b).(c) in
          col_deg.(u) <- col_deg.(u) + 1;
          col_deg.(v) <- col_deg.(v) + 1)
        edges)
    o.col_edges;
  let col_w = Array.make o.cols 1 and row_h = Array.make o.rows 1 in
  for r = 0 to o.rows - 1 do
    for c = 0 to o.cols - 1 do
      let u = o.node_at.(r).(c) in
      col_w.(c) <-
        max col_w.(c) (max node_side (row_deg.(u) + row_extra_top.(u) + 2));
      row_h.(r) <-
        max row_h.(r)
          (max node_side (col_deg.(u) + col_extra_right.(u) + node_extra_rows + 2))
    done
  done;
  (* --- coordinates ----------------------------------------------------- *)
  let col_x0 = Array.make o.cols 0 and row_y0 = Array.make o.rows 0 in
  for c = 1 to o.cols - 1 do
    col_x0.(c) <-
      col_x0.(c - 1) + col_w.(c - 1) + col_slots.(c - 1) + extra_v.(c - 1)
      + col_gap_extra + 1
  done;
  for r = 1 to o.rows - 1 do
    row_y0.(r) <-
      row_y0.(r - 1) + row_h.(r - 1) + row_slots.(r - 1) + extra_h.(r - 1) + 1
  done;
  let vtrack_x c slot = col_x0.(c) + col_w.(c) + slot in
  let htrack_y r slot = row_y0.(r) + row_h.(r) + slot in
  (* --- terminals -------------------------------------------------------- *)
  let terms = { row_term = Hashtbl.create 256; col_term = Hashtbl.create 256 } in
  let row_inc = Array.make n [] and col_inc = Array.make n [] in
  Array.iteri
    (fun r edges ->
      Array.iter
        (fun (e : Orthogonal.line_edge) ->
          let u = o.node_at.(r).(e.a) and v = o.node_at.(r).(e.b) in
          row_inc.(u) <- (e.b, e.edge_id) :: row_inc.(u);
          row_inc.(v) <- (e.a, e.edge_id) :: row_inc.(v))
        edges)
    o.row_edges;
  Array.iteri
    (fun c edges ->
      Array.iter
        (fun (e : Orthogonal.line_edge) ->
          let u = o.node_at.(e.a).(c) and v = o.node_at.(e.b).(c) in
          col_inc.(u) <- (e.b, e.edge_id) :: col_inc.(u);
          col_inc.(v) <- (e.a, e.edge_id) :: col_inc.(v))
        edges)
    o.col_edges;
  let row_used = Array.make n 0 and col_used = Array.make n 0 in
  let pair_cmp (a1, a2) (b1, b2) =
    let c = Int.compare a1 b1 in
    if c <> 0 then c else Int.compare a2 b2
  in
  for u = 0 to n - 1 do
    let _, c = o.place.(u) and r, _ = o.place.(u) in
    List.iteri
      (fun i (_, edge_id) ->
        Hashtbl.add terms.row_term edge_id (col_x0.(c) + 1 + i))
      (List.sort pair_cmp row_inc.(u));
    row_used.(u) <- List.length row_inc.(u);
    List.iteri
      (fun i (_, edge_id) ->
        Hashtbl.add terms.col_term edge_id (row_y0.(r) + 1 + i))
      (List.sort pair_cmp col_inc.(u));
    col_used.(u) <- List.length col_inc.(u)
  done;
  (* extra terminals, appended after the regular ones *)
  Array.iter
    (fun l ->
      let _, c_src = o.place.(l.src) and r_dst, _ = o.place.(l.dst) in
      l.term_x <- col_x0.(c_src) + 1 + row_used.(l.src);
      row_used.(l.src) <- row_used.(l.src) + 1;
      l.term_y <- row_y0.(r_dst) + 1 + col_used.(l.dst);
      col_used.(l.dst) <- col_used.(l.dst) + 1)
    extras;
  (* --- node footprints --------------------------------------------------- *)
  let b = Geom.Builder.create ~n_nodes:n ~n_wires:(Array.length full_edges) in
  for u = 0 to n - 1 do
    let r, c = o.place.(u) in
    Geom.Builder.set_node b u ~x0:(col_x0.(c)) ~y0:(row_y0.(r))
      ~x1:(col_x0.(c) + col_w.(c) - 1)
      ~y1:(row_y0.(r) + row_h.(r) - 1)
  done;
  (* --- routing ------------------------------------------------------------ *)
  let full_edge_id = Hashtbl.create (Array.length full_edges) in
  Array.iteri (fun i e -> Hashtbl.add full_edge_id e i) full_edges;
  let pt x y z = (x, y, z + z_offset) in
  let route_wire i points =
    let u, v = full_edges.(i) in
    Geom.Builder.start_wire b ~id:i ~u ~v;
    List.iter (fun (x, y, z) -> Geom.Builder.point b ~x ~y ~z) points
  in
  let ortho_edges = Graph.edges o.graph in
  let id_of_ortho edge_id =
    Hashtbl.find full_edge_id ortho_edges.(edge_id)
  in
  Array.iteri
    (fun r edges ->
      Array.iter
        (fun (e : Orthogonal.line_edge) ->
          let slots = max 1 row_slots.(r) in
          let grp = e.track / slots and slot = e.track mod slots in
          let zx = (2 * grp) + 1 in
          let zy = if (2 * grp) + 2 <= layers then (2 * grp) + 2 else 2 * grp in
          let ytrack = htrack_y r slot in
          let ytop = row_y0.(r) + row_h.(r) - 1 in
          let txa, txb =
            match Hashtbl.find_all terms.row_term e.edge_id with
            | [ t1; t2 ] -> (min t1 t2, max t1 t2)
            | _ -> invalid_arg "Multilayer.realize: bad row terminals"
          in
          route_wire (id_of_ortho e.edge_id)
            [
              pt txa ytop 1;
              pt txa ytop zy;
              pt txa ytrack zy;
              pt txa ytrack zx;
              pt txb ytrack zx;
              pt txb ytrack zy;
              pt txb ytop zy;
              pt txb ytop 1;
            ])
        edges)
    o.row_edges;
  Array.iteri
    (fun c edges ->
      Array.iter
        (fun (e : Orthogonal.line_edge) ->
          let slots = max 1 col_slots.(c) in
          let grp = e.track / slots and slot = e.track mod slots in
          let zv = (2 * grp) + 2 in
          let zx = (2 * grp) + 1 in
          let xtrack = vtrack_x c slot in
          let xright = col_x0.(c) + col_w.(c) - 1 in
          let tya, tyb =
            match Hashtbl.find_all terms.col_term e.edge_id with
            | [ t1; t2 ] -> (min t1 t2, max t1 t2)
            | _ -> invalid_arg "Multilayer.realize: bad column terminals"
          in
          route_wire (id_of_ortho e.edge_id)
            [
              pt xright tya 1;
              pt xright tya zx;
              pt xtrack tya zx;
              pt xtrack tya zv;
              pt xtrack tyb zv;
              pt xtrack tyb zx;
              pt xright tyb zx;
              pt xright tyb 1;
            ])
        edges)
    o.col_edges;
  (* extra links: src top terminal -> dedicated h-track -> dedicated
     v-track -> dst right terminal, everything in the paired group *)
  Array.iter
    (fun l ->
      let r_src, _ = o.place.(l.src) and r_dst, c_dst = o.place.(l.dst) in
      let zx = (2 * l.grp) + 1 and zy = (2 * l.grp) + 2 in
      let hy = htrack_y r_src l.hslot in
      let vx = vtrack_x c_dst l.vslot in
      let ytop = row_y0.(r_src) + row_h.(r_src) - 1 in
      let xright = col_x0.(c_dst) + col_w.(c_dst) - 1 in
      ignore r_dst;
      route_wire l.xedge
        [
          pt l.term_x ytop 1;
          pt l.term_x ytop zy;
          pt l.term_x hy zy;
          pt l.term_x hy zx;
          pt vx hy zx;
          pt vx hy zy;
          pt vx l.term_y zy;
          pt vx l.term_y zx;
          pt xright l.term_y zx;
          pt xright l.term_y 1;
        ])
    extras;
  (* Geom.Builder.build raises on any edge left unrouted *)
  let geom = Geom.Builder.build b in
  let declared_layers = Option.value total_layers ~default:(layers + z_offset) in
  let node_layers =
    if z_offset = 0 then None else Some (Array.make n (1 + z_offset))
  in
  let layout =
    Layout.of_geom ~graph:full_graph ~layers:declared_layers ?node_layers geom
  in
  let frame = { col_x0; col_w; row_y0; row_h; col_slots; row_slots } in
  (layout, frame)

let realize ?node_side o ~layers =
  fst (realize_general ?node_side o ~full_graph:o.Orthogonal.graph ~layers)

let realize_augmented ?node_side o ~full_graph ~layers =
  fst (realize_general ?node_side o ~full_graph ~layers)

let realize_slab ?node_side o ~z_offset ~band_layers ~total_layers
    ~col_gap_extra ~node_extra_rows =
  realize_general ?node_side ~z_offset ~col_gap_extra ~node_extra_rows
    ~total_layers o ~full_graph:o.Orthogonal.graph ~layers:band_layers

let metrics ?node_side o ~layers = Layout.metrics (realize ?node_side o ~layers)
