open Mvl_topology

type groups = { horizontal : int; vertical : int }

let groups_for_layers layers =
  if layers < 2 then invalid_arg "Multilayer: layers < 2";
  { horizontal = (layers + 1) / 2; vertical = layers / 2 }

let ceil_div a b = if a = 0 then 0 else ((a - 1) / b) + 1

(* an extra (non-orthogonal) link of an augmented layout, §5.3 *)
type extra_link = {
  xedge : int;        (* edge id in the full graph *)
  src : int;          (* routed from src's top terminal ... *)
  dst : int;          (* ... to dst's right terminal *)
  mutable grp : int;  (* paired layer group *)
  mutable hslot : int;(* dedicated horizontal slot in src's row gap *)
  mutable vslot : int;(* dedicated vertical slot right of dst's column *)
  mutable term_x : int;
  mutable term_y : int;
}

type frame = {
  col_x0 : int array;
  col_w : int array;
  row_y0 : int array;
  row_h : int array;
  col_slots : int array;
  row_slots : int array;
}

(* mirror of Parallel.force_fork (same idiom as Sim_shard): under the
   fork backend no domain may ever be spawned, so emission degrades to
   the serial path *)
let env_force_fork () =
  match Sys.getenv_opt "MVL_FORCE_FORK" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* incidence keys pack (position of the other endpoint, edge id) into
   one int so a range sort orders a node's terminals exactly like the
   historical (pos, edge_id) pair sort *)
let eid_bits = 31
let eid_mask = (1 lsl eid_bits) - 1

let subset_msg = "Multilayer: full graph must contain every orthogonal edge"

let realize_general ?(node_side = 0) ?(z_offset = 0) ?(col_gap_extra = 0)
    ?(node_extra_rows = 0) ?total_layers ?(jobs = 1) (o : Orthogonal.t)
    ~full_graph ~layers =
  let t_terms = Unix.gettimeofday () in
  let g = groups_for_layers layers in
  let n = Graph.n o.graph in
  if Graph.n full_graph <> n then
    invalid_arg "Multilayer: full graph must have the same nodes";
  (* --- split edges of the full graph into orthogonal + extra --------
     Both edge lists are lexicographically sorted with [u < v] and the
     orthogonal edges must be a subsequence of the full ones, so one
     merge walk replaces the historical tuple-keyed id Hashtbls: it
     yields the full-graph id of every orthogonal edge and the extras
     as the skipped full edges. *)
  let full_edges = Graph.edges full_graph in
  let ortho_edges = Graph.edges o.graph in
  let m_full = Array.length full_edges in
  let m_ortho = Array.length ortho_edges in
  let n_extra = m_full - m_ortho in
  if n_extra < 0 then invalid_arg subset_msg;
  let full_of_ortho = Array.make (max 1 m_ortho) 0 in
  let extra_ids = Array.make (max 1 n_extra) 0 in
  let oi = ref 0 and xi = ref 0 in
  for i = 0 to m_full - 1 do
    let u, v = full_edges.(i) in
    let matched =
      !oi < m_ortho
      &&
      let ou, ov = ortho_edges.(!oi) in
      ou = u && ov = v
    in
    if matched then begin
      full_of_ortho.(!oi) <- i;
      incr oi
    end
    else begin
      if !xi >= n_extra then invalid_arg subset_msg;
      extra_ids.(!xi) <- i;
      incr xi
    end
  done;
  if !oi < m_ortho then invalid_arg subset_msg;
  (* extras in descending full-edge order: slot packing and the
     terminal append order below were defined by the historical
     prepend-built list and are pinned by the golden layouts *)
  let extras =
    Array.init n_extra (fun k ->
        let i = extra_ids.(n_extra - 1 - k) in
        let u, v = full_edges.(i) in
        {
          xedge = i;
          src = u;
          dst = v;
          grp = 0;
          hslot = 0;
          vslot = 0;
          term_x = 0;
          term_y = 0;
        })
  in
  (* --- per-gap regular slots ----------------------------------------- *)
  let row_slots = Array.map (fun t -> ceil_div t g.horizontal) o.row_tracks in
  let col_slots = Array.map (fun t -> ceil_div t g.vertical) o.col_tracks in
  (* --- extra links: dedicated slots, paired groups -------------------- *)
  let extra_h = Array.make o.rows 0 and extra_v = Array.make o.cols 0 in
  let row_extra_top = Array.make n 0 and col_extra_right = Array.make n 0 in
  (* a slot may be shared by links of *different* groups (same in-plane
     position, different layers), so slot allocation is per (gap, group)
     — flat counters indexed [gap * vertical + grp] *)
  let h_grp_count = Array.make (max 1 (o.rows * g.vertical)) 0 in
  let v_grp_count = Array.make (max 1 (o.cols * g.vertical)) 0 in
  let h_total = Array.make o.rows 0 in
  Array.iter
    (fun l ->
      let r_src, _ = o.place.(l.src) and _, c_dst = o.place.(l.dst) in
      l.grp <- h_total.(r_src) mod g.vertical;
      h_total.(r_src) <- h_total.(r_src) + 1;
      let hk = (r_src * g.vertical) + l.grp in
      l.hslot <- row_slots.(r_src) + h_grp_count.(hk);
      h_grp_count.(hk) <- h_grp_count.(hk) + 1;
      let vk = (c_dst * g.vertical) + l.grp in
      l.vslot <- col_slots.(c_dst) + v_grp_count.(vk);
      v_grp_count.(vk) <- v_grp_count.(vk) + 1;
      extra_h.(r_src) <- max extra_h.(r_src) (l.hslot - row_slots.(r_src) + 1);
      extra_v.(c_dst) <- max extra_v.(c_dst) (l.vslot - col_slots.(c_dst) + 1);
      row_extra_top.(l.src) <- row_extra_top.(l.src) + 1;
      col_extra_right.(l.dst) <- col_extra_right.(l.dst) + 1)
    extras;
  (* --- node degrees and band sizes ----------------------------------- *)
  let row_deg = Array.make n 0 and col_deg = Array.make n 0 in
  for r = 0 to o.rows - 1 do
    for k = o.row_off.(r) to o.row_off.(r + 1) - 1 do
      let u = o.node_at.(r).(o.row_a.(k))
      and v = o.node_at.(r).(o.row_b.(k)) in
      row_deg.(u) <- row_deg.(u) + 1;
      row_deg.(v) <- row_deg.(v) + 1
    done
  done;
  for c = 0 to o.cols - 1 do
    for k = o.col_off.(c) to o.col_off.(c + 1) - 1 do
      let u = o.node_at.(o.col_a.(k)).(c)
      and v = o.node_at.(o.col_b.(k)).(c) in
      col_deg.(u) <- col_deg.(u) + 1;
      col_deg.(v) <- col_deg.(v) + 1
    done
  done;
  let col_w = Array.make o.cols 1 and row_h = Array.make o.rows 1 in
  for r = 0 to o.rows - 1 do
    for c = 0 to o.cols - 1 do
      let u = o.node_at.(r).(c) in
      col_w.(c) <-
        max col_w.(c) (max node_side (row_deg.(u) + row_extra_top.(u) + 2));
      row_h.(r) <-
        max row_h.(r)
          (max node_side (col_deg.(u) + col_extra_right.(u) + node_extra_rows + 2))
    done
  done;
  (* --- coordinates ----------------------------------------------------- *)
  let col_x0 = Array.make o.cols 0 and row_y0 = Array.make o.rows 0 in
  for c = 1 to o.cols - 1 do
    col_x0.(c) <-
      col_x0.(c - 1) + col_w.(c - 1) + col_slots.(c - 1) + extra_v.(c - 1)
      + col_gap_extra + 1
  done;
  for r = 1 to o.rows - 1 do
    row_y0.(r) <-
      row_y0.(r - 1) + row_h.(r - 1) + row_slots.(r - 1) + extra_h.(r - 1) + 1
  done;
  let vtrack_x c slot = col_x0.(c) + col_w.(c) + slot in
  let htrack_y r slot = row_y0.(r) + row_h.(r) + slot in
  (* --- terminals --------------------------------------------------------
     Per-node incidence in CSR form: one packed (other position, edge
     id) key per edge endpoint, offsets from the degree counts above.
     Sorting each node's range in place orders its terminals by the
     other endpoint's position — the same order the historical per-node
     pair lists got from [List.sort] — and the x (or y) offsets assign
     into flat edge-indexed [term_a]/[term_b] columns: a row edge's
     smaller-column endpoint always gets the smaller x (columns bands
     ascend with the column index), so a-side/b-side replaces the
     min/max over the historical double-binding Hashtbl protocol. *)
  let row_ioff = Array.make (n + 1) 0 and col_ioff = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    row_ioff.(u + 1) <- row_ioff.(u) + row_deg.(u);
    col_ioff.(u + 1) <- col_ioff.(u) + col_deg.(u)
  done;
  let row_ikey = Array.make (max 1 row_ioff.(n)) 0 in
  let col_ikey = Array.make (max 1 col_ioff.(n)) 0 in
  let row_icur = Array.copy row_ioff and col_icur = Array.copy col_ioff in
  for r = 0 to o.rows - 1 do
    for k = o.row_off.(r) to o.row_off.(r + 1) - 1 do
      let eid = o.row_eid.(k) in
      let a = o.row_a.(k) and b = o.row_b.(k) in
      let u = o.node_at.(r).(a) and v = o.node_at.(r).(b) in
      row_ikey.(row_icur.(u)) <- (b lsl eid_bits) lor eid;
      row_icur.(u) <- row_icur.(u) + 1;
      row_ikey.(row_icur.(v)) <- (a lsl eid_bits) lor eid;
      row_icur.(v) <- row_icur.(v) + 1
    done
  done;
  for c = 0 to o.cols - 1 do
    for k = o.col_off.(c) to o.col_off.(c + 1) - 1 do
      let eid = o.col_eid.(k) in
      let a = o.col_a.(k) and b = o.col_b.(k) in
      let u = o.node_at.(a).(c) and v = o.node_at.(b).(c) in
      col_ikey.(col_icur.(u)) <- (b lsl eid_bits) lor eid;
      col_icur.(u) <- col_icur.(u) + 1;
      col_ikey.(col_icur.(v)) <- (a lsl eid_bits) lor eid;
      col_icur.(v) <- col_icur.(v) + 1
    done
  done;
  let term_a = Array.make (max 1 m_ortho) 0 in
  let term_b = Array.make (max 1 m_ortho) 0 in
  let row_used = Array.make n 0 and col_used = Array.make n 0 in
  for u = 0 to n - 1 do
    let r, c = o.place.(u) in
    let rlo = row_ioff.(u) in
    let rlen = row_ioff.(u + 1) - rlo in
    Track_assign.sort_ints row_ikey ~off:rlo ~len:rlen;
    for i = 0 to rlen - 1 do
      let key = row_ikey.(rlo + i) in
      let eid = key land eid_mask in
      let x = col_x0.(c) + 1 + i in
      if c < key lsr eid_bits then term_a.(eid) <- x else term_b.(eid) <- x
    done;
    row_used.(u) <- rlen;
    let clo = col_ioff.(u) in
    let clen = col_ioff.(u + 1) - clo in
    Track_assign.sort_ints col_ikey ~off:clo ~len:clen;
    for i = 0 to clen - 1 do
      let key = col_ikey.(clo + i) in
      let eid = key land eid_mask in
      let y = row_y0.(r) + 1 + i in
      if r < key lsr eid_bits then term_a.(eid) <- y else term_b.(eid) <- y
    done;
    col_used.(u) <- clen
  done;
  (* extra terminals, appended after the regular ones *)
  Array.iter
    (fun l ->
      let _, c_src = o.place.(l.src) and r_dst, _ = o.place.(l.dst) in
      l.term_x <- col_x0.(c_src) + 1 + row_used.(l.src);
      row_used.(l.src) <- row_used.(l.src) + 1;
      l.term_y <- row_y0.(r_dst) + 1 + col_used.(l.dst);
      col_used.(l.dst) <- col_used.(l.dst) + 1)
    extras;
  (* --- node footprints and exact wire sizes -------------------------------
     Every wire's deduped point count is known before emission: a row
     wire keeps all 8 of its points (its terminal x's sit in distinct
     column bands and [zy] is always even, so no consecutive pair
     collides); a column wire of group 0 has [zx = z1], collapsing the
     first and last vertical hops to 6 points; an extra link of group 0
     likewise drops its final duplicate, 9 points instead of 10.  Fixed
     counts let emission stream straight into the final CSR columns —
     no append buffers, no merge pass — and any miscount raises. *)
  let wire_counts = Array.make m_full 0 in
  for r = 0 to o.rows - 1 do
    for k = o.row_off.(r) to o.row_off.(r + 1) - 1 do
      wire_counts.(full_of_ortho.(o.row_eid.(k))) <- 8
    done
  done;
  for c = 0 to o.cols - 1 do
    let slots = max 1 col_slots.(c) in
    for k = o.col_off.(c) to o.col_off.(c + 1) - 1 do
      let count = if o.col_track.(k) / slots = 0 then 6 else 8 in
      wire_counts.(full_of_ortho.(o.col_eid.(k))) <- count
    done
  done;
  Array.iter
    (fun l -> wire_counts.(l.xedge) <- (if l.grp = 0 then 9 else 10))
    extras;
  let fx = Geom.Builder.create_fixed ~n_nodes:n ~wire_counts in
  for u = 0 to n - 1 do
    let r, c = o.place.(u) in
    Geom.Builder.set_node_fixed fx u ~x0:(col_x0.(c)) ~y0:(row_y0.(r))
      ~x1:(col_x0.(c) + col_w.(c) - 1)
      ~y1:(row_y0.(r) + row_h.(r) - 1)
  done;
  Layout_profile.record Terminals (Unix.gettimeofday () -. t_terms);
  (* --- routing ------------------------------------------------------------
     Wires emit straight from the flat columns into their fixed ranges;
     rows and columns chunk across domains when [jobs > 1].  Every
     emission order produces the same layout: a wire's slots depend
     only on its id, and its points only on precomputed columns. *)
  let t_emit = Unix.gettimeofday () in
  let emit_rows w r_lo r_hi =
    for r = r_lo to r_hi - 1 do
      let slots = max 1 row_slots.(r) in
      let ytop = row_y0.(r) + row_h.(r) - 1 in
      for k = o.row_off.(r) to o.row_off.(r + 1) - 1 do
        let eid = o.row_eid.(k) in
        let track = o.row_track.(k) in
        let grp = track / slots and slot = track mod slots in
        let zx = (2 * grp) + 1 + z_offset in
        let zy =
          ((if (2 * grp) + 2 <= layers then (2 * grp) + 2 else 2 * grp)
          + z_offset)
        in
        let z1 = 1 + z_offset in
        let ytrack = htrack_y r slot in
        let txa = term_a.(eid) and txb = term_b.(eid) in
        let id = full_of_ortho.(eid) in
        let u, v = full_edges.(id) in
        Geom.Builder.fixed_wire w ~id ~u ~v;
        Geom.Builder.fixed_point w ~x:txa ~y:ytop ~z:z1;
        Geom.Builder.fixed_point w ~x:txa ~y:ytop ~z:zy;
        Geom.Builder.fixed_point w ~x:txa ~y:ytrack ~z:zy;
        Geom.Builder.fixed_point w ~x:txa ~y:ytrack ~z:zx;
        Geom.Builder.fixed_point w ~x:txb ~y:ytrack ~z:zx;
        Geom.Builder.fixed_point w ~x:txb ~y:ytrack ~z:zy;
        Geom.Builder.fixed_point w ~x:txb ~y:ytop ~z:zy;
        Geom.Builder.fixed_point w ~x:txb ~y:ytop ~z:z1
      done
    done
  in
  let emit_cols w c_lo c_hi =
    for c = c_lo to c_hi - 1 do
      let slots = max 1 col_slots.(c) in
      let xright = col_x0.(c) + col_w.(c) - 1 in
      for k = o.col_off.(c) to o.col_off.(c + 1) - 1 do
        let eid = o.col_eid.(k) in
        let track = o.col_track.(k) in
        let grp = track / slots and slot = track mod slots in
        let zv = (2 * grp) + 2 + z_offset in
        let zx = (2 * grp) + 1 + z_offset in
        let z1 = 1 + z_offset in
        let xtrack = vtrack_x c slot in
        let tya = term_a.(eid) and tyb = term_b.(eid) in
        let id = full_of_ortho.(eid) in
        let u, v = full_edges.(id) in
        Geom.Builder.fixed_wire w ~id ~u ~v;
        Geom.Builder.fixed_point w ~x:xright ~y:tya ~z:z1;
        Geom.Builder.fixed_point w ~x:xright ~y:tya ~z:zx;
        Geom.Builder.fixed_point w ~x:xtrack ~y:tya ~z:zx;
        Geom.Builder.fixed_point w ~x:xtrack ~y:tya ~z:zv;
        Geom.Builder.fixed_point w ~x:xtrack ~y:tyb ~z:zv;
        Geom.Builder.fixed_point w ~x:xtrack ~y:tyb ~z:zx;
        Geom.Builder.fixed_point w ~x:xright ~y:tyb ~z:zx;
        Geom.Builder.fixed_point w ~x:xright ~y:tyb ~z:z1
      done
    done
  in
  (* extra links: src top terminal -> dedicated h-track -> dedicated
     v-track -> dst right terminal, everything in the paired group *)
  let emit_extras w =
    Array.iter
      (fun l ->
        let r_src, _ = o.place.(l.src) and _, c_dst = o.place.(l.dst) in
        let zx = (2 * l.grp) + 1 + z_offset
        and zy = (2 * l.grp) + 2 + z_offset in
        let z1 = 1 + z_offset in
        let hy = htrack_y r_src l.hslot in
        let vx = vtrack_x c_dst l.vslot in
        let ytop = row_y0.(r_src) + row_h.(r_src) - 1 in
        let xright = col_x0.(c_dst) + col_w.(c_dst) - 1 in
        let u = l.src and v = l.dst in
        Geom.Builder.fixed_wire w ~id:l.xedge ~u ~v;
        Geom.Builder.fixed_point w ~x:l.term_x ~y:ytop ~z:z1;
        Geom.Builder.fixed_point w ~x:l.term_x ~y:ytop ~z:zy;
        Geom.Builder.fixed_point w ~x:l.term_x ~y:hy ~z:zy;
        Geom.Builder.fixed_point w ~x:l.term_x ~y:hy ~z:zx;
        Geom.Builder.fixed_point w ~x:vx ~y:hy ~z:zx;
        Geom.Builder.fixed_point w ~x:vx ~y:hy ~z:zy;
        Geom.Builder.fixed_point w ~x:vx ~y:l.term_y ~z:zy;
        Geom.Builder.fixed_point w ~x:vx ~y:l.term_y ~z:zx;
        Geom.Builder.fixed_point w ~x:xright ~y:l.term_y ~z:zx;
        Geom.Builder.fixed_point w ~x:xright ~y:l.term_y ~z:z1)
      extras
  in
  let jobs = if jobs <= 1 || env_force_fork () then 1 else jobs in
  (if jobs = 1 then begin
     let w = Geom.Builder.writer fx in
     emit_rows w 0 o.rows;
     emit_cols w 0 o.cols;
     emit_extras w;
     Geom.Builder.writer_done w
   end
   else begin
     let _, _stats =
       Mvl_pool.Domain_pool.map ~domains:jobs
         ~f:(fun t ->
           let w = Geom.Builder.writer fx in
           (if t < jobs then
              emit_rows w (t * o.rows / jobs) ((t + 1) * o.rows / jobs)
            else begin
              let wk = t - jobs in
              emit_cols w (wk * o.cols / jobs) ((wk + 1) * o.cols / jobs)
            end);
           Geom.Builder.writer_done w)
         (Array.init (2 * jobs) (fun t -> t))
     in
     let w = Geom.Builder.writer fx in
     emit_extras w;
     Geom.Builder.writer_done w
   end);
  Layout_profile.record Emit (Unix.gettimeofday () -. t_emit);
  (* build_fixed raises on any edge left unrouted *)
  let geom =
    Layout_profile.timed Build (fun () -> Geom.Builder.build_fixed fx)
  in
  let declared_layers = Option.value total_layers ~default:(layers + z_offset) in
  let node_layers =
    if z_offset = 0 then None else Some (Array.make n (1 + z_offset))
  in
  let layout =
    Layout.of_geom ~graph:full_graph ~layers:declared_layers ?node_layers geom
  in
  let frame = { col_x0; col_w; row_y0; row_h; col_slots; row_slots } in
  (layout, frame)

let realize ?node_side ?jobs o ~layers =
  fst (realize_general ?node_side ?jobs o ~full_graph:o.Orthogonal.graph ~layers)

let realize_augmented ?node_side ?jobs o ~full_graph ~layers =
  fst (realize_general ?node_side ?jobs o ~full_graph ~layers)

let realize_slab ?node_side o ~z_offset ~band_layers ~total_layers
    ~col_gap_extra ~node_extra_rows =
  realize_general ?node_side ~z_offset ~col_gap_extra ~node_extra_rows
    ~total_layers o ~full_graph:o.Orthogonal.graph ~layers:band_layers

let metrics ?node_side o ~layers = Layout.metrics (realize ?node_side o ~layers)
