open Mvl_geometry

type col = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  n_nodes : int;
  n_wires : int;
  n_points : int;
  nx0 : col;
  ny0 : col;
  nx1 : col;
  ny1 : col;
  wire_off : col;
  edge_u : col;
  edge_v : col;
  px : col;
  py : col;
  pz : col;
}

let alloc n : col = Bigarray.Array1.create Bigarray.int Bigarray.c_layout n

let n_segments t = t.n_points - t.n_wires

(* the four node-corner columns, the CSR offset column, the two edge
   columns and the three point columns, at one word per element — the
   off-heap footprint a resident layout actually pins *)
let resident_bytes t =
  ((4 * t.n_nodes) + (t.n_wires + 1) + (2 * t.n_wires) + (3 * t.n_points))
  * (Sys.word_size / 8)

let node_rect t i =
  Rect.make ~x0:t.nx0.{i} ~y0:t.ny0.{i} ~x1:t.nx1.{i} ~y1:t.ny1.{i}

let wire_view t i =
  let lo = t.wire_off.{i} and hi = t.wire_off.{i + 1} in
  let points =
    Array.init (hi - lo) (fun j ->
        let k = lo + j in
        Point.make ~x:t.px.{k} ~y:t.py.{k} ~z:t.pz.{k})
  in
  Wire.unsafe_of_points ~edge:(t.edge_u.{i}, t.edge_v.{i}) points

let nodes_view t = Array.init t.n_nodes (node_rect t)
let wires_view t = Array.init t.n_wires (wire_view t)

let of_wires ~nodes ~wires =
  let n_nodes = Array.length nodes and n_wires = Array.length wires in
  let n_points =
    Array.fold_left (fun acc w -> acc + Array.length w.Wire.points) 0 wires
  in
  let nx0 = alloc n_nodes and ny0 = alloc n_nodes in
  let nx1 = alloc n_nodes and ny1 = alloc n_nodes in
  Array.iteri
    (fun i (r : Rect.t) ->
      nx0.{i} <- r.Rect.x0;
      ny0.{i} <- r.Rect.y0;
      nx1.{i} <- r.Rect.x1;
      ny1.{i} <- r.Rect.y1)
    nodes;
  let wire_off = alloc (n_wires + 1) in
  let edge_u = alloc n_wires and edge_v = alloc n_wires in
  let px = alloc n_points and py = alloc n_points and pz = alloc n_points in
  let k = ref 0 in
  wire_off.{0} <- 0;
  Array.iteri
    (fun i (w : Wire.t) ->
      let u, v = w.Wire.edge in
      edge_u.{i} <- u;
      edge_v.{i} <- v;
      Array.iter
        (fun (p : Point.t) ->
          px.{!k} <- p.Point.x;
          py.{!k} <- p.Point.y;
          pz.{!k} <- p.Point.z;
          incr k)
        w.Wire.points;
      wire_off.{i + 1} <- !k)
    wires;
  { n_nodes; n_wires; n_points; nx0; ny0; nx1; ny1; wire_off; edge_u; edge_v;
    px; py; pz }

let col_equal (a : col) (b : col) =
  let n = Bigarray.Array1.dim a in
  n = Bigarray.Array1.dim b
  &&
  let i = ref 0 in
  while !i < n && a.{!i} = b.{!i} do
    incr i
  done;
  !i = n

let equal a b =
  a.n_nodes = b.n_nodes && a.n_wires = b.n_wires && a.n_points = b.n_points
  && col_equal a.nx0 b.nx0 && col_equal a.ny0 b.ny0 && col_equal a.nx1 b.nx1
  && col_equal a.ny1 b.ny1
  && col_equal a.wire_off b.wire_off
  && col_equal a.edge_u b.edge_u && col_equal a.edge_v b.edge_v
  && col_equal a.px b.px && col_equal a.py b.py && col_equal a.pz b.pz

let shift_col (src : col) d =
  let n = Bigarray.Array1.dim src in
  let dst = alloc n in
  if d = 0 then Bigarray.Array1.blit src dst
  else
    for i = 0 to n - 1 do
      dst.{i} <- src.{i} + d
    done;
  dst

let translate t ~dx ~dy =
  {
    t with
    nx0 = shift_col t.nx0 dx;
    ny0 = shift_col t.ny0 dy;
    nx1 = shift_col t.nx1 dx;
    ny1 = shift_col t.ny1 dy;
    px = shift_col t.px dx;
    py = shift_col t.py dy;
  }

let bounding_box t =
  if t.n_nodes = 0 && t.n_points = 0 then Rect.make ~x0:0 ~y0:0 ~x1:0 ~y1:0
  else begin
    let x0 = ref max_int and y0 = ref max_int in
    let x1 = ref min_int and y1 = ref min_int in
    for i = 0 to t.n_nodes - 1 do
      if t.nx0.{i} < !x0 then x0 := t.nx0.{i};
      if t.ny0.{i} < !y0 then y0 := t.ny0.{i};
      if t.nx1.{i} > !x1 then x1 := t.nx1.{i};
      if t.ny1.{i} > !y1 then y1 := t.ny1.{i}
    done;
    for k = 0 to t.n_points - 1 do
      if t.px.{k} < !x0 then x0 := t.px.{k};
      if t.px.{k} > !x1 then x1 := t.px.{k};
      if t.py.{k} < !y0 then y0 := t.py.{k};
      if t.py.{k} > !y1 then y1 := t.py.{k}
    done;
    Rect.make ~x0:!x0 ~y0:!y0 ~x1:!x1 ~y1:!y1
  end

let wire_length_xy t i =
  let lo = t.wire_off.{i} and hi = t.wire_off.{i + 1} in
  let total = ref 0 in
  for k = lo to hi - 2 do
    total :=
      !total + abs (t.px.{k + 1} - t.px.{k}) + abs (t.py.{k + 1} - t.py.{k})
  done;
  !total

let wire_length t i =
  let lo = t.wire_off.{i} and hi = t.wire_off.{i + 1} in
  let total = ref 0 in
  for k = lo to hi - 2 do
    total :=
      !total
      + abs (t.px.{k + 1} - t.px.{k})
      + abs (t.py.{k + 1} - t.py.{k})
      + abs (t.pz.{k + 1} - t.pz.{k})
  done;
  !total

module Builder = struct
  type b = {
    n_nodes : int;
    n_wires : int;
    bnx0 : int array;
    bny0 : int array;
    bnx1 : int array;
    bny1 : int array;
    node_set : Bytes.t;
    wu : int array;
    wv : int array;
    wstart : int array; (* offset of wire id's first point in the append
                           buffer, -1 while unrouted *)
    wcount : int array;
    mutable bx : int array; (* growable append buffer *)
    mutable by : int array;
    mutable bz : int array;
    mutable len : int;
    mutable current : int; (* wire id being emitted, -1 between wires *)
  }

  let create ~n_nodes ~n_wires =
    if n_nodes < 0 || n_wires < 0 then invalid_arg "Geom.Builder.create";
    let cap = max 16 (n_wires * 8) in
    {
      n_nodes;
      n_wires;
      bnx0 = Array.make (max 1 n_nodes) 0;
      bny0 = Array.make (max 1 n_nodes) 0;
      bnx1 = Array.make (max 1 n_nodes) 0;
      bny1 = Array.make (max 1 n_nodes) 0;
      node_set = Bytes.make (max 1 n_nodes) '\000';
      wu = Array.make (max 1 n_wires) 0;
      wv = Array.make (max 1 n_wires) 0;
      wstart = Array.make (max 1 n_wires) (-1);
      wcount = Array.make (max 1 n_wires) 0;
      bx = Array.make cap 0;
      by = Array.make cap 0;
      bz = Array.make cap 0;
      len = 0;
      current = -1;
    }

  let set_node b i ~x0 ~y0 ~x1 ~y1 =
    if i < 0 || i >= b.n_nodes then invalid_arg "Geom.Builder.set_node: id";
    if x0 > x1 || y0 > y1 then
      invalid_arg "Geom.Builder.set_node: inverted bounds";
    b.bnx0.(i) <- x0;
    b.bny0.(i) <- y0;
    b.bnx1.(i) <- x1;
    b.bny1.(i) <- y1;
    Bytes.set b.node_set i '\001'

  let close_wire b =
    if b.current >= 0 && b.wcount.(b.current) < 2 then
      invalid_arg
        (Printf.sprintf "Geom.Builder: wire %d has fewer than 2 points"
           b.current);
    b.current <- -1

  let start_wire b ~id ~u ~v =
    if id < 0 || id >= b.n_wires then invalid_arg "Geom.Builder.start_wire: id";
    if b.wstart.(id) >= 0 then
      invalid_arg
        (Printf.sprintf "Geom.Builder: wire %d emitted twice" id);
    close_wire b;
    b.wu.(id) <- u;
    b.wv.(id) <- v;
    b.wstart.(id) <- b.len;
    b.current <- id

  let grow b =
    let cap = Array.length b.bx in
    let cap' = cap * 2 in
    let extend a =
      let a' = Array.make cap' 0 in
      Array.blit a 0 a' 0 cap;
      a'
    in
    b.bx <- extend b.bx;
    b.by <- extend b.by;
    b.bz <- extend b.bz

  let point b ~x ~y ~z =
    let id = b.current in
    if id < 0 then invalid_arg "Geom.Builder.point: no open wire";
    let cnt = b.wcount.(id) in
    if
      cnt > 0
      && b.bx.(b.len - 1) = x
      && b.by.(b.len - 1) = y
      && b.bz.(b.len - 1) = z
    then () (* zero-length step, dropped like Wire.make *)
    else begin
      if cnt > 0 then begin
        let k = b.len - 1 in
        let changed =
          (if b.bx.(k) <> x then 1 else 0)
          + (if b.by.(k) <> y then 1 else 0)
          + if b.bz.(k) <> z then 1 else 0
        in
        if changed <> 1 then
          invalid_arg "Geom.Builder.point: not axis-aligned"
      end;
      if b.len = Array.length b.bx then grow b;
      b.bx.(b.len) <- x;
      b.by.(b.len) <- y;
      b.bz.(b.len) <- z;
      b.len <- b.len + 1;
      b.wcount.(id) <- cnt + 1
    end

  let build b =
    close_wire b;
    for id = 0 to b.n_wires - 1 do
      if b.wstart.(id) < 0 then
        invalid_arg
          (Printf.sprintf "Geom.Builder.build: wire %d not emitted" id)
    done;
    for i = 0 to b.n_nodes - 1 do
      if Bytes.get b.node_set i = '\000' then
        invalid_arg
          (Printf.sprintf "Geom.Builder.build: node %d not set" i)
    done;
    let n_points = ref 0 in
    for id = 0 to b.n_wires - 1 do
      n_points := !n_points + b.wcount.(id)
    done;
    let n_points = !n_points in
    let nx0 = alloc b.n_nodes and ny0 = alloc b.n_nodes in
    let nx1 = alloc b.n_nodes and ny1 = alloc b.n_nodes in
    for i = 0 to b.n_nodes - 1 do
      nx0.{i} <- b.bnx0.(i);
      ny0.{i} <- b.bny0.(i);
      nx1.{i} <- b.bnx1.(i);
      ny1.{i} <- b.bny1.(i)
    done;
    let wire_off = alloc (b.n_wires + 1) in
    let edge_u = alloc b.n_wires and edge_v = alloc b.n_wires in
    let px = alloc n_points and py = alloc n_points and pz = alloc n_points in
    let k = ref 0 in
    wire_off.{0} <- 0;
    (* wires were emitted in construction order; lay the columns out in
       edge-id order so a wire's points sit at [wire_off.{id}..] *)
    for id = 0 to b.n_wires - 1 do
      edge_u.{id} <- b.wu.(id);
      edge_v.{id} <- b.wv.(id);
      let s = b.wstart.(id) and c = b.wcount.(id) in
      for j = 0 to c - 1 do
        px.{!k + j} <- b.bx.(s + j);
        py.{!k + j} <- b.by.(s + j);
        pz.{!k + j} <- b.bz.(s + j)
      done;
      k := !k + c;
      wire_off.{id + 1} <- !k
    done;
    {
      n_nodes = b.n_nodes;
      n_wires = b.n_wires;
      n_points;
      nx0;
      ny0;
      nx1;
      ny1;
      wire_off;
      edge_u;
      edge_v;
      px;
      py;
      pz;
    }

  (* --- fixed-offset parallel emission ---------------------------------- *)

  (* When a construction knows every wire's exact (deduped) point count
     up front, emission can skip the append-buffer-then-reorder path
     entirely: [create_fixed] lays out the final CSR columns from the
     counts, and each [writer] streams points straight into its wire's
     [wire_off] range.  Writers on distinct wire sets never touch the
     same slots, so emission shards across domains with no merge step
     and no intermediate copy — the columns the writers filled ARE the
     built geometry, byte-identical at every writer/job count.

     Validation is as strict as [build]: duplicate emission and missing
     wires are caught (the duplicate check is exact for single-domain
     use and for the disjoint chunks the layout engines emit; racing
     writers on the *same* wire id from two domains is undefined), a
     wire whose deduped points don't land exactly on its precomputed
     count raises, and point semantics (dedupe, axis alignment) match
     [point] bit for bit. *)
  type fixed = {
    fn_nodes : int;
    fn_wires : int;
    f_off : col;
    f_eu : col;
    f_ev : col;
    f_px : col;
    f_py : col;
    f_pz : col;
    f_nx0 : col;
    f_ny0 : col;
    f_nx1 : col;
    f_ny1 : col;
    f_node_set : Bytes.t;
    f_wire_set : Bytes.t;
  }

  let create_fixed ~n_nodes ~wire_counts =
    if n_nodes < 0 then invalid_arg "Geom.Builder.create_fixed";
    let n_wires = Array.length wire_counts in
    let off = alloc (n_wires + 1) in
    off.{0} <- 0;
    for id = 0 to n_wires - 1 do
      if wire_counts.(id) < 2 then
        invalid_arg
          (Printf.sprintf "Geom.Builder: wire %d has fewer than 2 points" id);
      off.{id + 1} <- off.{id} + wire_counts.(id)
    done;
    let n_points = off.{n_wires} in
    {
      fn_nodes = n_nodes;
      fn_wires = n_wires;
      f_off = off;
      f_eu = alloc (max 1 n_wires);
      f_ev = alloc (max 1 n_wires);
      f_px = alloc (max 1 n_points);
      f_py = alloc (max 1 n_points);
      f_pz = alloc (max 1 n_points);
      f_nx0 = alloc (max 1 n_nodes);
      f_ny0 = alloc (max 1 n_nodes);
      f_nx1 = alloc (max 1 n_nodes);
      f_ny1 = alloc (max 1 n_nodes);
      f_node_set = Bytes.make (max 1 n_nodes) '\000';
      f_wire_set = Bytes.make (max 1 n_wires) '\000';
    }

  let set_node_fixed fx i ~x0 ~y0 ~x1 ~y1 =
    if i < 0 || i >= fx.fn_nodes then invalid_arg "Geom.Builder.set_node: id";
    if x0 > x1 || y0 > y1 then
      invalid_arg "Geom.Builder.set_node: inverted bounds";
    fx.f_nx0.{i} <- x0;
    fx.f_ny0.{i} <- y0;
    fx.f_nx1.{i} <- x1;
    fx.f_ny1.{i} <- y1;
    Bytes.set fx.f_node_set i '\001'

  type writer = {
    fx : fixed;
    mutable wid : int;   (* current wire id, -1 between wires *)
    mutable wlo : int;   (* first point slot of the current wire *)
    mutable wcur : int;  (* next point slot *)
    mutable wstop : int; (* one past the current wire's last slot *)
  }

  let writer fx = { fx; wid = -1; wlo = 0; wcur = 0; wstop = 0 }

  let writer_done w =
    if w.wid >= 0 && w.wcur <> w.wstop then
      invalid_arg
        (Printf.sprintf "Geom.Builder: wire %d point count mismatch" w.wid);
    w.wid <- -1

  let fixed_wire w ~id ~u ~v =
    let fx = w.fx in
    if id < 0 || id >= fx.fn_wires then invalid_arg "Geom.Builder.fixed_wire: id";
    writer_done w;
    if Bytes.get fx.f_wire_set id = '\001' then
      invalid_arg (Printf.sprintf "Geom.Builder: wire %d emitted twice" id);
    Bytes.set fx.f_wire_set id '\001';
    fx.f_eu.{id} <- u;
    fx.f_ev.{id} <- v;
    w.wid <- id;
    w.wlo <- fx.f_off.{id};
    w.wcur <- w.wlo;
    w.wstop <- fx.f_off.{id + 1}

  let fixed_point w ~x ~y ~z =
    if w.wid < 0 then invalid_arg "Geom.Builder.point: no open wire";
    let fx = w.fx in
    let k = w.wcur - 1 in
    if
      w.wcur > w.wlo
      && fx.f_px.{k} = x
      && fx.f_py.{k} = y
      && fx.f_pz.{k} = z
    then () (* zero-length step, dropped like Wire.make *)
    else begin
      if w.wcur > w.wlo then begin
        let changed =
          (if fx.f_px.{k} <> x then 1 else 0)
          + (if fx.f_py.{k} <> y then 1 else 0)
          + if fx.f_pz.{k} <> z then 1 else 0
        in
        if changed <> 1 then invalid_arg "Geom.Builder.point: not axis-aligned"
      end;
      if w.wcur = w.wstop then
        invalid_arg
          (Printf.sprintf "Geom.Builder: wire %d point count mismatch" w.wid);
      fx.f_px.{w.wcur} <- x;
      fx.f_py.{w.wcur} <- y;
      fx.f_pz.{w.wcur} <- z;
      w.wcur <- w.wcur + 1
    end

  let build_fixed fx =
    for id = 0 to fx.fn_wires - 1 do
      if Bytes.get fx.f_wire_set id = '\000' then
        invalid_arg
          (Printf.sprintf "Geom.Builder.build: wire %d not emitted" id)
    done;
    for i = 0 to fx.fn_nodes - 1 do
      if Bytes.get fx.f_node_set i = '\000' then
        invalid_arg (Printf.sprintf "Geom.Builder.build: node %d not set" i)
    done;
    {
      n_nodes = fx.fn_nodes;
      n_wires = fx.fn_wires;
      n_points = fx.f_off.{fx.fn_wires};
      nx0 = fx.f_nx0;
      ny0 = fx.f_ny0;
      nx1 = fx.f_nx1;
      ny1 = fx.f_ny1;
      wire_off = fx.f_off;
      edge_u = fx.f_eu;
      edge_v = fx.f_ev;
      px = fx.f_px;
      py = fx.f_py;
      pz = fx.f_pz;
    }
end
