(** Wall-clock phase accounting for layout construction, mirroring the
    [MVL_CHECK_TIMINGS] ticks in {!Check}: when the [MVL_LAYOUT_TIMINGS]
    environment variable is set, every recorded phase also prints a
    [layout: <phase> <seconds>] line to stderr.

    The accumulator is a single global: {!reset} before a construction,
    {!snapshot} after.  Construction code ({!Orthogonal.create},
    {!Multilayer.realize_general}) adds into it unconditionally — the
    cost is one clock read per phase, not per edge.  Concurrent
    constructions from multiple domains would interleave their sums;
    that is benign (the numbers are profiling hints, not results) and
    the enforced bench path constructs one layout at a time. *)

type phase = Place | Pack | Terminals | Emit | Build

type phases = {
  place_seconds : float;      (** placement, edge classification, CSR fill *)
  pack_seconds : float;       (** per-line greedy track assignment *)
  terminals_seconds : float;  (** incidence sort + terminal coordinates *)
  emit_seconds : float;       (** wire point emission into shard buffers *)
  build_seconds : float;      (** shard merge into columnar [Geom.t] *)
}

val reset : unit -> unit
val record : phase -> float -> unit
val timed : phase -> (unit -> 'a) -> 'a
val snapshot : unit -> phases
