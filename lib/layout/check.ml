open Mvl_geometry
open Mvl_topology

type mode = Strict | Thompson

type violation = { rule : string; detail : string }

type result = { mode : mode; violations : violation list; truncated : bool }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.detail

let mode_name = function Strict -> "strict" | Thompson -> "thompson"

(* A recorded horizontal/vertical run on one layer: [fixed] is the
   constant in-plane coordinate, [span] the varying one. *)
type run = { wire : int; span : Interval.t }
(* every segment extremity is a polyline vertex where the wire bends or
   terminates, so for Thompson-mode crossings only strict interior
   points are free *)

type via = { wire : int; zspan : Interval.t }

type collector = {
  mutable violations : violation list;
  mutable count : int;
  limit : int;
}

let report c rule fmt =
  Format.kasprintf
    (fun detail ->
      if c.count < c.limit then begin
        c.violations <- { rule; detail } :: c.violations;
        c.count <- c.count + 1
      end)
    fmt

let overfull c = c.count >= c.limit

(* --- indexes ------------------------------------------------------- *)

type indexes = {
  (* (z, y) -> horizontal runs; (z, x) -> vertical runs *)
  h_runs : (int * int, run list ref) Hashtbl.t;
  v_runs : (int * int, run list ref) Hashtbl.t;
  (* (x, y) -> vias *)
  vias : (int * int, via list ref) Hashtbl.t;
}

let add_to tbl key value =
  match Hashtbl.find_opt tbl key with
  | Some l -> l := value :: !l
  | None -> Hashtbl.add tbl key (ref [ value ])

let build_indexes (layout : Layout.t) =
  let idx =
    {
      h_runs = Hashtbl.create 1024;
      v_runs = Hashtbl.create 1024;
      vias = Hashtbl.create 1024;
    }
  in
  Array.iteri
    (fun wire_id w ->
      Array.iter
        (fun (s : Segment.t) ->
          let run = { wire = wire_id; span = Segment.span s } in
          match s.orientation with
          | Segment.Along_x -> add_to idx.h_runs (s.a.Point.z, s.a.Point.y) run
          | Segment.Along_y -> add_to idx.v_runs (s.a.Point.z, s.a.Point.x) run
          | Segment.Along_z ->
              add_to idx.vias
                (s.a.Point.x, s.a.Point.y)
                { wire = wire_id; zspan = Segment.span s })
        (Wire.segments w))
    layout.wires;
  idx

(* --- collinear (same line) overlap checks -------------------------- *)

let check_collinear c ~what runs =
  let arr = Array.of_list runs in
  Array.sort (fun r1 r2 -> compare r1.span.Interval.lo r2.span.Interval.lo) arr;
  (* sweep keeping the farthest-reaching span seen so far, plus the
     farthest-reaching one owned by a different wire, so containment
     chains are caught too *)
  let hi1 = ref min_int and wire1 = ref (-1) in
  let hi2 = ref min_int and wire2 = ref (-1) in
  Array.iter
    (fun (b : run) ->
      let clash prev_hi prev_wire =
        if prev_wire >= 0 && prev_wire <> b.wire && prev_hi >= b.span.Interval.lo
        then
          report c "overlap" "%s runs of wires %d and %d share x/y=%d.." what
            prev_wire b.wire b.span.Interval.lo
      in
      clash !hi1 !wire1;
      if !wire2 <> !wire1 then clash !hi2 !wire2;
      (* update the two leaders *)
      if b.span.Interval.hi >= !hi1 then begin
        if b.wire <> !wire1 then begin
          hi2 := !hi1;
          wire2 := !wire1
        end;
        hi1 := b.span.Interval.hi;
        wire1 := b.wire
      end
      else if b.wire <> !wire1 && b.span.Interval.hi > !hi2 then begin
        hi2 := b.span.Interval.hi;
        wire2 := b.wire
      end)
    arr

(* --- crossing checks (H vs V on one layer) ------------------------- *)

(* For each layer present in both tables, detect H/V meetings.  In the
   multilayer grid model any shared point is illegal; under Thompson a
   crossing is legal iff it is interior to both runs. *)
let check_crossings c ~mode (idx : indexes) =
  (* collect per layer: y -> sorted H runs, and the V runs *)
  let layers_h = Hashtbl.create 16 and layers_v = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (z, y) runs -> add_to layers_h z (y, !runs))
    idx.h_runs;
  Hashtbl.iter
    (fun (z, x) runs -> add_to layers_v z (x, !runs))
    idx.v_runs;
  Hashtbl.iter
    (fun z v_lines ->
      match Hashtbl.find_opt layers_h z with
      | None -> ()
      | Some h_lines ->
          let h_sorted =
            List.sort (fun (y1, _) (y2, _) -> compare y1 y2) !h_lines
          in
          let h_arr = Array.of_list h_sorted in
          let ys = Array.map fst h_arr in
          List.iter
            (fun (x, v_list) ->
              List.iter
                (fun (v : run) ->
                  if not (overfull c) then begin
                    (* binary search the band of H lines with
                       y within the vertical run's span *)
                    let lo = v.span.Interval.lo and hi = v.span.Interval.hi in
                    let start =
                      let l = ref 0 and r = ref (Array.length ys) in
                      while !l < !r do
                        let m = (!l + !r) / 2 in
                        if ys.(m) < lo then l := m + 1 else r := m
                      done;
                      !l
                    in
                    let i = ref start in
                    while !i < Array.length ys && ys.(!i) <= hi do
                      let y, h_list = h_arr.(!i) in
                      List.iter
                        (fun (h : run) ->
                          if h.wire <> v.wire
                             && Interval.contains h.span x
                          then begin
                            let interior_h =
                              h.span.Interval.lo < x && x < h.span.Interval.hi
                            in
                            let interior_v =
                              v.span.Interval.lo < y && y < v.span.Interval.hi
                            in
                            let ok =
                              match mode with
                              | Strict -> false
                              | Thompson -> interior_h && interior_v
                            in
                            if not ok then
                              report c "crossing"
                                "wires %d and %d meet at (%d,%d,z=%d)" h.wire
                                v.wire x y z
                          end)
                        h_list;
                      incr i
                    done
                  end)
                v_list)
            !v_lines)
    layers_v

(* --- via checks ----------------------------------------------------- *)

let check_vias c (idx : indexes) =
  (* via-via at the same (x, y) *)
  Hashtbl.iter
    (fun (x, y) vias ->
      let arr = Array.of_list !vias in
      Array.sort (fun a b -> compare a.zspan.Interval.lo b.zspan.Interval.lo) arr;
      for i = 0 to Array.length arr - 2 do
        let a = arr.(i) and b = arr.(i + 1) in
        if a.wire <> b.wire && a.zspan.Interval.hi >= b.zspan.Interval.lo then
          report c "via-overlap" "vias of wires %d and %d collide at (%d,%d)"
            a.wire b.wire x y
      done;
      (* via against in-plane runs on every layer it traverses: a via is
         a bend, so this is illegal in both modes *)
      Array.iter
        (fun via ->
          for z = via.zspan.Interval.lo to via.zspan.Interval.hi do
            (match Hashtbl.find_opt idx.h_runs (z, y) with
            | Some runs ->
                List.iter
                  (fun (h : run) ->
                    if h.wire <> via.wire && Interval.contains h.span x then
                      report c "via-run"
                        "via of wire %d pierces run of wire %d at (%d,%d,%d)"
                        via.wire h.wire x y z)
                  !runs
            | None -> ());
            match Hashtbl.find_opt idx.v_runs (z, x) with
            | Some runs ->
                List.iter
                  (fun (v : run) ->
                    if v.wire <> via.wire && Interval.contains v.span y then
                      report c "via-run"
                        "via of wire %d pierces run of wire %d at (%d,%d,%d)"
                        via.wire v.wire x y z)
                  !runs
            | None -> ()
          done)
        arr)
    idx.vias

(* --- node footprint checks ------------------------------------------ *)

let check_nodes c (layout : Layout.t) =
  let nodes = layout.nodes in
  (* pairwise disjointness via sweep on x0 *)
  let order = Array.init (Array.length nodes) (fun i -> i) in
  Array.sort (fun a b -> compare nodes.(a).Rect.x0 nodes.(b).Rect.x0) order;
  Array.iteri
    (fun i a ->
      let ra = nodes.(a) in
      let j = ref (i + 1) in
      while
        !j < Array.length order && nodes.(order.(!j)).Rect.x0 <= ra.Rect.x1
      do
        let b = order.(!j) in
        (* footprints may coincide across different active layers *)
        if
          layout.node_layers.(a) = layout.node_layers.(b)
          && Rect.overlaps ra nodes.(b)
        then
          report c "node-overlap" "nodes %d and %d overlap: %a vs %a" a b
            Rect.pp ra Rect.pp nodes.(b);
        incr j
      done)
    order

(* nodes indexed by the y rows (for H segments) and x columns (for V);
   each entry carries the node's active layer so multi-active-layer
   (3-D grid model) layouts are handled too *)
let check_wires_vs_nodes c (layout : Layout.t) =
  let by_y = Hashtbl.create 1024 and by_x = Hashtbl.create 1024 in
  Array.iteri
    (fun id r ->
      let zl = layout.node_layers.(id) in
      for y = r.Rect.y0 to r.Rect.y1 do
        add_to by_y y (id, r, zl)
      done;
      for x = r.Rect.x0 to r.Rect.x1 do
        add_to by_x x (id, r, zl)
      done)
    layout.nodes;
  let endpoint_of_wire w p =
    let a, b = Wire.endpoints w in
    Point.equal a p || Point.equal b p
  in
  Array.iteri
    (fun wire_id w ->
      let u, v = w.Wire.edge in
      Array.iter
        (fun (s : Segment.t) ->
          let check_hit node_id (r : Rect.t) (hit_lo : Point.t)
              (hit_hi : Point.t) =
            let foreign = node_id <> u && node_id <> v in
            if foreign then
              report c "node-hit"
                "wire %d (%d-%d) crosses foreign node %d (%a)" wire_id u v
                node_id Rect.pp r
            else if
              not (Point.equal hit_lo hit_hi && endpoint_of_wire w hit_lo)
            then
              report c "node-hit"
                "wire %d (%d-%d) overlaps its node %d beyond its terminal"
                wire_id u v node_id
          in
          match s.orientation with
          | Segment.Along_x ->
              let y = s.a.Point.y and z = s.a.Point.z in
              (match Hashtbl.find_opt by_y y with
              | None -> ()
              | Some cands ->
                  List.iter
                    (fun (id, (r : Rect.t), zl) ->
                      if zl = z then begin
                        let lo = max s.a.Point.x r.Rect.x0
                        and hi = min s.b.Point.x r.Rect.x1 in
                        if lo <= hi then
                          check_hit id r
                            (Point.make ~x:lo ~y ~z)
                            (Point.make ~x:hi ~y ~z)
                      end)
                    !cands)
          | Segment.Along_y ->
              let x = s.a.Point.x and z = s.a.Point.z in
              (match Hashtbl.find_opt by_x x with
              | None -> ()
              | Some cands ->
                  List.iter
                    (fun (id, (r : Rect.t), zl) ->
                      if zl = z then begin
                        let lo = max s.a.Point.y r.Rect.y0
                        and hi = min s.b.Point.y r.Rect.y1 in
                        if lo <= hi then
                          check_hit id r
                            (Point.make ~x ~y:lo ~z)
                            (Point.make ~x ~y:hi ~z)
                      end)
                    !cands)
          | Segment.Along_z ->
              (* a via hits a node when its z range crosses the node's
                 active layer inside the footprint *)
              let x = s.a.Point.x and y = s.a.Point.y in
              let zlo = s.a.Point.z and zhi = s.b.Point.z in
              (match Hashtbl.find_opt by_y y with
              | None -> ()
              | Some cands ->
                  List.iter
                    (fun (id, (r : Rect.t), zl) ->
                      if zlo <= zl && zl <= zhi && Rect.contains r ~x ~y then
                        check_hit id r
                          (Point.make ~x ~y ~z:zl)
                          (Point.make ~x ~y ~z:zl))
                    !cands))
        (Wire.segments w))
    layout.wires

let check_terminals c (layout : Layout.t) =
  let graph_edges = Graph.edges layout.graph in
  Array.iteri
    (fun i w ->
      if w.Wire.edge <> graph_edges.(i) then
        report c "edge-mismatch" "wire %d realizes %d-%d but edge %d is %d-%d"
          i (fst w.Wire.edge) (snd w.Wire.edge) i
          (fst graph_edges.(i))
          (snd graph_edges.(i));
      let u, v = w.Wire.edge in
      let a, b = Wire.endpoints w in
      let on_boundary (p : Point.t) node =
        let r = layout.nodes.(node) in
        p.z = layout.node_layers.(node)
        && Rect.contains r ~x:p.x ~y:p.y
        && not (Rect.contains_interior r ~x:p.x ~y:p.y)
      in
      let ok =
        (on_boundary a u && on_boundary b v)
        || (on_boundary a v && on_boundary b u)
      in
      if not ok then
        report c "terminal" "wire %d (%d-%d) does not terminate on its nodes"
          i u v)
    layout.wires

let check_layers c (layout : Layout.t) =
  Array.iteri
    (fun i w ->
      Array.iter
        (fun (p : Point.t) ->
          if p.z < 1 || p.z > layout.layers then
            report c "layer-range" "wire %d leaves the layer range at %a" i
              Point.pp p)
        w.Wire.points)
    layout.wires

let run ?(mode = Strict) ?(max_violations = 20) layout =
  let c = { violations = []; count = 0; limit = max_violations } in
  check_layers c layout;
  check_nodes c layout;
  check_terminals c layout;
  check_wires_vs_nodes c layout;
  let idx = build_indexes layout in
  Hashtbl.iter (fun (_, _) runs -> check_collinear c ~what:"horizontal" !runs)
    idx.h_runs;
  Hashtbl.iter (fun (_, _) runs -> check_collinear c ~what:"vertical" !runs)
    idx.v_runs;
  check_crossings c ~mode idx;
  check_vias c idx;
  (* once the collector is full, later checks stop recording (and the
     crossing sweep stops looking), so a full collector means the list
     may be incomplete — exactly [limit] entries is NOT "all of them" *)
  { mode; violations = List.rev c.violations; truncated = overfull c }

let validate ?mode ?max_violations layout =
  (run ?mode ?max_violations layout).violations

let is_valid ?mode layout = validate ?mode ~max_violations:1 layout = []
