open Mvl_geometry
open Mvl_topology

type mode = Strict | Thompson

type violation = { rule : string; detail : string }

type result = { mode : mode; violations : violation list; truncated : bool }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.detail

let mode_name = function Strict -> "strict" | Thompson -> "thompson"

type collector = {
  mutable violations : violation list;
  mutable count : int;
  limit : int;
}

let report c rule fmt =
  Format.kasprintf
    (fun detail ->
      if c.count < c.limit then begin
        c.violations <- { rule; detail } :: c.violations;
        c.count <- c.count + 1
      end)
    fmt

let overfull c = c.count >= c.limit

(* --- indexes ------------------------------------------------------- *)

(* Flat sorted indexes instead of Hashtbls of list refs: one entry per
   segment, sorted by (k1, k2, lo, hi, wire), so a (k1, k2) group is a
   contiguous slice found by binary search and entries within a group
   are already in ascending-lo sweep order.  Building is one counted
   pass plus a sort — no per-segment consing, no rehashing, and every
   scan below walks memory linearly. *)
type entry = { k1 : int; k2 : int; lo : int; hi : int; wire : int }
(* every segment extremity is a polyline vertex where the wire bends or
   terminates, so for Thompson-mode crossings only strict interior
   points are free *)

let entry_cmp a b =
  if a.k1 <> b.k1 then compare a.k1 b.k1
  else if a.k2 <> b.k2 then compare a.k2 b.k2
  else if a.lo <> b.lo then compare a.lo b.lo
  else if a.hi <> b.hi then compare a.hi b.hi
  else compare a.wire b.wire

type indexes = {
  h_runs : entry array; (* k1 = z, k2 = y, lo/hi = x span *)
  v_runs : entry array; (* k1 = z, k2 = x, lo/hi = y span *)
  vias : entry array; (* k1 = x, k2 = y, lo/hi = z span *)
}

let build_indexes (layout : Layout.t) =
  let nh = ref 0 and nv = ref 0 and nz = ref 0 in
  Array.iter
    (fun w ->
      Array.iter
        (fun (s : Segment.t) ->
          match s.orientation with
          | Segment.Along_x -> incr nh
          | Segment.Along_y -> incr nv
          | Segment.Along_z -> incr nz)
        (Wire.segments w))
    layout.wires;
  let dummy = { k1 = 0; k2 = 0; lo = 0; hi = 0; wire = -1 } in
  let h = Array.make !nh dummy in
  let v = Array.make !nv dummy in
  let z = Array.make !nz dummy in
  let ih = ref 0 and iv = ref 0 and iz = ref 0 in
  Array.iteri
    (fun wire_id w ->
      Array.iter
        (fun (s : Segment.t) ->
          let span = Segment.span s in
          let lo = span.Interval.lo and hi = span.Interval.hi in
          match s.orientation with
          | Segment.Along_x ->
              h.(!ih) <-
                { k1 = s.a.Point.z; k2 = s.a.Point.y; lo; hi; wire = wire_id };
              incr ih
          | Segment.Along_y ->
              v.(!iv) <-
                { k1 = s.a.Point.z; k2 = s.a.Point.x; lo; hi; wire = wire_id };
              incr iv
          | Segment.Along_z ->
              z.(!iz) <-
                { k1 = s.a.Point.x; k2 = s.a.Point.y; lo; hi; wire = wire_id };
              incr iz)
        (Wire.segments w))
    layout.wires;
  Array.sort entry_cmp h;
  Array.sort entry_cmp v;
  Array.sort entry_cmp z;
  { h_runs = h; v_runs = v; vias = z }

(* smallest index in [0, len) whose element is not [below] the target *)
let lower_bound len below =
  let l = ref 0 and r = ref len in
  while !l < !r do
    let m = (!l + !r) / 2 in
    if below m then l := m + 1 else r := m
  done;
  !l

(* the contiguous slice [start, stop) holding group (k1, k2) *)
let group_range (arr : entry array) k1 k2 =
  let len = Array.length arr in
  let start =
    lower_bound len (fun i ->
        let e = arr.(i) in
        e.k1 < k1 || (e.k1 = k1 && e.k2 < k2))
  in
  let stop =
    lower_bound len (fun i ->
        let e = arr.(i) in
        e.k1 < k1 || (e.k1 = k1 && e.k2 <= k2))
  in
  (start, stop)

(* call [f start stop] for every maximal same-(k1, k2) slice *)
let iter_groups (arr : entry array) f =
  let len = Array.length arr in
  let i = ref 0 in
  while !i < len do
    let s = !i in
    let k1 = arr.(s).k1 and k2 = arr.(s).k2 in
    let j = ref (s + 1) in
    while !j < len && arr.(!j).k1 = k1 && arr.(!j).k2 = k2 do
      incr j
    done;
    f s !j;
    i := !j
  done

(* --- collinear (same line) overlap checks -------------------------- *)

let check_collinear c ~what (arr : entry array) start stop =
  (* the group is already sorted by lo; sweep keeping the
     farthest-reaching span seen so far, plus the farthest-reaching one
     owned by a different wire, so containment chains are caught too *)
  let hi1 = ref min_int and wire1 = ref (-1) in
  let hi2 = ref min_int and wire2 = ref (-1) in
  for i = start to stop - 1 do
    let b = arr.(i) in
    let clash prev_hi prev_wire =
      if prev_wire >= 0 && prev_wire <> b.wire && prev_hi >= b.lo then
        report c "overlap" "%s runs of wires %d and %d share x/y=%d.." what
          prev_wire b.wire b.lo
    in
    clash !hi1 !wire1;
    if !wire2 <> !wire1 then clash !hi2 !wire2;
    (* update the two leaders *)
    if b.hi >= !hi1 then begin
      if b.wire <> !wire1 then begin
        hi2 := !hi1;
        wire2 := !wire1
      end;
      hi1 := b.hi;
      wire1 := b.wire
    end
    else if b.wire <> !wire1 && b.hi > !hi2 then begin
      hi2 := b.hi;
      wire2 := b.wire
    end
  done

(* --- crossing checks (H vs V on one layer) ------------------------- *)

(* For each vertical run, binary search the band of horizontal lines
   with y inside its span (same layer) and test x containment.  In the
   multilayer grid model any shared point is illegal; under Thompson a
   crossing is legal iff it is interior to both runs. *)
let check_crossings c ~mode (idx : indexes) =
  let h = idx.h_runs in
  let hlen = Array.length h in
  Array.iter
    (fun (v : entry) ->
      if not (overfull c) then begin
        let z = v.k1 and x = v.k2 in
        let start =
          lower_bound hlen (fun i ->
              let e = h.(i) in
              e.k1 < z || (e.k1 = z && e.k2 < v.lo))
        in
        let i = ref start in
        while
          !i < hlen
          && h.(!i).k1 = z
          && h.(!i).k2 <= v.hi
        do
          let hr = h.(!i) in
          if hr.wire <> v.wire && hr.lo <= x && x <= hr.hi then begin
            let y = hr.k2 in
            let interior_h = hr.lo < x && x < hr.hi in
            let interior_v = v.lo < y && y < v.hi in
            let ok =
              match mode with
              | Strict -> false
              | Thompson -> interior_h && interior_v
            in
            if not ok then
              report c "crossing" "wires %d and %d meet at (%d,%d,z=%d)"
                hr.wire v.wire x y z
          end;
          incr i
        done
      end)
    idx.v_runs

(* --- via checks ----------------------------------------------------- *)

let check_vias c (idx : indexes) =
  iter_groups idx.vias (fun s e ->
      let vias = idx.vias in
      let x = vias.(s).k1 and y = vias.(s).k2 in
      (* via-via at the same (x, y): the group is sorted by z-lo *)
      for i = s to e - 2 do
        let a = vias.(i) and b = vias.(i + 1) in
        if a.wire <> b.wire && a.hi >= b.lo then
          report c "via-overlap" "vias of wires %d and %d collide at (%d,%d)"
            a.wire b.wire x y
      done;
      (* via against in-plane runs on every layer it traverses: a via is
         a bend, so this is illegal in both modes *)
      for i = s to e - 1 do
        let via = vias.(i) in
        for z = via.lo to via.hi do
          let hs, he = group_range idx.h_runs z y in
          for j = hs to he - 1 do
            let hr = idx.h_runs.(j) in
            if hr.wire <> via.wire && hr.lo <= x && x <= hr.hi then
              report c "via-run"
                "via of wire %d pierces run of wire %d at (%d,%d,%d)"
                via.wire hr.wire x y z
          done;
          let vs, ve = group_range idx.v_runs z x in
          for j = vs to ve - 1 do
            let vr = idx.v_runs.(j) in
            if vr.wire <> via.wire && vr.lo <= y && y <= vr.hi then
              report c "via-run"
                "via of wire %d pierces run of wire %d at (%d,%d,%d)"
                via.wire vr.wire x y z
          done
        done
      done)

(* --- node footprint checks ------------------------------------------ *)

let check_nodes c (layout : Layout.t) =
  let nodes = layout.nodes in
  (* pairwise disjointness via sweep on x0 *)
  let order = Array.init (Array.length nodes) (fun i -> i) in
  Array.sort (fun a b -> compare nodes.(a).Rect.x0 nodes.(b).Rect.x0) order;
  Array.iteri
    (fun i a ->
      let ra = nodes.(a) in
      let j = ref (i + 1) in
      while
        !j < Array.length order && nodes.(order.(!j)).Rect.x0 <= ra.Rect.x1
      do
        let b = order.(!j) in
        (* footprints may coincide across different active layers *)
        if
          layout.node_layers.(a) = layout.node_layers.(b)
          && Rect.overlaps ra nodes.(b)
        then
          report c "node-overlap" "nodes %d and %d overlap: %a vs %a" a b
            Rect.pp ra Rect.pp nodes.(b);
        incr j
      done)
    order

(* nodes indexed by their y rows (for H segments) and x columns (for V)
   as sorted flat (key, node) arrays; each candidate's rect and active
   layer are fetched from the layout, so multi-active-layer (3-D grid
   model) layouts are handled too *)
type node_key = { key : int; node : int }

let build_node_index count_of fill (layout : Layout.t) =
  let total = ref 0 in
  Array.iter (fun r -> total := !total + count_of r) layout.nodes;
  let arr = Array.make (max 1 !total) { key = 0; node = -1 } in
  let i = ref 0 in
  Array.iteri
    (fun id r ->
      fill r (fun key ->
          arr.(!i) <- { key; node = id };
          incr i))
    layout.nodes;
  let arr = if !total = 0 then [||] else arr in
  Array.sort
    (fun a b ->
      if a.key <> b.key then compare a.key b.key else compare a.node b.node)
    arr;
  arr

let node_key_range (arr : node_key array) key =
  let len = Array.length arr in
  let start = lower_bound len (fun i -> arr.(i).key < key) in
  let stop = lower_bound len (fun i -> arr.(i).key <= key) in
  (start, stop)

let check_wires_vs_nodes c (layout : Layout.t) =
  let by_y =
    build_node_index
      (fun r -> r.Rect.y1 - r.Rect.y0 + 1)
      (fun r emit ->
        for y = r.Rect.y0 to r.Rect.y1 do
          emit y
        done)
      layout
  in
  let by_x =
    build_node_index
      (fun r -> r.Rect.x1 - r.Rect.x0 + 1)
      (fun r emit ->
        for x = r.Rect.x0 to r.Rect.x1 do
          emit x
        done)
      layout
  in
  let endpoint_of_wire w p =
    let a, b = Wire.endpoints w in
    Point.equal a p || Point.equal b p
  in
  Array.iteri
    (fun wire_id w ->
      let u, v = w.Wire.edge in
      Array.iter
        (fun (s : Segment.t) ->
          let check_hit node_id (r : Rect.t) (hit_lo : Point.t)
              (hit_hi : Point.t) =
            let foreign = node_id <> u && node_id <> v in
            if foreign then
              report c "node-hit"
                "wire %d (%d-%d) crosses foreign node %d (%a)" wire_id u v
                node_id Rect.pp r
            else if
              not (Point.equal hit_lo hit_hi && endpoint_of_wire w hit_lo)
            then
              report c "node-hit"
                "wire %d (%d-%d) overlaps its node %d beyond its terminal"
                wire_id u v node_id
          in
          match s.orientation with
          | Segment.Along_x ->
              let y = s.a.Point.y and z = s.a.Point.z in
              let start, stop = node_key_range by_y y in
              for i = start to stop - 1 do
                let id = by_y.(i).node in
                let r = layout.nodes.(id) in
                if layout.node_layers.(id) = z then begin
                  let lo = max s.a.Point.x r.Rect.x0
                  and hi = min s.b.Point.x r.Rect.x1 in
                  if lo <= hi then
                    check_hit id r
                      (Point.make ~x:lo ~y ~z)
                      (Point.make ~x:hi ~y ~z)
                end
              done
          | Segment.Along_y ->
              let x = s.a.Point.x and z = s.a.Point.z in
              let start, stop = node_key_range by_x x in
              for i = start to stop - 1 do
                let id = by_x.(i).node in
                let r = layout.nodes.(id) in
                if layout.node_layers.(id) = z then begin
                  let lo = max s.a.Point.y r.Rect.y0
                  and hi = min s.b.Point.y r.Rect.y1 in
                  if lo <= hi then
                    check_hit id r
                      (Point.make ~x ~y:lo ~z)
                      (Point.make ~x ~y:hi ~z)
                end
              done
          | Segment.Along_z ->
              (* a via hits a node when its z range crosses the node's
                 active layer inside the footprint *)
              let x = s.a.Point.x and y = s.a.Point.y in
              let zlo = s.a.Point.z and zhi = s.b.Point.z in
              let start, stop = node_key_range by_y y in
              for i = start to stop - 1 do
                let id = by_y.(i).node in
                let r = layout.nodes.(id) in
                let zl = layout.node_layers.(id) in
                if zlo <= zl && zl <= zhi && Rect.contains r ~x ~y then
                  check_hit id r
                    (Point.make ~x ~y ~z:zl)
                    (Point.make ~x ~y ~z:zl)
              done)
        (Wire.segments w))
    layout.wires

let check_terminals c (layout : Layout.t) =
  let graph_edges = Graph.edges layout.graph in
  Array.iteri
    (fun i w ->
      if w.Wire.edge <> graph_edges.(i) then
        report c "edge-mismatch" "wire %d realizes %d-%d but edge %d is %d-%d"
          i (fst w.Wire.edge) (snd w.Wire.edge) i
          (fst graph_edges.(i))
          (snd graph_edges.(i));
      let u, v = w.Wire.edge in
      let a, b = Wire.endpoints w in
      let on_boundary (p : Point.t) node =
        let r = layout.nodes.(node) in
        p.z = layout.node_layers.(node)
        && Rect.contains r ~x:p.x ~y:p.y
        && not (Rect.contains_interior r ~x:p.x ~y:p.y)
      in
      let ok =
        (on_boundary a u && on_boundary b v)
        || (on_boundary a v && on_boundary b u)
      in
      if not ok then
        report c "terminal" "wire %d (%d-%d) does not terminate on its nodes"
          i u v)
    layout.wires

let check_layers c (layout : Layout.t) =
  Array.iteri
    (fun i w ->
      Array.iter
        (fun (p : Point.t) ->
          if p.z < 1 || p.z > layout.layers then
            report c "layer-range" "wire %d leaves the layer range at %a" i
              Point.pp p)
        w.Wire.points)
    layout.wires

let run ?(mode = Strict) ?(max_violations = 20) layout =
  let c = { violations = []; count = 0; limit = max_violations } in
  check_layers c layout;
  check_nodes c layout;
  check_terminals c layout;
  check_wires_vs_nodes c layout;
  let idx = build_indexes layout in
  iter_groups idx.h_runs (fun s e ->
      check_collinear c ~what:"horizontal" idx.h_runs s e);
  iter_groups idx.v_runs (fun s e ->
      check_collinear c ~what:"vertical" idx.v_runs s e);
  check_crossings c ~mode idx;
  check_vias c idx;
  (* once the collector is full, later checks stop recording (and the
     crossing sweep stops looking), so a full collector means the list
     may be incomplete — exactly [limit] entries is NOT "all of them" *)
  { mode; violations = List.rev c.violations; truncated = overfull c }

let validate ?mode ?max_violations layout =
  (run ?mode ?max_violations layout).violations

let is_valid ?mode layout = validate ?mode ~max_violations:1 layout = []
