open Mvl_geometry
open Mvl_topology

type mode = Strict | Thompson

type violation = { rule : string; detail : string }

type result = { mode : mode; violations : violation list; truncated : bool }

let pp_violation ppf v = Format.fprintf ppf "[%s] %s" v.rule v.detail

let mode_name = function Strict -> "strict" | Thompson -> "thompson"

type collector = {
  mutable violations : violation list;
  mutable count : int;
  limit : int;
}

let report c rule fmt =
  Format.kasprintf
    (fun detail ->
      if c.count < c.limit then begin
        c.violations <- { rule; detail } :: c.violations;
        c.count <- c.count + 1
      end)
    fmt

let overfull c = c.count >= c.limit

(* --- indexes ------------------------------------------------------- *)

(* Struct-of-arrays segment indexes read straight out of the layout's
   Geom columns: one parallel-array entry per segment, sorted by
   (k1, k2, lo, hi, wire), so a (k1, k2) group is a contiguous slice
   found by binary search and entries within a group are already in
   ascending-lo sweep order.  No Segment or Point record is ever
   allocated — classification happens on the raw coordinate columns and
   every scan below walks flat int arrays linearly. *)
type runs = {
  n : int;
  k1 : int array;
  k2 : int array;
  lo : int array;
  hi : int array;
  wire : int array;
}
(* every segment extremity is a polyline vertex where the wire bends or
   terminates, so for Thompson-mode crossings only strict interior
   points are free *)

(* first index in [l0, r0) with a.(i) >= v (resp. > v): direct int-array
   binary searches — monomorphic loads, no closure per probe *)
let lb_ge (a : int array) l0 r0 v =
  let l = ref l0 and r = ref r0 in
  while !l < !r do
    let m = (!l + !r) / 2 in
    if a.(m) < v then l := m + 1 else r := m
  done;
  !l

let lb_gt (a : int array) l0 r0 v =
  let l = ref l0 and r = ref r0 in
  while !l < !r do
    let m = (!l + !r) / 2 in
    if a.(m) <= v then l := m + 1 else r := m
  done;
  !l

(* distinct k1 values of a sorted [runs] with their slice boundaries, so
   (k1, k2) group lookups narrow to a k1 bucket first and then search on
   k2 alone — one array read per probe instead of two *)
type zindex = { zs : int array; bstart : int array (* length zs+1 *) }

let zindex_of (r : runs) =
  let nz = ref 0 in
  for i = 0 to r.n - 1 do
    if i = 0 || r.k1.(i) <> r.k1.(i - 1) then incr nz
  done;
  let zs = Array.make (max 1 !nz) 0 in
  let bstart = Array.make (!nz + 1) r.n in
  let j = ref 0 in
  for i = 0 to r.n - 1 do
    if i = 0 || r.k1.(i) <> r.k1.(i - 1) then begin
      zs.(!j) <- r.k1.(i);
      bstart.(!j) <- i;
      incr j
    end
  done;
  { zs; bstart }

(* the k1 bucket as (start, stop), or (0, 0) when k1 is absent *)
let zbucket zi k1 =
  let nz = Array.length zi.bstart - 1 in
  let p = lb_ge zi.zs 0 nz k1 in
  if p < nz && zi.zs.(p) = k1 then (zi.bstart.(p), zi.bstart.(p + 1))
  else (0, 0)

(* the contiguous slice [start, stop) holding group (k1, k2) *)
let group_range (r : runs) zi k1 k2 =
  let s, e = zbucket zi k1 in
  let start = lb_ge r.k2 s e k2 in
  let stop = lb_gt r.k2 start e k2 in
  (start, stop)

type indexes = {
  h_runs : runs; (* k1 = z, k2 = y, lo/hi = x span *)
  v_runs : runs; (* k1 = z, k2 = x, lo/hi = y span *)
  vias : runs; (* k1 = x, k2 = y, lo/hi = z span *)
  h_z : zindex;
  v_z : zindex;
}

let make_runs n =
  {
    n;
    k1 = Array.make (max 1 n) 0;
    k2 = Array.make (max 1 n) 0;
    lo = Array.make (max 1 n) 0;
    hi = Array.make (max 1 n) 0;
    wire = Array.make (max 1 n) 0;
  }

let bits_for range =
  let b = ref 0 in
  while range lsr !b > 0 do
    incr b
  done;
  !b

(* Sort non-negative packed keys, returning the sorted array (the input
   or a scratch buffer).  LSD radix in 16-bit digits: linear passes beat
   a comparison sort well before 10^5 entries, and packed keys make the
   digit extraction one shift+mask. *)
let radix_sort keys nbits =
  let n = Array.length keys in
  if n < 2048 then begin
    Array.sort Int.compare keys;
    keys
  end
  else begin
    let count = Array.make 0x10000 0 in
    let src = ref keys and dst = ref (Array.make n 0) in
    let shift = ref 0 in
    while !shift < nbits do
      let s = !src and d = !dst in
      Array.fill count 0 0x10000 0;
      for i = 0 to n - 1 do
        let c = (s.(i) lsr !shift) land 0xffff in
        count.(c) <- count.(c) + 1
      done;
      let sum = ref 0 in
      for c = 0 to 0xffff do
        let k = count.(c) in
        count.(c) <- !sum;
        sum := !sum + k
      done;
      for i = 0 to n - 1 do
        let c = (s.(i) lsr !shift) land 0xffff in
        d.(count.(c)) <- s.(i);
        count.(c) <- count.(c) + 1
      done;
      src := d;
      dst := s;
      shift := !shift + 16
    done;
    !src
  end

(* Sort entries by (k1, k2, lo).  Fast path: when the key ranges fit in
   62 bits alongside the entry index, pack them into one int per entry
   and sort immediates — several times faster than a comparator reading
   five arrays.  Entries generated by the same wire stay in generation
   order either way; cross-wire ties in (k1, k2, lo) only occur on
   already-overlapping (invalid) geometry, where report order is not
   specified. *)
let sort_runs r =
  let permute_by idx =
    let permute a = Array.map (fun i -> a.(i)) idx in
    {
      r with
      k1 = permute r.k1;
      k2 = permute r.k2;
      lo = permute r.lo;
      hi = permute r.hi;
      wire = permute r.wire;
    }
  in
  if r.n = 0 then r
  else begin
    let mn a =
      let m = ref a.(0) in
      for i = 1 to r.n - 1 do
        if a.(i) < !m then m := a.(i)
      done;
      !m
    in
    let mx a =
      let m = ref a.(0) in
      for i = 1 to r.n - 1 do
        if a.(i) > !m then m := a.(i)
      done;
      !m
    in
    let k1_0 = mn r.k1 and k2_0 = mn r.k2 and lo_0 = mn r.lo in
    let bk1 = bits_for (mx r.k1 - k1_0) in
    let bk2 = bits_for (mx r.k2 - k2_0) in
    let blo = bits_for (mx r.lo - lo_0) in
    let bix = bits_for (r.n - 1) in
    if bk1 + bk2 + blo + bix <= 62 then begin
      let keys =
        Array.init r.n (fun i ->
            ((((((r.k1.(i) - k1_0) lsl bk2) lor (r.k2.(i) - k2_0)) lsl blo)
             lor (r.lo.(i) - lo_0))
             lsl bix)
            lor i)
      in
      let keys = radix_sort keys (bk1 + bk2 + blo + bix) in
      let mask = (1 lsl bix) - 1 in
      permute_by (Array.map (fun k -> k land mask) keys)
    end
    else begin
      let idx = Array.init r.n (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = Int.compare r.k1.(a) r.k1.(b) in
          if c <> 0 then c
          else
            let c = Int.compare r.k2.(a) r.k2.(b) in
            if c <> 0 then c
            else
              let c = Int.compare r.lo.(a) r.lo.(b) in
              if c <> 0 then c
              else
                let c = Int.compare r.hi.(a) r.hi.(b) in
                if c <> 0 then c else Int.compare r.wire.(a) r.wire.(b))
        idx;
      permute_by idx
    end
  end

let build_indexes (g : Geom.t) =
  let px = g.Geom.px and py = g.Geom.py and pz = g.Geom.pz in
  let nh = ref 0 and nv = ref 0 and nz = ref 0 in
  for i = 0 to g.Geom.n_wires - 1 do
    for k = g.Geom.wire_off.{i} to g.Geom.wire_off.{i + 1} - 2 do
      if px.{k + 1} <> px.{k} then incr nh
      else if py.{k + 1} <> py.{k} then incr nv
      else incr nz
    done
  done;
  let h = make_runs !nh and v = make_runs !nv and z = make_runs !nz in
  let ih = ref 0 and iv = ref 0 and iz = ref 0 in
  for i = 0 to g.Geom.n_wires - 1 do
    for k = g.Geom.wire_off.{i} to g.Geom.wire_off.{i + 1} - 2 do
      let xa = px.{k} and ya = py.{k} and za = pz.{k} in
      let xb = px.{k + 1} and yb = py.{k + 1} and zb = pz.{k + 1} in
      if xb <> xa then begin
        let j = !ih in
        h.k1.(j) <- za;
        h.k2.(j) <- ya;
        h.lo.(j) <- min xa xb;
        h.hi.(j) <- max xa xb;
        h.wire.(j) <- i;
        incr ih
      end
      else if yb <> ya then begin
        let j = !iv in
        v.k1.(j) <- za;
        v.k2.(j) <- xa;
        v.lo.(j) <- min ya yb;
        v.hi.(j) <- max ya yb;
        v.wire.(j) <- i;
        incr iv
      end
      else begin
        let j = !iz in
        z.k1.(j) <- xa;
        z.k2.(j) <- ya;
        z.lo.(j) <- min za zb;
        z.hi.(j) <- max za zb;
        z.wire.(j) <- i;
        incr iz
      end
    done
  done;
  let sh = sort_runs h and sv = sort_runs v and sz = sort_runs z in
  {
    h_runs = sh;
    v_runs = sv;
    vias = sz;
    h_z = zindex_of sh;
    v_z = zindex_of sv;
  }

(* call [f start stop] for every maximal same-(k1, k2) slice inside
   [from, upto) — [from]/[upto] must sit on group boundaries, which
   every zindex bucket boundary does *)
let iter_groups_in (r : runs) ~from ~upto f =
  let i = ref from in
  while !i < upto do
    let s = !i in
    let k1 = r.k1.(s) and k2 = r.k2.(s) in
    let j = ref (s + 1) in
    while !j < upto && r.k1.(!j) = k1 && r.k2.(!j) = k2 do
      incr j
    done;
    f s !j;
    i := !j
  done

let iter_groups (r : runs) f = iter_groups_in r ~from:0 ~upto:r.n f

(* --- collinear (same line) overlap checks -------------------------- *)

let check_collinear c ~what (r : runs) start stop =
  (* the group is already sorted by lo; sweep keeping the
     farthest-reaching span seen so far, plus the farthest-reaching one
     owned by a different wire, so containment chains are caught too *)
  let hi1 = ref min_int and wire1 = ref (-1) in
  let hi2 = ref min_int and wire2 = ref (-1) in
  for i = start to stop - 1 do
    let b_lo = r.lo.(i) and b_hi = r.hi.(i) and b_wire = r.wire.(i) in
    let clash prev_hi prev_wire =
      if prev_wire >= 0 && prev_wire <> b_wire && prev_hi >= b_lo then
        report c "overlap" "%s runs of wires %d and %d share x/y=%d.." what
          prev_wire b_wire b_lo
    in
    clash !hi1 !wire1;
    if !wire2 <> !wire1 then clash !hi2 !wire2;
    (* update the two leaders *)
    if b_hi >= !hi1 then begin
      if b_wire <> !wire1 then begin
        hi2 := !hi1;
        wire2 := !wire1
      end;
      hi1 := b_hi;
      wire1 := b_wire
    end
    else if b_wire <> !wire1 && b_hi > !hi2 then begin
      hi2 := b_hi;
      wire2 := b_wire
    end
  done

(* --- crossing checks (H vs V on one layer) ------------------------- *)

(* For each vertical run, binary search the band of horizontal lines
   with y inside its span (same layer) and test x containment.  In the
   multilayer grid model any shared point is illegal; under Thompson a
   crossing is legal iff it is interior to both runs. *)
let check_crossings_in c ~mode (idx : indexes) ~from ~upto =
  let h = idx.h_runs and v = idx.v_runs in
  for vi = from to upto - 1 do
    if not (overfull c) then begin
      let z = v.k1.(vi) and x = v.k2.(vi) in
      let v_lo = v.lo.(vi) and v_hi = v.hi.(vi) and v_wire = v.wire.(vi) in
      let bs, be = zbucket idx.h_z z in
      let start = lb_ge h.k2 bs be v_lo in
      let i = ref start in
      while !i < be && h.k2.(!i) <= v_hi do
        let j = !i in
        if h.wire.(j) <> v_wire && h.lo.(j) <= x && x <= h.hi.(j) then begin
          let y = h.k2.(j) in
          let interior_h = h.lo.(j) < x && x < h.hi.(j) in
          let interior_v = v_lo < y && y < v_hi in
          let ok =
            match mode with
            | Strict -> false
            | Thompson -> interior_h && interior_v
          in
          if not ok then
            report c "crossing" "wires %d and %d meet at (%d,%d,z=%d)"
              h.wire.(j) v_wire x y z
        end;
        incr i
      done
    end
  done

let check_crossings c ~mode (idx : indexes) =
  check_crossings_in c ~mode idx ~from:0 ~upto:idx.v_runs.n

(* --- via checks ----------------------------------------------------- *)

let check_vias c (idx : indexes) =
  let vias = idx.vias in
  iter_groups vias (fun s e ->
      let x = vias.k1.(s) and y = vias.k2.(s) in
      (* via-via at the same (x, y): the group is sorted by z-lo *)
      for i = s to e - 2 do
        if vias.wire.(i) <> vias.wire.(i + 1) && vias.hi.(i) >= vias.lo.(i + 1)
        then
          report c "via-overlap" "vias of wires %d and %d collide at (%d,%d)"
            vias.wire.(i)
            vias.wire.(i + 1)
            x y
      done;
      (* via against in-plane runs on every layer it traverses: a via is
         a bend, so this is illegal in both modes *)
      for i = s to e - 1 do
        let via_wire = vias.wire.(i) in
        for z = vias.lo.(i) to vias.hi.(i) do
          let hs, he = group_range idx.h_runs idx.h_z z y in
          for j = hs to he - 1 do
            let hr = idx.h_runs in
            if hr.wire.(j) <> via_wire && hr.lo.(j) <= x && x <= hr.hi.(j)
            then
              report c "via-run"
                "via of wire %d pierces run of wire %d at (%d,%d,%d)" via_wire
                hr.wire.(j) x y z
          done;
          let vs, ve = group_range idx.v_runs idx.v_z z x in
          for j = vs to ve - 1 do
            let vr = idx.v_runs in
            if vr.wire.(j) <> via_wire && vr.lo.(j) <= y && y <= vr.hi.(j)
            then
              report c "via-run"
                "via of wire %d pierces run of wire %d at (%d,%d,%d)" via_wire
                vr.wire.(j) x y z
          done
        done
      done)

(* --- node footprint checks ------------------------------------------ *)

let check_nodes c (layout : Layout.t) =
  let g = Layout.geom layout in
  let node_layers = Layout.node_layers layout in
  let n = g.Geom.n_nodes in
  (* pairwise disjointness via sweep on x0 *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> Int.compare g.Geom.nx0.{a} g.Geom.nx0.{b}) order;
  Array.iteri
    (fun i a ->
      let j = ref (i + 1) in
      while !j < n && g.Geom.nx0.{order.(!j)} <= g.Geom.nx1.{a} do
        let b = order.(!j) in
        (* footprints may coincide across different active layers *)
        if
          node_layers.(a) = node_layers.(b)
          && max g.Geom.nx0.{a} g.Geom.nx0.{b}
             <= min g.Geom.nx1.{a} g.Geom.nx1.{b}
          && max g.Geom.ny0.{a} g.Geom.ny0.{b}
             <= min g.Geom.ny1.{a} g.Geom.ny1.{b}
        then
          report c "node-overlap" "nodes %d and %d overlap: %a vs %a" a b
            Rect.pp (Geom.node_rect g a) Rect.pp (Geom.node_rect g b);
        incr j
      done)
    order

(* Nodes indexed by their y rows (for H segments) and x columns (for V
   ones): one flat entry per (row-or-column, node) pair, bucketed by the
   key and sorted inside each bucket by the node's span start on the
   other axis, with a running prefix max of the span ends.  A stabbing
   query for [qlo, qhi] binary-searches the last entry starting at or
   before qhi and walks backwards while the prefix max still reaches
   qlo, so it touches only overlapping candidates (plus one) instead of
   every node sharing the row/column — correct even when footprints
   overlap, which is itself a violation reported elsewhere. *)
type node_index = {
  keys : int array; (* distinct key values, ascending *)
  bstart : int array; (* bucket boundaries, length keys+1 *)
  lo : int array; (* span start on the other axis, ascending per bucket *)
  hi : int array; (* span end *)
  prefmax : int array; (* running max of [hi] within the bucket *)
  node : int array;
}

let build_node_index key_lo key_hi span_lo span_hi (g : Geom.t) =
  let key_lo : Geom.col = key_lo and key_hi : Geom.col = key_hi in
  let span_lo : Geom.col = span_lo and span_hi : Geom.col = span_hi in
  let total = ref 0 in
  for i = 0 to g.Geom.n_nodes - 1 do
    total := !total + (key_hi.{i} - key_lo.{i} + 1)
  done;
  let total = !total in
  let ekey = Array.make (max 1 total) 0 in
  let enode = Array.make (max 1 total) (-1) in
  let j = ref 0 in
  for i = 0 to g.Geom.n_nodes - 1 do
    for key = key_lo.{i} to key_hi.{i} do
      ekey.(!j) <- key;
      enode.(!j) <- i;
      incr j
    done
  done;
  (* sort entries by (key, span start, node): packed radix fast path,
     comparator fallback for out-of-range coordinates *)
  let sorted_key, node =
    if total = 0 then ([||], [||])
    else begin
      let kmin = ref ekey.(0) and kmax = ref ekey.(0) in
      for i = 1 to total - 1 do
        if ekey.(i) < !kmin then kmin := ekey.(i);
        if ekey.(i) > !kmax then kmax := ekey.(i)
      done;
      let lmin = ref span_lo.{0} and lmax = ref span_lo.{0} in
      for i = 1 to g.Geom.n_nodes - 1 do
        let v = span_lo.{i} in
        if v < !lmin then lmin := v;
        if v > !lmax then lmax := v
      done;
      let bkey = bits_for (!kmax - !kmin) in
      let blo = bits_for (!lmax - !lmin) in
      let bnd = bits_for (g.Geom.n_nodes - 1) in
      if bkey + blo + bnd <= 62 then begin
        let kmin = !kmin and lmin = !lmin in
        let packed =
          Array.init total (fun i ->
              let nd = enode.(i) in
              ((((ekey.(i) - kmin) lsl blo) lor (span_lo.{nd} - lmin)) lsl bnd)
              lor nd)
        in
        let packed = radix_sort packed (bkey + blo + bnd) in
        let maskn = (1 lsl bnd) - 1 in
        ( Array.map (fun k -> (k lsr (blo + bnd)) + kmin) packed,
          Array.map (fun k -> k land maskn) packed )
      end
      else begin
        let idx = Array.init total (fun i -> i) in
        Array.sort
          (fun a b ->
            let c = Int.compare ekey.(a) ekey.(b) in
            if c <> 0 then c
            else
              let c = Int.compare span_lo.{enode.(a)} span_lo.{enode.(b)} in
              if c <> 0 then c else Int.compare enode.(a) enode.(b))
          idx;
        ( Array.map (fun i -> ekey.(i)) idx,
          Array.map (fun i -> enode.(i)) idx )
      end
    end
  in
  let lo = Array.map (fun i -> span_lo.{i}) node in
  let hi = Array.map (fun i -> span_hi.{i}) node in
  let nkeys = ref 0 in
  for i = 0 to total - 1 do
    if i = 0 || sorted_key.(i) <> sorted_key.(i - 1) then incr nkeys
  done;
  let keys = Array.make (max 1 !nkeys) 0 in
  let bstart = Array.make (!nkeys + 1) total in
  let b = ref 0 in
  for i = 0 to total - 1 do
    if i = 0 || sorted_key.(i) <> sorted_key.(i - 1) then begin
      keys.(!b) <- sorted_key.(i);
      bstart.(!b) <- i;
      incr b
    end
  done;
  let prefmax = Array.make (max 1 total) min_int in
  for b = 0 to !nkeys - 1 do
    let m = ref min_int in
    for i = bstart.(b) to bstart.(b + 1) - 1 do
      if hi.(i) > !m then m := hi.(i);
      prefmax.(i) <- !m
    done
  done;
  { keys; bstart; lo; hi; prefmax; node }

(* call [f node olo ohi] for each node on row/column [key] whose span
   overlaps [qlo, qhi], with the clamped overlap *)
let node_stab (ni : node_index) key qlo qhi f =
  let nk = Array.length ni.bstart - 1 in
  let b = lb_ge ni.keys 0 nk key in
  if b < nk && ni.keys.(b) = key then begin
    let s = ni.bstart.(b) and e = ni.bstart.(b + 1) in
    let p = ref (lb_gt ni.lo s e qhi - 1) in
    while !p >= s && ni.prefmax.(!p) >= qlo do
      if ni.hi.(!p) >= qlo then
        f ni.node.(!p) (max ni.lo.(!p) qlo) (min ni.hi.(!p) qhi);
      decr p
    done
  end

let check_wires_vs_nodes c (layout : Layout.t) =
  let g = Layout.geom layout in
  let node_layers = Layout.node_layers layout in
  let by_y = build_node_index g.Geom.ny0 g.Geom.ny1 g.Geom.nx0 g.Geom.nx1 g in
  let by_x = build_node_index g.Geom.nx0 g.Geom.nx1 g.Geom.ny0 g.Geom.ny1 g in
  let px = g.Geom.px and py = g.Geom.py and pz = g.Geom.pz in
  for wire_id = 0 to g.Geom.n_wires - 1 do
    let u = g.Geom.edge_u.{wire_id} and v = g.Geom.edge_v.{wire_id} in
    let first = g.Geom.wire_off.{wire_id}
    and last = g.Geom.wire_off.{wire_id + 1} - 1 in
    let endpoint_of_wire x y z =
      (px.{first} = x && py.{first} = y && pz.{first} = z)
      || (px.{last} = x && py.{last} = y && pz.{last} = z)
    in
    let check_hit node_id ~single x y z =
      let foreign = node_id <> u && node_id <> v in
      if foreign then
        report c "node-hit" "wire %d (%d-%d) crosses foreign node %d (%a)"
          wire_id u v node_id Rect.pp (Geom.node_rect g node_id)
      else if not (single && endpoint_of_wire x y z) then
        report c "node-hit"
          "wire %d (%d-%d) overlaps its node %d beyond its terminal" wire_id u
          v node_id
    in
    for k = first to last - 1 do
      let xa = px.{k} and ya = py.{k} and za = pz.{k} in
      let xb = px.{k + 1} and yb = py.{k + 1} and zb = pz.{k + 1} in
      if xb <> xa then
        (* in-plane run along x at (y, z) *)
        node_stab by_y ya (min xa xb) (max xa xb) (fun id lo hi ->
            if node_layers.(id) = za then
              check_hit id ~single:(lo = hi) lo ya za)
      else if yb <> ya then
        node_stab by_x xa (min ya yb) (max ya yb) (fun id lo hi ->
            if node_layers.(id) = za then
              check_hit id ~single:(lo = hi) xa lo za)
      else begin
        (* a via hits a node when its z range crosses the node's active
           layer inside the footprint *)
        let zlo = min za zb and zhi = max za zb in
        node_stab by_y ya xa xa (fun id _ _ ->
            let zl = node_layers.(id) in
            if zlo <= zl && zl <= zhi then check_hit id ~single:true xa ya zl)
      end
    done
  done

let check_terminals c (layout : Layout.t) =
  let g = Layout.geom layout in
  let node_layers = Layout.node_layers layout in
  let graph_edges = Graph.edges (Layout.graph layout) in
  let px = g.Geom.px and py = g.Geom.py and pz = g.Geom.pz in
  for i = 0 to g.Geom.n_wires - 1 do
    let u = g.Geom.edge_u.{i} and v = g.Geom.edge_v.{i} in
    let gu, gv = graph_edges.(i) in
    if u <> gu || v <> gv then
      report c "edge-mismatch" "wire %d realizes %d-%d but edge %d is %d-%d" i
        u v i gu gv;
    let first = g.Geom.wire_off.{i} and last = g.Geom.wire_off.{i + 1} - 1 in
    let on_boundary k node =
      let x = px.{k} and y = py.{k} in
      pz.{k} = node_layers.(node)
      && g.Geom.nx0.{node} <= x
      && x <= g.Geom.nx1.{node}
      && g.Geom.ny0.{node} <= y
      && y <= g.Geom.ny1.{node}
      && not
           (g.Geom.nx0.{node} < x
           && x < g.Geom.nx1.{node}
           && g.Geom.ny0.{node} < y
           && y < g.Geom.ny1.{node})
    in
    let ok =
      (on_boundary first u && on_boundary last v)
      || (on_boundary first v && on_boundary last u)
    in
    if not ok then
      report c "terminal" "wire %d (%d-%d) does not terminate on its nodes" i
        u v
  done

let check_layers c (layout : Layout.t) =
  let g = Layout.geom layout in
  let layers = Layout.layers layout in
  for i = 0 to g.Geom.n_wires - 1 do
    for k = g.Geom.wire_off.{i} to g.Geom.wire_off.{i + 1} - 1 do
      let z = g.Geom.pz.{k} in
      if z < 1 || z > layers then
        report c "layer-range" "wire %d leaves the layer range at (%d,%d,%d)" i
          g.Geom.px.{k} g.Geom.py.{k} z
    done
  done

(* --- sharded sweeps -------------------------------------------------- *)

(* One shard = one zindex bucket (all runs on one layer) of one sweep
   kind.  A bucket boundary is always a group boundary, so the
   collinear sweep sees whole groups, and the crossing sweep only reads
   the (shared, immutable) indexes — shards never touch common mutable
   state.  Each shard collects into its own local collector with the
   full violation budget; merging the shard lists in task order then
   reproduces exactly the sequential report order, so truncating the
   merged list to the budget yields a byte-identical result at any
   [jobs]. *)
type shard = Sweep_h of int * int | Sweep_v of int * int | Sweep_x of int * int

let shards_of (idx : indexes) =
  let buckets kind (zi : zindex) =
    let nb = Array.length zi.bstart - 1 in
    List.init nb (fun b -> kind zi.bstart.(b) zi.bstart.(b + 1))
  in
  (* task order mirrors the sequential check order: collinear-H,
     collinear-V, crossings — each ascending in z *)
  Array.of_list
    (buckets (fun s e -> Sweep_h (s, e)) idx.h_z
    @ buckets (fun s e -> Sweep_v (s, e)) idx.v_z
    @ buckets (fun s e -> Sweep_x (s, e)) idx.v_z)

let run_shard ~mode ~max_violations (idx : indexes) shard =
  let lc = { violations = []; count = 0; limit = max_violations } in
  (match shard with
  | Sweep_h (s, e) ->
      iter_groups_in idx.h_runs ~from:s ~upto:e (fun gs ge ->
          check_collinear lc ~what:"horizontal" idx.h_runs gs ge)
  | Sweep_v (s, e) ->
      iter_groups_in idx.v_runs ~from:s ~upto:e (fun gs ge ->
          check_collinear lc ~what:"vertical" idx.v_runs gs ge)
  | Sweep_x (s, e) -> check_crossings_in lc ~mode idx ~from:s ~upto:e);
  List.rev lc.violations

let merge_into c found =
  List.iter
    (fun v ->
      if c.count < c.limit then begin
        c.violations <- v :: c.violations;
        c.count <- c.count + 1
      end)
    found

let run ?(mode = Strict) ?(max_violations = 20) ?(jobs = 1) layout =
  let debug = Sys.getenv_opt "MVL_CHECK_TIMINGS" <> None in
  let t0 = ref (Sys.time ()) in
  let tick label =
    if debug then begin
      let t = Sys.time () in
      Printf.eprintf "check: %-16s %.4fs\n%!" label (t -. !t0);
      t0 := t
    end
  in
  let c = { violations = []; count = 0; limit = max_violations } in
  check_layers c layout;
  tick "layers";
  check_nodes c layout;
  tick "nodes";
  check_terminals c layout;
  tick "terminals";
  check_wires_vs_nodes c layout;
  tick "wires_vs_nodes";
  let idx = build_indexes (Layout.geom layout) in
  tick "build_indexes";
  if jobs <= 1 then begin
    iter_groups idx.h_runs (fun s e ->
        check_collinear c ~what:"horizontal" idx.h_runs s e);
    iter_groups idx.v_runs (fun s e ->
        check_collinear c ~what:"vertical" idx.v_runs s e);
    tick "collinear";
    check_crossings c ~mode idx;
    tick "crossings"
  end
  else begin
    let results, _ =
      Mvl_pool.Domain_pool.map ~domains:jobs
        ~f:(run_shard ~mode ~max_violations idx)
        (shards_of idx)
    in
    Array.iter (merge_into c) results;
    tick "sharded sweeps"
  end;
  check_vias c idx;
  tick "vias";
  (* once the collector is full, later checks stop recording (and the
     crossing sweep stops looking), so a full collector means the list
     may be incomplete — exactly [limit] entries is NOT "all of them" *)
  { mode; violations = List.rev c.violations; truncated = overfull c }

let validate ?mode ?max_violations layout =
  (run ?mode ?max_violations layout).violations

let is_valid ?mode layout = validate ?mode ~max_violations:1 layout = []
