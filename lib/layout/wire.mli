(** Routed wires: rectilinear polylines in the 3-D layout grid. *)

open Mvl_geometry

type t = {
  edge : int * int;       (** the graph edge this wire realizes *)
  points : Point.t array; (** polyline vertices, at least 2 *)
}

val make : edge:int * int -> Point.t list -> t
(** Builds a wire, silently dropping zero-length steps (consecutive
    identical points).  Raises [Invalid_argument] if two consecutive
    distinct points differ in more than one coordinate, or fewer than
    two distinct points remain. *)

val unsafe_of_points : edge:int * int -> Point.t array -> t
(** Wraps an already-validated vertex array without copying or
    re-checking — the fast path for materializing wire views out of
    columnar geometry ([Geom]).  The caller guarantees [Wire.make]
    would accept the same polyline unchanged. *)

val segments : t -> Segment.t array
(** One segment per consecutive vertex pair. *)

val length : t -> int
(** Total grid length, vias included. *)

val length_xy : t -> int
(** In-plane length: vias excluded — the quantity the paper's
    maximum-wire-length results refer to. *)

val endpoints : t -> Point.t * Point.t

val pp : Format.formatter -> t -> unit
