(** Layout verification.

    [Strict] enforces the multilayer grid model of §2.2: the routed
    paths must be pairwise node-disjoint (no two wires share any 3-D grid
    point) and must avoid layer-1 node footprints.  [Thompson] relaxes
    exactly one rule, matching §2.1: two wires may cross at a grid point
    provided neither bends there (no overlap, no knock-knee). *)

type mode = Strict | Thompson

type violation = {
  rule : string;       (** short machine-readable rule name *)
  detail : string;     (** human-readable description *)
}

type result = {
  mode : mode;                  (** the model the layout was checked under *)
  violations : violation list;  (** empty = valid *)
  truncated : bool;
      (** the collector hit [max_violations]: the list may be
          incomplete.  A report with exactly [max_violations] entries is
          flagged — once the cap is reached later checks stop recording,
          so "exactly at the cap" cannot be distinguished from "more
          exist". *)
}

val run : ?mode:mode -> ?max_violations:int -> ?jobs:int -> Layout.t -> result
(** Full validation result.  Collection stops after [max_violations]
    violations (default 20); [result.truncated] says whether that cap
    was reached.

    [jobs] (default 1) shards the heavy sweeps — collinear overlaps and
    H/V crossings — over a work-stealing domain pool, one task per
    (sweep kind, layer) zindex bucket.  Shards read the shared
    immutable segment indexes and collect violations locally; the
    merge replays task order, so the result (violations, their order,
    and [truncated]) is identical at any [jobs].  The remaining checks
    (nodes, terminals, vias, ...) are cheap and stay sequential. *)

val validate : ?mode:mode -> ?max_violations:int -> Layout.t -> violation list
(** [(run ... layout).violations].  Empty list = valid.
    Checks performed:
    - every point lies on layers [1 .. L];
    - node footprints are pairwise disjoint;
    - wires correspond 1:1 to graph edges and terminate on the boundary
      of their endpoint nodes (on layer 1);
    - no wire touches a foreign node footprint on layer 1, and touches
      its own nodes only at its terminal points;
    - no two wires share a grid point ([Strict]) / overlap or share a
      bend ([Thompson]). *)

val is_valid : ?mode:mode -> Layout.t -> bool

val pp_violation : Format.formatter -> violation -> unit

val mode_name : mode -> string
(** ["strict"] / ["thompson"] — the spelling used in telemetry records. *)
