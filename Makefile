.PHONY: all build test check lint bench repro clean doc

all: build

build:
	dune build @all

test:
	dune runtest

# Bare polymorphic compare/hash silently degrade to structural
# traversal (and allocate through the comparator); library code must
# use the monomorphic Int/String versions or an explicit comparator.
# The same goes for ordering two tuple literals — `(a, b) < (c, d)`
# lexicographic tie-breaks go through the polymorphic comparator too
# (Routing_table.build shipped one); spell the tie-break out in ints.
# A Mutex.lock not immediately followed by Fun.protect leaks the lock
# if the critical section raises — library code must go through a
# with_lock-style helper built on that idiom.
lint:
	@! grep -rEn '(^|[^.A-Za-z0-9_])(compare|Hashtbl\.hash)([^A-Za-z0-9_]|$$)' \
		lib --include='*.ml' \
		|| { echo "lint: bare polymorphic compare/hash in lib/"; exit 1; }
	@! grep -rEn '\([^()]*,[^()]*\) *(<=|>=|<|>) *\(' \
		lib --include='*.ml' \
		|| { echo "lint: polymorphic tuple comparison in lib/"; exit 1; }
	@! grep -rEn "Hashtbl\.(add|replace|mem|find|find_opt|find_all|remove) +[A-Za-z_][A-Za-z0-9_']* +\([^()]*," \
		lib --include='*.ml' \
		|| { echo "lint: tuple-keyed Hashtbl call in lib/ (pack the key into an int)"; exit 1; }
	@! grep -rEn "\([^(),]*\*[^(),]*,[^()]*\) *Hashtbl\.t" \
		lib --include='*.ml' --include='*.mli' \
		|| { echo "lint: tuple-keyed Hashtbl type in lib/ (pack the key into an int)"; exit 1; }
	@bad=0; for f in $$(grep -rl 'Mutex\.lock' lib --include='*.ml'); do \
		awk 'flag && !/Fun\.protect/ { print FILENAME ":" FNR-1 \
			": Mutex.lock without Fun.protect on the next line"; bad=1 } \
			{ flag = /Mutex\.lock/ } END { exit bad }' "$$f" || bad=1; \
	done; [ $$bad -eq 0 ] || { echo "lint: unprotected Mutex.lock in lib/"; exit 1; }
	@echo "lint: ok"

# what CI runs: full build, test suite, and a CLI smoke pass
# (list + one validated layout + a malformed spec that must fail +
# the --json/bench-emit telemetry surfaces, which self-validate)
check: lint
	dune build @all
	dune runtest
	dune exec bin/mvl_cli.exe -- list > /dev/null
	dune exec bin/mvl_cli.exe -- layout hypercube:6 -l 4 --validate
	! dune exec bin/mvl_cli.exe -- layout hypercube:abc -l 4 2> /dev/null
	dune exec bin/mvl_cli.exe -- layout hypercube:8 -l 4 --json | grep -q '"schema": "mvl.pipeline.run/1"'
	dune exec bench/main.exe -- emit > /dev/null
	grep -q '"schema": "mvl.bench.pipeline/1"' BENCH_pipeline.json
	dune exec bench/main.exe -- emit --jobs 1 --stable -o BENCH_jobs1.json > /dev/null
	dune exec bench/main.exe -- emit --jobs 4 --stable -o BENCH_jobs2.json > /dev/null
	cmp BENCH_jobs1.json BENCH_jobs2.json
	MVL_FORCE_FORK=1 dune exec bench/main.exe -- emit --jobs 4 --stable -o BENCH_fork.json > /dev/null
	cmp BENCH_jobs1.json BENCH_fork.json
	rm -f BENCH_jobs1.json BENCH_jobs2.json BENCH_fork.json
	dune exec bin/mvl_cli.exe -- sim hypercube:6 --load 0.05 --json | grep -q '"schema": "mvl.sim.run/1"'
	dune exec bin/mvl_cli.exe -- sim hypercube:6 --load 0.25 --jobs 1 --stable --json > SIM_jobs1.json
	dune exec bin/mvl_cli.exe -- sim hypercube:6 --load 0.25 --jobs 4 --stable --json > SIM_jobs2.json
	cmp SIM_jobs1.json SIM_jobs2.json
	MVL_FORCE_FORK=1 dune exec bin/mvl_cli.exe -- sim hypercube:6 --load 0.25 --jobs 4 --stable --json > SIM_fork.json
	cmp SIM_jobs1.json SIM_fork.json
	rm -f SIM_jobs1.json SIM_jobs2.json SIM_fork.json
	dune exec bench/main.exe -- throughput --quick -o BENCH_sim_quick.json > /dev/null
	grep -q '"schema": "mvl.bench.sim/1"' BENCH_sim_quick.json
	dune exec bench/main.exe -- throughput --quick --jobs 1 --stable -o BENCH_sim_jobs1.json > /dev/null
	dune exec bench/main.exe -- throughput --quick --jobs 4 --stable -o BENCH_sim_jobs2.json > /dev/null
	cmp BENCH_sim_jobs1.json BENCH_sim_jobs2.json
	MVL_FORCE_FORK=1 dune exec bench/main.exe -- throughput --quick --jobs 4 --stable -o BENCH_sim_fork.json > /dev/null
	cmp BENCH_sim_jobs1.json BENCH_sim_fork.json
	rm -f BENCH_sim_quick.json BENCH_sim_jobs1.json BENCH_sim_jobs2.json BENCH_sim_fork.json
	dune exec bench/main.exe -- scale --quick --jobs 2 -o BENCH_layout_quick.json > /dev/null
	grep -q '"schema": "mvl.bench.layout/1"' BENCH_layout_quick.json
	grep -q '"layout_phases"' BENCH_layout_quick.json
	grep -q '"emit_seconds"' BENCH_layout_quick.json
	rm -f BENCH_layout_quick.json
	dune exec bench/main.exe -- scale --quick --stable --jobs 1 -o BENCH_layout_jobs1.json > /dev/null
	dune exec bench/main.exe -- scale --quick --stable --jobs 4 -o BENCH_layout_jobs2.json > /dev/null
	cmp BENCH_layout_jobs1.json BENCH_layout_jobs2.json
	rm -f BENCH_layout_jobs1.json BENCH_layout_jobs2.json
	dune exec bin/mvl_cli.exe -- layout hypercube:6 -l 4 --mem-stats | grep -q 'peak_rss_kib='
	dune exec bin/mvl_cli.exe -- layout hypercube:6 -l 4 --mem-stats | grep -q 'phases: place'
	dune exec bin/mvl_cli.exe -- layout hypercube:6 -l 4 --mem-stats --json | grep -q '"peak_rss_kib"'
	dune exec bin/mvl_cli.exe -- layout hypercube:6 -l 4 --mem-stats --json | grep -q '"layout_phases"'
	dune exec bin/mvl_cli.exe -- sim hypercube:6 --load 0.1 --pattern bursty:tornado:8:25 --json | grep -q '"schema": "mvl.sim.run/1"'
	# serve smoke: daemon on a temp socket, 4 parallel clients whose
	# replies must cmp-equal the one-shot --json --stable document, the
	# shared spec must cost exactly one pipeline build, then the quick
	# serving benchmark (binaries invoked directly: concurrent `dune
	# exec` would contend on the build lock)
	MVL=./_build/default/bin/mvl_cli.exe; SOCK=/tmp/mvl-check-$$$$.sock; rm -f $$SOCK; \
	$$MVL serve --socket $$SOCK & SRV=$$!; \
	for i in $$(seq 50); do [ -S $$SOCK ] && break; sleep 0.1; done; [ -S $$SOCK ]; \
	$$MVL layout hypercube:6 -l 4 --json --stable > CHECK_oneshot.json; \
	pids=""; for i in 1 2 3 4; do \
		$$MVL request layout hypercube:6 -l 4 --connect $$SOCK > CHECK_served_$$i.json & pids="$$pids $$!"; \
	done; \
	rc=0; for p in $$pids; do wait $$p || rc=1; done; [ $$rc -eq 0 ]; \
	for i in 1 2 3 4; do cmp CHECK_oneshot.json CHECK_served_$$i.json || exit 1; done; \
	$$MVL request stats --connect $$SOCK > CHECK_stats.json; \
	grep -q '"schema": "mvl.serve.stats/1"' CHECK_stats.json; \
	sed -n '/"pipeline"/,/}/p' CHECK_stats.json | grep -q '"misses": 1,'; \
	$$MVL request shutdown --connect $$SOCK > /dev/null; wait $$SRV; \
	rm -f CHECK_oneshot.json CHECK_served_*.json CHECK_stats.json
	dune exec bench/main.exe -- serve --quick -o BENCH_serve_quick.json > /dev/null
	grep -q '"schema": "mvl.bench.serve/1"' BENCH_serve_quick.json
	rm -f BENCH_serve_quick.json

bench:
	dune exec bench/main.exe

# the full reproduction pipeline: tests + every figure/table, with the
# outputs captured at the repository root
repro:
	dune build @all
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# requires odoc (not vendored): opam install odoc
doc:
	dune build @doc

clean:
	dune clean
