.PHONY: all build test bench repro clean doc

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# the full reproduction pipeline: tests + every figure/table, with the
# outputs captured at the repository root
repro:
	dune build @all
	dune runtest --force --no-buffer 2>&1 | tee test_output.txt
	dune exec bench/main.exe 2>&1 | tee bench_output.txt

# requires odoc (not vendored): opam install odoc
doc:
	dune build @doc

clean:
	dune clean
