(* `bench throughput`: the simulator-engine perf trajectory.

   Runs the packet-level engine (Network_sim, unit link latency) over a
   families x offered-loads grid and writes one record per grid point
   to BENCH_sim.json.  Each point is timed with the monotonic clock
   over [repeats] runs and the best (minimum) wall time is kept — the
   engine is deterministic for a fixed seed, so the simulation
   statistics are identical across repeats and only the rate moves.

   [--jobs N] shards the engine itself across N domains
   (Network_sim.run ?jobs); the grid then runs one point at a time so
   per-point wall timings measure the sharded engine alone rather than
   co-scheduled grid neighbors.  Under MVL_FORCE_FORK=1 the engine
   refuses domains, so --jobs falls back to the pre-domain meaning —
   fork-pool fan-out of the grid — and the statistics are unchanged
   either way.

   Record shape: the deterministic measurement (Telemetry.of_sim) next
   to a volatile "seconds" object holding {wall, cycles_per_sec,
   packets_per_sec}.  Rates sit under "seconds" so
   Telemetry.strip_volatile (the --stable form) removes exactly them:
   two --stable runs — any --jobs counts — are byte-identical, which is
   what the CI determinism step diffs.  Records whose run hit the
   horizon with packets still in flight carry a nonzero
   sim.undrained, and the human table flags them: such a point is
   past saturation and its latency percentiles cover only the packets
   that made it out.

   Non-stable runs additionally time one representative grid point at
   1/2/4/8 engine shards and write the curve under "sim_jobs_scaling"
   (same shape as bench emit's "jobs_scaling"), after checking that
   every multi-shard run reproduced the jobs=1 statistics exactly —
   a mismatch is a hard exit(1), making the scaling record
   self-validating.

   Same output discipline as `bench emit`: atomic same-directory
   tmp+rename write, then a read-back parse so emitting invalid JSON is
   a hard failure. *)
open Mvl_core

let default_path = "BENCH_sim.json"

type profile = {
  specs : string list;
  loads : float list;
  warmup : int;
  measure : int;
  drain : int;
  repeats : int;
}

let full_profile =
  {
    specs = [ "hypercube:8"; "hypercube:10"; "kary:4:3"; "torus:8:8" ];
    loads = [ 0.1; 0.3; 0.6 ];
    warmup = 200;
    measure = 1000;
    drain = 2000;
    repeats = 3;
  }

(* small enough for CI smoke: a few seconds total *)
let quick_profile =
  {
    specs = [ "hypercube:6"; "kary:4:3" ];
    loads = [ 0.1; 0.3 ];
    warmup = 50;
    measure = 200;
    drain = 500;
    repeats = 1;
  }

let config_of p pattern load =
  {
    Mvl.Network_sim.default_config with
    Mvl.Network_sim.offered_load = load;
    traffic = pattern;
    warmup = p.warmup;
    measure = p.measure;
    drain = p.drain;
  }

let graph_of_spec spec_str =
  match Mvl.Registry.parse spec_str with
  | Error msg ->
      Printf.eprintf "bench throughput: %s\n" msg;
      exit 2
  | Ok spec -> (
      match Mvl.Registry.build spec with
      | Error msg ->
          Printf.eprintf "bench throughput: %s\n" msg;
          exit 2
      | Ok fam -> fam.Mvl.Families.graph)

(* best-of-[repeats] run of one grid point at [jobs] engine shards;
   returns the (deterministic) result and the best wall seconds *)
let time_point p ~pattern ?jobs (spec_str, load) =
  let graph = graph_of_spec spec_str in
  let config = config_of p pattern load in
  let result = ref None in
  let best_ns = ref Int64.max_int in
  for _ = 1 to p.repeats do
    let t0 = Monotonic_clock.now () in
    let r = Mvl.Network_sim.run ~config ?jobs graph in
    let ns = Int64.sub (Monotonic_clock.now ()) t0 in
    let ns = if Int64.compare ns 1L < 0 then 1L else ns in
    if Int64.compare ns !best_ns < 0 then best_ns := ns;
    result := Some r
  done;
  (Option.get !result, Int64.to_float !best_ns *. 1e-9)

let record p ~pattern ?jobs ((spec_str, load) as point) =
  let config = config_of p pattern load in
  let r, wall = time_point p ~pattern ?jobs point in
  Mvl.Telemetry.Obj
    [
      ("spec", Mvl.Telemetry.String spec_str);
      ("pattern", Mvl.Telemetry.String (Mvl.Traffic.to_string pattern));
      ("offered_load", Mvl.Telemetry.Float load);
      ("seed", Mvl.Telemetry.Int config.Mvl.Network_sim.seed);
      ("sim", Mvl.Telemetry.of_sim r);
      ( "seconds",
        Mvl.Telemetry.Obj
          [
            ("wall", Mvl.Telemetry.Float wall);
            ( "cycles_per_sec",
              Mvl.Telemetry.Float
                (float_of_int r.Mvl.Network_sim.cycles /. wall) );
            ( "packets_per_sec",
              Mvl.Telemetry.Float
                (float_of_int r.Mvl.Network_sim.delivered /. wall) );
          ] );
    ]

let grid p = List.concat_map (fun s -> List.map (fun l -> (s, l)) p.loads) p.specs

(* engine-shard scaling curve over one representative grid point —
   the heaviest spec at the highest load, where sharding has the most
   cycles to amortize its two barriers per cycle.  Points past
   [cpu_count] measure oversubscription, not speedup; readers should
   mind [cpu_count].  Every multi-shard result must equal the jobs=1
   result exactly (the engine's byte-identity contract) — a mismatch
   here means the parity tests have a hole, and poisoning BENCH_sim
   with it would be worse than failing, so it is exit(1). *)
let scaling_points = [ 1; 2; 4; 8 ]

let measure_scaling p ~pattern =
  let load = List.fold_left max 0.0 p.loads in
  let spec_str =
    List.fold_left
      (fun best s ->
        if Mvl.Graph.n (graph_of_spec s) > Mvl.Graph.n (graph_of_spec best)
        then s
        else best)
      (List.hd p.specs) (List.tl p.specs)
  in
  let point = (spec_str, load) in
  let base_r, base_t = time_point p ~pattern ~jobs:1 point in
  let point_json jobs =
    let r, t =
      if jobs = 1 then (base_r, base_t) else time_point p ~pattern ~jobs point
    in
    if r <> base_r then (
      Printf.eprintf
        "bench throughput: sharded run (--jobs %d) diverged from serial on \
         %s load=%.2f — engine byte-identity violated\n"
        jobs spec_str load;
      exit 1);
    let speedup = if t > 0.0 then base_t /. t else 0.0 in
    Mvl.Telemetry.Obj
      [
        ("jobs", Mvl.Telemetry.Int jobs);
        ("seconds", Mvl.Telemetry.Float t);
        ("speedup", Mvl.Telemetry.Float speedup);
        ("efficiency", Mvl.Telemetry.Float (speedup /. float_of_int jobs));
      ]
  in
  Mvl.Telemetry.Obj
    [
      ( "backend",
        Mvl.Telemetry.String
          (if Mvl.Sim_shard.env_force_fork () then "serial" else "domains") );
      ("cpu_count", Mvl.Telemetry.Int (Mvl.Parallel.cpu_count ()));
      ("spec", Mvl.Telemetry.String spec_str);
      ("offered_load", Mvl.Telemetry.Float load);
      ("points", Mvl.Telemetry.List (List.map point_json scaling_points));
    ]

let write path p ?scaling records =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "{\n  \"schema\": \"mvl.bench.sim/1\",\n";
      Printf.fprintf oc "  \"warmup\": %d,\n  \"measure\": %d,\n" p.warmup
        p.measure;
      Printf.fprintf oc "  \"drain\": %d,\n  \"repeats\": %d,\n" p.drain
        p.repeats;
      Printf.fprintf oc "  \"loads\": %s,\n"
        (Mvl.Telemetry.to_string
           (Mvl.Telemetry.List
              (List.map (fun l -> Mvl.Telemetry.Float l) p.loads)));
      Option.iter
        (fun s ->
          Printf.fprintf oc "  \"sim_jobs_scaling\": %s,\n"
            (Mvl.Telemetry.to_string s))
        scaling;
      output_string oc "  \"records\": [\n";
      List.iteri
        (fun i r ->
          if i > 0 then output_string oc ",\n";
          output_string oc "    ";
          output_string oc (Mvl.Telemetry.to_string r))
        records;
      output_string oc "\n  ]\n}\n";
      close_out oc;
      (* atomic within the same directory, as in Emit.write *)
      Sys.rename tmp path)

let read_back path expected_records =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Mvl.Telemetry.parse contents with
  | Error msg ->
      Printf.eprintf "bench throughput: %s re-reads as invalid JSON: %s\n"
        path msg;
      exit 1
  | Ok doc -> (
      match Mvl.Telemetry.member "records" doc with
      | Some (Mvl.Telemetry.List rs) when List.length rs = expected_records ->
          ()
      | _ ->
          Printf.eprintf
            "bench throughput: %s does not hold the %d expected records\n"
            path expected_records;
          exit 1)

let run ?(path = default_path) ?jobs ?(quick = false) ?(stable = false)
    ?(pattern = Mvl.Traffic.Uniform) () =
  let p = if quick then quick_profile else full_profile in
  let points = grid p in
  (* --jobs shards the engine (domains), and the grid then runs one
     point at a time so wall timings stay honest; under
     MVL_FORCE_FORK=1 the engine refuses domains, so the same flag
     degrades to the legacy meaning — fork fan-out of the grid. *)
  let engine_jobs, grid_jobs =
    match jobs with
    | Some j when j > 1 && not (Mvl.Sim_shard.env_force_fork ()) ->
        (Some j, Some 1)
    | _ -> (None, jobs)
  in
  let rs, stats =
    Mvl.Parallel.map ?jobs:grid_jobs
      ~f:(record p ~pattern ?jobs:engine_jobs)
      points
  in
  let rs = if stable then List.map Mvl.Telemetry.strip_volatile rs else rs in
  let scaling = if stable then None else Some (measure_scaling p ~pattern) in
  write path p ?scaling rs;
  read_back path (List.length rs);
  Printf.printf "wrote %s: %d records (%d specs x %d loads), %d worker(s)\n"
    path (List.length rs) (List.length p.specs) (List.length p.loads)
    (match engine_jobs with Some j -> j | None -> stats.Mvl.Parallel.workers);
  if not stable then (
    let int_of k o =
      match Option.bind o (Mvl.Telemetry.member k) with
      | Some (Mvl.Telemetry.Int i) -> i
      | _ -> 0
    in
    List.iter
      (fun r ->
        let str k o =
          match Option.bind o (Mvl.Telemetry.member k) with
          | Some (Mvl.Telemetry.String s) -> s
          | _ -> "?"
        in
        let flt k o =
          match Option.bind o (Mvl.Telemetry.member k) with
          | Some (Mvl.Telemetry.Float f) -> f
          | Some (Mvl.Telemetry.Int i) -> float_of_int i
          | _ -> 0.0
        in
        let seconds = Mvl.Telemetry.member "seconds" r in
        let undrained = int_of "undrained" (Mvl.Telemetry.member "sim" r) in
        Printf.printf "  %-14s load=%.2f  %8.0f pkt/s  %9.0f cyc/s  %.3fs%s\n"
          (str "spec" (Some r))
          (flt "offered_load" (Some r))
          (flt "packets_per_sec" seconds)
          (flt "cycles_per_sec" seconds) (flt "wall" seconds)
          (if undrained > 0 then
             Printf.sprintf "  [UNDRAINED %d]" undrained
           else "");
        if undrained > 0 then
          Printf.printf
            "    ^ horizon expired with %d tracked packets in flight: this \
             point is past saturation and its percentiles cover only the \
             delivered packets\n"
            undrained)
      rs;
    match Option.bind scaling (Mvl.Telemetry.member "points") with
    | Some (Mvl.Telemetry.List pts) ->
        let flt k o =
          match Option.bind o (Mvl.Telemetry.member k) with
          | Some (Mvl.Telemetry.Float f) -> f
          | Some (Mvl.Telemetry.Int i) -> float_of_int i
          | _ -> 0.0
        in
        Printf.printf "  engine scaling (%s load=%.2f):"
          (match Option.bind scaling (Mvl.Telemetry.member "spec") with
          | Some (Mvl.Telemetry.String s) -> s
          | _ -> "?")
          (flt "offered_load" scaling);
        List.iter
          (fun pt ->
            Printf.printf "  %dj %.2fx"
              (int_of "jobs" (Some pt))
              (flt "speedup" (Some pt)))
          pts;
        print_newline ()
    | _ -> ())

let run_cli args =
  let usage () =
    prerr_endline
      "usage: bench throughput [--quick] [--jobs N] [--stable] \
       [--pattern PATTERN] [-o FILE]";
    exit 2
  in
  let rec go path jobs quick stable pattern = function
    | [] -> run ~path ?jobs ~quick ~stable ~pattern ()
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> go path (Some j) quick stable pattern rest
        | _ -> usage ())
    | "--quick" :: rest -> go path jobs true stable pattern rest
    | "--stable" :: rest -> go path jobs quick true pattern rest
    | "--pattern" :: s :: rest -> (
        match Mvl.Traffic.of_string s with
        | Ok pattern -> go path jobs quick stable pattern rest
        | Error msg ->
            Printf.eprintf "bench throughput: %s\n" msg;
            exit 2)
    | ("-o" | "--out") :: p :: rest -> go p jobs quick stable pattern rest
    | _ -> usage ()
  in
  go default_path None false false Mvl.Traffic.Uniform args
