(* `bench emit`: the machine-readable perf trajectory.

   Runs the full pipeline (with strict validation) on every registry
   family's representative small instance across a layer sweep and
   writes one Mvl.Telemetry record per (spec, L) to BENCH_pipeline.json.
   Key order inside a record is fixed by Pipeline.to_json and records
   are written one per line, so regenerating the file yields reviewable
   diffs (only the "seconds" and cumulative "cache" numbers move).

   `--jobs N` fans the (spec, L) grid out over N workers of the active
   Mvl.Parallel backend (work-stealing domains by default, forked
   processes under MVL_FORCE_FORK=1); records land in the file in grid
   order regardless of worker scheduling.  `--stable` strips the
   volatile "seconds"/"cache" fields so two emits — any job counts,
   either backend — are byte-identical; the CI determinism step diffs
   multi-job runs against a --jobs 1 run.  Non-stable emits additionally
   time the grid at 1/2/4/8 workers and record the scaling curve under
   "jobs_scaling".

   The output file is written to a temporary name in the same directory
   and renamed into place, so a crash or kill mid-run never leaves a
   truncated BENCH_pipeline.json — the previous version stays intact.

   The file is re-read and parsed before exiting: emitting invalid JSON
   is a hard failure, which is what the CI smoke step relies on. *)
open Mvl_core

let layer_sweep = [ 2; 4; 8 ]

let default_path = "BENCH_pipeline.json"

let grid () =
  List.concat_map
    (fun entry ->
      let spec = Mvl.Registry.small_spec entry in
      List.map (fun layers -> (spec, layers)) layer_sweep)
    (Mvl.Registry.all ())

let record (spec, layers) =
  match Mvl.Pipeline.run ~validate:Mvl.Check.Strict ~layers spec with
  | Ok r -> Mvl.Pipeline.to_json r
  | Error msg ->
      Mvl.Telemetry.Obj
        [
          ("schema", Mvl.Telemetry.String "mvl.pipeline.error/1");
          ("spec", Mvl.Telemetry.String (Mvl.Registry.to_string spec));
          ("layers", Mvl.Telemetry.Int layers);
          ("error", Mvl.Telemetry.String msg);
        ]

let records ?jobs ~stable () =
  Mvl.Pipeline.cache_reset ();
  let rs, stats = Mvl.Parallel.map ?jobs ~f:record (grid ()) in
  let rs = if stable then List.map Mvl.Telemetry.strip_volatile rs else rs in
  (rs, stats)

(* wall-time the whole grid at 1/2/4/8 workers on the active backend —
   the runtime's scaling signature, recorded alongside the per-record
   timings.  Each measurement starts from a cold layout cache so every
   point does the same work; speedup is against the 1-worker run of the
   same process, efficiency is speedup/workers.  On a machine with
   fewer cores than workers the extra points measure oversubscription,
   not speedup — readers should mind [cpu_count]. *)
let scaling_points = [ 1; 2; 4; 8 ]

let measure_scaling () =
  let g = grid () in
  let time_run jobs =
    Mvl.Pipeline.cache_reset ();
    let t0 = Unix.gettimeofday () in
    let _rs, _stats = Mvl.Parallel.map ~jobs ~f:record g in
    Unix.gettimeofday () -. t0
  in
  match scaling_points with
  | [] -> Mvl.Telemetry.Null
  | base_jobs :: _ ->
      let base = time_run base_jobs in
      let point jobs =
        let t = if jobs = base_jobs then base else time_run jobs in
        let speedup = if t > 0.0 then base /. t else 0.0 in
        Mvl.Telemetry.Obj
          [
            ("jobs", Mvl.Telemetry.Int jobs);
            ("seconds", Mvl.Telemetry.Float t);
            ("speedup", Mvl.Telemetry.Float speedup);
            ("efficiency", Mvl.Telemetry.Float (speedup /. float_of_int jobs));
          ]
      in
      Mvl.Telemetry.Obj
        [
          ( "backend",
            Mvl.Telemetry.String
              (Mvl.Parallel.backend_name (Mvl.Parallel.default_backend ())) );
          ("cpu_count", Mvl.Telemetry.Int (Mvl.Parallel.cpu_count ()));
          ("points", Mvl.Telemetry.List (List.map point scaling_points));
        ]

let write ?stats ?scaling path records =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "{\n  \"schema\": \"mvl.bench.pipeline/1\",\n";
      Printf.fprintf oc "  \"layer_sweep\": %s,\n"
        (Mvl.Telemetry.to_string
           (Mvl.Telemetry.List
              (List.map (fun l -> Mvl.Telemetry.Int l) layer_sweep)));
      (match stats with
      | None -> ()
      | Some (s : Mvl.Parallel.stats) ->
          Printf.fprintf oc "  \"cache\": {\"hits\": %d, \"misses\": %d},\n"
            s.Mvl.Parallel.hits s.Mvl.Parallel.misses);
      (match scaling with
      | None -> ()
      | Some json ->
          Printf.fprintf oc "  \"jobs_scaling\": %s,\n"
            (Mvl.Telemetry.to_string json));
      output_string oc "  \"records\": [\n";
      List.iteri
        (fun i r ->
          if i > 0 then output_string oc ",\n";
          output_string oc "    ";
          output_string oc (Mvl.Telemetry.to_string r))
        records;
      output_string oc "\n  ]\n}\n";
      close_out oc;
      (* atomic within the same directory: readers (and interrupted
         runs) only ever observe a complete file *)
      Sys.rename tmp path)

let read_back path expected_records =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Mvl.Telemetry.parse contents with
  | Error msg ->
      Printf.eprintf "bench emit: %s re-reads as invalid JSON: %s\n" path msg;
      exit 1
  | Ok doc -> (
      match Mvl.Telemetry.member "records" doc with
      | Some (Mvl.Telemetry.List rs) when List.length rs = expected_records ->
          ()
      | _ ->
          Printf.eprintf
            "bench emit: %s does not hold the %d expected records\n" path
            expected_records;
          exit 1)

let run ?(path = default_path) ?jobs ?(stable = false) () =
  let rs, stats = records ?jobs ~stable () in
  (* the aggregated worker counters and the scaling timings are
     volatile (scheduling, machine load), so the --stable form omits
     both — that's what keeps two stable emits byte-identical *)
  let scaling = if stable then None else Some (measure_scaling ()) in
  write ?stats:(if stable then None else Some stats) ?scaling path rs;
  read_back path (List.length rs);
  let errors =
    List.filter
      (fun r ->
        Mvl.Telemetry.member "error" r <> None
        || Mvl.Telemetry.member "violations" r
           |> Option.map (Mvl.Telemetry.member "count")
           |> Option.join
           |> Option.map (fun c -> c <> Mvl.Telemetry.Int 0)
           |> Option.value ~default:false)
      rs
  in
  Printf.printf
    "wrote %s: %d records (%d families x L in {%s}), %d worker(s), cache \
     %d/%d hit/miss, %d problem(s)\n"
    path (List.length rs)
    (List.length (Mvl.Registry.all ()))
    (String.concat "," (List.map string_of_int layer_sweep))
    stats.Mvl.Parallel.workers stats.Mvl.Parallel.hits
    stats.Mvl.Parallel.misses (List.length errors);
  List.iter
    (fun r ->
      match Mvl.Telemetry.member "spec" r with
      | Some (Mvl.Telemetry.String s) -> Printf.printf "  problem: %s\n" s
      | _ -> ())
    errors

let run_cli args =
  let usage () =
    prerr_endline "usage: bench emit [--jobs N] [--stable] [-o FILE]";
    exit 2
  in
  let rec go path jobs stable = function
    | [] -> run ~path ?jobs ~stable ()
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> go path (Some j) stable rest
        | _ -> usage ())
    | "--stable" :: rest -> go path jobs true rest
    | ("-o" | "--out") :: p :: rest -> go p jobs stable rest
    | _ -> usage ()
  in
  go default_path None false args
