(* `bench emit`: the machine-readable perf trajectory.

   Runs the full pipeline (with strict validation) on every registry
   family's representative small instance across a layer sweep and
   writes one Mvl.Telemetry record per (spec, L) to BENCH_pipeline.json.
   Key order inside a record is fixed by Pipeline.to_json and records
   are written one per line, so regenerating the file yields reviewable
   diffs (only the "seconds" and cumulative "cache" numbers move).

   `--jobs N` fans the (spec, L) grid out over N forked workers
   (Mvl.Parallel); records land in the file in grid order regardless of
   worker scheduling.  `--stable` strips the volatile "seconds"/"cache"
   fields so two emits — any job counts — are byte-identical; the CI
   determinism step diffs a --jobs 2 run against a --jobs 1 run.

   The output file is written to a temporary name in the same directory
   and renamed into place, so a crash or kill mid-run never leaves a
   truncated BENCH_pipeline.json — the previous version stays intact.

   The file is re-read and parsed before exiting: emitting invalid JSON
   is a hard failure, which is what the CI smoke step relies on. *)
open Mvl_core

let layer_sweep = [ 2; 4; 8 ]

let default_path = "BENCH_pipeline.json"

let grid () =
  List.concat_map
    (fun entry ->
      let spec = Mvl.Registry.small_spec entry in
      List.map (fun layers -> (spec, layers)) layer_sweep)
    (Mvl.Registry.all ())

let record (spec, layers) =
  match Mvl.Pipeline.run ~validate:Mvl.Check.Strict ~layers spec with
  | Ok r -> Mvl.Pipeline.to_json r
  | Error msg ->
      Mvl.Telemetry.Obj
        [
          ("schema", Mvl.Telemetry.String "mvl.pipeline.error/1");
          ("spec", Mvl.Telemetry.String (Mvl.Registry.to_string spec));
          ("layers", Mvl.Telemetry.Int layers);
          ("error", Mvl.Telemetry.String msg);
        ]

let records ?jobs ~stable () =
  Mvl.Pipeline.cache_reset ();
  let rs, stats = Mvl.Parallel.map ?jobs ~f:record (grid ()) in
  let rs = if stable then List.map Mvl.Telemetry.strip_volatile rs else rs in
  (rs, stats)

let write ?stats path records =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () ->
      let oc = open_out tmp in
      output_string oc "{\n  \"schema\": \"mvl.bench.pipeline/1\",\n";
      Printf.fprintf oc "  \"layer_sweep\": %s,\n"
        (Mvl.Telemetry.to_string
           (Mvl.Telemetry.List
              (List.map (fun l -> Mvl.Telemetry.Int l) layer_sweep)));
      (match stats with
      | None -> ()
      | Some (s : Mvl.Parallel.stats) ->
          Printf.fprintf oc "  \"cache\": {\"hits\": %d, \"misses\": %d},\n"
            s.Mvl.Parallel.hits s.Mvl.Parallel.misses);
      output_string oc "  \"records\": [\n";
      List.iteri
        (fun i r ->
          if i > 0 then output_string oc ",\n";
          output_string oc "    ";
          output_string oc (Mvl.Telemetry.to_string r))
        records;
      output_string oc "\n  ]\n}\n";
      close_out oc;
      (* atomic within the same directory: readers (and interrupted
         runs) only ever observe a complete file *)
      Sys.rename tmp path)

let read_back path expected_records =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  match Mvl.Telemetry.parse contents with
  | Error msg ->
      Printf.eprintf "bench emit: %s re-reads as invalid JSON: %s\n" path msg;
      exit 1
  | Ok doc -> (
      match Mvl.Telemetry.member "records" doc with
      | Some (Mvl.Telemetry.List rs) when List.length rs = expected_records ->
          ()
      | _ ->
          Printf.eprintf
            "bench emit: %s does not hold the %d expected records\n" path
            expected_records;
          exit 1)

let run ?(path = default_path) ?jobs ?(stable = false) () =
  let rs, stats = records ?jobs ~stable () in
  (* the aggregated worker counters are themselves volatile relative to
     worker-failure recovery, so the --stable form omits them *)
  write ?stats:(if stable then None else Some stats) path rs;
  read_back path (List.length rs);
  let errors =
    List.filter
      (fun r ->
        Mvl.Telemetry.member "error" r <> None
        || Mvl.Telemetry.member "violations" r
           |> Option.map (Mvl.Telemetry.member "count")
           |> Option.join
           |> Option.map (fun c -> c <> Mvl.Telemetry.Int 0)
           |> Option.value ~default:false)
      rs
  in
  Printf.printf
    "wrote %s: %d records (%d families x L in {%s}), %d worker(s), cache \
     %d/%d hit/miss, %d problem(s)\n"
    path (List.length rs)
    (List.length (Mvl.Registry.all ()))
    (String.concat "," (List.map string_of_int layer_sweep))
    stats.Mvl.Parallel.workers stats.Mvl.Parallel.hits
    stats.Mvl.Parallel.misses (List.length errors);
  List.iter
    (fun r ->
      match Mvl.Telemetry.member "spec" r with
      | Some (Mvl.Telemetry.String s) -> Printf.printf "  problem: %s\n" s
      | _ -> ())
    errors

let run_cli args =
  let usage () =
    prerr_endline "usage: bench emit [--jobs N] [--stable] [-o FILE]";
    exit 2
  in
  let rec go path jobs stable = function
    | [] -> run ~path ?jobs ~stable ()
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 -> go path (Some j) stable rest
        | _ -> usage ())
    | "--stable" :: rest -> go path jobs true rest
    | ("-o" | "--out") :: p :: rest -> go p jobs stable rest
    | _ -> usage ()
  in
  go default_path None false args
